#!/usr/bin/env bash
# latency.sh — the many-connections latency harness: start nvmemcached, drive
# it with cmd/memtier over CONNS concurrent real-socket connections in BOTH
# wire protocols, and emit end-to-end latency percentiles (p50/p99/p999) plus
# throughput as BENCH_latency.json, gated by benchgate.sh like every other
# bench artifact.
#
# Usage:
#   scripts/latency.sh                 # full run: 1000 conns, 5s per protocol
#   CONNS=300 DUR=2s scripts/latency.sh   # CI smoke
#
# Environment:
#   CONNS  concurrent connections per protocol run (default 1000)
#   DUR    measured duration per protocol run      (default 5s)
#   KEYS   key range                               (default 20000)
#   OUT    output file                             (default BENCH_latency.json)
#
# Metric names are stable ("text", "text/p50", ...) regardless of CONNS so
# smoke runs gate against the committed full-run baseline; the conns count
# rides along as an ungated field.
set -euo pipefail
cd "$(dirname "$0")/.."

CONNS="${CONNS:-1000}"
DUR="${DUR:-5s}"
KEYS="${KEYS:-20000}"
OUT="${OUT:-BENCH_latency.json}"

command -v jq >/dev/null || { echo "latency.sh: jq is required" >&2; exit 2; }

BIN=$(mktemp -d)
trap 'kill $SERVER_PID 2>/dev/null || true; rm -rf "$BIN"' EXIT

go build -o "$BIN/nvmemcached" ./cmd/nvmemcached
go build -o "$BIN/memtier" ./cmd/memtier

# Pick a free port by letting the kernel assign one, then reading the log.
"$BIN/nvmemcached" -listen 127.0.0.1:0 -mem $((256 << 20)) -conns $((CONNS * 2 + 16)) \
  -sweep 0 >"$BIN/server.log" 2>&1 &
SERVER_PID=$!

ADDR=""
for _ in $(seq 1 50); do
  ADDR=$(sed -n 's/.*listening on \(127\.0\.0\.1:[0-9]*\).*/\1/p' "$BIN/server.log" | head -1)
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "latency.sh: server did not start:"; cat "$BIN/server.log"; exit 1; }
echo "latency.sh: server at $ADDR, $CONNS conns, $DUR per protocol" >&2

rows="[]"
for proto in text binary; do
  echo "latency.sh: running $proto..." >&2
  res=$("$BIN/memtier" -server "$ADDR" -protocol "$proto" -conns "$CONNS" \
    -keys "$KEYS" -dur "$DUR" -json -preload=$([ "$proto" = text ] && echo true || echo false))
  echo "  $res" >&2
  rows=$(jq -c --argjson r "$res" '. + [
    {name: $r.protocol, conns: $r.conns, ops_per_sec: $r.ops_per_sec},
    {name: ($r.protocol + "/p50"),  conns: $r.conns, lat_us: $r.p50_us},
    {name: ($r.protocol + "/p99"),  conns: $r.conns, lat_us: $r.p99_us},
    {name: ($r.protocol + "/p999"), conns: $r.conns, lat_us: $r.p999_us}
  ]' <<<"$rows")
done

jq '.' <<<"$rows" >"$OUT"
echo "latency.sh: wrote $OUT" >&2
