#!/usr/bin/env bash
# benchtrend.sh — make the committed bench baselines tell a story: for each
# BENCH_*.json, pull the last N committed versions out of git history and
# render a cross-commit markdown trend table (metrics as rows, commits as
# columns, oldest → newest), so a slow perf drift that stays inside
# benchgate's per-PR tolerance is still visible across the PR sequence.
#
# Usage:
#   scripts/benchtrend.sh                 # all BENCH_*.json, last 5 commits
#   TREND_DEPTH=8 scripts/benchtrend.sh   # deeper history
#   BENCH_FILES="BENCH_repl.json" scripts/benchtrend.sh
#
# Reads committed blobs only (git show <sha>:<file>) — the working tree's
# fresh results are benchgate's job, not ours. Output goes to stdout and is
# appended to $GITHUB_STEP_SUMMARY when set (the Actions job summary); the
# CI checkout needs fetch-depth: 0 for the history walk to see past commits.
set -euo pipefail
cd "$(dirname "$0")/.."

DEPTH="${TREND_DEPTH:-5}"
FILES="${BENCH_FILES:-$(ls BENCH_*.json 2>/dev/null || true)}"

command -v jq >/dev/null || { echo "benchtrend: jq is required" >&2; exit 2; }

# flatten — same key scheme as benchgate.sh: one "key<TAB>value" line per
# metric, key = name[/variant][/<threads>g], value = the row's number.
flatten() {
  jq -r '.[] | [
    (.name
      + (if .variant  then "/" + .variant                else "" end)
      + (if .threads  then "/" + (.threads|tostring) + "g" else "" end)),
    ((.ops_per_sec // .ratio // .keys_per_sec // .lat_us // 0) | tostring)
  ] | @tsv'
}

summary() {
  echo "$1"
  if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
    echo "$1" >> "$GITHUB_STEP_SUMMARY"
  fi
}

summary "## Bench trend (last ${DEPTH} committed baselines per file)"
for f in $FILES; do
  # Newest first from git log; reverse to oldest → newest so the table reads
  # left to right like a time series.
  shas=$(git log --format=%H -n "$DEPTH" HEAD -- "$f" | sed '1!G;h;$!d')
  if [ -z "$shas" ]; then
    summary ""
    summary "**$f**: no committed history."
    continue
  fi

  summary ""
  summary "**$f**"
  summary ""

  rows=$(
    for sha in $shas; do
      # A commit in the file's log can predate the file (rename) or fail to
      # parse; skip those columns rather than dying mid-table.
      if blob=$(git show "$sha:$f" 2>/dev/null); then
        short=$(git rev-parse --short "$sha")
        when=$(git show -s --format=%cs "$sha")
        printf '%s\n' "$blob" | flatten | sed "s/^/$short ($when)\t/"
      fi
    done | awk -F'\t' '
      {
        col = $1; key = $2; val = $3
        if (!(col in cseen)) { cols[cn++] = col; cseen[col] = 1 }
        if (!(key in kseen)) { keys[kn++] = key; kseen[key] = 1 }
        v[key, col] = val
      }
      END {
        if (cn == 0) { print "| (no parseable baselines) |"; exit }
        printf "| metric |"
        for (c = 0; c < cn; c++) printf " %s |", cols[c]
        printf "\n|---|"
        for (c = 0; c < cn; c++) printf "---:|"
        printf "\n"
        for (k = 0; k < kn; k++) {
          key = keys[k]
          printf "| %s |", key
          for (c = 0; c < cn; c++) {
            if ((key, cols[c]) in v) printf " %.4g |", v[key, cols[c]] + 0
            else printf " — |"
          }
          printf "\n"
        }
      }'
  )
  while IFS= read -r line; do summary "$line"; done <<< "$rows"
done

summary ""
summary "Trend tables read oldest → newest; benchgate.sh holds the newest column to tolerance."
