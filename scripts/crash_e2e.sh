#!/usr/bin/env bash
# crash_e2e.sh — the kill -9 crash matrix: proves, across REAL process
# boundaries, that nvmemcached on a file-backed NVRAM image (-pmem-file)
# recovers every acknowledged write after an abrupt SIGKILL — no SIGTERM
# image save, no shutdown handshake.
#
# Each round: start the server on the same pmem file, drive sets + counter
# incrs + a gets/cas chain over TCP while recording the acknowledged
# frontier (cmd/crashcheck), kill -9 the server mid-load, restart it, and
# verify the frontier of EVERY round so far — earlier rounds must keep
# surviving later crashes. The cas chain additionally pins the CAS unique to
# its value's generation (cas == gen+1), so a recovery that resets or
# detaches CAS metadata from item values fails even when the values
# themselves survive. A final clean-SIGTERM cycle checks the graceful path
# too.
#
# Environment:
#   CRASH_ROUNDS  kill -9 rounds (default 3)
#   LOAD_SECONDS  load time before each kill (default 1)
#   SHARDS        shard count (default 1 = classic single-runtime server;
#                 >1 runs the server on a sharded pool directory, loads over
#                 multiple concurrent connections so every shard takes
#                 writes, and checks that recovery ran the shards in
#                 parallel)
#
# Portable across ubuntu/macos runners: no timeout(1), no /dev/tcp, no nc.
set -euo pipefail
cd "$(dirname "$0")/.."

ROUNDS="${CRASH_ROUNDS:-3}"
LOAD_SECONDS="${LOAD_SECONDS:-1}"
SHARDS="${SHARDS:-1}"
WORKERS=1
[ "$SHARDS" -gt 1 ] && WORKERS=4

WORK=$(mktemp -d)
SRV_PID=""
GROW_PID=""
STRICT_PID=""
cleanup() {
  [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
  [ -n "${GROW_PID:-}" ] && kill -9 "$GROW_PID" 2>/dev/null || true
  [ -n "${STRICT_PID:-}" ] && kill -9 "$STRICT_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== building =="
go build -o "$WORK/nvmemcached" ./cmd/nvmemcached
go build -o "$WORK/crashcheck" ./cmd/crashcheck

PMEM="$WORK/cache.pmem"
[ "$SHARDS" -gt 1 ] && PMEM="$WORK/pool" # a directory in sharded mode
LOG="$WORK/server.log"

start_server() {
  : > "$LOG"
  "$WORK/nvmemcached" -listen 127.0.0.1:0 -mem $((64 << 20)) -buckets 4096 \
    -pmem-file "$PMEM" -shards "$SHARDS" -latency 0 -sweep 0 >> "$LOG" 2>&1 &
  SRV_PID=$!
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR=$(awk '/listening on/ {a=$NF} END {print a}' "$LOG")
    [ -n "$ADDR" ] && break
    if ! kill -0 "$SRV_PID" 2>/dev/null; then
      echo "server died during startup:" >&2
      cat "$LOG" >&2
      exit 1
    fi
    sleep 0.1
  done
  if [ -z "$ADDR" ]; then
    echo "server never reported its listen address:" >&2
    cat "$LOG" >&2
    exit 1
  fi
}

verify_all_rounds() {
  upto=$1
  for p in $(seq 1 "$upto"); do
    "$WORK/crashcheck" -addr "$ADDR" -state "$WORK/state.$p" -prefix "r$p" -workers "$WORKERS" verify
  done
  # The concurrent-load round's frontier, once it exists, must keep
  # surviving every later crash too.
  if ls "$WORK/state.conc"* >/dev/null 2>&1; then
    "$WORK/crashcheck" -addr "$ADDR" -state "$WORK/state.conc" -prefix conc -workers 4 verify
  fi
}

# acked_total sums the acknowledged frontier over a round's state file(s) —
# one file in classic mode, one per load worker in sharded mode.
acked_total() {
  cat "$WORK/state.$1"* 2>/dev/null | awk -F= '/^acked=/ {s += $2} END {print s + 0}'
}

# check_parallel_recovery reads the server's "shard recovery:" line and
# asserts wall clock ~= slowest shard, not the sum: total <= 2*max + 250ms.
# The 250ms slack keeps the check honest on single-core runners, where
# per-shard recoveries are single-digit milliseconds and goroutines
# interleave on one CPU; on multicore the 2*max bound is the signal that
# shards really recovered concurrently rather than one after another.
check_parallel_recovery() {
  [ "$SHARDS" -gt 1 ] || return 0
  line=$(grep "shard recovery:" "$LOG" | tail -1)
  if [ -z "$line" ]; then
    echo "sharded restart logged no 'shard recovery:' line:" >&2
    cat "$LOG" >&2
    exit 1
  fi
  echo "   $line"
  echo "$line" | awk '{
    for (i = 1; i <= NF; i++) {
      if ($i ~ /^total_ms=/) { sub(/^total_ms=/, "", $i); total = $i + 0 }
      if ($i ~ /^max_ms=/)   { sub(/^max_ms=/, "", $i);   max = $i + 0 }
    }
    if (total > 2 * max + 250) {
      printf "shard recovery looks serialized: total=%dms > 2*max(%dms)+250ms\n", total, max > "/dev/stderr"
      exit 1
    }
  }'
}

echo "== round 0: fresh server =="
start_server
echo "   listening on $ADDR (pid $SRV_PID)"

for r in $(seq 1 "$ROUNDS"); do
  echo "== round $r: load, kill -9, recover =="
  "$WORK/crashcheck" -addr "$ADDR" -state "$WORK/state.$r" -prefix "r$r" -workers "$WORKERS" load &
  LOAD_PID=$!
  sleep "$LOAD_SECONDS"
  kill -9 "$SRV_PID"
  SRV_PID=""
  wait "$LOAD_PID"

  ACKED=$(acked_total "$r")
  if [ "${ACKED:-0}" -lt 100 ]; then
    echo "round $r: only $ACKED acknowledged sets before the kill — not a meaningful crash test" >&2
    exit 1
  fi
  echo "   killed server with $ACKED acknowledged sets in flight history"

  start_server
  if ! grep -q "recovered" "$LOG"; then
    echo "restart did not run recovery:" >&2
    cat "$LOG" >&2
    exit 1
  fi
  echo "   $(awk '/recovered/ {sub(/^.*recovered/, "recovered"); print; exit}' "$LOG")"
  check_parallel_recovery
  verify_all_rounds "$r"
done

echo "== concurrent-load round: kill -9 under 4-connection load =="
# Multi-connection load against THIS image (even the unsharded server):
# four concurrent connections race sets, counters and cas chains on one
# runtime while the kill lands — crash consistency must hold under real
# write concurrency, not just a single serialized stream.
"$WORK/crashcheck" -addr "$ADDR" -state "$WORK/state.conc" -prefix conc -workers 4 load &
LOAD_PID=$!
sleep "$LOAD_SECONDS"
kill -9 "$SRV_PID"
SRV_PID=""
wait "$LOAD_PID"
ACKED=$(cat "$WORK/state.conc"* 2>/dev/null | awk -F= '/^acked=/ {s += $2} END {print s + 0}')
if [ "${ACKED:-0}" -lt 100 ]; then
  echo "concurrent round: only $ACKED acknowledged sets before the kill" >&2
  exit 1
fi
echo "   killed server with $ACKED acknowledged sets across 4 connections"
start_server
if ! grep -q "recovered" "$LOG"; then
  echo "restart did not run recovery:" >&2
  cat "$LOG" >&2
  exit 1
fi
verify_all_rounds "$ROUNDS"

echo "== kill-during-grow round =="
# A second, small server with an online-growth reserve: load until the pool
# doubles at least once, kill -9 right at the grow, and require the restart
# to recover to a capacity EXACTLY on the doubling schedule — a torn grow
# lands on the old or the new size, never a half-carved pool — with every
# acknowledged write intact.
GPMEM="$WORK/grow.pmem"
GLOG="$WORK/grow.log"
GROW_INIT=$((4 << 20))
GROW_MAX=$((64 << 20))
GROW_PID=""
start_grow_server() {
  : > "$GLOG"
  "$WORK/nvmemcached" -listen 127.0.0.1:0 -mem "$GROW_INIT" -buckets 4096 \
    -pmem-file "$GPMEM" -max-grow "$GROW_MAX" -latency 0 -sweep 0 >> "$GLOG" 2>&1 &
  GROW_PID=$!
  GADDR=""
  for _ in $(seq 1 100); do
    GADDR=$(awk '/listening on/ {a=$NF} END {print a}' "$GLOG")
    [ -n "$GADDR" ] && break
    if ! kill -0 "$GROW_PID" 2>/dev/null; then
      echo "grow server died during startup:" >&2
      cat "$GLOG" >&2
      exit 1
    fi
    sleep 0.1
  done
}
start_grow_server
"$WORK/crashcheck" -addr "$GADDR" -state "$WORK/state.grow" -prefix grow -workers 2 load &
GLOAD_PID=$!
for _ in $(seq 1 600); do
  grep -q "grew pool" "$GLOG" && break
  kill -0 "$GROW_PID" 2>/dev/null || break
  sleep 0.05
done
kill -9 "$GROW_PID"
GROW_PID=""
wait "$GLOAD_PID"
if ! grep -q "grew pool" "$GLOG"; then
  echo "load never drove an online grow:" >&2
  cat "$GLOG" >&2
  exit 1
fi
echo "   $(grep -c 'grew pool' "$GLOG") grow(s) committed before the kill"
start_grow_server
TOTAL=$(awk '/pool bytes: total=/ {sub(/^.*total=/, ""); print; exit}' "$GLOG")
OK=0
SZ=$GROW_INIT
while [ "$SZ" -le "$GROW_MAX" ]; do
  [ "$TOTAL" = "$SZ" ] && OK=1
  SZ=$((SZ * 2))
done
if [ "$OK" != 1 ]; then
  echo "recovered pool capacity $TOTAL is off the doubling schedule ($GROW_INIT..$GROW_MAX):" >&2
  cat "$GLOG" >&2
  exit 1
fi
echo "   recovered to $TOTAL bytes (on the doubling schedule)"
"$WORK/crashcheck" -addr "$GADDR" -state "$WORK/state.grow" -prefix grow -workers 2 verify
kill -9 "$GROW_PID" 2>/dev/null || true
GROW_PID=""

echo "== strict-durability round: kill -9 with the async syncer in strict mode =="
# A third server on its own image running -durability strict: fences no
# longer msync inline but block on the background syncer's durable
# watermark (group commit). The contract is unchanged — every acknowledged
# write must survive kill -9 — only now the ack path runs through the async
# pipeline, so a watermark bug (acking before the batch's fdatasync) shows
# up here as lost acked keys.
SPMEM="$WORK/strict.pmem"
SLOG="$WORK/strict.log"
start_strict_server() {
  : > "$SLOG"
  "$WORK/nvmemcached" -listen 127.0.0.1:0 -mem $((64 << 20)) -buckets 4096 \
    -pmem-file "$SPMEM" -durability strict -latency 0 -sweep 0 >> "$SLOG" 2>&1 &
  STRICT_PID=$!
  SADDR=""
  for _ in $(seq 1 100); do
    SADDR=$(awk '/listening on/ {a=$NF} END {print a}' "$SLOG")
    [ -n "$SADDR" ] && break
    if ! kill -0 "$STRICT_PID" 2>/dev/null; then
      echo "strict-durability server died during startup:" >&2
      cat "$SLOG" >&2
      exit 1
    fi
    sleep 0.1
  done
  if [ -z "$SADDR" ]; then
    echo "strict-durability server never reported its listen address:" >&2
    cat "$SLOG" >&2
    exit 1
  fi
}
start_strict_server
"$WORK/crashcheck" -addr "$SADDR" -state "$WORK/state.strict" -prefix strict -workers 2 load &
SLOAD_PID=$!
sleep "$LOAD_SECONDS"
kill -9 "$STRICT_PID"
STRICT_PID=""
wait "$SLOAD_PID"
ACKED=$(cat "$WORK/state.strict"* 2>/dev/null | awk -F= '/^acked=/ {s += $2} END {print s + 0}')
if [ "${ACKED:-0}" -lt 100 ]; then
  echo "strict round: only $ACKED acknowledged sets before the kill" >&2
  exit 1
fi
echo "   killed strict-durability server with $ACKED acknowledged sets"
start_strict_server
if ! grep -q "recovered" "$SLOG"; then
  echo "strict-durability restart did not run recovery:" >&2
  cat "$SLOG" >&2
  exit 1
fi
echo "   $(awk '/recovered/ {sub(/^.*recovered/, "recovered"); print; exit}' "$SLOG")"
"$WORK/crashcheck" -addr "$SADDR" -state "$WORK/state.strict" -prefix strict -workers 2 verify
kill -9 "$STRICT_PID" 2>/dev/null || true
STRICT_PID=""

echo "== kill-during-recovery round =="
# Recovery itself must be crash-safe: SIGKILL the restarting process while
# it is mid-attach-sweep (after "attaching to", before "listening on"),
# then prove the NEXT recovery still serves the full acknowledged frontier.
kill -9 "$SRV_PID"
SRV_PID=""
KILLED_MID=0
for attempt in $(seq 1 10); do
  : > "$LOG"
  "$WORK/nvmemcached" -listen 127.0.0.1:0 -mem $((64 << 20)) -buckets 4096 \
    -pmem-file "$PMEM" -shards "$SHARDS" -latency 0 -sweep 0 >> "$LOG" 2>&1 &
  SRV_PID=$!
  # Kill the instant the attach line appears — the window to "listening on"
  # is the recovery sweep.
  for _ in $(seq 1 500); do
    grep -q "attaching to" "$LOG" && break
    kill -0 "$SRV_PID" 2>/dev/null || break
  done
  kill -9 "$SRV_PID" 2>/dev/null || true
  wait "$SRV_PID" 2>/dev/null || true
  SRV_PID=""
  if grep -q "attaching to" "$LOG" && ! grep -q "listening on" "$LOG"; then
    KILLED_MID=1
    echo "   killed recovery in flight on attempt $attempt"
    break
  fi
done
if [ "$KILLED_MID" != 1 ]; then
  echo "could not land a SIGKILL inside the recovery window in 10 attempts" >&2
  exit 1
fi
start_server
if ! grep -q "recovered" "$LOG"; then
  echo "restart after killed recovery did not run recovery:" >&2
  cat "$LOG" >&2
  exit 1
fi
echo "   $(awk '/recovered/ {sub(/^.*recovered/, "recovered"); print; exit}' "$LOG")"
verify_all_rounds "$ROUNDS"

echo "== clean shutdown round (SIGTERM) =="
kill -TERM "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""
start_server
verify_all_rounds "$ROUNDS"

echo "crash_e2e: PASS — every acknowledged write survived $ROUNDS kill -9 crashes, a strict-syncer kill -9, a kill -9 mid-recovery, and a clean restart (shards=$SHARDS)"
