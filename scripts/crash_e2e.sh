#!/usr/bin/env bash
# crash_e2e.sh — the kill -9 crash matrix: proves, across REAL process
# boundaries, that nvmemcached on a file-backed NVRAM image (-pmem-file)
# recovers every acknowledged write after an abrupt SIGKILL — no SIGTERM
# image save, no shutdown handshake.
#
# Each round: start the server on the same pmem file, drive sets + counter
# incrs over TCP while recording the acknowledged frontier (cmd/crashcheck),
# kill -9 the server mid-load, restart it, and verify the frontier of EVERY
# round so far — earlier rounds must keep surviving later crashes. A final
# clean-SIGTERM cycle checks the graceful path too.
#
# Environment:
#   CRASH_ROUNDS  kill -9 rounds (default 3)
#   LOAD_SECONDS  load time before each kill (default 1)
#
# Portable across ubuntu/macos runners: no timeout(1), no /dev/tcp, no nc.
set -euo pipefail
cd "$(dirname "$0")/.."

ROUNDS="${CRASH_ROUNDS:-3}"
LOAD_SECONDS="${LOAD_SECONDS:-1}"

WORK=$(mktemp -d)
SRV_PID=""
cleanup() {
  [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== building =="
go build -o "$WORK/nvmemcached" ./cmd/nvmemcached
go build -o "$WORK/crashcheck" ./cmd/crashcheck

PMEM="$WORK/cache.pmem"
LOG="$WORK/server.log"

start_server() {
  : > "$LOG"
  "$WORK/nvmemcached" -listen 127.0.0.1:0 -mem $((64 << 20)) -buckets 4096 \
    -pmem-file "$PMEM" -latency 0 -sweep 0 >> "$LOG" 2>&1 &
  SRV_PID=$!
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR=$(awk '/listening on/ {a=$NF} END {print a}' "$LOG")
    [ -n "$ADDR" ] && break
    if ! kill -0 "$SRV_PID" 2>/dev/null; then
      echo "server died during startup:" >&2
      cat "$LOG" >&2
      exit 1
    fi
    sleep 0.1
  done
  if [ -z "$ADDR" ]; then
    echo "server never reported its listen address:" >&2
    cat "$LOG" >&2
    exit 1
  fi
}

verify_all_rounds() {
  upto=$1
  for p in $(seq 1 "$upto"); do
    "$WORK/crashcheck" -addr "$ADDR" -state "$WORK/state.$p" -prefix "r$p" verify
  done
}

echo "== round 0: fresh server =="
start_server
echo "   listening on $ADDR (pid $SRV_PID)"

for r in $(seq 1 "$ROUNDS"); do
  echo "== round $r: load, kill -9, recover =="
  "$WORK/crashcheck" -addr "$ADDR" -state "$WORK/state.$r" -prefix "r$r" load &
  LOAD_PID=$!
  sleep "$LOAD_SECONDS"
  kill -9 "$SRV_PID"
  SRV_PID=""
  wait "$LOAD_PID"

  ACKED=$(awk -F= '/^acked=/ {print $2}' "$WORK/state.$r")
  if [ "${ACKED:-0}" -lt 100 ]; then
    echo "round $r: only $ACKED acknowledged sets before the kill — not a meaningful crash test" >&2
    exit 1
  fi
  echo "   killed server with $ACKED acknowledged sets in flight history"

  start_server
  if ! grep -q "recovered" "$LOG"; then
    echo "restart did not run recovery:" >&2
    cat "$LOG" >&2
    exit 1
  fi
  echo "   $(awk '/recovered/ {sub(/^.*recovered/, "recovered"); print; exit}' "$LOG")"
  verify_all_rounds "$r"
done

echo "== clean shutdown round (SIGTERM) =="
kill -TERM "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""
start_server
verify_all_rounds "$ROUNDS"

echo "crash_e2e: PASS — every acknowledged write survived $ROUNDS kill -9 crashes and a clean restart"
