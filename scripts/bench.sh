#!/usr/bin/env bash
# bench.sh — run the byte-key map benchmark baselines and emit machine-
# readable JSON so the perf trajectory can be compared across PRs:
#
#   BENCH_ordered.json   single-thread ordered-map Set/Get/Scan
#   BENCH_parallel.json  1/2/4/8-goroutine Set/Get/Mixed rows (ordered map,
#                        hash map, and the end-to-end NV-Memcached mix)
#   BENCH_batch.json     amortized-fence Batch commits vs the single-op
#                        baseline (batch sizes 1/8/64, plus the 64-op
#                        speedup ratio)
#   BENCH_file.json      FileBackend (mmap) vs MemBackend set/get rows plus
#                        per-benchmark file_vs_mem ratios
#   BENCH_repl.json      NV-Memcached 1:4 mix solo vs with a live loopback
#                        replication follower acking every mutation, plus
#                        the repl_overhead ratio (follower/solo)
#   BENCH_snapshot.json  NV-Memcached 1:4 mix solo vs with a background
#                        goroutine continuously streaming live snapshots,
#                        plus the snapshot_overhead ratio (snapshot/solo)
#   BENCH_durability.json file-backend Set under the strict/synced/buffered
#                        durability policies, plus the async_vs_strict_file
#                        (synced/strict) and buffered_vs_strict ratios
#
# Usage:
#   scripts/bench.sh                  # both files, default length
#   scripts/bench.sh out.json         # custom path for the ordered baseline
#                                     # (the parallel sweep still runs)
#   BENCHTIME=100000x scripts/bench.sh    # longer run
#   COUNT=1 BENCHTIME=5000x scripts/bench.sh   # CI smoke mode
#
# Parallel rows record the best of COUNT runs (default 3): throughput on a
# shared/virtualized host is noisy downward, never upward, so the max is
# the least-noise estimate of the machine's capability.
set -euo pipefail
cd "$(dirname "$0")/.."

ORDERED_OUT="${1:-BENCH_ordered.json}"
PARALLEL_OUT="${PARALLEL_OUT:-BENCH_parallel.json}"
BATCH_OUT="${BATCH_OUT:-BENCH_batch.json}"
FILE_OUT="${FILE_OUT:-BENCH_file.json}"
REPL_OUT="${REPL_OUT:-BENCH_repl.json}"
SNAPSHOT_OUT="${SNAPSHOT_OUT:-BENCH_snapshot.json}"
DURABILITY_OUT="${DURABILITY_OUT:-BENCH_durability.json}"
BENCHTIME="${BENCHTIME:-20000x}"
COUNT="${COUNT:-3}"

raw=$(go test -run '^$' -bench 'BenchmarkOrderedMap(Set|Get|Scan)$' -benchtime "$BENCHTIME" .)
printf '%s\n' "$raw"

printf '%s\n' "$raw" | awk '
  BEGIN { printf "[\n"; sep="" }
  /^BenchmarkOrderedMap/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    iters = $2; ns = $3
    ops = "0"; keys = ""
    for (i = 4; i < NF; i++) {
      if ($(i+1) == "ops/s")  ops  = $i
      if ($(i+1) == "keys/s") keys = $i
    }
    printf "%s  {\"name\":\"%s\",\"iters\":%s,\"ns_per_op\":%s,\"ops_per_sec\":%s", sep, name, iters, ns, ops
    if (keys != "") printf ",\"keys_per_sec\":%s", keys
    printf "}"
    sep = ",\n"
  }
  END { printf "\n]\n" }
' > "$ORDERED_OUT"
echo "wrote $ORDERED_OUT"

# The parallel sweep: every Benchmark*Parallel sub-benchmark is named .../Ng
# where N is the goroutine count; the sharded-pool sweep nests a shard
# segment first (.../Ss/Ng), which stays part of the row name. The derived
# sharded_8x8_vs_single / sharded_8x8_file_vs_single ratios compare the
# 8-shard 8-goroutine pool against the single-runtime 8-goroutine ordered
# Set baseline — the machine-independent signal benchgate holds to
# tolerance. (On a single-vCPU runner the ratio hovers near 1: every
# configuration serializes on the one core. It gates against architectural
# regressions, and rises with the runner's core count.)
praw=$(go test -run '^$' -bench 'Parallel' -benchtime "$BENCHTIME" -count "$COUNT" .)
printf '%s\n' "$praw"

printf '%s\n' "$praw" | awk '
  /^Benchmark.*Parallel\// {
    name = $1; sub(/-[0-9]+$/, "", name)
    threads = name; sub(/^.*\//, "", threads); sub(/g$/, "", threads)
    base = name; sub(/\/[0-9]+g$/, "", base) # strip only the goroutine leg
    iters = $2; ns = $3
    ops = "0"
    for (i = 4; i < NF; i++) if ($(i+1) == "ops/s") ops = $i
    key = base "/" threads
    if (!(key in best) || ops+0 > best[key]+0) {
      best[key] = ops; bns[key] = ns; bit[key] = iters
      if (!(key in seen)) { order[n++] = key; seen[key] = 1 }
    }
  }
  END {
    printf "[\n"; sep=""
    for (i = 0; i < n; i++) {
      key = order[i]
      base = key; sub(/\/[0-9]+$/, "", base)
      threads = key; sub(/^.*\//, "", threads)
      printf "%s  {\"name\":\"%s\",\"threads\":%s,\"iters\":%s,\"ns_per_op\":%s,\"ops_per_sec\":%s}", \
        sep, base, threads, bit[key], bns[key], best[key]
      sep = ",\n"
    }
    single = best["BenchmarkOrderedMapSetParallel/8"]
    if (single+0 > 0) {
      sh = best["BenchmarkShardedOrderedMapSetParallel/8s/8"]
      if (sh+0 > 0)
        { printf "%s  {\"name\":\"sharded_8x8_vs_single\",\"ratio\":%.3f}", sep, sh / single; sep = ",\n" }
      shf = best["BenchmarkShardedOrderedMapSetFileParallel/8s/8"]
      if (shf+0 > 0)
        { printf "%s  {\"name\":\"sharded_8x8_file_vs_single\",\"ratio\":%.3f}", sep, shf / single; sep = ",\n" }
    }
    printf "\n]\n"
  }
' > "$PARALLEL_OUT"
echo "wrote $PARALLEL_OUT"

# The batch sweep: BenchmarkMapSetBatch/{single,1ops,8ops,64ops}, best of
# COUNT runs per row; speedup_64x is the acceptance-bar ratio (64-op batch
# over the non-batched baseline of the same run set).
braw=$(go test -run '^$' -bench 'BenchmarkMapSetBatch' -benchtime "$BENCHTIME" -count "$COUNT" .)
printf '%s\n' "$braw"

printf '%s\n' "$braw" | awk '
  /^BenchmarkMapSetBatch\// {
    name = $1; sub(/-[0-9]+$/, "", name)
    variant = name; sub(/^.*\//, "", variant)
    iters = $2; ns = $3
    ops = "0"
    for (i = 4; i < NF; i++) if ($(i+1) == "ops/s") ops = $i
    if (!(variant in best) || ops+0 > best[variant]+0) {
      best[variant] = ops; bns[variant] = ns; bit[variant] = iters
      if (!(variant in seen)) { order[n++] = variant; seen[variant] = 1 }
    }
  }
  END {
    printf "[\n"; sep=""
    for (i = 0; i < n; i++) {
      v = order[i]
      printf "%s  {\"name\":\"BenchmarkMapSetBatch\",\"variant\":\"%s\",\"iters\":%s,\"ns_per_op\":%s,\"ops_per_sec\":%s}", \
        sep, v, bit[v], bns[v], best[v]
      sep = ",\n"
    }
    if (("single" in best) && ("64ops" in best) && best["single"]+0 > 0)
      printf "%s  {\"name\":\"BenchmarkMapSetBatch\",\"variant\":\"speedup_64x\",\"ratio\":%.3f}", \
        sep, best["64ops"] / best["single"]
    printf "\n]\n"
  }
' > "$BATCH_OUT"
echo "wrote $BATCH_OUT"

# The backend sweep: BenchmarkMap{Set,Get}File/{mem,file} and
# BenchmarkNVMemcachedFile/{mem,file} compare the in-process MemBackend
# against the mmap FileBackend on identical workloads, best of COUNT runs
# per row; each benchmark also gets a file_vs_mem ratio row (the
# machine-independent signal — absolute file rows depend on the filesystem
# under the temp dir, which is why the bench gate holds BENCH_file.json to
# a looser tolerance).
fraw=$(go test -run '^$' -bench 'File$' -benchtime "$BENCHTIME" -count "$COUNT" .)
printf '%s\n' "$fraw"

printf '%s\n' "$fraw" | awk '
  /^Benchmark.*File\// {
    name = $1; sub(/-[0-9]+$/, "", name)
    base = name; sub(/\/.*$/, "", base)
    variant = name; sub(/^.*\//, "", variant)
    iters = $2; ns = $3
    ops = "0"
    for (i = 4; i < NF; i++) if ($(i+1) == "ops/s") ops = $i
    key = base "/" variant
    if (!(key in best) || ops+0 > best[key]+0) {
      best[key] = ops; bns[key] = ns; bit[key] = iters
      if (!(key in seen)) { order[n++] = key; seen[key] = 1 }
      if (!(base in bseen)) { border[bn++] = base; bseen[base] = 1 }
    }
  }
  END {
    printf "[\n"; sep=""
    for (i = 0; i < n; i++) {
      key = order[i]
      base = key; sub(/\/.*$/, "", base)
      variant = key; sub(/^.*\//, "", variant)
      printf "%s  {\"name\":\"%s\",\"variant\":\"%s\",\"iters\":%s,\"ns_per_op\":%s,\"ops_per_sec\":%s}", \
        sep, base, variant, bit[key], bns[key], best[key]
      sep = ",\n"
    }
    for (i = 0; i < bn; i++) {
      base = border[i]
      m = best[base "/mem"]; f = best[base "/file"]
      if (m+0 > 0 && f+0 > 0)
        printf "%s  {\"name\":\"%s\",\"variant\":\"file_vs_mem\",\"ratio\":%.3f}", sep, base, f / m
      sep = ",\n"
    }
    printf "\n]\n"
  }
' > "$FILE_OUT"
echo "wrote $FILE_OUT"

# The replication sweep: BenchmarkNVMemcachedRepl/{solo,follower} prices the
# warm-standby tax — the same 1:4 set:get mix with no replication and with a
# live in-process loopback follower acking every mutation, best of COUNT
# runs per row. repl_overhead (follower/solo) is the machine-independent
# signal; the absolute follower row also prices the runner's loopback RTT,
# which is why the bench gate holds BENCH_repl.json's absolute rows to the
# looser file tolerance.
rraw=$(go test -run '^$' -bench 'BenchmarkNVMemcachedRepl' -benchtime "$BENCHTIME" -count "$COUNT" .)
printf '%s\n' "$rraw"

printf '%s\n' "$rraw" | awk '
  /^BenchmarkNVMemcachedRepl\// {
    name = $1; sub(/-[0-9]+$/, "", name)
    variant = name; sub(/^.*\//, "", variant)
    iters = $2; ns = $3
    ops = "0"
    for (i = 4; i < NF; i++) if ($(i+1) == "ops/s") ops = $i
    if (!(variant in best) || ops+0 > best[variant]+0) {
      best[variant] = ops; bns[variant] = ns; bit[variant] = iters
      if (!(variant in seen)) { order[n++] = variant; seen[variant] = 1 }
    }
  }
  END {
    printf "[\n"; sep=""
    for (i = 0; i < n; i++) {
      v = order[i]
      printf "%s  {\"name\":\"BenchmarkNVMemcachedRepl\",\"variant\":\"%s\",\"iters\":%s,\"ns_per_op\":%s,\"ops_per_sec\":%s}", \
        sep, v, bit[v], bns[v], best[v]
      sep = ",\n"
    }
    if (("solo" in best) && ("follower" in best) && best["solo"]+0 > 0)
      printf "%s  {\"name\":\"BenchmarkNVMemcachedRepl\",\"variant\":\"repl_overhead\",\"ratio\":%.3f}", \
        sep, best["follower"] / best["solo"]
    printf "\n]\n"
  }
' > "$REPL_OUT"
echo "wrote $REPL_OUT"

# The snapshot sweep: BenchmarkSnapshotLive/{solo,snapshot} prices the live
# point-in-time snapshot tax — the same 1:4 set:get mix with no snapshot and
# with a background goroutine continuously streaming the full key space, best
# of COUNT runs per row. snapshot_overhead (snapshot/solo) is the
# machine-independent signal benchgate holds to tolerance.
sraw=$(go test -run '^$' -bench 'BenchmarkSnapshotLive' -benchtime "$BENCHTIME" -count "$COUNT" .)
printf '%s\n' "$sraw"

printf '%s\n' "$sraw" | awk '
  /^BenchmarkSnapshotLive\// {
    name = $1; sub(/-[0-9]+$/, "", name)
    variant = name; sub(/^.*\//, "", variant)
    iters = $2; ns = $3
    ops = "0"
    for (i = 4; i < NF; i++) if ($(i+1) == "ops/s") ops = $i
    if (!(variant in best) || ops+0 > best[variant]+0) {
      best[variant] = ops; bns[variant] = ns; bit[variant] = iters
      if (!(variant in seen)) { order[n++] = variant; seen[variant] = 1 }
    }
  }
  END {
    printf "[\n"; sep=""
    for (i = 0; i < n; i++) {
      v = order[i]
      printf "%s  {\"name\":\"BenchmarkSnapshotLive\",\"variant\":\"%s\",\"iters\":%s,\"ns_per_op\":%s,\"ops_per_sec\":%s}", \
        sep, v, bit[v], bns[v], best[v]
      sep = ",\n"
    }
    if (("solo" in best) && ("snapshot" in best) && best["solo"]+0 > 0)
      printf "%s  {\"name\":\"BenchmarkSnapshotLive\",\"variant\":\"snapshot_overhead\",\"ratio\":%.3f}", \
        sep, best["snapshot"] / best["solo"]
    printf "\n]\n"
  }
' > "$SNAPSHOT_OUT"
echo "wrote $SNAPSHOT_OUT"

# The durability sweep: BenchmarkDurability/{strict,synced,buffered} prices
# the acknowledged-operation policies on the file backend, best of COUNT
# runs per row. The ratios are the machine-independent signals:
# async_vs_strict_file (synced/strict) is the async msync pipeline's win
# over fence-time fdatasync, buffered_vs_strict the full bounded-staleness
# win. Absolute rows price the storage stack under the temp dir, so the
# bench gate holds them to the looser file tolerance.
draw=$(go test -run '^$' -bench 'BenchmarkDurability' -benchtime "$BENCHTIME" -count "$COUNT" .)
printf '%s\n' "$draw"

printf '%s\n' "$draw" | awk '
  /^BenchmarkDurability\// {
    name = $1; sub(/-[0-9]+$/, "", name)
    variant = name; sub(/^.*\//, "", variant)
    iters = $2; ns = $3
    ops = "0"
    for (i = 4; i < NF; i++) if ($(i+1) == "ops/s") ops = $i
    if (!(variant in best) || ops+0 > best[variant]+0) {
      best[variant] = ops; bns[variant] = ns; bit[variant] = iters
      if (!(variant in seen)) { order[n++] = variant; seen[variant] = 1 }
    }
  }
  END {
    printf "[\n"; sep=""
    for (i = 0; i < n; i++) {
      v = order[i]
      printf "%s  {\"name\":\"BenchmarkDurability\",\"variant\":\"%s\",\"iters\":%s,\"ns_per_op\":%s,\"ops_per_sec\":%s}", \
        sep, v, bit[v], bns[v], best[v]
      sep = ",\n"
    }
    if (("strict" in best) && best["strict"]+0 > 0) {
      if ("synced" in best)
        { printf "%s  {\"name\":\"BenchmarkDurability\",\"variant\":\"async_vs_strict_file\",\"ratio\":%.3f}", \
            sep, best["synced"] / best["strict"]; sep = ",\n" }
      if ("buffered" in best)
        { printf "%s  {\"name\":\"BenchmarkDurability\",\"variant\":\"buffered_vs_strict\",\"ratio\":%.3f}", \
            sep, best["buffered"] / best["strict"]; sep = ",\n" }
    }
    printf "\n]\n"
  }
' > "$DURABILITY_OUT"
echo "wrote $DURABILITY_OUT"
