#!/usr/bin/env bash
# bench.sh — run the ordered byte-key map benchmark baseline and emit a
# machine-readable BENCH_ordered.json (ns/op and ops/s per benchmark), so
# the perf trajectory of the ordered path can be compared across PRs.
#
# Usage:
#   scripts/bench.sh [output.json]
#   BENCHTIME=100000x scripts/bench.sh      # longer run
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_ordered.json}"
BENCHTIME="${BENCHTIME:-20000x}"

raw=$(go test -run '^$' -bench 'BenchmarkOrderedMap' -benchtime "$BENCHTIME" .)
printf '%s\n' "$raw"

printf '%s\n' "$raw" | awk '
  BEGIN { printf "[\n"; sep="" }
  /^BenchmarkOrderedMap/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    iters = $2; ns = $3
    ops = "0"; keys = ""
    for (i = 4; i < NF; i++) {
      if ($(i+1) == "ops/s")  ops  = $i
      if ($(i+1) == "keys/s") keys = $i
    }
    printf "%s  {\"name\":\"%s\",\"iters\":%s,\"ns_per_op\":%s,\"ops_per_sec\":%s", sep, name, iters, ns, ops
    if (keys != "") printf ",\"keys_per_sec\":%s", keys
    printf "}"
    sep = ",\n"
  }
  END { printf "\n]\n" }
' > "$OUT"

echo "wrote $OUT"
