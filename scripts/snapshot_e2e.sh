#!/usr/bin/env bash
# snapshot_e2e.sh — live point-in-time snapshots across REAL process
# boundaries: drive a file-backed nvmemcached, freeze a stable frontier
# (phase A), then SIGUSR1-dump a snapshot WHILE phase B hammers writes over
# concurrent connections, restore the stream into a FRESH server, and verify
# phase A byte-faithfully — values, flags, expirations, counter state and
# the gets/cas chain (cas == generation+1) all must reproduce exactly.
# Phase A's keys are never touched during the dump, so the weakly consistent
# cut is REQUIRED to carry every one of them.
#
# Portable across ubuntu/macos runners: no timeout(1), no /dev/tcp, no nc.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
SRV_PID=""
cleanup() {
  [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== building =="
go build -o "$WORK/nvmemcached" ./cmd/nvmemcached
go build -o "$WORK/crashcheck" ./cmd/crashcheck

SNAP="$WORK/cache.snap"
LOG="$WORK/server.log"

start_server() {
  : > "$LOG"
  "$WORK/nvmemcached" -listen 127.0.0.1:0 -mem $((64 << 20)) -buckets 4096 \
    -latency 0 -sweep 0 "$@" >> "$LOG" 2>&1 &
  SRV_PID=$!
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR=$(awk '/listening on/ {a=$NF} END {print a}' "$LOG")
    [ -n "$ADDR" ] && break
    if ! kill -0 "$SRV_PID" 2>/dev/null; then
      echo "server died during startup:" >&2
      cat "$LOG" >&2
      exit 1
    fi
    sleep 0.1
  done
  if [ -z "$ADDR" ]; then
    echo "server never reported its listen address:" >&2
    cat "$LOG" >&2
    exit 1
  fi
}

echo "== phase A: build the stable frontier =="
start_server -pmem-file "$WORK/src.pmem" -snapshot-to "$SNAP"
echo "   listening on $ADDR (pid $SRV_PID)"
"$WORK/crashcheck" -addr "$ADDR" -state "$WORK/state.A" -prefix snapA -n 2000 load
ACKED=$(awk -F= '/^acked=/ {print $2}' "$WORK/state.A")
if [ "${ACKED:-0}" -lt 2000 ]; then
  echo "phase A acknowledged only ${ACKED:-0}/2000 sets" >&2
  exit 1
fi
echo "   phase A frontier: $ACKED acknowledged sets"

echo "== phase B: SIGUSR1 snapshot under live write load =="
"$WORK/crashcheck" -addr "$ADDR" -state "$WORK/state.B" -prefix snapB -workers 2 load &
LOAD_PID=$!
sleep 0.3
kill -USR1 "$SRV_PID"
for _ in $(seq 1 300); do
  grep -q "snapshot: .* items to" "$LOG" && break
  if ! kill -0 "$SRV_PID" 2>/dev/null; then
    echo "server died during the snapshot:" >&2
    cat "$LOG" >&2
    exit 1
  fi
  sleep 0.1
done
if ! grep -q "snapshot: .* items to" "$LOG"; then
  echo "snapshot never completed:" >&2
  cat "$LOG" >&2
  exit 1
fi
echo "   $(awk '/snapshot: .* items to/ {sub(/^.*snapshot:/, "snapshot:"); print; exit}' "$LOG")"
kill -9 "$SRV_PID"
SRV_PID=""
wait "$LOAD_PID"
if [ ! -s "$SNAP" ]; then
  echo "snapshot file $SNAP is missing or empty" >&2
  exit 1
fi
if ls "$SNAP.tmp" >/dev/null 2>&1; then
  echo "snapshot left its .tmp behind after the rename" >&2
  exit 1
fi

echo "== restore into a fresh server =="
start_server -pmem-file "$WORK/dst.pmem" -restore-from "$SNAP"
if ! grep -q "restored .* items from snapshot" "$LOG"; then
  echo "restore did not run:" >&2
  cat "$LOG" >&2
  exit 1
fi
echo "   $(awk '/restored .* items from snapshot/ {sub(/^.*restored/, "restored"); print; exit}' "$LOG")"
"$WORK/crashcheck" -addr "$ADDR" -state "$WORK/state.A" -prefix snapA verify

echo "snapshot_e2e: PASS — a snapshot taken under concurrent write load restored the stable frontier byte-faithfully (values, flags, expirations, counters, CAS chain)"
