#!/usr/bin/env bash
# benchgate.sh — make CI actually read the bench artifacts it uploads: every
# metric in the freshly produced BENCH_*.json files is compared against the
# committed baseline of the same file (git show HEAD:<file>), and the job
# fails if any gated metric regressed beyond tolerance. A 2× throughput
# collapse can no longer merge green.
#
# Usage:
#   scripts/bench.sh && scripts/benchgate.sh
#
# Environment:
#   BENCH_TOLERANCE        allowed fractional drop per metric (default 0.30:
#                          CI smoke runs are short and shared-runner noisy)
#   BENCH_TOLERANCE_FILE   tolerance for BENCH_file.json only (default 0.90:
#                          absolute file-backend rows depend on the runner's
#                          filesystem; the file_vs_mem ratio rows are the
#                          meaningful signal and ride the same tolerance)
#   BENCH_TOLERANCE_LAT    tolerance for latency (lat_us) rows (default 1.50:
#                          tail percentiles on shared runners are very noisy;
#                          the gate only catches order-of-magnitude blowups)
#   BENCH_FILES            files to gate (default: all BENCH_*.json)
#
# Output: a markdown table per file, appended to $GITHUB_STEP_SUMMARY when
# set (the Actions job summary) and always echoed to stdout. Improvements
# beyond tolerance are flagged as a reminder to refresh the committed
# baseline, but never fail the gate — only regressions do.
set -euo pipefail
cd "$(dirname "$0")/.."

TOLERANCE="${BENCH_TOLERANCE:-0.30}"
TOLERANCE_FILE="${BENCH_TOLERANCE_FILE:-0.90}"
TOLERANCE_LAT="${BENCH_TOLERANCE_LAT:-1.50}"
FILES="${BENCH_FILES:-BENCH_ordered.json BENCH_parallel.json BENCH_batch.json BENCH_file.json BENCH_repl.json BENCH_latency.json BENCH_snapshot.json BENCH_durability.json}"

command -v jq >/dev/null || { echo "benchgate: jq is required" >&2; exit 2; }

# flatten — stdin JSON array to one "key<TAB>value<TAB>kind" line per
# metric: key is name[/variant][/<threads>g], value is ops_per_sec / ratio /
# keys_per_sec / lat_us, kind distinguishes derived ratio rows ("ratio"),
# absolute throughput rows ("abs"), and latency rows ("lat" — the one kind
# where LOWER is better, so the regression direction inverts).
flatten() {
  jq -r '.[] | [
    (.name
      + (if .variant  then "/" + .variant                else "" end)
      + (if .threads  then "/" + (.threads|tostring) + "g" else "" end)),
    ((.ops_per_sec // .ratio // .keys_per_sec // .lat_us // 0) | tostring),
    (if .ratio then "ratio" elif .lat_us then "lat" else "abs" end)
  ] | @tsv'
}

summary() {
  echo "$1"
  if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
    echo "$1" >> "$GITHUB_STEP_SUMMARY"
  fi
}

fail=0
summary "## Bench gate (tolerance ${TOLERANCE}, file rows ${TOLERANCE_FILE}, latency rows ${TOLERANCE_LAT})"
for f in $FILES; do
  if [ ! -f "$f" ]; then
    summary ""
    summary "**$f**: missing from the working tree — did bench.sh run?"
    fail=1
    continue
  fi
  if ! base_json=$(git show "HEAD:$f" 2>/dev/null); then
    summary ""
    summary "**$f**: no committed baseline at HEAD (new benchmark file; not gated)."
    continue
  fi
  # BENCH_file.json's absolute rows depend on the runner's filesystem, and
  # BENCH_repl.json's follower row on its loopback RTT — both get the loose
  # tolerance; their file_vs_mem / repl_overhead RATIO rows are the
  # machine-independent signal and ride the default tolerance like
  # everything else. BENCH_durability.json is loose on BOTH kinds: even its
  # ratio rows (async_vs_strict_file, buffered_vs_strict) divide by the
  # strict row, which prices the runner's fdatasync latency — a storage-
  # stack property that legitimately varies by an order of magnitude.
  tol="$TOLERANCE" tol_abs="$TOLERANCE"
  case "$f" in
    BENCH_file.json|BENCH_repl.json) tol_abs="$TOLERANCE_FILE" ;;
    BENCH_durability.json) tol="$TOLERANCE_FILE" tol_abs="$TOLERANCE_FILE" ;;
  esac

  summary ""
  summary "**$f**"
  summary ""
  summary "| metric | baseline | current | ratio | status |"
  summary "|---|---:|---:|---:|---|"

  rows=$(
    {
      printf '%s\n' "$base_json" | flatten | sed 's/^/B\t/'
      flatten < "$f" | sed 's/^/C\t/'
    } | awk -F'\t' -v rtol="$tol" -v atol="$tol_abs" -v ltol="$TOLERANCE_LAT" '
      $1 == "B" { base[$2] = $3; kind[$2] = $4; order[n++] = $2 }
      $1 == "C" { cur[$2] = $3 }
      END {
        bad = 0
        for (i = 0; i < n; i++) {
          k = order[i]
          lat = (kind[k] == "lat")
          tol = lat ? ltol : (kind[k] == "ratio") ? rtol : atol
          b = base[k] + 0
          if (!(k in cur)) {
            printf "| %s | %.4g | (missing) | — | ❌ metric disappeared |\n", k, b
            bad = 1
            continue
          }
          c = cur[k] + 0
          if (b <= 0) {
            printf "| %s | %.4g | %.4g | — | skipped (zero baseline) |\n", k, b, c
            continue
          }
          # For throughput/ratio rows higher is better and a drop below
          # 1 - tol fails; for latency rows lower is better and a rise above
          # 1 + tol fails.
          r = c / b
          worse = lat ? (r > 1 + tol) : (r < 1 - tol)
          better = lat ? (r < 1 / (1 + tol)) : (r > 1 + tol)
          if (worse) {
            printf "| %s | %.4g | %.4g | %.2f | ❌ regression beyond tolerance |\n", k, b, c, r
            bad = 1
          } else if (better) {
            printf "| %s | %.4g | %.4g | %.2f | ⬆️ improvement — refresh baseline |\n", k, b, c, r
          } else {
            printf "| %s | %.4g | %.4g | %.2f | ✅ |\n", k, b, c, r
          }
        }
        for (k in cur) if (!(k in base))
          printf "| %s | (new) | %.4g | — | ➕ not gated |\n", k, cur[k] + 0
        exit bad
      }'
  ) && file_ok=1 || file_ok=0
  while IFS= read -r line; do summary "$line"; done <<< "$rows"
  [ "$file_ok" = 1 ] || fail=1
done

summary ""
if [ "$fail" != 0 ]; then
  summary "**Bench gate: FAILED** — a gated metric regressed beyond tolerance (or is missing)."
  exit 1
fi
summary "Bench gate: all metrics within tolerance."
