#!/usr/bin/env bash
# failover_e2e.sh — the warm-standby failover matrix: proves, across REAL
# process boundaries, that a follower streaming from a primary over TCP can
# take over after the primary is kill -9'd mid-load and serve 100% of the
# acknowledged frontier — values, flags, expiry, counter values, and the CAS
# generation chain (cas == gen+1) — and that the promoted follower is itself
# a first-class durable server (kill -9 + recover + verify again).
#
# The run also exercises reconnect-and-resume in the SAME run: mid-load the
# primary drops its followers (SIGUSR2 fault injection), the follower must
# reconnect with backoff, resume from its durable seq, and catch back up
# before the real kill lands.
#
# Phases:
#   1. start primary (-replicate-to) + follower (-follow), wait until both
#      report repl_state streaming over the memcached stats command
#   2. load round f1 against the primary; mid-load SIGUSR2 the primary and
#      wait for the follower's repl_reconnects to tick and streaming to
#      resume; keep loading; kill -9 the primary mid-load
#   3. SIGUSR1 the follower -> promoted; verify the ENTIRE f1 acked frontier
#      against the promoted follower
#   4. load round f2 against the promoted follower, kill -9 it mid-load,
#      restart its image with -promote, verify f1 AND f2
#
# Environment:
#   LOAD_SECONDS      load time before each fault (default 1)
#   FAILOVER_WORKERS  concurrent load workers (default 1; nightly runs 4)
#
# Portable across ubuntu/macos runners: no timeout(1), no /dev/tcp, no nc.
set -euo pipefail
cd "$(dirname "$0")/.."

LOAD_SECONDS="${LOAD_SECONDS:-1}"
WORKERS="${FAILOVER_WORKERS:-1}"

WORK=$(mktemp -d)
PRIMARY_PID=""
FOLLOWER_PID=""
cleanup() {
  [ -n "$PRIMARY_PID" ] && kill -9 "$PRIMARY_PID" 2>/dev/null || true
  [ -n "$FOLLOWER_PID" ] && kill -9 "$FOLLOWER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== building =="
go build -o "$WORK/nvmemcached" ./cmd/nvmemcached
go build -o "$WORK/crashcheck" ./cmd/crashcheck

PLOG="$WORK/primary.log"
FLOG="$WORK/follower.log"

# scrape_addr LOG PATTERN — last match's final field, with startup polling.
scrape_addr() {
  log=$1 pat=$2 pid=$3
  addr=""
  for _ in $(seq 1 100); do
    addr=$(awk -v p="$pat" '$0 ~ p {a=$NF} END {print a}' "$log")
    [ -n "$addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "server died during startup:" >&2
      cat "$log" >&2
      exit 1
    fi
    sleep 0.1
  done
  if [ -z "$addr" ]; then
    echo "server never logged '$pat':" >&2
    cat "$log" >&2
    exit 1
  fi
  printf '%s' "$addr"
}

get_stat() { # get_stat ADDR NAME
  "$WORK/crashcheck" -addr "$1" stats 2>/dev/null | awk -v n="$2" '$1 == n {print $2}'
}

wait_stat() { # wait_stat WHO ADDR NAME WANT — poll until NAME == WANT
  who=$1 addr=$2 name=$3 want=$4
  for _ in $(seq 1 100); do
    [ "$(get_stat "$addr" "$name")" = "$want" ] && return 0
    sleep 0.1
  done
  echo "$who: stat $name never reached $want (last: $(get_stat "$addr" "$name"))" >&2
  exit 1
}

wait_stat_ge() { # wait_stat_ge WHO ADDR NAME MIN — poll until NAME >= MIN
  who=$1 addr=$2 name=$3 min=$4
  for _ in $(seq 1 100); do
    v=$(get_stat "$addr" "$name")
    [ "${v:-0}" -ge "$min" ] 2>/dev/null && return 0
    sleep 0.1
  done
  echo "$who: stat $name never reached >= $min (last: $(get_stat "$addr" "$name"))" >&2
  exit 1
}

acked_total() { # sum of a round's acked frontier over its per-worker state files
  cat "$WORK/state.$1"* 2>/dev/null | awk -F= '/^acked=/ {s += $2} END {print s + 0}'
}

echo "== phase 1: primary + warm standby =="
"$WORK/nvmemcached" -listen 127.0.0.1:0 -mem $((64 << 20)) -buckets 4096 \
  -pmem-file "$WORK/primary.pmem" -replicate-to 127.0.0.1:0 \
  -latency 0 -sweep 0 > "$PLOG" 2>&1 &
PRIMARY_PID=$!
REPL_ADDR=$(scrape_addr "$PLOG" "accepting followers on" "$PRIMARY_PID")
PRIMARY_ADDR=$(scrape_addr "$PLOG" "listening on" "$PRIMARY_PID")
echo "   primary $PRIMARY_ADDR (pid $PRIMARY_PID), replication $REPL_ADDR"

"$WORK/nvmemcached" -listen 127.0.0.1:0 -mem $((64 << 20)) -buckets 4096 \
  -pmem-file "$WORK/follower.pmem" -follow "$REPL_ADDR" \
  -latency 0 -sweep 0 > "$FLOG" 2>&1 &
FOLLOWER_PID=$!
FOLLOWER_ADDR=$(scrape_addr "$FLOG" "listening on" "$FOLLOWER_PID")
echo "   follower $FOLLOWER_ADDR (pid $FOLLOWER_PID)"

wait_stat follower "$FOLLOWER_ADDR" repl_state streaming
wait_stat primary "$PRIMARY_ADDR" repl_state streaming
echo "   both sides streaming"

echo "== phase 2: load, drop-and-reconnect, kill -9 the primary =="
"$WORK/crashcheck" -addr "$PRIMARY_ADDR" -state "$WORK/state.f1" -prefix f1 \
  -workers "$WORKERS" load &
LOAD_PID=$!
sleep "$LOAD_SECONDS"

# Fault injection: the primary severs every follower connection. The follower
# must reconnect (repl_reconnects ticks past its initial 1), resume from its
# durable seq, and both sides must report streaming again — all while the
# load keeps acknowledging writes.
kill -USR2 "$PRIMARY_PID"
wait_stat_ge follower "$FOLLOWER_ADDR" repl_reconnects 2
wait_stat follower "$FOLLOWER_ADDR" repl_state streaming
wait_stat primary "$PRIMARY_ADDR" repl_state streaming
RECONNECTS=$(get_stat "$FOLLOWER_ADDR" repl_reconnects)
echo "   follower reconnected and resumed (repl_reconnects=$RECONNECTS)"

sleep "$LOAD_SECONDS"
kill -9 "$PRIMARY_PID"
PRIMARY_PID=""
wait "$LOAD_PID"

ACKED=$(acked_total f1)
if [ "${ACKED:-0}" -lt 100 ]; then
  echo "phase 2: only $ACKED acknowledged sets before the kill — not a meaningful failover test" >&2
  exit 1
fi
echo "   killed primary with $ACKED acknowledged sets in flight history"

echo "== phase 3: promote the follower, verify the acked frontier =="
kill -USR1 "$FOLLOWER_PID"
wait_stat follower "$FOLLOWER_ADDR" repl_state promoted
"$WORK/crashcheck" -addr "$FOLLOWER_ADDR" -state "$WORK/state.f1" -prefix f1 \
  -workers "$WORKERS" verify
echo "   promoted follower serves 100% of the acked frontier"

echo "== phase 4: kill -9 the promoted follower, recover, verify both rounds =="
"$WORK/crashcheck" -addr "$FOLLOWER_ADDR" -state "$WORK/state.f2" -prefix f2 \
  -workers "$WORKERS" load &
LOAD_PID=$!
sleep "$LOAD_SECONDS"
kill -9 "$FOLLOWER_PID"
FOLLOWER_PID=""
wait "$LOAD_PID"

ACKED2=$(acked_total f2)
if [ "${ACKED2:-0}" -lt 100 ]; then
  echo "phase 4: only $ACKED2 acknowledged sets before the kill — not a meaningful crash test" >&2
  exit 1
fi
echo "   killed promoted follower with $ACKED2 acknowledged sets in flight history"

"$WORK/nvmemcached" -listen 127.0.0.1:0 -mem $((64 << 20)) -buckets 4096 \
  -pmem-file "$WORK/follower.pmem" -promote -latency 0 -sweep 0 > "$FLOG" 2>&1 &
FOLLOWER_PID=$!
FOLLOWER_ADDR=$(scrape_addr "$FLOG" "listening on" "$FOLLOWER_PID")
if ! grep -q "recovered" "$FLOG"; then
  echo "promoted restart did not run recovery:" >&2
  cat "$FLOG" >&2
  exit 1
fi
echo "   $(awk '/recovered/ {sub(/^.*recovered/, "recovered"); print; exit}' "$FLOG")"
"$WORK/crashcheck" -addr "$FOLLOWER_ADDR" -state "$WORK/state.f1" -prefix f1 \
  -workers "$WORKERS" verify
"$WORK/crashcheck" -addr "$FOLLOWER_ADDR" -state "$WORK/state.f2" -prefix f2 \
  -workers "$WORKERS" verify

echo "failover_e2e: PASS — promoted follower served every acknowledged write after a primary kill -9 (with a reconnect-and-resume mid-run), then survived its own kill -9 (workers=$WORKERS)"
