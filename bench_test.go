// Package repro_test holds the top-level benchmark harness: one testing.B
// benchmark per table and figure of the paper's evaluation (§6), driving the
// same machinery as cmd/nvbench. Run with:
//
//	go test -bench=. -benchmem
//
// Custom metrics: ops/s is end-to-end structure throughput (excluding
// prefill it is reported by the harness itself), syncs/op counts fences that
// waited for simulated NVRAM write-backs — the quantity the paper's
// techniques minimize.
package repro_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/memcache"
	"repro/internal/nvram"
	"repro/logfree"
)

// benchPoint runs exactly b.N operations through the workload harness.
func benchPoint(b *testing.B, cfg bench.Config) {
	b.Helper()
	cfg.Ops = b.N
	cfg.Duration = time.Hour // ignored in ops mode
	r, err := bench.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(r.Throughput, "ops/s")
	b.ReportMetric(r.SyncsPerOp(), "syncs/op")
}

// BenchmarkTable1 measures the primitive Table 1 parameterizes: the cost of
// one sync operation (CLWB+fence) at the paper's default NVRAM write
// latency.
func BenchmarkTable1SyncOperation(b *testing.B) {
	dev := nvram.New(nvram.Config{Size: 1 << 20, WriteLatency: nvram.DefaultWriteLatency})
	f := dev.NewFlusher()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev.Store(64, uint64(i))
		f.Sync(64)
	}
}

// BenchmarkFig5 reproduces Figure 5's benchmark points: 50/50 insert/delete
// throughput, log-free (LC) vs redo-log implementations.
func BenchmarkFig5(b *testing.B) {
	for _, st := range []bench.Structure{bench.SkipList, bench.List, bench.Hash, bench.BST} {
		size := 4096
		if st == bench.List {
			size = 1024
		}
		for _, impl := range []bench.Impl{bench.ImplLC, bench.ImplLog} {
			for _, th := range []int{1, 8} {
				b.Run(fmt.Sprintf("%s/%s/%dt", st, impl, th), func(b *testing.B) {
					benchPoint(b, bench.Config{
						Structure: st, Impl: impl, Size: size,
						Threads: th, UpdateRatio: 1.0,
					})
				})
			}
		}
	}
}

// BenchmarkFig6 reproduces Figure 6: the linked list under growing NVRAM
// write latency.
func BenchmarkFig6(b *testing.B) {
	for _, lat := range []time.Duration{125 * time.Nanosecond, 1250 * time.Nanosecond, 12500 * time.Nanosecond} {
		for _, impl := range []bench.Impl{bench.ImplLC, bench.ImplLog} {
			b.Run(fmt.Sprintf("%v/%s", lat, impl), func(b *testing.B) {
				benchPoint(b, bench.Config{
					Structure: bench.List, Impl: impl, Size: 1024,
					Threads: 1, UpdateRatio: 1.0, WriteLatency: lat,
				})
			})
		}
	}
}

// BenchmarkFig7 reproduces Figure 7: durable vs NVRAM-oblivious linked list.
func BenchmarkFig7(b *testing.B) {
	for _, size := range []int{128, 4096} {
		for _, impl := range []bench.Impl{bench.ImplLC, bench.ImplVolatile} {
			b.Run(fmt.Sprintf("%d/%s", size, impl), func(b *testing.B) {
				benchPoint(b, bench.Config{
					Structure: bench.List, Impl: impl, Size: size,
					Threads: 1, UpdateRatio: 1.0,
				})
			})
		}
	}
}

// BenchmarkFig8 reproduces Figure 8: LP vs LC vs log-based with identical
// memory management, 1024 elements, 100% updates.
func BenchmarkFig8(b *testing.B) {
	for _, st := range []bench.Structure{bench.Hash, bench.SkipList, bench.List, bench.BST} {
		for _, impl := range []bench.Impl{bench.ImplLP, bench.ImplLC, bench.ImplLogEpochAlloc} {
			b.Run(fmt.Sprintf("%s/%s/1t", st, impl), func(b *testing.B) {
				benchPoint(b, bench.Config{
					Structure: st, Impl: impl, Size: 1024,
					Threads: 1, UpdateRatio: 1.0,
				})
			})
		}
	}
}

// BenchmarkFig9a reproduces Figure 9a: APT hit rates on a skip list. The
// hit-rate metrics are the figure's series; throughput is incidental.
func BenchmarkFig9a(b *testing.B) {
	for _, size := range []int{4096, 65536} {
		b.Run(fmt.Sprintf("%d", size), func(b *testing.B) {
			cfg := bench.Config{
				Structure: bench.SkipList, Impl: bench.ImplLP, Size: size,
				Threads: 1, UpdateRatio: 1.0, Ops: b.N, Duration: time.Hour,
			}
			r, err := bench.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*r.AllocHitRate(), "insert-hit%")
			b.ReportMetric(100*r.UnlinkHitRate(), "delete-hit%")
		})
	}
}

// BenchmarkFig9b reproduces Figure 9b: NV-epochs vs durable alloc logging.
func BenchmarkFig9b(b *testing.B) {
	for _, st := range []bench.Structure{bench.Hash, bench.BST, bench.SkipList, bench.List} {
		for _, impl := range []bench.Impl{bench.ImplLP, bench.ImplLPAllocLog} {
			b.Run(fmt.Sprintf("%s/%s", st, impl), func(b *testing.B) {
				benchPoint(b, bench.Config{
					Structure: st, Impl: impl, Size: 1024,
					Threads: 1, UpdateRatio: 1.0,
				})
			})
		}
	}
}

// BenchmarkFig10 reproduces Figure 10: recovery time after a crash. Each
// iteration builds a structure, crashes it mid-burst, and runs the §5.5
// recovery procedure; recovery-ns is the figure's series.
func BenchmarkFig10(b *testing.B) {
	for _, st := range []bench.Structure{bench.Hash, bench.BST, bench.SkipList, bench.List} {
		size := 65536
		if st == bench.List {
			size = 4096
		}
		b.Run(fmt.Sprintf("%s/%d", st, size), func(b *testing.B) {
			var total time.Duration
			for i := 0; i < b.N; i++ {
				dur, _, err := bench.RecoveryPoint(st, size, 4)
				if err != nil {
					b.Fatal(err)
				}
				total += dur
			}
			b.ReportMetric(float64(total.Nanoseconds())/float64(b.N), "recovery-ns")
		})
	}
}

// BenchmarkFig11 reproduces Figure 11's throughput comparison in-process:
// stock-memcached model, memcached-clht model, NV-Memcached.
func BenchmarkFig11(b *testing.B) {
	const keys = 10000
	mt := &memcache.Memtier{KeyRange: keys, SetRatio: 1, GetRatio: 4, ValueLen: 64, Threads: 4}
	cfg := memcache.Config{MemoryBytes: 64 << 20, Buckets: 1 << 14, MaxConns: 4}

	b.Run("memcached", func(b *testing.B) {
		c := memcache.NewLockCache()
		if err := mt.Preload(c); err != nil {
			b.Fatal(err)
		}
		runMemtierN(b, mt, func(int) memcache.KV { return c })
	})
	b.Run("memcached-clht", func(b *testing.B) {
		c, err := memcache.NewCLHTCache(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := mt.Preload(c.Handle(0)); err != nil {
			b.Fatal(err)
		}
		runMemtierN(b, mt, func(tid int) memcache.KV { return c.Handle(tid) })
	})
	b.Run("nv-memcached", func(b *testing.B) {
		c, err := memcache.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := mt.Preload(c.Handle(0)); err != nil {
			b.Fatal(err)
		}
		runMemtierN(b, mt, func(tid int) memcache.KV { return c.Handle(tid) })
	})
	b.Run("nv-memcached/recovery", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			c, err := memcache.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := mt.Preload(c.Handle(0)); err != nil {
				b.Fatal(err)
			}
			c.Flush()
			c.Device().Crash()
			b.StartTimer()
			if _, _, err := memcache.Recover(c.Device(), cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// runMemtierN drives b.N single operations through one client thread so the
// standard ns/op is meaningful, reporting throughput too.
func runMemtierN(b *testing.B, mt *memcache.Memtier, kvFor func(int) memcache.KV) {
	b.Helper()
	kv := kvFor(0)
	val := make([]byte, mt.ValueLen)
	var kb [32]byte
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := mt.Key(kb[:0], i%mt.KeyRange)
		if i%5 == 0 {
			if err := kv.Set(k, val, 0, 0); err != nil {
				b.Fatal(err)
			}
		} else {
			kv.Get(k)
		}
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/s")
}

// --- Ordered byte-key map baseline ---------------------------------------
//
// BenchmarkOrderedMap* is the perf baseline for the v2 ordered byte-key
// surface (KindOrderedMap): Set (insert + replace mix), point Get, and
// 100-key range Scan over a 10k-key map. scripts/bench.sh runs these and
// emits BENCH_ordered.json so the ordered-path trajectory is tracked
// across PRs.

const (
	orderedBenchKeys   = 10_000
	orderedScanWindow  = 100
	orderedBenchValLen = 64
)

func orderedBenchKey(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }

func newOrderedBench(b *testing.B, prefill int) (*logfree.OrderedByteMap, *logfree.Handle) {
	b.Helper()
	rt, err := logfree.New(logfree.WithSize(256<<20), logfree.WithLinkCache(true))
	if err != nil {
		b.Fatal(err)
	}
	h := rt.Handle(0)
	om, err := rt.OrderedMap(h, "bench-ordered")
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, orderedBenchValLen)
	for i := 0; i < prefill; i++ {
		if err := om.Set(h, orderedBenchKey(i), val); err != nil {
			b.Fatal(err)
		}
	}
	return om, h
}

func BenchmarkOrderedMapSet(b *testing.B) {
	om, h := newOrderedBench(b, 0)
	val := make([]byte, orderedBenchValLen)
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := om.Set(h, orderedBenchKey(i%orderedBenchKeys), val); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/s")
}

func BenchmarkOrderedMapGet(b *testing.B) {
	om, h := newOrderedBench(b, orderedBenchKeys)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, ok := om.Get(h, orderedBenchKey(i%orderedBenchKeys)); !ok {
			b.Fatal("miss")
		}
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/s")
}

func BenchmarkOrderedMapScan(b *testing.B) {
	om, h := newOrderedBench(b, orderedBenchKeys)
	b.ResetTimer()
	start := time.Now()
	keys := 0
	for i := 0; i < b.N; i++ {
		lo := (i * orderedScanWindow) % (orderedBenchKeys - orderedScanWindow)
		om.Scan(h, orderedBenchKey(lo), orderedBenchKey(lo+orderedScanWindow),
			func(_, _ []byte) bool { keys++; return true })
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/s")
	b.ReportMetric(float64(keys)/time.Since(start).Seconds(), "keys/s")
}
