// Package repro_test holds the top-level benchmark harness: one testing.B
// benchmark per table and figure of the paper's evaluation (§6), driving the
// same machinery as cmd/nvbench. Run with:
//
//	go test -bench=. -benchmem
//
// Custom metrics: ops/s is end-to-end structure throughput (excluding
// prefill it is reported by the harness itself), syncs/op counts fences that
// waited for simulated NVRAM write-backs — the quantity the paper's
// techniques minimize.
package repro_test

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/memcache"
	"repro/internal/nvram"
	"repro/internal/repl"
	"repro/logfree"
	"repro/logfree/sharded"
)

// benchPoint runs exactly b.N operations through the workload harness.
func benchPoint(b *testing.B, cfg bench.Config) {
	b.Helper()
	cfg.Ops = b.N
	cfg.Duration = time.Hour // ignored in ops mode
	r, err := bench.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(r.Throughput, "ops/s")
	b.ReportMetric(r.SyncsPerOp(), "syncs/op")
}

// BenchmarkTable1 measures the primitive Table 1 parameterizes: the cost of
// one sync operation (CLWB+fence) at the paper's default NVRAM write
// latency.
func BenchmarkTable1SyncOperation(b *testing.B) {
	dev := nvram.New(nvram.Config{Size: 1 << 20, WriteLatency: nvram.DefaultWriteLatency})
	f := dev.NewFlusher()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev.Store(64, uint64(i))
		f.Sync(64)
	}
}

// BenchmarkFig5 reproduces Figure 5's benchmark points: 50/50 insert/delete
// throughput, log-free (LC) vs redo-log implementations.
func BenchmarkFig5(b *testing.B) {
	for _, st := range []bench.Structure{bench.SkipList, bench.List, bench.Hash, bench.BST} {
		size := 4096
		if st == bench.List {
			size = 1024
		}
		for _, impl := range []bench.Impl{bench.ImplLC, bench.ImplLog} {
			for _, th := range []int{1, 8} {
				b.Run(fmt.Sprintf("%s/%s/%dt", st, impl, th), func(b *testing.B) {
					benchPoint(b, bench.Config{
						Structure: st, Impl: impl, Size: size,
						Threads: th, UpdateRatio: 1.0,
					})
				})
			}
		}
	}
}

// BenchmarkFig6 reproduces Figure 6: the linked list under growing NVRAM
// write latency.
func BenchmarkFig6(b *testing.B) {
	for _, lat := range []time.Duration{125 * time.Nanosecond, 1250 * time.Nanosecond, 12500 * time.Nanosecond} {
		for _, impl := range []bench.Impl{bench.ImplLC, bench.ImplLog} {
			b.Run(fmt.Sprintf("%v/%s", lat, impl), func(b *testing.B) {
				benchPoint(b, bench.Config{
					Structure: bench.List, Impl: impl, Size: 1024,
					Threads: 1, UpdateRatio: 1.0, WriteLatency: lat,
				})
			})
		}
	}
}

// BenchmarkFig7 reproduces Figure 7: durable vs NVRAM-oblivious linked list.
func BenchmarkFig7(b *testing.B) {
	for _, size := range []int{128, 4096} {
		for _, impl := range []bench.Impl{bench.ImplLC, bench.ImplVolatile} {
			b.Run(fmt.Sprintf("%d/%s", size, impl), func(b *testing.B) {
				benchPoint(b, bench.Config{
					Structure: bench.List, Impl: impl, Size: size,
					Threads: 1, UpdateRatio: 1.0,
				})
			})
		}
	}
}

// BenchmarkFig8 reproduces Figure 8: LP vs LC vs log-based with identical
// memory management, 1024 elements, 100% updates.
func BenchmarkFig8(b *testing.B) {
	for _, st := range []bench.Structure{bench.Hash, bench.SkipList, bench.List, bench.BST} {
		for _, impl := range []bench.Impl{bench.ImplLP, bench.ImplLC, bench.ImplLogEpochAlloc} {
			b.Run(fmt.Sprintf("%s/%s/1t", st, impl), func(b *testing.B) {
				benchPoint(b, bench.Config{
					Structure: st, Impl: impl, Size: 1024,
					Threads: 1, UpdateRatio: 1.0,
				})
			})
		}
	}
}

// BenchmarkFig9a reproduces Figure 9a: APT hit rates on a skip list. The
// hit-rate metrics are the figure's series; throughput is incidental.
func BenchmarkFig9a(b *testing.B) {
	for _, size := range []int{4096, 65536} {
		b.Run(fmt.Sprintf("%d", size), func(b *testing.B) {
			cfg := bench.Config{
				Structure: bench.SkipList, Impl: bench.ImplLP, Size: size,
				Threads: 1, UpdateRatio: 1.0, Ops: b.N, Duration: time.Hour,
			}
			r, err := bench.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*r.AllocHitRate(), "insert-hit%")
			b.ReportMetric(100*r.UnlinkHitRate(), "delete-hit%")
		})
	}
}

// BenchmarkFig9b reproduces Figure 9b: NV-epochs vs durable alloc logging.
func BenchmarkFig9b(b *testing.B) {
	for _, st := range []bench.Structure{bench.Hash, bench.BST, bench.SkipList, bench.List} {
		for _, impl := range []bench.Impl{bench.ImplLP, bench.ImplLPAllocLog} {
			b.Run(fmt.Sprintf("%s/%s", st, impl), func(b *testing.B) {
				benchPoint(b, bench.Config{
					Structure: st, Impl: impl, Size: 1024,
					Threads: 1, UpdateRatio: 1.0,
				})
			})
		}
	}
}

// BenchmarkFig10 reproduces Figure 10: recovery time after a crash. Each
// iteration builds a structure, crashes it mid-burst, and runs the §5.5
// recovery procedure; recovery-ns is the figure's series.
func BenchmarkFig10(b *testing.B) {
	for _, st := range []bench.Structure{bench.Hash, bench.BST, bench.SkipList, bench.List} {
		size := 65536
		if st == bench.List {
			size = 4096
		}
		b.Run(fmt.Sprintf("%s/%d", st, size), func(b *testing.B) {
			var total time.Duration
			for i := 0; i < b.N; i++ {
				dur, _, err := bench.RecoveryPoint(st, size, 4)
				if err != nil {
					b.Fatal(err)
				}
				total += dur
			}
			b.ReportMetric(float64(total.Nanoseconds())/float64(b.N), "recovery-ns")
		})
	}
}

// BenchmarkFig11 reproduces Figure 11's throughput comparison in-process:
// stock-memcached model, memcached-clht model, NV-Memcached.
func BenchmarkFig11(b *testing.B) {
	const keys = 10000
	mt := &memcache.Memtier{KeyRange: keys, SetRatio: 1, GetRatio: 4, ValueLen: 64, Threads: 4}
	cfg := memcache.Config{MemoryBytes: 64 << 20, Buckets: 1 << 14, MaxConns: 4}

	b.Run("memcached", func(b *testing.B) {
		c := memcache.NewLockCache()
		if err := mt.Preload(c); err != nil {
			b.Fatal(err)
		}
		runMemtierN(b, mt, c)
	})
	b.Run("memcached-clht", func(b *testing.B) {
		c, err := memcache.NewCLHTCache(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := mt.Preload(c); err != nil {
			b.Fatal(err)
		}
		runMemtierN(b, mt, c)
	})
	b.Run("nv-memcached", func(b *testing.B) {
		c, err := memcache.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := mt.Preload(c); err != nil {
			b.Fatal(err)
		}
		runMemtierN(b, mt, c)
	})
	b.Run("nv-memcached/recovery", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			c, err := memcache.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := mt.Preload(c); err != nil {
				b.Fatal(err)
			}
			c.Flush()
			c.Device().Crash()
			b.StartTimer()
			if _, _, err := memcache.Recover(c.Device(), cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// runMemtierN drives b.N single operations through one client thread so the
// standard ns/op is meaningful, reporting throughput too.
func runMemtierN(b *testing.B, mt *memcache.Memtier, kv memcache.KV) {
	b.Helper()
	val := make([]byte, mt.ValueLen)
	var kb [32]byte
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := mt.Key(kb[:0], i%mt.KeyRange)
		if i%5 == 0 {
			if err := kv.Set(k, val, 0, 0); err != nil {
				b.Fatal(err)
			}
		} else {
			kv.Get(k)
		}
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/s")
}

// --- Ordered byte-key map baseline ---------------------------------------
//
// BenchmarkOrderedMap* is the perf baseline for the v2 ordered byte-key
// surface (KindOrderedMap): Set (insert + replace mix), point Get, and
// 100-key range Scan over a 10k-key map. scripts/bench.sh runs these and
// emits BENCH_ordered.json so the ordered-path trajectory is tracked
// across PRs.

const (
	orderedBenchKeys   = 10_000
	orderedScanWindow  = 100
	orderedBenchValLen = 64
)

func orderedBenchKey(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }

// newOrderedBench returns the map view pinned to one session, the
// steady-state single-goroutine configuration.
func newOrderedBench(b *testing.B, prefill int) *logfree.OrderedByteMap {
	b.Helper()
	rt, err := logfree.New(logfree.WithSize(256<<20), logfree.WithLinkCache(true))
	if err != nil {
		b.Fatal(err)
	}
	om, err := rt.OrderedMap("bench-ordered")
	if err != nil {
		b.Fatal(err)
	}
	s, err := rt.Session()
	if err != nil {
		b.Fatal(err)
	}
	om = om.WithSession(s)
	val := make([]byte, orderedBenchValLen)
	for i := 0; i < prefill; i++ {
		if err := om.Set(orderedBenchKey(i), val); err != nil {
			b.Fatal(err)
		}
	}
	return om
}

func BenchmarkOrderedMapSet(b *testing.B) {
	om := newOrderedBench(b, 0)
	val := make([]byte, orderedBenchValLen)
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := om.Set(orderedBenchKey(i%orderedBenchKeys), val); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/s")
}

func BenchmarkOrderedMapGet(b *testing.B) {
	om := newOrderedBench(b, orderedBenchKeys)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, ok := om.Get(orderedBenchKey(i % orderedBenchKeys)); !ok {
			b.Fatal("miss")
		}
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/s")
}

// --- Parallel throughput harness -----------------------------------------
//
// Benchmark*Parallel sweep 1/2/4/8 worker goroutines, each bound to its own
// per-thread Handle (Ctx), over a partitioned key space — the multi-core
// scaling trajectory scripts/bench.sh records in BENCH_parallel.json. Keys
// are precomputed so the measured loop is map work, not fmt formatting.

var benchThreadCounts = []int{1, 2, 4, 8}

func benchKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = orderedBenchKey(i)
	}
	return keys
}

// workerKeys builds worker t's key sequence for a g-worker run up front
// (worker t owns ops t, t+g, t+2g, ... of the global i%len(keys) cycle), so
// the timed loop is pure map work — no index arithmetic.
func workerKeys(keys [][]byte, g, t, per int) [][]byte {
	out := make([][]byte, per)
	for i := 0; i < per; i++ {
		out[i] = keys[(i*g+t)%len(keys)]
	}
	return out
}

// runWorkers drives b.N operations split across g goroutines — worker t
// gets ops t, t+g, t+2g, ... of the global key cycle, as a key slice built
// before the clock starts — and reports aggregate ops/s.
func runWorkers(b *testing.B, g int, keys [][]byte, worker func(t int, ks [][]byte) error) {
	b.Helper()
	per := b.N / g
	if per == 0 {
		per = 1
	}
	seqs := make([][][]byte, g)
	for t := 0; t < g; t++ {
		seqs[t] = workerKeys(keys, g, t, per)
	}
	var wg sync.WaitGroup
	errs := make([]error, g)
	b.ResetTimer()
	start := time.Now()
	for t := 0; t < g; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			errs[t] = worker(t, seqs[t])
		}(t)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(per*g)/elapsed.Seconds(), "ops/s")
}

// newParallelRuntime builds a runtime sized for g workers, with an ordered
// map and a hash map registered (optionally prefilled), and one pinned
// session per worker: worker t uses the t-th views, the per-thread
// steady-state configuration.
func newParallelRuntime(b *testing.B, g, prefill int) (oms []*logfree.OrderedByteMap, bms []*logfree.ByteMap) {
	b.Helper()
	rt, err := logfree.New(logfree.WithSize(256<<20), logfree.WithLinkCache(true),
		logfree.WithMaxThreads(g))
	if err != nil {
		b.Fatal(err)
	}
	om, err := rt.OrderedMap("bench-ordered")
	if err != nil {
		b.Fatal(err)
	}
	bm, err := rt.Map("bench-map", 1<<14)
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, orderedBenchValLen)
	for i := 0; i < prefill; i++ {
		k := orderedBenchKey(i)
		if err := om.Set(k, val); err != nil {
			b.Fatal(err)
		}
		if err := bm.Set(k, val); err != nil {
			b.Fatal(err)
		}
	}
	oms = make([]*logfree.OrderedByteMap, g)
	bms = make([]*logfree.ByteMap, g)
	for t := 0; t < g; t++ {
		s, err := rt.Session()
		if err != nil {
			b.Fatal(err)
		}
		oms[t] = om.WithSession(s)
		bms[t] = bm.WithSession(s)
	}
	// Drop the previous sub-benchmark's 256MB device and reset the GC pacer
	// so no collection lands inside the timed loop.
	runtime.GC()
	return oms, bms
}

func BenchmarkOrderedMapSetParallel(b *testing.B) {
	keys := benchKeys(orderedBenchKeys)
	val := make([]byte, orderedBenchValLen)
	for _, g := range benchThreadCounts {
		b.Run(fmt.Sprintf("%dg", g), func(b *testing.B) {
			oms, _ := newParallelRuntime(b, g, 0)
			runWorkers(b, g, keys, func(t int, ks [][]byte) error {
				om := oms[t]
				for _, k := range ks {
					if err := om.Set(k, val); err != nil {
						return err
					}
				}
				return nil
			})
		})
	}
}

func BenchmarkOrderedMapGetParallel(b *testing.B) {
	keys := benchKeys(orderedBenchKeys)
	for _, g := range benchThreadCounts {
		b.Run(fmt.Sprintf("%dg", g), func(b *testing.B) {
			oms, _ := newParallelRuntime(b, g, orderedBenchKeys)
			runWorkers(b, g, keys, func(t int, ks [][]byte) error {
				om := oms[t]
				for _, k := range ks {
					if _, ok := om.Get(k); !ok {
						return fmt.Errorf("miss")
					}
				}
				return nil
			})
		})
	}
}

// BenchmarkOrderedMapMixedParallel runs the memtier-style 1:4 set:get mix.
func BenchmarkOrderedMapMixedParallel(b *testing.B) {
	keys := benchKeys(orderedBenchKeys)
	val := make([]byte, orderedBenchValLen)
	for _, g := range benchThreadCounts {
		b.Run(fmt.Sprintf("%dg", g), func(b *testing.B) {
			oms, _ := newParallelRuntime(b, g, orderedBenchKeys)
			runWorkers(b, g, keys, func(t int, ks [][]byte) error {
				om := oms[t]
				for i, k := range ks {
					if i%5 == 0 {
						if err := om.Set(k, val); err != nil {
							return err
						}
					} else {
						om.Get(k)
					}
				}
				return nil
			})
		})
	}
}

func BenchmarkMapSetParallel(b *testing.B) {
	keys := benchKeys(orderedBenchKeys)
	val := make([]byte, orderedBenchValLen)
	for _, g := range benchThreadCounts {
		b.Run(fmt.Sprintf("%dg", g), func(b *testing.B) {
			_, bms := newParallelRuntime(b, g, 0)
			runWorkers(b, g, keys, func(t int, ks [][]byte) error {
				bm := bms[t]
				for _, k := range ks {
					if err := bm.Set(k, val); err != nil {
						return err
					}
				}
				return nil
			})
		})
	}
}

func BenchmarkMapGetParallel(b *testing.B) {
	keys := benchKeys(orderedBenchKeys)
	for _, g := range benchThreadCounts {
		b.Run(fmt.Sprintf("%dg", g), func(b *testing.B) {
			_, bms := newParallelRuntime(b, g, orderedBenchKeys)
			runWorkers(b, g, keys, func(t int, ks [][]byte) error {
				bm := bms[t]
				for _, k := range ks {
					if _, ok := bm.Get(k); !ok {
						return fmt.Errorf("miss")
					}
				}
				return nil
			})
		})
	}
}

// BenchmarkNVMemcachedParallel is the end-to-end memtier-style throughput
// benchmark: the full NV-Memcached cache (durable index, sharded volatile
// LRU, expiry index) driven with the paper's 1:4 set:get mix across
// per-connection handles.
func BenchmarkNVMemcachedParallel(b *testing.B) {
	const keyRange = 10000
	mt := &memcache.Memtier{KeyRange: keyRange, SetRatio: 1, GetRatio: 4, ValueLen: 64, Threads: 8}
	keys := make([][]byte, keyRange)
	for i := range keys {
		keys[i] = mt.Key(nil, i)
	}
	val := make([]byte, mt.ValueLen)
	for _, g := range benchThreadCounts {
		b.Run(fmt.Sprintf("%dg", g), func(b *testing.B) {
			c, err := memcache.New(memcache.Config{
				MemoryBytes: 256 << 20, Buckets: 1 << 14, MaxConns: g})
			if err != nil {
				b.Fatal(err)
			}
			if err := mt.Preload(c); err != nil {
				b.Fatal(err)
			}
			runtime.GC() // see newParallelRuntime
			runWorkers(b, g, keys, func(t int, ks [][]byte) error {
				for i, k := range ks {
					if i%5 == 0 {
						if err := c.Set(k, val, 0, 0); err != nil {
							return err
						}
					} else {
						c.Get(k)
					}
				}
				return nil
			})
		})
	}
}

// --- Sharded-pool shard sweep ---------------------------------------------
//
// BenchmarkShardedOrderedMapSetParallel sweeps shard count × goroutines over
// the sharded.Pool ordered Set path — the multi-runtime architecture built
// to break the single-runtime parallel ceiling. The pool's total device
// budget is the single-runtime benchmark's 256MB split across shards, so the
// comparison prices topology, not extra memory. scripts/bench.sh records the
// rows in BENCH_parallel.json and derives sharded_8x8_vs_single (8-shard
// 8-goroutine pool over the single-runtime 8-goroutine baseline), which
// benchgate holds to tolerance. NOTE: on a single-vCPU host every
// configuration serializes on the one core (the profiling finding behind
// this subsystem — the flat parallel curve is CPU saturation, not a lock),
// so the ratio reflects the host's core count, not the architecture's limit.

var benchShardCounts = []int{1, 2, 4, 8}

// newShardedBench opens an s-shard pool (memory-backed, or file-backed under
// dir when non-empty) holding an ordered map, with one PoolSession-pinned
// view per worker.
func newShardedBench(b *testing.B, s, g int, dir string) []*sharded.OrderedMap {
	b.Helper()
	opts := []sharded.Option{
		sharded.WithShards(s),
		sharded.WithShardSize((256 << 20) / uint64(s)),
		sharded.WithMaxThreads(g),
		sharded.WithLinkCache(dir == ""), // same rule as single-runtime file mode
	}
	if dir != "" {
		opts = append(opts, sharded.WithDir(dir))
	}
	pool, err := sharded.Open(opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { pool.Close() })
	om, err := pool.OrderedMap("bench-ordered")
	if err != nil {
		b.Fatal(err)
	}
	views := make([]*sharded.OrderedMap, g)
	for t := 0; t < g; t++ {
		ps, err := pool.Session()
		if err != nil {
			b.Fatal(err)
		}
		views[t] = om.WithSession(ps)
	}
	runtime.GC() // see newParallelRuntime
	return views
}

func shardedSetWorker(views []*sharded.OrderedMap, val []byte) func(t int, ks [][]byte) error {
	return func(t int, ks [][]byte) error {
		om := views[t]
		for _, k := range ks {
			if err := om.Set(k, val); err != nil {
				return err
			}
		}
		return nil
	}
}

func BenchmarkShardedOrderedMapSetParallel(b *testing.B) {
	keys := benchKeys(orderedBenchKeys)
	val := make([]byte, orderedBenchValLen)
	for _, s := range benchShardCounts {
		for _, g := range benchThreadCounts {
			b.Run(fmt.Sprintf("%ds/%dg", s, g), func(b *testing.B) {
				views := newShardedBench(b, s, g, "")
				runWorkers(b, g, keys, shardedSetWorker(views, val))
			})
		}
	}
}

// BenchmarkShardedOrderedMapSetFileParallel is the acceptance row's
// file-backed twin: the full 8-shard 8-goroutine configuration with every
// shard on its own mmap'd backing file (default durability: write-back +
// ranged msync per fence, link cache off as in all file modes).
func BenchmarkShardedOrderedMapSetFileParallel(b *testing.B) {
	keys := benchKeys(orderedBenchKeys)
	val := make([]byte, orderedBenchValLen)
	b.Run("8s/8g", func(b *testing.B) {
		views := newShardedBench(b, 8, 8, b.TempDir())
		runWorkers(b, 8, keys, shardedSetWorker(views, val))
	})
}

func BenchmarkOrderedMapScan(b *testing.B) {
	om := newOrderedBench(b, orderedBenchKeys)
	b.ResetTimer()
	start := time.Now()
	keys := 0
	for i := 0; i < b.N; i++ {
		lo := (i * orderedScanWindow) % (orderedBenchKeys - orderedScanWindow)
		for range om.Scan(orderedBenchKey(lo), orderedBenchKey(lo+orderedScanWindow)) {
			keys++
		}
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/s")
	b.ReportMetric(float64(keys)/time.Since(start).Seconds(), "keys/s")
}

// --- Batch commit throughput ---------------------------------------------
//
// BenchmarkMapSetBatch measures the v3 amortized-fence Batch against the
// single-op baseline on the SAME runtime configuration: a hash byte-map Set
// cycling a 10k key space (first pass fresh, steady state replaces), with
// batch sizes 1, 8 and 64. The simulated NVRAM write latency is 10× the
// paper's 125ns default — the midpoint of Figure 6's latency sweep (the
// paper treats NVRAM write latency as the uncertain variable, sweeping
// 125ns → 12.5µs) — where persistence waits, the thing Batch amortizes,
// actually dominate a write. scripts/bench.sh records the single/64 ratio
// in BENCH_batch.json; the acceptance bar is ≥1.5× at batch size 64.

const batchBenchLatency = 10 * nvram.DefaultWriteLatency

// newBatchBench builds a hash byte-map view pinned to one session on a
// write-latency device.
func newBatchBench(b *testing.B) *logfree.ByteMap {
	b.Helper()
	rt, err := logfree.New(logfree.WithSize(256<<20),
		logfree.WithWriteLatency(batchBenchLatency))
	if err != nil {
		b.Fatal(err)
	}
	m, err := rt.Map("bench-batch", 1<<14)
	if err != nil {
		b.Fatal(err)
	}
	s, err := rt.Session()
	if err != nil {
		b.Fatal(err)
	}
	m = m.WithSession(s)
	// Prefill so the timed loop runs the steady-state replace mix.
	val := make([]byte, orderedBenchValLen)
	for i := 0; i < orderedBenchKeys; i++ {
		if err := m.Set(orderedBenchKey(i), val); err != nil {
			b.Fatal(err)
		}
	}
	runtime.GC()
	return m
}

func BenchmarkMapSetBatch(b *testing.B) {
	keys := benchKeys(orderedBenchKeys)
	val := make([]byte, orderedBenchValLen)
	b.Run("single", func(b *testing.B) {
		m := newBatchBench(b)
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			if err := m.Set(keys[i%len(keys)], val); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/s")
	})
	for _, size := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("%dops", size), func(b *testing.B) {
			m := newBatchBench(b)
			bt := m.Batch()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				bt.Set(keys[i%len(keys)], val)
				if bt.Len() == size {
					if err := bt.Commit(); err != nil {
						b.Fatal(err)
					}
				}
			}
			if err := bt.Commit(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/s")
		})
	}
}

// --- File-backend comparison rows -----------------------------------------
//
// BenchmarkMapSetFile / BenchmarkMapGetFile / BenchmarkNVMemcachedFile run
// the same single-thread workload on both persistence backends: the
// in-process MemBackend ("mem") and the mmap file-backed FileBackend
// ("file", in a per-run temp dir). scripts/bench.sh emits the rows into
// BENCH_file.json. The file rows price the default durability contract —
// write-backs into a shared mapping plus ranged msync(MS_ASYNC) per fence
// (kill -9 safe) — NOT strict fdatasync mode, whose cost is the storage
// stack's, not ours. Absolute file-row numbers depend on the filesystem
// backing the temp dir, which is why the bench gate holds them to a looser
// tolerance than the mem rows.

func newFileBenchMap(b *testing.B, file bool, prefill int) *logfree.ByteMap {
	b.Helper()
	opts := []logfree.Option{logfree.WithSize(256 << 20)}
	if file {
		opts = append(opts, logfree.WithFile(b.TempDir()+"/bench.pmem"))
	}
	rt, err := logfree.New(opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { rt.Close() }) // unmap the 256MB file between subs
	m, err := rt.Map("bench-file", 1<<14)
	if err != nil {
		b.Fatal(err)
	}
	s, err := rt.Session()
	if err != nil {
		b.Fatal(err)
	}
	m = m.WithSession(s)
	val := make([]byte, orderedBenchValLen)
	for i := 0; i < prefill; i++ {
		if err := m.Set(orderedBenchKey(i), val); err != nil {
			b.Fatal(err)
		}
	}
	runtime.GC()
	return m
}

func benchBothBackends(b *testing.B, f func(b *testing.B, file bool)) {
	b.Run("mem", func(b *testing.B) { f(b, false) })
	b.Run("file", func(b *testing.B) { f(b, true) })
}

func BenchmarkMapSetFile(b *testing.B) {
	benchBothBackends(b, func(b *testing.B, file bool) {
		m := newFileBenchMap(b, file, 0)
		val := make([]byte, orderedBenchValLen)
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			if err := m.Set(orderedBenchKey(i%orderedBenchKeys), val); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/s")
	})
}

func BenchmarkMapGetFile(b *testing.B) {
	benchBothBackends(b, func(b *testing.B, file bool) {
		m := newFileBenchMap(b, file, orderedBenchKeys)
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			if _, ok := m.Get(orderedBenchKey(i % orderedBenchKeys)); !ok {
				b.Fatal("miss")
			}
		}
		b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/s")
	})
}

// --- Durability-policy rows -----------------------------------------------
//
// BenchmarkDurability prices the acknowledged-operation policies on the
// file backend: the same single-thread Set workload under Strict (every
// fence blocks on the async syncer's group-committed fdatasync watermark),
// Synced (the default — fences hand dirty ranges to the background syncer
// and return), and Buffered (fence-time sync work skipped entirely; a
// timer flushes every MaxStaleness). scripts/bench.sh emits the rows into
// BENCH_durability.json plus the async_vs_strict_file (synced/strict) and
// buffered_vs_strict ratios — the machine-independent signals the bench
// gate watches; absolute rows price the storage stack under the temp dir,
// so they get the looser file tolerance.

func BenchmarkDurability(b *testing.B) {
	for _, tc := range []struct {
		name   string
		policy logfree.Durability
	}{
		{"strict", logfree.Strict()},
		{"synced", logfree.Synced()},
		{"buffered", logfree.Buffered(0)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			rt, err := logfree.New(
				logfree.WithSize(256<<20),
				logfree.WithDevice(logfree.FileDevice(b.TempDir()+"/bench.pmem")),
				logfree.WithDurability(tc.policy),
			)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { rt.Close() })
			m, err := rt.Map("bench-dur", 1<<14)
			if err != nil {
				b.Fatal(err)
			}
			s, err := rt.Session()
			if err != nil {
				b.Fatal(err)
			}
			m = m.WithSession(s)
			val := make([]byte, orderedBenchValLen)
			runtime.GC()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if err := m.Set(orderedBenchKey(i%orderedBenchKeys), val); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/s")
		})
	}
}

// BenchmarkNVMemcachedRepl prices the warm-standby replication tax: the
// same memtier-style 1:4 set:get mix as BenchmarkNVMemcachedFile, run solo
// and then with a live in-process loopback follower streaming and acking
// every mutation (semi-synchronous mode: each Set's response waits for the
// in-sync follower's ack). scripts/bench.sh emits both rows into
// BENCH_repl.json plus the repl_overhead ratio (follower/solo) — the
// machine-independent signal the bench gate holds to tolerance; the
// absolute follower row also prices the loopback RTT, which is the
// runner's, not ours.
func BenchmarkNVMemcachedRepl(b *testing.B) {
	const keyRange = 10000
	mt := &memcache.Memtier{KeyRange: keyRange, SetRatio: 1, GetRatio: 4, ValueLen: 64, Threads: 1}
	keys := make([][]byte, keyRange)
	for i := range keys {
		keys[i] = mt.Key(nil, i)
	}
	val := make([]byte, mt.ValueLen)
	run := func(b *testing.B, withFollower bool) {
		c, err := memcache.New(memcache.Config{MemoryBytes: 256 << 20, Buckets: 1 << 14, MaxConns: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		if err := mt.Preload(c); err != nil {
			b.Fatal(err)
		}
		if withFollower {
			p := repl.NewPrimary(c, repl.Options{})
			if err := p.Listen("127.0.0.1:0"); err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { p.Close() })
			c.SetReplication(p, func() memcache.ReplStats {
				st := p.Stats()
				return memcache.ReplStats{State: st.State, Seq: st.Seq, LagOps: st.LagOps}
			})
			fc, err := memcache.New(memcache.Config{MemoryBytes: 256 << 20, Buckets: 1 << 14, MaxConns: 1})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { fc.Close() })
			f := repl.NewFollower(p.Addr(), fc, repl.FollowerOptions{})
			b.Cleanup(f.Close)
			go f.Run()
			for deadline := time.Now().Add(10 * time.Second); p.Stats().State != "streaming"; {
				if time.Now().After(deadline) {
					b.Fatalf("follower never reached streaming (primary state %q)", p.Stats().State)
				}
				time.Sleep(time.Millisecond)
			}
		}
		runtime.GC()
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			k := keys[i%keyRange]
			if i%5 == 0 {
				if err := c.Set(k, val, 0, 0); err != nil {
					b.Fatal(err)
				}
			} else {
				c.Get(k)
			}
		}
		b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/s")
	}
	b.Run("solo", func(b *testing.B) { run(b, false) })
	b.Run("follower", func(b *testing.B) { run(b, true) })
}

// BenchmarkSnapshotLive prices the live point-in-time snapshot tax: the
// same memtier-style 1:4 set:get mix run solo and then with a background
// goroutine continuously streaming Snapshot() over the full key space while
// the mix runs. The snapshot walks the durable index under epoch protection
// without blocking writers, so the overhead should stay small — the
// snapshot_overhead ratio (snapshot/solo) in BENCH_snapshot.json is the
// machine-independent signal the bench gate holds to tolerance.
func BenchmarkSnapshotLive(b *testing.B) {
	const keyRange = 10000
	mt := &memcache.Memtier{KeyRange: keyRange, SetRatio: 1, GetRatio: 4, ValueLen: 64, Threads: 1}
	keys := make([][]byte, keyRange)
	for i := range keys {
		keys[i] = mt.Key(nil, i)
	}
	val := make([]byte, mt.ValueLen)
	run := func(b *testing.B, withSnapshot bool) {
		c, err := memcache.New(memcache.Config{MemoryBytes: 256 << 20, Buckets: 1 << 14, MaxConns: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		if err := mt.Preload(c); err != nil {
			b.Fatal(err)
		}
		stop := make(chan struct{})
		done := make(chan struct{})
		if withSnapshot {
			go func() {
				defer close(done)
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := c.Snapshot(io.Discard); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		} else {
			close(done)
		}
		runtime.GC()
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			k := keys[i%keyRange]
			if i%5 == 0 {
				if err := c.Set(k, val, 0, 0); err != nil {
					b.Fatal(err)
				}
			} else {
				c.Get(k)
			}
		}
		elapsed := time.Since(start)
		b.StopTimer()
		close(stop)
		<-done
		b.ReportMetric(float64(b.N)/elapsed.Seconds(), "ops/s")
	}
	b.Run("solo", func(b *testing.B) { run(b, false) })
	b.Run("snapshot", func(b *testing.B) { run(b, true) })
}

func BenchmarkNVMemcachedFile(b *testing.B) {
	const keyRange = 10000
	mt := &memcache.Memtier{KeyRange: keyRange, SetRatio: 1, GetRatio: 4, ValueLen: 64, Threads: 1}
	keys := make([][]byte, keyRange)
	for i := range keys {
		keys[i] = mt.Key(nil, i)
	}
	val := make([]byte, mt.ValueLen)
	benchBothBackends(b, func(b *testing.B, file bool) {
		// Link cache off in BOTH variants: file mode forces it off, so the
		// mem row must drop it too for the file_vs_mem ratio to price the
		// backend alone rather than the link cache.
		cfg := memcache.Config{MemoryBytes: 256 << 20, Buckets: 1 << 14, MaxConns: 1,
			DisableLinkCache: true}
		if file {
			cfg.File = b.TempDir() + "/bench-mc.pmem"
		}
		c, err := memcache.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		if err := mt.Preload(c); err != nil {
			b.Fatal(err)
		}
		runtime.GC()
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			k := keys[i%keyRange]
			if i%5 == 0 {
				if err := c.Set(k, val, 0, 0); err != nil {
					b.Fatal(err)
				}
			} else {
				c.Get(k)
			}
		}
		b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/s")
	})
}
