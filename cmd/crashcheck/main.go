// Command crashcheck is the load/verify client behind scripts/crash_e2e.sh:
// it drives an nvmemcached server over the memcached text protocol, records
// exactly which writes the server acknowledged, and — after the server has
// been kill -9'd and restarted — asserts that every acknowledged write
// recovered.
//
//	crashcheck -addr 127.0.0.1:11211 -state /tmp/st -prefix r1 load
//	crashcheck -addr 127.0.0.1:11211 -state /tmp/st -prefix r1 verify
//
// load sets prefix-keyed items sequentially (value deterministically derived
// from the index), bumps a counter key every 16th op, and advances a CAS
// chain every 16th op (offset by 8): a single key mutated ONLY through
// gets + cas, whose value encodes its generation. Because the per-item CAS
// sequence starts at 1 and bumps by one per mutation, the chain key must
// always satisfy cas == generation + 1 — a CAS/value pair that is published
// atomically per mutation and so must hold across any crash. The
// acknowledged frontier persists to the state file after every ack; the
// server dying mid-load is the expected outcome: load finalizes the state
// and exits 0.
//
// verify reads the state file and requires, for every acknowledged set, the
// exact value; for the counter, the last acknowledged value or one more
// (one increment may have been in flight, acknowledged-but-unread); for the
// CAS chain, generation casgen or casgen+1 AND a gets cas exactly equal to
// generation+1 — a recovered image whose CAS metadata is stale, reset, or
// detached from its value fails here. Any miss or mismatch exits 1: an
// acknowledged write was lost.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:11211", "server address")
	state := flag.String("state", "crashcheck.state", "acknowledged-frontier file")
	prefix := flag.String("prefix", "cc", "key prefix (one per load round)")
	n := flag.Int("n", 0, "max sets to issue per worker (0 = until the connection dies)")
	workers := flag.Int("workers", 1, "concurrent load connections; >1 uses per-worker state files <state>.wK and prefixes <prefix>-wK")
	flag.Parse()

	var err error
	switch flag.Arg(0) {
	case "load":
		err = eachWorker(*workers, *state, *prefix, func(state, prefix string) error {
			return load(*addr, state, prefix, *n)
		})
	case "verify":
		err = eachWorker(*workers, *state, *prefix, func(state, prefix string) error {
			return verify(*addr, state, prefix)
		})
	case "stats":
		err = stats(*addr)
	default:
		fmt.Fprintln(os.Stderr, "usage: crashcheck [-addr a] [-state f] [-prefix p] [-n max] [-workers w] {load|verify|stats}")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "crashcheck %s: %v\n", flag.Arg(0), err)
		os.Exit(1)
	}
}

// eachWorker runs fn once with the plain state/prefix (workers <= 1, the
// exact legacy behaviour and file format) or concurrently per worker with
// derived names — the multi-connection load that spreads keys over every
// shard of a sharded server. The first error wins.
func eachWorker(workers int, state, prefix string, fn func(state, prefix string) error) error {
	if workers <= 1 {
		return fn(state, prefix)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = fn(fmt.Sprintf("%s.w%d", state, w), fmt.Sprintf("%s-w%d", prefix, w))
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func key(prefix string, i int) string { return fmt.Sprintf("%s-key-%07d", prefix, i) }
func value(prefix string, i int) string {
	return fmt.Sprintf("%s-val-%07d-%08x", prefix, i, uint32(i)*2654435761)
}

// Every 8th key (offset 3) carries nonzero client flags and a far-future
// absolute expiry, both deterministic in i, so verify can hold a recovered
// (or promoted-follower) image to the full item metadata, not just values.
func keyFlags(i int) uint32 {
	if i%8 == 3 {
		return (uint32(i) * 2654435761 >> 16) & 0xFFFF
	}
	return 0
}

// keyExp is 2100-01-01 (absolute unix) for flagged keys: far enough out to
// never expire mid-run, large enough to exercise the absolute-expiry path.
func keyExp(i int) int64 {
	if i%8 == 3 {
		return 4102444800
	}
	return 0
}
func ctrKey(prefix string) string { return prefix + "-ctr" }
func casKey(prefix string) string { return prefix + "-cas" }
func casValue(gen uint64) string  { return fmt.Sprintf("gen-%07d", gen) }

func parseCasValue(v string) (uint64, error) {
	rest, ok := strings.CutPrefix(v, "gen-")
	if !ok {
		return 0, fmt.Errorf("cas chain value %q: no gen- prefix", v)
	}
	return strconv.ParseUint(rest, 10, 64)
}

type client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

func dial(addr string) (*client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// set issues one set and waits for STORED.
func (c *client) set(k, v string) error { return c.setFull(k, v, 0, 0) }

// setFull is set with explicit flags and exptime.
func (c *client) setFull(k, v string, flags uint32, exp int64) error {
	fmt.Fprintf(c.w, "set %s %d %d %d\r\n%s\r\n", k, flags, exp, len(v), v)
	if err := c.w.Flush(); err != nil {
		return err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return err
	}
	if strings.TrimSpace(line) != "STORED" {
		return fmt.Errorf("set %s: %q", k, strings.TrimSpace(line))
	}
	return nil
}

// incr issues one incr and returns the new value.
func (c *client) incr(k string, delta uint64) (uint64, error) {
	fmt.Fprintf(c.w, "incr %s %d\r\n", k, delta)
	if err := c.w.Flush(); err != nil {
		return 0, err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return 0, err
	}
	return strconv.ParseUint(strings.TrimSpace(line), 10, 64)
}

// get returns the value and flags of k, or ok=false on a miss.
func (c *client) get(k string) (string, uint32, bool, error) {
	fmt.Fprintf(c.w, "get %s\r\n", k)
	if err := c.w.Flush(); err != nil {
		return "", 0, false, err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", 0, false, err
	}
	line = strings.TrimSpace(line)
	if line == "END" {
		return "", 0, false, nil
	}
	parts := strings.Fields(line) // VALUE <key> <flags> <bytes>
	if len(parts) != 4 || parts[0] != "VALUE" {
		return "", 0, false, fmt.Errorf("get %s: %q", k, line)
	}
	flags, err := strconv.ParseUint(parts[2], 10, 32)
	if err != nil {
		return "", 0, false, fmt.Errorf("get %s: bad flags in %q", k, line)
	}
	size, err := strconv.Atoi(parts[3])
	if err != nil {
		return "", 0, false, fmt.Errorf("get %s: bad size in %q", k, line)
	}
	buf := make([]byte, size+2) // data + CRLF
	if _, err := readFull(c.r, buf); err != nil {
		return "", 0, false, err
	}
	if end, err := c.r.ReadString('\n'); err != nil {
		return "", 0, false, err
	} else if strings.TrimSpace(end) != "END" {
		return "", 0, false, fmt.Errorf("get %s: trailer %q", k, strings.TrimSpace(end))
	}
	return string(buf[:size]), uint32(flags), true, nil
}

// gets returns the value and cas unique of k, or ok=false on a miss.
func (c *client) gets(k string) (string, uint64, bool, error) {
	fmt.Fprintf(c.w, "gets %s\r\n", k)
	if err := c.w.Flush(); err != nil {
		return "", 0, false, err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", 0, false, err
	}
	line = strings.TrimSpace(line)
	if line == "END" {
		return "", 0, false, nil
	}
	parts := strings.Fields(line) // VALUE <key> <flags> <bytes> <cas>
	if len(parts) != 5 || parts[0] != "VALUE" {
		return "", 0, false, fmt.Errorf("gets %s: %q", k, line)
	}
	size, err := strconv.Atoi(parts[3])
	if err != nil {
		return "", 0, false, fmt.Errorf("gets %s: bad size in %q", k, line)
	}
	cas, err := strconv.ParseUint(parts[4], 10, 64)
	if err != nil {
		return "", 0, false, fmt.Errorf("gets %s: bad cas in %q", k, line)
	}
	buf := make([]byte, size+2) // data + CRLF
	if _, err := readFull(c.r, buf); err != nil {
		return "", 0, false, err
	}
	if end, err := c.r.ReadString('\n'); err != nil {
		return "", 0, false, err
	} else if strings.TrimSpace(end) != "END" {
		return "", 0, false, fmt.Errorf("gets %s: trailer %q", k, strings.TrimSpace(end))
	}
	return string(buf[:size]), cas, true, nil
}

// cas issues one compare-and-swap against the given cas unique and waits
// for STORED. This load is single-writer per prefix, so EXISTS/NOT_FOUND
// are real failures, not races.
func (c *client) cas(k, v string, casid uint64) error {
	fmt.Fprintf(c.w, "cas %s 0 0 %d %d\r\n%s\r\n", k, len(v), casid, v)
	if err := c.w.Flush(); err != nil {
		return err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return err
	}
	if strings.TrimSpace(line) != "STORED" {
		return fmt.Errorf("cas %s (unique %d): %q", k, casid, strings.TrimSpace(line))
	}
	return nil
}

func readFull(r *bufio.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// frontier is the durably acknowledged state of one load round.
type frontier struct {
	Acked  int    // sets 0..Acked-1 were acknowledged
	Ctr    uint64 // last acknowledged counter value (0 = none yet)
	CasGen uint64 // last acknowledged CAS-chain generation
}

func writeFrontier(path string, f frontier) error {
	return os.WriteFile(path, []byte(fmt.Sprintf("acked=%d\nctr=%d\ncasgen=%d\n", f.Acked, f.Ctr, f.CasGen)), 0o644)
}

func readFrontier(path string) (frontier, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return frontier{}, err
	}
	var f frontier
	for _, line := range strings.Split(strings.TrimSpace(string(b)), "\n") {
		k, v, ok := strings.Cut(line, "=")
		if !ok {
			return frontier{}, fmt.Errorf("bad state line %q", line)
		}
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return frontier{}, fmt.Errorf("bad state line %q", line)
		}
		switch k {
		case "acked":
			f.Acked = int(n)
		case "ctr":
			f.Ctr = n
		case "casgen":
			f.CasGen = n
		}
	}
	return f, nil
}

func load(addr, state, prefix string, n int) error {
	c, err := dial(addr)
	if err != nil {
		return err
	}
	defer c.conn.Close()
	// Seed the counter before the sets so incr never hits NOT_FOUND, and the
	// CAS chain at generation 0 — its very first mutation, so its per-item
	// cas unique is exactly 1 and stays generation+1 for the chain's life.
	if err := c.set(ctrKey(prefix), "0"); err != nil {
		return err
	}
	if err := c.set(casKey(prefix), casValue(0)); err != nil {
		return err
	}
	var f frontier
	if err := writeFrontier(state, f); err != nil {
		return err
	}
	lost := func(err error) {
		fmt.Printf("load: connection lost after %d acked sets (ctr=%d, casgen=%d): %v\n",
			f.Acked, f.Ctr, f.CasGen, err)
	}
	for i := 0; n == 0 || i < n; i++ {
		if err := c.setFull(key(prefix, i), value(prefix, i), keyFlags(i), keyExp(i)); err != nil {
			// The server dying mid-load is the point of the exercise: the
			// frontier already on disk names every acknowledged op.
			lost(err)
			return nil
		}
		f.Acked = i + 1
		if i%16 == 15 {
			v, err := c.incr(ctrKey(prefix), 1)
			if err != nil {
				lost(err)
				// The set preceding this incr WAS acknowledged: record it, so
				// verify still holds the server to it.
				return writeFrontier(state, f)
			}
			f.Ctr = v
		}
		if i%16 == 7 {
			gen, err := casStep(c, prefix)
			if err != nil {
				if isConnError(err) {
					lost(err)
					return writeFrontier(state, f)
				}
				return err // a protocol-level CAS failure, not a dead server
			}
			f.CasGen = gen
		}
		if err := writeFrontier(state, f); err != nil {
			return err
		}
	}
	fmt.Printf("load: completed all %d sets (ctr=%d, casgen=%d)\n", f.Acked, f.Ctr, f.CasGen)
	return nil
}

// casStep advances the CAS chain by one generation: gets the current
// value+cas, checks the cas == generation+1 invariant live, then swaps in
// the next generation under that cas unique. Returns the newly acknowledged
// generation.
func casStep(c *client, prefix string) (uint64, error) {
	k := casKey(prefix)
	v, cas, ok, err := c.gets(k)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("cas chain key %s missing mid-load", k)
	}
	gen, err := parseCasValue(v)
	if err != nil {
		return 0, fmt.Errorf("cas chain key %s: %v", k, err)
	}
	if cas != gen+1 {
		return 0, fmt.Errorf("cas chain key %s: generation %d but cas unique %d (want %d)", k, gen, cas, gen+1)
	}
	if err := c.cas(k, casValue(gen+1), cas); err != nil {
		return 0, err
	}
	return gen + 1, nil
}

// isConnError reports whether err came from the transport (server killed)
// rather than a well-formed protocol reply asserting something false.
func isConnError(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE)
}

func verify(addr, state, prefix string) error {
	f, err := readFrontier(state)
	if err != nil {
		return err
	}
	c, err := dial(addr)
	if err != nil {
		return err
	}
	defer c.conn.Close()
	for i := 0; i < f.Acked; i++ {
		v, flags, ok, err := c.get(key(prefix, i))
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("acknowledged set %d lost (key %s)", i, key(prefix, i))
		}
		if want := value(prefix, i); v != want {
			return fmt.Errorf("key %s corrupted: got %q want %q", key(prefix, i), v, want)
		}
		if want := keyFlags(i); flags != want {
			return fmt.Errorf("key %s flags corrupted: got %d want %d", key(prefix, i), flags, want)
		}
	}
	// The counter: last acked value, or one more for an in-flight incr the
	// server completed but whose reply the load never read.
	got, _, ok, err := c.get(ctrKey(prefix))
	if err != nil {
		return err
	}
	if f.Acked > 0 || f.Ctr > 0 {
		if !ok {
			return fmt.Errorf("counter %s lost", ctrKey(prefix))
		}
		cv, err := strconv.ParseUint(got, 10, 64)
		if err != nil {
			return fmt.Errorf("counter %s corrupted: %q", ctrKey(prefix), got)
		}
		if cv != f.Ctr && cv != f.Ctr+1 {
			return fmt.Errorf("counter %s = %d, want %d or %d", ctrKey(prefix), cv, f.Ctr, f.Ctr+1)
		}
	}
	// The CAS chain: the recovered generation may be the last acknowledged
	// one or one more (a cas the server completed whose STORED was never
	// read), but whatever generation recovered, its cas unique must be
	// EXACTLY generation+1 — the per-mutation CAS/value pair is published
	// atomically, so a crash can never leave them detached.
	cv, cas, ok, err := c.gets(casKey(prefix))
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("cas chain key %s lost", casKey(prefix))
	}
	gen, err := parseCasValue(cv)
	if err != nil {
		return fmt.Errorf("cas chain key %s corrupted: %v", casKey(prefix), err)
	}
	if gen != f.CasGen && gen != f.CasGen+1 {
		return fmt.Errorf("cas chain key %s at generation %d, want %d or %d",
			casKey(prefix), gen, f.CasGen, f.CasGen+1)
	}
	if cas != gen+1 {
		return fmt.Errorf("cas chain key %s: generation %d with cas unique %d, want %d — CAS detached from value across the crash",
			casKey(prefix), gen, cas, gen+1)
	}
	fmt.Printf("verify: %d acknowledged sets intact (values+flags), counter consistent, cas chain at gen %d with cas %d (prefix %s)\n",
		f.Acked, gen, cas, prefix)
	return nil
}

// stats dumps the server's `stats` table as "name value" lines — the
// machine-readable surface the failover scripts poll (repl_state, repl_seq,
// repl_reconnects).
func stats(addr string) error {
	c, err := dial(addr)
	if err != nil {
		return err
	}
	defer c.conn.Close()
	fmt.Fprintf(c.w, "stats\r\n")
	if err := c.w.Flush(); err != nil {
		return err
	}
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return err
		}
		line = strings.TrimSpace(line)
		if line == "END" {
			return nil
		}
		if name, val, ok := strings.Cut(strings.TrimPrefix(line, "STAT "), " "); ok {
			fmt.Printf("%s %s\n", name, val)
		}
	}
}
