// Command nvmemcached runs an NV-Memcached server (§6.5): a durable
// Memcached speaking the standard text protocol, whose contents survive
// restarts of the simulated NVRAM image.
//
//	nvmemcached -listen :11211 -mem 268435456 -image /tmp/nvmc.img
//
// If -image points to an existing image, the server recovers from it (the
// paper's restart scenario: recovery takes milliseconds where re-warming a
// volatile cache takes orders of magnitude longer). On SIGINT/SIGTERM the
// image is flushed and saved, ready for the next start.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/memcache"
	"repro/internal/nvram"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:11211", "listen address")
	mem := flag.Uint64("mem", 256<<20, "simulated NVRAM bytes")
	buckets := flag.Int("buckets", 1<<16, "hash table buckets")
	conns := flag.Int("conns", 8, "worker slots (max concurrent connections)")
	image := flag.String("image", "", "NVRAM image file (recovered if present, saved on shutdown)")
	latency := flag.Duration("latency", nvram.DefaultWriteLatency, "simulated NVRAM write latency")
	sweep := flag.Duration("sweep", 30*time.Second, "expiry sweep interval (0 disables the sweeper)")
	flag.Parse()

	cfg := memcache.Config{
		MemoryBytes:  *mem,
		Buckets:      *buckets,
		MaxConns:     *conns,
		WriteLatency: *latency,
	}

	var cache *memcache.Cache
	if *image != "" {
		if _, err := os.Stat(*image); err == nil {
			dev, err := nvram.LoadImage(*image, nvram.Config{WriteLatency: *latency})
			if err != nil {
				log.Fatalf("nvmemcached: load image: %v", err)
			}
			start := time.Now()
			c, stats, err := memcache.Recover(dev, cfg)
			if err != nil {
				log.Fatalf("nvmemcached: recover: %v", err)
			}
			cache = c
			log.Printf("recovered %d items in %v (%d active areas, %d leaked objects freed)",
				cache.Stats().Items, time.Since(start).Round(time.Microsecond),
				stats.ActiveAreas, stats.Leaked)
		}
	}
	if cache == nil {
		c, err := memcache.New(cfg)
		if err != nil {
			log.Fatalf("nvmemcached: %v", err)
		}
		cache = c
		log.Printf("fresh cache: %d MiB simulated NVRAM, %d buckets", *mem>>20, *buckets)
	}

	srv, err := memcache.NewServer(*listen, *conns, cache, cache.Stats)
	if err != nil {
		log.Fatalf("nvmemcached: listen: %v", err)
	}
	log.Printf("listening on %s", srv.Addr())

	stopSweeper := func() {}
	if *sweep > 0 {
		stopSweeper = cache.StartSweeper(*sweep)
		log.Printf("expiry sweeper running every %v", *sweep)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	stopSweeper()
	srv.Close()
	cache.Flush()
	if *image != "" {
		if err := cache.Device().SaveImage(*image); err != nil {
			log.Fatalf("nvmemcached: save image: %v", err)
		}
		fmt.Printf("image saved to %s (%d items)\n", *image, cache.Stats().Items)
	}
}
