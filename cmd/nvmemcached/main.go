// Command nvmemcached runs an NV-Memcached server (§6.5): a durable
// Memcached speaking the standard wire protocol — the full text command set
// (including cas/gets, append/prepend, noreply pipelining) and the binary
// protocol, auto-detected per connection from its first byte, so unmodified
// standard clients work in either mode — whose contents survive restarts of
// the simulated NVRAM image.
//
// Persistence modes:
//
//	nvmemcached -listen :11211 -mem 268435456 -pmem-file /var/lib/nvmc.pmem
//
// backs the NVRAM image with an mmap'd file: every acknowledged write is in
// the file's page cache the moment the operation returns, so the cache
// survives ANY process death — kill -9 included — and a restart with the
// same -pmem-file recovers it with no shutdown handshake. The -durability
// policy picks the machine-crash story: "synced" (default) syncs in the
// background off the fence path, "strict" acknowledges writes only after a
// group-committed fdatasync, "buffered[:dur]" bounds how much acked work a
// crash can take back in exchange for mem-like fence cost.
//
//	nvmemcached -listen :11211 -mem 268435456 -pmem-dax /dev/dax0.0
//
// maps real persistent memory (a devdax device or fsdax file) directly:
// fences persist cache lines with CLWB+SFENCE, no syscalls — strict
// durability at memory speed. Over a regular file it degrades to the
// page-cache guarantee (still kill -9 safe).
//
//	nvmemcached -listen :11211 -mem 268435456 -image /tmp/nvmc.img
//
// is the legacy in-process mode: contents survive only a clean SIGTERM,
// which saves the image for the next start.
package main

import (
	"bufio"
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/memcache"
	"repro/internal/nvram"
	"repro/internal/repl"
	"repro/logfree"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:11211", "listen address")
	mem := flag.Uint64("mem", 256<<20, "simulated NVRAM bytes (split across shards when -shards > 1)")
	buckets := flag.Int("buckets", 1<<16, "hash table buckets (split across shards when -shards > 1)")
	conns := flag.Int("conns", 4096, "max concurrently served connections (excess connections wait, they are not refused)")
	image := flag.String("image", "", "NVRAM image file (recovered if present, saved on clean shutdown)")
	pmemFile := flag.String("pmem-file", "", "file-backed NVRAM (mmap): kill -9 safe, no image save needed; a pool DIRECTORY when -shards > 1")
	pmemDAX := flag.String("pmem-dax", "", "real pmem NVRAM (DAX mmap + CLWB/SFENCE): a devdax device or fsdax file; a pool DIRECTORY when -shards > 1")
	durability := flag.String("durability", "synced", "acknowledged-write policy on durable devices: strict, synced, or buffered[:duration]")
	pmemSync := flag.Bool("pmem-sync", false, "deprecated alias for -durability strict")
	shards := flag.Int("shards", 1, "independent runtime shards (power of two); >1 hash-routes keys across a sharded pool")
	latency := flag.Duration("latency", nvram.DefaultWriteLatency, "simulated NVRAM write latency")
	sweep := flag.Duration("sweep", 30*time.Second, "expiry sweep interval (0 disables the sweeper)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty disables)")
	replicateTo := flag.String("replicate-to", "", "accept warm-standby followers on this address (primary role; \"127.0.0.1:0\" picks a free port)")
	follow := flag.String("follow", "", "stream from the primary's replication address (follower role: read-only until promoted via SIGUSR1)")
	promote := flag.Bool("promote", false, "start a previously-killed follower's image as a writable primary (clears its replication resume point)")
	maxGrow := flag.Uint64("max-grow", 0, "online-growth reserve in bytes: under allocator pressure the pool doubles (crash-atomically) up to this cap before evicting; 0 disables growth")
	maxBytes := flag.Uint64("max-bytes", 0, "logical cache budget in bytes (entry overhead + key + value): writes past it evict LRU items; 0 = unlimited")
	snapshotTo := flag.String("snapshot-to", "", "on SIGUSR1 (non-follower), stream a live point-in-time snapshot to this path (written to .tmp, then renamed)")
	restoreFrom := flag.String("restore-from", "", "restore a snapshot stream into the cache at startup (requires an empty cache)")
	flag.Parse()

	if *pmemFile != "" && *pmemDAX != "" {
		log.Fatalf("nvmemcached: -pmem-file and -pmem-dax are mutually exclusive")
	}
	pmemPath := *pmemFile
	device := logfree.FileDevice(pmemPath)
	if *pmemDAX != "" {
		pmemPath = *pmemDAX
		device = logfree.DAXDevice(pmemPath)
	}
	policy, err := logfree.ParseDurability(*durability)
	if err != nil {
		log.Fatalf("nvmemcached: %v", err)
	}
	if *pmemSync && *durability == "synced" {
		policy = logfree.Strict() // deprecated alias; an explicit -durability wins
	}
	if *image != "" && pmemPath != "" {
		log.Fatalf("nvmemcached: -image and -pmem-file/-pmem-dax are mutually exclusive")
	}
	if *shards > 1 && *image != "" {
		log.Fatalf("nvmemcached: -shards > 1 requires -pmem-file/-pmem-dax (a pool directory) or pure memory, not -image")
	}
	if *replicateTo != "" && *follow != "" {
		log.Fatalf("nvmemcached: -replicate-to and -follow are mutually exclusive")
	}
	if *promote && *follow != "" {
		log.Fatalf("nvmemcached: -promote starts a standalone server; promote a LIVE follower with SIGUSR1 instead")
	}

	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("nvmemcached: pprof server: %v", err)
			}
		}()
	}

	// The formatted session region stays modest regardless of the
	// connection cap: sessions grow dynamically past the formatted slots
	// (PR 4), so thousands of connections do not need thousands of
	// preformatted contexts.
	sessionSlots := *conns
	if sessionSlots > 64 {
		sessionSlots = 64
	}
	cfg := memcache.Config{
		MemoryBytes:  *mem,
		Buckets:      *buckets,
		MaxConns:     sessionSlots,
		WriteLatency: *latency,
		Device:       device,
		Durability:   policy,
		Shards:       *shards,
		MaxBytes:     *maxBytes,
		MaxGrowBytes: *maxGrow,
		// Logged so the crash matrix can reconcile a restart's recovered
		// capacity against the set of grow targets ever acknowledged.
		OnGrow: func(total uint64) { log.Printf("grew pool to %d bytes", total) },
	}

	var cache *memcache.Cache
	switch {
	case pmemPath != "":
		// Logged before the (potentially long) attach-and-sweep so the crash
		// matrix can kill -9 a recovery in flight and verify the next one.
		log.Printf("attaching to %s (%s device, durability %s)", pmemPath, device.Kind, policy)
		start := time.Now()
		c, err := memcache.New(cfg)
		if err != nil {
			log.Fatalf("nvmemcached: open %s: %v", pmemPath, err)
		}
		cache = c
		if cache.Recovered() {
			rs := cache.RecoveryStats()
			log.Printf("recovered %d items from %s in %v (%d active areas, %d leaked objects freed)",
				cache.Stats().Items, pmemPath, time.Since(start).Round(time.Microsecond),
				rs.ActiveAreas, rs.Leaked)
			if pool := cache.Pool(); pool != nil {
				// Machine-parseable parallelism evidence for crash_e2e.sh:
				// total is the sum of the per-shard recovery wall clocks, max
				// the slowest shard — parallel recovery keeps the pool's
				// actual open time near max, not total.
				var total, max time.Duration
				for _, d := range pool.ShardRecoveryDurations() {
					total += d
					if d > max {
						max = d
					}
				}
				log.Printf("shard recovery: shards=%d total_ms=%d max_ms=%d",
					pool.Shards(), total.Milliseconds(), max.Milliseconds())
			}
		} else if pool := cache.Pool(); pool != nil {
			log.Printf("fresh file-backed pool: %d MiB NVRAM across %d shards under %s",
				*mem>>20, pool.Shards(), pmemPath)
		} else {
			log.Printf("fresh file-backed cache: %d MiB NVRAM mapped at %s", *mem>>20, pmemPath)
		}
	case *image != "":
		if _, err := os.Stat(*image); err == nil {
			dev, err := nvram.LoadImage(*image, nvram.Config{WriteLatency: *latency})
			if err != nil {
				log.Fatalf("nvmemcached: load image: %v", err)
			}
			start := time.Now()
			c, stats, err := memcache.Recover(dev, cfg)
			if err != nil {
				log.Fatalf("nvmemcached: recover: %v", err)
			}
			cache = c
			log.Printf("recovered %d items in %v (%d active areas, %d leaked objects freed)",
				cache.Stats().Items, time.Since(start).Round(time.Microsecond),
				stats.ActiveAreas, stats.Leaked)
		}
	}
	if cache == nil {
		c, err := memcache.New(cfg)
		if err != nil {
			log.Fatalf("nvmemcached: %v", err)
		}
		cache = c
		if pool := cache.Pool(); pool != nil {
			log.Printf("fresh cache: %d MiB simulated NVRAM across %d shards, %d buckets", *mem>>20, pool.Shards(), *buckets)
		} else {
			log.Printf("fresh cache: %d MiB simulated NVRAM, %d buckets", *mem>>20, *buckets)
		}
	}
	log.Printf("pool bytes: total=%d", cache.SizeBytes())

	if *restoreFrom != "" {
		f, err := os.Open(*restoreFrom)
		if err != nil {
			log.Fatalf("nvmemcached: restore: %v", err)
		}
		start := time.Now()
		n, err := cache.RestoreSnapshot(bufio.NewReaderSize(f, 1<<20))
		f.Close()
		if err != nil {
			log.Fatalf("nvmemcached: restore %s: %v", *restoreFrom, err)
		}
		log.Printf("restored %d items from snapshot %s in %v",
			n, *restoreFrom, time.Since(start).Round(time.Microsecond))
	}

	// dumpSnapshot streams a live snapshot in the background (the serving
	// loop keeps running); tmp+rename so a crashed dump never clobbers the
	// previous good snapshot. One dump at a time.
	var snapshotBusy atomic.Bool
	dumpSnapshot := func() {
		if !snapshotBusy.CompareAndSwap(false, true) {
			log.Printf("snapshot already in progress, SIGUSR1 ignored")
			return
		}
		go func() {
			defer snapshotBusy.Store(false)
			start := time.Now()
			tmp := *snapshotTo + ".tmp"
			f, err := os.Create(tmp)
			if err != nil {
				log.Printf("nvmemcached: snapshot: %v", err)
				return
			}
			w := bufio.NewWriterSize(f, 1<<20)
			n, err := cache.Snapshot(w)
			if err == nil {
				err = w.Flush()
			}
			if err == nil {
				err = f.Sync()
			}
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err == nil {
				err = os.Rename(tmp, *snapshotTo)
			}
			if err != nil {
				os.Remove(tmp)
				log.Printf("nvmemcached: snapshot: %v", err)
				return
			}
			log.Printf("snapshot: %d items to %s in %v",
				n, *snapshotTo, time.Since(start).Round(time.Millisecond))
		}()
	}

	// Replication roles. Wired before the client listener so a follower is
	// read-only from its very first client connection, and logged before the
	// "listening on" line so scripts scraping the CLIENT address still grab
	// the last "listening on" match.
	var primary *repl.Primary
	var follower *repl.Follower
	switch {
	case *replicateTo != "":
		primary = repl.NewPrimary(cache, repl.Options{})
		if err := primary.Listen(*replicateTo); err != nil {
			log.Fatalf("nvmemcached: replication listen: %v", err)
		}
		cache.SetReplication(primary, func() memcache.ReplStats {
			st := primary.Stats()
			return memcache.ReplStats{State: st.State, Seq: st.Seq, LagOps: st.LagOps, Reconnects: st.Accepts}
		})
		log.Printf("replication: accepting followers on %s", primary.Addr())
	case *follow != "":
		follower = repl.NewFollower(*follow, cache, repl.FollowerOptions{})
		cache.SetReplication(nil, func() memcache.ReplStats {
			st := follower.Stats()
			return memcache.ReplStats{State: st.State, Seq: st.Seq, LagOps: st.LagOps, Reconnects: st.Reconnects}
		})
		go follower.Run()
		log.Printf("replication: following %s (read-only until promoted)", *follow)
	case *promote:
		if err := cache.SetReplMeta(0, 0); err != nil {
			log.Fatalf("nvmemcached: clear replication resume point: %v", err)
		}
		cache.SetReplication(nil, func() memcache.ReplStats {
			return memcache.ReplStats{State: "promoted"}
		})
		log.Printf("promoted: serving writes")
	}

	srv, err := memcache.NewServer(*listen, *conns, cache, cache.Stats)
	if err != nil {
		log.Fatalf("nvmemcached: listen: %v", err)
	}
	if follower != nil {
		srv.SetReadOnly(true)
	}
	log.Printf("listening on %s", srv.Addr())

	stopSweeper := func() {}
	startSweeper := func() {
		if *sweep > 0 {
			stopSweeper = cache.StartSweeper(*sweep)
			log.Printf("expiry sweeper running every %v", *sweep)
		}
	}
	if follower == nil {
		// A follower's expirations arrive through the stream (the primary
		// sweeps and replicates the deletes); its own sweeper starts at
		// promotion.
		startSweeper()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM, syscall.SIGUSR1, syscall.SIGUSR2)
loop:
	for s := range sig {
		switch s {
		case syscall.SIGUSR1:
			if follower == nil {
				if *snapshotTo != "" {
					dumpSnapshot()
				} else {
					log.Printf("SIGUSR1 ignored: not a follower")
				}
				continue
			}
			if err := follower.Promote(); err != nil {
				log.Fatalf("nvmemcached: promote: %v", err)
			}
			cache.SetReplication(nil, func() memcache.ReplStats {
				st := follower.Stats()
				return memcache.ReplStats{State: st.State, Seq: st.Seq, LagOps: st.LagOps, Reconnects: st.Reconnects}
			})
			srv.SetReadOnly(false)
			startSweeper()
			log.Printf("promoted: serving writes")
		case syscall.SIGUSR2:
			if primary == nil {
				log.Printf("SIGUSR2 ignored: not a primary")
				continue
			}
			log.Printf("replication: dropping followers (fault injection)")
			primary.DropFollowers()
		default:
			break loop
		}
	}
	log.Printf("shutting down")
	stopSweeper()
	if primary != nil {
		primary.Close()
	}
	if follower != nil {
		follower.Close()
	}
	srv.Close()
	items := cache.Stats().Items
	switch {
	case pmemPath != "":
		// No image dance: the mapping already holds everything; Close just
		// flushes it synchronously and unmaps.
		if err := cache.Close(); err != nil {
			log.Fatalf("nvmemcached: close: %v", err)
		}
		log.Printf("pmem file %s holds %d items", pmemPath, items)
	case *image != "":
		cache.Flush()
		if err := cache.Device().SaveImage(*image); err != nil {
			log.Fatalf("nvmemcached: save image: %v", err)
		}
		log.Printf("image saved to %s (%d items)", *image, items)
	}
}
