// Command nvmemcached runs an NV-Memcached server (§6.5): a durable
// Memcached speaking the standard wire protocol — the full text command set
// (including cas/gets, append/prepend, noreply pipelining) and the binary
// protocol, auto-detected per connection from its first byte, so unmodified
// standard clients work in either mode — whose contents survive restarts of
// the simulated NVRAM image.
//
// Two durability modes:
//
//	nvmemcached -listen :11211 -mem 268435456 -pmem-file /var/lib/nvmc.pmem
//
// backs the NVRAM image with an mmap'd file: every acknowledged write is in
// the file's page cache the moment the operation returns, so the cache
// survives ANY process death — kill -9 included — and a restart with the
// same -pmem-file recovers it with no shutdown handshake. Add -pmem-sync
// for machine-crash (power-loss) durability at the cost of one fdatasync
// per linearizing fence.
//
//	nvmemcached -listen :11211 -mem 268435456 -image /tmp/nvmc.img
//
// is the legacy in-process mode: contents survive only a clean SIGTERM,
// which saves the image for the next start.
package main

import (
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/memcache"
	"repro/internal/nvram"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:11211", "listen address")
	mem := flag.Uint64("mem", 256<<20, "simulated NVRAM bytes (split across shards when -shards > 1)")
	buckets := flag.Int("buckets", 1<<16, "hash table buckets (split across shards when -shards > 1)")
	conns := flag.Int("conns", 4096, "max concurrently served connections (excess connections wait, they are not refused)")
	image := flag.String("image", "", "NVRAM image file (recovered if present, saved on clean shutdown)")
	pmemFile := flag.String("pmem-file", "", "file-backed NVRAM (mmap): kill -9 safe, no image save needed; a pool DIRECTORY when -shards > 1")
	pmemSync := flag.Bool("pmem-sync", false, "with -pmem-file: fdatasync per fence (power-loss durability)")
	shards := flag.Int("shards", 1, "independent runtime shards (power of two); >1 hash-routes keys across a sharded pool")
	latency := flag.Duration("latency", nvram.DefaultWriteLatency, "simulated NVRAM write latency")
	sweep := flag.Duration("sweep", 30*time.Second, "expiry sweep interval (0 disables the sweeper)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty disables)")
	flag.Parse()

	if *image != "" && *pmemFile != "" {
		log.Fatalf("nvmemcached: -image and -pmem-file are mutually exclusive")
	}
	if *shards > 1 && *image != "" {
		log.Fatalf("nvmemcached: -shards > 1 requires -pmem-file (a pool directory) or pure memory, not -image")
	}

	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("nvmemcached: pprof server: %v", err)
			}
		}()
	}

	// The formatted session region stays modest regardless of the
	// connection cap: sessions grow dynamically past the formatted slots
	// (PR 4), so thousands of connections do not need thousands of
	// preformatted contexts.
	sessionSlots := *conns
	if sessionSlots > 64 {
		sessionSlots = 64
	}
	cfg := memcache.Config{
		MemoryBytes:  *mem,
		Buckets:      *buckets,
		MaxConns:     sessionSlots,
		WriteLatency: *latency,
		File:         *pmemFile,
		FileSync:     *pmemSync,
		Shards:       *shards,
	}

	var cache *memcache.Cache
	switch {
	case *pmemFile != "":
		start := time.Now()
		c, err := memcache.New(cfg)
		if err != nil {
			log.Fatalf("nvmemcached: open %s: %v", *pmemFile, err)
		}
		cache = c
		if cache.Recovered() {
			rs := cache.RecoveryStats()
			log.Printf("recovered %d items from %s in %v (%d active areas, %d leaked objects freed)",
				cache.Stats().Items, *pmemFile, time.Since(start).Round(time.Microsecond),
				rs.ActiveAreas, rs.Leaked)
			if pool := cache.Pool(); pool != nil {
				// Machine-parseable parallelism evidence for crash_e2e.sh:
				// total is the sum of the per-shard recovery wall clocks, max
				// the slowest shard — parallel recovery keeps the pool's
				// actual open time near max, not total.
				var total, max time.Duration
				for _, d := range pool.ShardRecoveryDurations() {
					total += d
					if d > max {
						max = d
					}
				}
				log.Printf("shard recovery: shards=%d total_ms=%d max_ms=%d",
					pool.Shards(), total.Milliseconds(), max.Milliseconds())
			}
		} else if pool := cache.Pool(); pool != nil {
			log.Printf("fresh file-backed pool: %d MiB NVRAM across %d shards under %s",
				*mem>>20, pool.Shards(), *pmemFile)
		} else {
			log.Printf("fresh file-backed cache: %d MiB NVRAM mapped at %s", *mem>>20, *pmemFile)
		}
	case *image != "":
		if _, err := os.Stat(*image); err == nil {
			dev, err := nvram.LoadImage(*image, nvram.Config{WriteLatency: *latency})
			if err != nil {
				log.Fatalf("nvmemcached: load image: %v", err)
			}
			start := time.Now()
			c, stats, err := memcache.Recover(dev, cfg)
			if err != nil {
				log.Fatalf("nvmemcached: recover: %v", err)
			}
			cache = c
			log.Printf("recovered %d items in %v (%d active areas, %d leaked objects freed)",
				cache.Stats().Items, time.Since(start).Round(time.Microsecond),
				stats.ActiveAreas, stats.Leaked)
		}
	}
	if cache == nil {
		c, err := memcache.New(cfg)
		if err != nil {
			log.Fatalf("nvmemcached: %v", err)
		}
		cache = c
		if pool := cache.Pool(); pool != nil {
			log.Printf("fresh cache: %d MiB simulated NVRAM across %d shards, %d buckets", *mem>>20, pool.Shards(), *buckets)
		} else {
			log.Printf("fresh cache: %d MiB simulated NVRAM, %d buckets", *mem>>20, *buckets)
		}
	}

	srv, err := memcache.NewServer(*listen, *conns, cache, cache.Stats)
	if err != nil {
		log.Fatalf("nvmemcached: listen: %v", err)
	}
	log.Printf("listening on %s", srv.Addr())

	stopSweeper := func() {}
	if *sweep > 0 {
		stopSweeper = cache.StartSweeper(*sweep)
		log.Printf("expiry sweeper running every %v", *sweep)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	stopSweeper()
	srv.Close()
	items := cache.Stats().Items
	switch {
	case *pmemFile != "":
		// No image dance: the mapping already holds everything; Close just
		// flushes it synchronously and unmaps.
		if err := cache.Close(); err != nil {
			log.Fatalf("nvmemcached: close: %v", err)
		}
		log.Printf("pmem file %s holds %d items", *pmemFile, items)
	case *image != "":
		cache.Flush()
		if err := cache.Device().SaveImage(*image); err != nil {
			log.Fatalf("nvmemcached: save image: %v", err)
		}
		log.Printf("image saved to %s (%d items)", *image, items)
	}
}
