// Command memtier is a load generator modeled on memtier-benchmark (§6.5):
// it drives a memcached-protocol server with a configurable set:get mix over
// a uniform key range and reports throughput plus end-to-end latency
// percentiles (p50/p99/p999), as used for Figure 11 and BENCH_latency.json.
//
// It scales to thousands of concurrent connections (one goroutine each) and
// speaks both wire protocols:
//
//	memtier -server 127.0.0.1:11211 -keys 100000 -ratio 1:4 -conns 1000 -dur 10s
//	memtier -server 127.0.0.1:11211 -protocol binary -conns 1000 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/memcache"
)

func main() {
	server := flag.String("server", "127.0.0.1:11211", "memcached server address")
	keys := flag.Int("keys", 10000, "key range (keys drawn uniformly at random)")
	ratio := flag.String("ratio", "1:4", "set:get ratio")
	valueLen := flag.Int("data", 64, "value payload bytes")
	threads := flag.Int("threads", 4, "client threads (alias for -conns when -conns is 0)")
	conns := flag.Int("conns", 0, "concurrent TCP connections (0 = -threads)")
	protocol := flag.String("protocol", "text", "wire protocol: text or binary")
	dur := flag.Duration("dur", 5*time.Second, "run duration")
	preload := flag.Bool("preload", true, "warm the cache with half the key range first")
	jsonOut := flag.Bool("json", false, "emit the result as one JSON object on stdout")
	flag.Parse()

	var setR, getR int
	if _, err := fmt.Sscanf(strings.ReplaceAll(*ratio, ":", " "), "%d %d", &setR, &getR); err != nil {
		log.Fatalf("memtier: bad -ratio %q: %v", *ratio, err)
	}
	if *protocol != "text" && *protocol != "binary" {
		log.Fatalf("memtier: bad -protocol %q (want text or binary)", *protocol)
	}

	mt := &memcache.Memtier{
		KeyRange: *keys,
		SetRatio: setR, GetRatio: getR,
		ValueLen: *valueLen,
		Threads:  *threads,
		Conns:    *conns,
		Protocol: *protocol,
		Duration: *dur,
	}

	if *preload {
		start := time.Now()
		if err := mt.PreloadTCP(*server); err != nil {
			log.Fatalf("memtier: preload: %v", err)
		}
		if !*jsonOut {
			fmt.Printf("preloaded %d keys in %v\n", *keys/2, time.Since(start).Round(time.Millisecond))
		}
	}

	res, err := mt.RunTCP(*server)
	if err != nil {
		log.Fatalf("memtier: %v", err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(map[string]any{
			"protocol":    *protocol,
			"conns":       res.Conns,
			"ops":         res.Ops,
			"elapsed_sec": res.Elapsed.Seconds(),
			"ops_per_sec": res.Throughput,
			"hits":        res.Hits,
			"misses":      res.Misses,
			"p50_us":      float64(res.P50) / float64(time.Microsecond),
			"p99_us":      float64(res.P99) / float64(time.Microsecond),
			"p999_us":     float64(res.P999) / float64(time.Microsecond),
		}); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("protocol:   %s\n", *protocol)
	fmt.Printf("conns:      %d\n", res.Conns)
	fmt.Printf("ops:        %d\n", res.Ops)
	fmt.Printf("elapsed:    %v\n", res.Elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f ops/sec (%.2f x 100Kop/s)\n", res.Throughput, res.Throughput/100000)
	fmt.Printf("hits:       %d\n", res.Hits)
	fmt.Printf("misses:     %d\n", res.Misses)
	fmt.Printf("p50:        %v\n", res.P50)
	fmt.Printf("p99:        %v\n", res.P99)
	fmt.Printf("p999:       %v\n", res.P999)
}
