// Command memtier is a load generator modeled on memtier-benchmark (§6.5):
// it drives a memcached-protocol server with a configurable set:get mix over
// a uniform key range and reports throughput, as used for Figure 11.
//
//	memtier -server 127.0.0.1:11211 -keys 100000 -ratio 1:4 -threads 4 -dur 10s
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/memcache"
)

func main() {
	server := flag.String("server", "127.0.0.1:11211", "memcached server address")
	keys := flag.Int("keys", 10000, "key range (keys drawn uniformly at random)")
	ratio := flag.String("ratio", "1:4", "set:get ratio")
	valueLen := flag.Int("data", 64, "value payload bytes")
	threads := flag.Int("threads", 4, "client threads")
	dur := flag.Duration("dur", 5*time.Second, "run duration")
	preload := flag.Bool("preload", true, "warm the cache with half the key range first")
	flag.Parse()

	var setR, getR int
	if _, err := fmt.Sscanf(strings.ReplaceAll(*ratio, ":", " "), "%d %d", &setR, &getR); err != nil {
		log.Fatalf("memtier: bad -ratio %q: %v", *ratio, err)
	}

	mt := &memcache.Memtier{
		KeyRange: *keys,
		SetRatio: setR, GetRatio: getR,
		ValueLen: *valueLen,
		Threads:  *threads,
		Duration: *dur,
	}

	if *preload {
		start := time.Now()
		if err := mt.PreloadTCP(*server); err != nil {
			log.Fatalf("memtier: preload: %v", err)
		}
		fmt.Printf("preloaded %d keys in %v\n", *keys/2, time.Since(start).Round(time.Millisecond))
	}

	res, err := mt.RunTCP(*server)
	if err != nil {
		log.Fatalf("memtier: %v", err)
	}
	fmt.Printf("ops:        %d\n", res.Ops)
	fmt.Printf("elapsed:    %v\n", res.Elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f ops/sec (%.2f x 100Kop/s)\n", res.Throughput, res.Throughput/100000)
	fmt.Printf("hits:       %d\n", res.Hits)
	fmt.Printf("misses:     %d\n", res.Misses)
}
