// Command nvbench regenerates every table and figure from the evaluation
// section of "Log-Free Concurrent Data Structures" (USENIX ATC 2018) on the
// simulated-NVRAM reproduction.
//
// Usage:
//
//	nvbench [flags] <experiment>...
//	nvbench -dur 1s -threads 8 -maxsize 1048576 fig5 fig8
//	nvbench all
//
// Experiments: table1, fig5, fig6, fig7, fig8, fig9a, fig9b, fig10, fig11.
//
// Absolute numbers depend on the host; the claims under reproduction are
// the relative ones (see EXPERIMENTS.md for the paper-vs-measured record).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/bench"
)

func main() {
	dur := flag.Duration("dur", 300*time.Millisecond, "measured duration per benchmark point")
	csv := flag.Bool("csv", false, "emit comma-separated values instead of aligned tables")
	threads := flag.Int("threads", 8, "concurrent worker threads (the paper uses 8)")
	maxSize := flag.Int("maxsize", 1<<20, "cap on structure sizes (paper max: 4194304)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex-contention profile (full sampling) to this file")
	blockProfile := flag.String("blockprofile", "", "write a blocking profile (full sampling) to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nvbench [flags] <experiment>...\n")
		fmt.Fprintf(os.Stderr, "experiments: table1 fig5 fig6 fig7 fig8 fig9a fig9b fig10 fig11 fig11-tcp all\n")
		fmt.Fprintf(os.Stderr, "ablations:   ablation-area ablation-lc ablation-gen (not part of 'all')\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	o := bench.FigureOptions{Duration: *dur, MaxSize: *maxSize, Threads: *threads}
	type experiment struct {
		name string
		run  func() (*bench.Table, error)
	}
	all := []experiment{
		{"table1", func() (*bench.Table, error) { return bench.Table1(), nil }},
		{"fig5", func() (*bench.Table, error) { return bench.Fig5(o) }},
		{"fig6", func() (*bench.Table, error) { return bench.Fig6(o) }},
		{"fig7", func() (*bench.Table, error) { return bench.Fig7(o) }},
		{"fig8", func() (*bench.Table, error) { return bench.Fig8(o) }},
		{"fig9a", func() (*bench.Table, error) { return bench.Fig9a(o) }},
		{"fig9b", func() (*bench.Table, error) { return bench.Fig9b(o) }},
		{"fig10", func() (*bench.Table, error) { return bench.Fig10(o) }},
		{"fig11", func() (*bench.Table, error) { return bench.Fig11(o) }},
		{"fig11-tcp", func() (*bench.Table, error) { return bench.Fig11TCP(o) }},
		{"ablation-area", func() (*bench.Table, error) { return bench.AblationAreaShift(o) }},
		{"ablation-lc", func() (*bench.Table, error) { return bench.AblationLinkCacheBuckets(o) }},
		{"ablation-gen", func() (*bench.Table, error) { return bench.AblationGenSize(o) }},
	}
	byName := make(map[string]experiment, len(all))
	for _, e := range all {
		byName[e.name] = e
	}
	paperSet := all[:10] // "all" = the paper's tables/figures, not the ablations

	var todo []experiment
	for _, arg := range flag.Args() {
		if arg == "all" {
			todo = paperSet
			break
		}
		e, ok := byName[arg]
		if !ok {
			fmt.Fprintf(os.Stderr, "nvbench: unknown experiment %q\n", arg)
			os.Exit(2)
		}
		todo = append(todo, e)
	}

	// Profile hooks, so the serialization hunt behind the sharded-pool work
	// is reproducible: -mutexprofile/-blockprofile answer "is a lock or a
	// channel the ceiling?", -cpuprofile answers "then what is?".
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "nvbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *mutexProfile != "" {
		runtime.SetMutexProfileFraction(1)
		defer writeProfile("mutex", *mutexProfile)
	}
	if *blockProfile != "" {
		runtime.SetBlockProfileRate(1)
		defer writeProfile("block", *blockProfile)
	}

	for _, e := range todo {
		start := time.Now()
		tab, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		if *csv {
			tab.FprintCSV(os.Stdout)
		} else {
			tab.Fprint(os.Stdout)
		}
		fmt.Printf("(%s took %v)\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
}

// writeProfile dumps a named runtime profile (mutex, block) to path.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nvbench: %v\n", err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "nvbench: write %s profile: %v\n", name, err)
	}
}
