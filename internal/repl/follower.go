package repl

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// Applier is what a follower needs from its cache: byte-faithful item
// application (exact value, flags and aux — CAS unique and expiry ride in
// aux verbatim) plus a tiny durable metadata slot recording how far into
// which primary incarnation it has applied, so a restarted follower can
// resume from its last seq instead of re-snapshotting.
type Applier interface {
	ApplySet(key, value []byte, flags uint16, aux uint64) error
	ApplyDelete(key []byte) error
	// ResetForSnapshot clears the cache before a snapshot lands: keys
	// deleted on the primary while this follower was away must not linger.
	ResetForSnapshot() error
	ReplMeta() (runID, seq uint64)
	SetReplMeta(runID, seq uint64) error
}

// FollowerOptions parameterize a Follower. Zero values pick defaults.
type FollowerOptions struct {
	// BackoffMin/BackoffMax bound the jittered exponential reconnect
	// backoff (defaults 100ms and 5s; each failed dial doubles the delay,
	// ±25% jitter so restarted fleets do not reconnect in lockstep).
	BackoffMin, BackoffMax time.Duration
	// DialTimeout bounds one connection attempt. Default 3s.
	DialTimeout time.Duration
	// ReadTimeout is the dead-primary detector: the primary heartbeats an
	// idle stream, so a read stalled past this means the peer is gone.
	// Must exceed the primary's heartbeat interval. Default 3s.
	ReadTimeout time.Duration
	// MetaEvery persists the (runID, seq) resume point every N applied
	// ops. The meta is an optimization, not a durability boundary: applies
	// themselves are durable before being acked, and re-applying ops past
	// a stale resume point is idempotent (records carry items verbatim).
	// Default 64.
	MetaEvery int
}

func (o *FollowerOptions) fill() {
	if o.BackoffMin <= 0 {
		o.BackoffMin = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 3 * time.Second
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = 3 * time.Second
	}
	if o.MetaEvery <= 0 {
		o.MetaEvery = 64
	}
}

// Follower streams from a primary into an Applier: dial (with jittered
// exponential backoff), handshake (resume-from-seq when the primary still
// holds our position in its replay ring, snapshot otherwise), apply, ack.
// Acks coalesce — one ack whenever the inbound pipe runs dry — and are
// sent only after the apply returned, i.e. after it is durable, which is
// what lets the primary's WaitAcked promise the acked frontier.
type Follower struct {
	addr string
	app  Applier
	opt  FollowerOptions

	mu         sync.Mutex
	state      string // connecting | snapshot | streaming | promoted | stopped
	seq        uint64 // last applied seq
	runID      uint64 // primary incarnation seq belongs to
	primarySeq uint64 // primary frontier, as last heard (heartbeats/ops)
	reconnects uint64 // successful replication connections established
	conn       net.Conn
	stopped    bool

	stopCh chan struct{} // closed by stop(): interrupts backoff sleeps
	done   chan struct{} // closed when Run exits
}

// NewFollower creates a follower of the primary at addr, applying into
// app. The resume point is loaded from app's durable repl metadata. Call
// Run (usually in a goroutine) to start streaming.
func NewFollower(addr string, app Applier, opt FollowerOptions) *Follower {
	opt.fill()
	runID, seq := app.ReplMeta()
	return &Follower{
		addr:   addr,
		app:    app,
		opt:    opt,
		state:  "connecting",
		seq:    seq,
		runID:  runID,
		stopCh: make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Run streams until Promote or Close. It reconnects forever on transient
// failures; it never returns an error for a dead primary (outliving the
// primary is the job).
func (f *Follower) Run() {
	defer close(f.done)
	backoff := f.opt.BackoffMin
	for {
		f.mu.Lock()
		if f.stopped {
			f.mu.Unlock()
			return
		}
		f.state = "connecting"
		f.mu.Unlock()

		conn, err := net.DialTimeout("tcp", f.addr, f.opt.DialTimeout)
		if err == nil {
			f.mu.Lock()
			if f.stopped {
				f.mu.Unlock()
				conn.Close()
				return
			}
			f.conn = conn
			f.reconnects++
			f.mu.Unlock()

			streamed := f.session(conn)

			f.mu.Lock()
			f.conn = nil
			stopped := f.stopped
			f.mu.Unlock()
			conn.Close()
			if stopped {
				return
			}
			if streamed {
				backoff = f.opt.BackoffMin // the session was healthy; start over gently
			}
		}
		// Jittered exponential backoff: ±25% around the current delay.
		d := backoff + time.Duration(rand.Int63n(int64(backoff)))/2 - backoff/4
		t := time.NewTimer(d)
		select {
		case <-f.stopCh:
			t.Stop()
			return
		case <-t.C:
		}
		backoff *= 2
		if backoff > f.opt.BackoffMax {
			backoff = f.opt.BackoffMax
		}
	}
}

// session runs one connection: handshake then apply-and-ack until the
// stream breaks. Reports whether it reached the streaming state.
func (f *Follower) session(conn net.Conn) (streamed bool) {
	r := NewReader(conn)
	w := NewWriter(conn)

	f.mu.Lock()
	hello := Record{Type: TypeHello, Seq: f.seq, Aux: f.runID}
	f.mu.Unlock()
	if w.WriteRecord(&hello) != nil || w.Flush() != nil {
		return false
	}

	var rec Record
	conn.SetReadDeadline(time.Now().Add(f.opt.ReadTimeout))
	if r.ReadRecord(&rec) != nil || rec.Type != TypeWelcome {
		return false
	}
	newRunID := rec.Aux
	if rec.Flags == ModeSnapshot {
		f.setState("snapshot")
		startSeq := rec.Seq
		if f.app.ResetForSnapshot() != nil {
			return false
		}
		for {
			conn.SetReadDeadline(time.Now().Add(f.opt.ReadTimeout))
			if r.ReadRecord(&rec) != nil {
				return false
			}
			if rec.Type == TypeSnapEnd {
				break
			}
			if rec.Type != TypeSnapItem {
				return false
			}
			if f.app.ApplySet(rec.Key, rec.Value, rec.Flags, rec.Aux) != nil {
				return false
			}
		}
		f.mu.Lock()
		f.seq = startSeq
		f.runID = newRunID
		f.mu.Unlock()
	} else {
		f.mu.Lock()
		f.runID = newRunID
		f.mu.Unlock()
	}
	if f.app.SetReplMeta(newRunID, f.currentSeq()) != nil {
		return false
	}
	f.setState("streaming")

	// Ack immediately: on an idle primary this is what promotes us to
	// in-sync (and on resume, confirms the resume point).
	if f.sendAck(w) != nil {
		return false
	}

	sinceMeta := 0
	for {
		conn.SetReadDeadline(time.Now().Add(f.opt.ReadTimeout))
		if r.ReadRecord(&rec) != nil {
			return true
		}
		switch rec.Type {
		case TypeSet:
			if f.app.ApplySet(rec.Key, rec.Value, rec.Flags, rec.Aux) != nil {
				return true
			}
			f.advance(rec.Seq)
			sinceMeta++
		case TypeDelete:
			if f.app.ApplyDelete(rec.Key) != nil {
				return true
			}
			f.advance(rec.Seq)
			sinceMeta++
		case TypeHeartbeat:
			f.mu.Lock()
			if rec.Seq > f.primarySeq {
				f.primarySeq = rec.Seq
			}
			f.mu.Unlock()
		case TypeWelcome:
			// Mid-stream re-snapshot: we fell out of the primary's replay
			// ring and it shed us to a fresh snapshot.
			if rec.Flags != ModeSnapshot {
				return true
			}
			f.setState("snapshot")
			startSeq, runID := rec.Seq, rec.Aux
			if f.app.ResetForSnapshot() != nil {
				return true
			}
			for {
				conn.SetReadDeadline(time.Now().Add(f.opt.ReadTimeout))
				if r.ReadRecord(&rec) != nil {
					return true
				}
				if rec.Type == TypeSnapEnd {
					break
				}
				if rec.Type != TypeSnapItem ||
					f.app.ApplySet(rec.Key, rec.Value, rec.Flags, rec.Aux) != nil {
					return true
				}
			}
			f.mu.Lock()
			f.seq = startSeq
			f.runID = runID
			f.mu.Unlock()
			if f.app.SetReplMeta(runID, startSeq) != nil {
				return true
			}
			f.setState("streaming")
		default:
			return true
		}
		// Coalesced ack + periodic resume-point persistence, only when the
		// pipe runs dry (the heartbeat guarantees it periodically does).
		if r.Buffered() == 0 {
			if sinceMeta >= f.opt.MetaEvery {
				if f.app.SetReplMeta(f.currentRunID(), f.currentSeq()) != nil {
					return true
				}
				sinceMeta = 0
			}
			if f.sendAck(w) != nil {
				return true
			}
		}
	}
}

func (f *Follower) sendAck(w *Writer) error {
	if err := w.WriteRecord(&Record{Type: TypeAck, Seq: f.currentSeq()}); err != nil {
		return err
	}
	return w.Flush()
}

func (f *Follower) advance(seq uint64) {
	f.mu.Lock()
	f.seq = seq
	if seq > f.primarySeq {
		f.primarySeq = seq
	}
	f.mu.Unlock()
}

func (f *Follower) setState(s string) {
	f.mu.Lock()
	if !f.stopped {
		f.state = s
	}
	f.mu.Unlock()
}

func (f *Follower) currentSeq() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}

func (f *Follower) currentRunID() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.runID
}

// Promote stops following and marks the follower promoted, waiting for any
// in-flight apply to finish — after Promote returns, the cache holds every
// op this follower ever acked and is safe to serve writes. The stored
// resume point is cleared: a promoted cache has diverged from any future
// primary incarnation and must never silently resume into one.
func (f *Follower) Promote() error {
	f.stop("promoted")
	<-f.done
	return f.app.SetReplMeta(0, 0)
}

// Close stops following without promoting (tests, shutdown).
func (f *Follower) Close() {
	f.stop("stopped")
	<-f.done
}

func (f *Follower) stop(state string) {
	f.mu.Lock()
	if !f.stopped {
		f.stopped = true
		close(f.stopCh)
	}
	f.state = state
	conn := f.conn
	f.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// FollowerStats is the follower-side replication surface behind `stats`.
type FollowerStats struct {
	State      string // connecting | snapshot | streaming | promoted | stopped
	Seq        uint64 // last applied seq
	LagOps     uint64 // primary frontier (as last heard) minus applied seq
	Reconnects uint64 // successful replication connections established
}

// Stats snapshots the follower's replication counters.
func (f *Follower) Stats() FollowerStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FollowerStats{
		State:      f.state,
		Seq:        f.seq,
		Reconnects: f.reconnects,
	}
	if f.primarySeq > f.seq {
		st.LagOps = f.primarySeq - f.seq
	}
	return st
}
