package repl

import (
	crand "crypto/rand"
	"encoding/binary"
	"net"
	"sync"
	"time"
)

// Source is what the primary needs from its cache to bring a fresh (or
// lapsed) follower up: a weakly consistent item scan. Items mutated during
// the scan may appear at a newer state than the stream start; replaying the
// op stream from the start seq re-converges, because every Set record
// carries the item verbatim (exact value, flags, aux) and later seqs win.
type Source interface {
	SnapshotItems(emit func(key, value []byte, flags uint16, aux uint64) error) error
}

// Options parameterize a Primary. Zero values pick production defaults.
type Options struct {
	// RingSize is the replay window: the number of recent ops retained for
	// resume-from-seq and per-follower send queues. A follower whose cursor
	// falls out of the ring is shed to a fresh snapshot instead of growing
	// an unbounded queue. Default 1<<15.
	RingSize int
	// AckTimeout bounds how long an acknowledged-to-client mutation waits
	// for an in-sync follower's ack before the follower is shed to degraded
	// (it re-enters sync when it catches back up). The write path itself
	// never blocks on replication — only the client response defers, and
	// only while a follower is keeping up. Default 2s.
	AckTimeout time.Duration
	// Heartbeat is the idle-stream heartbeat interval (lag reporting and
	// dead-peer detection both ride on it). Default 500ms.
	Heartbeat time.Duration
}

func (o *Options) fill() {
	if o.RingSize <= 0 {
		o.RingSize = 1 << 15
	}
	if o.AckTimeout <= 0 {
		o.AckTimeout = 2 * time.Second
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 500 * time.Millisecond
	}
}

// Primary serves the replication stream: it assigns sequence numbers to
// published mutations, retains them in a bounded ring, and streams them to
// any number of followers, each brought up by snapshot or resumed from its
// last applied seq. PublishSet/PublishDelete/WaitAcked satisfy the cache's
// ReplSink hook.
type Primary struct {
	src Source
	opt Options
	// runID names this primary incarnation; a follower may resume only into
	// the incarnation it was streaming from (seqs are not comparable across
	// restarts — a recovered primary restarts its sequence).
	runID uint64

	ln net.Listener
	wg sync.WaitGroup

	mu      sync.Mutex
	pubCond *sync.Cond // publish / follower-gone / close: senders wake
	ackCond *sync.Cond // ack progress / membership change: WaitAcked wakes
	closed  bool
	seq     uint64
	ring    []Record // ring[s % len] holds seq s while s > seq-len
	flw     map[*fconn]struct{}

	accepts     uint64 // follower connections accepted over this lifetime
	sheds       uint64 // in-sync followers demoted by an ack timeout
	resnapshots uint64 // followers re-snapshotted after falling out of the ring
}

// fconn is the primary's per-follower state. Guarded by Primary.mu except
// conn, which is owned by the sender/receiver pair.
type fconn struct {
	conn  net.Conn
	acked uint64
	// inSync: the follower has caught the frontier and now gates client
	// acks (semi-synchronous replication). Cleared when an ack times out
	// (slow-follower shedding); re-set when it catches the frontier again.
	inSync bool
	gone   bool
}

// NewPrimary creates a primary streaming src's mutations. Call Listen to
// serve followers, then hand the Primary to the cache as its ReplSink.
func NewPrimary(src Source, opt Options) *Primary {
	opt.fill()
	var rnd [8]byte
	if _, err := crand.Read(rnd[:]); err != nil {
		binary.BigEndian.PutUint64(rnd[:], uint64(time.Now().UnixNano()))
	}
	runID := binary.BigEndian.Uint64(rnd[:])
	if runID == 0 {
		runID = 1 // 0 means "no incarnation" in a Hello
	}
	p := &Primary{
		src:   src,
		opt:   opt,
		runID: runID,
		ring:  make([]Record, opt.RingSize),
		flw:   make(map[*fconn]struct{}),
	}
	p.pubCond = sync.NewCond(&p.mu)
	p.ackCond = sync.NewCond(&p.mu)
	return p
}

// Listen starts serving followers on addr (":0" picks a free port).
func (p *Primary) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	p.ln = ln
	p.wg.Add(2)
	go p.acceptLoop()
	go p.heartbeatLoop()
	return nil
}

// Addr returns the replication listen address.
func (p *Primary) Addr() string { return p.ln.Addr().String() }

// Close stops the listener and drops all followers.
func (p *Primary) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for f := range p.flw {
		f.conn.Close()
	}
	p.pubCond.Broadcast()
	p.ackCond.Broadcast()
	p.mu.Unlock()
	var err error
	if p.ln != nil {
		err = p.ln.Close()
	}
	p.wg.Wait()
	return err
}

// DropFollowers closes every follower connection (without stopping the
// listener) — the operational hook behind SIGUSR2, and the transient-
// disconnect fault injection the failover e2e uses to prove
// reconnect-and-resume.
func (p *Primary) DropFollowers() {
	p.mu.Lock()
	for f := range p.flw {
		f.conn.Close()
	}
	p.mu.Unlock()
}

// PublishSet records one stored item (value, flags and aux verbatim) and
// returns its seq. Called under the cache's per-key stripe lock, AFTER the
// mutation is durable, so per-key order on the stream matches durable
// order. Key and value are copied (callers reuse their buffers).
func (p *Primary) PublishSet(key, value []byte, flags uint16, aux uint64) uint64 {
	buf := make([]byte, len(key)+len(value))
	copy(buf, key)
	copy(buf[len(key):], value)
	return p.publish(Record{
		Type:  TypeSet,
		Flags: flags,
		Aux:   aux,
		Key:   buf[:len(key):len(key)],
		Value: buf[len(key):],
	})
}

// PublishDelete records one durable delete and returns its seq.
func (p *Primary) PublishDelete(key []byte) uint64 {
	return p.publish(Record{Type: TypeDelete, Key: append([]byte(nil), key...)})
}

func (p *Primary) publish(rec Record) uint64 {
	p.mu.Lock()
	p.seq++
	rec.Seq = p.seq
	p.ring[rec.Seq%uint64(len(p.ring))] = rec
	p.pubCond.Broadcast()
	p.mu.Unlock()
	return rec.Seq
}

// WaitAcked blocks until every in-sync follower has acknowledged seq (its
// apply is durable), a laggard is shed by the ack timeout, or the primary
// closes. With no in-sync follower it returns immediately: replication
// degrades, it never blocks the write path. This is the semi-synchronous
// half of the acked-frontier guarantee — a mutation acknowledged to a
// client while a follower was in sync IS on that follower.
func (p *Primary) WaitAcked(seq uint64) {
	if seq == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.lagBehind(seq) {
		return
	}
	deadline := time.Now().Add(p.opt.AckTimeout)
	timer := time.AfterFunc(p.opt.AckTimeout, func() {
		p.mu.Lock()
		p.ackCond.Broadcast()
		p.mu.Unlock()
	})
	defer timer.Stop()
	for {
		if p.closed || !p.lagBehind(seq) {
			return
		}
		if time.Now().After(deadline) {
			// Shed: stop gating client acks on followers that cannot keep
			// up. They stay connected and re-enter sync at the frontier.
			for f := range p.flw {
				if f.inSync && f.acked < seq {
					f.inSync = false
					p.sheds++
				}
			}
			return
		}
		p.ackCond.Wait()
	}
}

// lagBehind reports whether any in-sync follower has not yet acked seq.
// Caller holds p.mu.
func (p *Primary) lagBehind(seq uint64) bool {
	for f := range p.flw {
		if f.inSync && !f.gone && f.acked < seq {
			return true
		}
	}
	return false
}

// PrimaryStats is the primary-side replication surface behind `stats`.
type PrimaryStats struct {
	// State: "none" (no followers), "streaming" (at least one in-sync
	// follower gating acks), or "degraded" (followers connected, none in
	// sync — snapshotting, catching up, or shed).
	State     string
	Seq       uint64 // current stream frontier
	LagOps    uint64 // frontier minus the slowest follower's acked seq
	Followers int
	InSync    int
	// Accepts counts follower connections accepted over this primary's
	// lifetime — reported as repl_reconnects (a fresh stream is 1; every
	// reconnect increments it).
	Accepts     uint64
	Sheds       uint64
	Resnapshots uint64
}

// Stats snapshots the primary's replication counters.
func (p *Primary) Stats() PrimaryStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PrimaryStats{
		State:       "none",
		Seq:         p.seq,
		Accepts:     p.accepts,
		Sheds:       p.sheds,
		Resnapshots: p.resnapshots,
	}
	minAcked := p.seq
	for f := range p.flw {
		st.Followers++
		if f.inSync {
			st.InSync++
		}
		if f.acked < minAcked {
			minAcked = f.acked
		}
	}
	if st.Followers > 0 {
		st.LagOps = p.seq - minAcked
		if st.InSync > 0 {
			st.State = "streaming"
		} else {
			st.State = "degraded"
		}
	}
	return st
}

func (p *Primary) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		p.wg.Add(1)
		p.mu.Unlock()
		go func() {
			defer p.wg.Done()
			p.serveFollower(conn)
		}()
	}
}

// heartbeatLoop ticks the publish condition so idle senders wake to emit
// heartbeats (one shared ticker instead of a timer per sender).
func (p *Primary) heartbeatLoop() {
	defer p.wg.Done()
	t := time.NewTicker(p.opt.Heartbeat / 2)
	defer t.Stop()
	for range t.C {
		p.mu.Lock()
		closed := p.closed
		p.pubCond.Broadcast()
		p.mu.Unlock()
		if closed {
			return
		}
	}
}

// serveFollower runs one follower connection: handshake, snapshot or
// resume, then stream-from-ring with heartbeats, re-snapshotting if the
// follower falls out of the replay window. A paired receiver goroutine
// consumes acks.
func (p *Primary) serveFollower(conn net.Conn) {
	defer conn.Close()
	r := NewReader(conn)
	w := NewWriter(conn)

	var hello Record
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if err := r.ReadRecord(&hello); err != nil || hello.Type != TypeHello {
		return
	}
	conn.SetReadDeadline(time.Time{})

	f := &fconn{conn: conn}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.flw[f] = struct{}{}
	p.accepts++
	canResume := hello.Aux == p.runID && hello.Seq <= p.seq &&
		p.seq-hello.Seq <= uint64(len(p.ring))
	p.mu.Unlock()
	defer p.dropFollower(f)

	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.readAcks(f, r)
	}()

	var cursor uint64
	var err error
	if canResume {
		cursor = hello.Seq
		err = w.WriteRecord(&Record{Type: TypeWelcome, Seq: cursor, Aux: p.runID, Flags: ModeResume})
		if err == nil {
			err = w.Flush()
		}
	} else {
		cursor, err = p.sendSnapshot(w)
	}
	if err != nil {
		return
	}

	lastSend := time.Now()
	var batch []Record
	for {
		p.mu.Lock()
		for !p.closed && !f.gone && p.seq == cursor &&
			time.Since(lastSend) < p.opt.Heartbeat {
			p.pubCond.Wait()
		}
		if p.closed || f.gone {
			p.mu.Unlock()
			return
		}
		heartbeat := false
		resnap := false
		switch {
		case p.seq == cursor:
			heartbeat = true
		case p.seq-cursor > uint64(len(p.ring)):
			// The follower's cursor fell out of the replay window: shed to
			// a fresh snapshot rather than queue unboundedly.
			p.resnapshots++
			resnap = true
		default:
			n := p.seq - cursor
			if n > 256 {
				n = 256
			}
			batch = batch[:0]
			for i := uint64(1); i <= n; i++ {
				// Record structs are copied out under the lock; their
				// key/value allocations are immutable once published, so
				// writing them outside the lock is safe even if the ring
				// slot is overwritten meanwhile.
				batch = append(batch, p.ring[(cursor+i)%uint64(len(p.ring))])
			}
			cursor += n
		}
		hbSeq := p.seq
		p.mu.Unlock()

		switch {
		case resnap:
			cursor, err = p.sendSnapshot(w)
		case heartbeat:
			err = w.WriteRecord(&Record{Type: TypeHeartbeat, Seq: hbSeq})
			if err == nil {
				err = w.Flush()
			}
		default:
			for i := range batch {
				if err = w.WriteRecord(&batch[i]); err != nil {
					break
				}
			}
			if err == nil {
				err = w.Flush()
			}
		}
		if err != nil {
			return
		}
		lastSend = time.Now()
	}
}

// sendSnapshot streams Welcome(snapshot) + every item + SnapEnd and
// returns the stream start seq (the frontier at snapshot begin; the scan
// is weakly consistent, replay from that seq re-converges). The item scan
// runs WITHOUT p.mu — publishes proceed concurrently.
func (p *Primary) sendSnapshot(w *Writer) (uint64, error) {
	p.mu.Lock()
	start := p.seq
	p.mu.Unlock()
	if err := w.WriteRecord(&Record{Type: TypeWelcome, Seq: start, Aux: p.runID, Flags: ModeSnapshot}); err != nil {
		return 0, err
	}
	var count uint64
	err := p.src.SnapshotItems(func(key, value []byte, flags uint16, aux uint64) error {
		count++
		return w.WriteRecord(&Record{Type: TypeSnapItem, Flags: flags, Aux: aux, Key: key, Value: value})
	})
	if err != nil {
		return 0, err
	}
	if err := w.WriteRecord(&Record{Type: TypeSnapEnd, Seq: count}); err != nil {
		return 0, err
	}
	return start, w.Flush()
}

// readAcks consumes the follower's ack stream, promoting it to in-sync
// whenever it has caught the frontier. Any read error (or silence past the
// heartbeat-derived deadline) marks the follower gone.
func (p *Primary) readAcks(f *fconn, r *Reader) {
	var rec Record
	for {
		f.conn.SetReadDeadline(time.Now().Add(6 * p.opt.Heartbeat))
		if err := r.ReadRecord(&rec); err != nil || rec.Type != TypeAck {
			break
		}
		p.mu.Lock()
		if rec.Seq > f.acked {
			f.acked = rec.Seq
		}
		if f.acked >= p.seq {
			f.inSync = true
		}
		p.ackCond.Broadcast()
		p.mu.Unlock()
	}
	f.conn.Close()
	p.mu.Lock()
	f.gone = true
	f.inSync = false
	p.pubCond.Broadcast()
	p.ackCond.Broadcast()
	p.mu.Unlock()
}

func (p *Primary) dropFollower(f *fconn) {
	f.conn.Close()
	p.mu.Lock()
	delete(p.flw, f)
	f.gone = true
	f.inSync = false
	p.pubCond.Broadcast()
	p.ackCond.Broadcast()
	p.mu.Unlock()
}
