package repl

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// fakeStore is an in-memory Applier + Source for exercising the protocol
// without a cache.
type fakeStore struct {
	mu        sync.Mutex
	items     map[string]fakeItem
	metaRun   uint64
	metaSeq   uint64
	resets    int
	snapshots int
}

type fakeItem struct {
	value []byte
	flags uint16
	aux   uint64
}

func newFakeStore() *fakeStore { return &fakeStore{items: make(map[string]fakeItem)} }

func (s *fakeStore) ApplySet(key, value []byte, flags uint16, aux uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items[string(key)] = fakeItem{value: append([]byte(nil), value...), flags: flags, aux: aux}
	return nil
}

func (s *fakeStore) ApplyDelete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.items, string(key))
	return nil
}

func (s *fakeStore) ResetForSnapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items = make(map[string]fakeItem)
	s.resets++
	return nil
}

func (s *fakeStore) ReplMeta() (uint64, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.metaRun, s.metaSeq
}

func (s *fakeStore) SetReplMeta(runID, seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metaRun, s.metaSeq = runID, seq
	return nil
}

func (s *fakeStore) SnapshotItems(emit func(key, value []byte, flags uint16, aux uint64) error) error {
	s.mu.Lock()
	s.snapshots++
	type kv struct {
		k string
		v fakeItem
	}
	var all []kv
	for k, v := range s.items {
		all = append(all, kv{k, v})
	}
	s.mu.Unlock()
	for _, e := range all {
		if err := emit([]byte(e.k), e.v.value, e.v.flags, e.v.aux); err != nil {
			return err
		}
	}
	return nil
}

func (s *fakeStore) get(key string) (fakeItem, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	it, ok := s.items[key]
	return it, ok
}

func (s *fakeStore) snapshotCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshots
}

// fastOpts are aggressive timings so tests converge in milliseconds.
func fastPrimaryOpts(ring int) Options {
	return Options{RingSize: ring, AckTimeout: 500 * time.Millisecond, Heartbeat: 20 * time.Millisecond}
}

func fastFollowerOpts() FollowerOptions {
	return FollowerOptions{
		BackoffMin:  5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		DialTimeout: time.Second,
		ReadTimeout: 500 * time.Millisecond,
		MetaEvery:   16,
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := []Record{
		{Type: TypeHello, Seq: 42, Aux: 7},
		{Type: TypeWelcome, Seq: 42, Aux: 7, Flags: ModeResume},
		{Type: TypeSet, Seq: 43, Flags: 0xBEEF, Aux: 0xDEADBEEF00112233, Key: []byte("k"), Value: []byte("value")},
		{Type: TypeDelete, Seq: 44, Key: []byte("gone")},
		{Type: TypeSnapItem, Flags: 1, Aux: 2, Key: []byte("s"), Value: nil},
		{Type: TypeSnapEnd, Seq: 1},
		{Type: TypeHeartbeat, Seq: 44},
		{Type: TypeAck, Seq: 44},
	}
	for i := range recs {
		if err := w.WriteRecord(&recs[i]); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	for i, want := range recs {
		var got Record
		if err := r.ReadRecord(&got); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got.Type != want.Type || got.Seq != want.Seq || got.Flags != want.Flags ||
			got.Aux != want.Aux || !bytes.Equal(got.Key, want.Key) || !bytes.Equal(got.Value, want.Value) {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
	var extra Record
	if err := r.ReadRecord(&extra); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

// TestFrameCorruption flips every byte of an encoded stream and requires
// the decoder to error (never panic, never silently deliver a different
// record).
func TestFrameCorruption(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	orig := Record{Type: TypeSet, Seq: 9, Flags: 3, Aux: 77, Key: []byte("key"), Value: []byte("val")}
	if err := w.WriteRecord(&orig); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	enc := buf.Bytes()

	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0xFF
		r := NewReader(bytes.NewReader(mut))
		var rec Record
		err := r.ReadRecord(&rec)
		if err == nil {
			// The only acceptable "success" would be decoding the original
			// exactly — a flipped byte can never produce that.
			t.Fatalf("byte %d flipped: decoder accepted a corrupt frame: %+v", i, rec)
		}
	}

	// Truncations: every prefix must error, not panic.
	for n := 0; n < len(enc); n++ {
		r := NewReader(bytes.NewReader(enc[:n]))
		var rec Record
		if err := r.ReadRecord(&rec); err == nil {
			t.Fatalf("truncation at %d: decoder accepted a partial frame", n)
		}
	}
}

// startPair wires a primary (backed by src) and a follower (applying into
// dst) over a real TCP loopback.
func startPair(t *testing.T, src *fakeStore, dst *fakeStore, popt Options, fopt FollowerOptions) (*Primary, *Follower) {
	t.Helper()
	p := NewPrimary(src, popt)
	if err := p.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	f := NewFollower(p.Addr(), dst, fopt)
	go f.Run()
	t.Cleanup(f.Close)
	return p, f
}

func TestSnapshotThenStream(t *testing.T) {
	src := newFakeStore()
	for i := 0; i < 100; i++ {
		src.ApplySet([]byte(fmt.Sprintf("pre-%03d", i)), []byte(fmt.Sprintf("v%d", i)), uint16(i), uint64(i)<<32)
	}
	dst := newFakeStore()
	p, f := startPair(t, src, dst, fastPrimaryOpts(128), fastFollowerOpts())

	waitFor(t, "follower streaming", func() bool { return f.Stats().State == "streaming" })
	waitFor(t, "primary in sync", func() bool { return p.Stats().State == "streaming" })

	// Snapshot carried the preexisting items, bytes and aux intact.
	it, ok := dst.get("pre-050")
	if !ok || string(it.value) != "v50" || it.flags != 50 || it.aux != uint64(50)<<32 {
		t.Fatalf("snapshot item wrong: %+v ok=%v", it, ok)
	}

	// Live ops stream and WaitAcked really waits for the applied frontier.
	for i := 0; i < 50; i++ {
		src.ApplySet([]byte(fmt.Sprintf("live-%03d", i)), []byte("x"), 1, 42)
		seq := p.PublishSet([]byte(fmt.Sprintf("live-%03d", i)), []byte("x"), 1, 42)
		p.WaitAcked(seq)
		if _, ok := dst.get(fmt.Sprintf("live-%03d", i)); !ok {
			t.Fatalf("op %d acked but not applied on follower", i)
		}
	}
	seq := p.PublishDelete([]byte("live-000"))
	p.WaitAcked(seq)
	if _, ok := dst.get("live-000"); ok {
		t.Fatal("acked delete not applied on follower")
	}
	if got := f.Stats().Seq; got != seq {
		t.Fatalf("follower seq %d, want %d", got, seq)
	}
	if dst.snapshotCount() != 0 {
		// dst is the applier; snapshots are counted on src.
		t.Fatal("applier should not snapshot")
	}
	if src.snapshotCount() != 1 {
		t.Fatalf("snapshots = %d, want exactly 1", src.snapshotCount())
	}
}

func TestReconnectResume(t *testing.T) {
	src := newFakeStore()
	dst := newFakeStore()
	p, f := startPair(t, src, dst, fastPrimaryOpts(1024), fastFollowerOpts())
	waitFor(t, "streaming", func() bool { return p.Stats().State == "streaming" })

	seq := p.PublishSet([]byte("a"), []byte("1"), 0, 0)
	p.WaitAcked(seq)

	// Transient disconnect; ops published while the follower is away stay
	// inside the ring, so the reconnect must RESUME, not re-snapshot.
	p.DropFollowers()
	for i := 0; i < 100; i++ {
		p.PublishSet([]byte(fmt.Sprintf("away-%03d", i)), []byte("y"), 0, 0)
	}
	waitFor(t, "reconnect + catch up", func() bool {
		st := f.Stats()
		return st.Reconnects >= 2 && st.State == "streaming" && st.Seq >= seq+100
	})
	if _, ok := dst.get("away-099"); !ok {
		t.Fatal("resumed stream missed an op published while disconnected")
	}
	if got := src.snapshotCount(); got != 1 {
		t.Fatalf("snapshots = %d, want 1 (resume must not re-snapshot)", got)
	}
	waitFor(t, "back in sync", func() bool { return p.Stats().State == "streaming" })
}

func TestResnapshotAfterRingOverflow(t *testing.T) {
	src := newFakeStore()
	dst := newFakeStore()
	p, f := startPair(t, src, dst, fastPrimaryOpts(32), fastFollowerOpts())
	waitFor(t, "streaming", func() bool { return p.Stats().State == "streaming" })

	p.DropFollowers()
	// Blow past the 32-entry replay ring while the follower is away; also
	// keep the source of truth in step so the snapshot carries everything.
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("k-%03d", i))
		src.ApplySet(k, []byte("z"), 0, 0)
		p.PublishSet(k, []byte("z"), 0, 0)
	}
	waitFor(t, "re-snapshot + catch up", func() bool {
		return src.snapshotCount() >= 2 && f.Stats().State == "streaming" && p.Stats().State == "streaming"
	})
	if _, ok := dst.get("k-199"); !ok {
		t.Fatal("follower missing data after shed-to-snapshot")
	}
	if p.Stats().Resnapshots == 0 && src.snapshotCount() < 2 {
		t.Fatal("expected a re-snapshot after ring overflow")
	}
}

func TestWaitAckedDegradedNeverBlocks(t *testing.T) {
	src := newFakeStore()
	p := NewPrimary(src, fastPrimaryOpts(64))
	if err := p.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// No followers at all: WaitAcked returns immediately.
	start := time.Now()
	p.WaitAcked(p.PublishSet([]byte("k"), []byte("v"), 0, 0))
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("WaitAcked with no followers took %v", d)
	}
	if st := p.Stats(); st.State != "none" {
		t.Fatalf("state %q, want none", st.State)
	}
}

func TestSlowFollowerShedding(t *testing.T) {
	src := newFakeStore()
	dst := newFakeStore()
	p, _ := startPair(t, src, dst, fastPrimaryOpts(64), fastFollowerOpts())
	waitFor(t, "streaming", func() bool { return p.Stats().State == "streaming" })

	// Stop the follower's world: drop it and point nothing at the primary,
	// then hold an in-sync illusion by publishing before the primary
	// notices the disconnect. Simplest deterministic version: grab the
	// fconn state via a raw dial that handshakes and then goes silent.
	p.DropFollowers()
	waitFor(t, "follower gone", func() bool { return p.Stats().Followers == 0 || p.Stats().State != "streaming" })

	// A raw "follower" that says hello, acks the frontier once (entering
	// sync), then never acks again: WaitAcked must shed it after the ack
	// timeout instead of blocking the write path forever.
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	w := NewWriter(conn)
	r := NewReader(conn)
	if err := w.WriteRecord(&Record{Type: TypeHello}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	var rec Record
	if err := r.ReadRecord(&rec); err != nil || rec.Type != TypeWelcome {
		t.Fatalf("welcome: %+v err=%v", rec, err)
	}
	// Drain to SnapEnd, then ack the stream start -> in sync.
	for rec.Type != TypeSnapEnd {
		if err := r.ReadRecord(&rec); err != nil {
			t.Fatal(err)
		}
	}
	syncSeq := p.Stats().Seq
	w.WriteRecord(&Record{Type: TypeAck, Seq: syncSeq})
	w.Flush()
	waitFor(t, "lagging follower in sync", func() bool { return p.Stats().State == "streaming" })

	// Keep the peer alive (so dead-peer detection doesn't fire) but never
	// advance its ack past the sync point: a lagging, not dead, follower.
	ackerDone := make(chan struct{})
	defer close(ackerDone)
	go func() {
		tick := time.NewTicker(30 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-ackerDone:
				return
			case <-tick.C:
				if w.WriteRecord(&Record{Type: TypeAck, Seq: syncSeq}) != nil || w.Flush() != nil {
					return
				}
			}
		}
	}()

	seq := p.PublishSet([]byte("x"), []byte("y"), 0, 0)
	start := time.Now()
	p.WaitAcked(seq) // lagging follower: must time out and shed
	d := time.Since(start)
	if d < 200*time.Millisecond {
		t.Fatalf("WaitAcked returned in %v — did not wait for the in-sync follower at all", d)
	}
	if d > 3*time.Second {
		t.Fatalf("WaitAcked took %v — shed did not engage", d)
	}
	if st := p.Stats(); st.Sheds == 0 {
		t.Fatalf("no shed recorded: %+v", st)
	}
	// After the shed the follower no longer gates acks.
	start = time.Now()
	p.WaitAcked(p.PublishSet([]byte("x2"), []byte("y"), 0, 0))
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("post-shed WaitAcked took %v", d)
	}
}

func TestPromoteStopsFollowing(t *testing.T) {
	src := newFakeStore()
	dst := newFakeStore()
	p, f := startPair(t, src, dst, fastPrimaryOpts(64), fastFollowerOpts())
	waitFor(t, "streaming", func() bool { return p.Stats().State == "streaming" })
	seq := p.PublishSet([]byte("k"), []byte("v"), 0, 0)
	p.WaitAcked(seq)

	if err := f.Promote(); err != nil {
		t.Fatal(err)
	}
	if st := f.Stats(); st.State != "promoted" {
		t.Fatalf("state %q, want promoted", st.State)
	}
	if _, ok := dst.get("k"); !ok {
		t.Fatal("acked op missing after promote")
	}
	// The resume point must be cleared: a promoted cache never resumes.
	if run, seq := dst.ReplMeta(); run != 0 || seq != 0 {
		t.Fatalf("repl meta not cleared on promote: run=%d seq=%d", run, seq)
	}
}
