// Package repl is NV-Memcached's warm-standby replication channel: a
// logical op stream from a primary to followers over TCP. The stream is a
// replication channel, NOT a recovery dependency — the log-free design
// recovers a single node from its own NVRAM image; repl exists so a
// MACHINE loss does not lose the service (ROADMAP "Replication for
// failover", adapting the AOF-with-configurable-sync idiom to the log-free
// world).
//
// Wire format: length-prefixed CRC-framed records,
//
//	[4B payload length][4B CRC-32C of payload][payload]
//
// where every payload carries the same fixed header regardless of type —
//
//	[1B type][8B seq][2B flags][8B aux][4B klen][4B vlen][key][value]
//
// — so one encoder/decoder covers the whole protocol and the decoder is a
// single, easily fuzzed surface. The CRC is over the payload, so a
// truncated, bit-flipped, or mis-framed record fails loudly instead of
// mis-applying; the decoder never panics on hostile input (FuzzReplStream).
//
// Record types and their field use:
//
//	Hello      follower→primary  seq = last applied seq, aux = known runID
//	Welcome    primary→follower  seq = stream start, aux = runID,
//	                             flags = ModeSnapshot | ModeResume
//	SnapItem   primary→follower  flags/aux/key/value = one item, verbatim
//	SnapEnd    primary→follower  seq = item count (informational)
//	Set        primary→follower  seq + the item exactly as stored (flags,
//	                             aux carrying CAS unique and expiry)
//	Delete     primary→follower  seq + key
//	Heartbeat  primary→follower  seq = primary's current frontier
//	Ack        follower→primary  seq = follower's applied-and-durable seq
//
// Followers are byte-faithful: Set/SnapItem carry the item's aux word
// verbatim, so the follower's CAS uniques and expiry deadlines are the
// primary's, bit for bit.
package repl

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Record types. Zero is deliberately invalid.
const (
	TypeHello byte = iota + 1
	TypeWelcome
	TypeSnapItem
	TypeSnapEnd
	TypeSet
	TypeDelete
	TypeHeartbeat
	TypeAck

	typeMax = TypeAck
)

// Welcome modes (in Record.Flags).
const (
	ModeSnapshot uint16 = 0
	ModeResume   uint16 = 1
)

const (
	// payloadHeaderLen is the fixed prefix of every payload:
	// type(1) + seq(8) + flags(2) + aux(8) + klen(4) + vlen(4).
	payloadHeaderLen = 1 + 8 + 2 + 8 + 4 + 4

	// frameHeaderLen prefixes every frame: payload length + CRC-32C.
	frameHeaderLen = 4 + 4

	// MaxFrame bounds a payload we are willing to buffer. Items are capped
	// far below this (memcache.MaxValueLen ≈ 1 MiB); anything larger is a
	// corrupt or hostile length field.
	MaxFrame = 8 << 20
)

// ErrCorrupt reports a frame that failed structural validation or its CRC.
// The connection is unrecoverable past it (framing is lost).
var ErrCorrupt = errors.New("repl: corrupt frame")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one replication protocol record. Field meaning varies by Type
// (see the package comment). Key and Value returned by Reader.ReadRecord
// alias the reader's scratch buffer and are valid only until the next read.
type Record struct {
	Type  byte
	Seq   uint64
	Flags uint16
	Aux   uint64
	Key   []byte
	Value []byte
}

// Writer encodes records onto a stream. Not safe for concurrent use.
type Writer struct {
	w   *bufio.Writer
	buf []byte
}

// NewWriter wraps w in a buffering record encoder. Call Flush to push
// batched records to the underlying stream.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 64<<10)}
}

// WriteRecord appends one encoded record to the write buffer.
func (w *Writer) WriteRecord(r *Record) error {
	plen := payloadHeaderLen + len(r.Key) + len(r.Value)
	if plen > MaxFrame {
		return fmt.Errorf("repl: record too large (%d bytes)", plen)
	}
	need := frameHeaderLen + plen
	if cap(w.buf) < need {
		w.buf = make([]byte, need)
	}
	b := w.buf[:need]
	binary.BigEndian.PutUint32(b[0:], uint32(plen))
	p := b[frameHeaderLen:]
	p[0] = r.Type
	binary.BigEndian.PutUint64(p[1:], r.Seq)
	binary.BigEndian.PutUint16(p[9:], r.Flags)
	binary.BigEndian.PutUint64(p[11:], r.Aux)
	binary.BigEndian.PutUint32(p[19:], uint32(len(r.Key)))
	binary.BigEndian.PutUint32(p[23:], uint32(len(r.Value)))
	copy(p[payloadHeaderLen:], r.Key)
	copy(p[payloadHeaderLen+len(r.Key):], r.Value)
	binary.BigEndian.PutUint32(b[4:], crc32.Checksum(p, castagnoli))
	_, err := w.w.Write(b)
	return err
}

// Flush pushes buffered records to the underlying stream.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader decodes records from a stream. Not safe for concurrent use.
type Reader struct {
	r   *bufio.Reader
	buf []byte
}

// NewReader wraps r in a buffering record decoder.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 64<<10)}
}

// Buffered reports how many decoded-but-unread bytes are pending — the
// follower's ack-coalescing signal (ack only when the pipe runs dry).
func (r *Reader) Buffered() int { return r.r.Buffered() }

// ReadRecord decodes the next record into rec. rec.Key/rec.Value alias the
// reader's scratch buffer: copy them to retain past the next call. Returns
// io.EOF at a clean stream end, ErrCorrupt (wrapped) on a frame that fails
// validation, and io.ErrUnexpectedEOF on truncation mid-frame.
func (r *Reader) ReadRecord(rec *Record) error {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r.r, hdr[:1]); err != nil {
		return err // clean EOF between frames stays io.EOF
	}
	if _, err := io.ReadFull(r.r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	plen := int(binary.BigEndian.Uint32(hdr[0:]))
	wantCRC := binary.BigEndian.Uint32(hdr[4:])
	if plen < payloadHeaderLen || plen > MaxFrame {
		return fmt.Errorf("%w: payload length %d", ErrCorrupt, plen)
	}
	if cap(r.buf) < plen {
		r.buf = make([]byte, plen)
	}
	p := r.buf[:plen]
	if _, err := io.ReadFull(r.r, p); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	if crc32.Checksum(p, castagnoli) != wantCRC {
		return fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	typ := p[0]
	if typ == 0 || typ > typeMax {
		return fmt.Errorf("%w: unknown record type %d", ErrCorrupt, typ)
	}
	klen := int(binary.BigEndian.Uint32(p[19:]))
	vlen := int(binary.BigEndian.Uint32(p[23:]))
	if klen < 0 || vlen < 0 || payloadHeaderLen+klen+vlen != plen {
		return fmt.Errorf("%w: field lengths %d+%d disagree with payload %d", ErrCorrupt, klen, vlen, plen)
	}
	rec.Type = typ
	rec.Seq = binary.BigEndian.Uint64(p[1:])
	rec.Flags = binary.BigEndian.Uint16(p[9:])
	rec.Aux = binary.BigEndian.Uint64(p[11:])
	rec.Key = p[payloadHeaderLen : payloadHeaderLen+klen]
	rec.Value = p[payloadHeaderLen+klen : plen]
	return nil
}
