package repl

// FuzzReplStream drives the replication frame decoder over hostile byte
// streams with fuzz-controlled read boundaries (records split at arbitrary
// points across Read calls — the classic parser trap). Invariants:
//
//   - the decoder never panics and never hangs;
//   - every record it DOES deliver re-encodes to a byte-identical frame
//     (CRC-verified payloads cannot be silently mis-decoded, so a bit-flip
//     or truncation must surface as an error, never as a different record
//     — "never mis-apply");
//   - after the first error the stream is dead (framing is lost), which is
//     exactly how the follower treats it: drop the connection, reconnect.

import (
	"bytes"
	"io"
	"testing"
)

// chunkReader yields data in fuzz-chosen chunk sizes, forcing split reads.
type chunkReader struct {
	data  []byte
	chunk int
}

func (r *chunkReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := r.chunk
	if n <= 0 {
		n = 1
	}
	if n > len(r.data) {
		n = len(r.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

// encodeRecords is a seed helper: a valid stream of records.
func encodeRecords(recs ...Record) []byte {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := range recs {
		if err := w.WriteRecord(&recs[i]); err != nil {
			panic(err)
		}
	}
	w.Flush()
	return buf.Bytes()
}

func FuzzReplStream(f *testing.F) {
	valid := encodeRecords(
		Record{Type: TypeHello, Seq: 7, Aux: 99},
		Record{Type: TypeWelcome, Seq: 7, Aux: 99, Flags: ModeResume},
		Record{Type: TypeSnapItem, Flags: 3, Aux: 1<<40 | 1234, Key: []byte("key"), Value: []byte("value")},
		Record{Type: TypeSnapEnd, Seq: 1},
		Record{Type: TypeSet, Seq: 8, Flags: 0xFFFF, Aux: ^uint64(0), Key: []byte("k"), Value: bytes.Repeat([]byte("v"), 300)},
		Record{Type: TypeDelete, Seq: 9, Key: []byte("k")},
		Record{Type: TypeHeartbeat, Seq: 9},
		Record{Type: TypeAck, Seq: 9},
	)
	f.Add(valid, 7)
	f.Add(valid[:len(valid)-3], 1) // truncated mid-frame
	flipped := append([]byte(nil), valid...)
	flipped[9] ^= 0x40 // bit flip inside the first payload
	f.Add(flipped, 3)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}, 2) // hostile length
	f.Add([]byte{}, 1)
	f.Add(encodeRecords(Record{Type: TypeSet, Seq: 1, Key: bytes.Repeat([]byte("K"), 250)}), 13)

	f.Fuzz(func(t *testing.T, data []byte, chunk int) {
		r := NewReader(&chunkReader{data: data, chunk: chunk})
		var rec Record
		for i := 0; i < 1<<16; i++ {
			err := r.ReadRecord(&rec)
			if err != nil {
				return // errors (EOF, corruption, truncation) end the stream
			}
			// Anything delivered must survive a byte-identical round trip:
			// decode(encode(decoded)) == decoded, and the frame CRC-checked.
			re := encodeRecords(rec)
			r2 := NewReader(bytes.NewReader(re))
			var rec2 Record
			if err := r2.ReadRecord(&rec2); err != nil {
				t.Fatalf("re-decode of delivered record failed: %v (%+v)", err, rec)
			}
			if rec2.Type != rec.Type || rec2.Seq != rec.Seq || rec2.Flags != rec.Flags ||
				rec2.Aux != rec.Aux || !bytes.Equal(rec2.Key, rec.Key) || !bytes.Equal(rec2.Value, rec.Value) {
				t.Fatalf("round trip diverged: %+v vs %+v", rec, rec2)
			}
		}
	})
}
