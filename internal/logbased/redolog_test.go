package logbased

import (
	"testing"

	"repro/internal/nvram"
	"repro/internal/pmem"
)

func newLog(t *testing.T) (*nvram.Device, *nvram.Flusher, *RedoLog) {
	t.Helper()
	dev := nvram.New(nvram.Config{Size: 8 << 20})
	pool := pmem.Format(dev)
	f := dev.NewFlusher()
	lg, err := NewRedoLog(pool, f)
	if err != nil {
		t.Fatal(err)
	}
	return dev, f, lg
}

func TestApplyWritesAllPairs(t *testing.T) {
	dev, _, lg := newLog(t)
	addrs := []Addr{1 << 20, 1<<20 + 64, 1<<20 + 128}
	vals := []uint64{11, 22, 33}
	lg.Apply(addrs, vals)
	for i := range addrs {
		if dev.Load(addrs[i]) != vals[i] {
			t.Fatalf("pair %d not applied", i)
		}
	}
	if lg.Records != 1 {
		t.Fatalf("Records = %d, want 1", lg.Records)
	}
}

func TestApplyIsDurable(t *testing.T) {
	dev, _, lg := newLog(t)
	lg.ApplyOne(1<<20, 42)
	dev.Crash()
	if dev.Load(1<<20) != 42 {
		t.Fatal("applied store lost in crash: redo discipline broken")
	}
}

func TestApplyCostsTwoSyncs(t *testing.T) {
	_, f, lg := newLog(t)
	before := f.SyncWaits
	lg.ApplyOne(1<<20, 1)
	if got := f.SyncWaits - before; got != 2 {
		t.Fatalf("Apply paid %d syncs, want 2 (record + data)", got)
	}
}

func TestRingWraps(t *testing.T) {
	dev, _, lg := newLog(t)
	for i := 0; i < logSlots*2+5; i++ {
		lg.ApplyOne(Addr(1<<20+(i%64)*8), uint64(i))
	}
	if lg.Records != logSlots*2+5 {
		t.Fatalf("Records = %d", lg.Records)
	}
	_ = dev
}

func TestApplyTooManyPairsPanics(t *testing.T) {
	_, _, lg := newLog(t)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized record did not panic")
		}
	}()
	addrs := make([]Addr, maxLogPairs+1)
	vals := make([]uint64, maxLogPairs+1)
	for i := range addrs {
		addrs[i] = Addr(1<<20 + i*8)
	}
	lg.Apply(addrs, vals)
}

func TestRecordRetiredAfterApply(t *testing.T) {
	dev, _, lg := newLog(t)
	rec := lg.slot(0)
	lg.ApplyOne(1<<20, 9)
	if dev.Load(rec) != statusFree {
		t.Fatalf("record status = %#x, want free", dev.Load(rec))
	}
}
