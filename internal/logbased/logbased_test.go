package logbased

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/nvram"
)

type set interface {
	Insert(c *Ctx, key, value uint64) bool
	Delete(c *Ctx, key uint64) (uint64, bool)
	Search(c *Ctx, key uint64) (uint64, bool)
	Contains(c *Ctx, key uint64) bool
}

func newStore(t *testing.T) *Store {
	t.Helper()
	dev := nvram.New(nvram.Config{Size: 64 << 20})
	s, err := NewStore(dev, Options{MaxThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func semantics(t *testing.T, st set, c *Ctx) {
	t.Helper()
	if !st.Insert(c, 10, 100) || st.Insert(c, 10, 101) {
		t.Fatal("insert semantics broken")
	}
	if v, ok := st.Search(c, 10); !ok || v != 100 {
		t.Fatalf("Search(10) = %d,%v", v, ok)
	}
	if _, ok := st.Delete(c, 99); ok {
		t.Fatal("delete of absent key succeeded")
	}
	if v, ok := st.Delete(c, 10); !ok || v != 100 {
		t.Fatalf("Delete(10) = %d,%v", v, ok)
	}
	if st.Contains(c, 10) {
		t.Fatal("present after delete")
	}
	for k := uint64(1); k <= 100; k++ {
		st.Insert(c, k, k*2)
	}
	for k := uint64(1); k <= 100; k += 2 {
		st.Delete(c, k)
	}
	for k := uint64(1); k <= 100; k++ {
		if st.Contains(c, k) != (k%2 == 0) {
			t.Fatalf("key %d presence wrong", k)
		}
	}
}

func oracleStress(t *testing.T, s *Store, st set, workers, ops int) {
	t.Helper()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := s.MustCtx(w)
			rng := rand.New(rand.NewSource(int64(w) + 5))
			base := uint64(w)*10000 + 1
			oracle := make(map[uint64]uint64)
			for i := 0; i < ops; i++ {
				k := base + uint64(rng.Intn(128))
				switch rng.Intn(3) {
				case 0:
					ok := st.Insert(c, k, k+uint64(i))
					if _, had := oracle[k]; had == ok {
						t.Errorf("w%d Insert(%d)=%v had=%v", w, k, ok, had)
						return
					}
					if ok {
						oracle[k] = k + uint64(i)
					}
				case 1:
					v, ok := st.Delete(c, k)
					ov, had := oracle[k]
					if ok != had || (ok && v != ov) {
						t.Errorf("w%d Delete(%d)=%d,%v oracle %d,%v", w, k, v, ok, ov, had)
						return
					}
					delete(oracle, k)
				default:
					v, ok := st.Search(c, k)
					ov, had := oracle[k]
					if ok != had || (ok && v != ov) {
						t.Errorf("w%d Search(%d)=%d,%v oracle %d,%v", w, k, v, ok, ov, had)
						return
					}
				}
			}
			c.Shutdown()
		}(w)
	}
	wg.Wait()
}

func contendedStress(t *testing.T, s *Store, st set, workers, ops int) {
	t.Helper()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := s.MustCtx(w)
			rng := rand.New(rand.NewSource(int64(w) * 3))
			for i := 0; i < ops; i++ {
				k := uint64(rng.Intn(16)) + 1
				switch rng.Intn(3) {
				case 0:
					st.Insert(c, k, uint64(w))
				case 1:
					st.Delete(c, k)
				default:
					st.Search(c, k)
				}
			}
			c.Shutdown()
		}(w)
	}
	wg.Wait()
}

func TestLazyListSemantics(t *testing.T) {
	s := newStore(t)
	c := s.MustCtx(0)
	l, err := NewLazyList(c)
	if err != nil {
		t.Fatal(err)
	}
	semantics(t, l, c)
}

func TestLazyListStress(t *testing.T) {
	s := newStore(t)
	c := s.MustCtx(0)
	l, _ := NewLazyList(c)
	oracleStress(t, s, l, 4, 2000)
	s2 := newStore(t)
	c2 := s2.MustCtx(0)
	l2, _ := NewLazyList(c2)
	contendedStress(t, s2, l2, 8, 3000)
}

func TestHashSemanticsAndStress(t *testing.T) {
	s := newStore(t)
	c := s.MustCtx(0)
	h, err := NewHashTable(c, 16)
	if err != nil {
		t.Fatal(err)
	}
	semantics(t, h, c)
	s2 := newStore(t)
	c2 := s2.MustCtx(0)
	h2, _ := NewHashTable(c2, 16)
	oracleStress(t, s2, h2, 4, 2000)
	contendedStress(t, s2, h2, 8, 2000)
}

func TestSkipListSemantics(t *testing.T) {
	s := newStore(t)
	c := s.MustCtx(0)
	sl, err := NewSkipList(c)
	if err != nil {
		t.Fatal(err)
	}
	semantics(t, sl, c)
}

func TestSkipListStress(t *testing.T) {
	s := newStore(t)
	c := s.MustCtx(0)
	sl, _ := NewSkipList(c)
	oracleStress(t, s, sl, 4, 1500)
	s2 := newStore(t)
	c2 := s2.MustCtx(0)
	sl2, _ := NewSkipList(c2)
	contendedStress(t, s2, sl2, 8, 2000)
}

func TestBSTSemantics(t *testing.T) {
	s := newStore(t)
	c := s.MustCtx(0)
	bt, err := NewBST(c)
	if err != nil {
		t.Fatal(err)
	}
	semantics(t, bt, c)
}

func TestBSTStress(t *testing.T) {
	s := newStore(t)
	c := s.MustCtx(0)
	bt, _ := NewBST(c)
	oracleStress(t, s, bt, 4, 1500)
	s2 := newStore(t)
	c2 := s2.MustCtx(0)
	bt2, _ := NewBST(c2)
	contendedStress(t, s2, bt2, 8, 2000)
}

// TestRedoLogDurability: a logged update survives a crash in the persisted
// image once Apply returns.
func TestRedoLogDurability(t *testing.T) {
	dev := nvram.New(nvram.Config{Size: 8 << 20})
	s, _ := NewStore(dev, Options{MaxThreads: 1})
	c := s.MustCtx(0)
	target := Addr(4096 * 500) // scratch word inside the device
	_ = target
	l, _ := NewLazyList(c)
	l.Insert(c, 7, 70)
	dev.Crash()
	// After the crash, the inserted node must be durably linked.
	if v, ok := l.Search(c, 7); !ok || v != 70 {
		t.Fatalf("logged insert lost in crash: %d,%v", v, ok)
	}
}

// TestLogUpdateCostsAtLeastTwoSyncs pins the baseline's cost model.
func TestLogUpdateCostsAtLeastTwoSyncs(t *testing.T) {
	dev := nvram.New(nvram.Config{Size: 16 << 20})
	s, _ := NewStore(dev, Options{MaxThreads: 1})
	c := s.MustCtx(0)
	l, _ := NewLazyList(c)
	l.Insert(c, 5000, 1) // warm up
	before := c.f.SyncWaits
	for k := uint64(1); k <= 50; k++ {
		l.Insert(c, k, k)
	}
	perOp := float64(c.f.SyncWaits-before) / 50
	if perOp < 2.0 {
		t.Fatalf("log-based insert paid %.2f syncs/op, expected ≥2 (log+data)", perOp)
	}
}

// TestSkipListLogsPerLevel pins the logarithmic logging cost that drives
// Figure 5's skip-list column.
func TestSkipListLogsPerLevel(t *testing.T) {
	dev := nvram.New(nvram.Config{Size: 32 << 20})
	s, _ := NewStore(dev, Options{MaxThreads: 1})
	c := s.MustCtx(0)
	sl, _ := NewSkipList(c)
	before := c.log.Records
	for k := uint64(1); k <= 200; k++ {
		sl.Insert(c, k, k)
	}
	perOp := float64(c.log.Records-before) / 200
	// Expected tower height is 2 ⇒ ≈2 link records + 1 flag record.
	if perOp < 2.5 {
		t.Fatalf("skip list logged %.2f records/insert, expected ≈3", perOp)
	}
}

// TestEpochAllocatorModeSavesAllocSyncs compares the two memory-management
// configurations (traditional logging vs NV-epochs).
func TestEpochAllocatorModeSavesAllocSyncs(t *testing.T) {
	run := func(epochAlloc bool) uint64 {
		dev := nvram.New(nvram.Config{Size: 16 << 20})
		s, _ := NewStore(dev, Options{MaxThreads: 1, EpochAllocator: epochAlloc})
		c := s.MustCtx(0)
		l, _ := NewLazyList(c)
		dev.ResetStats()
		for k := uint64(1); k <= 200; k++ {
			l.Insert(c, k, k)
		}
		return dev.Stats().SyncWaits
	}
	logged, epochMode := run(false), run(true)
	if epochMode >= logged {
		t.Fatalf("NV-epochs mode (%d syncs) not cheaper than alloc logging (%d)", epochMode, logged)
	}
}
