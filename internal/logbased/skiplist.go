package logbased

import "repro/internal/pmem"

// SkipList is the optimistic lock-based skip list (Herlihy et al., SIROCCO
// 2007 — the "lazy skiplist") with redo logging. An insert locks a
// logarithmic number of predecessors and must durably log a logarithmic
// number of link updates plus the fullyLinked flag (its linearization
// point); a delete symmetrically logs the mark and the per-level unlinks.
// This is why the paper's log-free skip list shows the largest improvement
// (§6.2): logging cost scales with tower height, link-and-persist cost does
// not.
//
// Node layout: key, value, top, lock, flags (bit0 marked, bit1 fullyLinked),
// next[top+1].
type SkipList struct {
	s    *Store
	head Addr
	tail Addr
}

// MaxLevel matches the log-free skip list's tower bound.
const MaxLevel = 20

const (
	zKey   = 0
	zValue = 8
	zTop   = 16
	zLock  = 24
	zFlags = 32
	zNext0 = 40

	flagMarked      = 1
	flagFullyLinked = 2
)

func zNext(i int) Addr { return Addr(zNext0 + 8*i) }

func zClassFor(top int) pmem.Class {
	c, err := pmem.ClassFor(uint64(40 + 8*(top+1)))
	if err != nil {
		panic(err)
	}
	return c
}

// NewSkipList creates an empty lock-based skip list.
func NewSkipList(c *Ctx) (*SkipList, error) {
	mk := func(key uint64) (Addr, error) {
		n, err := c.ep.AllocNode(zClassFor(MaxLevel - 1))
		if err != nil {
			return 0, err
		}
		dev := c.s.dev
		dev.Store(n+zKey, key)
		dev.Store(n+zValue, 0)
		dev.Store(n+zTop, MaxLevel-1)
		dev.Store(n+zLock, 0)
		dev.Store(n+zFlags, flagFullyLinked)
		for i := 0; i < MaxLevel; i++ {
			dev.Store(n+zNext(i), 0)
		}
		c.f.CLWB(n)
		return n, nil
	}
	tail, err := mk(^uint64(0))
	if err != nil {
		return nil, err
	}
	head, err := mk(0)
	if err != nil {
		return nil, err
	}
	for i := 0; i < MaxLevel; i++ {
		c.s.dev.Store(head+zNext(i), tail)
	}
	c.f.CLWB(head)
	c.f.Fence()
	return &SkipList{s: c.s, head: head, tail: tail}, nil
}

func (sl *SkipList) randomLevel(c *Ctx) int {
	lvl := 0
	for lvl < MaxLevel-1 && c.rng.Int63()&1 == 1 {
		lvl++
	}
	return lvl
}

// find fills preds/succs and returns the highest level at which key was
// found, or -1.
func (sl *SkipList) find(key uint64, preds, succs *[MaxLevel]Addr) int {
	s := sl.s
	found := -1
	pred := sl.head
	for level := MaxLevel - 1; level >= 0; level-- {
		curr := s.dev.Load(pred + zNext(level))
		for s.dev.Load(curr+zKey) < key {
			pred = curr
			curr = s.dev.Load(pred + zNext(level))
		}
		if found == -1 && s.dev.Load(curr+zKey) == key {
			found = level
		}
		preds[level] = pred
		succs[level] = curr
	}
	return found
}

func (sl *SkipList) flags(n Addr) uint64 { return sl.s.dev.Load(n + zFlags) }

// Insert adds key→value; false if present.
func (sl *SkipList) Insert(c *Ctx, key, value uint64) bool {
	c.ep.Begin()
	defer c.ep.End()
	s := sl.s
	top := sl.randomLevel(c)
	var preds, succs [MaxLevel]Addr
	for {
		if lf := sl.find(key, &preds, &succs); lf != -1 {
			n := succs[lf]
			if sl.flags(n)&flagMarked == 0 {
				for sl.flags(n)&flagFullyLinked == 0 {
					// wait for the in-flight insert to finish
				}
				return false
			}
			continue // marked: the delete will unlink it; retry
		}
		// Lock the predecessors bottom-up and validate.
		highest := -1
		valid := true
		var prev Addr
		for level := 0; level <= top && valid; level++ {
			pred, succ := preds[level], succs[level]
			if pred != prev {
				c.lock(pred + zLock)
				highest = level
				prev = pred
			}
			valid = sl.flags(pred)&flagMarked == 0 &&
				sl.flags(succ)&flagMarked == 0 &&
				s.dev.Load(pred+zNext(level)) == succ
		}
		if !valid {
			sl.unlockPreds(c, &preds, highest)
			continue
		}
		n, err := c.ep.AllocNode(zClassFor(top))
		if err != nil {
			panic(err)
		}
		dev := s.dev
		dev.Store(n+zKey, key)
		dev.Store(n+zValue, value)
		dev.Store(n+zTop, uint64(top))
		dev.Store(n+zLock, 0)
		dev.Store(n+zFlags, 0)
		for i := 0; i <= top; i++ {
			dev.Store(n+zNext(i), succs[i])
		}
		for off := Addr(0); off < Addr(zNext0+8*(top+1)); off += 64 {
			c.f.CLWB(n + off)
		}
		// A logarithmic number of logged link updates (§6.2): one durable
		// log application per level.
		for level := 0; level <= top; level++ {
			c.log.ApplyOne(preds[level]+zNext(level), n)
		}
		// The fullyLinked flag is the linearization point; it too must be
		// durable before the insert returns.
		c.log.ApplyOne(n+zFlags, flagFullyLinked)
		sl.unlockPreds(c, &preds, highest)
		return true
	}
}

func (sl *SkipList) unlockPreds(c *Ctx, preds *[MaxLevel]Addr, highest int) {
	var prev Addr
	for level := 0; level <= highest; level++ {
		if preds[level] != prev {
			c.unlock(preds[level] + zLock)
			prev = preds[level]
		}
	}
}

// Delete removes key.
func (sl *SkipList) Delete(c *Ctx, key uint64) (uint64, bool) {
	c.ep.Begin()
	defer c.ep.End()
	s := sl.s
	var preds, succs [MaxLevel]Addr
	var victim Addr
	isMarked := false
	top := -1
	for {
		lf := sl.find(key, &preds, &succs)
		if lf != -1 {
			victim = succs[lf]
		}
		if !isMarked {
			if lf == -1 {
				return 0, false
			}
			fl := sl.flags(victim)
			if fl&flagFullyLinked == 0 || fl&flagMarked != 0 ||
				int(s.dev.Load(victim+zTop)) != lf {
				return 0, false
			}
			top = int(s.dev.Load(victim + zTop))
			c.lock(victim + zLock)
			if sl.flags(victim)&flagMarked != 0 {
				c.unlock(victim + zLock)
				return 0, false
			}
			// Durable linearization: log the mark.
			c.ep.PreRetire(victim)
			c.log.ApplyOne(victim+zFlags, flagFullyLinked|flagMarked)
			isMarked = true
		}
		// Lock predecessors and validate.
		highest := -1
		valid := true
		var prev Addr
		for level := 0; level <= top && valid; level++ {
			pred := preds[level]
			if pred != prev {
				c.lock(pred + zLock)
				highest = level
				prev = pred
			}
			valid = sl.flags(pred)&flagMarked == 0 &&
				s.dev.Load(pred+zNext(level)) == victim
		}
		if !valid {
			sl.unlockPreds(c, &preds, highest)
			continue
		}
		// A logarithmic number of logged unlinks, top-down.
		for level := top; level >= 0; level-- {
			c.log.ApplyOne(preds[level]+zNext(level), s.dev.Load(victim+zNext(level)))
		}
		value := s.dev.Load(victim + zValue)
		sl.unlockPreds(c, &preds, highest)
		c.unlock(victim + zLock)
		c.ep.Retire(victim)
		return value, true
	}
}

// Search looks key up (wait-free).
func (sl *SkipList) Search(c *Ctx, key uint64) (uint64, bool) {
	c.ep.Begin()
	defer c.ep.End()
	var preds, succs [MaxLevel]Addr
	lf := sl.find(key, &preds, &succs)
	if lf == -1 {
		return 0, false
	}
	n := succs[lf]
	if sl.flags(n)&flagFullyLinked != 0 && sl.flags(n)&flagMarked == 0 {
		return sl.s.dev.Load(n + zValue), true
	}
	return 0, false
}

// Contains reports presence.
func (sl *SkipList) Contains(c *Ctx, key uint64) bool {
	_, ok := sl.Search(c, key)
	return ok
}
