package logbased

import "repro/internal/pmem"

// LazyList is the lazy concurrent list (Heller et al.) with redo logging:
// the best-performing lock-based list per the paper's evaluation (§6.2).
// Updates lock the predecessor/current pair, validate, then apply their
// stores through the redo log (one record sync + one data sync). Searches
// are lock-free and wait-free.
//
// Node layout (64B): key, value, next, marked, lock. The mark is durable
// state (logged); the lock word is volatile.
type LazyList struct {
	s    *Store
	head Addr
	tail Addr
}

const (
	lKey    = 0
	lValue  = 8
	lNext   = 16
	lMarked = 24
	lLock   = 32

	lClass = pmem.Class(0)
)

func (s *Store) key(n Addr) uint64  { return s.dev.Load(n + lKey) }
func (s *Store) next(n Addr) Addr   { return s.dev.Load(n + lNext) }
func (s *Store) marked(n Addr) bool { return s.dev.Load(n+lMarked) != 0 }

// NewLazyList creates an empty list with head/tail sentinels.
func NewLazyList(c *Ctx) (*LazyList, error) {
	mk := func(key uint64, next Addr) (Addr, error) {
		n, err := c.ep.AllocNode(lClass)
		if err != nil {
			return 0, err
		}
		dev := c.s.dev
		dev.Store(n+lKey, key)
		dev.Store(n+lValue, 0)
		dev.Store(n+lNext, next)
		dev.Store(n+lMarked, 0)
		dev.Store(n+lLock, 0)
		c.f.CLWB(n)
		return n, nil
	}
	tail, err := mk(^uint64(0), 0)
	if err != nil {
		return nil, err
	}
	head, err := mk(0, tail)
	if err != nil {
		return nil, err
	}
	c.f.Fence()
	return &LazyList{s: c.s, head: head, tail: tail}, nil
}

// searchFromLazy walks to the (pred, curr) pair around key without locks.
func searchFromLazy(s *Store, head Addr, key uint64) (pred, curr Addr) {
	pred = head
	curr = s.next(pred)
	for s.key(curr) < key {
		pred = curr
		curr = s.next(curr)
	}
	return pred, curr
}

func (c *Ctx) lazyValidate(pred, curr Addr) bool {
	return !c.s.marked(pred) && !c.s.marked(curr) && c.s.next(pred) == curr
}

// lazyInsert is shared with the hash table's buckets.
func lazyInsert(c *Ctx, s *Store, head Addr, key, value uint64) bool {
	c.ep.Begin()
	defer c.ep.End()
	for {
		pred, curr := searchFromLazy(s, head, key)
		c.lock(pred + lLock)
		c.lock(curr + lLock)
		if !c.lazyValidate(pred, curr) {
			c.unlock(curr + lLock)
			c.unlock(pred + lLock)
			continue
		}
		if s.key(curr) == key {
			c.unlock(curr + lLock)
			c.unlock(pred + lLock)
			return false
		}
		n, err := c.ep.AllocNode(lClass)
		if err != nil {
			panic(err)
		}
		dev := s.dev
		dev.Store(n+lKey, key)
		dev.Store(n+lValue, value)
		dev.Store(n+lNext, curr)
		dev.Store(n+lMarked, 0)
		dev.Store(n+lLock, 0)
		c.f.CLWB(n) // rides on the log record's sync
		c.log.ApplyOne(pred+lNext, n)
		c.unlock(curr + lLock)
		c.unlock(pred + lLock)
		return true
	}
}

// lazyDelete is shared with the hash table's buckets.
func lazyDelete(c *Ctx, s *Store, head Addr, key uint64) (uint64, bool) {
	c.ep.Begin()
	defer c.ep.End()
	for {
		pred, curr := searchFromLazy(s, head, key)
		c.lock(pred + lLock)
		c.lock(curr + lLock)
		if !c.lazyValidate(pred, curr) {
			c.unlock(curr + lLock)
			c.unlock(pred + lLock)
			continue
		}
		if s.key(curr) != key {
			c.unlock(curr + lLock)
			c.unlock(pred + lLock)
			return 0, false
		}
		value := s.dev.Load(curr + lValue)
		c.ep.PreRetire(curr)
		// One log record covers the logical mark and the physical unlink.
		c.log.Apply(
			[]Addr{curr + lMarked, pred + lNext},
			[]uint64{1, s.next(curr)},
		)
		c.unlock(curr + lLock)
		c.unlock(pred + lLock)
		c.ep.Retire(curr)
		return value, true
	}
}

// lazySearch is the wait-free read path.
func lazySearch(c *Ctx, s *Store, head Addr, key uint64) (uint64, bool) {
	c.ep.Begin()
	defer c.ep.End()
	curr := head
	for s.key(curr) < key {
		curr = s.next(curr)
	}
	if s.key(curr) == key && !s.marked(curr) {
		return s.dev.Load(curr + lValue), true
	}
	return 0, false
}

// Insert adds key→value; false if present.
func (l *LazyList) Insert(c *Ctx, key, value uint64) bool {
	return lazyInsert(c, l.s, l.head, key, value)
}

// Delete removes key.
func (l *LazyList) Delete(c *Ctx, key uint64) (uint64, bool) {
	return lazyDelete(c, l.s, l.head, key)
}

// Search looks key up.
func (l *LazyList) Search(c *Ctx, key uint64) (uint64, bool) {
	return lazySearch(c, l.s, l.head, key)
}

// Contains reports presence.
func (l *LazyList) Contains(c *Ctx, key uint64) bool {
	_, ok := l.Search(c, key)
	return ok
}

// Len counts live nodes (quiescent use).
func (l *LazyList) Len(c *Ctx) int {
	n := 0
	for curr := l.s.next(l.head); curr != l.tail; curr = l.s.next(curr) {
		if !l.s.marked(curr) {
			n++
		}
	}
	return n
}

// HashTable is a lock-based hash table: one lazy list per bucket (§6.2).
type HashTable struct {
	s       *Store
	buckets Addr
	mask    uint64
	tail    Addr
}

// NewHashTable creates a table with nbuckets (rounded to a power of two).
func NewHashTable(c *Ctx, nbuckets int) (*HashTable, error) {
	n := 1
	for n < nbuckets {
		n <<= 1
	}
	tail, err := c.ep.AllocNode(lClass)
	if err != nil {
		return nil, err
	}
	dev := c.s.dev
	dev.Store(tail+lKey, ^uint64(0))
	c.f.CLWB(tail)
	region, err := c.s.pool.AllocRegion(c.f, uint64(n)*64)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		h := region + Addr(i)*64
		dev.Store(h+lKey, 0)
		dev.Store(h+lNext, tail)
		dev.Store(h+lMarked, 0)
		dev.Store(h+lLock, 0)
		c.f.CLWB(h)
		if i%64 == 63 {
			c.f.Fence()
		}
	}
	c.f.Fence()
	return &HashTable{s: c.s, buckets: region, mask: uint64(n - 1), tail: tail}, nil
}

func mix64(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xBF58476D1CE4E5B9
	k ^= k >> 27
	k *= 0x94D049BB133111EB
	k ^= k >> 31
	return k
}

func (h *HashTable) bucket(key uint64) Addr {
	return h.buckets + Addr(mix64(key)&h.mask)*64
}

// Insert adds key→value; false if present.
func (h *HashTable) Insert(c *Ctx, key, value uint64) bool {
	return lazyInsert(c, h.s, h.bucket(key), key, value)
}

// Delete removes key.
func (h *HashTable) Delete(c *Ctx, key uint64) (uint64, bool) {
	return lazyDelete(c, h.s, h.bucket(key), key)
}

// Search looks key up.
func (h *HashTable) Search(c *Ctx, key uint64) (uint64, bool) {
	return lazySearch(c, h.s, h.bucket(key), key)
}

// Contains reports presence.
func (h *HashTable) Contains(c *Ctx, key uint64) bool {
	_, ok := h.Search(c, key)
	return ok
}
