// Package logbased implements the paper's comparison baselines (§6.2):
// lock-based concurrent data structures made durable with hand-placed redo
// logging — "the best-performing lock-based algorithms, with logging applied
// manually, taking advantage of knowledge of the algorithms so as to
// minimize the number of syncs while maintaining correctness":
//
//   - lazy linked list (Heller et al., OPODIS 2005)
//   - hash table with one lazy list per bucket
//   - lock-based optimistic skip list (Herlihy et al., SIROCCO 2007)
//   - external BST with per-node locks (bst-tk, David et al., ASPLOS 2015;
//     our locks are CAS spinlocks rather than ticket locks — equivalent for
//     sync accounting, which is what the comparison measures)
//
// A durable update follows the redo-log discipline: write a log record
// describing the intended stores and sync it; apply the stores and sync
// them; retire the record (write-back deferred to the next record's sync).
// That is two syncs per update, plus the traditional durable alloc/free
// intent logging (one more sync per allocation/unlink, §5.1) unless the
// structure is configured to share NV-epochs with the log-free side (the
// "identical memory management" configuration of Figure 8).
//
// Reads traverse lock-free (the lazy algorithms' wait-free contains) under
// epoch protection.
package logbased

import (
	"math/rand"

	"repro/internal/epoch"
	"repro/internal/nvram"
	"repro/internal/pmem"
)

// Addr is a byte offset into the device.
type Addr = nvram.Addr

// Options configures a baseline store.
type Options struct {
	MaxThreads int
	// EpochAllocator selects NV-epochs for memory management instead of the
	// traditional durable alloc/free logging. Figure 8 uses this so that
	// LP, LC and log-based differ only in how links are persisted.
	EpochAllocator bool
	// AreaShift / GenSize forwarded to the epoch manager.
	AreaShift uint
	GenSize   int
}

// Store bundles the baseline substrates on one device.
type Store struct {
	dev  *nvram.Device
	pool *pmem.Pool
	mgr  *epoch.Manager
	opts Options
}

// NewStore formats dev for baseline structures.
func NewStore(dev *nvram.Device, opts Options) (*Store, error) {
	if opts.MaxThreads <= 0 {
		opts.MaxThreads = 1
	}
	pool := pmem.Format(dev)
	f := dev.NewFlusher()
	mgr, err := epoch.NewManager(pool, f, epoch.Config{
		MaxThreads:   opts.MaxThreads,
		AreaShift:    opts.AreaShift,
		GenSize:      opts.GenSize,
		AllocLogging: !opts.EpochAllocator,
	})
	if err != nil {
		return nil, err
	}
	return &Store{dev: dev, pool: pool, mgr: mgr, opts: opts}, nil
}

// Device returns the underlying device.
func (s *Store) Device() *nvram.Device { return s.dev }

// Ctx is a per-thread context: flusher, allocator, epoch context, redo log.
type Ctx struct {
	s     *Store
	f     *nvram.Flusher
	alloc *pmem.Ctx
	ep    *epoch.Ctx
	log   *RedoLog
	rng   *rand.Rand
}

// NewCtx creates the context for thread tid.
func (s *Store) NewCtx(tid int) (*Ctx, error) {
	f := s.dev.NewFlusher()
	alloc := s.pool.NewCtx(f)
	log, err := NewRedoLog(s.pool, f)
	if err != nil {
		return nil, err
	}
	return &Ctx{
		s:     s,
		f:     f,
		alloc: alloc,
		ep:    s.mgr.NewCtx(tid, alloc, f),
		log:   log,
		rng:   rand.New(rand.NewSource(int64(tid)*77 + 3)),
	}, nil
}

// MustCtx is NewCtx or panic.
func (s *Store) MustCtx(tid int) *Ctx {
	c, err := s.NewCtx(tid)
	if err != nil {
		panic(err)
	}
	return c
}

// Flusher exposes the persistence context (sync statistics).
func (c *Ctx) Flusher() *nvram.Flusher { return c.f }

// Shutdown drains retired nodes.
func (c *Ctx) Shutdown() {
	c.ep.FlushAll()
	c.alloc.Release()
	c.f.Fence()
}

// lock/unlock implement a volatile spinlock in a node word. Lock words are
// never written back: they are meaningless after a crash (all locks are
// implicitly released by a restart, and the redo log makes the protected
// updates atomic).
func (c *Ctx) lock(a Addr) {
	for !c.s.dev.CAS(a, 0, 1) {
	}
}

func (c *Ctx) tryLock(a Addr) bool { return c.s.dev.CAS(a, 0, 1) }

func (c *Ctx) unlock(a Addr) { c.s.dev.Store(a, 0) }
