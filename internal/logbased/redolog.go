package logbased

import (
	"repro/internal/nvram"
	"repro/internal/pmem"
)

// RedoLog is a per-thread durable redo log. A committed update is recorded
// as (status, count, addr/value pairs); the record is synced before any of
// the stores are applied, so a crash mid-update can be completed by
// replaying the record (classical redo logging). The paper's point is not
// this mechanism's recovery path but its run-time cost: every update pays
// one sync for the record and one for the data — the cost the log-free
// structures eliminate.
type RedoLog struct {
	dev    *nvram.Device
	f      *nvram.Flusher
	region Addr
	head   int

	// Records written (diagnostic).
	Records uint64
}

const (
	logSlots    = 256 // records per thread (ring)
	logSlotSize = 8 * (2 + 2*maxLogPairs)
	maxLogPairs = 24 // enough for a full skip-list tower update

	statusValid = 0xA11CE
	statusFree  = 0
)

// NewRedoLog carves a durable region for one thread's log.
func NewRedoLog(pool *pmem.Pool, f *nvram.Flusher) (*RedoLog, error) {
	region, err := pool.AllocRegion(f, logSlots*logSlotSize)
	if err != nil {
		return nil, err
	}
	return &RedoLog{dev: pool.Device(), f: f, region: region}, nil
}

func (lg *RedoLog) slot(i int) Addr { return lg.region + Addr(i)*logSlotSize }

// Apply performs a durable multi-word update: record → sync → stores → sync
// → retire record. addrs[i] receives vals[i].
func (lg *RedoLog) Apply(addrs []Addr, vals []uint64) {
	if len(addrs) > maxLogPairs {
		panic("logbased: update exceeds log record capacity")
	}
	rec := lg.slot(lg.head)
	lg.head = (lg.head + 1) % logSlots

	// 1. Write and sync the record (the "logging" cost).
	lg.dev.Store(rec+8, uint64(len(addrs)))
	for i := range addrs {
		lg.dev.Store(rec+Addr(16+16*i), addrs[i])
		lg.dev.Store(rec+Addr(24+16*i), vals[i])
	}
	lg.dev.Store(rec, statusValid)
	for off := Addr(0); off < Addr(16+16*len(addrs)); off += nvram.LineSize {
		lg.f.CLWB(rec + off)
	}
	lg.f.Fence()

	// 2. Apply and sync the stores.
	for i := range addrs {
		lg.dev.Store(addrs[i], vals[i])
		lg.f.CLWB(addrs[i])
	}
	lg.f.Fence()

	// 3. Retire the record. The write-back can ride on the next record's
	// sync (a replay of an already-applied record is idempotent).
	lg.dev.Store(rec, statusFree)
	lg.f.CLWB(rec)

	lg.Records++
}

// ApplyOne is Apply for a single word.
func (lg *RedoLog) ApplyOne(a Addr, v uint64) {
	lg.Apply([]Addr{a}, []uint64{v})
}
