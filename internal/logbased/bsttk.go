package logbased

import "repro/internal/pmem"

// BST is a lock-based external binary search tree in the style of bst-tk
// (David et al., ASPLOS 2015) with redo logging: updates lock only the
// node(s) whose edges they modify — the parent for an insert, the
// grandparent and parent for a delete — validate, and apply the change
// through the redo log. Searches are lock-free.
//
// bst-tk uses ticket locks embedded in the nodes; our spinlocks occupy the
// same word and cost the same number of syncs (zero), which is what the
// comparison measures.
//
// Node layout: key, value, left, right, lock, removed. Same sentinel
// scaffold as the log-free BST: R(∞₂){S(∞₁){leaf ∞₀, leaf ∞₁}, leaf ∞₂}.
type BST struct {
	s  *Store
	r  Addr
	s1 Addr
}

const (
	tKey     = 0
	tValue   = 8
	tLeft    = 16
	tRight   = 24
	tLock    = 32
	tRemoved = 40

	tClass = pmem.Class(0)

	tInf0 = ^uint64(0) - 2
	tInf1 = ^uint64(0) - 1
	tInf2 = ^uint64(0)
)

func tDir(key, nodeKey uint64) Addr {
	if key < nodeKey {
		return tLeft
	}
	return tRight
}

// NewBST creates an empty lock-based external BST.
func NewBST(c *Ctx) (*BST, error) {
	dev := c.s.dev
	mk := func(key uint64, left, right Addr) (Addr, error) {
		n, err := c.ep.AllocNode(tClass)
		if err != nil {
			return 0, err
		}
		dev.Store(n+tKey, key)
		dev.Store(n+tValue, 0)
		dev.Store(n+tLeft, left)
		dev.Store(n+tRight, right)
		dev.Store(n+tLock, 0)
		dev.Store(n+tRemoved, 0)
		c.f.CLWB(n)
		return n, nil
	}
	l0, err := mk(tInf0, 0, 0)
	if err != nil {
		return nil, err
	}
	l1, err := mk(tInf1, 0, 0)
	if err != nil {
		return nil, err
	}
	l2, err := mk(tInf2, 0, 0)
	if err != nil {
		return nil, err
	}
	s1, err := mk(tInf1, l0, l1)
	if err != nil {
		return nil, err
	}
	r, err := mk(tInf2, s1, l2)
	if err != nil {
		return nil, err
	}
	c.f.Fence()
	return &BST{s: c.s, r: r, s1: s1}, nil
}

// traverse descends to the leaf for key, returning grandparent and parent.
func (t *BST) traverse(key uint64) (gp, p, leaf Addr) {
	dev := t.s.dev
	gp, p = 0, t.r
	leaf = dev.Load(p + tDir(key, dev.Load(p+tKey)))
	for dev.Load(leaf+tLeft) != 0 {
		gp, p = p, leaf
		leaf = dev.Load(leaf + tDir(key, dev.Load(leaf+tKey)))
	}
	return gp, p, leaf
}

func (t *BST) removed(n Addr) bool { return t.s.dev.Load(n+tRemoved) != 0 }

// Insert adds key→value; false if present.
func (t *BST) Insert(c *Ctx, key, value uint64) bool {
	c.ep.Begin()
	defer c.ep.End()
	dev := t.s.dev
	for {
		_, p, leaf := t.traverse(key)
		leafKey := dev.Load(leaf + tKey)
		if leafKey == key {
			return false
		}
		edge := p + tDir(key, dev.Load(p+tKey))
		c.lock(p + tLock)
		if t.removed(p) || dev.Load(edge) != leaf {
			c.unlock(p + tLock)
			continue
		}
		nl, err := c.ep.AllocNode(tClass)
		if err != nil {
			panic(err)
		}
		dev.Store(nl+tKey, key)
		dev.Store(nl+tValue, value)
		dev.Store(nl+tLeft, 0)
		dev.Store(nl+tRight, 0)
		dev.Store(nl+tLock, 0)
		dev.Store(nl+tRemoved, 0)
		c.f.CLWB(nl)
		ni, err := c.ep.AllocNode(tClass)
		if err != nil {
			panic(err)
		}
		if key < leafKey {
			dev.Store(ni+tKey, leafKey)
			dev.Store(ni+tLeft, nl)
			dev.Store(ni+tRight, leaf)
		} else {
			dev.Store(ni+tKey, key)
			dev.Store(ni+tLeft, leaf)
			dev.Store(ni+tRight, nl)
		}
		dev.Store(ni+tValue, 0)
		dev.Store(ni+tLock, 0)
		dev.Store(ni+tRemoved, 0)
		c.f.CLWB(ni)
		c.log.ApplyOne(edge, ni) // record sync covers the new nodes' lines
		c.unlock(p + tLock)
		return true
	}
}

// Delete removes key.
func (t *BST) Delete(c *Ctx, key uint64) (uint64, bool) {
	c.ep.Begin()
	defer c.ep.End()
	dev := t.s.dev
	for {
		gp, p, leaf := t.traverse(key)
		if dev.Load(leaf+tKey) != key {
			return 0, false
		}
		if gp == 0 {
			return 0, false // the sentinel scaffold never holds user keys
		}
		gpEdge := gp + tDir(key, dev.Load(gp+tKey))
		pEdge := p + tDir(key, dev.Load(p+tKey))
		c.lock(gp + tLock)
		c.lock(p + tLock)
		if t.removed(gp) || t.removed(p) ||
			dev.Load(gpEdge) != p || dev.Load(pEdge) != leaf {
			c.unlock(p + tLock)
			c.unlock(gp + tLock)
			continue
		}
		sibEdge := p + tLeft
		if sibEdge == pEdge {
			sibEdge = p + tRight
		}
		value := dev.Load(leaf + tValue)
		c.ep.PreRetire(leaf)
		c.ep.PreRetire(p)
		// One record: splice the sibling up and mark the parent removed.
		c.log.Apply(
			[]Addr{gpEdge, p + tRemoved},
			[]uint64{dev.Load(sibEdge), 1},
		)
		c.unlock(p + tLock)
		c.unlock(gp + tLock)
		c.ep.Retire(leaf)
		c.ep.Retire(p)
		return value, true
	}
}

// Search looks key up (lock-free).
func (t *BST) Search(c *Ctx, key uint64) (uint64, bool) {
	c.ep.Begin()
	defer c.ep.End()
	_, _, leaf := t.traverse(key)
	if t.s.dev.Load(leaf+tKey) == key {
		return t.s.dev.Load(leaf + tValue), true
	}
	return 0, false
}

// Contains reports presence.
func (t *BST) Contains(c *Ctx, key uint64) bool {
	_, ok := t.Search(c, key)
	return ok
}
