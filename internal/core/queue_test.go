package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/nvram"
)

func newTestQueue(t *testing.T, s *Store, c *Ctx) *Queue {
	t.Helper()
	q, err := NewQueue(c)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestQueueFIFO(t *testing.T) {
	for _, lc := range []bool{false, true} {
		name := map[bool]string{false: "LP", true: "LC"}[lc]
		t.Run(name, func(t *testing.T) {
			s := newTestStore(t, Options{LinkCache: lc})
			c := s.MustCtx(0)
			q := newTestQueue(t, s, c)
			if _, ok := q.Dequeue(c); ok {
				t.Fatal("dequeue from empty queue succeeded")
			}
			for v := uint64(1); v <= 100; v++ {
				q.Enqueue(c, v)
			}
			if got := q.Len(c); got != 100 {
				t.Fatalf("Len = %d, want 100", got)
			}
			if v, ok := q.Peek(c); !ok || v != 1 {
				t.Fatalf("Peek = %d,%v", v, ok)
			}
			for v := uint64(1); v <= 100; v++ {
				got, ok := q.Dequeue(c)
				if !ok || got != v {
					t.Fatalf("Dequeue = %d,%v want %d", got, ok, v)
				}
			}
			if _, ok := q.Dequeue(c); ok {
				t.Fatal("queue not empty after draining")
			}
		})
	}
}

func TestQueueInterleaved(t *testing.T) {
	s := newTestStore(t, Options{})
	c := s.MustCtx(0)
	q := newTestQueue(t, s, c)
	rng := rand.New(rand.NewSource(5))
	var model []uint64
	next := uint64(1)
	for i := 0; i < 5000; i++ {
		if rng.Intn(2) == 0 || len(model) == 0 {
			q.Enqueue(c, next)
			model = append(model, next)
			next++
		} else {
			v, ok := q.Dequeue(c)
			if !ok || v != model[0] {
				t.Fatalf("Dequeue = %d,%v want %d", v, ok, model[0])
			}
			model = model[1:]
		}
	}
	if q.Len(c) != len(model) {
		t.Fatalf("Len = %d, model %d", q.Len(c), len(model))
	}
}

// TestQueueConcurrentMPMC: producers tag values with their id and a
// per-producer sequence; consumers verify per-producer order (the MPMC FIFO
// invariant) and that nothing is lost or duplicated.
func TestQueueConcurrentMPMC(t *testing.T) {
	for _, lc := range []bool{false, true} {
		name := map[bool]string{false: "LP", true: "LC"}[lc]
		t.Run(name, func(t *testing.T) {
			s := newTestStore(t, Options{LinkCache: lc})
			c0 := s.MustCtx(0)
			q := newTestQueue(t, s, c0)
			const producers, consumers, perProducer = 4, 4, 2000
			var wg sync.WaitGroup
			results := make([][]uint64, consumers)
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					c := s.CtxFor(p)
					for i := 0; i < perProducer; i++ {
						q.Enqueue(c, uint64(p)<<32|uint64(i))
					}
				}(p)
			}
			var consumed sync.WaitGroup
			stop := make(chan struct{})
			for k := 0; k < consumers; k++ {
				consumed.Add(1)
				go func(k int) {
					defer consumed.Done()
					c := s.CtxFor(producers + k)
					for {
						v, ok := q.Dequeue(c)
						if ok {
							results[k] = append(results[k], v)
							continue
						}
						select {
						case <-stop:
							for { // drain stragglers
								v, ok := q.Dequeue(c)
								if !ok {
									return
								}
								results[k] = append(results[k], v)
							}
						default:
						}
					}
				}(k)
			}
			wg.Wait()
			close(stop)
			consumed.Wait()

			seen := make(map[uint64]bool)
			lastSeq := make([]int, producers)
			for p := range lastSeq {
				lastSeq[p] = -1
			}
			total := 0
			for k := range results {
				perProd := make([]int, producers)
				for p := range perProd {
					perProd[p] = -1
				}
				for _, v := range results[k] {
					if seen[v] {
						t.Fatalf("value %#x consumed twice", v)
					}
					seen[v] = true
					p, i := int(v>>32), int(v&0xFFFFFFFF)
					if i <= perProd[p] {
						t.Fatalf("consumer %d saw producer %d out of order: %d after %d",
							k, p, i, perProd[p])
					}
					perProd[p] = i
					total++
				}
			}
			if total != producers*perProducer {
				t.Fatalf("consumed %d values, want %d", total, producers*perProducer)
			}
		})
	}
}

func TestQueueDurableAcrossCrash(t *testing.T) {
	dev := nvram.New(nvram.Config{Size: 32 << 20})
	s, _ := NewStore(dev, Options{MaxThreads: 2})
	c := s.MustCtx(0)
	q := newTestQueue(t, s, c)
	for v := uint64(1); v <= 300; v++ {
		q.Enqueue(c, v)
	}
	for v := uint64(1); v <= 120; v++ {
		q.Dequeue(c)
	}
	c.Shutdown()
	dev.Crash()

	s2, err := AttachStore(dev)
	if err != nil {
		t.Fatal(err)
	}
	q2 := AttachQueue(s2, q.Descriptor())
	stats := RecoverQueue(s2, q2, 2)
	_ = stats
	c2 := s2.MustCtx(0)
	if got := q2.Len(c2); got != 180 {
		t.Fatalf("recovered Len = %d, want 180", got)
	}
	for v := uint64(121); v <= 300; v++ {
		got, ok := q2.Dequeue(c2)
		if !ok || got != v {
			t.Fatalf("recovered Dequeue = %d,%v want %d", got, ok, v)
		}
	}
}

func TestQueueRecoveryFreesOrphan(t *testing.T) {
	dev := nvram.New(nvram.Config{Size: 16 << 20})
	s, _ := NewStore(dev, Options{MaxThreads: 2})
	c := s.MustCtx(0)
	q := newTestQueue(t, s, c)
	q.Enqueue(c, 7)
	// Orphan a would-be queue node: allocated and durable, never linked.
	c.ep.Begin()
	orphan, _ := c.ep.AllocNode(listClass)
	dev.Store(orphan+nKey, queueNodeTag)
	c.f.CLWB(orphan)
	c.f.Fence()
	c.ep.End()
	dev.Crash()

	s2, _ := AttachStore(dev)
	q2 := AttachQueue(s2, q.Descriptor())
	stats := RecoverQueue(s2, q2, 1)
	if stats.Leaked == 0 {
		t.Fatal("orphan queue node not freed")
	}
	c2 := s2.MustCtx(0)
	if v, ok := q2.Dequeue(c2); !ok || v != 7 {
		t.Fatalf("live entry damaged: %d,%v", v, ok)
	}
}

func TestQueueCrashMidStream(t *testing.T) {
	// Crash-after-every-op durability, LP mode (cf. the list variant).
	dev := nvram.New(nvram.Config{Size: 32 << 20})
	s, _ := NewStore(dev, Options{MaxThreads: 1})
	c := s.MustCtx(0)
	q := newTestQueue(t, s, c)
	var model []uint64
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 150; i++ {
		if rng.Intn(2) == 0 || len(model) == 0 {
			v := uint64(i) + 1
			q.Enqueue(c, v)
			model = append(model, v)
		} else {
			v, ok := q.Dequeue(c)
			if !ok || v != model[0] {
				t.Fatalf("Dequeue = %d,%v want %d", v, ok, model[0])
			}
			model = model[1:]
		}
		if i%25 != 0 {
			continue
		}
		img := crashClone(t, dev)
		s2, err := AttachStore(img)
		if err != nil {
			t.Fatal(err)
		}
		q2 := AttachQueue(s2, q.Descriptor())
		RecoverQueue(s2, q2, 1)
		c2 := s2.MustCtx(0)
		for _, want := range model {
			got, ok := q2.Dequeue(c2)
			if !ok || got != want {
				t.Fatalf("op %d: crashed queue Dequeue = %d,%v want %d", i, got, ok, want)
			}
		}
		if _, ok := q2.Dequeue(c2); ok {
			t.Fatalf("op %d: crashed queue has extra elements", i)
		}
	}
}
