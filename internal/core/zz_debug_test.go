package core

import (
	"os"
	"testing"

	"repro/internal/epoch"
)

func TestMain(m *testing.M) {
	epoch.EnableRetireDebug()
	os.Exit(m.Run())
}
