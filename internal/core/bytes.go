package core

import (
	"encoding/binary"
	"errors"
	"math/bits"
	"sync"

	"repro/internal/nvram"
	"repro/internal/pmem"
)

// This file implements the durable bytes layer: a BytesMap stores arbitrary
// []byte keys and values in NVRAM extents anchored from the uint64 core
// entries of a durable hash table. The index key is a 64-bit hash of the
// byte key folded into [MinKey, MaxKey]; the index value is the head of a
// durable collision chain of entry extents. Every lookup verifies the full
// key bytes inside the entry, so distinct byte keys can never alias, no
// matter how the hash behaves.
//
// Entry extents are allocated from slab classes ≥ 1, keeping class 0 to the
// index nodes — the paper's "areas hold one type of data" discipline, which
// recovery relies on to tell index nodes from entries.
//
// Entry layout (allocated at class ≥ 1):
//
//	[0]  keyLen(16) | valLen(32) | meta(16)
//	[8]  64-bit index key (the folded hash)
//	[16] aux: one caller-owned durable word (expiry, version, …)
//	[24] next entry with the same index key (collision chain)
//	[32] key bytes, then value bytes
const (
	beHeader = 0
	beHash   = 8
	beAux    = 16
	beNext   = 24
	beData   = 32

	// MaxBytesKeyLen bounds key length (memcached-style limit, far below
	// the 16-bit field).
	MaxBytesKeyLen = 512
	// BytesEntryOverhead is the per-entry header size: key and value bytes
	// start at this offset.
	BytesEntryOverhead = beData
	// MaxBytesEntrySize is the largest slab class; an entry (header + key +
	// value) must fit in one extent.
	MaxBytesEntrySize = 2048
)

// Errors returned by the bytes layer.
var (
	// ErrTooLarge reports an entry (header + key + value) exceeding the
	// largest slab class.
	ErrTooLarge = errors.New("core: entry exceeds the largest slab class")
	// ErrBadKey reports an empty or oversized byte key.
	ErrBadKey = errors.New("core: bad byte-key length")
)

// DefaultBytesHash maps a byte key to the index key space: an FNV-style
// multiply-xor over 8-byte chunks (word-at-a-time rather than byte-at-a-
// time — the hash runs on every operation and its quality only has to
// spread keys, since full keys are always verified and same-hash keys
// chain durably), length-mixed, folded into [MinKey, MaxKey].
func DefaultBytesHash(key []byte) uint64 {
	h := uint64(14695981039346656037)
	i := 0
	for ; i+8 <= len(key); i += 8 {
		h = (h ^ binary.LittleEndian.Uint64(key[i:])) * 1099511628211
	}
	if i < len(key) {
		var w uint64
		for j := 0; i+j < len(key); j++ {
			w |= uint64(key[i+j]) << (8 * j)
		}
		h = (h ^ w) * 1099511628211
	}
	// Mix in the length (distinguishes trailing-zero bytes from absence)
	// and finalize so low-entropy tails still spread.
	h = (h ^ uint64(len(key))) * 1099511628211
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	if h < MinKey || h > MaxKey {
		h = h%(MaxKey-MinKey+1) + MinKey
	}
	return h
}

// bytesHash is the index-key derivation, a variable so tests can inject
// colliding hashes and exercise the chain machinery deterministically.
var bytesHash = DefaultBytesHash

// SetBytesHashForTesting overrides the index-key derivation (nil restores
// the default). Entries persist the index key they were stored under, so the
// override must stay in place across any crash/recover cycle of the test.
func SetBytesHashForTesting(f func([]byte) uint64) {
	if f == nil {
		f = DefaultBytesHash
	}
	bytesHash = f
}

// BytesMap is a durable lock-free-read hash map from byte keys to byte
// values. Reads are lock-free (epoch-protected); the lifecycle of the entry
// extents (set/delete) is serialized per index key by a volatile stripe
// lock, exactly as memcached's striped item locks do. The stripes live on
// the Store, not the BytesMap value, so independently attached handles to
// the same durable map (open-by-name twice, re-attach) stay mutually
// serialized.
type BytesMap struct {
	s   *Store
	idx *HashTable
}

// NewBytesMap creates a durable byte-key map with nbuckets index buckets
// (rounded up to a power of two). Persist Buckets/NumBuckets/Tail in root
// slots (or a directory) to re-attach later.
func NewBytesMap(c *Ctx, nbuckets int) (*BytesMap, error) {
	idx, err := NewHashTable(c, nbuckets)
	if err != nil {
		return nil, err
	}
	return &BytesMap{s: c.s, idx: idx}, nil
}

// AttachBytesMap reopens a map from its durable descriptor values.
func AttachBytesMap(s *Store, buckets Addr, nbuckets int, tail Addr) *BytesMap {
	return &BytesMap{s: s, idx: AttachHashTable(s, buckets, nbuckets, tail)}
}

// Buckets returns the index bucket-region address (persist it).
func (b *BytesMap) Buckets() Addr { return b.idx.Buckets() }

// NumBuckets returns the index bucket count (persist it).
func (b *BytesMap) NumBuckets() int { return b.idx.NumBuckets() }

// Tail returns the index tail sentinel address (persist it).
func (b *BytesMap) Tail() Addr { return b.idx.Tail() }

func (b *BytesMap) lock(hash uint64) *sync.Mutex {
	return &b.s.bytesLocks[hash%uint64(len(b.s.bytesLocks))]
}

// storeBytesPair writes the concatenation p||q into the device word by word
// without materializing the concatenation (the entry write path stores
// key||value on every Set; this keeps it allocation-free). Full words that
// fall entirely inside p or q are composed with one unaligned 8-byte read
// instead of a byte loop. Writes use StorePrivate: entry extents are
// unpublished while their contents are written (the publishing CAS is the
// release point).
func storeBytesPair(dev *nvram.Device, a Addr, p, q []byte) {
	total := len(p) + len(q)
	i := 0
	for ; i+8 <= len(p); i += 8 { // words entirely within p
		dev.StorePrivate(a+Addr(i), binary.LittleEndian.Uint64(p[i:]))
	}
	if i < total && i < len(p) { // the word straddling the p/q boundary
		var w uint64
		for j := 0; j < 8 && i+j < total; j++ {
			k := i + j
			if k < len(p) {
				w |= uint64(p[k]) << (8 * j)
			} else {
				w |= uint64(q[k-len(p)]) << (8 * j)
			}
		}
		dev.StorePrivate(a+Addr(i), w)
		i += 8
	}
	for ; i+8 <= total; i += 8 { // words entirely within q
		dev.StorePrivate(a+Addr(i), binary.LittleEndian.Uint64(q[i-len(p):]))
	}
	if i < total { // final partial word
		var w uint64
		for j := 0; i+j < total; j++ {
			w |= uint64(q[i+j-len(p)]) << (8 * j)
		}
		dev.StorePrivate(a+Addr(i), w)
	}
}

// loadBytes reads n bytes from the device into a fresh slice.
func loadBytes(dev *nvram.Device, a Addr, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; i += 8 {
		w := dev.Load(a + Addr(i))
		for j := 0; j < 8 && i+j < n; j++ {
			out[i+j] = byte(w >> (8 * j))
		}
	}
	return out
}

// Entry field readers (addresses come from Find or recovery sweeps). They
// are store-level functions because two index structures share the entry
// layout: the hash-indexed BytesMap here and the skiplist-indexed
// OrderedBytesMap (bytesindex.go).

func bytesEntryKeyLen(s *Store, e Addr) int { return int(s.dev.Load(e+beHeader) & 0xFFFF) }

// bytesEntryKeyEqual reports whether the entry's stored key equals key,
// comparing a device word at a time without copying the stored key out.
// This is the chain-walk hot path: materializing a []byte per probe costs
// an allocation per comparison, which dominates lookup time.
func bytesEntryKeyEqual(s *Store, e Addr, key []byte) bool {
	dev := s.dev
	if int(dev.Load(e+beHeader)&0xFFFF) != len(key) {
		return false
	}
	for i := 0; i < len(key); i += 8 {
		w := dev.Load(e + beData + Addr(i))
		rem := len(key) - i
		if rem >= 8 {
			if w != binary.LittleEndian.Uint64(key[i:]) {
				return false
			}
			continue
		}
		// Final partial word: the bytes above rem belong to the value.
		if rem >= 4 {
			if uint32(w) != binary.LittleEndian.Uint32(key[i:]) {
				return false
			}
			w >>= 32
			i += 4
			rem -= 4
		}
		for j := 0; j < rem; j++ {
			if byte(w>>(8*j)) != key[i+j] {
				return false
			}
		}
		break
	}
	return true
}

// bytesEntryKeyCompare orders the entry's stored key against key as
// bytes.Compare would, again without copying: stored words are packed
// little-endian (byte i at bit 8i), so byte-reversing a word yields its
// big-endian value and word comparison becomes lexicographic comparison.
func bytesEntryKeyCompare(s *Store, e Addr, key []byte) int {
	dev := s.dev
	klen := int(dev.Load(e+beHeader) & 0xFFFF)
	n := min(klen, len(key))
	for i := 0; i < n; i += 8 {
		w := dev.Load(e + beData + Addr(i))
		rem := n - i
		if rem >= 8 {
			a := bits.ReverseBytes64(w)
			b := binary.BigEndian.Uint64(key[i:])
			if a != b {
				if a < b {
					return -1
				}
				return 1
			}
			continue
		}
		if rem >= 4 { // 4-byte chunk of the final partial word
			a := bits.ReverseBytes32(uint32(w))
			b := binary.BigEndian.Uint32(key[i:])
			if a != b {
				if a < b {
					return -1
				}
				return 1
			}
			w >>= 32
			i += 4
			rem -= 4
		}
		for j := 0; j < rem; j++ {
			a, b := byte(w>>(8*j)), key[i+j]
			if a != b {
				if a < b {
					return -1
				}
				return 1
			}
		}
		break
	}
	switch {
	case klen < len(key):
		return -1
	case klen > len(key):
		return 1
	}
	return 0
}

func bytesEntryKey(s *Store, e Addr) []byte {
	return loadBytes(s.dev, e+beData, bytesEntryKeyLen(s, e))
}

func bytesEntryValue(s *Store, e Addr) []byte {
	hdr := s.dev.Load(e + beHeader)
	klen := int(hdr & 0xFFFF)
	vlen := int(hdr >> 16 & 0xFFFFFFFF)
	return loadBytesAt(s.dev, e+beData+Addr(klen), vlen)
}

// loadBytesAt reads n bytes starting at a (not necessarily word-aligned)
// into a fresh slice of exactly n bytes: the value-copy path allocates the
// value, not key+value.
func loadBytesAt(dev *nvram.Device, a Addr, n int) []byte {
	out := make([]byte, n)
	base := a &^ 7
	shift := int(a&7) * 8
	if shift == 0 {
		for i := 0; i < n; i += 8 {
			w := dev.Load(base + Addr(i))
			for j := 0; j < 8 && i+j < n; j++ {
				out[i+j] = byte(w >> (8 * j))
			}
		}
		return out
	}
	w := dev.Load(base) >> shift // bytes of the first, partial word
	have := 8 - shift/8          // how many bytes of w are valid
	i := 0
	for {
		for j := 0; j < have && i < n; j++ {
			out[i] = byte(w >> (8 * j))
			i++
		}
		if i >= n {
			return out
		}
		base += 8
		w = dev.Load(base)
		have = 8
	}
}

func bytesEntryMeta(s *Store, e Addr) uint16 { return uint16(s.dev.Load(e+beHeader) >> 48) }

func bytesEntryAux(s *Store, e Addr) uint64 { return s.dev.Load(e + beAux) }

func bytesEntryHash(s *Store, e Addr) uint64 { return s.dev.Load(e + beHash) }

// EntryKey reads an entry's key bytes.
func (b *BytesMap) EntryKey(e Addr) []byte { return bytesEntryKey(b.s, e) }

// EntryValue reads an entry's value bytes.
func (b *BytesMap) EntryValue(e Addr) []byte { return bytesEntryValue(b.s, e) }

// EntryMeta reads an entry's 16-bit metadata field.
func (b *BytesMap) EntryMeta(e Addr) uint16 { return bytesEntryMeta(b.s, e) }

// EntryAux reads an entry's aux word.
func (b *BytesMap) EntryAux(e Addr) uint64 { return bytesEntryAux(b.s, e) }

func (b *BytesMap) entryNext(e Addr) Addr { return Addr(b.s.dev.Load(e + beNext)) }

// entryClass picks the slab class for an entry (never class 0: index nodes
// own class-0 pages, preserving the paper's "areas hold one type of data").
func entryClass(total uint64) (pmem.Class, error) {
	cl, err := pmem.ClassFor(total)
	if err != nil {
		return 0, ErrTooLarge
	}
	if cl == 0 {
		cl = 1
	}
	return cl, nil
}

// writeBytesEntry allocates an entry and schedules write-backs of all its
// cache lines in the caller's Flusher — WITHOUT fencing. The caller MUST
// complete the batch with one fence before the entry's address is stored
// anywhere reachable (link CAS, chain swing, entry-reference swap): the
// contents have to be durable before any pointer to them can persist, but
// deferring the fence lets the entry lines share one NVRAM pause with the
// index node written next (the paper's one-pause-per-batch model, §6.1).
// Shared by the hash-indexed and the ordered byte maps; ordered entries
// carry next = 0 (no collision chains).
func writeBytesEntry(c *Ctx, hash uint64, key, value []byte, meta uint16, aux uint64, next Addr) (Addr, error) {
	total := uint64(beData + len(key) + len(value))
	cl, err := entryClass(total)
	if err != nil {
		return 0, err
	}
	e, err := c.ep.AllocNode(cl)
	if err != nil {
		return 0, err
	}
	dev := c.s.dev
	hdr := uint64(len(key)) | uint64(len(value))<<16 | uint64(meta)<<48
	dev.StorePrivate(e+beHeader, hdr)
	dev.StorePrivate(e+beHash, hash)
	dev.StorePrivate(e+beAux, aux)
	dev.StorePrivate(e+beNext, uint64(next))
	storeBytesPair(dev, e+beData, key, value)
	c.clwbRange(e, total)
	return e, nil
}

// findInChain walks a collision chain for an exact key match, returning the
// entry and its predecessor in the chain (0 if it is the head).
func (b *BytesMap) findInChain(head Addr, key []byte) (entry, pred Addr) {
	for e := head; e != 0; e = b.entryNext(e) {
		if bytesEntryKeyEqual(b.s, e, key) {
			return e, pred
		}
		pred = e
	}
	return 0, 0
}

// chainHead looks the index key up lock-free; the whole call must run inside
// an epoch section.
func (b *BytesMap) chainHead(c *Ctx, hash uint64) (Addr, bool) {
	headV, ok := listSearch(c, b.s, b.idx.bucket(hash), hash)
	return Addr(headV), ok
}

// Find returns the address of the live entry for key (0, false if absent).
// The address stays valid while the caller's handle is between operations
// only in quiescent use; Get copies instead.
func (b *BytesMap) Find(c *Ctx, key []byte) (Addr, bool) {
	hash := bytesHash(key)
	c.ep.Begin()
	defer c.ep.End()
	head, ok := b.chainHead(c, hash)
	if !ok {
		return 0, false
	}
	e, _ := b.findInChain(head, key)
	return e, e != 0
}

// Get returns a copy of the value bound to key.
func (b *BytesMap) Get(c *Ctx, key []byte) ([]byte, bool) {
	v, _, _, ok := b.GetItem(c, key)
	return v, ok
}

// GetItem returns copies of the value, metadata and aux word bound to key.
func (b *BytesMap) GetItem(c *Ctx, key []byte) (value []byte, meta uint16, aux uint64, ok bool) {
	hash := bytesHash(key)
	c.ep.Begin()
	defer c.ep.End()
	head, found := b.chainHead(c, hash)
	if !found {
		return nil, 0, 0, false
	}
	e, _ := b.findInChain(head, key)
	if e == 0 {
		return nil, 0, 0, false
	}
	return b.EntryValue(e), b.EntryMeta(e), b.EntryAux(e), true
}

// GetAux returns only the aux word bound to key — no value copy, for
// metadata probes on hot paths (e.g. reading an item's expiry before a
// rewrite).
func (b *BytesMap) GetAux(c *Ctx, key []byte) (aux uint64, ok bool) {
	hash := bytesHash(key)
	c.ep.Begin()
	defer c.ep.End()
	head, found := b.chainHead(c, hash)
	if !found {
		return 0, false
	}
	e, _ := b.findInChain(head, key)
	if e == 0 {
		return 0, false
	}
	return b.EntryAux(e), true
}

// Contains reports whether key is present.
func (b *BytesMap) Contains(c *Ctx, key []byte) bool {
	_, ok := b.Find(c, key)
	return ok
}

// Set binds key to value (with metadata and aux word), durably: the entry is
// fully persisted before the single atomic link that publishes it, so a
// crash leaves either the old binding or the new one, never neither. Returns
// whether the key was newly created. May return ErrOutOfMemory-wrapping
// errors under memory pressure; the caller owns eviction policy.
func (b *BytesMap) Set(c *Ctx, key, value []byte, meta uint16, aux uint64) (created bool, err error) {
	if len(key) == 0 || len(key) > MaxBytesKeyLen {
		return false, ErrBadKey
	}
	if beData+len(key)+len(value) > MaxBytesEntrySize {
		return false, ErrTooLarge
	}
	hash := bytesHash(key)
	mu := b.lock(hash)
	mu.Lock()
	defer mu.Unlock()
	c.ep.Begin()
	defer c.ep.End()
	dev := b.s.dev

	head, exists := b.chainHead(c, hash)
	var replaced, pred Addr
	if exists {
		replaced, pred = b.findInChain(head, key)
	}
	// The new entry's chain tail skips the entry it replaces (for a
	// mid-chain replacement the publish happens at its predecessor, below).
	next := head
	if replaced != 0 {
		next = b.entryNext(replaced)
	}
	// The entry's write-backs are now pending in the flusher; each branch
	// below completes them with exactly one fence before the entry's
	// address can persist anywhere (fence budget: ≤2 sync-waits per Set —
	// one for the content batch, one for the publishing link).
	e, err := writeBytesEntry(c, hash, key, value, meta, aux, next)
	if err != nil {
		return false, err
	}
	if replaced != 0 {
		// The publish makes the old entry durably unreachable; its area must
		// be in the APT first (§5.4).
		c.ep.PreRetire(replaced)
	}
	switch {
	case !exists:
		// Fresh index key. listInsert fences its index node together with
		// our pending entry lines before the linearizing link CAS — the
		// content batch costs one pause for node and entry combined. (A
		// concurrent set of a *different* key with the same hash may have
		// inserted the index entry meanwhile — same hash means same stripe,
		// so no same-key race; Insert failing means the key appeared, so
		// chain through upsert below.)
		if !listInsert(c, b.s, b.idx.bucket(hash), hash, uint64(e)) {
			// Index key appeared after our lookup. Re-link our entry onto the
			// current chain head and publish via upsert.
			h2, _ := b.chainHead(c, hash)
			dev.Store(e+beNext, uint64(h2))
			c.sync(e + beNext)
			listUpsert(c, b.s, b.idx.bucket(hash), hash, uint64(e))
		}
	case replaced == 0:
		// New key on an existing chain: prepend. The index value CAS in
		// listUpsert publishes the entry, so its contents must be durable
		// first.
		c.fence()
		listUpsert(c, b.s, b.idx.bucket(hash), hash, uint64(e))
	case pred == 0:
		// Replacing the chain head: swing the index value (same publish
		// ordering as above).
		c.fence()
		listUpsert(c, b.s, b.idx.bucket(hash), hash, uint64(e))
	default:
		// Replacing mid-chain: swing the predecessor's next link. One atomic
		// durable word swap — the old entry and the new one trade
		// reachability at this single point. Contents first, then the swing.
		c.fence()
		dev.Store(pred+beNext, uint64(e))
		c.sync(pred + beNext)
	}
	if replaced != 0 {
		c.ep.Retire(replaced)
	}
	return replaced == 0, nil
}

// SetAux durably replaces the aux word of an existing entry in place
// (touch-style update: no entry rewrite). Returns false if key is absent.
func (b *BytesMap) SetAux(c *Ctx, key []byte, aux uint64) bool {
	hash := bytesHash(key)
	mu := b.lock(hash)
	mu.Lock()
	defer mu.Unlock()
	c.ep.Begin()
	defer c.ep.End()
	head, found := b.chainHead(c, hash)
	if !found {
		return false
	}
	e, _ := b.findInChain(head, key)
	if e == 0 {
		return false
	}
	b.s.dev.Store(e+beAux, aux)
	c.sync(e + beAux)
	return true
}

// Delete removes key durably. Returns false if key is absent.
func (b *BytesMap) Delete(c *Ctx, key []byte) bool {
	hash := bytesHash(key)
	mu := b.lock(hash)
	mu.Lock()
	defer mu.Unlock()
	c.ep.Begin()
	defer c.ep.End()
	return b.deleteLocked(c, key, hash)
}

// deleteLocked is Delete's body: the caller holds the key's stripe lock and
// an open epoch section (the batch path shares both across many ops).
func (b *BytesMap) deleteLocked(c *Ctx, key []byte, hash uint64) bool {
	dev := b.s.dev

	head, exists := b.chainHead(c, hash)
	if !exists {
		return false
	}
	e, pred := b.findInChain(head, key)
	if e == 0 {
		return false
	}
	// The unlink makes the entry durably unreachable; cover its area first.
	c.ep.PreRetire(e)
	next := b.entryNext(e)
	switch {
	case pred == 0 && next == 0:
		if _, ok := listDelete(c, b.s, b.idx.bucket(hash), hash); !ok {
			return false
		}
	case pred == 0:
		listUpsert(c, b.s, b.idx.bucket(hash), hash, uint64(next))
	default:
		dev.Store(pred+beNext, uint64(next))
		c.sync(pred + beNext)
	}
	c.ep.Retire(e)
	return true
}

// Len counts live entries (linearizable only in quiescence; diagnostic).
func (b *BytesMap) Len(c *Ctx) int {
	n := 0
	b.RangeEntries(c, func(Addr) bool { n++; return true })
	return n
}

// Range calls fn for every live key/value (copies; unordered). Safe for
// concurrent use: the walk runs inside an epoch section, so entry extents
// cannot be reclaimed mid-scan and every observed entry is internally
// consistent (entries are immutable once published). Under concurrent
// updates the scan is not a snapshot: it may miss keys inserted during the
// walk and may see either the old or the new binding of a replaced key. fn
// must not call operations on the same Ctx (epoch sections do not nest).
func (b *BytesMap) Range(c *Ctx, fn func(key, value []byte) bool) {
	b.RangeEntries(c, func(e Addr) bool {
		return fn(b.EntryKey(e), b.EntryValue(e))
	})
}

// RangeItems is Range including each entry's metadata and aux word.
func (b *BytesMap) RangeItems(c *Ctx, fn func(key, value []byte, meta uint16, aux uint64) bool) {
	b.RangeEntries(c, func(e Addr) bool {
		return fn(b.EntryKey(e), b.EntryValue(e), b.EntryMeta(e), b.EntryAux(e))
	})
}

// RangeEntries visits every live entry address under one epoch section (see
// Range for the concurrency contract).
func (b *BytesMap) RangeEntries(c *Ctx, fn func(e Addr) bool) {
	c.ep.Begin()
	defer c.ep.End()
	stop := false
	b.idx.Range(c, func(_, headV uint64) bool {
		for e := Addr(headV); e != 0 && !stop; e = b.entryNext(e) {
			if !fn(e) {
				stop = true
			}
		}
		return !stop
	})
}
