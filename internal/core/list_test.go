package core

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/nvram"
	"repro/internal/ptrtag"
)

// set abstracts List/HashTable/SkipList/BST so the semantic tests run
// against every structure.
type set interface {
	Insert(c *Ctx, key, value uint64) bool
	Delete(c *Ctx, key uint64) (uint64, bool)
	Search(c *Ctx, key uint64) (uint64, bool)
	Contains(c *Ctx, key uint64) bool
}

func newTestStore(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.MaxThreads == 0 {
		opts.MaxThreads = 8
	}
	dev := nvram.New(nvram.Config{Size: 64 << 20})
	s, err := NewStore(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// runSetSemantics exercises single-threaded set semantics against any set.
func runSetSemantics(t *testing.T, st set, c *Ctx) {
	t.Helper()
	if !st.Insert(c, 10, 100) {
		t.Fatal("insert of fresh key failed")
	}
	if st.Insert(c, 10, 999) {
		t.Fatal("duplicate insert succeeded")
	}
	if v, ok := st.Search(c, 10); !ok || v != 100 {
		t.Fatalf("Search(10) = %d,%v want 100,true", v, ok)
	}
	if st.Contains(c, 11) {
		t.Fatal("Contains(11) on empty key")
	}
	if _, ok := st.Delete(c, 11); ok {
		t.Fatal("delete of absent key succeeded")
	}
	if v, ok := st.Delete(c, 10); !ok || v != 100 {
		t.Fatalf("Delete(10) = %d,%v want 100,true", v, ok)
	}
	if st.Contains(c, 10) {
		t.Fatal("key present after delete")
	}
	if !st.Insert(c, 10, 200) {
		t.Fatal("re-insert after delete failed")
	}
	if v, _ := st.Search(c, 10); v != 200 {
		t.Fatalf("value after re-insert = %d, want 200", v)
	}
	// Ordered batch.
	for k := uint64(1); k <= 50; k++ {
		if k != 10 {
			st.Insert(c, k, k*2)
		}
	}
	for k := uint64(1); k <= 50; k++ {
		if !st.Contains(c, k) {
			t.Fatalf("key %d missing after batch insert", k)
		}
	}
	for k := uint64(1); k <= 50; k += 2 {
		st.Delete(c, k)
	}
	for k := uint64(1); k <= 50; k++ {
		want := k%2 == 0
		if st.Contains(c, k) != want {
			t.Fatalf("key %d presence = %v, want %v", k, !want, want)
		}
	}
}

// runOracleStress runs concurrent random operations and then compares the
// structure against a deterministic replay... concurrency makes exact replay
// impossible, so instead each worker owns a disjoint key range and checks
// its own slice against a local oracle map.
func runOracleStress(t *testing.T, s *Store, st set, workers, opsPer int) {
	t.Helper()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := s.MustCtx(w)
			rng := rand.New(rand.NewSource(int64(w) + 42))
			base := uint64(w)*100000 + 1
			oracle := make(map[uint64]uint64)
			for i := 0; i < opsPer; i++ {
				k := base + uint64(rng.Intn(200))
				switch rng.Intn(3) {
				case 0:
					ok := st.Insert(c, k, k+uint64(i))
					if _, had := oracle[k]; had == ok {
						t.Errorf("w%d: Insert(%d) = %v but oracle had=%v", w, k, ok, had)
						return
					}
					if ok {
						oracle[k] = k + uint64(i)
					}
				case 1:
					v, ok := st.Delete(c, k)
					ov, had := oracle[k]
					if ok != had || (ok && v != ov) {
						t.Errorf("w%d: Delete(%d) = %d,%v oracle %d,%v", w, k, v, ok, ov, had)
						return
					}
					delete(oracle, k)
				default:
					v, ok := st.Search(c, k)
					ov, had := oracle[k]
					if ok != had || (ok && v != ov) {
						t.Errorf("w%d: Search(%d) = %d,%v oracle %d,%v", w, k, v, ok, ov, had)
						return
					}
				}
			}
			// Final sweep.
			for k, ov := range oracle {
				if v, ok := st.Search(c, k); !ok || v != ov {
					t.Errorf("w%d: final Search(%d) = %d,%v want %d,true", w, k, v, ok, ov)
					return
				}
			}
			c.Shutdown()
		}(w)
	}
	wg.Wait()
}

// runContendedStress hammers a tiny shared key range from all workers and
// verifies structural integrity afterwards (no lost nodes, order intact).
func runContendedStress(t *testing.T, s *Store, st set, workers, opsPer int) {
	t.Helper()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := s.MustCtx(w)
			rng := rand.New(rand.NewSource(int64(w) * 7))
			for i := 0; i < opsPer; i++ {
				k := uint64(rng.Intn(16)) + 1
				switch rng.Intn(3) {
				case 0:
					st.Insert(c, k, uint64(w))
				case 1:
					st.Delete(c, k)
				default:
					st.Search(c, k)
				}
			}
			c.Shutdown()
		}(w)
	}
	wg.Wait()
}

func TestListSemantics(t *testing.T) {
	for _, lc := range []bool{false, true} {
		name := map[bool]string{false: "LP", true: "LC"}[lc]
		t.Run(name, func(t *testing.T) {
			s := newTestStore(t, Options{LinkCache: lc})
			c := s.MustCtx(0)
			l, err := NewList(c)
			if err != nil {
				t.Fatal(err)
			}
			runSetSemantics(t, l, c)
		})
	}
}

func TestListKeyRangeEnforced(t *testing.T) {
	s := newTestStore(t, Options{})
	c := s.MustCtx(0)
	l, _ := NewList(c)
	defer func() {
		if recover() == nil {
			t.Fatal("key 0 accepted")
		}
	}()
	l.Insert(c, 0, 1)
}

func TestListLenAndRange(t *testing.T) {
	s := newTestStore(t, Options{})
	c := s.MustCtx(0)
	l, _ := NewList(c)
	for k := uint64(5); k >= 1; k-- {
		l.Insert(c, k, k*10)
	}
	if got := l.Len(c); got != 5 {
		t.Fatalf("Len = %d, want 5", got)
	}
	var keys []uint64
	l.Range(c, func(k, v uint64) bool {
		if v != k*10 {
			t.Fatalf("Range value for %d = %d", k, v)
		}
		keys = append(keys, k)
		return true
	})
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("Range not sorted: %v", keys)
		}
	}
}

func TestListOracleStress(t *testing.T) {
	for _, lc := range []bool{false, true} {
		name := map[bool]string{false: "LP", true: "LC"}[lc]
		t.Run(name, func(t *testing.T) {
			s := newTestStore(t, Options{LinkCache: lc})
			c := s.MustCtx(0)
			l, _ := NewList(c)
			runOracleStress(t, s, l, 4, 2500)
		})
	}
}

func TestListContendedStress(t *testing.T) {
	for _, lc := range []bool{false, true} {
		name := map[bool]string{false: "LP", true: "LC"}[lc]
		t.Run(name, func(t *testing.T) {
			s := newTestStore(t, Options{LinkCache: lc})
			c := s.MustCtx(0)
			l, _ := NewList(c)
			runContendedStress(t, s, l, 8, 4000)
			// Structural integrity: strictly ascending traversal, no marks
			// reachable from durable image after a flush.
			prev := uint64(0)
			l.Range(c, func(k, v uint64) bool {
				if k <= prev {
					t.Fatalf("order violated: %d after %d", k, prev)
				}
				prev = k
				return true
			})
		})
	}
}

// TestListDurableAfterEveryOp crashes after each completed LP-mode operation
// and verifies the operation's effect survived. This is durable
// linearizability for a single-threaded history (§2).
func TestListDurableAfterEveryOp(t *testing.T) {
	dev := nvram.New(nvram.Config{Size: 16 << 20})
	s, _ := NewStore(dev, Options{MaxThreads: 1})
	c := s.MustCtx(0)
	l, _ := NewList(c)
	head := l.Head()
	oracle := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		k := uint64(rng.Intn(40)) + 1
		v := uint64(i) + 1000
		if rng.Intn(2) == 0 {
			if l.Insert(c, k, v) {
				oracle[k] = v
			}
		} else {
			if _, ok := l.Delete(c, k); ok {
				delete(oracle, k)
			}
		}
		if i%10 != 0 {
			continue // crash-check every 10th op to keep the test fast
		}
		img := crashClone(t, dev)
		checkListMatchesOracle(t, img, head, oracle)
	}
}

// crashClone snapshots the device, crashes the snapshot, and returns it; the
// original keeps running.
func crashClone(t *testing.T, dev *nvram.Device) *nvram.Device {
	t.Helper()
	dir := t.TempDir()
	if err := dev.SaveImage(dir + "/img"); err != nil {
		t.Fatal(err)
	}
	clone, err := nvram.LoadImage(dir+"/img", nvram.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return clone
}

// checkListMatchesOracle walks the persisted list image (stripping marks,
// skipping logically deleted nodes) and compares with the oracle.
func checkListMatchesOracle(t *testing.T, dev *nvram.Device, head Addr, oracle map[uint64]uint64) {
	t.Helper()
	got := make(map[uint64]uint64)
	curr := ptrtag.Addr(dev.Load(head + nNext))
	for {
		k := dev.Load(curr + nKey)
		if k == ^uint64(0) {
			break
		}
		w := dev.Load(curr + nNext)
		if !ptrtag.IsMarked(w) {
			got[k] = dev.Load(curr + nValue)
		}
		curr = ptrtag.Addr(w)
	}
	if len(got) != len(oracle) {
		t.Fatalf("recovered list has %d keys, oracle %d\ngot=%v\nwant=%v",
			len(got), len(oracle), got, oracle)
	}
	for k, v := range oracle {
		if got[k] != v {
			t.Fatalf("recovered list: key %d = %d, want %d", k, got[k], v)
		}
	}
}

// TestListQuickProperties drives quick-generated op sequences against a map
// oracle (single-threaded, LP mode).
func TestListQuickProperties(t *testing.T) {
	s := newTestStore(t, Options{MaxThreads: 1})
	c := s.MustCtx(0)
	l, _ := NewList(c)
	oracle := make(map[uint64]uint64)
	prop := func(keyRaw uint16, val uint64, op uint8) bool {
		k := uint64(keyRaw%100) + 1
		switch op % 3 {
		case 0:
			_, had := oracle[k]
			if l.Insert(c, k, val) == had {
				return false
			}
			if !had {
				oracle[k] = val
			}
		case 1:
			ov, had := oracle[k]
			v, ok := l.Delete(c, k)
			if ok != had || (ok && v != ov) {
				return false
			}
			delete(oracle, k)
		default:
			ov, had := oracle[k]
			v, ok := l.Search(c, k)
			if ok != had || (ok && v != ov) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestListSyncCountLowerThanLogging asserts the headline claim mechanically:
// a log-free insert performs at most 2 sync waits (pre-link fence + link
// persist), where a redo-log implementation needs at least 3.
func TestListSyncCountPerInsert(t *testing.T) {
	s := newTestStore(t, Options{MaxThreads: 1})
	c := s.MustCtx(0)
	l, _ := NewList(c)
	l.Insert(c, 500, 1) // warm up allocator + APT
	before := c.f.SyncWaits
	for k := uint64(1); k <= 100; k++ {
		l.Insert(c, k, k)
	}
	perOp := float64(c.f.SyncWaits-before) / 100
	if perOp > 2.2 {
		t.Fatalf("LP insert costs %.2f syncs/op, want ≤2 (+APT misses)", perOp)
	}
}

func TestListLinkCacheReducesSyncs(t *testing.T) {
	sLP := newTestStore(t, Options{MaxThreads: 1})
	cLP := sLP.MustCtx(0)
	lLP, _ := NewList(cLP)
	sLC := newTestStore(t, Options{MaxThreads: 1, LinkCache: true})
	cLC := sLC.MustCtx(0)
	lLC, _ := NewList(cLC)

	for k := uint64(1); k <= 400; k++ {
		lLP.Insert(cLP, k, k)
		lLC.Insert(cLC, k, k)
	}
	if cLC.f.SyncWaits >= cLP.f.SyncWaits {
		t.Fatalf("link cache did not reduce syncs: LC=%d LP=%d",
			cLC.f.SyncWaits, cLP.f.SyncWaits)
	}
}
