package core

import (
	"sync/atomic"

	"repro/internal/pmem"
	"repro/internal/ptrtag"
)

// This file implements the ordered durable bytes layer: OrderedBytesMap
// stores arbitrary []byte keys and values — the same slab-extent entries as
// BytesMap (bytes.go) — but indexes them with a byte-key-comparing durable
// skip list instead of a hash table, so the map answers ordered queries:
// range scans, ascending/descending iteration, Min/Max.
//
// Index nodes do not embed keys. Each node carries one extent-anchored key
// reference: the address of the entry extent holding the full key and value
// bytes. find compares full keys through the slab on every step, so
// same-hash or shared-prefix byte keys can never alias or reorder — order
// is defined by bytes.Compare over the complete key, nothing else.
//
// Durability follows the skip list of §3 (skiplist.go): the level-0 list
// defines the abstract map state, so link-and-persist is applied to every
// level-0 link — the insert's level-0 CAS, the level-0 deletion mark, and
// the level-0 physical unlink. Index levels are volatile quality and are
// rebuilt from the durable level-0 chain on recovery. A value replacement
// writes a fresh entry extent and publishes it with a single durable word
// swap of the node's entry reference, so a crash leaves the old binding or
// the new one, never neither and never a torn mix.
//
// The link cache identifies links by uint64 keys; ordered-map operations
// use the entry's persisted index hash (beHash) for deposits and scans,
// exactly as the hash-indexed map does.
//
// Node layout (allocated from the size class fitting the tower; the first
// cache line covers entry, top and next[0..5], so one write-back covers
// everything durability needs):
//
//	[0]  entry extent address (head sentinel: 0, tail sentinel: ^0)
//	[8]  topLevel
//	[16] next[topLevel+1]
const (
	oEntry = 0
	oTop   = 8
	oNext0 = 16
)

func oNext(i int) Addr { return Addr(oNext0 + 8*i) }

func oClassFor(top int) pmem.Class {
	c, err := pmem.ClassFor(uint64(oNext0 + 8*(top+1)))
	if err != nil {
		panic(err)
	}
	return c
}

// OrderedBytesMap is a durable lock-free-read ordered map from byte keys to
// byte values. Reads and scans are lock-free (epoch-protected); the
// lifecycle of a key (set/delete) is serialized per index-key hash by the
// Store's stripe locks, as in BytesMap. Scans visit keys in strictly
// ascending byte order.
type OrderedBytesMap struct {
	s    *Store
	head Addr
	tail Addr

	// hint is a volatile upper bound on the highest index level any live
	// node has linked (bumped before a taller tower links, lowered only by
	// RebuildIndex). find starts its descent here instead of MaxLevel-1,
	// skipping the always-empty top levels; starting low is safe because
	// every level's links form a valid sublist on their own.
	hint atomic.Int32
}

// NewOrderedBytesMap creates an empty ordered durable byte-key map. Persist
// Head/Tail in root slots (or a directory) to re-attach later.
func NewOrderedBytesMap(c *Ctx) (*OrderedBytesMap, error) {
	dev := c.s.dev
	tail, err := c.ep.AllocNode(oClassFor(MaxLevel - 1))
	if err != nil {
		return nil, err
	}
	dev.Store(tail+oEntry, ^uint64(0))
	dev.Store(tail+oTop, MaxLevel-1)
	for i := 0; i < MaxLevel; i++ {
		dev.Store(tail+oNext(i), 0)
	}
	c.clwb(tail)

	head, err := c.ep.AllocNode(oClassFor(MaxLevel - 1))
	if err != nil {
		return nil, err
	}
	dev.Store(head+oEntry, 0)
	dev.Store(head+oTop, MaxLevel-1)
	for i := 0; i < MaxLevel; i++ {
		dev.Store(head+oNext(i), tail)
	}
	c.clwb(head)
	c.fence()
	return &OrderedBytesMap{s: c.s, head: head, tail: tail}, nil
}

// bumpHint raises the level hint to at least top.
func (o *OrderedBytesMap) bumpHint(top int) {
	for {
		h := o.hint.Load()
		if h >= int32(top) || o.hint.CompareAndSwap(h, int32(top)) {
			return
		}
	}
}

// AttachOrderedBytesMap reopens a map from its durable sentinels. Call
// RebuildIndex (or run its Recoverer) before serving operations after a
// crash.
func AttachOrderedBytesMap(s *Store, head, tail Addr) *OrderedBytesMap {
	o := &OrderedBytesMap{s: s, head: head, tail: tail}
	o.hint.Store(MaxLevel - 1) // conservative until RebuildIndex measures
	return o
}

// Head returns the head sentinel address (persist it).
func (o *OrderedBytesMap) Head() Addr { return o.head }

// Tail returns the tail sentinel address (persist it).
func (o *OrderedBytesMap) Tail() Addr { return o.tail }

func (o *OrderedBytesMap) lock(hash uint64) { o.s.bytesLocks[hash%uint64(len(o.s.bytesLocks))].Lock() }
func (o *OrderedBytesMap) unlock(hash uint64) {
	o.s.bytesLocks[hash%uint64(len(o.s.bytesLocks))].Unlock()
}

// nodeEntry reads a node's entry reference (0 for head, ^0 for tail).
func (o *OrderedBytesMap) nodeEntry(n Addr) Addr { return Addr(o.s.dev.Load(n + oEntry)) }

// nodeKey reads a node's full key bytes through the slab.
func (o *OrderedBytesMap) nodeKey(n Addr) []byte {
	return bytesEntryKey(o.s, o.nodeEntry(n))
}

// nodeHash reads the persisted index hash of a node's entry (the link-cache
// identity of every link this node participates in). Sentinels map to 0.
func (o *OrderedBytesMap) nodeHash(n Addr) uint64 {
	if n == o.head || n == o.tail {
		return 0
	}
	return bytesEntryHash(o.s, o.nodeEntry(n))
}

// cmpNode orders node n against key: head precedes and tail follows every
// user key; other nodes compare by their full key bytes, read straight from
// the slab without copying (find compares O(log n) keys per operation; a
// copy per comparison would dominate the walk).
func (o *OrderedBytesMap) cmpNode(n Addr, key []byte) int {
	switch n {
	case o.head:
		return -1
	case o.tail:
		return 1
	}
	return bytesEntryKeyCompare(o.s, o.nodeEntry(n), key)
}

// find locates key, filling preds/succs per level and snipping every marked
// node it encounters (helping). Level-0 snips follow the full §3 discipline:
// mark persisted, edge persisted before modification, PreRetire before the
// unlink becomes durable; index-level snips are plain CASes. In recovery
// mode a level-0 snip also frees the node and its entry extent immediately
// (their crashed deleter can no longer retire them).
func (o *OrderedBytesMap) find(c *Ctx, key []byte, preds, succs *[MaxLevel]Addr) bool {
	dev := o.s.dev
	// One-entry comparison memo: the node that stops the walk at level L is
	// usually the first node visited again at level L-1, and node keys are
	// immutable (a replace swaps the entry for one with the same key), so
	// its comparison outcome can be reused across levels and retries.
	memoNode, memoCmp := Addr(0), 0
	start := int(o.hint.Load())
	// Levels above the descent start are not walked; fill them with the
	// empty-level expectation (head→tail) so a caller that links there —
	// possible when a concurrent insert bumps the hint between this find
	// and the caller's own hint check — CASes against a real expectation
	// and simply fails into its re-find path instead of dereferencing
	// stale array contents.
	for level := start + 1; level < MaxLevel; level++ {
		preds[level] = o.head
		succs[level] = o.tail
	}
retry:
	for {
		pred := o.head
		for level := start; level >= 0; level-- {
			curr := ptrtag.Addr(dev.Load(pred + oNext(level)))
			for {
				if curr == o.tail {
					break
				}
				currW := dev.Load(curr + oNext(level))
				for ptrtag.IsMarked(currW) {
					succ := ptrtag.Addr(currW)
					if level == 0 {
						c.ensureDurable(curr + oNext(0))
						predW := c.loadClean(pred + oNext(0))
						if ptrtag.Addr(predW) != curr || ptrtag.IsMarked(predW) {
							continue retry
						}
						c.ep.PreRetire(curr)
						if !c.linkCached(o.nodeHash(curr), pred+oNext(0), predW, succ) {
							continue retry
						}
						if c.ep.InRecovery() {
							// Quiescent: the index was rebuilt without this
							// node, so the level-0 snip fully unlinks it; the
							// node and the entry it anchors can be freed right
							// away.
							c.ep.Retire(o.nodeEntry(curr))
							c.ep.Retire(curr)
						}
					} else {
						predW := dev.Load(pred + oNext(level))
						if ptrtag.Addr(predW) != curr || ptrtag.IsMarked(predW) {
							continue retry
						}
						if !dev.CAS(pred+oNext(level), predW, succ) {
							continue retry
						}
					}
					curr = succ
					if curr == o.tail {
						break
					}
					currW = dev.Load(curr + oNext(level))
				}
				if curr != o.tail {
					cr := memoCmp
					if curr != memoNode {
						cr = o.cmpNode(curr, key)
						memoNode, memoCmp = curr, cr
					}
					if cr < 0 {
						pred = curr
						curr = ptrtag.Addr(currW)
						continue
					}
				}
				break
			}
			preds[level] = pred
			succs[level] = curr
		}
		if succs[0] == o.tail {
			return false
		}
		cr := memoCmp
		if succs[0] != memoNode {
			cr = o.cmpNode(succs[0], key)
		}
		return cr == 0
	}
}

// Find returns the address of the live entry for key (0, false if absent).
// Get copies instead; addresses stay valid only in quiescent use.
func (o *OrderedBytesMap) Find(c *Ctx, key []byte) (Addr, bool) {
	c.ep.Begin()
	defer c.ep.End()
	var preds, succs [MaxLevel]Addr
	if !o.find(c, key, &preds, &succs) {
		return 0, false
	}
	return o.nodeEntry(succs[0]), true
}

// Get returns a copy of the value bound to key.
func (o *OrderedBytesMap) Get(c *Ctx, key []byte) ([]byte, bool) {
	v, _, _, ok := o.GetItem(c, key)
	return v, ok
}

// GetItem returns copies of the value, metadata and aux word bound to key,
// with §3 durability on the level-0 links proving presence or absence.
func (o *OrderedBytesMap) GetItem(c *Ctx, key []byte) (value []byte, meta uint16, aux uint64, ok bool) {
	hash := bytesHash(key)
	c.ep.Begin()
	defer c.ep.End()
	var preds, succs [MaxLevel]Addr
	found := o.find(c, key, &preds, &succs)
	c.scan(hash)
	c.ensureDurable(preds[0] + oNext(0))
	if !found {
		return nil, 0, 0, false
	}
	node := succs[0]
	c.ensureDurable(node + oNext(0))
	e := o.nodeEntry(node)
	return bytesEntryValue(o.s, e), bytesEntryMeta(o.s, e), bytesEntryAux(o.s, e), true
}

// Contains reports whether key is present.
func (o *OrderedBytesMap) Contains(c *Ctx, key []byte) bool {
	_, ok := o.Find(c, key)
	return ok
}

// Set binds key to value (with metadata and aux word), durably: the entry
// is fully persisted before the single atomic link (new node's level-0
// link-and-persist, or the entry-reference swap of an existing node) that
// publishes it. Returns whether the key was newly created. May return
// ErrOutOfMemory-wrapping errors under memory pressure.
func (o *OrderedBytesMap) Set(c *Ctx, key, value []byte, meta uint16, aux uint64) (created bool, err error) {
	if len(key) == 0 || len(key) > MaxBytesKeyLen {
		return false, ErrBadKey
	}
	if beData+len(key)+len(value) > MaxBytesEntrySize {
		return false, ErrTooLarge
	}
	hash := bytesHash(key)
	o.lock(hash)
	defer o.unlock(hash)
	c.ep.Begin()
	defer c.ep.End()
	dev := o.s.dev

	var preds, succs [MaxLevel]Addr
	if o.find(c, key, &preds, &succs) {
		// Replace in place: one durable word swap of the node's entry
		// reference trades the old and new extents' reachability. The links
		// this operation depends on must be durable first (§3/§4), which
		// also flushes any cached link from the insert that created the key.
		node := succs[0]
		c.scan(hash)
		c.ensureDurable(preds[0] + oNext(0))
		c.ensureDurable(node + oNext(0))
		e, err := writeBytesEntry(c, hash, key, value, meta, aux, 0)
		if err != nil {
			return false, err
		}
		// Entry contents durable before the swap can persist (fence budget:
		// one pause for the content batch, one for the publishing sync).
		c.fence()
		old := o.nodeEntry(node)
		// The swap makes the old entry durably unreachable; its area must be
		// in the APT first (§5.4).
		c.ep.PreRetire(old)
		dev.Store(node+oEntry, uint64(e))
		c.sync(node + oEntry)
		c.ep.Retire(old)
		return false, nil
	}

	// Fresh key. The entry is written once; only the link is retried. The
	// stripe lock serializes the lifecycle of this key, so no same-key
	// insert or delete can race — but inserts of *different* keys can move
	// the predecessors, hence the retry loop.
	e, err := writeBytesEntry(c, hash, key, value, meta, aux, 0)
	if err != nil {
		return false, err
	}
	top := c.randomLevel()
	if int(o.hint.Load()) < top {
		// The tower outgrows the current descent hint: raise it before any
		// level links, and re-run find to fill preds/succs for the newly
		// walked levels (rare — the hint rises O(log n) times in total).
		o.bumpHint(top)
		o.find(c, key, &preds, &succs)
	}
	n, err := c.ep.AllocNode(oClassFor(top))
	if err != nil {
		c.alloc.Free(e) // never visible
		return false, err
	}
	for {
		c.scan(hash)
		// Predecessor's adjacent level-0 links must be durable pre-link; its
		// incoming link may be cached under its own hash.
		c.scan(o.nodeHash(preds[0]))
		predW := c.loadClean(preds[0] + oNext(0))
		if ptrtag.Addr(predW) != succs[0] || ptrtag.IsMarked(predW) {
			o.find(c, key, &preds, &succs)
			continue
		}
		// The node is unpublished until the level-0 link CAS below, so its
		// initialization uses private stores (the CAS is the release point).
		dev.StorePrivate(n+oEntry, uint64(e))
		dev.StorePrivate(n+oTop, uint64(top))
		for i := 0; i <= top; i++ {
			dev.StorePrivate(n+oNext(i), succs[i])
		}
		c.clwb(n) // covers entry, top, next[0..5]
		// One pause for the whole content batch: the node line AND the entry
		// extent's lines still pending from writeBytesEntry become durable
		// together, before the linearizing link can make them reachable.
		c.fence()
		if c.linkCached(hash, preds[0]+oNext(0), predW, n) {
			break
		}
		o.find(c, key, &preds, &succs)
	}
	o.linkTower(c, key, n, top, &preds, &succs)
	return true, nil
}

// linkTower links a freshly published node's index levels (volatile quality;
// rebuilt on recovery). Shared by Set and the batch publish path.
func (o *OrderedBytesMap) linkTower(c *Ctx, key []byte, n Addr, top int, preds, succs *[MaxLevel]Addr) {
	dev := o.s.dev
	for level := 1; level <= top; level++ {
		for {
			nextW := dev.Load(n + oNext(level))
			if ptrtag.IsMarked(nextW) {
				// A concurrent delete reached this level; stop linking.
				o.find(c, key, preds, succs) // help complete the unlink
				return
			}
			if succs[level] != ptrtag.Addr(nextW) {
				if !dev.CAS(n+oNext(level), nextW, succs[level]) {
					continue
				}
			}
			if dev.CAS(preds[level]+oNext(level), succs[level], n) {
				break
			}
			o.find(c, key, preds, succs) // refresh preds/succs
			if succs[0] != n {
				return // our node was deleted already
			}
		}
	}
	if ptrtag.IsMarked(dev.Load(n + oNext(0))) {
		o.find(c, key, preds, succs)
	}
}

// SetAux durably replaces the aux word of an existing entry in place
// (touch-style update: no entry rewrite). Returns false if key is absent.
func (o *OrderedBytesMap) SetAux(c *Ctx, key []byte, aux uint64) bool {
	hash := bytesHash(key)
	o.lock(hash)
	defer o.unlock(hash)
	c.ep.Begin()
	defer c.ep.End()
	var preds, succs [MaxLevel]Addr
	if !o.find(c, key, &preds, &succs) {
		return false
	}
	e := o.nodeEntry(succs[0])
	o.s.dev.Store(e+beAux, aux)
	c.sync(e + beAux)
	return true
}

// Delete removes key durably: the level-0 deletion mark is the durable
// linearization point; the subsequent find physically unlinks the tower,
// after which the node and its entry extent are retired. Returns false if
// key is absent.
func (o *OrderedBytesMap) Delete(c *Ctx, key []byte) bool {
	hash := bytesHash(key)
	o.lock(hash)
	defer o.unlock(hash)
	c.ep.Begin()
	defer c.ep.End()
	return o.deleteLocked(c, key, hash)
}

// deleteLocked is Delete's body: the caller holds the key's stripe lock and
// an open epoch section (the batch path shares both across many ops).
func (o *OrderedBytesMap) deleteLocked(c *Ctx, key []byte, hash uint64) bool {
	dev := o.s.dev

	var preds, succs [MaxLevel]Addr
	if !o.find(c, key, &preds, &succs) {
		c.scan(hash)
		c.ensureDurable(preds[0] + oNext(0)) // absence must be durable
		return false
	}
	node := succs[0]
	e := o.nodeEntry(node)
	top := int(dev.Load(node + oTop))
	// Mark index levels top-down (plain CAS; volatile quality).
	for level := top; level >= 1; level-- {
		for {
			w := dev.Load(node + oNext(level))
			if ptrtag.IsMarked(w) {
				break
			}
			dev.CAS(node+oNext(level), w, w|ptrtag.Mark)
		}
	}
	// Durable linearization: mark level 0 with link-and-persist. The
	// predecessor's adjacent links must be durable first (§3).
	c.scan(hash)
	c.scan(o.nodeHash(preds[0]))
	c.ensureDurable(preds[0] + oNext(0))
	for {
		w := c.loadClean(node + oNext(0))
		if ptrtag.IsMarked(w) {
			// Unreachable under the stripe lock; defensive (a helper never
			// marks, only snips).
			o.find(c, key, &preds, &succs)
			return false
		}
		// The mark makes both the node and its entry durably dead; their
		// areas must be in the APT first (§5.4).
		c.ep.PreRetire(e)
		c.ep.PreRetire(node)
		if c.linkCached(hash, node+oNext(0), w, ptrtag.Addr(w)|ptrtag.Mark) {
			o.find(c, key, &preds, &succs) // snip the whole tower
			c.ep.Retire(node)
			c.ep.Retire(e)
			return true
		}
	}
}

// Len counts live keys via the level-0 chain (linearizable only in
// quiescence; diagnostic).
func (o *OrderedBytesMap) Len(c *Ctx) int {
	c.ep.Begin()
	defer c.ep.End()
	dev := o.s.dev
	n := 0
	curr := ptrtag.Addr(dev.Load(o.head + oNext(0)))
	for curr != o.tail {
		w := dev.Load(curr + oNext(0))
		if !ptrtag.IsMarked(w) {
			n++
		}
		curr = ptrtag.Addr(w)
	}
	return n
}

// ScanEntries visits the live entry addresses of every key k with
// start <= k < end, in strictly ascending byte order. A nil (or empty)
// start scans from the smallest key; a nil end scans through the largest.
//
// Scans are safe for concurrent use: the walk runs inside an epoch section,
// entries are immutable once published, and node keys never change — so a
// scan can never observe a torn entry or keys out of order. Under
// concurrent updates the scan is not a snapshot: it may miss keys inserted
// behind it and may see either binding of a concurrently replaced key. fn
// must not call operations on the same Ctx (epoch sections do not nest).
func (o *OrderedBytesMap) ScanEntries(c *Ctx, start, end []byte, fn func(e Addr) bool) {
	c.ep.Begin()
	defer c.ep.End()
	dev := o.s.dev
	var curr Addr
	if len(start) == 0 {
		curr = ptrtag.Addr(dev.Load(o.head + oNext(0)))
	} else {
		var preds, succs [MaxLevel]Addr
		o.find(c, start, &preds, &succs)
		curr = succs[0]
	}
	for curr != o.tail {
		w := dev.Load(curr + oNext(0))
		if !ptrtag.IsMarked(w) {
			e := o.nodeEntry(curr)
			if end != nil && bytesEntryKeyCompare(o.s, e, end) >= 0 {
				return
			}
			if !fn(e) {
				return
			}
		}
		curr = ptrtag.Addr(w)
	}
}

// Scan calls fn with key/value copies for every live key in [start, end),
// ascending (see ScanEntries for bounds and concurrency semantics).
func (o *OrderedBytesMap) Scan(c *Ctx, start, end []byte, fn func(key, value []byte) bool) {
	o.ScanEntries(c, start, end, func(e Addr) bool {
		return fn(bytesEntryKey(o.s, e), bytesEntryValue(o.s, e))
	})
}

// ScanItems is Scan including each entry's metadata and aux word.
func (o *OrderedBytesMap) ScanItems(c *Ctx, start, end []byte, fn func(key, value []byte, meta uint16, aux uint64) bool) {
	o.ScanEntries(c, start, end, func(e Addr) bool {
		return fn(bytesEntryKey(o.s, e), bytesEntryValue(o.s, e), bytesEntryMeta(o.s, e), bytesEntryAux(o.s, e))
	})
}

// Ascend visits every live key in ascending byte order.
func (o *OrderedBytesMap) Ascend(c *Ctx, fn func(key, value []byte) bool) {
	o.Scan(c, nil, nil, fn)
}

// Descend visits every live key in descending byte order. The skip list is
// singly linked, so Descend materializes the ascending pass first; prefer
// Ascend or Scan on very large maps.
func (o *OrderedBytesMap) Descend(c *Ctx, fn func(key, value []byte) bool) {
	type kv struct{ k, v []byte }
	var all []kv
	o.Scan(c, nil, nil, func(k, v []byte) bool {
		all = append(all, kv{k, v})
		return true
	})
	for i := len(all) - 1; i >= 0; i-- {
		if !fn(all[i].k, all[i].v) {
			return
		}
	}
}

// Min returns the smallest live key and its value.
func (o *OrderedBytesMap) Min(c *Ctx) (key, value []byte, ok bool) {
	c.ep.Begin()
	defer c.ep.End()
	dev := o.s.dev
	curr := ptrtag.Addr(dev.Load(o.head + oNext(0)))
	for curr != o.tail {
		w := dev.Load(curr + oNext(0))
		if !ptrtag.IsMarked(w) {
			e := o.nodeEntry(curr)
			return bytesEntryKey(o.s, e), bytesEntryValue(o.s, e), true
		}
		curr = ptrtag.Addr(w)
	}
	return nil, nil, false
}

// Max returns the largest live key and its value. The index levels descend
// toward the tail in O(log n); the final level-0 stretch tracks the last
// unmarked node.
func (o *OrderedBytesMap) Max(c *Ctx) (key, value []byte, ok bool) {
	c.ep.Begin()
	defer c.ep.End()
	dev := o.s.dev
	pred := o.head
	for level := int(o.hint.Load()); level >= 1; level-- {
		for {
			nxt := ptrtag.Addr(dev.Load(pred + oNext(level)))
			if nxt == o.tail || nxt == 0 {
				break
			}
			pred = nxt
		}
	}
	var last Addr
	curr := pred
	if curr == o.head {
		curr = ptrtag.Addr(dev.Load(o.head + oNext(0)))
	}
	for curr != o.tail && curr != 0 {
		w := dev.Load(curr + oNext(0))
		if !ptrtag.IsMarked(w) {
			last = curr
		}
		curr = ptrtag.Addr(w)
	}
	if last == 0 {
		// The index hint overshot live nodes (all marked past it); fall back
		// to a full level-0 walk.
		curr = ptrtag.Addr(dev.Load(o.head + oNext(0)))
		for curr != o.tail {
			w := dev.Load(curr + oNext(0))
			if !ptrtag.IsMarked(w) {
				last = curr
			}
			curr = ptrtag.Addr(w)
		}
	}
	if last == 0 {
		return nil, nil, false
	}
	e := o.nodeEntry(last)
	return bytesEntryKey(o.s, e), bytesEntryValue(o.s, e), true
}

// RebuildIndex reconstructs all index levels from the durable level-0
// chain. Called during recovery (the index is volatile by design).
// Quiescent use only.
func (o *OrderedBytesMap) RebuildIndex(c *Ctx) {
	dev := o.s.dev
	var tails [MaxLevel]Addr
	for i := range tails {
		tails[i] = o.head
	}
	maxTop := 0
	curr := ptrtag.Addr(dev.Load(o.head + oNext(0)))
	for curr != o.tail {
		w := dev.Load(curr + oNext(0))
		if !ptrtag.IsMarked(w) {
			top := int(dev.Load(curr + oTop))
			if top > MaxLevel-1 {
				top = MaxLevel - 1
			}
			if top > maxTop {
				maxTop = top
			}
			for i := 1; i <= top; i++ {
				dev.Store(tails[i]+oNext(i), curr)
				tails[i] = curr
			}
		}
		curr = ptrtag.Addr(w)
	}
	for i := 1; i < MaxLevel; i++ {
		dev.Store(tails[i]+oNext(i), o.tail)
	}
	o.hint.Store(int32(maxTop))
}

// --- Recovery ------------------------------------------------------------

// orderedRecover keeps an OrderedBytesMap's two object populations: index
// nodes (kept iff a full-key search lands exactly on them) and entry
// extents (kept iff the search for their stored key lands on a node whose
// entry reference is exactly this extent). Both checks apply condition (ii)
// of §5.5 — an uninitialized or foreign object fails its shape validation
// or the search — so the sweep never claims another structure's objects.
type orderedRecover struct{ o *OrderedBytesMap }

func (r orderedRecover) Prepare(c *Ctx, _ map[Addr]bool) {
	// The index levels are volatile by design; rebuild them from the
	// durable level-0 chain before any searches run. Logically deleted
	// nodes are excluded, so a later level-0 snip fully unlinks them.
	r.o.RebuildIndex(c)
}

func (r orderedRecover) Keep(c *Ctx, n Addr) bool {
	o := r.o
	if n == o.head || n == o.tail {
		return true
	}
	cl, ok := o.s.pool.PageClass(pmem.PageOf(n))
	if !ok {
		return true // not a heap page; leave alone
	}
	// Node interpretation: the object's first word would be its entry
	// reference; a genuine node's search lands on its own address.
	if key, valid := o.validNodeKey(n); valid {
		var preds, succs [MaxLevel]Addr
		if o.find(c, key, &preds, &succs) && succs[0] == n {
			return true
		}
	}
	// Entry interpretation (entries always live in classes >= 1): a genuine
	// entry is the current entry reference of the node its key lands on.
	if cl >= 1 {
		if key, valid := o.validEntryKey(n, cl); valid {
			var preds, succs [MaxLevel]Addr
			if o.find(c, key, &preds, &succs) && o.nodeEntry(succs[0]) == n {
				return true
			}
		}
	}
	return false
}

// validNodeKey reads the key referenced by a would-be node, first vetting
// the entry reference (in-device, slot-aligned, in an entry-class page,
// allocated) and the entry's shape, so garbage never faults the sweep.
func (o *OrderedBytesMap) validNodeKey(n Addr) ([]byte, bool) {
	e := Addr(o.s.dev.Load(n + oEntry))
	if e == 0 || e == ^uint64(0) || e&(pmem.SlotAlign-1) != 0 || e >= o.s.dev.Size() {
		return nil, false
	}
	ecl, ok := o.s.pool.PageClass(pmem.PageOf(e))
	if !ok || ecl < 1 || !o.s.pool.SlotAllocated(e) {
		return nil, false
	}
	return o.validEntryKey(e, ecl)
}

// validEntryKey vets an entry extent's shape (key/value lengths fit the
// class, hash folded into the index range) and returns its key bytes.
func (o *OrderedBytesMap) validEntryKey(e Addr, cl pmem.Class) ([]byte, bool) {
	hdr := o.s.dev.Load(e + beHeader)
	klen := int(hdr & 0xFFFF)
	vlen := int(hdr >> 16 & 0xFFFFFFFF)
	if klen < 1 || klen > MaxBytesKeyLen || beData+klen+vlen > int(pmem.ClassSizes[cl]) {
		return nil, false
	}
	if h := o.s.dev.Load(e + beHash); h < MinKey || h > MaxKey {
		return nil, false
	}
	return loadBytes(o.s.dev, e+beData, klen), true
}

// Recoverer returns the map's hook set for RecoverSet composition.
func (o *OrderedBytesMap) Recoverer() Recoverer { return orderedRecover{o} }

// RecoverOrderedBytesMap rebuilds the volatile index from the durable
// level-0 chain, then sweeps the active areas with full-key searches.
func RecoverOrderedBytesMap(s *Store, o *OrderedBytesMap, par int) RecoveryStats {
	return sweep(s, orderedRecover{o}, par)
}
