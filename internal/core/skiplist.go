package core

import (
	"math/bits"

	"repro/internal/pmem"
	"repro/internal/ptrtag"
)

// SkipList is a durable lock-free skip list based on the Herlihy-Shavit
// lock-free skiplist (Fraser/Harris style: per-level marks, helping snips),
// the algorithm the paper starts from for its skip list (§3).
//
// Durability: the level-0 list defines the abstract set state, so
// link-and-persist is applied to level-0 links only — the insert's level-0
// CAS, the level-0 deletion mark, and the level-0 physical unlink. Index
// levels (1+) are maintained with plain CASes and never written back: after
// a crash they are rebuilt from the durable level-0 chain (RebuildIndex),
// trading a few milliseconds of recovery for zero syncs on index
// maintenance. This is the natural translation of the paper's observation
// that only state-changing links need durability.
//
// Node layout: key, value, topLevel, next[topLevel+1]; allocated from the
// size class fitting the tower. The first cache line covers key, value and
// next[0..4], so one write-back covers everything durability needs.
type SkipList struct {
	s    *Store
	head Addr
	tail Addr
}

// MaxLevel is the tallest tower (level indices 0..MaxLevel-1).
const MaxLevel = 20

const (
	slKey   = 0
	slValue = 8
	slTop   = 16
	slNext0 = 24
)

func slNext(i int) Addr { return Addr(slNext0 + 8*i) }

func slClassFor(top int) pmem.Class {
	c, err := pmem.ClassFor(uint64(24 + 8*(top+1)))
	if err != nil {
		panic(err)
	}
	return c
}

// NewSkipList creates an empty durable skip list.
func NewSkipList(c *Ctx) (*SkipList, error) {
	dev := c.s.dev
	tail, err := c.ep.AllocNode(slClassFor(MaxLevel - 1))
	if err != nil {
		return nil, err
	}
	dev.Store(tail+slKey, ^uint64(0))
	dev.Store(tail+slValue, 0)
	dev.Store(tail+slTop, MaxLevel-1)
	for i := 0; i < MaxLevel; i++ {
		dev.Store(tail+slNext(i), 0)
	}
	c.clwb(tail)

	head, err := c.ep.AllocNode(slClassFor(MaxLevel - 1))
	if err != nil {
		return nil, err
	}
	dev.Store(head+slKey, 0)
	dev.Store(head+slValue, 0)
	dev.Store(head+slTop, MaxLevel-1)
	for i := 0; i < MaxLevel; i++ {
		dev.Store(head+slNext(i), tail)
	}
	c.clwb(head)
	c.fence()
	return &SkipList{s: c.s, head: head, tail: tail}, nil
}

// AttachSkipList reopens a skip list from its durable sentinels. Call
// RebuildIndex before serving operations after a crash.
func AttachSkipList(s *Store, head, tail Addr) *SkipList {
	return &SkipList{s: s, head: head, tail: tail}
}

// Head returns the head sentinel address (persist in a root).
func (sl *SkipList) Head() Addr { return sl.head }

// Tail returns the tail sentinel address (persist in a root).
func (sl *SkipList) Tail() Addr { return sl.tail }

// randomLevel draws a geometric(1/2) tower height in [0, MaxLevel-1]: the
// count of trailing one-bits of a single random word (each bit is a fair
// coin), capped at MaxLevel-1.
func (c *Ctx) randomLevel() int {
	r := uint64(c.rng.Int63())
	return bits.TrailingZeros64(^r | 1<<(MaxLevel-1))
}

// find locates key, filling preds/succs per level and snipping every marked
// node it encounters (helping). Level-0 snips follow the full §3 discipline:
// mark persisted, edge persisted before modification, PreRetire before the
// unlink becomes durable; index-level snips are plain CASes.
func (sl *SkipList) find(c *Ctx, key uint64, preds, succs *[MaxLevel]Addr) bool {
	dev := sl.s.dev
retry:
	for {
		pred := sl.head
		for level := MaxLevel - 1; level >= 0; level-- {
			curr := ptrtag.Addr(dev.Load(pred + slNext(level)))
			for {
				if curr == sl.tail {
					break
				}
				currW := dev.Load(curr + slNext(level))
				for ptrtag.IsMarked(currW) {
					succ := ptrtag.Addr(currW)
					if level == 0 {
						c.ensureDurable(curr + slNext(0))
						predW := c.loadClean(pred + slNext(0))
						if ptrtag.Addr(predW) != curr || ptrtag.IsMarked(predW) {
							continue retry
						}
						c.ep.PreRetire(curr)
						if !c.linkCached(sl.s.dev.Load(curr+slKey), pred+slNext(0), predW, succ) {
							continue retry
						}
						if c.ep.InRecovery() {
							// Quiescent: the index was rebuilt without this
							// node, so the level-0 snip fully unlinks it and
							// it can be freed right away (its crashed
							// deleter can no longer retire it).
							c.ep.Retire(curr)
						}
					} else {
						predW := dev.Load(pred + slNext(level))
						if ptrtag.Addr(predW) != curr || ptrtag.IsMarked(predW) {
							continue retry
						}
						if !dev.CAS(pred+slNext(level), predW, succ) {
							continue retry
						}
					}
					curr = succ
					if curr == sl.tail {
						break
					}
					currW = dev.Load(curr + slNext(level))
				}
				if curr != sl.tail && dev.Load(curr+slKey) < key {
					pred = curr
					curr = ptrtag.Addr(currW)
					continue
				}
				break
			}
			preds[level] = pred
			succs[level] = curr
		}
		return succs[0] != sl.tail && dev.Load(succs[0]+slKey) == key
	}
}

// Search looks key up with §3 durability on the level-0 links.
func (sl *SkipList) Search(c *Ctx, key uint64) (uint64, bool) {
	checkKey(key)
	c.ep.Begin()
	defer c.ep.End()
	var preds, succs [MaxLevel]Addr
	found := sl.find(c, key, &preds, &succs)
	c.scan(key)
	c.ensureDurable(preds[0] + slNext(0))
	if !found {
		return 0, false
	}
	c.ensureDurable(succs[0] + slNext(0))
	return sl.s.dev.Load(succs[0] + slValue), true
}

// Contains reports whether key is present.
func (sl *SkipList) Contains(c *Ctx, key uint64) bool {
	_, ok := sl.Search(c, key)
	return ok
}

// Insert adds key→value; false if present. Linearizes (and becomes durable)
// at the level-0 link-and-persist; index levels are linked afterwards with
// plain CASes.
func (sl *SkipList) Insert(c *Ctx, key, value uint64) bool {
	checkKey(key)
	c.ep.Begin()
	defer c.ep.End()
	return sl.insert(c, key, value)
}

// insert is the Insert body, shared with Upsert (which manages its own epoch
// section).
func (sl *SkipList) insert(c *Ctx, key, value uint64) bool {
	dev := sl.s.dev
	var preds, succs [MaxLevel]Addr
	top := c.randomLevel()
	for {
		if sl.find(c, key, &preds, &succs) {
			c.scan(key)
			c.ensureDurable(preds[0] + slNext(0))
			c.ensureDurable(succs[0] + slNext(0))
			return false
		}
		c.scan(key)
		// Predecessor's adjacent level-0 links must be durable pre-link; its
		// incoming link may be cached under its own key.
		c.scan(dev.Load(preds[0] + slKey))
		predW := c.loadClean(preds[0] + slNext(0))
		if ptrtag.Addr(predW) != succs[0] || ptrtag.IsMarked(predW) {
			continue
		}
		n, err := c.ep.AllocNode(slClassFor(top))
		if err != nil {
			panic(err)
		}
		dev.Store(n+slKey, key)
		dev.Store(n+slValue, value)
		dev.Store(n+slTop, uint64(top))
		for i := 0; i <= top; i++ {
			dev.Store(n+slNext(i), succs[i])
		}
		c.clwb(n) // covers key, value, next[0..4]
		c.fence() // node + allocator metadata durable before visibility
		if !c.linkCached(key, preds[0]+slNext(0), predW, n) {
			c.alloc.Free(n) // never visible
			continue
		}
		// Link the index levels (volatile quality; rebuilt on recovery).
		for level := 1; level <= top; level++ {
			for {
				nextW := dev.Load(n + slNext(level))
				if ptrtag.IsMarked(nextW) {
					// Concurrent delete reached this level; stop linking.
					sl.find(c, key, &preds, &succs) // help complete the unlink
					return true
				}
				if succs[level] != ptrtag.Addr(nextW) {
					if !dev.CAS(n+slNext(level), nextW, succs[level]) {
						continue
					}
				}
				if dev.CAS(preds[level]+slNext(level), succs[level], n) {
					break
				}
				sl.find(c, key, &preds, &succs) // refresh preds/succs
				if succs[0] != n {
					return true // our node was deleted already
				}
			}
		}
		// If a delete marked level 0 while we were linking, make sure the
		// tower is fully snipped before returning (see package discussion of
		// the insert/delete race).
		if ptrtag.IsMarked(dev.Load(n + slNext(0))) {
			sl.find(c, key, &preds, &succs)
		}
		return true
	}
}

// Upsert inserts key→value or durably replaces the value of an existing key
// in place (one word CAS + sync; the value word shares the node's first cache
// line with its level-0 link). Returns true if the key was newly inserted.
func (sl *SkipList) Upsert(c *Ctx, key, value uint64) bool {
	checkKey(key)
	c.ep.Begin()
	defer c.ep.End()
	dev := sl.s.dev
	var preds, succs [MaxLevel]Addr
	for {
		if !sl.find(c, key, &preds, &succs) {
			if sl.insert(c, key, value) {
				return true
			}
			continue // raced with a concurrent insert of the same key
		}
		c.scan(key)
		node := succs[0]
		old := dev.Load(node + slValue)
		if !dev.CAS(node+slValue, old, value) {
			continue
		}
		if ptrtag.IsMarked(dev.Load(node + slNext(0))) {
			continue // deleted concurrently: retry as an insert
		}
		c.f.Sync(node + slValue)
		return false
	}
}

// Delete removes key. Index levels are marked top-down (plain CAS); the
// level-0 mark is the durable linearization point; the subsequent find
// physically unlinks the whole tower, after which the node is retired.
func (sl *SkipList) Delete(c *Ctx, key uint64) (uint64, bool) {
	checkKey(key)
	c.ep.Begin()
	defer c.ep.End()
	dev := sl.s.dev
	var preds, succs [MaxLevel]Addr
	for {
		if !sl.find(c, key, &preds, &succs) {
			c.scan(key)
			c.ensureDurable(preds[0] + slNext(0))
			return 0, false
		}
		c.scan(key)
		node := succs[0]
		top := int(dev.Load(node + slTop))
		// Mark index levels top-down.
		for level := top; level >= 1; level-- {
			for {
				w := dev.Load(node + slNext(level))
				if ptrtag.IsMarked(w) {
					break
				}
				dev.CAS(node+slNext(level), w, w|ptrtag.Mark)
			}
		}
		// Durable linearization: mark level 0 with link-and-persist. The
		// predecessor's adjacent links must be durable first (§3).
		c.scan(dev.Load(preds[0] + slKey))
		c.ensureDurable(preds[0] + slNext(0))
		for {
			w := c.loadClean(node + slNext(0))
			if ptrtag.IsMarked(w) {
				// Another delete won; help unlink and report failure.
				sl.find(c, key, &preds, &succs)
				return 0, false
			}
			c.ep.PreRetire(node)
			if c.linkCached(key, node+slNext(0), w, ptrtag.Addr(w)|ptrtag.Mark) {
				value := dev.Load(node + slValue)
				sl.find(c, key, &preds, &succs) // snip the whole tower
				c.ep.Retire(node)
				return value, true
			}
		}
	}
}

// Len counts live keys via the level-0 chain (quiescent use).
func (sl *SkipList) Len(c *Ctx) int {
	dev := sl.s.dev
	n := 0
	curr := ptrtag.Addr(dev.Load(sl.head + slNext(0)))
	for curr != sl.tail {
		w := dev.Load(curr + slNext(0))
		if !ptrtag.IsMarked(w) {
			n++
		}
		curr = ptrtag.Addr(w)
	}
	return n
}

// Range calls fn in ascending key order (quiescent use).
func (sl *SkipList) Range(c *Ctx, fn func(key, value uint64) bool) {
	dev := sl.s.dev
	curr := ptrtag.Addr(dev.Load(sl.head + slNext(0)))
	for curr != sl.tail {
		w := dev.Load(curr + slNext(0))
		if !ptrtag.IsMarked(w) {
			if !fn(dev.Load(curr+slKey), dev.Load(curr+slValue)) {
				return
			}
		}
		curr = ptrtag.Addr(w)
	}
}

// SeekGE returns the smallest live key >= key, with its value. The seek
// runs inside an epoch section; like Search it makes the links it depends
// on durable before returning.
func (sl *SkipList) SeekGE(c *Ctx, key uint64) (k, v uint64, ok bool) {
	checkKey(key)
	c.ep.Begin()
	defer c.ep.End()
	dev := sl.s.dev
	var preds, succs [MaxLevel]Addr
	sl.find(c, key, &preds, &succs)
	c.scan(key)
	c.ensureDurable(preds[0] + slNext(0))
	curr := succs[0]
	for curr != sl.tail {
		w := dev.Load(curr + slNext(0))
		if !ptrtag.IsMarked(w) {
			c.ensureDurable(curr + slNext(0))
			return dev.Load(curr + slKey), dev.Load(curr + slValue), true
		}
		curr = ptrtag.Addr(w)
	}
	return 0, 0, false
}

// Succ returns the smallest live key strictly greater than key, with its
// value. key may be any value in [MinKey-1, MaxKey]; Succ(MinKey-1) is the
// minimum of the set.
func (sl *SkipList) Succ(c *Ctx, key uint64) (k, v uint64, ok bool) {
	if key >= MaxKey {
		return 0, 0, false
	}
	return sl.SeekGE(c, key+1)
}

// Scan calls fn in ascending key order for every live key in
// [start, end) — end = 0 means "through MaxKey". The scan positions with
// the index levels (SeekGE-style), then walks the level-0 chain inside one
// epoch section, so entries cannot be reclaimed mid-scan; under concurrent
// updates it is not a snapshot. fn must not call operations on the same
// Ctx (epoch sections do not nest).
func (sl *SkipList) Scan(c *Ctx, start, end uint64, fn func(key, value uint64) bool) {
	if start < MinKey {
		start = MinKey
	}
	checkKey(start)
	c.ep.Begin()
	defer c.ep.End()
	dev := sl.s.dev
	var preds, succs [MaxLevel]Addr
	sl.find(c, start, &preds, &succs)
	curr := succs[0]
	for curr != sl.tail {
		w := dev.Load(curr + slNext(0))
		if !ptrtag.IsMarked(w) {
			k := dev.Load(curr + slKey)
			if end != 0 && k >= end {
				return
			}
			if !fn(k, dev.Load(curr+slValue)) {
				return
			}
		}
		curr = ptrtag.Addr(w)
	}
}

// RebuildIndex reconstructs all index levels from the durable level-0 chain.
// Called during recovery (the index is volatile by design); also strips any
// leftover Dirty marks on level-0 links. Quiescent use only.
func (sl *SkipList) RebuildIndex(c *Ctx) {
	dev := sl.s.dev
	var tails [MaxLevel]Addr
	for i := range tails {
		tails[i] = sl.head
	}
	curr := ptrtag.Addr(dev.Load(sl.head + slNext(0)))
	live := 0
	for curr != sl.tail {
		w := dev.Load(curr + slNext(0))
		if !ptrtag.IsMarked(w) {
			top := int(dev.Load(curr + slTop))
			if top > MaxLevel-1 {
				top = MaxLevel - 1
			}
			for i := 1; i <= top; i++ {
				dev.Store(tails[i]+slNext(i), curr)
				tails[i] = curr
			}
			live++
		}
		curr = ptrtag.Addr(w)
	}
	for i := 1; i < MaxLevel; i++ {
		dev.Store(tails[i]+slNext(i), sl.tail)
	}
	_ = live
}
