package core

import "repro/internal/ptrtag"

// Queue is a durable lock-free FIFO queue: Michael-Scott with
// link-and-persist, demonstrating that the paper's techniques generalize
// beyond set structures (§3: "our techniques also apply to other data
// structures"; §7 cites Friedman et al.'s durable queue as the only prior
// lock-free durable structure).
//
// Durable state: the head pointer (dequeue linearization) and the chain of
// next links (each enqueue's linearization is the tail-link CAS). The tail
// pointer is a volatile optimization exactly as in Michael-Scott — it may
// lag arbitrarily — so it needs no write-backs and is recomputed during
// recovery by walking from head.
//
// Descriptor layout (one 64-byte line): head word, tail word. Node layout:
// value, next (64 bytes, class 0; the key word is unused and holds a
// sentinel tag for recovery's benefit).
type Queue struct {
	s    *Store
	desc Addr // descriptor: [0] head, [8] tail
}

const (
	qHead = 0
	qTail = 8

	qNodeVal  = 8
	qNodeNext = 16
	// queueNodeTag marks queue nodes so the recovery sweep can tell them
	// from set nodes sharing the heap (stored in the key word).
	queueNodeTag = ^uint64(0) - 4
)

// NewQueue creates an empty durable queue (one dummy node, MS-style).
func NewQueue(c *Ctx) (*Queue, error) {
	dev := c.s.dev
	dummy, err := c.ep.AllocNode(listClass)
	if err != nil {
		return nil, err
	}
	dev.Store(dummy+nKey, queueNodeTag)
	dev.Store(dummy+qNodeVal, 0)
	dev.Store(dummy+qNodeNext, 0)
	c.clwb(dummy)

	desc, err := c.ep.AllocNode(listClass)
	if err != nil {
		return nil, err
	}
	dev.Store(desc+qHead, dummy)
	dev.Store(desc+qTail, dummy) // volatile field; stored for completeness
	c.clwb(desc)
	c.fence()
	return &Queue{s: c.s, desc: desc}, nil
}

// AttachQueue reopens a queue from its descriptor address. Call
// RecoverQueue after a crash.
func AttachQueue(s *Store, desc Addr) *Queue { return &Queue{s: s, desc: desc} }

// Descriptor returns the durable descriptor address (persist in a root).
func (q *Queue) Descriptor() Addr { return q.desc }

// Enqueue appends value. Durably linearizes at the link-and-persist CAS of
// the last node's next pointer.
func (q *Queue) Enqueue(c *Ctx, value uint64) {
	c.ep.Begin()
	defer c.ep.End()
	dev := q.s.dev
	n, err := c.ep.AllocNode(listClass)
	if err != nil {
		panic(err)
	}
	dev.Store(n+nKey, queueNodeTag)
	dev.Store(n+qNodeVal, value)
	dev.Store(n+qNodeNext, 0)
	c.clwb(n)
	c.fence() // node contents + allocator metadata durable before linking
	for {
		tail := ptrtag.Addr(dev.Load(q.desc + qTail))
		nextW := c.loadClean(tail + qNodeNext)
		next := ptrtag.Addr(nextW)
		if next != 0 {
			// Tail lags; help swing it (volatile store, no write-back).
			dev.CAS(q.desc+qTail, tail, next)
			continue
		}
		// linkCached keys the entry by the node address (queues have no
		// user key); any dependent dequeue scans the same key.
		if c.linkCached(n, tail+qNodeNext, nextW, n) {
			dev.CAS(q.desc+qTail, tail, n) // best-effort volatile swing
			c.scan(n)
			return
		}
	}
}

// Dequeue removes and returns the oldest value. Durably linearizes at the
// link-and-persist CAS of the head pointer.
func (q *Queue) Dequeue(c *Ctx) (uint64, bool) {
	c.ep.Begin()
	defer c.ep.End()
	dev := q.s.dev
	for {
		headW := c.loadClean(q.desc + qHead)
		head := ptrtag.Addr(headW)
		nextW := c.loadClean(head + qNodeNext)
		next := ptrtag.Addr(nextW)
		if next == 0 {
			return 0, false // empty (head is the dummy)
		}
		// The dequeued value lives in the NEW dummy (MS-style).
		value := dev.Load(next + qNodeVal)
		c.scan(next)
		// The old dummy becomes durably unreachable at the head swing.
		c.ep.PreRetire(head)
		if c.linkCached(head, q.desc+qHead, headW, next) {
			// Keep the volatile tail ahead of head.
			tail := ptrtag.Addr(dev.Load(q.desc + qTail))
			if tail == head {
				dev.CAS(q.desc+qTail, tail, next)
			}
			c.ep.Retire(head)
			return value, true
		}
	}
}

// Len counts queued values (quiescent use).
func (q *Queue) Len(c *Ctx) int {
	dev := q.s.dev
	n := 0
	node := ptrtag.Addr(dev.Load(q.desc + qHead))
	for {
		next := ptrtag.Addr(dev.Load(node + qNodeNext))
		if next == 0 {
			return n
		}
		n++
		node = next
	}
}

// Peek returns the oldest value without removing it.
func (q *Queue) Peek(c *Ctx) (uint64, bool) {
	c.ep.Begin()
	defer c.ep.End()
	dev := q.s.dev
	head := ptrtag.Addr(c.loadClean(q.desc + qHead))
	next := ptrtag.Addr(c.loadClean(head + qNodeNext))
	if next == 0 {
		return 0, false
	}
	return dev.Load(next + qNodeVal), true
}

// queueRecover implements the recovery hooks: rebuild the volatile tail,
// then keep exactly the nodes reachable from head (and the descriptor).
type queueRecover struct{ q *Queue }

func (r queueRecover) Prepare(c *Ctx, _ map[Addr]bool) {
	dev := r.q.s.dev
	// Strip a leftover Dirty mark on head and walk to the true tail.
	c.ensureDurable(r.q.desc + qHead)
	node := ptrtag.Addr(dev.Load(r.q.desc + qHead))
	for {
		c.ensureDurable(node + qNodeNext)
		next := ptrtag.Addr(dev.Load(node + qNodeNext))
		if next == 0 {
			break
		}
		node = next
	}
	dev.Store(r.q.desc+qTail, node) // volatile tail
}

func (r queueRecover) Keep(c *Ctx, n Addr) bool {
	dev := r.q.s.dev
	if n == r.q.desc {
		return true
	}
	if dev.Load(n+nKey) != queueNodeTag {
		return false // not a queue node (or never initialized)
	}
	// Reachability: walk from head. Queue sweeps are O(len) per candidate;
	// fine for the queue's target sizes — and only active areas are swept.
	node := ptrtag.Addr(dev.Load(r.q.desc + qHead))
	for {
		if node == n {
			return true
		}
		next := ptrtag.Addr(dev.Load(node + qNodeNext))
		if next == 0 {
			return false
		}
		node = next
	}
}

// Recoverer returns the queue's hook set for RecoverSet composition.
func (q *Queue) Recoverer() Recoverer { return queueRecover{q} }

// RecoverQueue runs the §5.5 recovery procedure for a queue: rebuild the
// volatile tail from the durable chain, then sweep the active areas.
func RecoverQueue(s *Store, q *Queue, par int) RecoveryStats {
	return sweep(s, queueRecover{q}, par)
}
