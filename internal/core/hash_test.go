package core

import (
	"testing"
	"testing/quick"
)

func newTestHash(t *testing.T, s *Store, c *Ctx, buckets int) *HashTable {
	t.Helper()
	h, err := NewHashTable(c, buckets)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHashSemantics(t *testing.T) {
	for _, lc := range []bool{false, true} {
		name := map[bool]string{false: "LP", true: "LC"}[lc]
		t.Run(name, func(t *testing.T) {
			s := newTestStore(t, Options{LinkCache: lc})
			c := s.MustCtx(0)
			h := newTestHash(t, s, c, 16)
			runSetSemantics(t, h, c)
		})
	}
}

func TestHashBucketRounding(t *testing.T) {
	s := newTestStore(t, Options{})
	c := s.MustCtx(0)
	h := newTestHash(t, s, c, 10)
	if h.NumBuckets() != 16 {
		t.Fatalf("NumBuckets = %d, want 16", h.NumBuckets())
	}
}

func TestHashManyKeysAcrossBuckets(t *testing.T) {
	s := newTestStore(t, Options{})
	c := s.MustCtx(0)
	h := newTestHash(t, s, c, 8) // force multi-node buckets
	const n = 2000
	for k := uint64(1); k <= n; k++ {
		if !h.Insert(c, k, k^0xFF) {
			t.Fatalf("insert %d failed", k)
		}
	}
	if got := h.Len(c); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	for k := uint64(1); k <= n; k++ {
		if v, ok := h.Search(c, k); !ok || v != k^0xFF {
			t.Fatalf("Search(%d) = %d,%v", k, v, ok)
		}
	}
	for k := uint64(2); k <= n; k += 2 {
		if _, ok := h.Delete(c, k); !ok {
			t.Fatalf("delete %d failed", k)
		}
	}
	if got := h.Len(c); got != n/2 {
		t.Fatalf("Len after deletes = %d, want %d", got, n/2)
	}
}

func TestHashOracleStress(t *testing.T) {
	for _, lc := range []bool{false, true} {
		name := map[bool]string{false: "LP", true: "LC"}[lc]
		t.Run(name, func(t *testing.T) {
			s := newTestStore(t, Options{LinkCache: lc})
			c := s.MustCtx(0)
			h := newTestHash(t, s, c, 64)
			runOracleStress(t, s, h, 4, 2500)
		})
	}
}

func TestHashContendedStress(t *testing.T) {
	s := newTestStore(t, Options{LinkCache: true})
	c := s.MustCtx(0)
	h := newTestHash(t, s, c, 4)
	runContendedStress(t, s, h, 8, 4000)
}

func TestHashUpsert(t *testing.T) {
	s := newTestStore(t, Options{})
	c := s.MustCtx(0)
	h := newTestHash(t, s, c, 16)
	if !h.Upsert(c, 5, 50) {
		t.Fatal("first upsert should report insert")
	}
	if h.Upsert(c, 5, 51) {
		t.Fatal("second upsert should report replace")
	}
	if v, _ := h.Search(c, 5); v != 51 {
		t.Fatalf("value after upsert = %d, want 51", v)
	}
	// Upsert value replacement must be durable immediately.
	img := crashClone(t, s.Device())
	pool := img // traverse the bucket in the crashed image
	_ = pool
	got := img.Load(findNode(t, img, h, 5) + nValue)
	if got != 51 {
		t.Fatalf("upserted value not durable: %d", got)
	}
}

// findNode walks the (possibly crashed) image's bucket chain for key.
func findNode(t *testing.T, dev interface{ Load(Addr) uint64 }, h *HashTable, key uint64) Addr {
	t.Helper()
	curr := dev.Load(h.bucket(key)+nNext) &^ 7
	for {
		k := dev.Load(curr + nKey)
		if k == ^uint64(0) {
			t.Fatalf("key %d not found in image", key)
		}
		if k == key {
			return curr
		}
		curr = dev.Load(curr+nNext) &^ 7
	}
}

func TestHashAttach(t *testing.T) {
	s := newTestStore(t, Options{})
	c := s.MustCtx(0)
	h := newTestHash(t, s, c, 16)
	h.Insert(c, 77, 770)
	h2 := AttachHashTable(s, h.Buckets(), h.NumBuckets(), h.Tail())
	if v, ok := h2.Search(c, 77); !ok || v != 770 {
		t.Fatalf("attached table Search = %d,%v", v, ok)
	}
}

func TestHashRange(t *testing.T) {
	s := newTestStore(t, Options{})
	c := s.MustCtx(0)
	h := newTestHash(t, s, c, 8)
	for k := uint64(1); k <= 100; k++ {
		h.Insert(c, k, k)
	}
	seen := make(map[uint64]bool)
	h.Range(c, func(k, v uint64) bool {
		seen[k] = true
		return true
	})
	if len(seen) != 100 {
		t.Fatalf("Range visited %d keys, want 100", len(seen))
	}
}

func TestHashUpsertQuick(t *testing.T) {
	s := newTestStore(t, Options{MaxThreads: 1})
	c := s.MustCtx(0)
	h := newTestHash(t, s, c, 32)
	oracle := make(map[uint64]uint64)
	prop := func(kRaw uint16, v uint64, del bool) bool {
		k := uint64(kRaw%64) + 1
		if del {
			_, ok := h.Delete(c, k)
			_, had := oracle[k]
			delete(oracle, k)
			return ok == had
		}
		_, had := oracle[k]
		inserted := h.Upsert(c, k, v)
		oracle[k] = v
		if inserted == had {
			return false // Upsert's return must reflect prior presence
		}
		got, ok := h.Search(c, k)
		return ok && got == v
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}
