package core

import (
	"repro/internal/linkcache"
	"repro/internal/ptrtag"
)

// This file implements the link-and-persist technique (§3) and its link
// cache fast path (§4). The protocol for updating a link word:
//
//  1. The linearizing CAS installs the new value with ptrtag.Dirty set,
//     signaling "this link may not be durable yet".
//  2. The link's cache line is written back and fenced (or, with the link
//     cache enabled, the link is deposited in the cache and the sync is
//     deferred to a dependent operation's Scan).
//  3. The Dirty mark is removed with a second CAS.
//
// Any operation that depends on a marked link may perform steps 2-3 itself
// (helping), so no thread ever blocks on another's write-back.

// ensureDurable makes the link word at a durable if it carries the Dirty
// mark, then removes the mark — the helping path of link-and-persist. If the
// word changes concurrently, the operation that changed it took over
// responsibility for its durability (§3: "if an edge e has changed between
// the time e is read and the time we try to durably write e, then the
// operation that changed e made sure e was durable").
func (c *Ctx) ensureDurable(a Addr) {
	if c.s.opts.Volatile {
		return
	}
	v := c.s.dev.Load(a)
	if !ptrtag.IsDirty(v) {
		return
	}
	c.f.Sync(a)
	c.s.dev.CAS(a, v, v&^ptrtag.Dirty)
}

// loadClean reads the link word at a, first making it durable (and
// mark-free) if needed. Callers use the result as a CAS expectation, which
// is only valid when the Dirty bit is clear.
func (c *Ctx) loadClean(a Addr) uint64 {
	for {
		v := c.s.dev.Load(a)
		if !ptrtag.IsDirty(v) {
			return v
		}
		c.ensureDurable(a)
	}
}

// linkAndPersist atomically replaces old (which must be a clean, Dirty-free
// word — use loadClean) with new at a and guarantees its durability before
// returning: the complete link-and-persist operation of §3. Reports whether
// the CAS succeeded.
func (c *Ctx) linkAndPersist(a Addr, old, new uint64) bool {
	if c.s.opts.Volatile {
		return c.s.dev.CAS(a, old, new)
	}
	if !c.s.dev.CAS(a, old, new|ptrtag.Dirty) {
		return false
	}
	c.f.Sync(a)
	c.s.dev.CAS(a, new|ptrtag.Dirty, new)
	return true
}

// linkCached is linkAndPersist with the link cache fast path (§4): on
// success the link's durability may be deferred to a later dependent
// operation rather than paid here. key identifies the operation for Scan
// lookups. Falls back to plain link-and-persist when the cache is disabled
// or unavailable (best effort).
func (c *Ctx) linkCached(key uint64, a Addr, old, new uint64) bool {
	if c.s.opts.Volatile {
		return c.s.dev.CAS(a, old, new)
	}
	if lc := c.s.lc; lc != nil {
		for attempt := 0; ; attempt++ {
			switch lc.TryLinkAndAdd(key, a, old, new|ptrtag.Dirty) {
			case linkcache.Added:
				// Finalized in the cache; remove the in-flight mark. The link
				// will be written back by a dependent Scan or a flush.
				c.s.dev.CAS(a, new|ptrtag.Dirty, new)
				return true
			case linkcache.CASFailed:
				return false
			}
			if attempt > 0 {
				break
			}
			// NoSpace, almost always a full bucket: flush it — one batched
			// sync covering up to six deposited links, the §4.2 amortization
			// that makes the cache pay off under sustained updates — then
			// retry the deposit once. (Early durability is always safe.)
			lc.FlushBucketOf(c.f, key)
		}
	}
	return c.linkAndPersist(a, old, new)
}

// scan consults the link cache for links pertaining to key, enforcing their
// durability (§4.2: every operation scans for its key; updates also scan
// for the predecessor's key). No-op when the cache is disabled.
func (c *Ctx) scan(key uint64) {
	if c.s.lc != nil && !c.s.opts.Volatile {
		c.s.lc.Scan(c.f, key)
	}
}

// clwb schedules a write-back unless the store is in volatile mode.
func (c *Ctx) clwb(a Addr) {
	if !c.s.opts.Volatile {
		c.f.CLWB(a)
	}
}

// clwbRange schedules write-backs covering [a, a+n) unless the store is in
// volatile mode. The lines share the next fence's single NVRAM pause.
func (c *Ctx) clwbRange(a Addr, n uint64) {
	if !c.s.opts.Volatile {
		c.f.CLWBRange(a, n)
	}
}

// sync is one complete CLWB+Fence unless the store is in volatile mode. Any
// lines already pending join the batch and share the pause.
func (c *Ctx) sync(a Addr) {
	if !c.s.opts.Volatile {
		c.f.Sync(a)
	}
}

// fence completes pending write-backs unless the store is in volatile mode.
func (c *Ctx) fence() {
	if !c.s.opts.Volatile {
		c.f.Fence()
	}
}
