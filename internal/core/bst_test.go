package core

import (
	"testing"

	"repro/internal/nvram"
	"repro/internal/ptrtag"
)

func newTestBST(t *testing.T, s *Store, c *Ctx) *BST {
	t.Helper()
	bt, err := NewBST(c)
	if err != nil {
		t.Fatal(err)
	}
	return bt
}

func TestBSTSemantics(t *testing.T) {
	for _, lc := range []bool{false, true} {
		name := map[bool]string{false: "LP", true: "LC"}[lc]
		t.Run(name, func(t *testing.T) {
			s := newTestStore(t, Options{LinkCache: lc})
			c := s.MustCtx(0)
			bt := newTestBST(t, s, c)
			runSetSemantics(t, bt, c)
		})
	}
}

func TestBSTOrderedRange(t *testing.T) {
	s := newTestStore(t, Options{})
	c := s.MustCtx(0)
	bt := newTestBST(t, s, c)
	// Insert a shuffled sequence.
	for _, k := range []uint64{50, 20, 80, 10, 30, 70, 90, 25, 35, 60, 100} {
		if !bt.Insert(c, k, k*2) {
			t.Fatalf("insert %d failed", k)
		}
	}
	var keys []uint64
	bt.Range(c, func(k, v uint64) bool {
		if v != k*2 {
			t.Fatalf("value for %d = %d", k, v)
		}
		keys = append(keys, k)
		return true
	})
	if len(keys) != 11 {
		t.Fatalf("Range saw %d keys, want 11", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("Range out of order: %v", keys)
		}
	}
}

func TestBSTDeleteRoot(t *testing.T) {
	s := newTestStore(t, Options{})
	c := s.MustCtx(0)
	bt := newTestBST(t, s, c)
	bt.Insert(c, 5, 55)
	if v, ok := bt.Delete(c, 5); !ok || v != 55 {
		t.Fatalf("Delete(5) = %d,%v", v, ok)
	}
	if bt.Len(c) != 0 {
		t.Fatal("tree not empty after deleting only key")
	}
	// The sentinel scaffold must still work.
	bt.Insert(c, 7, 77)
	if !bt.Contains(c, 7) {
		t.Fatal("insert after emptying failed")
	}
}

func TestBSTOracleStress(t *testing.T) {
	for _, lc := range []bool{false, true} {
		name := map[bool]string{false: "LP", true: "LC"}[lc]
		t.Run(name, func(t *testing.T) {
			s := newTestStore(t, Options{LinkCache: lc})
			c := s.MustCtx(0)
			bt := newTestBST(t, s, c)
			runOracleStress(t, s, bt, 4, 2000)
		})
	}
}

func TestBSTContendedStress(t *testing.T) {
	for _, lc := range []bool{false, true} {
		name := map[bool]string{false: "LP", true: "LC"}[lc]
		t.Run(name, func(t *testing.T) {
			s := newTestStore(t, Options{LinkCache: lc})
			c := s.MustCtx(0)
			bt := newTestBST(t, s, c)
			runContendedStress(t, s, bt, 8, 3000)
			// Structural integrity: in-order leaves strictly ascending, no
			// flagged/tagged edges left behind.
			prev := uint64(0)
			bt.Range(c, func(k, v uint64) bool {
				if k <= prev {
					t.Fatalf("in-order violated: %d after %d", k, prev)
				}
				prev = k
				return true
			})
			checkBSTClean(t, s, bt.r)
		})
	}
}

// checkBSTClean verifies no reachable edge carries a flag or tag once
// quiescent (all deletions completed).
func checkBSTClean(t *testing.T, s *Store, n Addr) {
	t.Helper()
	dev := s.Device()
	for _, off := range []Addr{bLeft, bRight} {
		w := dev.Load(n + off)
		a := ptrtag.Addr(w)
		if a == 0 {
			continue
		}
		if ptrtag.IsMarked(w) || ptrtag.IsTagged(w) {
			t.Fatalf("quiescent tree has marked/tagged edge at %#x (w=%#x)", n+off, w)
		}
		checkBSTClean(t, s, a)
	}
}

// TestBSTDurableAfterOps crashes and compares the durable tree with an
// oracle (single-threaded LP mode: every completed op must be reflected).
func TestBSTDurableAfterOps(t *testing.T) {
	dev := nvram.New(nvram.Config{Size: 32 << 20})
	s, _ := NewStore(dev, Options{MaxThreads: 1})
	c := s.MustCtx(0)
	bt := newTestBST(t, s, c)
	oracle := make(map[uint64]uint64)
	for k := uint64(1); k <= 150; k++ {
		bt.Insert(c, k*7%151+1, k)
		oracle[k*7%151+1] = k
	}
	for k := uint64(1); k <= 150; k += 2 {
		key := k*7%151 + 1
		if _, ok := bt.Delete(c, key); ok {
			delete(oracle, key)
		}
	}
	img := crashClone(t, dev)
	got := make(map[uint64]uint64)
	collectBSTLeaves(img, bt.r, got)
	if len(got) != len(oracle) {
		t.Fatalf("durable tree has %d keys, oracle %d", len(got), len(oracle))
	}
	for k, v := range oracle {
		if got[k] != v {
			t.Fatalf("durable key %d = %d, want %d", k, got[k], v)
		}
	}
}

// collectBSTLeaves walks a (possibly crashed) image, honouring flags: a
// flagged edge means the delete linearized, so the leaf below it is dead.
func collectBSTLeaves(dev *nvram.Device, n Addr, out map[uint64]uint64) {
	for _, off := range []Addr{bLeft, bRight} {
		w := dev.Load(n + off)
		a := ptrtag.Addr(w)
		if a == 0 {
			continue
		}
		if dev.Load(a+bLeft) == 0 && ptrtag.Addr(dev.Load(a+bLeft)) == 0 &&
			ptrtag.Addr(dev.Load(a+bRight)) == 0 {
			// leaf
			k := dev.Load(a + bKey)
			if k >= MinKey && k <= MaxKey && !ptrtag.IsMarked(w) {
				out[k] = dev.Load(a + bValue)
			}
			continue
		}
		collectBSTLeaves(dev, a, out)
	}
}

func TestBSTAttach(t *testing.T) {
	s := newTestStore(t, Options{})
	c := s.MustCtx(0)
	bt := newTestBST(t, s, c)
	bt.Insert(c, 42, 420)
	bt2 := AttachBST(s, bt.Root(), bt.Sentinel())
	if v, ok := bt2.Search(c, 42); !ok || v != 420 {
		t.Fatalf("attached BST Search = %d,%v", v, ok)
	}
}
