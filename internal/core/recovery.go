package core

import (
	"sync"
	"time"

	"repro/internal/pmem"
	"repro/internal/ptrtag"
)

// This file implements recovery after a transient failure (§5.5).
//
// The structures need no global consistency repair: a Harris mark, an NM
// flag, or a link-and-persist Dirty mark in the recovered image is a legal
// mid-operation state that subsequent operations help to completion. What
// recovery must do is eliminate persistent memory leaks: objects that are
// allocated but no longer (or not yet) reachable. NV-epochs bounds that
// search to the active memory areas recorded in the durable APT.
//
// Two sweep strategies, as in the paper:
//
//   - search-based (hash table, skip list, BST — structures with fast
//     search): for every allocated object in an active area, search the
//     structure for the object's key and keep the object only if the search
//     lands on that exact address (condition (ii) of §5.5 guards against
//     uninitialized keys). The searches double as helpers: they physically
//     unlink any logically deleted nodes they pass, and in recovery mode
//     the epoch context frees such nodes immediately.
//
//   - traversal-based (linked list — linear search would make the sweep
//     quadratic): traverse the structure once, collecting reachable
//     addresses that fall inside active areas, then free every allocated
//     address in those areas that was not collected (§5.5's second
//     approach, "similar to mark-and-sweep" §6.4).
//
// Both strategies parallelize by partitioning the object list (or, for the
// list, only the final sweep) across recovery contexts; idempotent frees
// (TryFree) make races between recovery workers harmless.

// RecoveryStats reports what a recovery pass did.
type RecoveryStats struct {
	ActiveAreas    int
	ObjectsChecked int
	Leaked         int // allocated-but-unreachable objects freed
	Duration       time.Duration
}

// Recoverer is the per-structure hook set used by the generic sweep. Obtain
// one from a structure's Recoverer method; RecoverSet composes any number of
// them into a single pass over the active areas, which is the only correct
// way to recover a store holding several structures — a lone structure's
// sweep would free its siblings' nodes as leaks.
type Recoverer interface {
	// Prepare restores volatile acceleration state (e.g. the skip list
	// index) and may pre-compute reachability against the active areas.
	// Called once, single-threaded, before any Keep call.
	Prepare(c *Ctx, areaSet map[Addr]bool)
	// Keep reports whether the allocated object at n is a live node of this
	// structure, helping any pending operation it encounters along the way.
	// It must never claim another structure's objects.
	Keep(c *Ctx, n Addr) bool
}

// RecoverSet runs one §5.5 recovery pass for a set of structures sharing a
// store: every allocated object in an active area is kept iff some
// structure's Keep claims it, otherwise it is freed as a persistent leak.
func RecoverSet(s *Store, rs []Recoverer, par int) RecoveryStats {
	start := time.Now()
	if par < 1 {
		par = 1
	}
	if par > s.opts.MaxThreads {
		par = s.opts.MaxThreads
	}
	ctx0 := s.recoveryCtx(0)

	areas := s.mgr.ActiveAreas()
	areaSet := make(map[Addr]bool, len(areas))
	for _, a := range areas {
		areaSet[a] = true
	}
	for _, r := range rs {
		r.Prepare(ctx0, areaSet)
	}

	var objs []Addr
	for _, a := range areas {
		objs = s.mgr.AllocatedInArea(objs, a)
	}
	stats := RecoveryStats{ActiveAreas: len(areas), ObjectsChecked: len(objs)}

	leaked := make([]int, par)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := s.recoveryCtx(w)
			for i := w; i < len(objs); i += par {
				n := objs[i]
				if !s.pool.SlotAllocated(n) {
					continue // freed meanwhile (helping or another worker)
				}
				kept := false
				for _, r := range rs {
					if r.Keep(c, n) {
						kept = true
						break
					}
				}
				if kept {
					continue
				}
				if c.alloc.TryFree(n) {
					leaked[w]++
				}
			}
			if s.lc != nil {
				s.lc.FlushAll(c.f)
			}
			c.f.Fence()
		}(w)
	}
	wg.Wait()
	for _, n := range leaked {
		stats.Leaked += n
	}
	s.endRecovery()
	stats.Duration = time.Since(start)
	return stats
}

// sweep is the single-structure driver, kept for the per-structure Recover
// entry points.
func sweep(s *Store, r Recoverer, par int) RecoveryStats {
	return RecoverSet(s, []Recoverer{r}, par)
}

// recoveryCtx returns (creating if needed) the context for tid with the
// epoch layer in recovery mode.
func (s *Store) recoveryCtx(tid int) *Ctx {
	c := s.CtxFor(tid)
	c.ep.SetRecovery(true)
	return c
}

func (s *Store) endRecovery() {
	s.ForEachCtx(func(c *Ctx) { c.ep.SetRecovery(false) })
}

// --- Hash table -------------------------------------------------------

type hashRecover struct{ h *HashTable }

func (hashRecover) Prepare(*Ctx, map[Addr]bool) {}

func (r hashRecover) Keep(c *Ctx, n Addr) bool {
	h := r.h
	if n == h.tail {
		return true
	}
	key := h.s.nodeKey(n)
	if key == 0 || key == ^uint64(0) {
		return false // only sentinels carry these keys; n is not one of ours
	}
	_, curr, _ := searchFrom(c, h.s, h.bucket(key), key)
	return curr == n
}

// Recoverer returns the table's hook set for RecoverSet composition.
func (h *HashTable) Recoverer() Recoverer { return hashRecover{h} }

// RecoverHashTable sweeps the active areas with per-key searches (§5.5,
// first approach) using par parallel workers.
func RecoverHashTable(s *Store, h *HashTable, par int) RecoveryStats {
	return sweep(s, hashRecover{h}, par)
}

// --- Linked list ------------------------------------------------------

// listRecover implements the traversal-based strategy (§5.5, second
// approach — linear searches would make a search-based sweep quadratic):
// Prepare traverses the list once, snipping logically deleted nodes (freed
// immediately in recovery mode) and collecting the reachable addresses that
// fall inside active areas; Keep is then a set lookup.
type listRecover struct {
	l         *List
	reachable map[Addr]bool
}

func (r *listRecover) Prepare(c *Ctx, areaSet map[Addr]bool) {
	r.reachable = make(map[Addr]bool)
	collectChain(c, r.l.s, r.l.head, areaSet, r.reachable)
}

func (r *listRecover) Keep(c *Ctx, n Addr) bool {
	return n == r.l.head || n == r.l.tail || r.reachable[n]
}

// Recoverer returns the list's hook set for RecoverSet composition.
func (l *List) Recoverer() Recoverer { return &listRecover{l: l} }

// RecoverList recovers a list with the traversal-based strategy: one pass
// collects reachable addresses inside active areas, then the active areas
// are swept against the collected set, in parallel.
func RecoverList(s *Store, l *List, par int) RecoveryStats {
	return sweep(s, l.Recoverer(), par)
}

// collectChain walks one Harris chain from head, quiescently unlinking (and
// immediately freeing) logically deleted nodes, and records the reachable
// addresses that fall inside active areas.
func collectChain(c *Ctx, s *Store, head Addr, areaSet map[Addr]bool, reachable map[Addr]bool) {
	dev := s.dev
	pred := head
	for {
		w := c.loadClean(pred + nNext)
		curr := ptrtag.Addr(w)
		currW := dev.Load(curr + nNext)
		if ptrtag.IsMarked(currW) {
			// Quiescent unlink of a logically deleted node.
			c.ep.PreRetire(curr)
			if c.linkAndPersist(pred+nNext, w, ptrtag.Addr(currW)) {
				c.ep.Retire(curr) // recovery mode: immediate free
			}
			continue
		}
		if areaSet[s.mgr.AreaOf(curr)] {
			reachable[curr] = true
		}
		if s.nodeKey(curr) == ^uint64(0) {
			break
		}
		pred = curr
	}
}

// hashTraversalRecover is the hash table under §5.5's *second* approach:
// one traversal of every bucket collects the reachable set, then Keep is a
// set lookup. Per-key searches (hashRecover) are normally faster — this
// variant exists because the paper describes both and their relative cost
// depends on structure size vs active-area volume.
type hashTraversalRecover struct {
	h         *HashTable
	reachable map[Addr]bool
}

func (r *hashTraversalRecover) Prepare(c *Ctx, areaSet map[Addr]bool) {
	h := r.h
	r.reachable = map[Addr]bool{h.tail: true}
	for i := 0; i <= int(h.mask); i++ {
		collectChain(c, h.s, h.buckets+Addr(i)*64, areaSet, r.reachable)
	}
}

func (r *hashTraversalRecover) Keep(c *Ctx, n Addr) bool { return r.reachable[n] }

// RecoverHashTableTraversal recovers a hash table with the traversal-based
// strategy.
func RecoverHashTableTraversal(s *Store, h *HashTable, par int) RecoveryStats {
	return sweep(s, &hashTraversalRecover{h: h}, par)
}

// --- Skip list --------------------------------------------------------

type skipRecover struct{ sl *SkipList }

func (r skipRecover) Prepare(c *Ctx, _ map[Addr]bool) {
	// The index levels are volatile by design; rebuild them from the
	// durable level-0 chain before any searches run. Logically deleted
	// nodes are excluded, so a later level-0 snip fully unlinks them.
	r.sl.RebuildIndex(c)
}

func (r skipRecover) Keep(c *Ctx, n Addr) bool {
	sl := r.sl
	if n == sl.head || n == sl.tail {
		return true
	}
	key := sl.s.dev.Load(n + slKey)
	if key == 0 || key == ^uint64(0) {
		return false
	}
	var preds, succs [MaxLevel]Addr
	sl.find(c, key, &preds, &succs)
	return succs[0] == n
}

// Recoverer returns the skip list's hook set for RecoverSet composition.
func (sl *SkipList) Recoverer() Recoverer { return skipRecover{sl} }

// RecoverSkipList rebuilds the volatile index from the durable level-0
// chain, then sweeps the active areas with searches.
func RecoverSkipList(s *Store, sl *SkipList, par int) RecoveryStats {
	return sweep(s, skipRecover{sl}, par)
}

// --- BST --------------------------------------------------------------

type bstRecover struct{ t *BST }

func (bstRecover) Prepare(*Ctx, map[Addr]bool) {}

func (r bstRecover) Keep(c *Ctx, n Addr) bool {
	t := r.t
	dev := t.s.dev
	key := dev.Load(n + bKey)
	// Walk the access path for key: every reachable node whose range
	// contains key lies on it — internal nodes, leaves, and sentinels alike.
	var gpEdge, pEdge Addr
	cur := t.r
	for {
		if cur == n {
			break
		}
		left := ptrtag.Addr(dev.Load(cur + bLeft))
		if left == 0 {
			return false // reached a leaf that isn't n
		}
		edge := cur + dir(key, dev.Load(cur+bKey))
		gpEdge, pEdge = pEdge, edge
		cur = ptrtag.Addr(dev.Load(edge))
	}
	// n is reachable. If n is a leaf whose incoming edge carries a durable
	// flag, the deletion linearized before the crash and its owner is gone:
	// complete the splice quiescently and free both removed nodes.
	if pEdge != 0 && gpEdge != 0 && ptrtag.IsMarked(dev.Load(pEdge)) &&
		ptrtag.Addr(dev.Load(n+bLeft)) == 0 {
		r.resolve(c, gpEdge, pEdge, n)
		return false
	}
	return true
}

// resolve completes a crashed deletion: gpEdge → parent, pEdge (flagged) →
// leaf. Swings gpEdge to the sibling (preserving a travelling flag) and
// frees leaf and parent.
func (r bstRecover) resolve(c *Ctx, gpEdge, pEdge Addr, leaf Addr) {
	parent := pEdge &^ 63 // nodes are 64-byte aligned; pEdge = parent+16 or +24
	sibEdge := parent + bLeft
	if sibEdge == pEdge {
		sibEdge = parent + bRight
	}
	sw := c.loadClean(sibEdge)
	gw := c.loadClean(gpEdge)
	if ptrtag.Addr(gw) != parent {
		return // tree changed (another recovery worker resolved it)
	}
	newW := sw &^ (ptrtag.Tag | ptrtag.Dirty)
	if c.linkAndPersist(gpEdge, gw, newW) {
		c.alloc.TryFree(leaf)
		c.alloc.TryFree(parent)
	}
}

// Recoverer returns the BST's hook set for RecoverSet composition.
func (t *BST) Recoverer() Recoverer { return bstRecover{t} }

// RecoverBST sweeps the active areas with access-path checks, completing
// crashed two-phase deletions as it encounters their durable flags.
func RecoverBST(s *Store, t *BST, par int) RecoveryStats {
	return sweep(s, bstRecover{t}, par)
}

// --- Bytes map ----------------------------------------------------------

// bytesRecover keeps a BytesMap's two object populations: class-0 index
// nodes (delegated to the hash table's search-based check) and class ≥ 1
// entry extents (kept iff reachable on the collision chain of their stored
// index key).
type bytesRecover struct{ b *BytesMap }

func (bytesRecover) Prepare(*Ctx, map[Addr]bool) {}

func (r bytesRecover) Keep(c *Ctx, n Addr) bool {
	b := r.b
	cl, ok := b.s.pool.PageClass(pmem.PageOf(n))
	if !ok {
		return true // not a heap page; leave alone
	}
	if cl == 0 {
		return hashRecover{b.idx}.Keep(c, n) // index node
	}
	// Entry extent: reachable iff it is on the collision chain of its
	// stored index key. Condition (ii) of §5.5: an uninitialized or foreign
	// object fails the range check or the chain walk and is not claimed.
	hash := b.s.dev.Load(n + beHash)
	if hash < MinKey || hash > MaxKey {
		return false
	}
	_, curr, _ := searchFrom(c, b.s, b.idx.bucket(hash), hash)
	if b.s.nodeKey(curr) != hash {
		return false
	}
	for e := Addr(b.s.nodeValue(curr)); e != 0; e = b.entryNext(e) {
		if e == n {
			return true
		}
	}
	return false
}

// Recoverer returns the map's hook set for RecoverSet composition.
func (b *BytesMap) Recoverer() Recoverer { return bytesRecover{b} }

// RecoverBytesMap sweeps the active areas for a bytes map: index nodes by
// per-key search, entry extents by collision-chain membership.
func RecoverBytesMap(s *Store, b *BytesMap, par int) RecoveryStats {
	return sweep(s, bytesRecover{b}, par)
}

// --- Custom sweeps ------------------------------------------------------

type customRecover struct {
	p func(*Ctx)
	k func(*Ctx, Addr) bool
}

func (r customRecover) Prepare(c *Ctx, _ map[Addr]bool) {
	if r.p != nil {
		r.p(c)
	}
}

func (r customRecover) Keep(c *Ctx, n Addr) bool { return r.k(c, n) }

// RecoverCustom runs the generic active-area sweep with a caller-supplied
// liveness check, for structures composed outside this package.
func RecoverCustom(s *Store, prepare func(*Ctx), keep func(*Ctx, Addr) bool, par int) RecoveryStats {
	return sweep(s, customRecover{prepare, keep}, par)
}

// KeepHashNode returns the liveness check RecoverHashTable uses for h's
// index nodes, for composition inside RecoverCustom.
func KeepHashNode(h *HashTable) func(*Ctx, Addr) bool {
	return hashRecover{h}.Keep
}
