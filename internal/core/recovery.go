package core

import (
	"sync"
	"time"

	"repro/internal/ptrtag"
)

// This file implements recovery after a transient failure (§5.5).
//
// The structures need no global consistency repair: a Harris mark, an NM
// flag, or a link-and-persist Dirty mark in the recovered image is a legal
// mid-operation state that subsequent operations help to completion. What
// recovery must do is eliminate persistent memory leaks: objects that are
// allocated but no longer (or not yet) reachable. NV-epochs bounds that
// search to the active memory areas recorded in the durable APT.
//
// Two sweep strategies, as in the paper:
//
//   - search-based (hash table, skip list, BST — structures with fast
//     search): for every allocated object in an active area, search the
//     structure for the object's key and keep the object only if the search
//     lands on that exact address (condition (ii) of §5.5 guards against
//     uninitialized keys). The searches double as helpers: they physically
//     unlink any logically deleted nodes they pass, and in recovery mode
//     the epoch context frees such nodes immediately.
//
//   - traversal-based (linked list — linear search would make the sweep
//     quadratic): traverse the structure once, collecting reachable
//     addresses that fall inside active areas, then free every allocated
//     address in those areas that was not collected (§5.5's second
//     approach, "similar to mark-and-sweep" §6.4).
//
// Both strategies parallelize by partitioning the object list (or, for the
// list, only the final sweep) across recovery contexts; idempotent frees
// (TryFree) make races between recovery workers harmless.

// RecoveryStats reports what a recovery pass did.
type RecoveryStats struct {
	ActiveAreas    int
	ObjectsChecked int
	Leaked         int // allocated-but-unreachable objects freed
	Duration       time.Duration
}

// recoverable is the per-structure hook set used by the generic sweep.
type recoverable interface {
	// prepare restores volatile acceleration state (e.g. the skip list
	// index) before any searches run. Called once, single-threaded.
	prepare(c *Ctx)
	// keep reports whether the allocated object at n is a live node of this
	// structure, helping any pending operation it encounters along the way.
	keep(c *Ctx, n Addr) bool
}

// sweep is the shared search-based recovery driver.
func sweep(s *Store, r recoverable, par int) RecoveryStats {
	start := time.Now()
	if par < 1 {
		par = 1
	}
	if par > s.opts.MaxThreads {
		par = s.opts.MaxThreads
	}
	ctx0 := s.recoveryCtx(0)
	r.prepare(ctx0)

	areas := s.mgr.ActiveAreas()
	var objs []Addr
	for _, a := range areas {
		objs = s.mgr.AllocatedInArea(objs, a)
	}
	stats := RecoveryStats{ActiveAreas: len(areas), ObjectsChecked: len(objs)}

	leaked := make([]int, par)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := s.recoveryCtx(w)
			for i := w; i < len(objs); i += par {
				n := objs[i]
				if !s.pool.SlotAllocated(n) {
					continue // freed meanwhile (helping or another worker)
				}
				if r.keep(c, n) {
					continue
				}
				if c.alloc.TryFree(n) {
					leaked[w]++
				}
			}
			if s.lc != nil {
				s.lc.FlushAll(c.f)
			}
			c.f.Fence()
		}(w)
	}
	wg.Wait()
	for _, n := range leaked {
		stats.Leaked += n
	}
	s.endRecovery()
	stats.Duration = time.Since(start)
	return stats
}

// recoveryCtx returns (creating if needed) the context for tid with the
// epoch layer in recovery mode.
func (s *Store) recoveryCtx(tid int) *Ctx {
	c := s.ctxs[tid]
	if c == nil {
		c = s.MustCtx(tid)
	}
	c.ep.SetRecovery(true)
	return c
}

func (s *Store) endRecovery() {
	for _, c := range s.ctxs {
		if c != nil {
			c.ep.SetRecovery(false)
		}
	}
}

// --- Hash table -------------------------------------------------------

type hashRecover struct{ h *HashTable }

func (hashRecover) prepare(*Ctx) {}

func (r hashRecover) keep(c *Ctx, n Addr) bool {
	h := r.h
	if n == h.tail {
		return true
	}
	key := h.s.nodeKey(n)
	if key == 0 || key == ^uint64(0) {
		return false // only sentinels carry these keys; n is not one of ours
	}
	_, curr, _ := searchFrom(c, h.s, h.bucket(key), key)
	return curr == n
}

// RecoverHashTable sweeps the active areas with per-key searches (§5.5,
// first approach) using par parallel workers.
func RecoverHashTable(s *Store, h *HashTable, par int) RecoveryStats {
	return sweep(s, hashRecover{h}, par)
}

// --- Linked list ------------------------------------------------------

// RecoverList recovers a list with the traversal-based strategy (§5.5,
// second approach): one pass collects reachable addresses inside active
// areas (physically unlinking logically deleted nodes as it goes), then the
// active areas are swept against the collected set, in parallel.
func RecoverList(s *Store, l *List, par int) RecoveryStats {
	start := time.Now()
	if par < 1 {
		par = 1
	}
	if par > s.opts.MaxThreads {
		par = s.opts.MaxThreads
	}
	c0 := s.recoveryCtx(0)

	areas := s.mgr.ActiveAreas()
	areaSet := make(map[Addr]bool, len(areas))
	for _, a := range areas {
		areaSet[a] = true
	}
	var objs []Addr
	for _, a := range areas {
		objs = s.mgr.AllocatedInArea(objs, a)
	}
	stats := RecoveryStats{ActiveAreas: len(areas), ObjectsChecked: len(objs)}

	// Phase 1: traverse once, snipping marked nodes (freed immediately in
	// recovery mode) and collecting reachable addresses in active areas.
	reachable := make(map[Addr]bool)
	collectChain(c0, s, l.head, areaSet, reachable)

	// Phase 2: parallel sweep against the reachable set.
	leaked := make([]int, par)
	var wg sync.WaitGroup
	for wk := 0; wk < par; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			c := s.recoveryCtx(wk)
			for i := wk; i < len(objs); i += par {
				n := objs[i]
				if n == l.head || n == l.tail || reachable[n] {
					continue
				}
				if !s.pool.SlotAllocated(n) {
					continue
				}
				if c.alloc.TryFree(n) {
					leaked[wk]++
				}
			}
			c.f.Fence()
		}(wk)
	}
	wg.Wait()
	for _, n := range leaked {
		stats.Leaked += n
	}
	if s.lc != nil {
		s.lc.FlushAll(c0.f)
		c0.f.Fence()
	}
	s.endRecovery()
	stats.Duration = time.Since(start)
	return stats
}

// collectChain walks one Harris chain from head, quiescently unlinking (and
// immediately freeing) logically deleted nodes, and records the reachable
// addresses that fall inside active areas.
func collectChain(c *Ctx, s *Store, head Addr, areaSet map[Addr]bool, reachable map[Addr]bool) {
	dev := s.dev
	pred := head
	for {
		w := c.loadClean(pred + nNext)
		curr := ptrtag.Addr(w)
		currW := dev.Load(curr + nNext)
		if ptrtag.IsMarked(currW) {
			// Quiescent unlink of a logically deleted node.
			c.ep.PreRetire(curr)
			if c.linkAndPersist(pred+nNext, w, ptrtag.Addr(currW)) {
				c.ep.Retire(curr) // recovery mode: immediate free
			}
			continue
		}
		if areaSet[s.mgr.AreaOf(curr)] {
			reachable[curr] = true
		}
		if s.nodeKey(curr) == ^uint64(0) {
			break
		}
		pred = curr
	}
}

// RecoverHashTableTraversal is the hash table under §5.5's *second*
// approach: one traversal of every bucket collects the reachable set, then
// the active areas are swept against it. RecoverHashTable (per-key
// searches) is normally faster — this variant exists because the paper
// describes both and their relative cost depends on structure size vs
// active-area volume ("the efficiency of each method depends on the size of
// the data structure ... and the size of the memory space that needs to be
// verified").
func RecoverHashTableTraversal(s *Store, h *HashTable, par int) RecoveryStats {
	start := time.Now()
	if par < 1 {
		par = 1
	}
	if par > s.opts.MaxThreads {
		par = s.opts.MaxThreads
	}
	c0 := s.recoveryCtx(0)

	areas := s.mgr.ActiveAreas()
	areaSet := make(map[Addr]bool, len(areas))
	for _, a := range areas {
		areaSet[a] = true
	}
	var objs []Addr
	for _, a := range areas {
		objs = s.mgr.AllocatedInArea(objs, a)
	}
	stats := RecoveryStats{ActiveAreas: len(areas), ObjectsChecked: len(objs)}

	reachable := make(map[Addr]bool)
	reachable[h.tail] = true
	for i := 0; i <= int(h.mask); i++ {
		collectChain(c0, s, h.buckets+Addr(i)*64, areaSet, reachable)
	}

	leaked := make([]int, par)
	var wg sync.WaitGroup
	for wk := 0; wk < par; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			c := s.recoveryCtx(wk)
			for i := wk; i < len(objs); i += par {
				n := objs[i]
				if n == h.tail || reachable[n] || !s.pool.SlotAllocated(n) {
					continue
				}
				if c.alloc.TryFree(n) {
					leaked[wk]++
				}
			}
			c.f.Fence()
		}(wk)
	}
	wg.Wait()
	for _, n := range leaked {
		stats.Leaked += n
	}
	if s.lc != nil {
		s.lc.FlushAll(c0.f)
		c0.f.Fence()
	}
	s.endRecovery()
	stats.Duration = time.Since(start)
	return stats
}

// --- Skip list --------------------------------------------------------

type skipRecover struct{ sl *SkipList }

func (r skipRecover) prepare(c *Ctx) {
	// The index levels are volatile by design; rebuild them from the
	// durable level-0 chain before any searches run. Logically deleted
	// nodes are excluded, so a later level-0 snip fully unlinks them.
	r.sl.RebuildIndex(c)
}

func (r skipRecover) keep(c *Ctx, n Addr) bool {
	sl := r.sl
	if n == sl.head || n == sl.tail {
		return true
	}
	key := sl.s.dev.Load(n + slKey)
	if key == 0 || key == ^uint64(0) {
		return false
	}
	var preds, succs [MaxLevel]Addr
	sl.find(c, key, &preds, &succs)
	return succs[0] == n
}

// RecoverSkipList rebuilds the volatile index from the durable level-0
// chain, then sweeps the active areas with searches.
func RecoverSkipList(s *Store, sl *SkipList, par int) RecoveryStats {
	return sweep(s, skipRecover{sl}, par)
}

// --- BST --------------------------------------------------------------

type bstRecover struct{ t *BST }

func (bstRecover) prepare(*Ctx) {}

func (r bstRecover) keep(c *Ctx, n Addr) bool {
	t := r.t
	dev := t.s.dev
	key := dev.Load(n + bKey)
	// Walk the access path for key: every reachable node whose range
	// contains key lies on it — internal nodes, leaves, and sentinels alike.
	var gpEdge, pEdge Addr
	cur := t.r
	for {
		if cur == n {
			break
		}
		left := ptrtag.Addr(dev.Load(cur + bLeft))
		if left == 0 {
			return false // reached a leaf that isn't n
		}
		edge := cur + dir(key, dev.Load(cur+bKey))
		gpEdge, pEdge = pEdge, edge
		cur = ptrtag.Addr(dev.Load(edge))
	}
	// n is reachable. If n is a leaf whose incoming edge carries a durable
	// flag, the deletion linearized before the crash and its owner is gone:
	// complete the splice quiescently and free both removed nodes.
	if pEdge != 0 && gpEdge != 0 && ptrtag.IsMarked(dev.Load(pEdge)) &&
		ptrtag.Addr(dev.Load(n+bLeft)) == 0 {
		r.resolve(c, gpEdge, pEdge, n)
		return false
	}
	return true
}

// resolve completes a crashed deletion: gpEdge → parent, pEdge (flagged) →
// leaf. Swings gpEdge to the sibling (preserving a travelling flag) and
// frees leaf and parent.
func (r bstRecover) resolve(c *Ctx, gpEdge, pEdge Addr, leaf Addr) {
	parent := pEdge &^ 63 // nodes are 64-byte aligned; pEdge = parent+16 or +24
	sibEdge := parent + bLeft
	if sibEdge == pEdge {
		sibEdge = parent + bRight
	}
	sw := c.loadClean(sibEdge)
	gw := c.loadClean(gpEdge)
	if ptrtag.Addr(gw) != parent {
		return // tree changed (another recovery worker resolved it)
	}
	newW := sw &^ (ptrtag.Tag | ptrtag.Dirty)
	if c.linkAndPersist(gpEdge, gw, newW) {
		c.alloc.TryFree(leaf)
		c.alloc.TryFree(parent)
	}
}

// RecoverBST sweeps the active areas with access-path checks, completing
// crashed two-phase deletions as it encounters their durable flags.
func RecoverBST(s *Store, t *BST, par int) RecoveryStats {
	return sweep(s, bstRecover{t}, par)
}

// --- Custom sweeps ------------------------------------------------------

type customRecover struct {
	p func(*Ctx)
	k func(*Ctx, Addr) bool
}

func (r customRecover) prepare(c *Ctx) {
	if r.p != nil {
		r.p(c)
	}
}

func (r customRecover) keep(c *Ctx, n Addr) bool { return r.k(c, n) }

// RecoverCustom runs the generic active-area sweep with a caller-supplied
// liveness check. NV-Memcached uses it: its active areas hold both hash
// index nodes and cache items, distinguished by slab class.
func RecoverCustom(s *Store, prepare func(*Ctx), keep func(*Ctx, Addr) bool, par int) RecoveryStats {
	return sweep(s, customRecover{prepare, keep}, par)
}

// KeepHashNode returns the liveness check RecoverHashTable uses for h's
// index nodes, for composition inside RecoverCustom.
func KeepHashNode(h *HashTable) func(*Ctx, Addr) bool {
	return hashRecover{h}.keep
}
