package core

import (
	"bytes"
	"sort"

	"repro/internal/ptrtag"
)

// This file implements amortized-fence batch application for the two byte-key
// maps. A single Set pays two sync waits: one fence for its content batch
// (entry extent + index node + allocator metadata lines) and one for the
// publishing link. ApplyBatch shares the first across a whole group of
// operations:
//
//	phase 1  write every op's entry extent (and, for fresh keys, its index
//	         node) with write-backs scheduled but NOT fenced, planning each
//	         op's publish point against the current durable state plus the
//	         group's own earlier planned nodes;
//	phase 2  ONE fence makes every pending content line durable together
//	         (the paper's one-pause-per-batch latency model, §6.1);
//	phase 3  publish each op in order with its single linearizing sync.
//
// N sets therefore cost ~N+1 sync waits instead of 2N (enforced by
// fencebudget_test.go). Batches are NOT transactions: each op publishes
// through its own atomic durable point, in batch order, so a crash leaves a
// per-op prefix of the batch (plus at most the in-flight op's own atomic
// before/after ambiguity) — the same durable linearizability every single op
// already has, never a torn multi-op state.
//
// Correctness hinges on the stripe locks: the group locks the stripes of all
// its index hashes up front (sorted, deduplicated — single ops take one
// stripe and batches acquire in order, so there is no deadlock), which
// freezes the publish points planned in phase 1: no concurrent operation can
// touch any group key's chain, index node or skip-list membership. Bucket and
// skip-list *neighbourhoods* may still shift under concurrent different-hash
// traffic; publishes revalidate with the standard retry loops and, only when
// a planned successor really moved, restore the contents-before-reachability
// ordering with one extra sync. Ops whose index hash repeats within a batch
// split it into sequential groups, so planning never has to model two
// lifecycle changes of one chain.

// BytesOp is one operation of a byte-map batch: a durable upsert of Key
// (with the entry's metadata field and aux word), or, with Del set, a
// durable delete of Key.
type BytesOp struct {
	Del   bool
	Key   []byte
	Value []byte
	Meta  uint16
	Aux   uint64
}

// validateBytesOps applies the single-op argument checks to a whole batch
// before anything mutates, so a malformed op cannot abort a half-applied
// group.
func validateBytesOps(ops []BytesOp) error {
	for i := range ops {
		op := &ops[i]
		if len(op.Key) == 0 || len(op.Key) > MaxBytesKeyLen {
			return ErrBadKey
		}
		if !op.Del && beData+len(op.Key)+len(op.Value) > MaxBytesEntrySize {
			return ErrTooLarge
		}
	}
	return nil
}

// batchGroups yields [start,end) ranges of ops whose index hashes are
// pairwise distinct; a repeated hash starts a new group.
func batchGroups(hashes []uint64, fn func(start, end int) error) error {
	start := 0
	seen := make(map[uint64]struct{}, len(hashes))
	for i, h := range hashes {
		if _, dup := seen[h]; dup {
			if err := fn(start, i); err != nil {
				return err
			}
			start = i
			clear(seen)
		}
		seen[h] = struct{}{}
	}
	if start < len(hashes) {
		return fn(start, len(hashes))
	}
	return nil
}

// lockStripes locks the distinct stripe locks of hashes in ascending index
// order and returns an unlock function. Single operations lock exactly one
// stripe, so ordered multi-acquisition cannot deadlock against them or
// against another batch.
func (s *Store) lockStripes(hashes []uint64) (unlock func()) {
	idx := make([]int, 0, len(hashes))
	for _, h := range hashes {
		idx = append(idx, int(h%uint64(len(s.bytesLocks))))
	}
	sort.Ints(idx)
	n := 0
	for i, v := range idx {
		if i == 0 || v != idx[i-1] {
			idx[n] = v
			n++
		}
	}
	idx = idx[:n]
	for _, v := range idx {
		s.bytesLocks[v].Lock()
	}
	return func() {
		for _, v := range idx {
			s.bytesLocks[v].Unlock()
		}
	}
}

// --- Hash-indexed map -----------------------------------------------------

type bytesPlanKind uint8

const (
	bytesPlanDelete bytesPlanKind = iota
	bytesPlanFresh                // new index key: link a planned index node
	bytesPlanSwing                // prepend or head replace: swing the index node's value word
	bytesPlanMid                  // mid-chain replace: swing the predecessor entry's next word
)

type bytesPlan struct {
	kind     bytesPlanKind
	e        Addr   // new entry extent (sets)
	n        Addr   // planned index node (fresh) — or the existing node (swing)
	old      uint64 // expected index-node value word (swing)
	pred     Addr   // predecessor entry (mid)
	replaced Addr   // replaced entry to retire (swing/mid; 0 for prepends)
	next     Addr   // planned bucket successor (fresh)
}

// ApplyBatch applies ops in order with one shared content fence per group
// (see the file comment for the phase structure and crash semantics). On
// error the failing group's unpublished allocations are released and the
// batch stops: earlier groups — and earlier *published* ops never exist,
// publishes only start once the whole group is staged — remain applied.
func (b *BytesMap) ApplyBatch(c *Ctx, ops []BytesOp) error {
	if err := validateBytesOps(ops); err != nil {
		return err
	}
	hashes := make([]uint64, len(ops))
	for i := range ops {
		hashes[i] = bytesHash(ops[i].Key)
	}
	return batchGroups(hashes, func(start, end int) error {
		return b.applyGroup(c, ops[start:end], hashes[start:end])
	})
}

func (b *BytesMap) applyGroup(c *Ctx, ops []BytesOp, hashes []uint64) error {
	unlock := b.s.lockStripes(hashes)
	defer unlock()
	c.ep.Begin()
	defer c.ep.End()
	dev := b.s.dev

	plans := make([]bytesPlan, len(ops))
	// freshInBucket tracks the group's planned fresh index nodes per bucket,
	// so later plans can aim at nodes that will exist by their publish turn.
	var freshInBucket map[Addr][]int
	release := func(upto int) {
		for i := 0; i < upto; i++ {
			if p := &plans[i]; !ops[i].Del {
				if p.e != 0 {
					c.alloc.Free(p.e)
				}
				if p.kind == bytesPlanFresh && p.n != 0 {
					c.alloc.Free(p.n)
				}
			}
		}
	}

	// Phase 1: stage entries and plan publish points.
	for i := range ops {
		hash := hashes[i]
		p := &plans[i]
		if ops[i].Del {
			p.kind = bytesPlanDelete
			continue
		}
		bucket := b.idx.bucket(hash)
		_, curr, _ := searchFrom(c, b.s, bucket, hash)
		exists := b.s.nodeKey(curr) == hash
		var head, replaced, predE Addr
		if exists {
			head = Addr(b.s.nodeValue(curr))
			replaced, predE = b.findInChain(head, ops[i].Key)
		}
		next := head
		if replaced != 0 {
			next = b.entryNext(replaced)
		}
		e, err := writeBytesEntry(c, hash, ops[i].Key, ops[i].Value, ops[i].Meta, ops[i].Aux, next)
		if err != nil {
			release(i)
			return err
		}
		p.e = e
		switch {
		case !exists:
			// Plan the bucket successor against live state plus the group's
			// earlier planned nodes in this bucket: the smallest planned hash
			// in (hash, key(curr)) will have been linked before this op's
			// publish turn.
			succ := curr
			succKey := b.s.nodeKey(curr)
			for _, j := range freshInBucket[bucket] {
				if hj := hashes[j]; hj > hash && hj < succKey {
					succ, succKey = plans[j].n, hj
				}
			}
			n, err := c.ep.AllocNode(listClass)
			if err != nil {
				c.alloc.Free(e)
				release(i)
				return err
			}
			dev.StorePrivate(n+nKey, hash)
			dev.StorePrivate(n+nValue, uint64(e))
			dev.StorePrivate(n+nNext, uint64(succ))
			c.clwb(n)
			p.kind, p.n, p.next = bytesPlanFresh, n, succ
			if freshInBucket == nil {
				freshInBucket = make(map[Addr][]int)
			}
			freshInBucket[bucket] = append(freshInBucket[bucket], i)
		case predE == 0:
			// Prepend (replaced == 0) or head replace: either way the index
			// node's value word swings from the current head to e.
			p.kind, p.n, p.old, p.replaced = bytesPlanSwing, curr, uint64(head), replaced
		default:
			p.kind, p.pred, p.replaced = bytesPlanMid, predE, replaced
		}
	}

	// Phase 2: one pause covers every staged entry, index node and allocator
	// metadata line.
	c.fence()

	// Phase 3: publish in op order — each publish is its own fenced
	// linearization, so batch order is durability order (prefix semantics).
	for i := range ops {
		hash := hashes[i]
		switch p := &plans[i]; p.kind {
		case bytesPlanDelete:
			b.deleteLocked(c, ops[i].Key, hash)
		case bytesPlanFresh:
			b.publishFresh(c, hash, p)
		case bytesPlanSwing:
			if p.replaced != 0 {
				c.ep.PreRetire(p.replaced)
			}
			c.scan(hash)
			if dev.CAS(p.n+nValue, p.old, uint64(p.e)) {
				c.sync(p.n + nValue)
			} else {
				// Unreachable while the stripe is held; fall back to the
				// general upsert rather than trusting the plan.
				listUpsert(c, b.s, b.idx.bucket(hash), hash, uint64(p.e))
			}
			if p.replaced != 0 {
				c.ep.Retire(p.replaced)
			}
		case bytesPlanMid:
			c.ep.PreRetire(p.replaced)
			dev.Store(p.pred+beNext, uint64(p.e))
			c.sync(p.pred + beNext)
			c.ep.Retire(p.replaced)
		}
	}
	return nil
}

// publishFresh links a staged index node into its bucket with the standard
// insert retry loop. The node's contents (including its planned next link)
// are already durable from the group fence; only if the bucket moved since
// planning does the next link need one extra sync before the linearizing
// link-and-persist — a concurrent reader may help-persist the link the
// moment the CAS lands, so the node must be entirely durable first (§3).
func (b *BytesMap) publishFresh(c *Ctx, hash uint64, p *bytesPlan) {
	s := b.s
	dev := s.dev
	bucket := b.idx.bucket(hash)
	for {
		pred, curr, inPred := searchFrom(c, s, bucket, hash)
		c.scan(hash)
		if s.nodeKey(curr) == hash {
			// Unreachable while the stripe is held (no other op can create
			// this index key); defensive: publish through the value word and
			// drop the never-visible planned node.
			listUpsert(c, s, bucket, hash, uint64(p.e))
			c.alloc.Free(p.n)
			return
		}
		if inPred != 0 {
			c.ensureDurable(inPred)
			c.scan(s.nodeKey(pred))
		}
		predW := c.loadClean(pred + nNext)
		if ptrtag.Addr(predW) != curr || ptrtag.IsMarked(predW) {
			continue
		}
		if curr != p.next {
			dev.Store(p.n+nNext, uint64(curr))
			c.sync(p.n + nNext)
			p.next = curr
		}
		if c.linkCached(hash, pred+nNext, predW, uint64(p.n)) {
			return
		}
	}
}

// --- Ordered map ----------------------------------------------------------

type orderedPlanKind uint8

const (
	orderedPlanDelete  orderedPlanKind = iota
	orderedPlanFresh                   // link a staged node into the skip list
	orderedPlanReplace                 // swing an existing node's entry reference
)

type orderedPlan struct {
	kind  orderedPlanKind
	e     Addr // new entry extent (sets)
	n     Addr // staged node (fresh) — or the existing node (replace)
	top   int
	succ0 Addr // planned level-0 successor (fresh)
	preds [MaxLevel]Addr
	succs [MaxLevel]Addr
}

// ApplyBatch applies ops in order with one shared content fence per group;
// see BytesMap.ApplyBatch for the phase structure and crash semantics.
func (o *OrderedBytesMap) ApplyBatch(c *Ctx, ops []BytesOp) error {
	if err := validateBytesOps(ops); err != nil {
		return err
	}
	hashes := make([]uint64, len(ops))
	for i := range ops {
		hashes[i] = bytesHash(ops[i].Key)
	}
	return batchGroups(hashes, func(start, end int) error {
		return o.applyGroup(c, ops[start:end], hashes[start:end])
	})
}

func (o *OrderedBytesMap) applyGroup(c *Ctx, ops []BytesOp, hashes []uint64) error {
	unlock := o.s.lockStripes(hashes)
	defer unlock()
	c.ep.Begin()
	defer c.ep.End()
	dev := o.s.dev

	plans := make([]orderedPlan, len(ops))
	var fresh []int // indices of earlier fresh plans, for successor planning
	release := func(upto int) {
		for i := 0; i < upto; i++ {
			if p := &plans[i]; !ops[i].Del {
				if p.e != 0 {
					c.alloc.Free(p.e)
				}
				if p.kind == orderedPlanFresh && p.n != 0 {
					c.alloc.Free(p.n)
				}
			}
		}
	}

	// Phase 1: stage entries and nodes.
	for i := range ops {
		hash := hashes[i]
		key := ops[i].Key
		p := &plans[i]
		if ops[i].Del {
			p.kind = orderedPlanDelete
			continue
		}
		if o.find(c, key, &p.preds, &p.succs) {
			node := p.succs[0]
			c.scan(hash)
			c.ensureDurable(p.preds[0] + oNext(0))
			c.ensureDurable(node + oNext(0))
			e, err := writeBytesEntry(c, hash, key, ops[i].Value, ops[i].Meta, ops[i].Aux, 0)
			if err != nil {
				release(i)
				return err
			}
			p.kind, p.e, p.n = orderedPlanReplace, e, node
			continue
		}
		e, err := writeBytesEntry(c, hash, key, ops[i].Value, ops[i].Meta, ops[i].Aux, 0)
		if err != nil {
			release(i)
			return err
		}
		top := c.randomLevel()
		if int(o.hint.Load()) < top {
			o.bumpHint(top)
			o.find(c, key, &p.preds, &p.succs)
		}
		n, err := c.ep.AllocNode(oClassFor(top))
		if err != nil {
			c.alloc.Free(e)
			release(i)
			return err
		}
		// Plan the level-0 successor against live state plus the group's
		// earlier staged nodes: the smallest staged key in (key, key(succ))
		// will have been linked before this op's publish turn.
		succ0 := p.succs[0]
		var bestKey []byte
		for _, j := range fresh {
			kj := ops[j].Key
			if bytes.Compare(kj, key) > 0 && o.cmpNode(p.succs[0], kj) > 0 {
				if bestKey == nil || bytes.Compare(kj, bestKey) < 0 {
					bestKey, succ0 = kj, plans[j].n
				}
			}
		}
		dev.StorePrivate(n+oEntry, uint64(e))
		dev.StorePrivate(n+oTop, uint64(top))
		for level := 0; level <= top; level++ {
			dev.StorePrivate(n+oNext(level), p.succs[level])
		}
		dev.StorePrivate(n+oNext(0), succ0)
		c.clwb(n) // covers entry, top, next[0..5]
		p.kind, p.e, p.n, p.top, p.succ0 = orderedPlanFresh, e, n, top, succ0
		fresh = append(fresh, i)
	}

	// Phase 2: one pause for the whole group's content lines.
	c.fence()

	// Phase 3: publish in op order.
	for i := range ops {
		hash := hashes[i]
		key := ops[i].Key
		switch p := &plans[i]; p.kind {
		case orderedPlanDelete:
			o.deleteLocked(c, key, hash)
		case orderedPlanReplace:
			old := o.nodeEntry(p.n)
			c.ep.PreRetire(old)
			dev.Store(p.n+oEntry, uint64(p.e))
			c.sync(p.n + oEntry)
			c.ep.Retire(old)
		case orderedPlanFresh:
			o.publishFresh(c, hash, key, p)
		}
	}
	return nil
}

// publishFresh links a staged skip-list node at level 0 (the durable
// linearization) and then its index levels. The node is already durable from
// the group fence; only if its planned successor moved does the level-0 link
// need one extra sync before the linearizing link-and-persist.
func (o *OrderedBytesMap) publishFresh(c *Ctx, hash uint64, key []byte, p *orderedPlan) {
	dev := o.s.dev
	for {
		c.scan(hash)
		c.scan(o.nodeHash(p.preds[0]))
		predW := c.loadClean(p.preds[0] + oNext(0))
		if ptrtag.Addr(predW) != p.succ0 || ptrtag.IsMarked(predW) {
			o.find(c, key, &p.preds, &p.succs)
			if p.succs[0] != p.succ0 {
				dev.Store(p.n+oNext(0), p.succs[0])
				c.sync(p.n + oNext(0))
				p.succ0 = p.succs[0]
			}
			continue
		}
		if c.linkCached(hash, p.preds[0]+oNext(0), predW, p.n) {
			break
		}
		o.find(c, key, &p.preds, &p.succs)
		if p.succs[0] != p.succ0 {
			dev.Store(p.n+oNext(0), p.succs[0])
			c.sync(p.n + oNext(0))
			p.succ0 = p.succs[0]
		}
	}
	o.linkTower(c, key, p.n, p.top, &p.preds, &p.succs)
}
