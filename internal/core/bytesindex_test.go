package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func newTestOrdered(t *testing.T, s *Store, c *Ctx) *OrderedBytesMap {
	t.Helper()
	o, err := NewOrderedBytesMap(c)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestOrderedBytesMapBasics(t *testing.T) {
	s := newTestStore(t, Options{})
	c := s.MustCtx(0)
	o := newTestOrdered(t, s, c)
	if created, err := o.Set(c, []byte("k1"), []byte("v1"), 3, 77); err != nil || !created {
		t.Fatalf("Set = %v,%v", created, err)
	}
	v, meta, aux, ok := o.GetItem(c, []byte("k1"))
	if !ok || string(v) != "v1" || meta != 3 || aux != 77 {
		t.Fatalf("GetItem = %q,%d,%d,%v", v, meta, aux, ok)
	}
	if created, err := o.Set(c, []byte("k1"), []byte("longer value 1"), 4, 78); err != nil || created {
		t.Fatalf("replacing Set = %v,%v", created, err)
	}
	if v, _ := o.Get(c, []byte("k1")); string(v) != "longer value 1" {
		t.Fatalf("after replace: %q", v)
	}
	if !o.SetAux(c, []byte("k1"), 123) {
		t.Fatal("SetAux failed")
	}
	if _, _, aux, _ := o.GetItem(c, []byte("k1")); aux != 123 {
		t.Fatalf("aux = %d", aux)
	}
	if o.Len(c) != 1 {
		t.Fatalf("Len = %d", o.Len(c))
	}
	if !o.Delete(c, []byte("k1")) || o.Delete(c, []byte("k1")) {
		t.Fatal("delete semantics broken")
	}
	if o.Contains(c, []byte("k1")) {
		t.Fatal("deleted key present")
	}
	if _, err := o.Set(c, nil, []byte("v"), 0, 0); !errors.Is(err, ErrBadKey) {
		t.Fatalf("empty key: %v", err)
	}
	if _, err := o.Set(c, []byte("k"), make([]byte, 4096), 0, 0); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("huge value: %v", err)
	}
}

// orderedKeys collects an Ascend pass and asserts strict ascending order.
func orderedKeys(t *testing.T, o *OrderedBytesMap, c *Ctx) []string {
	t.Helper()
	var keys []string
	var prev []byte
	o.Ascend(c, func(k, _ []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("scan out of order: %q then %q", prev, k)
		}
		prev = append([]byte(nil), k...)
		keys = append(keys, string(k))
		return true
	})
	return keys
}

func TestOrderedBytesMapOrderAndScan(t *testing.T) {
	s := newTestStore(t, Options{})
	c := s.MustCtx(0)
	o := newTestOrdered(t, s, c)

	// Shuffled insert of keys with shared prefixes and mixed lengths.
	want := []string{"a", "aa", "ab", "abc", "ac", "b", "b\x00", "ba", "z", "zz"}
	perm := rand.New(rand.NewSource(7)).Perm(len(want))
	for _, i := range perm {
		if _, err := o.Set(c, []byte(want[i]), []byte("v:"+want[i]), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	got := orderedKeys(t, o, c)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Ascend = %v, want %v", got, want)
	}

	// Scan bounds: [aa, b) — start inclusive, end exclusive, shared-prefix
	// keys ordered bytewise.
	var got2 []string
	o.Scan(c, []byte("aa"), []byte("b"), func(k, v []byte) bool {
		if string(v) != "v:"+string(k) {
			t.Fatalf("value mismatch for %q: %q", k, v)
		}
		got2 = append(got2, string(k))
		return true
	})
	if fmt.Sprint(got2) != fmt.Sprint([]string{"aa", "ab", "abc", "ac"}) {
		t.Fatalf("Scan[aa,b) = %v", got2)
	}

	// Start between keys; open end.
	got2 = nil
	o.Scan(c, []byte("b\x00\x00"), nil, func(k, _ []byte) bool {
		got2 = append(got2, string(k))
		return true
	})
	if fmt.Sprint(got2) != fmt.Sprint([]string{"ba", "z", "zz"}) {
		t.Fatalf("Scan[b\\0\\0,∞) = %v", got2)
	}

	// Early stop.
	n := 0
	o.Scan(c, nil, nil, func(_, _ []byte) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}

	if k, v, ok := o.Min(c); !ok || string(k) != "a" || string(v) != "v:a" {
		t.Fatalf("Min = %q,%q,%v", k, v, ok)
	}
	if k, v, ok := o.Max(c); !ok || string(k) != "zz" || string(v) != "v:zz" {
		t.Fatalf("Max = %q,%q,%v", k, v, ok)
	}

	var desc []string
	o.Descend(c, func(k, _ []byte) bool { desc = append(desc, string(k)); return true })
	for i, j := 0, len(desc)-1; i < j; i, j = i+1, j-1 {
		desc[i], desc[j] = desc[j], desc[i]
	}
	if fmt.Sprint(desc) != fmt.Sprint(want) {
		t.Fatalf("Descend (reversed) = %v", desc)
	}

	// Delete min and max; Min/Max move inward.
	o.Delete(c, []byte("a"))
	o.Delete(c, []byte("zz"))
	if k, _, _ := o.Min(c); string(k) != "aa" {
		t.Fatalf("Min after delete = %q", k)
	}
	if k, _, _ := o.Max(c); string(k) != "z" {
		t.Fatalf("Max after delete = %q", k)
	}
}

// TestOrderedBytesMapSameHash forces every key onto one index hash: order
// and identity must come from the full key bytes alone.
func TestOrderedBytesMapSameHash(t *testing.T) {
	SetBytesHashForTesting(func([]byte) uint64 { return MinKey + 9 })
	defer SetBytesHashForTesting(nil)

	s := newTestStore(t, Options{LinkCache: true})
	c := s.MustCtx(0)
	o := newTestOrdered(t, s, c)
	const n = 40
	for i := n - 1; i >= 0; i-- {
		key := []byte(fmt.Sprintf("h-%03d", i))
		if _, err := o.Set(c, key, key, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	keys := orderedKeys(t, o, c)
	if len(keys) != n {
		t.Fatalf("len = %d, want %d (same-hash keys aliased?)", len(keys), n)
	}
	if !o.Delete(c, []byte("h-020")) {
		t.Fatal("delete failed")
	}
	if o.Contains(c, []byte("h-020")) || !o.Contains(c, []byte("h-021")) {
		t.Fatal("same-hash delete hit the wrong key")
	}
	if got := len(orderedKeys(t, o, c)); got != n-1 {
		t.Fatalf("len after delete = %d", got)
	}
}

func TestOrderedBytesMapCrashRecovery(t *testing.T) {
	s := newTestStore(t, Options{LinkCache: true})
	c := s.MustCtx(0)
	o := newTestOrdered(t, s, c)
	const n = 60
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("k-%03d", i))
		if _, err := o.Set(c, key, []byte(fmt.Sprintf("v-%d", i)), 0, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Rewrites and deletions that must all survive.
	o.Set(c, []byte("k-000"), []byte("first-rewrite"), 0, 0)
	o.Set(c, []byte("k-030"), []byte("mid-rewrite"), 0, 0)
	if !o.Delete(c, []byte("k-007")) || !o.Delete(c, []byte("k-059")) {
		t.Fatal("delete failed")
	}
	for tid := 0; tid < 8; tid++ {
		if cx := s.ExistingCtx(tid); cx != nil {
			cx.Shutdown()
		}
	}
	head, tail := o.Head(), o.Tail()

	s2 := crashAndReattach(t, s)
	o2 := AttachOrderedBytesMap(s2, head, tail)
	RecoverOrderedBytesMap(s2, o2, 4)
	c2 := s2.MustCtx(0)

	keys := orderedKeys(t, o2, c2)
	if len(keys) != n-2 {
		t.Fatalf("keys after recovery = %d, want %d", len(keys), n-2)
	}
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("k-%03d", i))
		want := fmt.Sprintf("v-%d", i)
		switch i {
		case 0:
			want = "first-rewrite"
		case 30:
			want = "mid-rewrite"
		case 7, 59:
			if o2.Contains(c2, key) {
				t.Fatalf("deleted key %q resurrected", key)
			}
			continue
		}
		v, ok := o2.Get(c2, key)
		if !ok || string(v) != want {
			t.Fatalf("key %q after crash: %q,%v want %q", key, v, ok, want)
		}
	}
	// The recovered map serves updates (index rebuilt, sentinels intact).
	if _, err := o2.Set(c2, []byte("k-007"), []byte("back"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if v, ok := o2.Get(c2, []byte("k-007")); !ok || string(v) != "back" {
		t.Fatalf("post-recovery set: %q,%v", v, ok)
	}
}

// TestOrderedBytesMapRecoveryFreesOrphans: a fully persisted entry and an
// unlinked node (the crash landed between allocation and the level-0
// publish) must be freed by the sweep without damaging live keys.
func TestOrderedBytesMapRecoveryFreesOrphans(t *testing.T) {
	s := newTestStore(t, Options{})
	c := s.MustCtx(0)
	o := newTestOrdered(t, s, c)
	if _, err := o.Set(c, []byte("live"), []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	c.Shutdown()
	// Orphan entry: persisted, in the APT, never referenced by a node.
	orphanE, err := writeBytesEntry(c, bytesHash([]byte("ghost")), []byte("ghost"), []byte("boo"), 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Orphan node: points at a second orphan entry, never linked at level 0.
	orphanE2, err := writeBytesEntry(c, bytesHash([]byte("wraith")), []byte("wraith"), []byte("woo"), 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	orphanN, err := c.ep.AllocNode(oClassFor(0))
	if err != nil {
		t.Fatal(err)
	}
	dev := s.Device()
	dev.Store(orphanN+oEntry, uint64(orphanE2))
	dev.Store(orphanN+oTop, 0)
	dev.Store(orphanN+oNext(0), 0)
	c.Flusher().CLWB(orphanN)
	c.Flusher().Fence()
	head, tail := o.Head(), o.Tail()

	s2 := crashAndReattach(t, s)
	o2 := AttachOrderedBytesMap(s2, head, tail)
	stats := RecoverOrderedBytesMap(s2, o2, 2)
	if stats.Leaked < 3 {
		t.Fatalf("leaked = %d, want >= 3 (entry, node, node's entry)", stats.Leaked)
	}
	for _, a := range []Addr{orphanE, orphanE2, orphanN} {
		if s2.Pool().SlotAllocated(a) {
			t.Fatalf("orphan %#x still allocated", a)
		}
	}
	c2 := s2.MustCtx(0)
	if v, ok := o2.Get(c2, []byte("live")); !ok || string(v) != "v" {
		t.Fatalf("live key damaged: %q,%v", v, ok)
	}
}

// TestOrderedBytesMapConcurrent: core-level smoke for concurrent writers
// plus an ordered scanner (the public-surface race test lives in logfree).
func TestOrderedBytesMapConcurrent(t *testing.T) {
	s := newTestStore(t, Options{MaxThreads: 6, LinkCache: true})
	c0 := s.MustCtx(0)
	o := newTestOrdered(t, s, c0)
	const writers = 4
	ops := 400
	if testing.Short() {
		ops = 120
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := s.MustCtx(w + 1)
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < ops; i++ {
				key := []byte(fmt.Sprintf("key-%02d", rng.Intn(24)))
				switch rng.Intn(3) {
				case 0:
					if _, err := o.Set(c, key, append(key, '#'), 0, 0); err != nil {
						t.Error(err)
						return
					}
				case 1:
					o.Delete(c, key)
				default:
					if v, ok := o.Get(c, key); ok && !bytes.HasPrefix(v, key) {
						t.Errorf("torn value for %q: %q", key, v)
						return
					}
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	cs := s.MustCtx(5)
	for {
		var prev []byte
		o.Scan(cs, nil, nil, func(k, v []byte) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				t.Errorf("concurrent scan out of order: %q then %q", prev, k)
				return false
			}
			if !bytes.HasPrefix(v, k) {
				t.Errorf("concurrent scan torn value for %q: %q", k, v)
				return false
			}
			prev = append(prev[:0], k...)
			return true
		})
		select {
		case <-done:
			return
		default:
		}
	}
}
