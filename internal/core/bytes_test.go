package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func newTestBytesMap(t *testing.T, s *Store, c *Ctx, buckets int) *BytesMap {
	t.Helper()
	b, err := NewBytesMap(c, buckets)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBytesMapBasics(t *testing.T) {
	s := newTestStore(t, Options{})
	c := s.MustCtx(0)
	b := newTestBytesMap(t, s, c, 16)
	if created, err := b.Set(c, []byte("k1"), []byte("v1"), 3, 77); err != nil || !created {
		t.Fatalf("Set = %v,%v", created, err)
	}
	v, meta, aux, ok := b.GetItem(c, []byte("k1"))
	if !ok || string(v) != "v1" || meta != 3 || aux != 77 {
		t.Fatalf("GetItem = %q,%d,%d,%v", v, meta, aux, ok)
	}
	if created, err := b.Set(c, []byte("k1"), []byte("longer value 1"), 4, 78); err != nil || created {
		t.Fatalf("replacing Set = %v,%v", created, err)
	}
	if v, _ := b.Get(c, []byte("k1")); string(v) != "longer value 1" {
		t.Fatalf("after replace: %q", v)
	}
	if !b.SetAux(c, []byte("k1"), 123) {
		t.Fatal("SetAux failed")
	}
	if _, _, aux, _ := b.GetItem(c, []byte("k1")); aux != 123 {
		t.Fatalf("aux = %d", aux)
	}
	if b.Len(c) != 1 {
		t.Fatalf("Len = %d", b.Len(c))
	}
	if !b.Delete(c, []byte("k1")) || b.Delete(c, []byte("k1")) {
		t.Fatal("delete semantics broken")
	}
	if b.Contains(c, []byte("k1")) {
		t.Fatal("deleted key present")
	}
	if _, err := b.Set(c, nil, []byte("v"), 0, 0); !errors.Is(err, ErrBadKey) {
		t.Fatalf("empty key: %v", err)
	}
	if _, err := b.Set(c, []byte("k"), make([]byte, 4096), 0, 0); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("huge value: %v", err)
	}
}

func TestBytesMapManyKeysAndRange(t *testing.T) {
	s := newTestStore(t, Options{})
	c := s.MustCtx(0)
	b := newTestBytesMap(t, s, c, 8) // force multi-entry buckets
	const n = 500
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%03d", i))
		val := bytes.Repeat([]byte{byte(i)}, 1+i%200)
		if _, err := b.Set(c, key, val, uint16(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%03d", i))
		v, meta, aux, ok := b.GetItem(c, key)
		if !ok || meta != uint16(i) || aux != uint64(i) ||
			!bytes.Equal(v, bytes.Repeat([]byte{byte(i)}, 1+i%200)) {
			t.Fatalf("key %d corrupt: ok=%v meta=%d aux=%d len=%d", i, ok, meta, aux, len(v))
		}
	}
	seen := make(map[string]bool)
	b.Range(c, func(k, v []byte) bool {
		seen[string(k)] = true
		return true
	})
	if len(seen) != n {
		t.Fatalf("Range saw %d keys, want %d", len(seen), n)
	}
}

func TestBytesMapConcurrentClients(t *testing.T) {
	s := newTestStore(t, Options{MaxThreads: 8, LinkCache: true})
	c0 := s.MustCtx(0)
	b := newTestBytesMap(t, s, c0, 64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := s.CtxFor(w)
			for i := 0; i < 300; i++ {
				key := []byte(fmt.Sprintf("w%d-%d", w, i))
				if _, err := b.Set(c, key, key, 0, 0); err != nil {
					t.Error(err)
					return
				}
				if v, ok := b.Get(c, key); !ok || !bytes.Equal(v, key) {
					t.Errorf("w%d readback %d failed", w, i)
					return
				}
				if i%3 == 0 {
					b.Delete(c, key)
				}
			}
		}(w)
	}
	wg.Wait()
}

// crashAndReattach simulates a power failure and reopens the store.
func crashAndReattach(t *testing.T, s *Store) *Store {
	t.Helper()
	dev := s.Device()
	dev.Crash()
	s2, err := AttachStore(dev)
	if err != nil {
		t.Fatal(err)
	}
	return s2
}

// TestBytesMapCollisionChainSurvivesCrash is the core-level regression test
// for string-key aliasing: with every key forced onto ONE index key, all
// operations must stay per-key (full-key verification + durable chains),
// and the chain must reconstruct across a crash and recovery sweep.
func TestBytesMapCollisionChainSurvivesCrash(t *testing.T) {
	SetBytesHashForTesting(func([]byte) uint64 { return MinKey + 5 })
	defer SetBytesHashForTesting(nil)

	s := newTestStore(t, Options{LinkCache: true})
	c := s.MustCtx(0)
	b := newTestBytesMap(t, s, c, 16)
	const n = 30
	for i := 0; i < n; i++ {
		if _, err := b.Set(c, []byte(fmt.Sprintf("c-%d", i)), []byte(fmt.Sprintf("v-%d", i)), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Mutate head, middle and a deletion, all on the same chain.
	b.Set(c, []byte("c-29"), []byte("head-rewrite"), 0, 0)
	b.Set(c, []byte("c-15"), []byte("mid-rewrite"), 0, 0)
	if !b.Delete(c, []byte("c-3")) {
		t.Fatal("chain delete failed")
	}
	for tid := 0; tid < 8; tid++ {
		if cx := s.ExistingCtx(tid); cx != nil {
			cx.Shutdown()
		}
	}
	desc := [3]uint64{b.Buckets(), uint64(b.NumBuckets()), b.Tail()}

	s2 := crashAndReattach(t, s)
	b2 := AttachBytesMap(s2, desc[0], int(desc[1]), desc[2])
	RecoverBytesMap(s2, b2, 4)
	c2 := s2.MustCtx(0)
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("c-%d", i))
		want := fmt.Sprintf("v-%d", i)
		switch i {
		case 29:
			want = "head-rewrite"
		case 15:
			want = "mid-rewrite"
		case 3:
			if b2.Contains(c2, key) {
				t.Fatal("deleted chain entry resurrected")
			}
			continue
		}
		v, ok := b2.Get(c2, key)
		if !ok || string(v) != want {
			t.Fatalf("chain key %d after crash: %q,%v want %q", i, v, ok, want)
		}
	}
	if got := b2.Len(c2); got != n-1 {
		t.Fatalf("Len after recovery = %d, want %d", got, n-1)
	}
}

// TestBytesMapRecoveryFreesOrphanEntry: an entry written durably but never
// linked (the crash lands between allocation and index publish, §5.1's
// failure window) must be freed by the recovery sweep, without damaging
// live entries.
func TestBytesMapRecoveryFreesOrphanEntry(t *testing.T) {
	s := newTestStore(t, Options{})
	c := s.MustCtx(0)
	b := newTestBytesMap(t, s, c, 16)
	if _, err := b.Set(c, []byte("live"), []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	c.Shutdown()
	// Orphan an entry: fully persisted (writeBytesEntry defers its fence to
	// the caller), area in the APT, never published.
	orphan, err := writeBytesEntry(c, MinKey+42, []byte("ghost"), []byte("boo"), 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.f.Fence()
	desc := [3]uint64{b.Buckets(), uint64(b.NumBuckets()), b.Tail()}

	s2 := crashAndReattach(t, s)
	b2 := AttachBytesMap(s2, desc[0], int(desc[1]), desc[2])
	stats := RecoverBytesMap(s2, b2, 2)
	if stats.Leaked == 0 {
		t.Fatal("orphan entry not detected")
	}
	if s2.Pool().SlotAllocated(orphan) {
		t.Fatal("orphan entry still allocated")
	}
	c2 := s2.MustCtx(0)
	if v, ok := b2.Get(c2, []byte("live")); !ok || string(v) != "v" {
		t.Fatalf("live entry damaged by recovery: %q,%v", v, ok)
	}
}

// TestRecoverSetMultipleStructures: two structures sharing a store must
// both survive a combined sweep — and the sweep must still free genuine
// leaks.
func TestRecoverSetMultipleStructures(t *testing.T) {
	s := newTestStore(t, Options{LinkCache: true})
	c := s.MustCtx(0)
	h := newTestHash(t, s, c, 16)
	b := newTestBytesMap(t, s, c, 16)
	for k := uint64(1); k <= 200; k++ {
		h.Insert(c, k, k*2)
		if _, err := b.Set(c, []byte(fmt.Sprintf("b-%d", k)), []byte("x"), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	for tid := 0; tid < 8; tid++ {
		if cx := s.ExistingCtx(tid); cx != nil {
			cx.Shutdown()
		}
	}
	hDesc := [3]uint64{h.Buckets(), uint64(h.NumBuckets()), h.Tail()}
	bDesc := [3]uint64{b.Buckets(), uint64(b.NumBuckets()), b.Tail()}

	s2 := crashAndReattach(t, s)
	h2 := AttachHashTable(s2, hDesc[0], int(hDesc[1]), hDesc[2])
	b2 := AttachBytesMap(s2, bDesc[0], int(bDesc[1]), bDesc[2])
	RecoverSet(s2, []Recoverer{h2.Recoverer(), b2.Recoverer()}, 4)
	c2 := s2.MustCtx(0)
	for k := uint64(1); k <= 200; k++ {
		if v, ok := h2.Search(c2, k); !ok || v != k*2 {
			t.Fatalf("hash key %d after combined recovery: %d,%v", k, v, ok)
		}
		if !b2.Contains(c2, []byte(fmt.Sprintf("b-%d", k))) {
			t.Fatalf("bytes key %d lost in combined recovery", k)
		}
	}
}
