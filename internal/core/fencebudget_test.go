package core

import (
	"fmt"
	"testing"

	"repro/internal/nvram"
)

// Fence-budget regression tests.
//
// The paper's latency model charges one NVRAM pause per *fence that had
// pending write-backs* (a "sync wait"), not per CLWB — so the write path's
// cost is measured in sync waits. The byte-map Set budget is TWO:
//
//  1. one fence completing the content batch — the entry extent's lines,
//     the index node's line (fresh keys), and the allocator bitmap lines
//     all become durable under a single pause (writeBytesEntry defers its
//     fence to the caller precisely so these merge), and
//  2. one sync for the publishing link — the link-and-persist of the index
//     link (fresh keys) or of the entry-reference/chain swing (replaces).
//
// Steady state only: an APT miss (§5.4) legitimately adds a sync when an
// operation touches a cold area, which is why the budget tests run with
// large areas and a warmed allocator. Future changes that add a fence to
// the hot path fail these tests immediately.

// budgetStore builds a store tuned for deterministic fence accounting:
// link cache off (no deferred/batched link flushes), reclamation deferred
// past the test horizon, 1MB areas so the working set spans a handful of
// APT entries.
func budgetStore(t *testing.T) (*Store, *Ctx) {
	t.Helper()
	dev := nvram.New(nvram.Config{Size: 64 << 20})
	s, err := NewStore(dev, Options{
		MaxThreads:   1,
		LinkCache:    false,
		AreaShift:    20,
		EpochGenSize: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, s.MustCtx(0)
}

func assertBudget(t *testing.T, c *Ctx, what string, budget uint64, op func()) {
	t.Helper()
	before := c.f.SyncWaits
	op()
	if got := c.f.SyncWaits - before; got > budget {
		t.Fatalf("%s cost %d sync waits, budget is %d", what, got, budget)
	}
}

func TestFenceBudgetBytesMapSet(t *testing.T) {
	s, c := budgetStore(t)
	b, err := NewBytesMap(c, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	_ = s
	val := make([]byte, 64)
	key := func(i int) []byte { return []byte(fmt.Sprintf("budget-%06d", i)) }
	// Warm the allocator and the APT (first touches of each area pay the
	// §5.4 insertion sync; that is not part of the steady-state budget).
	for i := 0; i < 64; i++ {
		if _, err := b.Set(c, key(i), val, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 64; i < 256; i++ {
		i := i
		assertBudget(t, c, "BytesMap.Set (fresh key)", 2, func() {
			if _, err := b.Set(c, key(i), val, 0, 0); err != nil {
				t.Fatal(err)
			}
		})
	}
	for i := 64; i < 256; i++ {
		i := i
		assertBudget(t, c, "BytesMap.Set (replace)", 2, func() {
			if _, err := b.Set(c, key(i), val, 1, 0); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestFenceBudgetOrderedBytesMapSet(t *testing.T) {
	_, c := budgetStore(t)
	o, err := NewOrderedBytesMap(c)
	if err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 64)
	key := func(i int) []byte { return []byte(fmt.Sprintf("budget-%06d", i)) }
	for i := 0; i < 64; i++ {
		if _, err := o.Set(c, key(i), val, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 64; i < 256; i++ {
		i := i
		assertBudget(t, c, "OrderedBytesMap.Set (fresh key)", 2, func() {
			if _, err := o.Set(c, key(i), val, 0, 0); err != nil {
				t.Fatal(err)
			}
		})
	}
	for i := 64; i < 256; i++ {
		i := i
		assertBudget(t, c, "OrderedBytesMap.Set (replace)", 2, func() {
			if _, err := o.Set(c, key(i), val, 1, 0); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFenceBudgetBatch pins the amortized batch budget: a 64-op all-Set
// batch pays at most 64+2 sync waits — one publishing link per op, one
// shared content fence, plus one of slack for an APT insertion as the batch
// crosses into a cold area — instead of the 2×64 the ops would cost issued
// singly. Covers all four steady states: fresh keys and replaces, on both
// the hash-indexed and the ordered map.
func TestFenceBudgetBatch(t *testing.T) {
	const N = 64
	val := make([]byte, 64)
	batch := func(base string, round int) []BytesOp {
		ops := make([]BytesOp, N)
		for i := range ops {
			ops[i] = BytesOp{
				Key:   []byte(fmt.Sprintf("%s-%06d", base, i)),
				Value: val,
				Meta:  uint16(round),
			}
		}
		return ops
	}
	apply := map[string]func(c *Ctx) func([]BytesOp) error{
		"map": func(c *Ctx) func([]BytesOp) error {
			b, err := NewBytesMap(c, 1<<10)
			if err != nil {
				t.Fatal(err)
			}
			return func(ops []BytesOp) error { return b.ApplyBatch(c, ops) }
		},
		"ordered": func(c *Ctx) func([]BytesOp) error {
			o, err := NewOrderedBytesMap(c)
			if err != nil {
				t.Fatal(err)
			}
			return func(ops []BytesOp) error { return o.ApplyBatch(c, ops) }
		},
	}
	for name, build := range apply {
		t.Run(name, func(t *testing.T) {
			_, c := budgetStore(t)
			commit := build(c)
			// Warm the allocator and APT (cold-area insertion syncs are not
			// part of the steady-state budget).
			if err := commit(batch("warm", 0)); err != nil {
				t.Fatal(err)
			}
			for round, base := range []string{"fresh", "fresh", "fresh"} {
				ops := batch(fmt.Sprintf("%s-%d", base, round), 0)
				assertBudget(t, c, "ApplyBatch (fresh keys)", N+2, func() {
					if err := commit(ops); err != nil {
						t.Fatal(err)
					}
				})
			}
			for round := 1; round <= 3; round++ {
				ops := batch("fresh-1", round) // rewrite round 1's keys
				assertBudget(t, c, "ApplyBatch (replace)", N+2, func() {
					if err := commit(ops); err != nil {
						t.Fatal(err)
					}
				})
			}
		})
	}
}

// TestFenceBudgetDeviceTotals cross-checks the budget against the
// device-wide counters over a longer run: the aggregate rate must stay at
// ≤2 sync waits per Set plus a small allowance for page-carve syncs and
// APT misses as the map grows across areas.
func TestFenceBudgetDeviceTotals(t *testing.T) {
	s, c := budgetStore(t)
	o, err := NewOrderedBytesMap(c)
	if err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 64)
	for i := 0; i < 256; i++ {
		if _, err := o.Set(c, []byte(fmt.Sprintf("warm-%06d", i)), val, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	const N = 2000
	s.Device().ResetStats()
	for i := 0; i < N; i++ {
		if _, err := o.Set(c, []byte(fmt.Sprintf("tot-%06d", i%500)), val, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Device().Stats()
	if limit := uint64(2*N + N/8); st.SyncWaits > limit {
		t.Fatalf("device saw %d sync waits for %d Sets (%.3f/op), limit %d",
			st.SyncWaits, N, float64(st.SyncWaits)/N, limit)
	}
}
