package core

import (
	"testing"

	"repro/internal/nvram"
)

// newVolatileStore builds the NVRAM-oblivious configuration of Figure 7:
// identical algorithms, zero durability actions.
func newVolatileStore(t *testing.T) *Store {
	t.Helper()
	dev := nvram.New(nvram.Config{Size: 64 << 20})
	s, err := NewStore(dev, Options{MaxThreads: 8, Volatile: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestVolatileSemanticsAllStructures(t *testing.T) {
	s := newVolatileStore(t)
	c := s.MustCtx(0)
	l, _ := NewList(c)
	runSetSemantics(t, l, c)
	h, _ := NewHashTable(c, 16)
	runSetSemantics(t, h, c)
	sl, _ := NewSkipList(c)
	runSetSemantics(t, sl, c)
	bt, _ := NewBST(c)
	runSetSemantics(t, bt, c)
}

func TestVolatileStress(t *testing.T) {
	s := newVolatileStore(t)
	c := s.MustCtx(0)
	bt, _ := NewBST(c)
	runContendedStress(t, s, bt, 8, 3000)
	bt2, _ := NewBST(c) // fresh tree: the oracle owns its key ranges
	runOracleStress(t, s, bt2, 4, 1500)
}

// TestVolatilePaysNoSyncs is the point of the mode: no operation may wait
// for a write-back.
func TestVolatilePaysNoSyncs(t *testing.T) {
	s := newVolatileStore(t)
	c := s.MustCtx(0)
	l, _ := NewList(c)
	start := s.Device().Stats().SyncWaits
	for k := uint64(1); k <= 200; k++ {
		l.Insert(c, k, k)
	}
	for k := uint64(1); k <= 200; k += 2 {
		l.Delete(c, k)
	}
	l.Search(c, 100)
	if got := s.Device().Stats().SyncWaits - start; got != 0 {
		t.Fatalf("volatile mode paid %d sync waits, want 0", got)
	}
}

// TestDurableCostsMoreThanVolatile pins the qualitative Figure 7 claim with
// sync-wait accounting rather than wall time.
func TestDurableCostsMoreThanVolatile(t *testing.T) {
	mk := func(vol bool) uint64 {
		dev := nvram.New(nvram.Config{Size: 64 << 20})
		s, _ := NewStore(dev, Options{MaxThreads: 1, Volatile: vol})
		c := s.MustCtx(0)
		l, _ := NewList(c)
		dev.ResetStats()
		for k := uint64(1); k <= 300; k++ {
			l.Insert(c, k, k)
		}
		return dev.Stats().SyncWaits
	}
	vol, dur := mk(true), mk(false)
	if vol != 0 {
		t.Fatalf("volatile run paid %d syncs", vol)
	}
	if dur < 300 {
		t.Fatalf("durable run paid only %d syncs for 300 inserts", dur)
	}
}
