package core

import "repro/internal/ptrtag"

// Stack is a durable lock-free LIFO stack: Treiber's algorithm with
// link-and-persist. The entire abstract state is the top pointer, so both
// push and pop linearize (and become durable) at a single link-and-persist
// CAS on it — the minimal possible durability cost, one sync per update
// plus the push's pre-publish fence.
//
// Descriptor: one 64-byte line holding the top pointer. Node: value, next
// (class 0; the key word holds a recovery tag like the queue's).
type Stack struct {
	s    *Store
	desc Addr
}

const (
	stTop = 0

	stackNodeTag = ^uint64(0) - 5
)

// NewStack creates an empty durable stack.
func NewStack(c *Ctx) (*Stack, error) {
	desc, err := c.ep.AllocNode(listClass)
	if err != nil {
		return nil, err
	}
	c.s.dev.Store(desc+stTop, 0)
	c.clwb(desc)
	c.fence()
	return &Stack{s: c.s, desc: desc}, nil
}

// AttachStack reopens a stack from its descriptor address.
func AttachStack(s *Store, desc Addr) *Stack { return &Stack{s: s, desc: desc} }

// Descriptor returns the durable descriptor address (persist in a root).
func (st *Stack) Descriptor() Addr { return st.desc }

// Push adds value; durably linearizes at the top-pointer link-and-persist.
func (st *Stack) Push(c *Ctx, value uint64) {
	c.ep.Begin()
	defer c.ep.End()
	dev := st.s.dev
	n, err := c.ep.AllocNode(listClass)
	if err != nil {
		panic(err)
	}
	dev.Store(n+nKey, stackNodeTag)
	dev.Store(n+qNodeVal, value)
	for {
		topW := c.loadClean(st.desc + stTop)
		dev.Store(n+qNodeNext, ptrtag.Addr(topW))
		c.clwb(n)
		c.fence() // node contents + allocator metadata durable pre-publish
		if c.linkCached(n, st.desc+stTop, topW, n) {
			c.scan(n)
			return
		}
	}
}

// Pop removes and returns the most recent value.
func (st *Stack) Pop(c *Ctx) (uint64, bool) {
	c.ep.Begin()
	defer c.ep.End()
	dev := st.s.dev
	for {
		topW := c.loadClean(st.desc + stTop)
		top := ptrtag.Addr(topW)
		if top == 0 {
			return 0, false
		}
		next := ptrtag.Addr(dev.Load(top + qNodeNext))
		value := dev.Load(top + qNodeVal)
		c.scan(top)
		c.ep.PreRetire(top)
		if c.linkCached(top, st.desc+stTop, topW, next) {
			c.ep.Retire(top)
			return value, true
		}
	}
}

// Peek returns the top value without removing it.
func (st *Stack) Peek(c *Ctx) (uint64, bool) {
	c.ep.Begin()
	defer c.ep.End()
	top := ptrtag.Addr(c.loadClean(st.desc + stTop))
	if top == 0 {
		return 0, false
	}
	return st.s.dev.Load(top + qNodeVal), true
}

// Len counts entries (quiescent use).
func (st *Stack) Len(c *Ctx) int {
	n := 0
	for node := ptrtag.Addr(st.s.dev.Load(st.desc + stTop)); node != 0; {
		n++
		node = ptrtag.Addr(st.s.dev.Load(node + qNodeNext))
	}
	return n
}

type stackRecover struct{ st *Stack }

func (r stackRecover) Prepare(c *Ctx, _ map[Addr]bool) {
	c.ensureDurable(r.st.desc + stTop)
}

func (r stackRecover) Keep(c *Ctx, n Addr) bool {
	if n == r.st.desc {
		return true
	}
	if r.st.s.dev.Load(n+nKey) != stackNodeTag {
		return false
	}
	for node := ptrtag.Addr(r.st.s.dev.Load(r.st.desc + stTop)); node != 0; {
		if node == n {
			return true
		}
		node = ptrtag.Addr(r.st.s.dev.Load(node + qNodeNext))
	}
	return false
}

// Recoverer returns the stack's hook set for RecoverSet composition.
func (st *Stack) Recoverer() Recoverer { return stackRecover{st} }

// RecoverStack runs the §5.5 recovery procedure for a stack.
func RecoverStack(s *Store, st *Stack, par int) RecoveryStats {
	return sweep(s, stackRecover{st}, par)
}
