package core

import "repro/internal/ptrtag"

// BST is a durable lock-free external (leaf-oriented) binary search tree
// based on the Natarajan-Mittal algorithm [PPoPP 2014], the algorithm the
// paper's BST starts from (§3). Keys live in leaves; internal nodes route.
//
// Deletion is two-phase: injection CASes a FLAG onto the edge above the
// target leaf (the linearization point), then cleanup TAGs the sibling edge
// (freezing it) and splices the parent + leaf out by swinging the deepest
// un-tagged ancestor edge to the sibling. Both the flag CAS and the splice
// CAS are state-changing link updates and therefore go through
// link-and-persist / the link cache; the tag is volatile bookkeeping on an
// edge that is about to become unreachable and needs no write-back.
//
// Node layout (64 bytes, class 0): key, value, left, right. Leaves have
// nil children. Edge words carry ptrtag.Mark (= NM's FLAG), ptrtag.Tag, and
// the link-and-persist Dirty mark in their low bits.
type BST struct {
	s  *Store
	r  Addr // root sentinel R (key ∞₂)
	s1 Addr // child sentinel S (key ∞₁)
}

const (
	bKey   = 0
	bValue = 8
	bLeft  = 16
	bRight = 24

	inf0 = ^uint64(0) - 2
	inf1 = ^uint64(0) - 1
	inf2 = ^uint64(0)
)

// dir returns the child-field offset for descending toward key at a node
// with nodeKey.
func dir(key, nodeKey uint64) Addr {
	if key < nodeKey {
		return bLeft
	}
	return bRight
}

// NewBST creates an empty durable BST with the NM sentinel scaffold:
// R(∞₂){left: S(∞₁){left: leaf(∞₀), right: leaf(∞₁)}, right: leaf(∞₂)}.
func NewBST(c *Ctx) (*BST, error) {
	dev := c.s.dev
	mk := func(key uint64, left, right Addr) (Addr, error) {
		n, err := c.ep.AllocNode(listClass)
		if err != nil {
			return 0, err
		}
		dev.Store(n+bKey, key)
		dev.Store(n+bValue, 0)
		dev.Store(n+bLeft, left)
		dev.Store(n+bRight, right)
		c.clwb(n)
		return n, nil
	}
	l0, err := mk(inf0, 0, 0)
	if err != nil {
		return nil, err
	}
	l1, err := mk(inf1, 0, 0)
	if err != nil {
		return nil, err
	}
	l2, err := mk(inf2, 0, 0)
	if err != nil {
		return nil, err
	}
	s1, err := mk(inf1, l0, l1)
	if err != nil {
		return nil, err
	}
	r, err := mk(inf2, s1, l2)
	if err != nil {
		return nil, err
	}
	c.fence()
	return &BST{s: c.s, r: r, s1: s1}, nil
}

// AttachBST reopens a BST from its durable sentinels.
func AttachBST(s *Store, r, s1 Addr) *BST { return &BST{s: s, r: r, s1: s1} }

// Root returns the R sentinel address (persist in a root slot).
func (t *BST) Root() Addr { return t.r }

// Sentinel returns the S sentinel address (persist in a root slot).
func (t *BST) Sentinel() Addr { return t.s1 }

// seekRec is NM's seek record: the access path summary for key.
type seekRec struct {
	ancestor  Addr // deepest node whose outgoing path edge was untagged
	successor Addr // ancestor's child on the path
	parent    Addr // leaf's parent
	leaf      Addr
}

// seek descends to the leaf for key, tracking the NM seek record. Flags,
// tags and Dirty marks on edges are ignored for routing.
func (t *BST) seek(c *Ctx, key uint64) seekRec {
	dev := t.s.dev
	r := seekRec{ancestor: t.r, successor: t.s1, parent: t.s1}
	parentField := dev.Load(t.s1 + bLeft)
	r.leaf = ptrtag.Addr(parentField)
	currField := dev.Load(r.leaf + dir(key, dev.Load(r.leaf+bKey)))
	curr := ptrtag.Addr(currField)
	for curr != 0 {
		if !ptrtag.IsTagged(parentField) {
			r.ancestor = r.parent
			r.successor = r.leaf
		}
		r.parent = r.leaf
		r.leaf = curr
		parentField = currField
		currField = dev.Load(curr + dir(key, dev.Load(curr+bKey)))
		curr = ptrtag.Addr(currField)
	}
	return r
}

// cleanup performs (or helps) the second phase of a deletion around key:
// tag the sibling edge, then swing the ancestor's successor edge to the
// sibling (keeping the sibling's flag, clearing the tag) with
// link-and-persist. Returns whether this call performed the splice.
func (t *BST) cleanup(c *Ctx, key uint64, r seekRec) bool {
	dev := t.s.dev
	ancestorField := r.ancestor + dir(key, dev.Load(r.ancestor+bKey))
	childAddr := r.parent + dir(key, dev.Load(r.parent+bKey))
	siblingAddr := r.parent + bLeft
	if childAddr == siblingAddr {
		siblingAddr = r.parent + bRight
	}
	if !ptrtag.IsMarked(dev.Load(childAddr)) {
		// The flag is on the other edge: we are removing the sibling side.
		siblingAddr = childAddr
	}
	// Freeze the sibling edge (volatile tag; the edge is leaving the tree).
	for {
		w := dev.Load(siblingAddr)
		if ptrtag.IsTagged(w) || dev.CAS(siblingAddr, w, w|ptrtag.Tag) {
			break
		}
	}
	// The copied link value must be durable (it may carry a Dirty mark from
	// a recent insert), as must the edge we are about to modify (§3).
	sw := c.loadClean(siblingAddr)
	aw := c.loadClean(ancestorField)
	if ptrtag.Addr(aw) != r.successor || ptrtag.IsMarked(aw) || ptrtag.IsTagged(aw) {
		return false
	}
	// The splice durably unlinks r.parent: its area must be in an APT first
	// (§5.4). The flagged leaf was covered by its deleter at injection.
	c.ep.PreRetire(r.parent)
	newW := sw &^ (ptrtag.Tag | ptrtag.Dirty) // keep the sibling's flag
	if !c.linkCached(key, ancestorField, aw, newW) {
		return false
	}
	// Exactly one splice can succeed per removed parent (an unreachable
	// node's path edge stays tagged forever, so stale splice CASes fail), so
	// the splicer uniquely owns retiring the parent. The leaf is retired by
	// the deleter that flagged it — the flag may travel up through several
	// splices before the leaf itself is removed.
	c.ep.Retire(r.parent)
	return true
}

// Search looks key up with §3 durability on the proving edge.
func (t *BST) Search(c *Ctx, key uint64) (uint64, bool) {
	checkKey(key)
	c.ep.Begin()
	defer c.ep.End()
	dev := t.s.dev
	r := t.seek(c, key)
	c.scan(key)
	// The edge into the leaf proves presence/absence; persist it.
	c.ensureDurable(r.parent + dir(key, dev.Load(r.parent+bKey)))
	if dev.Load(r.leaf+bKey) == key {
		return dev.Load(r.leaf + bValue), true
	}
	return 0, false
}

// Contains reports whether key is present.
func (t *BST) Contains(c *Ctx, key uint64) bool {
	_, ok := t.Search(c, key)
	return ok
}

// Insert adds key→value; false if present. Linearizes at the link-and-
// persist CAS swinging the parent's edge from the leaf to a fresh internal
// node holding both leaves.
func (t *BST) Insert(c *Ctx, key, value uint64) bool {
	checkKey(key)
	c.ep.Begin()
	defer c.ep.End()
	return t.insert(c, key, value)
}

// insert is the Insert body, shared with Upsert (which manages its own epoch
// section).
func (t *BST) insert(c *Ctx, key, value uint64) bool {
	dev := t.s.dev
	for {
		r := t.seek(c, key)
		c.scan(key)
		leafKey := dev.Load(r.leaf + bKey)
		childAddr := r.parent + dir(key, dev.Load(r.parent+bKey))
		if leafKey == key {
			c.ensureDurable(childAddr) // presence must be durable
			return false
		}
		w := c.loadClean(childAddr)
		if ptrtag.Addr(w) != r.leaf {
			continue
		}
		if ptrtag.IsMarked(w) || ptrtag.IsTagged(w) {
			t.cleanup(c, key, r) // help the delete occupying this edge
			continue
		}
		nl, err := c.ep.AllocNode(listClass)
		if err != nil {
			panic(err)
		}
		dev.Store(nl+bKey, key)
		dev.Store(nl+bValue, value)
		dev.Store(nl+bLeft, 0)
		dev.Store(nl+bRight, 0)
		c.clwb(nl)
		ni, err := c.ep.AllocNode(listClass)
		if err != nil {
			panic(err)
		}
		if key < leafKey {
			dev.Store(ni+bKey, leafKey)
			dev.Store(ni+bLeft, nl)
			dev.Store(ni+bRight, r.leaf)
		} else {
			dev.Store(ni+bKey, key)
			dev.Store(ni+bLeft, r.leaf)
			dev.Store(ni+bRight, nl)
		}
		dev.Store(ni+bValue, 0)
		c.clwb(ni)
		c.fence() // new nodes + allocator metadata durable pre-link (§5.5)
		if c.linkCached(key, childAddr, w, ni) {
			return true
		}
		// Lost the race: reclaim the never-visible nodes and retry.
		c.alloc.Free(nl)
		c.alloc.Free(ni)
		w = dev.Load(childAddr)
		if ptrtag.Addr(w) == r.leaf && (ptrtag.IsMarked(w) || ptrtag.IsTagged(w)) {
			t.cleanup(c, key, r)
		}
	}
}

// Upsert inserts key→value or durably replaces the value of an existing key
// in place (one word CAS + sync on the leaf; the value word shares the leaf's
// cache line with its links). Returns true if the key was newly inserted.
// A replacement that races with a concurrent delete of the same key
// linearizes in either order: the post-CAS flag check retries as an insert
// when the delete's injection got there first.
func (t *BST) Upsert(c *Ctx, key, value uint64) bool {
	checkKey(key)
	c.ep.Begin()
	defer c.ep.End()
	dev := t.s.dev
	for {
		r := t.seek(c, key)
		c.scan(key)
		if dev.Load(r.leaf+bKey) != key {
			if t.insert(c, key, value) {
				return true
			}
			continue // raced with a concurrent insert of the same key
		}
		childAddr := r.parent + dir(key, dev.Load(r.parent+bKey))
		w := dev.Load(childAddr)
		if ptrtag.Addr(w) != r.leaf {
			continue // stale seek record
		}
		if ptrtag.IsMarked(w) || ptrtag.IsTagged(w) {
			t.cleanup(c, key, r) // help the delete occupying this edge
			continue
		}
		old := dev.Load(r.leaf + bValue)
		if !dev.CAS(r.leaf+bValue, old, value) {
			continue
		}
		// Revalidate the edge after the CAS: a concurrent delete may have
		// flagged it (injection on this key) or frozen it (a sibling's
		// splice tags the surviving edge before copying it up — so an edge
		// whose parent left the tree is always Tagged). Either way the CAS
		// may have landed on a dead leaf: retry, which re-seeks through the
		// live access path.
		w = dev.Load(childAddr)
		if ptrtag.Addr(w) != r.leaf || ptrtag.IsMarked(w) || ptrtag.IsTagged(w) {
			continue
		}
		c.f.Sync(r.leaf + bValue)
		return false
	}
}

// Delete removes key. Injection flags the leaf's incoming edge (the durable
// linearization point); cleanup splices leaf and parent out. Both phases may
// be helped by concurrent operations; only the flagging thread retires the
// two removed nodes.
func (t *BST) Delete(c *Ctx, key uint64) (uint64, bool) {
	checkKey(key)
	c.ep.Begin()
	defer c.ep.End()
	dev := t.s.dev
	injecting := true
	var leaf, parent Addr
	var value uint64
	for {
		r := t.seek(c, key)
		c.scan(key)
		if injecting {
			if dev.Load(r.leaf+bKey) != key {
				c.ensureDurable(r.parent + dir(key, dev.Load(r.parent+bKey)))
				return 0, false
			}
			leaf, parent = r.leaf, r.parent
			childAddr := parent + dir(key, dev.Load(parent+bKey))
			w := c.loadClean(childAddr)
			if ptrtag.Addr(w) != leaf {
				continue
			}
			if ptrtag.IsMarked(w) || ptrtag.IsTagged(w) {
				t.cleanup(c, key, r) // some other delete owns this edge
				continue
			}
			// The leaf becomes durably unreachable at the eventual splice;
			// its area must be in the APT before the flag (the
			// linearization) can persist (§5.4). The spliced parent is
			// covered inside cleanup by the splicing thread.
			c.ep.PreRetire(leaf)
			value = dev.Load(leaf + bValue)
			if !c.linkCached(key, childAddr, w, uint64(leaf)|ptrtag.Mark) {
				continue
			}
			injecting = false
			if t.cleanup(c, key, r) {
				c.ep.Retire(leaf)
				return value, true
			}
		} else {
			if r.leaf != leaf {
				// A helper finished the splice; we still own the leaf.
				c.ep.Retire(leaf)
				return value, true
			}
			if t.cleanup(c, key, r) {
				c.ep.Retire(leaf)
				return value, true
			}
		}
	}
}

// Len counts live leaves (quiescent use).
func (t *BST) Len(c *Ctx) int {
	n := 0
	t.Range(c, func(k, v uint64) bool { n++; return true })
	return n
}

// Range walks the leaves in key order, skipping sentinels (quiescent use).
func (t *BST) Range(c *Ctx, fn func(key, value uint64) bool) {
	t.walk(t.r, fn)
}

func (t *BST) walk(n Addr, fn func(key, value uint64) bool) bool {
	dev := t.s.dev
	left := ptrtag.Addr(dev.Load(n + bLeft))
	if left == 0 { // leaf
		k := dev.Load(n + bKey)
		if k >= MinKey && k <= MaxKey {
			return fn(k, dev.Load(n+bValue))
		}
		return true
	}
	if !t.walk(left, fn) {
		return false
	}
	return t.walk(ptrtag.Addr(dev.Load(n+bRight)), fn)
}
