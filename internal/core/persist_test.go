package core

import (
	"testing"

	"repro/internal/nvram"
	"repro/internal/ptrtag"
)

// scratch returns a store plus a word inside a live node to play with.
func scratch(t *testing.T, opts Options) (*Store, *Ctx, Addr) {
	t.Helper()
	s := newTestStore(t, opts)
	c := s.MustCtx(0)
	n, err := c.ep.AllocNode(listClass)
	if err != nil {
		t.Fatal(err)
	}
	a := n + nNext
	s.dev.Store(a, 0x1000)
	c.f.Sync(a)
	return s, c, a
}

func TestLinkAndPersistProtocol(t *testing.T) {
	s, c, a := scratch(t, Options{MaxThreads: 1})
	if !c.linkAndPersist(a, 0x1000, 0x2000) {
		t.Fatal("CAS with correct expectation failed")
	}
	if got := s.dev.Load(a); got != 0x2000 {
		t.Fatalf("word = %#x, want clean 0x2000", got)
	}
	if s.dev.PersistedWord(a)&ptrtag.AddrMask != 0x2000 {
		t.Fatal("link not durable after linkAndPersist")
	}
	if c.linkAndPersist(a, 0x1000, 0x3000) {
		t.Fatal("CAS with stale expectation succeeded")
	}
}

func TestEnsureDurableHelpsAndClears(t *testing.T) {
	s, c, a := scratch(t, Options{MaxThreads: 1})
	// Simulate an in-flight update: dirty value visible, not persisted.
	s.dev.Store(a, 0x2000|ptrtag.Dirty)
	c.ensureDurable(a)
	if got := s.dev.Load(a); got != 0x2000 {
		t.Fatalf("mark not cleared: %#x", got)
	}
	if s.dev.PersistedWord(a)&ptrtag.AddrMask != 0x2000 {
		t.Fatal("helping did not persist the link")
	}
	// Idempotent and cheap on clean words.
	before := c.f.SyncWaits
	c.ensureDurable(a)
	if c.f.SyncWaits != before {
		t.Fatal("ensureDurable paid a sync on a clean word")
	}
}

func TestLoadCleanSpinsOutDirty(t *testing.T) {
	s, c, a := scratch(t, Options{MaxThreads: 1})
	s.dev.Store(a, 0x2000|ptrtag.Dirty)
	if got := c.loadClean(a); got != 0x2000 {
		t.Fatalf("loadClean = %#x, want 0x2000", got)
	}
	if ptrtag.IsDirty(s.dev.Load(a)) {
		t.Fatal("loadClean left the dirty mark")
	}
}

func TestLinkCachedFallsBackWhenCacheDisabled(t *testing.T) {
	s, c, a := scratch(t, Options{MaxThreads: 1}) // no link cache
	before := c.f.SyncWaits
	if !c.linkCached(42, a, 0x1000, 0x2000) {
		t.Fatal("linkCached failed")
	}
	if c.f.SyncWaits != before+1 {
		t.Fatalf("LP fallback should pay exactly one sync, paid %d", c.f.SyncWaits-before)
	}
	if s.dev.PersistedWord(a)&ptrtag.AddrMask != 0x2000 {
		t.Fatal("fallback did not persist")
	}
}

func TestLinkCachedDefersSyncWithCache(t *testing.T) {
	s, c, a := scratch(t, Options{MaxThreads: 1, LinkCache: true})
	before := c.f.SyncWaits
	if !c.linkCached(42, a, 0x1000, 0x2000) {
		t.Fatal("linkCached failed")
	}
	if c.f.SyncWaits != before {
		t.Fatal("link cache path should not sync")
	}
	if got := s.dev.Load(a); got != 0x2000 {
		t.Fatalf("volatile word = %#x, want 0x2000", got)
	}
	// The dependent operation's scan makes it durable.
	c.scan(42)
	if s.dev.PersistedWord(a)&ptrtag.AddrMask != 0x2000 {
		t.Fatal("scan did not flush the cached link")
	}
}

func TestVolatileModeSkipsEverything(t *testing.T) {
	s, c, a := scratch(t, Options{MaxThreads: 1, Volatile: true})
	dev := s.Device()
	dev.ResetStats()
	if !c.linkCached(42, a, 0x1000, 0x2000) {
		t.Fatal("volatile CAS failed")
	}
	c.ensureDurable(a)
	c.scan(42)
	c.clwb(a)
	c.fence()
	if st := dev.Stats(); st.SyncWaits != 0 || st.Clwbs != 0 {
		t.Fatalf("volatile mode issued persistence actions: %+v", st)
	}
}

func TestHelpersRaceOnSameDirtyWord(t *testing.T) {
	s, c, a := scratch(t, Options{MaxThreads: 2})
	c2 := s.MustCtx(1)
	s.dev.Store(a, 0x4000|ptrtag.Dirty)
	done := make(chan struct{}, 2)
	go func() { c.ensureDurable(a); done <- struct{}{} }()
	go func() { c2.ensureDurable(a); done <- struct{}{} }()
	<-done
	<-done
	if got := s.dev.Load(a); got != 0x4000 {
		t.Fatalf("racing helpers left %#x", got)
	}
	if s.dev.PersistedWord(a)&ptrtag.AddrMask != 0x4000 {
		t.Fatal("racing helpers failed to persist")
	}
}

func TestNVRAMImageSurvivesWithMarks(t *testing.T) {
	// A crash can catch a link mid-protocol (dirty bit persisted): the
	// recovered image must still resolve to the right address, and a helper
	// must clean it.
	dev := nvram.New(nvram.Config{Size: 16 << 20})
	s, _ := NewStore(dev, Options{MaxThreads: 1})
	c := s.MustCtx(0)
	n, _ := c.ep.AllocNode(listClass)
	a := n + nNext
	dev.Store(a, 0x2000|ptrtag.Dirty)
	c.f.Sync(a) // the dirty-marked value itself gets written back
	dev.Crash()
	if got := dev.Load(a); got != 0x2000|ptrtag.Dirty {
		t.Fatalf("image lost the marked link: %#x", got)
	}
	s2, _ := AttachStore(dev)
	c2 := s2.MustCtx(0)
	c2.ensureDurable(a)
	if got := dev.Load(a); got != 0x2000 {
		t.Fatalf("post-crash helping broken: %#x", got)
	}
}
