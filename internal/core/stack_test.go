package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/nvram"
)

func TestStackLIFO(t *testing.T) {
	for _, lc := range []bool{false, true} {
		name := map[bool]string{false: "LP", true: "LC"}[lc]
		t.Run(name, func(t *testing.T) {
			s := newTestStore(t, Options{LinkCache: lc})
			c := s.MustCtx(0)
			st, err := NewStack(c)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := st.Pop(c); ok {
				t.Fatal("pop from empty stack succeeded")
			}
			for v := uint64(1); v <= 100; v++ {
				st.Push(c, v)
			}
			if got := st.Len(c); got != 100 {
				t.Fatalf("Len = %d, want 100", got)
			}
			if v, ok := st.Peek(c); !ok || v != 100 {
				t.Fatalf("Peek = %d,%v", v, ok)
			}
			for v := uint64(100); v >= 1; v-- {
				got, ok := st.Pop(c)
				if !ok || got != v {
					t.Fatalf("Pop = %d,%v want %d", got, ok, v)
				}
			}
		})
	}
}

func TestStackConcurrent(t *testing.T) {
	s := newTestStore(t, Options{LinkCache: true})
	c0 := s.MustCtx(0)
	st, _ := NewStack(c0)
	const workers, per = 8, 1500
	var wg sync.WaitGroup
	var mu sync.Mutex
	popped := make(map[uint64]bool)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := s.CtxFor(w)
			rng := rand.New(rand.NewSource(int64(w)))
			pushed := 0
			for i := 0; pushed < per; i++ {
				if rng.Intn(2) == 0 {
					st.Push(c, uint64(w)<<32|uint64(pushed))
					pushed++
				} else if v, ok := st.Pop(c); ok {
					mu.Lock()
					if popped[v] {
						t.Errorf("value %#x popped twice", v)
					}
					popped[v] = true
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	c := s.MustCtx(0)
	for {
		v, ok := st.Pop(c)
		if !ok {
			break
		}
		mu.Lock()
		if popped[v] {
			t.Fatalf("value %#x popped twice at drain", v)
		}
		popped[v] = true
		mu.Unlock()
	}
	if len(popped) != workers*per {
		t.Fatalf("popped %d values, want %d", len(popped), workers*per)
	}
}

func TestStackDurableAcrossCrash(t *testing.T) {
	dev := nvram.New(nvram.Config{Size: 16 << 20})
	s, _ := NewStore(dev, Options{MaxThreads: 2})
	c := s.MustCtx(0)
	st, _ := NewStack(c)
	for v := uint64(1); v <= 200; v++ {
		st.Push(c, v)
	}
	for i := 0; i < 50; i++ {
		st.Pop(c)
	}
	c.Shutdown()
	dev.Crash()

	s2, _ := AttachStore(dev)
	st2 := AttachStack(s2, st.Descriptor())
	RecoverStack(s2, st2, 2)
	c2 := s2.MustCtx(0)
	for v := uint64(150); v >= 1; v-- {
		got, ok := st2.Pop(c2)
		if !ok || got != v {
			t.Fatalf("recovered Pop = %d,%v want %d", got, ok, v)
		}
	}
	if _, ok := st2.Pop(c2); ok {
		t.Fatal("recovered stack has extra elements")
	}
}

func TestStackRecoveryFreesOrphan(t *testing.T) {
	dev := nvram.New(nvram.Config{Size: 16 << 20})
	s, _ := NewStore(dev, Options{MaxThreads: 2})
	c := s.MustCtx(0)
	st, _ := NewStack(c)
	st.Push(c, 7)
	c.ep.Begin()
	orphan, _ := c.ep.AllocNode(listClass)
	dev.Store(orphan+nKey, stackNodeTag)
	c.f.CLWB(orphan)
	c.f.Fence()
	c.ep.End()
	dev.Crash()

	s2, _ := AttachStore(dev)
	st2 := AttachStack(s2, st.Descriptor())
	stats := RecoverStack(s2, st2, 1)
	if stats.Leaked == 0 {
		t.Fatal("orphan stack node not freed")
	}
	c2 := s2.MustCtx(0)
	if v, ok := st2.Pop(c2); !ok || v != 7 {
		t.Fatalf("live entry damaged: %d,%v", v, ok)
	}
}
