package core

// Model-checked crash torture (ISSUE 2): randomized op sequences applied to
// both a durable byte-key map and an in-memory model, with crashes injected
// at randomized write points inside an operation (the nvram StoreHook
// aborts the op mid-flight by panicking after a chosen number of word
// stores, then the device power-fails with a random subset of dirty lines
// evicted). After each recovery the durable state must match one of the
// model's linearizable frontiers:
//
//   - without the link cache every completed operation is durable when it
//     returns, so every key must hold exactly its model value — except the
//     key of the in-flight operation, which may hold the before or the
//     after state (each operation publishes through one atomic durable
//     point), never anything else;
//   - for the ordered map, a post-recovery scan must additionally visit
//     exactly the live keys in strictly ascending byte order.
//
// The harness runs for both byte-map shapes the public API serves: the
// hash-indexed map (KindMap) and the ordered skiplist-indexed map
// (KindOrderedMap) — and over both persistence backends (the in-process
// MemBackend and the file-backed mmap FileBackend), since the recovery
// guarantees must be substrate-independent.

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/nvram"
)

// injectedCrash is the panic payload of the store-count crash trigger.
type injectedCrash struct{}

// mcMap adapts the two byte-key maps to one model-checkable surface.
type mcMap interface {
	set(c *Ctx, key, value []byte) error
	get(c *Ctx, key []byte) (string, bool)
	del(c *Ctx, key []byte) bool
	// batch applies a whole op group through ApplyBatch (amortized-fence
	// commit): crash points inside it must recover to a per-op prefix.
	batch(c *Ctx, ops []BytesOp) error
	// pairs returns every live key/value; ordered maps report them in scan
	// order.
	pairs(c *Ctx) [][2]string
	ordered() bool
}

type mcBytes struct{ b *BytesMap }

func (m mcBytes) set(c *Ctx, k, v []byte) error { _, err := m.b.Set(c, k, v, 0, 0); return err }
func (m mcBytes) get(c *Ctx, k []byte) (string, bool) {
	v, ok := m.b.Get(c, k)
	return string(v), ok
}
func (m mcBytes) del(c *Ctx, k []byte) bool         { return m.b.Delete(c, k) }
func (m mcBytes) batch(c *Ctx, ops []BytesOp) error { return m.b.ApplyBatch(c, ops) }
func (m mcBytes) pairs(c *Ctx) [][2]string {
	var out [][2]string
	m.b.Range(c, func(k, v []byte) bool {
		out = append(out, [2]string{string(k), string(v)})
		return true
	})
	return out
}
func (m mcBytes) ordered() bool { return false }

type mcOrdered struct{ o *OrderedBytesMap }

func (m mcOrdered) set(c *Ctx, k, v []byte) error { _, err := m.o.Set(c, k, v, 0, 0); return err }
func (m mcOrdered) get(c *Ctx, k []byte) (string, bool) {
	v, ok := m.o.Get(c, k)
	return string(v), ok
}
func (m mcOrdered) del(c *Ctx, k []byte) bool         { return m.o.Delete(c, k) }
func (m mcOrdered) batch(c *Ctx, ops []BytesOp) error { return m.o.ApplyBatch(c, ops) }
func (m mcOrdered) pairs(c *Ctx) [][2]string {
	var out [][2]string
	m.o.Ascend(c, func(k, v []byte) bool {
		out = append(out, [2]string{string(k), string(v)})
		return true
	})
	return out
}
func (m mcOrdered) ordered() bool { return true }

// mcShape builds a fresh structure (persisting its anchors in user root
// slots) or re-attaches it after a crash.
type mcShape struct {
	build  func(c *Ctx) (mcMap, error)
	attach func(s *Store) (mcMap, Recoverer)
}

var mcBytesShape = mcShape{
	build: func(c *Ctx) (mcMap, error) {
		b, err := NewBytesMap(c, 32)
		if err != nil {
			return nil, err
		}
		c.s.SetRoot(c, RootUser+0, b.Buckets())
		c.s.SetRoot(c, RootUser+1, uint64(b.NumBuckets()))
		c.s.SetRoot(c, RootUser+2, b.Tail())
		return mcBytes{b}, nil
	},
	attach: func(s *Store) (mcMap, Recoverer) {
		b := AttachBytesMap(s, s.Root(RootUser+0), int(s.Root(RootUser+1)), s.Root(RootUser+2))
		return mcBytes{b}, b.Recoverer()
	},
}

var mcOrderedShape = mcShape{
	build: func(c *Ctx) (mcMap, error) {
		o, err := NewOrderedBytesMap(c)
		if err != nil {
			return nil, err
		}
		c.s.SetRoot(c, RootUser+0, o.Head())
		c.s.SetRoot(c, RootUser+1, o.Tail())
		return mcOrdered{o}, nil
	},
	attach: func(s *Store) (mcMap, Recoverer) {
		o := AttachOrderedBytesMap(s, s.Root(RootUser+0), s.Root(RootUser+1))
		return mcOrdered{o}, o.Recoverer()
	},
}

// mcUniverse is the key universe: shared prefixes, mixed lengths, and a
// same-bucket bias so collision chains and skiplist neighbours get stressed.
var mcUniverse = []string{
	"k", "k0", "k00", "k01", "k1", "k10", "k100",
	"a", "ab", "abc", "m", "z", "zz",
}

type mcOp struct {
	kind  int // 0 = set, 1 = delete, 2 = get, 3 = scan, 4 = batch commit
	key   string
	val   string
	batch []BytesOp // kind 4: sets and deletes applied via ApplyBatch
}

func randOp(rng *rand.Rand, seq int) mcOp {
	key := mcUniverse[rng.Intn(len(mcUniverse))]
	switch r := rng.Intn(100); {
	case r < 45:
		return mcOp{kind: 0, key: key, val: fmt.Sprintf("%s=%d", key, seq)}
	case r < 70:
		return mcOp{kind: 1, key: key}
	case r < 82:
		return mcOp{kind: 2, key: key}
	case r < 90:
		return mcOp{kind: 3}
	default:
		n := 2 + rng.Intn(5)
		ops := make([]BytesOp, n)
		for i := range ops {
			k := mcUniverse[rng.Intn(len(mcUniverse))]
			if rng.Intn(3) == 0 {
				ops[i] = BytesOp{Del: true, Key: []byte(k)}
			} else {
				ops[i] = BytesOp{Key: []byte(k),
					Value: []byte(fmt.Sprintf("%s=b%d.%d", k, seq, i))}
			}
		}
		return mcOp{kind: 4, batch: ops}
	}
}

// applyModel applies op to the model (the op's post state).
func applyModel(model map[string]string, op mcOp) {
	switch op.kind {
	case 0:
		model[op.key] = op.val
	case 1:
		delete(model, op.key)
	case 4:
		for _, b := range op.batch {
			if b.Del {
				delete(model, string(b.Key))
			} else {
				model[string(b.Key)] = string(b.Value)
			}
		}
	}
}

// frontiers returns every admissible durable state of op crashed mid-flight
// over the model state before: each op — and each op OF A BATCH — publishes
// through one atomic durable point, in order, so the admissible states are
// exactly the per-op prefixes (batches are crash-atomic per op, not
// transactional).
func frontiers(before map[string]string, op mcOp) []map[string]string {
	cp := func(m map[string]string) map[string]string {
		out := make(map[string]string, len(m))
		for k, v := range m {
			out[k] = v
		}
		return out
	}
	out := []map[string]string{cp(before)}
	switch op.kind {
	case 0, 1:
		after := cp(before)
		applyModel(after, op)
		out = append(out, after)
	case 4:
		cur := cp(before)
		for _, b := range op.batch {
			applyModel(cur, mcOp{kind: 4, batch: []BytesOp{b}})
			out = append(out, cp(cur))
		}
	}
	return out
}

// applyDurable applies op to the structure, checking read results against
// the model while no crash is pending.
func applyDurable(t *testing.T, m mcMap, c *Ctx, op mcOp, model map[string]string) {
	t.Helper()
	switch op.kind {
	case 0:
		if err := m.set(c, []byte(op.key), []byte(op.val)); err != nil {
			t.Fatal(err)
		}
	case 1:
		_, want := model[op.key]
		if got := m.del(c, []byte(op.key)); got != want {
			t.Fatalf("delete(%q) = %v, model says %v", op.key, got, want)
		}
	case 2:
		got, ok := m.get(c, []byte(op.key))
		want, wantOK := model[op.key]
		if ok != wantOK || (ok && got != want) {
			t.Fatalf("get(%q) = %q,%v, model %q,%v", op.key, got, ok, want, wantOK)
		}
	case 3:
		if got, want := len(m.pairs(c)), len(model); got != want {
			t.Fatalf("scan saw %d keys, model has %d", got, want)
		}
	case 4:
		if err := m.batch(c, op.batch); err != nil {
			t.Fatal(err)
		}
	}
}

// verifyFrontiers checks the recovered durable state against the
// linearizable frontiers: the state read back must equal one of the
// admissible models exactly (for a crashed batch: some per-op prefix).
func verifyFrontiers(t *testing.T, m mcMap, c *Ctx, fronts []map[string]string) {
	t.Helper()
	got := make(map[string]string, len(mcUniverse))
	for _, key := range mcUniverse {
		if v, ok := m.get(c, []byte(key)); ok {
			got[key] = v
		}
	}
	matched := false
	for _, f := range fronts {
		if len(f) != len(got) {
			continue
		}
		eq := true
		for k, v := range f {
			if gv, ok := got[k]; !ok || gv != v {
				eq = false
				break
			}
		}
		if eq {
			matched = true
			break
		}
	}
	if !matched {
		t.Fatalf("state after crash matches no admissible frontier (of %d): %v",
			len(fronts), got)
	}
	// The scan must agree with the point reads — and stay strictly ordered
	// for the ordered map.
	pairs := m.pairs(c)
	seen := make(map[string]string, len(pairs))
	var prev string
	for i, kv := range pairs {
		if m.ordered() && i > 0 && !(prev < kv[0]) {
			t.Fatalf("post-recovery scan out of order: %q then %q", prev, kv[0])
		}
		prev = kv[0]
		if _, dup := seen[kv[0]]; dup {
			t.Fatalf("post-recovery scan visited %q twice", kv[0])
		}
		seen[kv[0]] = kv[1]
	}
	for _, key := range mcUniverse {
		got, ok := m.get(c, []byte(key))
		sv, sok := seen[key]
		if ok != sok || (ok && got != sv) {
			t.Fatalf("scan/get disagree on %q: scan %q,%v get %q,%v", key, sv, sok, got, ok)
		}
		delete(seen, key)
	}
	if len(seen) != 0 {
		t.Fatalf("scan saw keys outside the universe: %v", seen)
	}
}

// mcBackends builds one fresh device per persistence backend. Every torture
// seed runs on each: crash frontiers, recovery sweeps and scan order must
// hold identically whether the persisted image is process memory or an
// mmap'd file.
func mcBackends() map[string]func(t *testing.T) *nvram.Device {
	return map[string]func(t *testing.T) *nvram.Device{
		"mem": func(t *testing.T) *nvram.Device {
			return nvram.New(nvram.Config{Size: 16 << 20})
		},
		"file": func(t *testing.T) *nvram.Device {
			d, _, err := nvram.OpenFileDevice(
				filepath.Join(t.TempDir(), "mc.pmem"), nvram.Config{Size: 16 << 20})
			if err != nil {
				t.Fatal(err)
			}
			// Release the mapping and descriptor when the subtest ends: the
			// nightly lane runs hundreds of these in one process.
			t.Cleanup(func() { d.Close() })
			return d
		},
		// The async-syncer modes and the DAX backend must be invisible to
		// crash frontiers and recovery sweeps: the persisted image is still
		// written synchronously at each fence, the modes only change what a
		// MACHINE crash could take (which StoreHook tortures do not model).
		"file-strict": func(t *testing.T) *nvram.Device {
			d, _, err := nvram.OpenFileDevice(
				filepath.Join(t.TempDir(), "mc.pmem"), nvram.Config{Size: 16 << 20})
			if err != nil {
				t.Fatal(err)
			}
			d.Backend().(*nvram.FileBackend).SetSyncPolicy(nvram.SyncPolicy{Mode: nvram.SyncStrict})
			t.Cleanup(func() { d.Close() })
			return d
		},
		"file-buffered": func(t *testing.T) *nvram.Device {
			d, _, err := nvram.OpenFileDevice(
				filepath.Join(t.TempDir(), "mc.pmem"), nvram.Config{Size: 16 << 20})
			if err != nil {
				t.Fatal(err)
			}
			d.Backend().(*nvram.FileBackend).SetSyncPolicy(
				nvram.SyncPolicy{Mode: nvram.SyncBuffered, MaxStaleness: time.Millisecond})
			t.Cleanup(func() { d.Close() })
			return d
		},
		"dax": func(t *testing.T) *nvram.Device {
			d, _, err := nvram.OpenDAXDevice(
				filepath.Join(t.TempDir(), "mc.pmem"), nvram.Config{Size: 16 << 20})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { d.Close() })
			return d
		},
	}
}

// runModelCheckBackends fans one (shape, seed) torture out over every
// persistence backend.
func runModelCheckBackends(t *testing.T, shape mcShape, seed int64) {
	for name, mk := range mcBackends() {
		t.Run(name, func(t *testing.T) {
			runModelCheck(t, shape, seed, mk(t))
		})
	}
}

func runModelCheck(t *testing.T, shape mcShape, seed int64, dev *nvram.Device) {
	rng := rand.New(rand.NewSource(seed))
	s, err := NewStore(dev, Options{MaxThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := s.MustCtx(0)
	m, err := shape.build(c)
	if err != nil {
		t.Fatal(err)
	}
	model := make(map[string]string)
	seq := 0

	rounds := 4
	for round := 0; round < rounds; round++ {
		nops := 20 + rng.Intn(40)
		crashAt := rng.Intn(nops)
		for i := 0; i < crashAt; i++ {
			op := randOp(rng, seq)
			seq++
			applyDurable(t, m, c, op, model)
			applyModel(model, op)
		}

		// The armed op: crash after a random number of word stores.
		op := randOp(rng, seq)
		seq++
		fronts := frontiers(model, op)

		countdown := 1 + rng.Intn(80)
		dev.StoreHook = func() {
			countdown--
			if countdown == 0 {
				panic(injectedCrash{})
			}
		}
		crashed := func() (crashed bool) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(injectedCrash); !ok {
						panic(r)
					}
					crashed = true
				}
			}()
			applyDurable(t, m, c, op, model)
			return false
		}()
		dev.StoreHook = nil
		if !crashed {
			// The op completed before the trigger fired: it is durable, so
			// the frontier collapses to the fully applied state.
			applyModel(model, op)
			fronts = fronts[len(fronts)-1:]
		}

		// Power failure with an adversarial partial eviction, reboot,
		// recovery.
		dev.CrashPartial(rng, []float64{0, 0.5, 1}[rng.Intn(3)])
		s2, err := AttachStore(dev)
		if err != nil {
			t.Fatal(err)
		}
		m2, rec := shape.attach(s2)
		RecoverSet(s2, []Recoverer{rec}, 2)
		c2 := s2.MustCtx(0)
		verifyFrontiers(t, m2, c2, fronts)

		// Adopt the durable outcome of the in-flight op and keep going on
		// the recovered store.
		model = make(map[string]string)
		for _, kv := range m2.pairs(c2) {
			model[kv[0]] = kv[1]
		}
		s, c, m = s2, c2, m2
	}

	// The recovered structure must still serve a full write/read cycle.
	for _, key := range mcUniverse {
		if err := m.set(c, []byte(key), []byte("final:"+key)); err != nil {
			t.Fatal(err)
		}
	}
	for _, key := range mcUniverse {
		if v, ok := m.get(c, []byte(key)); !ok || v != "final:"+key {
			t.Fatalf("final readback of %q: %q,%v", key, v, ok)
		}
	}
}

func modelCheckSeeds() int {
	if testing.Short() {
		return 3
	}
	return 10
}

func TestModelCheckMap(t *testing.T) {
	for seed := 0; seed < modelCheckSeeds(); seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runModelCheckBackends(t, mcBytesShape, int64(seed)*7919+1)
		})
	}
}

func TestModelCheckOrderedMap(t *testing.T) {
	for seed := 0; seed < modelCheckSeeds(); seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runModelCheckBackends(t, mcOrderedShape, int64(seed)*104729+2)
		})
	}
}

// TestModelCheckSameHash re-runs a few torture seeds with every key forced
// onto one index hash, so crash points land inside collision-chain and
// same-hash skiplist machinery.
func TestModelCheckSameHash(t *testing.T) {
	SetBytesHashForTesting(func([]byte) uint64 { return MinKey + 3 })
	defer SetBytesHashForTesting(nil)
	seeds := 2
	if testing.Short() {
		seeds = 1
	}
	for seed := 0; seed < seeds; seed++ {
		t.Run(fmt.Sprintf("map/seed=%d", seed), func(t *testing.T) {
			runModelCheckBackends(t, mcBytesShape, int64(seed)*31+5)
		})
		t.Run(fmt.Sprintf("ordered/seed=%d", seed), func(t *testing.T) {
			runModelCheckBackends(t, mcOrderedShape, int64(seed)*37+6)
		})
	}
}
