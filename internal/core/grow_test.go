package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/nvram"
)

// TestCtxGrowthBeyondMaxThreads: contexts grow past the formatted thread
// count (each grown thread backed by its own durable APT bank), operations on
// grown contexts are fully durable, and a crash recovers APT entries written
// by grown threads — their banks are found through the durable bank table.
func TestCtxGrowthBeyondMaxThreads(t *testing.T) {
	dev := nvram.New(nvram.Config{Size: 64 << 20})
	s, err := NewStore(dev, Options{MaxThreads: 1})
	if err != nil {
		t.Fatal(err)
	}
	c0 := s.MustCtx(0)
	b, err := NewBytesMap(c0, 64)
	if err != nil {
		t.Fatal(err)
	}
	s.SetRoot(c0, RootUser+0, b.Buckets())
	s.SetRoot(c0, RootUser+1, uint64(b.NumBuckets()))
	s.SetRoot(c0, RootUser+2, b.Tail())

	const workers = 6 // 5 past the formatted single thread
	ctxs := make([]*Ctx, workers)
	ctxs[0] = c0
	for w := 1; w < workers; w++ {
		c, err := s.GrowCtx()
		if err != nil {
			t.Fatalf("GrowCtx %d: %v", w, err)
		}
		ctxs[w] = c
	}
	if got := s.Manager().NumThreads(); got < workers {
		t.Fatalf("manager grew to %d threads, want >= %d", got, workers)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := ctxs[w]
			for i := 0; i < 200; i++ {
				k := []byte(fmt.Sprintf("w%d-%04d", w, i))
				if _, err := b.Set(c, k, k, 0, 0); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	dev.Crash()
	s2, err := AttachStore(dev)
	if err != nil {
		t.Fatal(err)
	}
	b2 := AttachBytesMap(s2, s2.Root(RootUser+0), int(s2.Root(RootUser+1)), s2.Root(RootUser+2))
	RecoverSet(s2, []Recoverer{b2.Recoverer()}, 2)
	c2 := s2.MustCtx(0)
	for w := 0; w < workers; w++ {
		for i := 0; i < 200; i++ {
			k := []byte(fmt.Sprintf("w%d-%04d", w, i))
			if v, ok := b2.Get(c2, k); !ok || string(v) != string(k) {
				t.Fatalf("key %s lost across crash (grown-thread durability): %q,%v", k, v, ok)
			}
		}
	}
	// Grown banks must survive re-attach too: a context on a high tid works.
	if _, err := s2.NewCtx(workers + 3); err != nil {
		t.Fatalf("NewCtx on grown tid after attach: %v", err)
	}
}

// TestBatchApplyBasic: ApplyBatch is equivalent to the ops applied in order,
// including batches that rewrite and delete their own keys (group splitting)
// and forced same-hash collisions.
func TestBatchApplyBasic(t *testing.T) {
	for _, collide := range []bool{false, true} {
		t.Run(fmt.Sprintf("collide=%v", collide), func(t *testing.T) {
			if collide {
				SetBytesHashForTesting(func([]byte) uint64 { return MinKey + 7 })
				defer SetBytesHashForTesting(nil)
			}
			dev := nvram.New(nvram.Config{Size: 64 << 20})
			s, err := NewStore(dev, Options{MaxThreads: 1})
			if err != nil {
				t.Fatal(err)
			}
			c := s.MustCtx(0)
			b, err := NewBytesMap(c, 64)
			if err != nil {
				t.Fatal(err)
			}
			o, err := NewOrderedBytesMap(c)
			if err != nil {
				t.Fatal(err)
			}
			var ops []BytesOp
			model := map[string]string{}
			for i := 0; i < 40; i++ {
				k := fmt.Sprintf("k%02d", i%13)
				v := fmt.Sprintf("v%d", i)
				if i%7 == 3 {
					ops = append(ops, BytesOp{Del: true, Key: []byte(k)})
					delete(model, k)
				} else {
					ops = append(ops, BytesOp{Key: []byte(k), Value: []byte(v)})
					model[k] = v
				}
			}
			if err := b.ApplyBatch(c, ops); err != nil {
				t.Fatal(err)
			}
			if err := o.ApplyBatch(c, ops); err != nil {
				t.Fatal(err)
			}
			for k, want := range model {
				if v, ok := b.Get(c, []byte(k)); !ok || string(v) != want {
					t.Fatalf("map %q = %q,%v want %q", k, v, ok, want)
				}
				if v, ok := o.Get(c, []byte(k)); !ok || string(v) != want {
					t.Fatalf("ordered %q = %q,%v want %q", k, v, ok, want)
				}
			}
			if got := b.Len(c); got != len(model) {
				t.Fatalf("map Len = %d want %d", got, len(model))
			}
			// Ordered map must also scan in strict order.
			var prev string
			n := 0
			o.Ascend(c, func(k, _ []byte) bool {
				if n > 0 && !(prev < string(k)) {
					t.Fatalf("scan out of order: %q then %q", prev, k)
				}
				prev = string(k)
				n++
				return true
			})
			if n != len(model) {
				t.Fatalf("ordered Len = %d want %d", n, len(model))
			}
		})
	}
}
