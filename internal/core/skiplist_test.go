package core

import (
	"testing"

	"repro/internal/nvram"
	"repro/internal/ptrtag"
)

func newTestSkip(t *testing.T, s *Store, c *Ctx) *SkipList {
	t.Helper()
	sl, err := NewSkipList(c)
	if err != nil {
		t.Fatal(err)
	}
	return sl
}

func TestSkipListSemantics(t *testing.T) {
	for _, lc := range []bool{false, true} {
		name := map[bool]string{false: "LP", true: "LC"}[lc]
		t.Run(name, func(t *testing.T) {
			s := newTestStore(t, Options{LinkCache: lc})
			c := s.MustCtx(0)
			sl := newTestSkip(t, s, c)
			runSetSemantics(t, sl, c)
		})
	}
}

func TestSkipListOrdering(t *testing.T) {
	s := newTestStore(t, Options{})
	c := s.MustCtx(0)
	sl := newTestSkip(t, s, c)
	// Insert in reverse to exercise tower placement.
	for k := uint64(500); k >= 1; k-- {
		if !sl.Insert(c, k, k*3) {
			t.Fatalf("insert %d failed", k)
		}
	}
	if got := sl.Len(c); got != 500 {
		t.Fatalf("Len = %d, want 500", got)
	}
	prev := uint64(0)
	sl.Range(c, func(k, v uint64) bool {
		if k <= prev || v != k*3 {
			t.Fatalf("order/value broken at %d (prev %d, v %d)", k, prev, v)
		}
		prev = k
		return true
	})
}

func TestSkipListOracleStress(t *testing.T) {
	for _, lc := range []bool{false, true} {
		name := map[bool]string{false: "LP", true: "LC"}[lc]
		t.Run(name, func(t *testing.T) {
			s := newTestStore(t, Options{LinkCache: lc})
			c := s.MustCtx(0)
			sl := newTestSkip(t, s, c)
			runOracleStress(t, s, sl, 4, 2000)
		})
	}
}

func TestSkipListContendedStress(t *testing.T) {
	for _, lc := range []bool{false, true} {
		name := map[bool]string{false: "LP", true: "LC"}[lc]
		t.Run(name, func(t *testing.T) {
			s := newTestStore(t, Options{LinkCache: lc})
			c := s.MustCtx(0)
			sl := newTestSkip(t, s, c)
			runContendedStress(t, s, sl, 8, 3000)
			// Level-0 chain must stay strictly sorted.
			prev := uint64(0)
			sl.Range(c, func(k, v uint64) bool {
				if k <= prev {
					t.Fatalf("level-0 order violated: %d after %d", k, prev)
				}
				prev = k
				return true
			})
		})
	}
}

// TestSkipListIndexConsistent checks that every node reachable on an index
// level is also reachable (and live) on level 0 after quiescence.
func TestSkipListIndexConsistent(t *testing.T) {
	s := newTestStore(t, Options{})
	c := s.MustCtx(0)
	sl := newTestSkip(t, s, c)
	runContendedStress(t, s, sl, 8, 3000)
	dev := s.Device()
	level0 := make(map[Addr]bool)
	curr := ptrtag.Addr(dev.Load(sl.head + slNext(0)))
	for curr != sl.tail {
		w := dev.Load(curr + slNext(0))
		if !ptrtag.IsMarked(w) {
			level0[curr] = true
		}
		curr = ptrtag.Addr(w)
	}
	for level := 1; level < MaxLevel; level++ {
		curr := ptrtag.Addr(dev.Load(sl.head + slNext(level)))
		for curr != sl.tail {
			w := dev.Load(curr + slNext(level))
			if !ptrtag.IsMarked(dev.Load(curr+slNext(0))) && !level0[curr] {
				t.Fatalf("level %d references node %#x not live on level 0", level, curr)
			}
			curr = ptrtag.Addr(w)
		}
	}
}

// TestSkipListDurableLevel0 crashes after operations and checks the durable
// level-0 chain matches an oracle (index levels are volatile by design).
func TestSkipListDurableLevel0(t *testing.T) {
	dev := nvram.New(nvram.Config{Size: 32 << 20})
	s, _ := NewStore(dev, Options{MaxThreads: 1})
	c := s.MustCtx(0)
	sl := newTestSkip(t, s, c)
	oracle := make(map[uint64]uint64)
	for k := uint64(1); k <= 200; k++ {
		sl.Insert(c, k, k+7)
		oracle[k] = k + 7
	}
	for k := uint64(1); k <= 200; k += 3 {
		sl.Delete(c, k)
		delete(oracle, k)
	}
	img := crashClone(t, dev)
	got := make(map[uint64]uint64)
	curr := ptrtag.Addr(img.Load(sl.head + slNext(0)))
	for curr != sl.tail {
		w := img.Load(curr + slNext(0))
		if !ptrtag.IsMarked(w) {
			got[img.Load(curr+slKey)] = img.Load(curr + slValue)
		}
		curr = ptrtag.Addr(w)
	}
	if len(got) != len(oracle) {
		t.Fatalf("durable level 0 has %d keys, oracle %d", len(got), len(oracle))
	}
	for k, v := range oracle {
		if got[k] != v {
			t.Fatalf("durable key %d = %d, want %d", k, got[k], v)
		}
	}
}

// TestSkipListRebuildIndex wipes the index levels and verifies RebuildIndex
// restores full operation.
func TestSkipListRebuildIndex(t *testing.T) {
	s := newTestStore(t, Options{})
	c := s.MustCtx(0)
	sl := newTestSkip(t, s, c)
	for k := uint64(1); k <= 300; k++ {
		sl.Insert(c, k, k)
	}
	dev := s.Device()
	// Sabotage every index level (simulating their loss in a crash).
	for i := 1; i < MaxLevel; i++ {
		dev.Store(sl.head+slNext(i), sl.tail)
	}
	sl.RebuildIndex(c)
	for k := uint64(1); k <= 300; k++ {
		if !sl.Contains(c, k) {
			t.Fatalf("key %d lost after rebuild", k)
		}
	}
	// And the index actually exists again (head level 1 not tail).
	if ptrtag.Addr(dev.Load(sl.head+slNext(1))) == sl.tail {
		t.Fatal("RebuildIndex left level 1 empty for 300 keys")
	}
	// The rebuilt list must keep operating correctly.
	if !sl.Insert(c, 1000, 1) || sl.Insert(c, 1000, 2) {
		t.Fatal("insert after rebuild broken")
	}
	if _, ok := sl.Delete(c, 150); !ok {
		t.Fatal("delete after rebuild broken")
	}
	if sl.Contains(c, 150) {
		t.Fatal("deleted key still present after rebuild")
	}
}

func TestSkipListRandomLevelBounded(t *testing.T) {
	s := newTestStore(t, Options{})
	c := s.MustCtx(0)
	histo := make([]int, MaxLevel)
	for i := 0; i < 10000; i++ {
		l := c.randomLevel()
		if l < 0 || l >= MaxLevel {
			t.Fatalf("randomLevel out of range: %d", l)
		}
		histo[l]++
	}
	if histo[0] < 4000 || histo[0] > 6000 {
		t.Fatalf("level 0 frequency %d not ≈ half", histo[0])
	}
}

func TestSkipListSeekAndScan(t *testing.T) {
	s := newTestStore(t, Options{})
	c := s.MustCtx(0)
	sl := newTestSkip(t, s, c)
	for _, k := range []uint64{10, 20, 30, 40, 50} {
		if !sl.Insert(c, k, k*100) {
			t.Fatal("insert failed")
		}
	}
	if k, v, ok := sl.SeekGE(c, 25); !ok || k != 30 || v != 3000 {
		t.Fatalf("SeekGE(25) = %d,%d,%v", k, v, ok)
	}
	if k, _, ok := sl.SeekGE(c, 30); !ok || k != 30 {
		t.Fatalf("SeekGE(30) = %d,%v", k, ok)
	}
	if _, _, ok := sl.SeekGE(c, 51); ok {
		t.Fatal("SeekGE past max should miss")
	}
	if k, _, ok := sl.Succ(c, 30); !ok || k != 40 {
		t.Fatalf("Succ(30) = %d,%v", k, ok)
	}
	if k, _, ok := sl.Succ(c, MinKey-1); !ok || k != 10 {
		t.Fatalf("Succ(MinKey-1) = %d,%v", k, ok)
	}
	if _, _, ok := sl.Succ(c, MaxKey); ok {
		t.Fatal("Succ(MaxKey) should miss")
	}
	var got []uint64
	sl.Scan(c, 20, 50, func(k, v uint64) bool {
		if v != k*100 {
			t.Fatalf("value mismatch: %d->%d", k, v)
		}
		got = append(got, k)
		return true
	})
	if len(got) != 3 || got[0] != 20 || got[1] != 30 || got[2] != 40 {
		t.Fatalf("Scan[20,50) = %v", got)
	}
	got = got[:0]
	sl.Scan(c, 0, 0, func(k, _ uint64) bool { got = append(got, k); return true })
	if len(got) != 5 {
		t.Fatalf("full Scan = %v", got)
	}
	sl.Delete(c, 30)
	if k, _, ok := sl.SeekGE(c, 25); !ok || k != 40 {
		t.Fatalf("SeekGE(25) after delete = %d,%v", k, ok)
	}
}
