package core

import (
	"repro/internal/epoch"
	"repro/internal/pmem"
	"repro/internal/ptrtag"
)

// List is a durable lock-free sorted linked list based on Harris's algorithm
// [DISC 2001], made durably linearizable with link-and-persist (§3):
//
//   - insert: the predecessor's adjacent links are persisted, the new node's
//     contents (and allocator/APT metadata) are fenced, then the linearizing
//     CAS installs the link with the Dirty mark, which is persisted and
//     cleared (Figure 1).
//   - delete: the target's and predecessor's adjacent links are persisted,
//     then the logical-deletion mark and the physical unlink are each
//     applied with link-and-persist.
//   - searches persist the adjacent links of the node they return (or the
//     link proving absence) before returning.
//
// Node layout (one 64-byte cache line, class 0): key, value, next. The next
// word's low bits carry the Harris mark and the Dirty mark.
type List struct {
	s    *Store
	head Addr // head sentinel (key 0); its next chains to tail (key ^0)
	tail Addr // tail sentinel (key ^0)
}

// Node field offsets.
const (
	nKey   = 0
	nValue = 8
	nNext  = 16

	listClass = pmem.Class(0)
)

func (s *Store) nodeKey(n Addr) uint64   { return s.dev.Load(n + nKey) }
func (s *Store) nodeValue(n Addr) uint64 { return s.dev.Load(n + nValue) }

// NewList creates an empty durable list anchored at a fresh sentinel pair.
// Persist the returned list's Head in a root slot to find it after restart.
func NewList(c *Ctx) (*List, error) {
	tail, err := c.ep.AllocNode(listClass)
	if err != nil {
		return nil, err
	}
	dev := c.s.dev
	dev.Store(tail+nKey, ^uint64(0))
	dev.Store(tail+nValue, 0)
	dev.Store(tail+nNext, 0)
	c.clwb(tail)

	head, err := c.ep.AllocNode(listClass)
	if err != nil {
		return nil, err
	}
	dev.Store(head+nKey, 0)
	dev.Store(head+nValue, 0)
	dev.Store(head+nNext, tail)
	c.clwb(head)
	c.fence()
	return &List{s: c.s, head: head, tail: tail}, nil
}

// AttachList reopens a list from its durable sentinel addresses.
func AttachList(s *Store, head, tail Addr) *List {
	return &List{s: s, head: head, tail: tail}
}

// Head returns the head sentinel address (store it in a root slot).
func (l *List) Head() Addr { return l.head }

// Tail returns the tail sentinel address (store it in a root slot).
func (l *List) Tail() Addr { return l.tail }

// checkKey panics on keys outside the user range; sentinels own the extremes.
func checkKey(key uint64) {
	if key < MinKey || key > MaxKey {
		panic("core: key out of range [MinKey, MaxKey]")
	}
}

// search returns the unmarked predecessor/current pair around key, helping
// to physically unlink (and durably persist the unlink of) any logically
// deleted nodes it passes — Harris's search with the durability rules of §3
// folded in. inPred is the address of the link word through which pred was
// reached (0 when pred is the head sentinel): update operations persist it
// so that all adjacent edges of the predecessor are durable before they make
// changes (§3).
func (l *List) search(c *Ctx, key uint64) (pred, curr, inPred Addr) {
	return searchFrom(c, l.s, l.head, key)
}

// searchFrom runs the Harris search from an arbitrary head sentinel; the
// hash table reuses it with per-bucket heads.
func searchFrom(c *Ctx, s *Store, head Addr, key uint64) (pred, curr, inPred Addr) {
	dev := s.dev
retry:
	for {
		pred = head
		inPred = 0
		curr = ptrtag.Addr(dev.Load(pred + nNext))
		for {
			currW := dev.Load(curr + nNext)
			if ptrtag.IsMarked(currW) {
				// curr is logically deleted: help unlink it. Before the edge
				// is modified it must be durable, as must the mark itself.
				succ := ptrtag.Addr(currW)
				c.ensureDurable(curr + nNext)
				predW := c.loadClean(pred + nNext)
				if ptrtag.Addr(predW) != curr || ptrtag.IsMarked(predW) {
					continue retry // pred moved or got deleted
				}
				// The unlink makes curr durably unreachable: its area must
				// be in the APT first so recovery can free it (§5.4).
				c.ep.PreRetire(curr)
				if !c.linkCached(s.nodeKey(curr), pred+nNext, predW, succ) {
					continue retry
				}
				epoch.DebugNoteUnlink(curr, pred+nNext, predW, succ, 1)
				c.ep.Retire(curr)
				curr = succ
				continue
			}
			if s.nodeKey(curr) >= key {
				return pred, curr, inPred
			}
			inPred = pred + nNext
			pred = curr
			curr = ptrtag.Addr(currW)
		}
	}
}

// listSearch is the shared read path: returns (value, ok) with the §3
// durability guarantees enforced before returning.
func listSearch(c *Ctx, s *Store, head Addr, key uint64) (uint64, bool) {
	pred, curr, _ := searchFrom(c, s, head, key)
	c.scan(key)
	c.ensureDurable(pred + nNext)
	if s.nodeKey(curr) == key {
		c.ensureDurable(curr + nNext)
		return s.nodeValue(curr), true
	}
	return 0, false
}

// listInsert is the shared insert path (List and the hash table's buckets).
func listInsert(c *Ctx, s *Store, head Addr, key, value uint64) bool {
	dev := s.dev
	for {
		pred, curr, inPred := searchFrom(c, s, head, key)
		c.scan(key)
		if s.nodeKey(curr) == key {
			// Failed insert: like a successful search, the links proving
			// presence must be durable before returning.
			c.ensureDurable(pred + nNext)
			c.ensureDurable(curr + nNext)
			return false
		}
		// All adjacent links of the predecessor must be durable before
		// linking (Figure 1, step 1): its outgoing edge, and its incoming
		// edge — which may still sit in the link cache under pred's key.
		if inPred != 0 {
			c.ensureDurable(inPred)
			c.scan(s.nodeKey(pred))
		}
		predW := c.loadClean(pred + nNext)
		if ptrtag.Addr(predW) != curr || ptrtag.IsMarked(predW) {
			continue
		}
		n, err := c.ep.AllocNode(listClass)
		if err != nil {
			panic(err) // out of simulated NVRAM: unrecoverable here
		}
		dev.Store(n+nKey, key)
		dev.Store(n+nValue, value)
		dev.Store(n+nNext, curr)
		c.clwb(n)
		// Fence: node contents, allocator bitmap, and APT entry are durable
		// before the node can become reachable (§5.5).
		c.fence()
		if c.linkCached(key, pred+nNext, predW, n) {
			return true
		}
		// Lost the race; the node was never visible, reclaim it directly.
		c.alloc.Free(n)
	}
}

// listUpsert is the shared upsert path (List, the hash table's buckets, and
// the bytes layer's index updates): insert key→value, or durably replace the
// value of an existing key in place. The value word shares the node's cache
// line with its links, so a single write-back covers the replacement.
// Returns true if the key was newly inserted.
func listUpsert(c *Ctx, s *Store, head Addr, key, value uint64) bool {
	for {
		_, curr, _ := searchFrom(c, s, head, key)
		c.scan(key)
		if s.nodeKey(curr) != key {
			if listInsert(c, s, head, key, value) {
				return true
			}
			continue // raced with a concurrent insert of the same key
		}
		old := s.nodeValue(curr)
		if !s.dev.CAS(curr+nValue, old, value) {
			continue
		}
		if ptrtag.IsMarked(s.dev.Load(curr + nNext)) {
			continue // deleted concurrently: retry as an insert
		}
		c.f.Sync(curr + nValue)
		return false
	}
}

// listDelete is the shared delete path.
func listDelete(c *Ctx, s *Store, head Addr, key uint64) (uint64, bool) {
	for {
		pred, curr, inPred := searchFrom(c, s, head, key)
		c.scan(key)
		if s.nodeKey(curr) != key {
			c.ensureDurable(pred + nNext) // absence must be durable
			return 0, false
		}
		// Adjacent links of the target and of its predecessor must be
		// durable before unlinking (§3): pred's outgoing and incoming edges,
		// and the target's outgoing edge.
		if inPred != 0 {
			c.ensureDurable(inPred)
			c.scan(s.nodeKey(pred))
		}
		c.ensureDurable(pred + nNext)
		currW := c.loadClean(curr + nNext)
		if ptrtag.IsMarked(currW) {
			continue // another delete got here first; retry (search helps)
		}
		succ := ptrtag.Addr(currW)
		// The mark makes curr durably dead; recovery must know its area.
		c.ep.PreRetire(curr)
		if !c.linkCached(key, curr+nNext, currW, succ|ptrtag.Mark) {
			continue
		}
		value := s.nodeValue(curr)
		// Physical unlink; on failure a helper completes it (and retires).
		predW := c.loadClean(pred + nNext)
		if ptrtag.Addr(predW) == curr && !ptrtag.IsMarked(predW) {
			if c.linkCached(key, pred+nNext, predW, succ) {
				epoch.DebugNoteUnlink(curr, pred+nNext, predW, succ, 2)
				c.ep.Retire(curr)
			}
		}
		return value, true
	}
}

// Search looks key up. On hit it returns (value, true) after making the
// returned node's adjacent links durable; on miss it returns (0, false)
// after making the absence durable (§3, "Durable Implementations").
func (l *List) Search(c *Ctx, key uint64) (uint64, bool) {
	checkKey(key)
	c.ep.Begin()
	defer c.ep.End()
	return listSearch(c, l.s, l.head, key)
}

// Contains reports whether key is present.
func (l *List) Contains(c *Ctx, key uint64) bool {
	_, ok := l.Search(c, key)
	return ok
}

// Insert adds key→value. Returns false if key is already present. The
// insertion is durable (or dependency-flush-deferred via the link cache)
// when Insert returns.
func (l *List) Insert(c *Ctx, key, value uint64) bool {
	checkKey(key)
	c.ep.Begin()
	defer c.ep.End()
	return listInsert(c, l.s, l.head, key, value)
}

// Delete removes key, returning its value. The logical-deletion mark (the
// linearization point) and the physical unlink are both applied with
// link-and-persist.
func (l *List) Delete(c *Ctx, key uint64) (uint64, bool) {
	checkKey(key)
	c.ep.Begin()
	defer c.ep.End()
	return listDelete(c, l.s, l.head, key)
}

// Upsert inserts key→value or durably replaces the value of an existing key
// in place. Returns true if the key was newly inserted.
func (l *List) Upsert(c *Ctx, key, value uint64) bool {
	checkKey(key)
	c.ep.Begin()
	defer c.ep.End()
	return listUpsert(c, l.s, l.head, key, value)
}

// Len counts the live nodes (linearizable only in quiescence; diagnostic).
func (l *List) Len(c *Ctx) int {
	dev := l.s.dev
	n := 0
	curr := ptrtag.Addr(dev.Load(l.head + nNext))
	for l.s.nodeKey(curr) != ^uint64(0) {
		w := dev.Load(curr + nNext)
		if !ptrtag.IsMarked(w) {
			n++
		}
		curr = ptrtag.Addr(w)
	}
	return n
}

// Range calls fn for every live key/value in ascending order (quiescent use).
func (l *List) Range(c *Ctx, fn func(key, value uint64) bool) {
	dev := l.s.dev
	curr := ptrtag.Addr(dev.Load(l.head + nNext))
	for l.s.nodeKey(curr) != ^uint64(0) {
		w := dev.Load(curr + nNext)
		if !ptrtag.IsMarked(w) {
			if !fn(l.s.nodeKey(curr), l.s.nodeValue(curr)) {
				return
			}
		}
		curr = ptrtag.Addr(w)
	}
}
