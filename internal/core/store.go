// Package core implements the paper's primary contribution: log-free durable
// concurrent data structures (linked list, hash table, skip list, binary
// search tree) built from three techniques:
//
//   - link-and-persist (§3): the linearizing CAS installs the new link with
//     a volatile Dirty mark; the link is then written back and the mark
//     removed, by the updater or by any helper. No operation returns before
//     the links it depends on are durable, giving durable linearizability
//     without any logging in data-structure operations.
//   - the link cache (§4): updates may deposit modified links in a volatile
//     cache instead of syncing them one at a time; dependent operations
//     flush whole buckets in one batched sync.
//   - NV-epochs (§5): memory reclamation whose only durable bookkeeping is
//     the per-thread active page table, written only on locality misses.
//
// All structures implement the set abstraction over 8-byte keys and values
// (§6.1). Keys must lie in [MinKey, MaxKey]; the values 0 and ^uint64(0)
// are reserved for sentinels.
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/epoch"
	"repro/internal/linkcache"
	"repro/internal/nvram"
	"repro/internal/pmem"
)

// Addr is a byte offset into the device.
type Addr = nvram.Addr

// Key-space bounds for user keys; the values above MaxKey (and 0) are
// sentinel keys (the BST needs three infinities, §3 / Natarajan-Mittal).
const (
	MinKey uint64 = 1
	MaxKey uint64 = ^uint64(0) - 3
)

// Root-directory slot assignments.
const (
	rootMgrAPT   = 0 // epoch manager's active-page-table region
	rootMgrLog   = 1 // epoch manager's alloc-log region (baseline mode)
	rootMeta     = 2 // packed store options, for Attach
	rootMgrBanks = 3 // epoch manager's grown-thread bank table
	RootUser     = 8 // first slot available to structure descriptors
)

// Options configures a Store.
type Options struct {
	// MaxThreads bounds the number of concurrent contexts.
	MaxThreads int
	// LinkCache enables the link cache (§4) for update operations.
	LinkCache bool
	// LinkCacheBuckets sets the cache size; 0 means the paper's 32 buckets.
	LinkCacheBuckets int
	// AllocLogging switches NV-epochs into the traditional durable
	// alloc/free-logging baseline (Figure 9b).
	AllocLogging bool
	// AreaShift is log2 of the active-area granularity (default 12 = 4KB).
	AreaShift uint
	// EpochGenSize overrides the reclamation generation size (default 64).
	EpochGenSize int
	// APTTrimAt overrides the APT trim threshold (default 16).
	APTTrimAt int
	// Volatile strips all durability actions (write-backs, fences, dirty
	// marks, APT bookkeeping) while keeping the algorithms identical: the
	// "implementation oblivious of NVRAM" baseline of Figure 7. Pair it
	// with a zero WriteLatency device.
	Volatile bool
}

// Store bundles one device's substrates: allocator pool, epoch manager, and
// (optionally) the link cache. All durable structures on a device share one
// Store.
type Store struct {
	dev  *nvram.Device
	pool *pmem.Pool
	mgr  *epoch.Manager
	lc   *linkcache.Cache
	opts Options

	// Registered per-thread contexts, indexed by tid. The slice grows past
	// Options.MaxThreads on demand (the manager carves a durable APT bank
	// per extra thread): readers load the pointer lock-free, growth copies
	// under ctxMu.
	ctxMu sync.Mutex
	ctxs  atomic.Pointer[[]*Ctx]

	// bytesLocks are the entry-lifecycle stripes of every BytesMap on this
	// store, keyed by index-key hash (see bytes.go). Store-level so that
	// independently attached BytesMap values over the same durable map
	// share one serialization domain. 2048 stripes keep the collision rate
	// negligible at the tens-of-threads scale the parallel benchmarks run.
	bytesLocks [2048]sync.Mutex
}

// ErrTooManyThreads is returned when a context cannot be created: a negative
// tid, or thread growth past the epoch manager's durable bank limit.
var ErrTooManyThreads = errors.New("core: tid out of range")

// NewStore formats dev and initializes the substrates.
func NewStore(dev *nvram.Device, opts Options) (*Store, error) {
	if opts.MaxThreads <= 0 {
		opts.MaxThreads = 1
	}
	pool := pmem.Format(dev)
	pool.SetVolatile(opts.Volatile)
	f := dev.NewFlusher()
	mgr, err := epoch.NewManager(pool, f, epoch.Config{
		MaxThreads:   opts.MaxThreads,
		GenSize:      opts.EpochGenSize,
		TrimAt:       opts.APTTrimAt,
		AreaShift:    opts.AreaShift,
		AllocLogging: opts.AllocLogging,
		Volatile:     opts.Volatile,
	})
	if err != nil {
		return nil, err
	}
	pool.SetRoot(f, rootMgrAPT, mgr.RegionAddr())
	pool.SetRoot(f, rootMgrLog, mgr.LogRegionAddr())
	pool.SetRoot(f, rootMgrBanks, mgr.BanksRegionAddr())
	pool.SetRoot(f, rootMeta, packMeta(opts))
	s := &Store{dev: dev, pool: pool, mgr: mgr, opts: opts}
	s.storeCtxs(make([]*Ctx, opts.MaxThreads))
	s.initVolatile()
	return s, nil
}

// PoolFormatted reports whether dev's persisted image already holds a
// formatted pool: the open-or-create probe deciding NewStore vs AttachStore
// for durable backends (file-backed devices reopened after a crash).
func PoolFormatted(dev *nvram.Device) bool { return pmem.Formatted(dev) }

// AttachStore re-opens a store after a crash or restart. Volatile state
// (link cache, epochs, generations) starts empty, exactly as after a reboot.
// Run the structures' Recover methods before serving operations.
func AttachStore(dev *nvram.Device) (*Store, error) {
	pool, err := pmem.Attach(dev)
	if err != nil {
		return nil, err
	}
	opts := unpackMeta(pool.Root(rootMeta))
	mgr := epoch.AttachManager(pool, pool.Root(rootMgrAPT), pool.Root(rootMgrLog),
		pool.Root(rootMgrBanks),
		epoch.Config{
			MaxThreads:   opts.MaxThreads,
			AreaShift:    opts.AreaShift,
			AllocLogging: opts.AllocLogging,
		})
	s := &Store{dev: dev, pool: pool, mgr: mgr, opts: opts}
	s.storeCtxs(make([]*Ctx, opts.MaxThreads))
	s.initVolatile()
	return s, nil
}

func (s *Store) initVolatile() {
	if s.opts.LinkCache {
		s.lc = linkcache.New(s.dev, s.opts.LinkCacheBuckets)
	}
	// §5.4: before APT entries can be trimmed, and before freed slots can be
	// reused, the link cache must hold no entries for the affected pages.
	hook := func(tid int) {
		if s.lc == nil {
			return
		}
		if c := s.ExistingCtx(tid); c != nil {
			s.lc.FlushAll(c.f)
		}
	}
	s.mgr.TrimHook = hook
	s.mgr.FreeHook = hook
}

func packMeta(o Options) uint64 {
	v := uint64(o.MaxThreads)&0xFFFF | uint64(o.AreaShift&0xFF)<<16
	if o.LinkCache {
		v |= 1 << 24
	}
	if o.AllocLogging {
		v |= 1 << 25
	}
	return v
}

func unpackMeta(v uint64) Options {
	return Options{
		MaxThreads:   int(v & 0xFFFF),
		AreaShift:    uint(v >> 16 & 0xFF),
		LinkCache:    v&(1<<24) != 0,
		AllocLogging: v&(1<<25) != 0,
	}
}

// Device returns the underlying simulated NVRAM device.
func (s *Store) Device() *nvram.Device { return s.dev }

// Pool returns the persistent allocator pool.
func (s *Store) Pool() *pmem.Pool { return s.pool }

// Manager returns the NV-epochs manager.
func (s *Store) Manager() *epoch.Manager { return s.mgr }

// LinkCache returns the link cache, or nil when disabled.
func (s *Store) LinkCache() *linkcache.Cache { return s.lc }

// Options returns the store options.
func (s *Store) Options() Options { return s.opts }

// SetRoot durably records a structure descriptor in root slot i (use
// RootUser and above).
func (s *Store) SetRoot(c *Ctx, i int, v uint64) { s.pool.SetRoot(c.f, i, v) }

// Root reads root slot i.
func (s *Store) Root(i int) uint64 { return s.pool.Root(i) }

// Ctx is a per-thread operation context: flusher, allocator context, epoch
// context, and a PRNG for skip-list levels. Create one per worker goroutine.
type Ctx struct {
	s     *Store
	f     *nvram.Flusher
	alloc *pmem.Ctx
	ep    *epoch.Ctx
	tid   int
	rng   *rand.Rand
}

func (s *Store) loadCtxs() []*Ctx    { return *s.ctxs.Load() }
func (s *Store) storeCtxs(cs []*Ctx) { s.ctxs.Store(&cs) }

// newCtxLocked creates and registers the context for tid (growing the epoch
// manager's durable thread banks when tid is past the formatted MaxThreads).
// Caller holds ctxMu.
func (s *Store) newCtxLocked(tid int) (*Ctx, error) {
	if tid < 0 {
		return nil, fmt.Errorf("%w: %d", ErrTooManyThreads, tid)
	}
	f := s.dev.NewFlusher()
	if err := s.mgr.EnsureThread(tid, f); err != nil {
		f.Release()
		return nil, fmt.Errorf("%w: %d: %v", ErrTooManyThreads, tid, err)
	}
	alloc := s.pool.NewCtx(f)
	c := &Ctx{
		s:     s,
		f:     f,
		alloc: alloc,
		ep:    s.mgr.NewCtx(tid, alloc, f),
		tid:   tid,
		rng:   rand.New(rand.NewSource(int64(tid)*0x9E3779B9 + 1)),
	}
	cur := s.loadCtxs()
	var grown []*Ctx
	if tid >= len(cur) {
		grown = make([]*Ctx, tid+1)
	} else {
		grown = make([]*Ctx, len(cur))
	}
	copy(grown, cur)
	if old := grown[tid]; old != nil {
		// Replaced context: deregister its flusher (counters fold into the
		// device totals) so re-registration cycles don't pin dead flushers.
		old.f.Release()
	}
	grown[tid] = c
	s.storeCtxs(grown)
	return c, nil
}

// NewCtx creates (and registers) the context for thread tid, replacing any
// existing registration. tids at or past Options.MaxThreads grow the store's
// thread count (each grown thread gets its own durable APT bank).
func (s *Store) NewCtx(tid int) (*Ctx, error) {
	s.ctxMu.Lock()
	defer s.ctxMu.Unlock()
	return s.newCtxLocked(tid)
}

// MustCtx is NewCtx that panics on error, for tests and examples.
func (s *Store) MustCtx(tid int) *Ctx {
	c, err := s.NewCtx(tid)
	if err != nil {
		panic(err)
	}
	return c
}

// CtxFor returns the registered context for tid, creating it on first use.
// Unlike NewCtx it never replaces an existing context.
func (s *Store) CtxFor(tid int) *Ctx {
	if cs := s.loadCtxs(); tid >= 0 && tid < len(cs) && cs[tid] != nil {
		return cs[tid]
	}
	s.ctxMu.Lock()
	defer s.ctxMu.Unlock()
	if cs := s.loadCtxs(); tid >= 0 && tid < len(cs) && cs[tid] != nil {
		return cs[tid]
	}
	c, err := s.newCtxLocked(tid)
	if err != nil {
		panic(err)
	}
	return c
}

// GrowCtx creates a context on the lowest unregistered tid — the session
// pool's growth path: callers that just need "one more context" and do not
// care which tid backs it.
func (s *Store) GrowCtx() (*Ctx, error) {
	s.ctxMu.Lock()
	defer s.ctxMu.Unlock()
	cur := s.loadCtxs()
	tid := len(cur)
	for i, c := range cur {
		if c == nil {
			tid = i
			break
		}
	}
	return s.newCtxLocked(tid)
}

// ExistingCtx returns the registered context for tid, or nil.
func (s *Store) ExistingCtx(tid int) *Ctx {
	if cs := s.loadCtxs(); tid >= 0 && tid < len(cs) {
		return cs[tid]
	}
	return nil
}

// NumCtxSlots returns the current length of the context registry (tids ever
// registered; some slots may be nil).
func (s *Store) NumCtxSlots() int { return len(s.loadCtxs()) }

// ForEachCtx calls fn for every registered context. Intended for quiescent
// maintenance (drain, shutdown).
func (s *Store) ForEachCtx(fn func(c *Ctx)) {
	for _, c := range s.loadCtxs() {
		if c != nil {
			fn(c)
		}
	}
}

// Flusher exposes the context's persistence context (stats, manual syncs).
func (c *Ctx) Flusher() *nvram.Flusher { return c.f }

// Epoch exposes the context's reclamation context (stats).
func (c *Ctx) Epoch() *epoch.Ctx { return c.ep }

// Tid returns the context's thread id.
func (c *Ctx) Tid() int { return c.tid }

// Shutdown drains this context: seals and reclaims retired nodes, flushes
// the link cache, and releases allocator pages. Call before a planned stop.
func (c *Ctx) Shutdown() {
	if c.s.lc != nil {
		c.s.lc.FlushAll(c.f)
	}
	c.ep.FlushAll()
	c.alloc.Release()
	c.f.Fence()
}
