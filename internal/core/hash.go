package core

// HashTable is a durable lock-free hash table: one Harris linked list per
// bucket (§3, "the hash table uses one Harris linked list per bucket"),
// each made durable with link-and-persist. The bucket array is a
// structure-lifetime region of per-bucket head sentinels laid out like
// ordinary nodes (64 bytes apiece) so the list machinery applies unchanged;
// it is persisted once at creation.
type HashTable struct {
	s       *Store
	buckets Addr   // region: nbuckets sentinel pseudo-nodes, 64B stride
	mask    uint64 // nbuckets-1 (power of two)
	tail    Addr   // shared tail sentinel
}

// NewHashTable creates a table with nbuckets buckets (rounded up to a power
// of two). Persist Descriptor's fields in root slots to re-attach later.
func NewHashTable(c *Ctx, nbuckets int) (*HashTable, error) {
	n := 1
	for n < nbuckets {
		n <<= 1
	}
	dev := c.s.dev
	tail, err := c.ep.AllocNode(listClass)
	if err != nil {
		return nil, err
	}
	dev.Store(tail+nKey, ^uint64(0))
	dev.Store(tail+nValue, 0)
	dev.Store(tail+nNext, 0)
	c.clwb(tail)

	region, err := c.s.pool.AllocRegion(c.f, uint64(n)*64)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		h := region + Addr(i)*64
		dev.Store(h+nKey, 0)
		dev.Store(h+nValue, 0)
		dev.Store(h+nNext, tail)
		c.clwb(h + nNext)
		if i%64 == 63 {
			c.fence() // bound the pending set while initializing
		}
	}
	c.fence()
	return &HashTable{s: c.s, buckets: region, mask: uint64(n - 1), tail: tail}, nil
}

// AttachHashTable reopens a table from its durable descriptor values.
func AttachHashTable(s *Store, buckets Addr, nbuckets int, tail Addr) *HashTable {
	return &HashTable{s: s, buckets: buckets, mask: uint64(nbuckets - 1), tail: tail}
}

// Buckets returns the bucket-region address (persist in a root).
func (h *HashTable) Buckets() Addr { return h.buckets }

// NumBuckets returns the bucket count.
func (h *HashTable) NumBuckets() int { return int(h.mask) + 1 }

// Tail returns the shared tail sentinel address (persist in a root).
func (h *HashTable) Tail() Addr { return h.tail }

// hashMix is the same finalizer the link cache uses; keys spread uniformly.
func hashMix(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xBF58476D1CE4E5B9
	k ^= k >> 27
	k *= 0x94D049BB133111EB
	k ^= k >> 31
	return k
}

func (h *HashTable) bucket(key uint64) Addr {
	return h.buckets + Addr(hashMix(key)&h.mask)*64
}

// Search looks key up with the §3 durability guarantees.
func (h *HashTable) Search(c *Ctx, key uint64) (uint64, bool) {
	checkKey(key)
	c.ep.Begin()
	defer c.ep.End()
	return listSearch(c, h.s, h.bucket(key), key)
}

// Contains reports whether key is present.
func (h *HashTable) Contains(c *Ctx, key uint64) bool {
	_, ok := h.Search(c, key)
	return ok
}

// Insert adds key→value; false if already present.
func (h *HashTable) Insert(c *Ctx, key, value uint64) bool {
	checkKey(key)
	c.ep.Begin()
	defer c.ep.End()
	return listInsert(c, h.s, h.bucket(key), key, value)
}

// Delete removes key, returning its value.
func (h *HashTable) Delete(c *Ctx, key uint64) (uint64, bool) {
	checkKey(key)
	c.ep.Begin()
	defer c.ep.End()
	return listDelete(c, h.s, h.bucket(key), key)
}

// Upsert inserts key→value or durably replaces the value of an existing
// key in place (one word store + sync; the value word shares the node's
// cache line with its links, so a single write-back covers it). Returns
// true if the key was newly inserted.
func (h *HashTable) Upsert(c *Ctx, key, value uint64) bool {
	checkKey(key)
	c.ep.Begin()
	defer c.ep.End()
	return listUpsert(c, h.s, h.bucket(key), key, value)
}

// Len counts live keys (quiescent use).
func (h *HashTable) Len(c *Ctx) int {
	n := 0
	for i := 0; i <= int(h.mask); i++ {
		head := h.buckets + Addr(i)*64
		n += AttachList(h.s, head, h.tail).Len(c)
	}
	return n
}

// Range calls fn for every live key/value (unordered across buckets).
func (h *HashTable) Range(c *Ctx, fn func(key, value uint64) bool) {
	stop := false
	for i := 0; i <= int(h.mask) && !stop; i++ {
		head := h.buckets + Addr(i)*64
		AttachList(h.s, head, h.tail).Range(c, func(k, v uint64) bool {
			if !fn(k, v) {
				stop = true
				return false
			}
			return true
		})
	}
}
