package core

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

// A linearizability checker for set histories. Operations on different keys
// commute under set semantics, so the full history projects onto per-key
// sub-histories that are checked independently: for each key there must
// exist a total order of its operations that (a) respects real time — if
// op A's response precedes op B's invocation, A orders before B — and (b)
// is legal for a set register (Insert returns true iff absent, Delete
// returns (value, true) iff present, Search returns the current binding).
//
// The search is Wing & Gong style DFS, but exploits that ops are mostly
// sequential per key: candidates at each step are limited to the window of
// mutually concurrent front operations (≤ #threads), memoized on
// (front-window choice set, abstract state).

type histEvent struct {
	op       uint8 // 0 insert, 1 delete, 2 search
	val      uint64
	ok       bool
	retV     uint64
	invoke   uint64
	response uint64
}

const (
	opInsert = 0
	opDelete = 1
	opSearch = 2
)

// linearizable reports whether the per-key history can be linearized.
func linearizable(events []histEvent) bool {
	sort.Slice(events, func(i, j int) bool { return events[i].invoke < events[j].invoke })
	n := len(events)
	taken := make([]bool, n)
	type state struct {
		present bool
		value   uint64
	}
	// memo key: smallest untaken index + bitmask of taken ops in the
	// following window + state.
	type memoKey struct {
		base  int
		mask  uint64
		state state
	}
	memo := make(map[memoKey]bool)

	var dfs func(cur state, done int) bool
	dfs = func(cur state, done int) bool {
		if done == n {
			return true
		}
		base := 0
		for base < n && taken[base] {
			base++
		}
		var mask uint64
		for i := base; i < n && i < base+64; i++ {
			if taken[i] {
				mask |= 1 << uint(i-base)
			}
		}
		mk := memoKey{base, mask, cur}
		if seen, ok := memo[mk]; ok {
			return seen
		}
		// minResp over untaken ops bounds which ops may linearize next.
		minResp := ^uint64(0)
		for i := base; i < n; i++ {
			if !taken[i] && events[i].response < minResp {
				minResp = events[i].response
			}
		}
		result := false
		for i := base; i < n && !result; i++ {
			if taken[i] || events[i].invoke > minResp {
				continue // i cannot precede the op that responded first
			}
			e := &events[i]
			var next state
			legal := false
			switch e.op {
			case opInsert:
				if e.ok && !cur.present {
					legal, next = true, state{true, e.val}
				} else if !e.ok && cur.present {
					legal, next = true, cur
				}
			case opDelete:
				if e.ok && cur.present && e.retV == cur.value {
					legal, next = true, state{}
				} else if !e.ok && !cur.present {
					legal, next = true, cur
				}
			case opSearch:
				if e.ok && cur.present && e.retV == cur.value {
					legal, next = true, cur
				} else if !e.ok && !cur.present {
					legal, next = true, cur
				}
			}
			if !legal {
				continue
			}
			taken[i] = true
			result = dfs(next, done+1)
			taken[i] = false
		}
		memo[mk] = result
		return result
	}
	return dfs(state{}, 0)
}

// TestLinearizabilityCheckerSelfTest validates the checker on hand-built
// histories before trusting it on real ones.
func TestLinearizabilityCheckerSelfTest(t *testing.T) {
	// Sequential legal history.
	ok := linearizable([]histEvent{
		{op: opInsert, val: 5, ok: true, invoke: 1, response: 2},
		{op: opSearch, retV: 5, ok: true, invoke: 3, response: 4},
		{op: opDelete, retV: 5, ok: true, invoke: 5, response: 6},
		{op: opSearch, ok: false, invoke: 7, response: 8},
	})
	if !ok {
		t.Fatal("legal sequential history rejected")
	}
	// Illegal: search sees a value never inserted.
	ok = linearizable([]histEvent{
		{op: opInsert, val: 5, ok: true, invoke: 1, response: 2},
		{op: opSearch, retV: 6, ok: true, invoke: 3, response: 4},
	})
	if ok {
		t.Fatal("illegal history accepted (phantom value)")
	}
	// Illegal: delete succeeded before any insert completed... but they
	// overlap, so it IS linearizable (delete after insert).
	ok = linearizable([]histEvent{
		{op: opInsert, val: 5, ok: true, invoke: 1, response: 10},
		{op: opDelete, retV: 5, ok: true, invoke: 2, response: 9},
	})
	if !ok {
		t.Fatal("overlapping insert/delete wrongly rejected")
	}
	// Illegal: delete strictly precedes the only insert in real time.
	ok = linearizable([]histEvent{
		{op: opDelete, retV: 5, ok: true, invoke: 1, response: 2},
		{op: opInsert, val: 5, ok: true, invoke: 3, response: 4},
	})
	if ok {
		t.Fatal("real-time violation accepted")
	}
	// Illegal: two successful inserts with no delete between.
	ok = linearizable([]histEvent{
		{op: opInsert, val: 1, ok: true, invoke: 1, response: 2},
		{op: opInsert, val: 2, ok: true, invoke: 3, response: 4},
	})
	if ok {
		t.Fatal("double successful insert accepted")
	}
}

// runLinearizabilityStress hammers one structure with fully concurrent
// same-key operations while recording the complete timed history, then
// checks every per-key projection.
func runLinearizabilityStress(t *testing.T, s *Store, st set, workers, opsPer, keySpace int) {
	t.Helper()
	var clock atomic.Uint64
	type timed struct {
		key uint64
		ev  histEvent
	}
	hists := make([][]timed, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := s.MustCtx(w)
			rng := rand.New(rand.NewSource(int64(w)*17 + 3))
			local := make([]timed, 0, opsPer)
			for i := 0; i < opsPer; i++ {
				k := uint64(rng.Intn(keySpace)) + 1
				v := uint64(w)<<32 | uint64(i)
				e := histEvent{invoke: clock.Add(1)}
				switch rng.Intn(4) {
				case 0, 1:
					e.op = opInsert
					e.val = v
					e.ok = st.Insert(c, k, v)
				case 2:
					e.op = opDelete
					e.retV, e.ok = st.Delete(c, k)
				default:
					e.op = opSearch
					e.retV, e.ok = st.Search(c, k)
				}
				e.response = clock.Add(1)
				local = append(local, timed{k, e})
			}
			hists[w] = local
		}(w)
	}
	wg.Wait()

	perKey := make(map[uint64][]histEvent)
	for _, h := range hists {
		for _, te := range h {
			perKey[te.key] = append(perKey[te.key], te.ev)
		}
	}
	for k, evs := range perKey {
		if !linearizable(evs) {
			t.Fatalf("history for key %d is not linearizable (%d ops)", k, len(evs))
		}
	}
}

// TestLinearizabilityAllStructures verifies fully-concurrent same-key
// histories for every durable structure, in both persistence modes.
func TestLinearizabilityAllStructures(t *testing.T) {
	for _, lc := range []bool{false, true} {
		name := map[bool]string{false: "LP", true: "LC"}[lc]
		t.Run(name, func(t *testing.T) {
			s := newTestStore(t, Options{LinkCache: lc})
			c := s.MustCtx(0)

			l, _ := NewList(c)
			runLinearizabilityStress(t, s, l, 4, 600, 8)

			h, _ := NewHashTable(c, 8)
			runLinearizabilityStress(t, s, h, 4, 600, 8)

			sl, _ := NewSkipList(c)
			runLinearizabilityStress(t, s, sl, 4, 600, 8)

			bt, _ := NewBST(c)
			runLinearizabilityStress(t, s, bt, 4, 600, 8)
		})
	}
}
