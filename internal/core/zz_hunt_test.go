package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/nvram"
)

// TestHuntDoubleRetire amplifies the retire/reuse race: tiny generations
// (immediate reclamation), hot keys, maximum helper overlap.
func TestHuntDoubleRetire(t *testing.T) {
	for _, lc := range []bool{false, true} {
		dev := nvram.New(nvram.Config{Size: 64 << 20})
		s, err := NewStore(dev, Options{MaxThreads: 8, LinkCache: lc, EpochGenSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		c0 := s.MustCtx(0)
		h, err := NewHashTable(c0, 8)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				c := s.CtxFor(w)
				rng := rand.New(rand.NewSource(int64(w) * 911))
				for i := 0; i < 60_000; i++ {
					k := uint64(rng.Intn(24)) + 1
					if rng.Intn(2) == 0 {
						h.Insert(c, k, k)
					} else {
						h.Delete(c, k)
					}
				}
			}(w)
		}
		wg.Wait()
	}
}
