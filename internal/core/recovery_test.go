package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/nvram"
)

// leakCheck verifies that after recovery, every allocated object in every
// active area is reachable from one of the structures.
func leakCheck(t *testing.T, s *Store, keep func(c *Ctx, n Addr) bool) {
	t.Helper()
	c := s.recoveryCtx(0)
	defer s.endRecovery()
	var objs []Addr
	for _, a := range s.mgr.ActiveAreas() {
		objs = s.mgr.AllocatedInArea(objs, a)
	}
	for _, n := range objs {
		if !s.pool.SlotAllocated(n) {
			continue
		}
		if !keep(c, n) {
			t.Fatalf("leak survived recovery: object %#x (key %d)", n, s.dev.Load(n))
		}
	}
}

// crashAndAttach simulates a power failure (with random partial cache
// eviction) and reopens the store.
func crashAndAttach(t *testing.T, dev *nvram.Device, seed int64) *Store {
	t.Helper()
	dev.CrashPartial(rand.New(rand.NewSource(seed)), 0.3)
	s, err := AttachStore(dev)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// runCrashWorkload drives concurrent updates, records completed operations,
// then stops abruptly. Returns the per-key floor set: keys whose final
// completed operation was an insert (with its value), which MUST be present
// after recovery, and the set whose final completed op was a delete, which
// MUST be absent. Keys with in-flight ops at crash time are excluded.
type opRecord struct {
	key    uint64
	value  uint64
	insert bool
}

func runCrashWorkload(t *testing.T, s *Store, st set, workers, ops int) (mustHave map[uint64]uint64, mustNot map[uint64]bool) {
	t.Helper()
	var mu sync.Mutex
	completed := make(map[uint64][]opRecord) // per key, completion order
	// Each worker owns a disjoint key slice so that, per key, operations are
	// sequential and the recorded completion order IS the linearization
	// order. Workers still collide structurally on shared nodes (list
	// predecessors, tree edges, buckets).
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := s.MustCtx(w)
			rng := rand.New(rand.NewSource(int64(w) * 131))
			for i := 0; i < ops; i++ {
				k := uint64(w*16+rng.Intn(16)) + 1
				v := uint64(w*1_000_000 + i)
				ins := rng.Intn(2) == 0
				var ok bool
				if ins {
					ok = st.Insert(c, k, v)
				} else {
					_, ok = st.Delete(c, k)
				}
				if ok {
					mu.Lock()
					completed[k] = append(completed[k], opRecord{key: k, value: v, insert: ins})
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	// With the link cache, completion is deferred until the links are
	// flushed; flush everything so "completed" means durable.
	if s.lc != nil {
		c := s.CtxFor(0)
		s.lc.FlushAll(c.f)
		c.f.Fence()
	}
	mustHave = make(map[uint64]uint64)
	mustNot = make(map[uint64]bool)
	for k, recs := range completed {
		last := recs[len(recs)-1]
		if last.insert {
			mustHave[k] = last.value
		} else {
			mustNot[k] = true
		}
	}
	return mustHave, mustNot
}

func checkDurableLinearizability(t *testing.T, st set, c *Ctx, mustHave map[uint64]uint64, mustNot map[uint64]bool) {
	t.Helper()
	for k, v := range mustHave {
		got, ok := st.Search(c, k)
		if !ok {
			t.Fatalf("durable linearizability violated: completed insert of %d lost", k)
		}
		_ = v // concurrent same-key inserts make exact value racy; presence is the contract
		_ = got
	}
	for k := range mustNot {
		if st.Contains(c, k) {
			t.Fatalf("durable linearizability violated: completed delete of %d undone", k)
		}
	}
}

func TestRecoverHashAfterCrash(t *testing.T) {
	for _, lc := range []bool{false, true} {
		name := map[bool]string{false: "LP", true: "LC"}[lc]
		t.Run(name, func(t *testing.T) {
			dev := nvram.New(nvram.Config{Size: 64 << 20})
			s, _ := NewStore(dev, Options{MaxThreads: 4, LinkCache: lc})
			c := s.MustCtx(0)
			h, _ := NewHashTable(c, 32)
			mustHave, mustNot := runCrashWorkload(t, s, h, 4, 3000)

			s2 := crashAndAttach(t, dev, 1)
			h2 := AttachHashTable(s2, h.Buckets(), h.NumBuckets(), h.Tail())
			stats := RecoverHashTable(s2, h2, 2)
			if stats.ActiveAreas == 0 {
				t.Fatal("no active areas recorded despite heavy updates")
			}
			c2 := s2.MustCtx(0)
			checkDurableLinearizability(t, h2, c2, mustHave, mustNot)
			leakCheck(t, s2, hashRecover{h2}.Keep)
		})
	}
}

func TestRecoverListAfterCrash(t *testing.T) {
	dev := nvram.New(nvram.Config{Size: 64 << 20})
	s, _ := NewStore(dev, Options{MaxThreads: 4})
	c := s.MustCtx(0)
	l, _ := NewList(c)
	mustHave, mustNot := runCrashWorkload(t, s, l, 4, 2000)

	s2 := crashAndAttach(t, dev, 2)
	l2 := AttachList(s2, l.Head(), l.Tail())
	RecoverList(s2, l2, 2)
	c2 := s2.MustCtx(0)
	checkDurableLinearizability(t, l2, c2, mustHave, mustNot)
	// After list recovery, no marked node may remain anywhere.
	prev := uint64(0)
	l2.Range(c2, func(k, v uint64) bool {
		if k <= prev {
			t.Fatalf("recovered list unsorted: %d after %d", k, prev)
		}
		prev = k
		return true
	})
}

func TestRecoverSkipListAfterCrash(t *testing.T) {
	for _, lc := range []bool{false, true} {
		name := map[bool]string{false: "LP", true: "LC"}[lc]
		t.Run(name, func(t *testing.T) {
			dev := nvram.New(nvram.Config{Size: 64 << 20})
			s, _ := NewStore(dev, Options{MaxThreads: 4, LinkCache: lc})
			c := s.MustCtx(0)
			sl, _ := NewSkipList(c)
			mustHave, mustNot := runCrashWorkload(t, s, sl, 4, 2000)

			s2 := crashAndAttach(t, dev, 3)
			sl2 := AttachSkipList(s2, sl.Head(), sl.Tail())
			RecoverSkipList(s2, sl2, 2)
			c2 := s2.MustCtx(0)
			checkDurableLinearizability(t, sl2, c2, mustHave, mustNot)
			leakCheck(t, s2, skipRecover{sl2}.Keep)
		})
	}
}

func TestRecoverBSTAfterCrash(t *testing.T) {
	for _, lc := range []bool{false, true} {
		name := map[bool]string{false: "LP", true: "LC"}[lc]
		t.Run(name, func(t *testing.T) {
			dev := nvram.New(nvram.Config{Size: 64 << 20})
			s, _ := NewStore(dev, Options{MaxThreads: 4, LinkCache: lc})
			c := s.MustCtx(0)
			bt, _ := NewBST(c)
			mustHave, mustNot := runCrashWorkload(t, s, bt, 4, 2000)

			s2 := crashAndAttach(t, dev, 4)
			bt2 := AttachBST(s2, bt.Root(), bt.Sentinel())
			RecoverBST(s2, bt2, 2)
			c2 := s2.MustCtx(0)
			checkDurableLinearizability(t, bt2, c2, mustHave, mustNot)
			leakCheck(t, s2, bstRecover{bt2}.Keep)
		})
	}
}

// TestRecoveryFreesOrphanedAllocation plants the §5.1 failure scenario: an
// allocation crashes between "marked allocated" and "linked". Recovery must
// free it.
func TestRecoveryFreesOrphanedAllocation(t *testing.T) {
	dev := nvram.New(nvram.Config{Size: 16 << 20})
	s, _ := NewStore(dev, Options{MaxThreads: 2})
	c := s.MustCtx(0)
	h, _ := NewHashTable(c, 16)
	h.Insert(c, 1, 10)
	// Orphan: allocate + persist allocator metadata, never link.
	c.ep.Begin()
	orphan, err := c.ep.AllocNode(listClass)
	if err != nil {
		t.Fatal(err)
	}
	dev.Store(orphan+nKey, 999)
	c.f.CLWB(orphan)
	c.f.Fence()
	c.ep.End()

	s2 := crashAndAttach(t, dev, 5)
	if !s2.Pool().SlotAllocated(orphan) {
		t.Fatal("test setup broken: orphan not durably allocated")
	}
	h2 := AttachHashTable(s2, h.Buckets(), h.NumBuckets(), h.Tail())
	stats := RecoverHashTable(s2, h2, 1)
	if stats.Leaked == 0 {
		t.Fatal("recovery did not detect the orphan")
	}
	if s2.Pool().SlotAllocated(orphan) {
		t.Fatal("orphan still allocated after recovery")
	}
	c2 := s2.MustCtx(0)
	if v, ok := h2.Search(c2, 1); !ok || v != 10 {
		t.Fatalf("live key damaged by recovery: %d,%v", v, ok)
	}
}

// TestRecoveryUninitializedNodeCondition plants a node whose key happens to
// match an existing key but whose address differs (§5.5 condition (ii)).
func TestRecoveryUninitializedNodeCondition(t *testing.T) {
	dev := nvram.New(nvram.Config{Size: 16 << 20})
	s, _ := NewStore(dev, Options{MaxThreads: 2})
	c := s.MustCtx(0)
	h, _ := NewHashTable(c, 16)
	h.Insert(c, 42, 420)
	c.ep.Begin()
	ghost, _ := c.ep.AllocNode(listClass)
	dev.Store(ghost+nKey, 42) // same key as a live node, different address
	c.f.CLWB(ghost)
	c.f.Fence()
	c.ep.End()

	s2 := crashAndAttach(t, dev, 6)
	h2 := AttachHashTable(s2, h.Buckets(), h.NumBuckets(), h.Tail())
	RecoverHashTable(s2, h2, 1)
	if s2.Pool().SlotAllocated(ghost) {
		t.Fatal("ghost node with duplicate key not freed (condition (ii))")
	}
	c2 := s2.MustCtx(0)
	if v, ok := h2.Search(c2, 42); !ok || v != 420 {
		t.Fatalf("live node freed instead of ghost: %d,%v", v, ok)
	}
}

// TestRecoveryIdempotent runs recovery twice; the second pass must find
// nothing to do.
func TestRecoveryIdempotent(t *testing.T) {
	dev := nvram.New(nvram.Config{Size: 64 << 20})
	s, _ := NewStore(dev, Options{MaxThreads: 4})
	c := s.MustCtx(0)
	bt, _ := NewBST(c)
	runCrashWorkload(t, s, bt, 4, 1500)

	s2 := crashAndAttach(t, dev, 7)
	bt2 := AttachBST(s2, bt.Root(), bt.Sentinel())
	RecoverBST(s2, bt2, 2)
	second := RecoverBST(s2, bt2, 2)
	if second.Leaked != 0 {
		t.Fatalf("second recovery pass freed %d objects; first pass incomplete", second.Leaked)
	}
}

// TestOperationsAfterRecovery makes sure the recovered structures keep
// functioning under concurrency.
func TestOperationsAfterRecovery(t *testing.T) {
	dev := nvram.New(nvram.Config{Size: 64 << 20})
	s, _ := NewStore(dev, Options{MaxThreads: 8, LinkCache: true})
	c := s.MustCtx(0)
	sl, _ := NewSkipList(c)
	runCrashWorkload(t, s, sl, 4, 1500)

	s2 := crashAndAttach(t, dev, 8)
	sl2 := AttachSkipList(s2, sl.Head(), sl.Tail())
	RecoverSkipList(s2, sl2, 4)
	runContendedStress(t, s2, sl2, 8, 2000)
	// Clear residual keys so the oracle owns its key ranges exclusively.
	c2 := s2.MustCtx(0)
	for k := uint64(1); k <= 256; k++ {
		sl2.Delete(c2, k)
	}
	runOracleStress(t, s2, sl2, 4, 1000)
}

// TestHashRecoveryApproachesAgree runs §5.5's two sweep strategies on
// identically crashed images and checks they free the same leaks and leave
// identical live contents.
func TestHashRecoveryApproachesAgree(t *testing.T) {
	build := func() (*nvram.Device, *HashTable, map[uint64]uint64) {
		dev := nvram.New(nvram.Config{Size: 64 << 20})
		s, _ := NewStore(dev, Options{MaxThreads: 4})
		c := s.MustCtx(0)
		h, _ := NewHashTable(c, 64)
		live := make(map[uint64]uint64)
		rng := rand.New(rand.NewSource(77))
		for i := 0; i < 4000; i++ {
			k := uint64(rng.Intn(512)) + 1
			if rng.Intn(2) == 0 {
				if h.Insert(c, k, k) {
					live[k] = k
				}
			} else if _, ok := h.Delete(c, k); ok {
				delete(live, k)
			}
		}
		// Plant an orphan so both approaches have something to free.
		c.ep.Begin()
		orphan, _ := c.ep.AllocNode(listClass)
		dev.Store(orphan+nKey, 9999999)
		c.f.CLWB(orphan)
		c.f.Fence()
		c.ep.End()
		return dev, h, live
	}

	devA, hA, liveA := build()
	devA.Crash()
	sA, _ := AttachStore(devA)
	statsA := RecoverHashTable(sA, AttachHashTable(sA, hA.Buckets(), hA.NumBuckets(), hA.Tail()), 2)

	devB, hB, liveB := build() // identical workload (same seed)
	devB.Crash()
	sB, _ := AttachStore(devB)
	statsB := RecoverHashTableTraversal(sB, AttachHashTable(sB, hB.Buckets(), hB.NumBuckets(), hB.Tail()), 2)

	if statsA.Leaked == 0 || statsB.Leaked == 0 {
		t.Fatalf("both approaches must free the orphan: A=%d B=%d", statsA.Leaked, statsB.Leaked)
	}
	cA, cB := sA.MustCtx(0), sB.MustCtx(0)
	h2A := AttachHashTable(sA, hA.Buckets(), hA.NumBuckets(), hA.Tail())
	h2B := AttachHashTable(sB, hB.Buckets(), hB.NumBuckets(), hB.Tail())
	for k := range liveA {
		if !h2A.Contains(cA, k) {
			t.Fatalf("approach A lost key %d", k)
		}
	}
	for k := range liveB {
		if !h2B.Contains(cB, k) {
			t.Fatalf("approach B lost key %d", k)
		}
	}
	if len(liveA) != len(liveB) {
		t.Fatalf("builds diverged: %d vs %d live keys", len(liveA), len(liveB))
	}
}

// TestAdversarialAutoEviction runs a workload on a device that randomly
// writes back dirty lines behind the algorithms' backs (uncontrolled cache
// eviction), then crashes with further partial eviction. Recovery and
// durable linearizability must hold regardless of which un-fenced stores
// happened to persist.
func TestAdversarialAutoEviction(t *testing.T) {
	dev := nvram.New(nvram.Config{Size: 64 << 20, AutoEvictEvery: 7})
	s, _ := NewStore(dev, Options{MaxThreads: 4, LinkCache: true})
	c := s.MustCtx(0)
	h, _ := NewHashTable(c, 32)
	mustHave, mustNot := runCrashWorkload(t, s, h, 4, 2000)

	s2 := crashAndAttach(t, dev, 99)
	h2 := AttachHashTable(s2, h.Buckets(), h.NumBuckets(), h.Tail())
	RecoverHashTable(s2, h2, 2)
	c2 := s2.MustCtx(0)
	checkDurableLinearizability(t, h2, c2, mustHave, mustNot)
	leakCheck(t, s2, hashRecover{h2}.Keep)
}
