package capacity

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
)

func TestNextGrowTarget(t *testing.T) {
	cases := []struct{ cur, max, want uint64 }{
		{64, 1024, 128},
		{512, 1024, 1024},
		{768, 1024, 1024},                 // clamp, not double
		{1024, 1024, 0},                   // no headroom
		{2048, 1024, 0},                   // already past (adopted larger state)
		{0, 1024, 1024},                   // degenerate zero current
		{1 << 63, ^uint64(0), ^uint64(0)}, // overflow clamps to max
	}
	for _, c := range cases {
		if got := NextGrowTarget(c.cur, c.max); got != c.want {
			t.Errorf("NextGrowTarget(%d, %d) = %d, want %d", c.cur, c.max, got, c.want)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	type item struct {
		key, value []byte
		flags      uint16
		aux        uint64
	}
	items := []item{
		{[]byte("a"), []byte("alpha"), 1, 0x0000000100000000},
		{[]byte("b"), nil, 0, 0},
		{[]byte("counter"), []byte("42"), 0xFFFF, ^uint64(0)},
		{bytes.Repeat([]byte("k"), 250), bytes.Repeat([]byte("v"), 8192), 7, 12345},
	}
	var buf bytes.Buffer
	sw, err := NewSnapshotWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if err := sw.Item(it.key, it.value, it.flags, it.aux); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	sr, err := NewSnapshotReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range items {
		k, v, fl, aux, err := sr.Next()
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if !bytes.Equal(k, want.key) || !bytes.Equal(v, want.value) ||
			fl != want.flags || aux != want.aux {
			t.Fatalf("item %d mismatch: got (%q %q %d %d)", i, k, v, fl, aux)
		}
	}
	if _, _, _, _, err := sr.Next(); err != io.EOF {
		t.Fatalf("end of snapshot = %v, want io.EOF", err)
	}
	if _, _, _, _, err := sr.Next(); err != io.EOF {
		t.Fatalf("Next after end = %v, want io.EOF", err)
	}
	if sr.Count() != uint64(len(items)) {
		t.Fatalf("Count = %d, want %d", sr.Count(), len(items))
	}
}

func TestSnapshotTruncationDetected(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewSnapshotWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := sw.Item([]byte(fmt.Sprintf("k%d", i)), []byte("value"), 0, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Every proper prefix must fail with a non-EOF error: io.EOF is reserved
	// for the verified trailer.
	for cut := 0; cut < len(full); cut += 13 {
		sr, err := NewSnapshotReader(bytes.NewReader(full[:cut]))
		if err != nil {
			continue // truncated inside magic/handshake: rejected at open
		}
		for {
			_, _, _, _, err = sr.Next()
			if err != nil {
				break
			}
		}
		if err == io.EOF {
			t.Fatalf("cut=%d: truncated stream reached io.EOF (silent data loss)", cut)
		}
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := NewSnapshotReader(bytes.NewReader([]byte("NOTASNAP????????"))); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("bad magic error = %v, want ErrBadSnapshot", err)
	}
	if _, err := NewSnapshotReader(bytes.NewReader(nil)); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("empty stream error = %v, want ErrBadSnapshot", err)
	}

	// Valid magic, corrupt frame after it.
	raw := append([]byte(SnapshotMagic), 0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3)
	if _, err := NewSnapshotReader(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupt handshake accepted")
	}
}

// FuzzSnapshotStream: the reader must never panic and never return io.EOF
// (the success signal) on anything but a stream whose trailer verified.
func FuzzSnapshotStream(f *testing.F) {
	var valid bytes.Buffer
	sw, _ := NewSnapshotWriter(&valid)
	sw.Item([]byte("key"), []byte("value"), 3, 0x0000000200000000)
	sw.Item([]byte("k2"), nil, 0, 7)
	sw.Close()
	f.Add(valid.Bytes())
	f.Add([]byte(SnapshotMagic))
	f.Add(valid.Bytes()[:len(valid.Bytes())-3])
	f.Add([]byte("NVSNAP01\x00\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		sr, err := NewSnapshotReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		items := uint64(0)
		for {
			k, v, _, _, err := sr.Next()
			if err == io.EOF {
				// Success is only legal when the trailer's count matched.
				if sr.Count() != items {
					t.Fatalf("io.EOF with %d items read, Count=%d", items, sr.Count())
				}
				return
			}
			if err != nil {
				return
			}
			items++
			_ = k
			_ = v
			if items > 1<<20 {
				t.Fatal("unbounded item stream from bounded input")
			}
		}
	})
}
