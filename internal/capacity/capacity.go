// Package capacity is the elastic-capacity subsystem shared by the cache
// and its tools: the growth-schedule policy for online pool growth and the
// versioned point-in-time snapshot stream format.
//
// Growth policy. Pools grow by doubling (classic amortized-O(1) growth: a
// cache under organic fill pays O(log n) grows, each crash-atomic at the
// device layer), clamped to the configured reserve. The policy is pure
// arithmetic here; the crash-consistency of applying a target lives in
// nvram/pmem.
//
// Snapshot format. A snapshot is an 8-byte magic ("NVSNAP01") followed by
// CRC-32C-framed records in internal/repl's wire format — the decoder that
// is already fuzzed and battle-tested by replication carries the snapshot
// stream too:
//
//	Welcome  version handshake: Aux = format version, Flags = ModeSnapshot
//	SnapItem one item, verbatim: Flags = client flags, Aux = the item's
//	         packed aux word (CAS unique + expiry), Key/Value = the item
//	SnapEnd  trailer: Seq = item count, so truncation after the last item
//	         is still detected
//
// Items travel byte-faithfully (the raw aux word), so a restored cache
// reproduces values, flags, expirations AND the per-item CAS chain exactly.
package capacity

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/repl"
)

// NextGrowTarget returns the next capacity a pool at cur bytes should grow
// to under the doubling schedule, clamped to max. Returns 0 when cur has no
// headroom left (cur >= max) — the caller falls back to eviction.
func NextGrowTarget(cur, max uint64) uint64 {
	if max <= cur {
		return 0
	}
	next := cur * 2
	if next <= cur { // cur == 0 (degenerate) or overflow
		return max
	}
	if next > max {
		next = max
	}
	return next
}

// SnapshotMagic prefixes every snapshot stream.
const SnapshotMagic = "NVSNAP01"

// SnapshotVersion is the current snapshot format version, carried in the
// Welcome record's Aux field. Readers reject versions they do not know.
const SnapshotVersion = 1

// ErrBadSnapshot reports a stream that is not a snapshot, or one whose
// structure is invalid (bad magic, unknown version, wrong record order,
// item-count mismatch).
var ErrBadSnapshot = errors.New("capacity: invalid snapshot stream")

// SnapshotWriter streams a snapshot. Not safe for concurrent use.
type SnapshotWriter struct {
	rw    *repl.Writer
	count uint64
}

// NewSnapshotWriter writes the magic and version handshake onto w and
// returns a writer ready for Item calls.
func NewSnapshotWriter(w io.Writer) (*SnapshotWriter, error) {
	if _, err := io.WriteString(w, SnapshotMagic); err != nil {
		return nil, err
	}
	sw := &SnapshotWriter{rw: repl.NewWriter(w)}
	if err := sw.rw.WriteRecord(&repl.Record{
		Type: repl.TypeWelcome, Flags: repl.ModeSnapshot, Aux: SnapshotVersion,
	}); err != nil {
		return nil, err
	}
	return sw, nil
}

// Item appends one item to the snapshot, verbatim: flags and the raw aux
// word land in the stream exactly as stored.
func (sw *SnapshotWriter) Item(key, value []byte, flags uint16, aux uint64) error {
	if err := sw.rw.WriteRecord(&repl.Record{
		Type: repl.TypeSnapItem, Flags: flags, Aux: aux, Key: key, Value: value,
	}); err != nil {
		return err
	}
	sw.count++
	return nil
}

// Count reports the items written so far.
func (sw *SnapshotWriter) Count() uint64 { return sw.count }

// Close writes the item-count trailer and flushes. The writer must not be
// used afterwards. Close does NOT close the underlying stream.
func (sw *SnapshotWriter) Close() error {
	if err := sw.rw.WriteRecord(&repl.Record{Type: repl.TypeSnapEnd, Seq: sw.count}); err != nil {
		return err
	}
	return sw.rw.Flush()
}

// SnapshotReader decodes a snapshot stream. Not safe for concurrent use.
type SnapshotReader struct {
	rr    *repl.Reader
	count uint64
	done  bool
}

// NewSnapshotReader validates the magic and version handshake and returns a
// reader positioned at the first item.
func NewSnapshotReader(r io.Reader) (*SnapshotReader, error) {
	var magic [len(SnapshotMagic)]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: missing magic", ErrBadSnapshot)
		}
		return nil, err
	}
	if string(magic[:]) != SnapshotMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadSnapshot, magic[:])
	}
	sr := &SnapshotReader{rr: repl.NewReader(r)}
	var rec repl.Record
	if err := sr.rr.ReadRecord(&rec); err != nil {
		return nil, snapErr(err)
	}
	if rec.Type != repl.TypeWelcome || rec.Flags != repl.ModeSnapshot {
		return nil, fmt.Errorf("%w: stream does not open with a snapshot handshake", ErrBadSnapshot)
	}
	if rec.Aux != SnapshotVersion {
		return nil, fmt.Errorf("%w: format version %d, this build reads %d", ErrBadSnapshot, rec.Aux, SnapshotVersion)
	}
	return sr, nil
}

// snapErr maps a truncated record stream to io.ErrUnexpectedEOF and wraps
// corruption so callers can distinguish "cut short" from "hostile bytes".
func snapErr(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF // EOF before the SnapEnd trailer = truncated
	}
	if errors.Is(err, repl.ErrCorrupt) {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return err
}

// Next returns the next item. Key and value are fresh copies, safe to
// retain. After the verified end-of-snapshot trailer Next returns io.EOF;
// any other stream end (truncation, corruption, count mismatch) returns a
// non-EOF error — io.EOF from Next is the ONLY success signal.
func (sr *SnapshotReader) Next() (key, value []byte, flags uint16, aux uint64, err error) {
	if sr.done {
		return nil, nil, 0, 0, io.EOF
	}
	var rec repl.Record
	if err := sr.rr.ReadRecord(&rec); err != nil {
		return nil, nil, 0, 0, snapErr(err)
	}
	switch rec.Type {
	case repl.TypeSnapItem:
		sr.count++
		return append([]byte(nil), rec.Key...), append([]byte(nil), rec.Value...),
			rec.Flags, rec.Aux, nil
	case repl.TypeSnapEnd:
		if rec.Seq != sr.count {
			return nil, nil, 0, 0, fmt.Errorf("%w: trailer promises %d items, stream carried %d",
				ErrBadSnapshot, rec.Seq, sr.count)
		}
		sr.done = true
		return nil, nil, 0, 0, io.EOF
	default:
		return nil, nil, 0, 0, fmt.Errorf("%w: unexpected record type %d inside snapshot", ErrBadSnapshot, rec.Type)
	}
}

// Count reports the items read so far.
func (sr *SnapshotReader) Count() uint64 { return sr.count }
