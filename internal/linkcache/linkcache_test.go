package linkcache

import (
	"sync"
	"testing"

	"repro/internal/nvram"
	"repro/internal/ptrtag"
)

func newCache(t *testing.T, buckets int) (*nvram.Device, *Cache) {
	t.Helper()
	dev := nvram.New(nvram.Config{Size: 1 << 20})
	return dev, New(dev, buckets)
}

func TestTryLinkAndAddPerformsCAS(t *testing.T) {
	dev, c := newCache(t, 32)
	dev.Store(128, 100)
	res := c.TryLinkAndAdd(7, 128, 100, 200|ptrtag.Dirty)
	if res != Added {
		t.Fatalf("result = %v, want Added", res)
	}
	if got := dev.Load(128); got != 200|ptrtag.Dirty {
		t.Fatalf("link = %#x, want dirty 200", got)
	}
	if c.Len() != 1 {
		t.Fatalf("cache len = %d, want 1", c.Len())
	}
}

func TestTryLinkAndAddCASFailureReleasesEntry(t *testing.T) {
	dev, c := newCache(t, 32)
	dev.Store(128, 111)
	res := c.TryLinkAndAdd(7, 128, 100, 200|ptrtag.Dirty)
	if res != CASFailed {
		t.Fatalf("result = %v, want CASFailed", res)
	}
	if c.Len() != 0 {
		t.Fatalf("entry leaked after CAS failure: len=%d", c.Len())
	}
	if dev.Load(128) != 111 {
		t.Fatal("failed CAS modified the link")
	}
}

func TestAddedLinkIsNotDurableUntilFlush(t *testing.T) {
	dev, c := newCache(t, 32)
	f := dev.NewFlusher()
	dev.Store(128, 100)
	f.Sync(128)
	c.TryLinkAndAdd(7, 128, 100, 200|ptrtag.Dirty)
	dev.CAS(128, 200|ptrtag.Dirty, 200) // owner clears the mark
	if dev.LinePersisted(128) {
		t.Fatal("link persisted without a flush")
	}
	c.FlushBucketOf(f, 7)
	if !dev.LinePersisted(128) {
		t.Fatal("flush did not persist the link")
	}
	if c.Len() != 0 {
		t.Fatal("flush did not free the entry")
	}
}

func TestScanOnBusyEntryFlushes(t *testing.T) {
	dev, c := newCache(t, 32)
	f := dev.NewFlusher()
	dev.Store(128, 100)
	c.TryLinkAndAdd(7, 128, 100, 200|ptrtag.Dirty)
	dev.CAS(128, 200|ptrtag.Dirty, 200)
	c.Scan(f, 7)
	if !dev.LinePersisted(128) {
		t.Fatal("Scan on a busy entry must flush the bucket")
	}
	if c.Stats().ScanHits == 0 {
		t.Fatal("scan hit not recorded")
	}
}

func TestScanOnUnrelatedKeyIsCheap(t *testing.T) {
	dev, c := newCache(t, 1) // one bucket: same bucket, different 16-bit hash
	f := dev.NewFlusher()
	dev.Store(128, 100)
	c.TryLinkAndAdd(7, 128, 100, 200|ptrtag.Dirty)
	// Find a key with a different 16-bit hash.
	var other uint64
	for k := uint64(100); ; k++ {
		if mix(k)>>48|1 != mix(7)>>48|1 {
			other = k
			break
		}
	}
	before := f.SyncWaits
	c.Scan(f, other)
	if f.SyncWaits != before {
		t.Fatal("scan of unrelated key paid a sync")
	}
	if c.Len() != 1 {
		t.Fatal("unrelated scan evicted the entry")
	}
}

func TestFalseHashCollisionOnlyCausesFlush(t *testing.T) {
	dev, c := newCache(t, 1)
	f := dev.NewFlusher()
	// Find two keys with the same 16-bit hash (bounded search; the hash
	// space is 2^15ish so birthday-collisions arrive quickly).
	target := mix(1)>>48 | 1
	var other uint64
	for k := uint64(2); k < 2_000_000; k++ {
		if mix(k)>>48|1 == target {
			other = k
			break
		}
	}
	if other == 0 {
		t.Skip("no 16-bit collision found in range")
	}
	dev.Store(128, 100)
	c.TryLinkAndAdd(1, 128, 100, 200|ptrtag.Dirty)
	dev.CAS(128, 200|ptrtag.Dirty, 200)
	c.Scan(f, other) // false collision: must flush, not corrupt
	if !dev.LinePersisted(128) {
		t.Fatal("collision scan did not flush")
	}
}

func TestBucketOverflowReturnsNoSpace(t *testing.T) {
	dev, c := newCache(t, 1)
	for i := 0; i < entriesPerBucket; i++ {
		a := Addr(128 + i*64)
		dev.Store(a, 1)
		if res := c.TryLinkAndAdd(uint64(i+1), a, 1, 2|ptrtag.Dirty); res != Added {
			t.Fatalf("add %d: %v", i, res)
		}
	}
	dev.Store(1024, 1)
	if res := c.TryLinkAndAdd(99, 1024, 1, 2|ptrtag.Dirty); res != NoSpace {
		t.Fatalf("overflow add = %v, want NoSpace", res)
	}
}

func TestFlushAllDrains(t *testing.T) {
	dev, c := newCache(t, 8)
	f := dev.NewFlusher()
	for i := 0; i < 20; i++ {
		a := Addr(128 + i*64)
		dev.Store(a, 1)
		c.TryLinkAndAdd(uint64(i+1), a, 1, 2|ptrtag.Dirty)
	}
	c.FlushAll(f)
	if c.Len() != 0 {
		t.Fatalf("FlushAll left %d entries", c.Len())
	}
	for i := 0; i < 20; i++ {
		a := Addr(128 + i*64)
		if dev.Load(a)&^ptrtag.Dirty == 2 && !dev.LinePersisted(a) {
			t.Fatalf("entry %d added but not persisted", i)
		}
	}
}

func TestFlushIsOneBatchedSync(t *testing.T) {
	dev, c := newCache(t, 1)
	f := dev.NewFlusher()
	for i := 0; i < entriesPerBucket; i++ {
		a := Addr(128 + i*64)
		dev.Store(a, 1)
		c.TryLinkAndAdd(uint64(i+1), a, 1, 2|ptrtag.Dirty)
	}
	before := f.SyncWaits
	c.FlushBucketOf(f, 1)
	if got := f.SyncWaits - before; got != 1 {
		t.Fatalf("flush of 6 links paid %d syncs, want 1", got)
	}
}

func TestConcurrentAddScanFlush(t *testing.T) {
	dev, c := newCache(t, 4)
	const workers = 8
	// Pre-create one link word per (worker, slot).
	links := make([][]Addr, workers)
	for w := range links {
		links[w] = make([]Addr, 64)
		for i := range links[w] {
			links[w][i] = Addr(4096 + (w*64+i)*64)
			dev.Store(links[w][i], 1)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			f := dev.NewFlusher()
			for i := 0; i < 64; i++ {
				key := uint64(w*1000 + i + 1)
				a := links[w][i]
				switch c.TryLinkAndAdd(key, a, 1, (uint64(i+2)<<6)|ptrtag.Dirty) {
				case Added:
					dev.CAS(a, (uint64(i+2)<<6)|ptrtag.Dirty, uint64(i+2)<<6)
				case NoSpace:
					// Fallback: link-and-persist ourselves.
					if dev.CAS(a, 1, (uint64(i+2)<<6)|ptrtag.Dirty) {
						f.Sync(a)
						dev.CAS(a, (uint64(i+2)<<6)|ptrtag.Dirty, uint64(i+2)<<6)
					}
				}
				c.Scan(f, key)
			}
			c.FlushAll(f)
		}(w)
	}
	wg.Wait()
	if c.Len() != 0 {
		t.Fatalf("cache not drained: %d", c.Len())
	}
	// Every link must have been updated and persisted.
	for w := 0; w < workers; w++ {
		for i := 0; i < 64; i++ {
			a := links[w][i]
			v := dev.Load(a)
			if v == 1 {
				t.Fatalf("worker %d link %d never updated", w, i)
			}
			// The persisted image must match modulo the Dirty mark: a flush
			// may have written the link back while its mark was still set,
			// which is safe (recovery strips marks; the address is durable).
			if dev.PersistedWord(a)&ptrtag.AddrMask != v&ptrtag.AddrMask {
				t.Fatalf("worker %d link %d not durable after FlushAll: vol=%#x pers=%#x",
					w, i, v, dev.PersistedWord(a))
			}
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	dev, c := newCache(t, 32)
	f := dev.NewFlusher()
	dev.Store(128, 1)
	c.TryLinkAndAdd(5, 128, 1, 2|ptrtag.Dirty)
	c.Scan(f, 5)
	s := c.Stats()
	if s.Adds != 1 || s.Scans != 1 || s.Flushes == 0 {
		t.Fatalf("unexpected stats: %+v", s)
	}
}
