// Package linkcache implements the paper's link cache (§4): an extremely
// fast, best-effort, volatile hash table holding data-structure links that
// have been modified but not yet durably written.
//
// Instead of persisting each updated link one at a time (one sync each), an
// update deposits the link's address in the cache and returns. When an
// operation that depends on one of the cached links occurs (detected by the
// mandatory Scan on every operation's key), the whole bucket is written back
// as one batch — one sync for up to six links.
//
// The cache is strictly best effort: if an insertion cannot reserve an entry
// on the first try, or the bucket is being flushed, the caller falls back to
// plain link-and-persist. Insertions therefore have constant worst-case
// cost, and losing the entire cache in a crash is safe: a link still in the
// cache means no operation depending on it completed (§4.1).
//
// Layout mirrors Figure 2 (flush flag, per-entry state, 2-byte key hashes,
// six link addresses per bucket). The Go port widens the hash and state
// words for portable atomics; the semantics — six entries per bucket, one
// batched write-back per flush, 16-bit hash collisions causing only
// spurious flushes — are identical.
package linkcache

import (
	"sync/atomic"

	"repro/internal/nvram"
	"repro/internal/ptrtag"
)

// Addr is a byte offset into the device.
type Addr = nvram.Addr

// Entries per bucket, as in the paper (Figure 2).
const entriesPerBucket = 6

// Entry states.
const (
	stFree    = 0
	stPending = 1
	stBusy    = 2

	flushFlag   = uint64(1)
	stateShift  = 16 // states live at bits 16..27, 2 bits each
	stateMaskAt = 0b11
)

type bucket struct {
	ctrl atomic.Uint64 // bit 0: flushing; bits 16+2i: state of entry i
	hash [entriesPerBucket]atomic.Uint32
	addr [entriesPerBucket]atomic.Uint64
	_    [8]uint64 // pad to keep buckets off each other's lines
}

func state(ctrl uint64, i int) uint64 { return (ctrl >> (stateShift + 2*i)) & stateMaskAt }

func withState(ctrl uint64, i int, s uint64) uint64 {
	shift := uint(stateShift + 2*i)
	return ctrl&^(uint64(stateMaskAt)<<shift) | s<<shift
}

// AddResult reports the outcome of TryLinkAndAdd.
type AddResult int

const (
	// Added: the link was atomically updated and cached; the caller may
	// return without a sync (completion deferred until the bucket flushes).
	Added AddResult = iota
	// CASFailed: the data-structure CAS failed (lost a race); the cache
	// entry was released. The caller retries its operation.
	CASFailed
	// NoSpace: the cache could not accept the entry (full, contended, or
	// flushing); the caller must persist the link itself (link-and-persist).
	NoSpace
)

// Stats counts cache behaviour.
type Stats struct {
	Adds      uint64
	NoSpace   uint64
	CASFails  uint64
	Flushes   uint64
	Scans     uint64
	ScanHits  uint64
	LinksSunk uint64 // links written back by flushes
}

// Cache is a link cache for one device. Safe for concurrent use.
type Cache struct {
	dev     *nvram.Device
	buckets []bucket

	// busy over-approximates the number of finalized (stBusy) entries in
	// the whole cache. FlushAll — invoked on every APT trim and every
	// reclamation batch — returns immediately when it is zero, instead of
	// probing all buckets; in steady states where deposits are rare the
	// hooks become free.
	busy atomic.Int64

	adds      atomic.Uint64
	noSpace   atomic.Uint64
	casFails  atomic.Uint64
	flushes   atomic.Uint64
	scans     atomic.Uint64
	scanHits  atomic.Uint64
	linksSunk atomic.Uint64
}

// New creates a cache with nbuckets buckets (the paper's configuration uses
// 32, occupying 32 cache lines).
func New(dev *nvram.Device, nbuckets int) *Cache {
	if nbuckets <= 0 {
		nbuckets = 32
	}
	return &Cache{dev: dev, buckets: make([]bucket, nbuckets)}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Adds:      c.adds.Load(),
		NoSpace:   c.noSpace.Load(),
		CASFails:  c.casFails.Load(),
		Flushes:   c.flushes.Load(),
		Scans:     c.scans.Load(),
		ScanHits:  c.scanHits.Load(),
		LinksSunk: c.linksSunk.Load(),
	}
}

// mix is a 64-bit finalizer (splitmix64); bucket index and the 16-bit entry
// hash are taken from independent bit ranges.
func mix(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xBF58476D1CE4E5B9
	k ^= k >> 27
	k *= 0x94D049BB133111EB
	k ^= k >> 31
	return k
}

func (c *Cache) locate(key uint64) (*bucket, uint32) {
	h := mix(key)
	return &c.buckets[h%uint64(len(c.buckets))], uint32(h>>48) | 1 // nonzero 16-bit hash
}

// TryLinkAndAdd atomically installs new (which must carry ptrtag.Dirty) over
// old at linkAddr and records the link in the cache, following the paper's
// protocol: reserve an entry (free→pending), publish hash and address,
// perform the data-structure CAS, finalize (pending→busy). The caller clears
// the Dirty mark afterwards; every reader path must Scan its key so the
// in-flight window is covered.
func (c *Cache) TryLinkAndAdd(key uint64, linkAddr Addr, old, new uint64) AddResult {
	b, h16 := c.locate(key)
	ctrl := b.ctrl.Load()
	if ctrl&flushFlag != 0 {
		c.noSpace.Add(1)
		return NoSpace
	}
	slot := -1
	for i := 0; i < entriesPerBucket; i++ {
		if state(ctrl, i) == stFree {
			slot = i
			break
		}
	}
	if slot < 0 || !b.ctrl.CompareAndSwap(ctrl, withState(ctrl, slot, stPending)) {
		// Best effort: one attempt only (§4.2).
		c.noSpace.Add(1)
		return NoSpace
	}
	b.hash[slot].Store(h16)
	b.addr[slot].Store(linkAddr)
	if !c.dev.CAS(linkAddr, old, new) {
		c.setState(b, slot, stFree)
		c.casFails.Add(1)
		return CASFailed
	}
	// Count before the stBusy transition: busy must OVER-approximate (a
	// concurrent flush could write the entry back and decrement between
	// the transition and a late increment, letting FlushAll's zero fast
	// path skip a bucket that still holds a finalized link).
	c.busy.Add(1)
	c.setState(b, slot, stBusy)
	c.adds.Add(1)
	return Added
}

// setState transitions one entry's state with a CAS loop (the control word
// is contended by concurrent reservations and the flush flag).
func (c *Cache) setState(b *bucket, i int, s uint64) {
	for {
		ctrl := b.ctrl.Load()
		if b.ctrl.CompareAndSwap(ctrl, withState(ctrl, i, s)) {
			return
		}
	}
}

// Scan searches the cache for links pertaining to key and enforces their
// durability, per §4.2: a busy entry triggers a bucket flush; a pending
// entry whose data-structure CAS already happened gets its link written back
// directly. Every data-structure operation calls Scan for its key (and for
// the predecessor's key on updates) before returning.
func (c *Cache) Scan(f *nvram.Flusher, key uint64) {
	c.scans.Add(1)
	b, h16 := c.locate(key)
	ctrl := b.ctrl.Load()
	for i := 0; i < entriesPerBucket; i++ {
		st := state(ctrl, i)
		if st == stFree || b.hash[i].Load() != h16 {
			continue
		}
		c.scanHits.Add(1)
		if st == stBusy {
			c.FlushBucket(f, b)
			return
		}
		// Pending: the inserter has reserved the entry but may or may not
		// have performed the link CAS yet. If the link carries the Dirty
		// mark, the CAS happened (our linearization point is after theirs):
		// write the link back ourselves. Otherwise their linearization point
		// is after ours and nothing needs to happen.
		a := b.addr[i].Load()
		if a == 0 {
			continue
		}
		if ptrtag.IsDirty(c.dev.Load(a)) {
			f.Sync(a)
		}
	}
}

// FlushBucketOf flushes the bucket that key maps to.
func (c *Cache) FlushBucketOf(f *nvram.Flusher, key uint64) {
	b, _ := c.locate(key)
	c.FlushBucket(f, b)
}

// FlushBucket writes back every finalized entry in b under a single fence
// (§4.2). If another thread is already flushing, it waits for that flush —
// any entry that was busy when the caller observed it is guaranteed to be
// written back before the in-progress flush completes, because the flusher
// repeats until no busy entries remain.
func (c *Cache) FlushBucket(f *nvram.Flusher, b *bucket) {
	// Fast path: nothing finalized and nobody flushing — the common state
	// when the epoch hooks sweep all buckets.
	if ctrl := b.ctrl.Load(); ctrl&flushFlag == 0 {
		busy := false
		for i := 0; i < entriesPerBucket; i++ {
			if state(ctrl, i) == stBusy {
				busy = true
				break
			}
		}
		if !busy {
			return
		}
	}
	for {
		ctrl := b.ctrl.Load()
		if ctrl&flushFlag != 0 {
			// Wait out the concurrent flush.
			for b.ctrl.Load()&flushFlag != 0 {
			}
			return
		}
		if b.ctrl.CompareAndSwap(ctrl, ctrl|flushFlag) {
			break
		}
	}
	c.flushes.Add(1)
	wrote := 0
	for {
		progress := false
		ctrl := b.ctrl.Load()
		for i := 0; i < entriesPerBucket; i++ {
			if state(ctrl, i) != stBusy {
				continue
			}
			f.CLWB(b.addr[i].Load())
			c.setState(b, i, stFree)
			progress = true
			wrote++
		}
		if !progress {
			break
		}
	}
	f.Fence() // one sync for the whole batch
	c.busy.Add(-int64(wrote))
	c.linksSunk.Add(uint64(wrote))
	for {
		ctrl := b.ctrl.Load()
		if b.ctrl.CompareAndSwap(ctrl, ctrl&^flushFlag) {
			return
		}
	}
}

// FlushAll flushes every bucket. Used by the APT trim hook (§5.4: trimming
// must ensure the cache holds no entries for the pages under consideration)
// and at orderly shutdown.
func (c *Cache) FlushAll(f *nvram.Flusher) {
	if c.busy.Load() == 0 {
		return // nothing finalized anywhere (the steady-state fast path)
	}
	for i := range c.buckets {
		c.FlushBucket(f, &c.buckets[i])
	}
}

// Len returns the number of non-free entries (diagnostic).
func (c *Cache) Len() int {
	n := 0
	for i := range c.buckets {
		ctrl := c.buckets[i].ctrl.Load()
		for e := 0; e < entriesPerBucket; e++ {
			if state(ctrl, e) != stFree {
				n++
			}
		}
	}
	return n
}
