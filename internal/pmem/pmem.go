// Package pmem implements a persistent slab allocator on top of a simulated
// NVRAM device, in the mold of the modified jemalloc the paper uses (§5.3).
//
// The device is carved into 4KB pages. Each page serves one size class and
// keeps its durable metadata — the size class and an allocation bitmap — in
// the first 64 bytes of the page, so one cache-line write-back covers all
// allocator metadata for an allocation or deallocation.
//
// Two properties from the paper are reproduced faithfully:
//
//  1. The allocator issues write-backs for its metadata but never waits for
//     them: the fence that the data-structure operation performs before
//     linking a node (or that the reclamation scheme performs per batch of
//     frees) covers the metadata write-back. No sync operation is paid for
//     allocation or deallocation in the common case.
//
//  2. Allocation is split into Prepare (returns the address the next
//     allocation will use, the paper's "next node address" hook) and Commit
//     (marks it allocated). NV-epochs checks Prepare's page against the
//     active page table before committing, so page-table logging is skipped
//     when the page is already active.
//
// Pages are owned by the allocating context (thread); any context may free
// into any page. Structure-lifetime bulk storage (hash bucket arrays, the
// active page tables themselves) is carved as multi-page regions that are
// never recycled.
package pmem

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/nvram"
)

// Addr is re-exported for convenience: a byte offset into the device.
type Addr = nvram.Addr

const (
	// PageSize is the allocator page size: also the default granularity of
	// the active page table (§6.3 uses 4KB memory pages).
	PageSize = 4096
	// SlotAlign is the alignment of every allocated object; nodes are
	// cache-aligned (§6.1), leaving the low six address bits for marks.
	SlotAlign = 64

	headerClassOff  = 0 // word: magic | class | (regions: page count)
	headerBitmapOff = 8 // word: allocation bitmap, bit i = slot i

	pageMagic  = uint64(0x9A6E) << 48
	magicMask  = uint64(0xFFFF) << 48
	classMask  = uint64(0xFF) << 40
	classShift = 40
	countMask  = (uint64(1) << 40) - 1

	regionClass = 0xFF

	// Pool header layout (line 1 of the device; line 0 is the nil guard).
	hdrBase     = nvram.LineSize
	hdrMagicOff = hdrBase + 0
	hdrSizeOff  = hdrBase + 8
	hdrHeapOff  = hdrBase + 16       // durable carve pointer ("heapNext")
	poolMagic   = 0x4C4F47465245455F // "LOGFREE_"

	rootBase = 2 * nvram.LineSize // 64 root slots, 512B
	// NumRoots is the number of durable root-directory slots.
	NumRoots = 64

	heapBase = PageSize // first page boundary after header+roots
)

// Class identifies a size class.
type Class uint8

// ClassSizes lists the object sizes served by the allocator.
var ClassSizes = []uint64{64, 128, 256, 512, 1024, 2048}

// NumClasses is the number of size classes.
const NumClasses = 6

// slotsPerPage[c] = floor((PageSize - SlotAlign) / ClassSizes[c]).
var slotsPerPage = func() [NumClasses]uint64 {
	var s [NumClasses]uint64
	for c, sz := range ClassSizes {
		s[c] = (PageSize - SlotAlign) / sz
	}
	return s
}()

// ClassFor returns the smallest class that fits size bytes.
func ClassFor(size uint64) (Class, error) {
	for c, sz := range ClassSizes {
		if size <= sz {
			return Class(c), nil
		}
	}
	return 0, fmt.Errorf("pmem: no size class fits %d bytes", size)
}

// Size returns the object size of class c.
func (c Class) Size() uint64 { return ClassSizes[c] }

// Errors returned by the allocator.
var (
	ErrOutOfMemory = errors.New("pmem: out of device memory")
	ErrNotAPool    = errors.New("pmem: device does not contain a formatted pool")
)

// Pool is the allocator state for one device. The durable state lives
// entirely inside the device; Pool itself holds only volatile acceleration
// structures and is rebuilt by Attach after a crash.
type Pool struct {
	dev *nvram.Device

	mu        sync.Mutex
	freePages []Addr         // recycled, currently empty pages
	hdrFl     *nvram.Flusher // used only under mu for carve-pointer syncs
	pinned    map[Addr]int   // page -> #contexts using it as current

	// partial tracks unowned pages with free slots, per class. Allocation
	// prefers them over carving, mimicking jemalloc's bin reuse: freed
	// memory is promptly reallocated, which packs the live set into few
	// pages — the allocation/deallocation locality NV-epochs exploits
	// (§5.1).
	partial [NumClasses][]Addr

	// pageFlags holds one word per device page (flagPartial | flagFree
	// membership bits). Mutations happen under mu; the atomic loads give
	// the free path a lock-free "already registered" fast check — frees
	// cluster on hot partial pages, so most notePartial calls return
	// without touching the pool lock.
	pageFlags []atomic.Uint32

	// capacity mirrors the pool's durably committed size (hdrSizeOff). It
	// is the bound carve allocates against, and is only advanced AFTER a
	// grow's header sync completes — so a crash-aborted grow (StoreHook
	// torture included) can never hand out pages the durable header does
	// not cover.
	capacity atomic.Uint64

	statCarved atomic.Uint64
	statAllocs atomic.Uint64
	statFrees  atomic.Uint64

	statAcqPartial atomic.Uint64
	statAcqFree    atomic.Uint64
	statAcqCarve   atomic.Uint64

	volatileMode bool
}

// SetVolatile drops the allocator's own durability actions (the carve-
// pointer sync). Used by the NVRAM-oblivious baseline configuration.
func (p *Pool) SetVolatile(on bool) { p.volatileMode = on }

const (
	flagPartial = 1 << 0 // page is in the partial list of its class
	flagFree    = 1 << 1 // page is in the free-page list
)

func newPoolShell(dev *nvram.Device) *Pool {
	// pageFlags covers the device's full growth reserve, so Grow never has
	// to resize it under concurrent lock-free flag loads.
	return &Pool{
		dev:       dev,
		hdrFl:     dev.NewFlusher(),
		pinned:    make(map[Addr]int),
		pageFlags: make([]atomic.Uint32, dev.Reserve()/PageSize+1),
	}
}

// flag returns the membership word of the page containing a.
func (p *Pool) flag(page Addr) *atomic.Uint32 { return &p.pageFlags[page/PageSize] }

// pushFree adds page to the empty-page list exactly once. Callers hold mu.
// The owner's unpin and a remote freer's maybeRecycle can both legitimately
// conclude "empty and unpinned" for the same page; without membership
// de-duplication the page would be handed to two contexts, which then race
// on slot allocation and corrupt two structures at once.
func (p *Pool) pushFree(page Addr) {
	if p.flag(page).Load()&flagFree != 0 {
		return
	}
	p.flag(page).Store(flagFree)
	p.freePages = append(p.freePages, page)
}

// Format initializes a fresh pool on dev, destroying any prior content. The
// header and root directory are durably written before Format returns.
func Format(dev *nvram.Device) *Pool {
	p := newPoolShell(dev)
	p.capacity.Store(dev.Size())
	dev.Store(hdrMagicOff, poolMagic)
	dev.Store(hdrSizeOff, dev.Size())
	dev.Store(hdrHeapOff, heapBase)
	p.hdrFl.CLWB(hdrMagicOff)
	for i := 0; i < NumRoots; i++ {
		dev.Store(rootAddr(i), 0)
	}
	for i := 0; i < NumRoots; i += nvram.LineSize / 8 {
		p.hdrFl.CLWB(rootAddr(i))
	}
	p.hdrFl.Fence()
	return p
}

// Formatted reports whether dev's persisted image holds a formatted pool —
// the open-or-create probe used before choosing Format vs Attach.
func Formatted(dev *nvram.Device) bool {
	return dev.Load(hdrMagicOff) == poolMagic
}

// Attach opens an existing pool after a restart, rebuilding the volatile
// free-page list by scanning durable page headers.
func Attach(dev *nvram.Device) (*Pool, error) {
	if dev.Load(hdrMagicOff) != poolMagic {
		return nil, ErrNotAPool
	}
	// A pool SMALLER than its device is valid: a crash between a grow's
	// device-level commit and the pool-header commit leaves exactly that,
	// and the pool recovers at its old size (re-growable any time). Larger
	// means the device lost bytes the pool was promised — refuse.
	poolSize := dev.Load(hdrSizeOff)
	if poolSize > dev.Size() {
		return nil, fmt.Errorf("pmem: pool formatted for %d bytes, device has %d",
			poolSize, dev.Size())
	}
	p := newPoolShell(dev)
	p.capacity.Store(poolSize)
	end := dev.Load(hdrHeapOff)
	for page := Addr(heapBase); page < end; {
		hdr := dev.Load(page + headerClassOff)
		if hdr&magicMask != pageMagic {
			// Carved but never initialized (crash between carve and header
			// write-back): safe to recycle.
			p.pushFree(page)
			page += PageSize
			continue
		}
		cls := (hdr & classMask) >> classShift
		if cls == regionClass {
			page += Addr(hdr&countMask) * PageSize
			continue
		}
		bm := dev.Load(page + headerBitmapOff)
		if bm == 0 {
			p.pushFree(page)
		} else if bm != (uint64(1)<<slotsPerPage[cls])-1 {
			p.partial[cls] = append(p.partial[cls], page)
			p.flag(page).Store(flagPartial)
		}
		page += PageSize
	}
	return p, nil
}

// Device returns the underlying device.
func (p *Pool) Device() *nvram.Device { return p.dev }

func rootAddr(i int) Addr { return rootBase + Addr(i)*8 }

// SetRoot durably stores v in root-directory slot i. Roots anchor data
// structures across restarts (the paper assumes remappable regions; our
// offsets are position-independent already).
func (p *Pool) SetRoot(f *nvram.Flusher, i int, v uint64) {
	if i < 0 || i >= NumRoots {
		panic(fmt.Sprintf("pmem: root slot %d out of range", i))
	}
	p.dev.Store(rootAddr(i), v)
	f.Sync(rootAddr(i))
}

// Root reads root-directory slot i.
func (p *Pool) Root(i int) uint64 {
	if i < 0 || i >= NumRoots {
		panic(fmt.Sprintf("pmem: root slot %d out of range", i))
	}
	return p.dev.Load(rootAddr(i))
}

// carve takes n contiguous pages off the durable carve pointer. Called with
// mu held. The carve pointer is synced so a crash cannot hand out the same
// pages twice; carving is rare (amortized over page reuse) so this sync does
// not show up in the paper's per-operation cost model.
func (p *Pool) carve(n uint64) (Addr, error) {
	next := p.dev.Load(hdrHeapOff)
	if next+n*PageSize > p.capacity.Load() {
		return 0, ErrOutOfMemory
	}
	p.dev.Store(hdrHeapOff, next+n*PageSize)
	if !p.volatileMode {
		p.hdrFl.Sync(hdrHeapOff)
	}
	p.statCarved.Add(n)
	p.statAcqCarve.Add(1)
	return next, nil
}

// getPage returns an empty page initialized for class c. Its header is
// write-back-scheduled on f but not fenced; the caller's next fence covers
// it (before any object in the page can be linked into a structure).
func (p *Pool) getPage(f *nvram.Flusher, c Class) (Addr, error) {
	p.mu.Lock()
	// Prefer an unowned page of this class that already has free slots,
	// lowest address first (jemalloc's address-ordered first fit): it
	// concentrates allocations on the same hot pages deallocations touch,
	// which is the locality the active page table banks on (§5.1). The
	// scan is O(list) under the lock; churn keeps these lists short.
	for len(p.partial[c]) > 0 {
		best, bestIdx := Addr(0), -1
		live := p.partial[c][:0]
		for _, page := range p.partial[c] {
			if p.flag(page).Load()&flagPartial == 0 {
				continue // stale entry (page was recycled meanwhile)
			}
			live = append(live, page)
			if best == 0 || page < best {
				best, bestIdx = page, len(live)-1
			}
		}
		p.partial[c] = live
		if bestIdx < 0 {
			break
		}
		page := best
		p.partial[c] = append(p.partial[c][:bestIdx], p.partial[c][bestIdx+1:]...)
		p.flag(page).Store(p.flag(page).Load() &^ flagPartial)
		if p.pinned[page] > 0 {
			continue // owned by another context; slot races are not allowed
		}
		if cl, ok := p.PageClass(page); !ok || cl != c {
			continue // recycled for another class meanwhile
		}
		bm := p.dev.Load(page + headerBitmapOff)
		if bm == (uint64(1)<<slotsPerPage[c])-1 {
			continue // filled up meanwhile
		}
		if free := slotsPerPage[c] - uint64(popcount(bm)); free < slotsPerPage[c]/4 {
			// Too thin: taking it would force another page switch (and a
			// likely APT miss) within a few allocations. Leave it out of the
			// list; its next free re-registers it with more slots.
			continue
		}
		p.pinned[page]++
		p.statAcqPartial.Add(1)
		p.mu.Unlock()
		return page, nil
	}
	var page Addr
	for page == 0 {
		n := len(p.freePages)
		if n == 0 {
			var err error
			page, err = p.carve(1)
			if err != nil {
				p.mu.Unlock()
				return 0, err
			}
			break
		}
		cand := p.freePages[n-1]
		p.freePages = p.freePages[:n-1]
		p.flag(cand).Store(p.flag(cand).Load() &^ flagFree)
		// Defense in depth: only truly empty, unowned pages are usable.
		if p.pinned[cand] > 0 || p.dev.Load(cand+headerBitmapOff) != 0 {
			continue
		}
		page = cand
		p.statAcqFree.Add(1)
	}
	p.pinned[page]++
	p.mu.Unlock()

	if bm := p.dev.Load(page + headerBitmapOff); bm != 0 {
		if _, ok := p.PageClass(page); ok {
			panic(fmt.Sprintf("pmem: getPage would wipe non-empty page %#x (bm=%#x)", page, bm))
		}
	}
	p.dev.Store(page+headerClassOff, pageMagic|uint64(c)<<classShift)
	p.dev.Store(page+headerBitmapOff, 0)
	if !p.volatileMode {
		f.CLWB(page + headerClassOff)
	}
	return page, nil
}

// unpin releases a context's claim on page; if the page is empty and
// unclaimed it becomes recyclable.
func (p *Pool) unpin(page Addr) {
	if page == 0 {
		return
	}
	p.mu.Lock()
	p.pinned[page]--
	if p.pinned[page] <= 0 {
		delete(p.pinned, page)
		bm := p.dev.Load(page + headerBitmapOff)
		switch {
		case bm == 0:
			p.pushFree(page)
		default:
			if cl, ok := p.PageClass(page); ok && p.flag(page).Load()&flagPartial == 0 &&
				bm != (uint64(1)<<slotsPerPage[cl])-1 {
				p.partial[cl] = append(p.partial[cl], page)
				p.flag(page).Store(p.flag(page).Load() | flagPartial)
			}
		}
	}
	p.mu.Unlock()
}

// AllocRegion carves a never-recycled region of at least bytes bytes and
// returns the address of its (64-byte-aligned, zeroed-at-format) data area.
// Regions hold structure-lifetime arrays: hash buckets, active page tables.
func (p *Pool) AllocRegion(f *nvram.Flusher, bytes uint64) (Addr, error) {
	pages := (bytes + SlotAlign + PageSize - 1) / PageSize
	p.mu.Lock()
	base, err := p.carve(pages)
	p.mu.Unlock()
	if err != nil {
		return 0, err
	}
	p.dev.Store(base+headerClassOff, pageMagic|uint64(regionClass)<<classShift|pages)
	f.Sync(base + headerClassOff)
	return base + SlotAlign, nil
}

// PageOf returns the page containing a.
func PageOf(a Addr) Addr { return a &^ (PageSize - 1) }

// PageClass returns the size class of the page containing a. The second
// result is false for region pages or uninitialized pages.
func (p *Pool) PageClass(page Addr) (Class, bool) {
	hdr := p.dev.Load(page + headerClassOff)
	if hdr&magicMask != pageMagic {
		return 0, false
	}
	c := Class((hdr & classMask) >> classShift)
	if c == regionClass || int(c) >= NumClasses {
		return 0, false
	}
	return c, true
}

func slotOf(page, a Addr, c Class) uint64 {
	return (a - page - SlotAlign) / c.Size()
}

// SlotAllocated reports whether the object at a is marked allocated in its
// page's durable bitmap. Used by recovery.
func (p *Pool) SlotAllocated(a Addr) bool {
	page := PageOf(a)
	c, ok := p.PageClass(page)
	if !ok {
		return false
	}
	slot := slotOf(page, a, c)
	return p.dev.Load(page+headerBitmapOff)&(1<<slot) != 0
}

// AllocatedInPage appends the addresses of all allocated objects in page to
// dst and returns it. Used by the recovery sweep over active pages.
func (p *Pool) AllocatedInPage(dst []Addr, page Addr) []Addr {
	c, ok := p.PageClass(page)
	if !ok {
		return dst
	}
	bm := p.dev.Load(page + headerBitmapOff)
	for slot := uint64(0); slot < slotsPerPage[c]; slot++ {
		if bm&(1<<slot) != 0 {
			dst = append(dst, page+SlotAlign+Addr(slot)*c.Size())
		}
	}
	return dst
}

// AvailableBytes estimates the free capacity: uncarved space plus recycled
// empty pages. Used for proactive cache eviction under memory pressure.
func (p *Pool) AvailableBytes() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var uncarved uint64
	if capacity, heap := p.capacity.Load(), p.dev.Load(hdrHeapOff); capacity > heap {
		uncarved = capacity - heap
	}
	return uncarved + uint64(len(p.freePages))*PageSize
}

// SizeBytes returns the pool's committed capacity in bytes.
func (p *Pool) SizeBytes() uint64 { return p.capacity.Load() }

// Grow extends the pool to newSize device bytes, crash-atomically. No-op at
// or below the current capacity. Ordering makes a torn grow recoverable to
// exactly the old or the new size, never a half-carved pool:
//
//  1. the device (and its backing file) durably extends first;
//  2. the pool header's size word is stored and synced;
//  3. only then does the volatile capacity mirror advance, unlocking carve.
//
// A crash after 1 recovers a pool of the old size on a larger device
// (Attach accepts that; re-growing is idempotent). A crash during 2 leaves
// the header holding the old OR new size — both fully valid because the
// device already covers the new one. An aborted store (StoreHook torture)
// never advances the mirror, so no page beyond the durable size is ever
// handed out before the commit completes.
func (p *Pool) Grow(newSize uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if newSize <= p.capacity.Load() {
		return nil
	}
	if err := p.dev.Grow(newSize); err != nil {
		return err
	}
	committed := p.dev.Size() // line-rounded, >= newSize
	p.dev.Store(hdrSizeOff, committed)
	p.hdrFl.Sync(hdrSizeOff)
	p.capacity.Store(committed)
	return nil
}

// Stats is a snapshot of allocator counters.
type Stats struct {
	PagesCarved uint64
	Allocs      uint64
	Frees       uint64

	// Page acquisitions by source (diagnostic for allocation locality).
	AcqPartial, AcqFree, AcqCarve uint64
}

// Stats returns a snapshot of the allocator counters.
func (p *Pool) Stats() Stats {
	return Stats{
		PagesCarved: p.statCarved.Load(),
		Allocs:      p.statAllocs.Load(),
		Frees:       p.statFrees.Load(),
		AcqPartial:  p.statAcqPartial.Load(),
		AcqFree:     p.statAcqFree.Load(),
		AcqCarve:    p.statAcqCarve.Load(),
	}
}

// Ctx is a per-goroutine allocation context. It owns one current page per
// size class; allocation from an owned page involves no cross-thread
// coordination, reproducing the thread-partitioned behaviour of
// high-performance concurrent allocators the paper relies on for locality.
type Ctx struct {
	p   *Pool
	f   *nvram.Flusher
	cur [NumClasses]Addr

	prepared [NumClasses]Addr // address handed out by Prepare, not yet committed
}

// NewCtx creates an allocation context bound to flusher f. A Ctx must be
// used by a single goroutine.
func (p *Pool) NewCtx(f *nvram.Flusher) *Ctx {
	return &Ctx{p: p, f: f}
}

// Pool returns the pool this context allocates from.
func (c *Ctx) Pool() *Pool { return c.p }

// Flusher returns the persistence context this Ctx schedules write-backs on.
func (c *Ctx) Flusher() *nvram.Flusher { return c.f }

// Prepare picks the address the next allocation of class cl will return,
// acquiring a fresh page if necessary, without marking it allocated. This is
// the paper's "method that returns the next node address to be allocated"
// (§5.3): NV-epochs calls it to check the active page table before paying
// for the allocation.
func (c *Ctx) Prepare(cl Class) (Addr, error) {
	if a := c.prepared[cl]; a != 0 {
		return a, nil
	}
	for {
		page := c.cur[cl]
		if page != 0 {
			bm := c.p.dev.Load(page + headerBitmapOff)
			// One-word bitmap: the lowest clear bit is the next free slot.
			if free := ^bm & (1<<slotsPerPage[cl] - 1); free != 0 {
				slot := uint64(bits.TrailingZeros64(free))
				a := page + SlotAlign + Addr(slot)*cl.Size()
				c.prepared[cl] = a
				return a, nil
			}
			// Page full: release and take a new one.
			c.cur[cl] = 0
			c.p.unpin(page)
		}
		np, err := c.p.getPage(c.f, cl)
		if err != nil {
			return 0, err
		}
		c.cur[cl] = np
	}
}

// Commit marks the address returned by the latest Prepare for class cl as
// allocated. The bitmap write-back is scheduled but NOT fenced: the caller's
// pre-link fence makes it durable together with the node contents (§5.5,
// "before linking a node ... we issue a store fence that ensures that the
// contents of the node, as well as the allocator metadata ... are durably
// written").
func (c *Ctx) Commit(cl Class) Addr {
	a := c.prepared[cl]
	if a == 0 {
		panic("pmem: Commit without Prepare")
	}
	c.prepared[cl] = 0
	page := PageOf(a)
	slot := slotOf(page, a, cl)
	for {
		bm := c.p.dev.Load(page + headerBitmapOff)
		if bm&(1<<slot) != 0 {
			// Another context allocated our prepared slot: the page is
			// co-owned, which the pinning protocol must prevent. Failing
			// loudly here beats corrupting two structures' nodes.
			panic(fmt.Sprintf("pmem: prepared slot stolen at %#x (page co-ownership)", a))
		}
		if c.p.dev.CAS(page+headerBitmapOff, bm, bm|1<<slot) {
			break
		}
	}
	if !c.p.volatileMode {
		c.f.CLWB(page + headerBitmapOff)
	}
	c.p.statAllocs.Add(1)
	return a
}

// Abort forgets a Prepare without allocating.
func (c *Ctx) Abort(cl Class) { c.prepared[cl] = 0 }

// Alloc is Prepare followed immediately by Commit, for callers that do not
// interpose an active-page-table check.
func (c *Ctx) Alloc(cl Class) (Addr, error) {
	if _, err := c.Prepare(cl); err != nil {
		return 0, err
	}
	return c.Commit(cl), nil
}

// TryFree is Free, except it reports false instead of panicking when the
// slot is already free. Recovery sweeps use it: parallel recovery contexts
// may race to free the same leaked object, and exactly one must win.
func (c *Ctx) TryFree(a Addr) bool {
	page := PageOf(a)
	cl, ok := c.p.PageClass(page)
	if !ok {
		return false
	}
	slot := slotOf(page, a, cl)
	for {
		bm := c.p.dev.Load(page + headerBitmapOff)
		if bm&(1<<slot) == 0 {
			return false
		}
		if c.p.dev.CAS(page+headerBitmapOff, bm, bm&^(1<<slot)) {
			if bm&^(1<<slot) == 0 {
				c.maybeRecycle(page)
			} else {
				c.p.notePartial(page, cl)
			}
			if !c.p.volatileMode {
				c.f.CLWB(page + headerBitmapOff)
			}
			c.p.statFrees.Add(1)
			return true
		}
	}
}

// Free marks the object at a free in its page's durable bitmap. The
// write-back is scheduled on this context's flusher but not fenced; the
// epoch reclaimer fences once per batch of frees (§5.3). Any context may
// free objects allocated by any other.
func (c *Ctx) Free(a Addr) {
	page := PageOf(a)
	cl, ok := c.p.PageClass(page)
	if !ok {
		panic(fmt.Sprintf("pmem: Free of non-heap address %#x", a))
	}
	slot := slotOf(page, a, cl)
	for {
		bm := c.p.dev.Load(page + headerBitmapOff)
		if bm&(1<<slot) == 0 {
			panic(fmt.Sprintf("pmem: double free at %#x", a))
		}
		if c.p.dev.CAS(page+headerBitmapOff, bm, bm&^(1<<slot)) {
			if bm&^(1<<slot) == 0 {
				c.maybeRecycle(page)
			} else {
				c.p.notePartial(page, cl)
			}
			break
		}
	}
	if !c.p.volatileMode {
		c.f.CLWB(page + headerBitmapOff)
	}
	c.p.statFrees.Add(1)
}

func (c *Ctx) maybeRecycle(page Addr) {
	p := c.p
	p.mu.Lock()
	if p.pinned[page] == 0 && p.dev.Load(page+headerBitmapOff) == 0 {
		// An empty page leaves the partial set (its slice entry goes stale
		// and is skipped on pop) and becomes fully recyclable.
		p.pushFree(page)
	}
	p.mu.Unlock()
}

// notePartial records that page has at least one free slot, making it a
// preferred allocation target (prompt reuse).
func (p *Pool) notePartial(page Addr, cl Class) {
	if p.flag(page).Load()&(flagPartial|flagFree) != 0 {
		return // already registered; steady-state frees take this path
	}
	p.mu.Lock()
	if p.flag(page).Load()&(flagPartial|flagFree) == 0 && p.pinned[page] == 0 {
		p.partial[cl] = append(p.partial[cl], page)
		p.flag(page).Store(p.flag(page).Load() | flagPartial)
	}
	p.mu.Unlock()
}

// Adopt makes page the context's current allocation page for its class if
// it has free slots. The epoch reclaimer calls it after freeing a batch:
// jemalloc-style prompt reuse of freed slots keeps the live set packed into
// few pages, which is precisely the allocation/deallocation locality the
// active page table exploits (§5.1). No-op if a Prepare is outstanding for
// the class or the page is full.
func (c *Ctx) Adopt(page Addr) {
	cl, ok := c.p.PageClass(page)
	if !ok || c.prepared[cl] != 0 || c.cur[cl] == page {
		return
	}
	c.p.mu.Lock()
	bm := c.p.dev.Load(page + headerBitmapOff)
	if c.p.pinned[page] > 0 || // owned: co-ownership would race on slots
		bm == (uint64(1)<<slotsPerPage[cl])-1 || // full: nothing to reuse
		bm == 0 { // empty: it is (or is about to be) on the free list
		c.p.mu.Unlock()
		return
	}
	if free := slotsPerPage[cl] - uint64(popcount(bm)); free < slotsPerPage[cl]/4 {
		// Too thin: switching the current page for a handful of slots
		// costs an APT miss per switch (see getPage).
		c.p.mu.Unlock()
		return
	}
	c.p.pinned[page]++
	c.p.flag(page).Store(c.p.flag(page).Load() &^ flagPartial) // owned now; its slice entry goes stale
	c.p.mu.Unlock()
	old := c.cur[cl]
	c.cur[cl] = page
	if old != 0 {
		c.p.unpin(old)
	}
}

// CurrentPages returns the context's current allocation page per class
// (0 = none). NV-epochs' trim consults it: the active allocation pages are
// by definition active areas and must not be evicted from the table.
func (c *Ctx) CurrentPages() [NumClasses]Addr { return c.cur }

// Release returns the context's current pages to the pool. Call when a
// worker retires.
func (c *Ctx) Release() {
	for cl := range c.cur {
		if c.cur[cl] != 0 {
			c.p.unpin(c.cur[cl])
			c.cur[cl] = 0
		}
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
