package pmem

// Crash-consistency of online pool growth: a grow aborted at ANY mutating
// store (StoreHook torture) must recover to exactly the old or the new
// capacity, and carve must never hand out pages the durable header does not
// cover.

import (
	"errors"
	"testing"

	"repro/internal/nvram"
)

func TestPoolGrow(t *testing.T) {
	dev := nvram.New(nvram.Config{Size: 64 << 10, MaxSize: 1 << 20})
	p := Format(dev)
	if got := p.SizeBytes(); got != 64<<10 {
		t.Fatalf("SizeBytes = %d, want %d", got, 64<<10)
	}

	// Exhaust the initial capacity.
	f := dev.NewFlusher()
	ctx := p.NewCtx(f)
	for {
		if _, err := ctx.Alloc(0); err != nil {
			if !errors.Is(err, ErrOutOfMemory) {
				t.Fatal(err)
			}
			break
		}
	}

	if err := p.Grow(256 << 10); err != nil {
		t.Fatal(err)
	}
	if got := p.SizeBytes(); got != 256<<10 {
		t.Fatalf("SizeBytes after Grow = %d, want %d", got, 256<<10)
	}
	if _, err := ctx.Alloc(0); err != nil {
		t.Fatalf("alloc after Grow: %v", err)
	}
	if err := p.Grow(2 << 20); err == nil {
		t.Fatal("Grow past the device reserve must fail")
	}
	// The failed grow must not have changed anything.
	if got := p.SizeBytes(); got != 256<<10 {
		t.Fatalf("SizeBytes after failed Grow = %d, want %d", got, 256<<10)
	}
}

// TestPoolGrowTorn aborts Grow at every mutating store in turn, crashes, and
// re-attaches: the recovered pool must be exactly the old or the new size,
// remain allocatable, and a re-run of the same Grow must converge it.
func TestPoolGrowTorn(t *testing.T) {
	const oldSize, newSize = 64 << 10, 256 << 10
	for k := 1; ; k++ {
		dev := nvram.New(nvram.Config{Size: oldSize, MaxSize: 1 << 20})
		p := Format(dev)

		remaining := k
		dev.StoreHook = func() {
			remaining--
			if remaining == 0 {
				panic("torn grow")
			}
		}
		completed := func() (done bool) {
			defer func() {
				if recover() != nil {
					done = false
				}
			}()
			if err := p.Grow(newSize); err != nil {
				t.Fatal(err)
			}
			return true
		}()
		dev.StoreHook = nil

		dev.Crash()
		p2, err := Attach(dev)
		if err != nil {
			t.Fatalf("k=%d: Attach after torn grow: %v", k, err)
		}
		got := p2.SizeBytes()
		if got != oldSize && got != newSize {
			t.Fatalf("k=%d: recovered pool size %d, want %d or %d", k, got, oldSize, newSize)
		}
		// An aborted grow must never expose capacity the durable header does
		// not cover, and the pool must stay allocatable either way.
		f := dev.NewFlusher()
		ctx := p2.NewCtx(f)
		if _, err := ctx.Alloc(0); err != nil {
			t.Fatalf("k=%d: alloc on recovered pool: %v", k, err)
		}
		if err := p2.Grow(newSize); err != nil {
			t.Fatalf("k=%d: re-grow: %v", k, err)
		}
		if got := p2.SizeBytes(); got != newSize {
			t.Fatalf("k=%d: re-grown size %d, want %d", k, got, newSize)
		}
		if completed {
			// The hook never fired within Grow: every abort point is covered.
			if remaining <= 0 {
				t.Fatalf("k=%d: hook fired %d times yet Grow completed", k, k)
			}
			break
		}
		if k > 1000 {
			t.Fatal("torn-grow sweep did not terminate")
		}
	}
}
