package pmem

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/nvram"
)

func newPool(t *testing.T, size uint64) *Pool {
	t.Helper()
	return Format(nvram.New(nvram.Config{Size: size}))
}

func TestClassFor(t *testing.T) {
	cases := []struct {
		size uint64
		want Class
	}{{1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2}, {2048, 5}}
	for _, c := range cases {
		got, err := ClassFor(c.size)
		if err != nil {
			t.Fatalf("ClassFor(%d): %v", c.size, err)
		}
		if got != c.want {
			t.Errorf("ClassFor(%d) = %d, want %d", c.size, got, c.want)
		}
	}
	if _, err := ClassFor(1 << 20); err == nil {
		t.Error("ClassFor(1MB) should fail")
	}
}

func TestAllocAligned(t *testing.T) {
	p := newPool(t, 1<<20)
	ctx := p.NewCtx(p.Device().NewFlusher())
	for cl := Class(0); cl < NumClasses; cl++ {
		a, err := ctx.Alloc(cl)
		if err != nil {
			t.Fatal(err)
		}
		if a%SlotAlign != 0 {
			t.Errorf("class %d: addr %#x not 64-aligned", cl, a)
		}
		if !p.SlotAllocated(a) {
			t.Errorf("class %d: slot not marked allocated", cl)
		}
	}
}

func TestAllocDistinctAddresses(t *testing.T) {
	p := newPool(t, 1<<22)
	ctx := p.NewCtx(p.Device().NewFlusher())
	seen := make(map[Addr]bool)
	for i := 0; i < 500; i++ {
		a, err := ctx.Alloc(0)
		if err != nil {
			t.Fatal(err)
		}
		if seen[a] {
			t.Fatalf("address %#x allocated twice", a)
		}
		seen[a] = true
	}
}

func TestPrepareThenCommitReturnsSameAddr(t *testing.T) {
	p := newPool(t, 1<<20)
	ctx := p.NewCtx(p.Device().NewFlusher())
	a, err := ctx.Prepare(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.SlotAllocated(a) {
		t.Fatal("Prepare must not mark the slot allocated")
	}
	a2, _ := ctx.Prepare(1) // idempotent until Commit
	if a2 != a {
		t.Fatalf("second Prepare moved: %#x vs %#x", a2, a)
	}
	got := ctx.Commit(1)
	if got != a {
		t.Fatalf("Commit = %#x, want %#x", got, a)
	}
	if !p.SlotAllocated(a) {
		t.Fatal("Commit did not mark the slot")
	}
}

func TestAbort(t *testing.T) {
	p := newPool(t, 1<<20)
	ctx := p.NewCtx(p.Device().NewFlusher())
	a, _ := ctx.Prepare(0)
	ctx.Abort(0)
	b, _ := ctx.Prepare(0)
	if a != b {
		t.Fatalf("after Abort, Prepare moved from %#x to %#x", a, b)
	}
}

func TestFreeAndReuse(t *testing.T) {
	p := newPool(t, 1<<20)
	ctx := p.NewCtx(p.Device().NewFlusher())
	a, _ := ctx.Alloc(0)
	ctx.Free(a)
	if p.SlotAllocated(a) {
		t.Fatal("slot still allocated after Free")
	}
	b, _ := ctx.Alloc(0)
	if b != a {
		t.Fatalf("lowest-slot reuse expected: got %#x, want %#x", b, a)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	p := newPool(t, 1<<20)
	ctx := p.NewCtx(p.Device().NewFlusher())
	a, _ := ctx.Alloc(0)
	ctx.Free(a)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	ctx.Free(a)
}

func TestPageTurnover(t *testing.T) {
	p := newPool(t, 1<<20)
	ctx := p.NewCtx(p.Device().NewFlusher())
	// 63 slots of class 0 per page: allocate two pages' worth.
	var addrs []Addr
	for i := 0; i < 130; i++ {
		a, err := ctx.Alloc(0)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	pages := map[Addr]bool{}
	for _, a := range addrs {
		pages[PageOf(a)] = true
	}
	if len(pages) < 3 {
		t.Fatalf("expected ≥3 pages for 130 class-0 objects, got %d", len(pages))
	}
}

func TestEmptyPageIsRecycled(t *testing.T) {
	p := newPool(t, 1<<20)
	ctx := p.NewCtx(p.Device().NewFlusher())
	var addrs []Addr
	for i := 0; i < 63; i++ { // fill page 1 exactly
		a, _ := ctx.Alloc(0)
		addrs = append(addrs, a)
	}
	firstPage := PageOf(addrs[0])
	// Move the context off the page by allocating one more (new page).
	extra, _ := ctx.Alloc(0)
	if PageOf(extra) == firstPage {
		t.Fatal("expected allocation from a fresh page")
	}
	for _, a := range addrs {
		ctx.Free(a)
	}
	carvedBefore := p.Stats().PagesCarved
	// Exhaust the new current page, forcing page acquisition: should reuse.
	for i := 0; i < 63; i++ {
		ctx.Alloc(0)
	}
	if p.Stats().PagesCarved != carvedBefore {
		t.Fatalf("expected recycled page, but carved %d new pages",
			p.Stats().PagesCarved-carvedBefore)
	}
}

func TestAllocatorMetadataDurableAfterCallerFence(t *testing.T) {
	dev := nvram.New(nvram.Config{Size: 1 << 20})
	p := Format(dev)
	f := dev.NewFlusher()
	ctx := p.NewCtx(f)
	a, _ := ctx.Alloc(0)
	// Alloc schedules the bitmap write-back but does not fence (paper §5.3).
	f.Fence() // the data structure's pre-link fence
	dev.Crash()
	p2, err := Attach(dev)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.SlotAllocated(a) {
		t.Fatal("allocation lost despite caller fence")
	}
}

func TestAllocWithoutFenceMayBeLost(t *testing.T) {
	dev := nvram.New(nvram.Config{Size: 1 << 20})
	p := Format(dev)
	ctx := p.NewCtx(dev.NewFlusher())
	a, _ := ctx.Alloc(0)
	dev.Crash() // no fence: bitmap update may vanish — and in our model does
	p2, err := Attach(dev)
	if err != nil {
		t.Fatal(err)
	}
	if p2.SlotAllocated(a) {
		t.Fatal("unfenced allocation survived crash; write-back model broken")
	}
}

func TestAttachRejectsUnformatted(t *testing.T) {
	dev := nvram.New(nvram.Config{Size: 1 << 16})
	if _, err := Attach(dev); err == nil {
		t.Fatal("Attach accepted an unformatted device")
	}
}

func TestAttachRebuildsFreeList(t *testing.T) {
	dev := nvram.New(nvram.Config{Size: 1 << 20})
	p := Format(dev)
	f := dev.NewFlusher()
	ctx := p.NewCtx(f)
	a, _ := ctx.Alloc(0)
	b, _ := ctx.Alloc(0)
	ctx.Free(a)
	ctx.Free(b)
	f.Fence()
	dev.Crash()
	p2, err := Attach(dev)
	if err != nil {
		t.Fatal(err)
	}
	ctx2 := p2.NewCtx(dev.NewFlusher())
	c, _ := ctx2.Alloc(0)
	if PageOf(c) != PageOf(a) {
		t.Fatalf("recovered pool did not reuse empty page: %#x vs %#x", PageOf(c), PageOf(a))
	}
}

func TestRegionsSurviveAttach(t *testing.T) {
	dev := nvram.New(nvram.Config{Size: 1 << 20})
	p := Format(dev)
	f := dev.NewFlusher()
	r, err := p.AllocRegion(f, 10000)
	if err != nil {
		t.Fatal(err)
	}
	dev.Store(r, 0xCAFE)
	dev.Store(r+9992, 0xF00D)
	f.CLWB(r)
	f.CLWB(r + 9992)
	f.Fence()
	dev.Crash()
	p2, err := Attach(dev)
	if err != nil {
		t.Fatal(err)
	}
	if dev.Load(r) != 0xCAFE || dev.Load(r+9992) != 0xF00D {
		t.Fatal("region contents lost")
	}
	// The region's pages must not be recycled into the heap.
	ctx := p2.NewCtx(dev.NewFlusher())
	for i := 0; i < 200; i++ {
		a, err := ctx.Alloc(5)
		if err != nil {
			t.Fatal(err)
		}
		if PageOf(a) >= PageOf(r) && PageOf(a) < PageOf(r)+3*PageSize {
			t.Fatalf("allocation %#x landed inside region", a)
		}
	}
}

func TestRootsDurable(t *testing.T) {
	dev := nvram.New(nvram.Config{Size: 1 << 16})
	p := Format(dev)
	f := dev.NewFlusher()
	p.SetRoot(f, 3, 0xABCD)
	dev.Crash()
	p2, err := Attach(dev)
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Root(3); got != 0xABCD {
		t.Fatalf("root = %#x, want 0xABCD", got)
	}
}

func TestAllocatedInPage(t *testing.T) {
	p := newPool(t, 1<<20)
	ctx := p.NewCtx(p.Device().NewFlusher())
	a, _ := ctx.Alloc(2)
	b, _ := ctx.Alloc(2)
	got := p.AllocatedInPage(nil, PageOf(a))
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("AllocatedInPage = %v, want [%#x %#x]", got, a, b)
	}
	ctx.Free(a)
	got = p.AllocatedInPage(nil, PageOf(a))
	if len(got) != 1 || got[0] != b {
		t.Fatalf("AllocatedInPage after free = %v, want [%#x]", got, b)
	}
}

func TestOutOfMemory(t *testing.T) {
	p := newPool(t, 64<<10) // 16 pages total
	ctx := p.NewCtx(p.Device().NewFlusher())
	var err error
	for i := 0; i < 20*63; i++ {
		if _, err = ctx.Alloc(0); err != nil {
			break
		}
	}
	if err != ErrOutOfMemory {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	p := newPool(t, 1<<24)
	const workers = 8
	var wg sync.WaitGroup
	allAddrs := make([][]Addr, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			ctx := p.NewCtx(p.Device().NewFlusher())
			var live []Addr
			for i := 0; i < 3000; i++ {
				if len(live) > 0 && rng.Intn(2) == 0 {
					k := rng.Intn(len(live))
					ctx.Free(live[k])
					live = append(live[:k], live[k+1:]...)
				} else {
					a, err := ctx.Alloc(Class(rng.Intn(3)))
					if err != nil {
						t.Error(err)
						return
					}
					live = append(live, a)
				}
			}
			allAddrs[w] = live
		}(w)
	}
	wg.Wait()
	// No two workers may hold the same live address.
	seen := make(map[Addr]int)
	for w, live := range allAddrs {
		for _, a := range live {
			if prev, dup := seen[a]; dup {
				t.Fatalf("address %#x live in workers %d and %d", a, prev, w)
			}
			seen[a] = w
			if !p.SlotAllocated(a) {
				t.Fatalf("live address %#x not marked allocated", a)
			}
		}
	}
}

func TestCrossThreadFree(t *testing.T) {
	p := newPool(t, 1<<20)
	f1 := p.Device().NewFlusher()
	f2 := p.Device().NewFlusher()
	c1 := p.NewCtx(f1)
	c2 := p.NewCtx(f2)
	a, _ := c1.Alloc(0)
	c2.Free(a) // freeing another thread's allocation must work
	if p.SlotAllocated(a) {
		t.Fatal("cross-thread free did not clear the slot")
	}
}

func TestQuickAllocFreeInvariant(t *testing.T) {
	p := newPool(t, 1<<22)
	ctx := p.NewCtx(p.Device().NewFlusher())
	live := make(map[Addr]bool)
	op := func(alloc bool, clRaw uint8) bool {
		cl := Class(clRaw % NumClasses)
		if alloc || len(live) == 0 {
			a, err := ctx.Alloc(cl)
			if err != nil {
				return false
			}
			if live[a] {
				return false // handed out a live address
			}
			live[a] = true
			return p.SlotAllocated(a)
		}
		for a := range live {
			delete(live, a)
			ctx.Free(a)
			return !p.SlotAllocated(a)
		}
		return true
	}
	if err := quick.Check(op, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestNoDoubleFreePageHandout is the regression test for a TOCTOU where the
// owner's unpin and a remote freer's maybeRecycle both concluded "empty and
// unpinned" and appended the same page to the free list twice; two contexts
// then co-owned the page and corrupted each other's slots. The workload
// forces exactly that pattern: cross-thread frees that empty pages owned by
// other threads, at high churn.
func TestNoDoubleFreePageHandout(t *testing.T) {
	p := newPool(t, 1<<24)
	const workers = 8
	var wg sync.WaitGroup
	ch := make(chan Addr, 1024)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := p.NewCtx(p.Device().NewFlusher())
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 30000; i++ {
				if rng.Intn(2) == 0 {
					a, err := ctx.Alloc(0)
					if err != nil {
						t.Error(err)
						return
					}
					select {
					case ch <- a: // hand to a random other thread to free
					default:
						ctx.Free(a)
					}
				} else {
					select {
					case a := <-ch:
						ctx.Free(a) // cross-thread free (empties remote pages)
					default:
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// Drain and free the remainder.
	ctx := p.NewCtx(p.Device().NewFlusher())
	for {
		select {
		case a := <-ch:
			ctx.Free(a)
		default:
			return
		}
	}
}
