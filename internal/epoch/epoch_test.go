package epoch

import (
	"sync"
	"testing"

	"repro/internal/nvram"
	"repro/internal/pmem"
)

type fixture struct {
	dev  *nvram.Device
	pool *pmem.Pool
	m    *Manager
}

func newFixture(t *testing.T, cfg Config) *fixture {
	t.Helper()
	dev := nvram.New(nvram.Config{Size: 8 << 20})
	pool := pmem.Format(dev)
	f := dev.NewFlusher()
	m, err := NewManager(pool, f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{dev: dev, pool: pool, m: m}
}

func (fx *fixture) ctx(tid int) *Ctx {
	f := fx.dev.NewFlusher()
	return fx.m.NewCtx(tid, fx.pool.NewCtx(f), f)
}

func TestAllocNodeLocalityAvoidsSyncs(t *testing.T) {
	fx := newFixture(t, Config{MaxThreads: 1})
	c := fx.ctx(0)
	c.Begin()
	if _, err := c.AllocNode(0); err != nil {
		t.Fatal(err)
	}
	first := c.Stats()
	if first.AllocMisses != 1 {
		t.Fatalf("first allocation should miss APT: %+v", first)
	}
	for i := 0; i < 50; i++ {
		if _, err := c.AllocNode(0); err != nil {
			t.Fatal(err)
		}
	}
	c.End()
	s := c.Stats()
	// 63 class-0 slots per page: all 50 further allocations hit the same area.
	if s.AllocMisses != 1 || s.AllocHits != 50 {
		t.Fatalf("locality broken: %+v", s)
	}
}

func TestAPTMissIsASync(t *testing.T) {
	fx := newFixture(t, Config{MaxThreads: 1})
	c := fx.ctx(0)
	before := c.f.SyncWaits
	c.Begin()
	c.AllocNode(0)
	c.End()
	if c.f.SyncWaits != before+1 {
		t.Fatalf("APT miss should cost exactly one sync, got %d", c.f.SyncWaits-before)
	}
	before = c.f.SyncWaits
	c.Begin()
	c.AllocNode(0)
	c.End()
	if c.f.SyncWaits != before {
		t.Fatalf("APT hit should cost no sync, got %d", c.f.SyncWaits-before)
	}
}

func TestRetireFreesAfterQuiescence(t *testing.T) {
	fx := newFixture(t, Config{MaxThreads: 2, GenSize: 4})
	c := fx.ctx(0)
	var addrs []Addr
	for i := 0; i < 4; i++ {
		c.Begin()
		a, _ := c.AllocNode(0)
		addrs = append(addrs, a)
		c.End()
	}
	for _, a := range addrs {
		c.Begin()
		c.PreRetire(a)
		c.Retire(a)
		c.End()
	}
	c.FlushAll()
	for _, a := range addrs {
		if fx.pool.SlotAllocated(a) {
			t.Fatalf("node %#x not freed after quiescence", a)
		}
	}
	if c.Stats().NodesFreed != 4 {
		t.Fatalf("NodesFreed = %d, want 4", c.Stats().NodesFreed)
	}
}

func TestActiveReaderBlocksReclamation(t *testing.T) {
	fx := newFixture(t, Config{MaxThreads: 2, GenSize: 1})
	writer := fx.ctx(0)
	reader := fx.ctx(1)

	writer.Begin()
	a, _ := writer.AllocNode(0)
	writer.End()

	reader.Begin() // reader now mid-operation

	writer.Begin()
	writer.PreRetire(a)
	writer.Retire(a) // seals a 1-node generation with reader active
	writer.End()
	writer.FlushAll()
	if !fx.pool.SlotAllocated(a) {
		t.Fatal("node freed while a concurrent reader was active")
	}

	reader.End()
	writer.FlushAll()
	if fx.pool.SlotAllocated(a) {
		t.Fatal("node not freed after reader finished")
	}
}

func TestActiveAreasSurviveCrash(t *testing.T) {
	fx := newFixture(t, Config{MaxThreads: 1})
	c := fx.ctx(0)
	c.Begin()
	a, _ := c.AllocNode(0)
	c.End()
	area := fx.m.AreaOf(a)

	fx.dev.Crash()
	pool2, err := pmem.Attach(fx.dev)
	if err != nil {
		t.Fatal(err)
	}
	m2 := AttachManager(pool2, fx.m.RegionAddr(), fx.m.LogRegionAddr(), fx.m.BanksRegionAddr(), fx.m.Config())
	areas := m2.ActiveAreas()
	found := false
	for _, x := range areas {
		if x == area {
			found = true
		}
	}
	if !found {
		t.Fatalf("area %#x missing from durable APT after crash: %v", area, areas)
	}
}

func TestTrimRemovesQuiescentEntries(t *testing.T) {
	fx := newFixture(t, Config{MaxThreads: 1, TrimAt: 4, GenSize: 2})
	c := fx.ctx(0)
	// Touch many distinct areas by allocating page-sized spreads: class 5 has
	// one slot per... class 5 = 2048B → 1 slot? (4096-64)/2048 = 1 slot.
	// Each allocation therefore consumes a fresh page = a fresh area.
	for i := 0; i < 12; i++ {
		c.Begin()
		if _, err := c.AllocNode(5); err != nil {
			t.Fatal(err)
		}
		c.End()
	}
	if c.Stats().Trims == 0 {
		t.Fatal("trim never triggered despite APT growth")
	}
	if c.APTLen() > 8 {
		t.Fatalf("APT not trimmed: %d entries", c.APTLen())
	}
}

func TestTrimHookRuns(t *testing.T) {
	fx := newFixture(t, Config{MaxThreads: 1, TrimAt: 2})
	ran := 0
	fx.m.TrimHook = func(tid int) { ran++ }
	c := fx.ctx(0)
	for i := 0; i < 6; i++ {
		c.Begin()
		c.AllocNode(5)
		c.End()
	}
	if ran == 0 {
		t.Fatal("trim hook never invoked")
	}
}

func TestAllocLoggingCostsSyncPerOp(t *testing.T) {
	fx := newFixture(t, Config{MaxThreads: 1, AllocLogging: true})
	c := fx.ctx(0)
	c.Begin()
	a, _ := c.AllocNode(0)
	c.End()
	c.Begin()
	b, _ := c.AllocNode(0)
	c.End()
	_ = a
	_ = b
	s := c.Stats()
	if s.LogWrites != 2 {
		t.Fatalf("LogWrites = %d, want 2 (one per allocation)", s.LogWrites)
	}
	if s.AllocHits != 0 && s.AllocMisses != 0 {
		t.Fatal("APT should be bypassed in AllocLogging mode")
	}
	before := c.f.SyncWaits
	c.Begin()
	c.AllocNode(0)
	c.End()
	if c.f.SyncWaits != before+1 {
		t.Fatal("AllocLogging allocation should cost one sync even on locality")
	}
}

func TestUnlinkedAreaStaysActiveUntilFreed(t *testing.T) {
	fx := newFixture(t, Config{MaxThreads: 2, TrimAt: 1, GenSize: 100})
	blocker := fx.ctx(1)
	c := fx.ctx(0)
	c.Begin()
	a, _ := c.AllocNode(0)
	c.End()
	area := fx.m.AreaOf(a)

	blocker.Begin() // prevent reclamation
	c.Begin()
	c.PreRetire(a)
	c.Retire(a)
	c.End()
	c.trim() // force a trim: must NOT remove the area with pending unlinks
	found := false
	for i := range c.apt {
		if c.apt[i].area == area {
			found = true
		}
	}
	if !found {
		t.Fatal("area with unreclaimed unlinks was trimmed from APT")
	}
	blocker.End()
}

func TestConcurrentRetireStress(t *testing.T) {
	fx := newFixture(t, Config{MaxThreads: 8, GenSize: 16})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := fx.ctx(w)
			var live []Addr
			for i := 0; i < 2000; i++ {
				c.Begin()
				if len(live) > 32 {
					a := live[0]
					live = live[1:]
					c.PreRetire(a)
					c.Retire(a)
				} else {
					a, err := c.AllocNode(0)
					if err != nil {
						t.Error(err)
						c.End()
						return
					}
					live = append(live, a)
				}
				c.End()
			}
			c.FlushAll()
		}(w)
	}
	wg.Wait()
}

func TestAreaOfGranularity(t *testing.T) {
	fx := newFixture(t, Config{MaxThreads: 1, AreaShift: 14}) // 16KB areas
	if fx.m.AreaSize() != 16384 {
		t.Fatalf("AreaSize = %d, want 16384", fx.m.AreaSize())
	}
	if fx.m.AreaOf(0x7123) != 0x4000 {
		t.Fatalf("AreaOf(0x7123) = %#x, want 0x4000", fx.m.AreaOf(0x7123))
	}
}

func TestPendingRetiredCounts(t *testing.T) {
	fx := newFixture(t, Config{MaxThreads: 2, GenSize: 1000})
	c := fx.ctx(0)
	c.Begin()
	a, _ := c.AllocNode(0)
	c.End()
	c.Begin()
	c.PreRetire(a)
	c.Retire(a)
	c.End()
	if c.PendingRetired() != 1 {
		t.Fatalf("PendingRetired = %d, want 1", c.PendingRetired())
	}
}

// TestCurrentAllocPageSurvivesTrim: the area of the context's current
// allocation page must never be evicted, even when the table is saturated
// with unevictable unlink entries — otherwise every allocation would miss.
func TestCurrentAllocPageSurvivesTrim(t *testing.T) {
	fx := newFixture(t, Config{MaxThreads: 2, TrimAt: 2, GenSize: 1000})
	blocker := fx.ctx(1)
	blocker.Begin() // pins every generation, making unlink entries unevictable
	c := fx.ctx(0)
	// One allocation establishes the current class-0 page's area.
	c.Begin()
	a, _ := c.AllocNode(0)
	c.End()
	allocArea := fx.m.AreaOf(a)
	// Flood the table with unlink entries from many distinct areas.
	for i := 0; i < 20; i++ {
		c.Begin()
		n, err := c.AllocNode(5) // 1 slot per page: a fresh area each time
		if err != nil {
			t.Fatal(err)
		}
		c.PreRetire(n)
		c.Retire(n)
		c.End()
	}
	// Keep allocating from class 0: every allocation must hit.
	missesBefore := c.Stats().AllocMisses
	for i := 0; i < 30; i++ {
		c.Begin()
		c.AllocNode(0)
		c.End()
	}
	if got := c.Stats().AllocMisses - missesBefore; got != 0 {
		t.Fatalf("current alloc page evicted: %d misses", got)
	}
	found := false
	for i := range c.apt {
		if c.apt[i].area == allocArea {
			found = true
		}
	}
	if !found {
		t.Fatal("current allocation area missing from APT")
	}
	blocker.End()
}

// TestTrimCooldownBacksOff: when nothing is evictable, trim attempts must
// not rescan on every miss.
func TestTrimCooldownBacksOff(t *testing.T) {
	fx := newFixture(t, Config{MaxThreads: 2, TrimAt: 1, GenSize: 1000})
	blocker := fx.ctx(1)
	blocker.Begin()
	c := fx.ctx(0)
	for i := 0; i < 40; i++ {
		c.Begin()
		n, err := c.AllocNode(5)
		if err != nil {
			t.Fatal(err)
		}
		c.PreRetire(n)
		c.Retire(n)
		c.End()
	}
	if trims := c.Stats().Trims; trims > 10 {
		t.Fatalf("trim attempted %d times for 40 unevictable misses; cooldown broken", trims)
	}
	blocker.End()
}
