// Package epoch implements NV-epochs (§5 of the paper): a coarse-grained,
// epoch-based memory reclamation scheme for durable concurrent data
// structures.
//
// Instead of durably logging every allocation and unlink (the traditional
// approach, available here as the AllocLogging baseline for Figure 9b),
// NV-epochs durably tracks only the set of *active memory areas* per thread
// — the active page table (APT). Because allocation and reclamation exhibit
// locality, the area an operation touches is usually already marked active,
// and the operation performs no durable bookkeeping at all. Only an APT miss
// pays a sync.
//
// Epoch protocol: each thread owns a counter, incremented when an operation
// starts and when it completes, so an odd value means "in an operation".
// Unlinked nodes accumulate into generations; a generation is freed once
// every thread that was mid-operation when the generation was sealed has
// moved on. Frees are issued in a batch covered by a single fence.
//
// Recovery reads the durable APT and sweeps only those areas for
// allocated-but-unreachable objects — the paper's fast alternative to a full
// mark-and-sweep pass.
package epoch

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/nvram"
	"repro/internal/pmem"
)

// Addr is a byte offset into the device.
type Addr = nvram.Addr

// Config parameterizes a Manager.
type Config struct {
	// MaxThreads is the number of contexts the manager supports. The durable
	// APT region is sized for this many threads.
	MaxThreads int
	// Capacity is the per-thread APT capacity in entries. Default 128.
	Capacity int
	// TrimAt is the APT occupancy that triggers a trim attempt. The paper
	// trims tables exceeding 16 entries (§6.3). Default 16.
	TrimAt int
	// GenSize is the number of retired nodes per generation. Default 64.
	GenSize int
	// AreaShift is log2 of the active-area granularity. Default 12 (4KB
	// pages); §6.3 notes the granularity is adjustable — larger areas give
	// higher hit rates at the cost of recovery time.
	AreaShift uint
	// AllocLogging enables the traditional baseline (§5.1): every allocation
	// and every unlink durably logs its intent before proceeding, costing
	// one sync each. The APT is bypassed. Used by Figure 9b.
	AllocLogging bool
	// Volatile drops all durable bookkeeping (APT and alloc-log): the
	// reclamation scheme degenerates to plain epoch-based reclamation for
	// the NVRAM-oblivious baseline of Figure 7.
	Volatile bool
}

func (c *Config) fill() {
	if c.MaxThreads <= 0 {
		c.MaxThreads = 1
	}
	if c.Capacity == 0 {
		c.Capacity = 128
	}
	if c.TrimAt == 0 {
		c.TrimAt = 16
	}
	if c.GenSize == 0 {
		c.GenSize = 64
	}
	if c.AreaShift == 0 {
		c.AreaShift = 12
	}
}

type paddedEpoch struct {
	v atomic.Uint64
	_ [7]uint64
}

// Manager owns the durable APT region and the per-thread epoch counters for
// one pool.
//
// The thread count is NOT fixed: Config.MaxThreads sizes the initial APT
// region, and EnsureThread grows past it one durable bank at a time (one
// extra thread's APT + alloc-log ring per bank, anchored in the bank table
// region so recovery can sweep banks created by a crashed run). The session
// pool in the public runtime leans on this to hand out contexts on demand
// instead of capping concurrency at a formatted thread count.
type Manager struct {
	cfg      Config
	pool     *pmem.Pool
	region   Addr // durable APT: MaxThreads × Capacity words of area addresses
	logReg   Addr // AllocLogging mode: MaxThreads × logRing words
	banksReg Addr // bank table: maxBanks slots of extra-thread bank addresses

	mu     sync.Mutex // guards growth (rare: one new bank per extra thread)
	banks  []Addr     // volatile mirror of the bank table's non-zero slots
	nbanks atomic.Int32

	epochs atomic.Pointer[[]*paddedEpoch]

	// TrimHook, if non-nil, is invoked before entries are trimmed from an
	// APT. The runtime installs a link-cache flush here: §5.4 requires that
	// the link cache hold no entries for a page before it leaves the table.
	TrimHook func(tid int)

	// FreeHook, if non-nil, is invoked before a generation's nodes are
	// returned to the allocator. The runtime installs a link-cache flush
	// here so that a node's durable unreachability (its unlink, possibly
	// still buffered in the link cache) is established before its slot can
	// be reused.
	FreeHook func(tid int)
}

const (
	logRing = 1024

	// maxBanks bounds the number of extra-thread banks (one per thread past
	// the formatted MaxThreads). The bank table region holds this many slots.
	maxBanks = 1024
)

func newEpochs(n int) *[]*paddedEpoch {
	eps := make([]*paddedEpoch, n)
	for i := range eps {
		eps[i] = &paddedEpoch{}
	}
	return &eps
}

// NewManager creates a manager and carves its durable APT region. Store
// RegionAddr (and BanksRegionAddr) in root slots so the tables can be found
// after a restart.
func NewManager(pool *pmem.Pool, f *nvram.Flusher, cfg Config) (*Manager, error) {
	cfg.fill()
	m := &Manager{cfg: cfg, pool: pool}
	m.epochs.Store(newEpochs(cfg.MaxThreads))
	var err error
	m.region, err = pool.AllocRegion(f, uint64(cfg.MaxThreads*cfg.Capacity)*8)
	if err != nil {
		return nil, err
	}
	m.logReg, err = pool.AllocRegion(f, uint64(cfg.MaxThreads*logRing)*8)
	if err != nil {
		return nil, err
	}
	m.banksReg, err = pool.AllocRegion(f, maxBanks*8)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// AttachManager re-opens a manager whose APT region was carved by a previous
// incarnation, re-adopting any durable extra-thread banks (banksReg may be 0
// for images predating bank support — such a manager simply cannot grow).
// Volatile state (epochs, generations) starts fresh, exactly as after a
// reboot.
func AttachManager(pool *pmem.Pool, region, logReg, banksReg Addr, cfg Config) *Manager {
	cfg.fill()
	m := &Manager{cfg: cfg, pool: pool, region: region, logReg: logReg, banksReg: banksReg}
	if banksReg != 0 {
		dev := pool.Device()
		for i := 0; i < maxBanks; i++ {
			a := dev.Load(banksReg + Addr(i)*8)
			if a == 0 {
				break // banks are recorded densely, in growth order
			}
			m.banks = append(m.banks, a)
		}
	}
	m.nbanks.Store(int32(len(m.banks)))
	m.epochs.Store(newEpochs(cfg.MaxThreads + len(m.banks)))
	return m
}

// RegionAddr returns the durable APT region address (persist it in a root).
func (m *Manager) RegionAddr() Addr { return m.region }

// LogRegionAddr returns the alloc-log region address.
func (m *Manager) LogRegionAddr() Addr { return m.logReg }

// BanksRegionAddr returns the bank table region address (persist it in a
// root).
func (m *Manager) BanksRegionAddr() Addr { return m.banksReg }

// NumThreads returns the number of thread slots currently backed by durable
// APT space (formatted threads plus grown banks).
func (m *Manager) NumThreads() int { return m.cfg.MaxThreads + int(m.nbanks.Load()) }

// EnsureThread grows the manager until thread tid has durable APT (and
// alloc-log) space: one never-recycled bank region per extra thread, each
// recorded in the bank table — durably, before any APT entry can be written
// into it — so a crashed run's grown banks are swept by recovery exactly
// like the formatted region. Growth is rare (once per extra thread, ever);
// operations never pass through here once their context exists.
func (m *Manager) EnsureThread(tid int, f *nvram.Flusher) error {
	if tid < m.NumThreads() {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for tid >= m.cfg.MaxThreads+len(m.banks) {
		i := len(m.banks)
		if i >= maxBanks {
			return fmt.Errorf("epoch: thread %d exceeds the %d-bank growth limit", tid, maxBanks)
		}
		if m.banksReg == 0 {
			return fmt.Errorf("epoch: pool image predates thread banks; cannot grow past %d threads", m.cfg.MaxThreads)
		}
		bank, err := m.pool.AllocRegion(f, uint64(m.cfg.Capacity+logRing)*8)
		if err != nil {
			return err
		}
		// The bank is reachable (and thus recoverable) once its table slot is
		// durable; AllocRegion already synced the region carve.
		dev := m.pool.Device()
		dev.Store(m.banksReg+Addr(i)*8, bank)
		f.Sync(m.banksReg + Addr(i)*8)
		m.banks = append(m.banks, bank)

		old := *m.epochs.Load()
		grown := make([]*paddedEpoch, len(old)+1)
		copy(grown, old)
		grown[len(old)] = &paddedEpoch{}
		m.epochs.Store(&grown)
		m.nbanks.Store(int32(len(m.banks)))
	}
	return nil
}

// bankOf returns the bank region backing extra thread tid (tid >=
// MaxThreads). The caller must have ensured the thread exists.
func (m *Manager) bankOf(tid int) Addr {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.banks[tid-m.cfg.MaxThreads]
}

// Config returns the manager's configuration.
func (m *Manager) Config() Config { return m.cfg }

// AreaOf returns the active-area base address for a.
func (m *Manager) AreaOf(a Addr) Addr { return a &^ (1<<m.cfg.AreaShift - 1) }

// AreaSize returns the active-area granularity in bytes.
func (m *Manager) AreaSize() uint64 { return 1 << m.cfg.AreaShift }

// aptBase returns the base address of thread tid's durable APT slots.
func (m *Manager) aptBase(tid int) Addr {
	if tid < m.cfg.MaxThreads {
		return m.region + Addr(tid*m.cfg.Capacity)*8
	}
	return m.bankOf(tid)
}

// logBase returns the base address of thread tid's alloc-log ring.
func (m *Manager) logBase(tid int) Addr {
	if tid < m.cfg.MaxThreads {
		return m.logReg + Addr(tid*logRing)*8
	}
	return m.bankOf(tid) + Addr(m.cfg.Capacity)*8
}

// ActiveAreas reads the durable APT (across all threads, formatted region
// and grown banks alike) and returns the distinct active areas. This is the
// recovery entry point (§5.5).
func (m *Manager) ActiveAreas() []Addr {
	m.mu.Lock()
	bases := make([]Addr, 0, m.cfg.MaxThreads+len(m.banks))
	for t := 0; t < m.cfg.MaxThreads; t++ {
		bases = append(bases, m.region+Addr(t*m.cfg.Capacity)*8)
	}
	bases = append(bases, m.banks...)
	m.mu.Unlock()
	seen := make(map[Addr]bool)
	var out []Addr
	for _, base := range bases {
		for i := 0; i < m.cfg.Capacity; i++ {
			if a := m.pool.Device().Load(base + Addr(i)*8); a != 0 && !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	return out
}

// AllocatedInArea appends the addresses of all allocated objects in the
// pages of area to dst. Used by recovery.
func (m *Manager) AllocatedInArea(dst []Addr, area Addr) []Addr {
	for page := area; page < area+Addr(m.AreaSize()); page += pmem.PageSize {
		dst = m.pool.AllocatedInPage(dst, page)
	}
	return dst
}

// Stats counts APT behaviour for Figure 9a.
type Stats struct {
	AllocHits    uint64 // allocations whose area was already active
	AllocMisses  uint64 // allocations that durably inserted an APT entry
	UnlinkHits   uint64
	UnlinkMisses uint64
	GensFreed    uint64
	NodesFreed   uint64
	Trims        uint64
	LogWrites    uint64 // AllocLogging mode only
}

func (s Stats) add(o Stats) Stats {
	s.AllocHits += o.AllocHits
	s.AllocMisses += o.AllocMisses
	s.UnlinkHits += o.UnlinkHits
	s.UnlinkMisses += o.UnlinkMisses
	s.GensFreed += o.GensFreed
	s.NodesFreed += o.NodesFreed
	s.Trims += o.Trims
	s.LogWrites += o.LogWrites
	return s
}

// aptEntry mirrors one durable APT slot with its volatile trim metadata
// (§5.4: the metadata "is only needed for removing table entries, and is not
// needed in case of a restart" — so it lives here, not in NVRAM).
type aptEntry struct {
	area          Addr
	lastAllocEp   uint64 // thread epoch of the most recent allocation
	lastUnlinkGen uint64 // seq of the generation holding the latest unlink
	lastUse       uint64 // recency tick, for LRU trim ordering
	hasUnlinks    bool
}

type generation struct {
	seq   uint64
	nodes []Addr
	vec   []uint64 // epoch snapshot at seal
}

// Ctx is the per-thread reclamation context. Not safe for concurrent use.
type Ctx struct {
	m     *Manager
	tid   int
	alloc *pmem.Ctx
	f     *nvram.Flusher

	// Cached per-thread addresses (the tid's APT slots, log ring and epoch
	// counter never move), so hot paths skip the manager's growth lock.
	aptAddr Addr
	logAddr Addr
	epoch   *paddedEpoch

	apt []aptEntry // volatile mirror; apt[i] corresponds to durable slot i

	cur      []Addr // current (open) generation
	gens     []generation
	genSeq   uint64 // seq of the open generation
	lastFree uint64 // seq of the newest freed generation (0 = none)

	logHead int // AllocLogging mode ring cursor

	useTick      uint64 // recency clock for APT entries
	trimCooldown int    // misses to skip before the next trim attempt
	lastAPT      int    // index of the most recently hit APT entry
	recovery     bool

	stats Stats
}

// NewCtx returns the reclamation context for thread tid. Threads at or past
// the formatted MaxThreads must have been grown first (EnsureThread).
func (m *Manager) NewCtx(tid int, alloc *pmem.Ctx, f *nvram.Flusher) *Ctx {
	if tid < 0 || tid >= m.NumThreads() {
		panic(fmt.Sprintf("epoch: tid %d out of range [0,%d); grow with EnsureThread first", tid, m.NumThreads()))
	}
	return &Ctx{m: m, tid: tid, alloc: alloc, f: f,
		aptAddr: m.aptBase(tid), logAddr: m.logBase(tid),
		epoch: (*m.epochs.Load())[tid],
		apt:   make([]aptEntry, m.cfg.Capacity), genSeq: 1}
}

// Tid returns the context's thread id.
func (c *Ctx) Tid() int { return c.tid }

// Stats returns a snapshot of this context's counters.
func (c *Ctx) Stats() Stats { return c.stats }

// Begin marks the start of a data-structure operation (epoch becomes odd).
func (c *Ctx) Begin() {
	c.epoch.v.Add(1)
}

// End marks the completion of an operation (epoch becomes even).
func (c *Ctx) End() {
	c.epoch.v.Add(1)
}

func (c *Ctx) ownEpoch() uint64 { return c.epoch.v.Load() }

// AllocNode allocates a node of class cl with active-page-table bookkeeping:
// the paper's Figure 4 flow. If the node's area is already active, no
// durable bookkeeping happens at all; otherwise the APT entry is synced
// before the allocation is committed.
func (c *Ctx) AllocNode(cl pmem.Class) (Addr, error) {
	addr, err := c.alloc.Prepare(cl)
	if err != nil {
		return 0, err
	}
	if c.m.cfg.AllocLogging {
		c.logIntent(addr)
	} else {
		c.ensureActive(c.m.AreaOf(addr), true)
	}
	a := c.alloc.Commit(cl)
	DebugCheckAlloc(c.m, a)
	return a, nil
}

// PreRetire durably marks the area of a as active *before* the caller makes
// the node's removal durable. Call it before the delete's linearizing CAS:
// this guarantees that if the unlink persists, the area is known to
// recovery, which can then free the node.
func (c *Ctx) PreRetire(a Addr) {
	if c.m.cfg.AllocLogging {
		c.logIntent(a)
		return
	}
	c.ensureActive(c.m.AreaOf(a), false)
}

// SetRecovery switches the context into recovery mode: the system is
// quiescent (no concurrent application operations), so Retire frees
// immediately instead of deferring to a grace period. Parallel recovery
// contexts stay safe because the immediate free is idempotent (TryFree).
func (c *Ctx) SetRecovery(on bool) { c.recovery = on }

// InRecovery reports whether the context is in recovery mode.
func (c *Ctx) InRecovery() bool { return c.recovery }

// Retire hands the (already durably unreachable) node at a to the
// reclamation scheme. It will be freed once all operations concurrent with
// the unlink have completed.
func (c *Ctx) Retire(a Addr) {
	if c.recovery {
		c.alloc.TryFree(a)
		c.stats.NodesFreed++
		return
	}
	if !c.m.cfg.AllocLogging {
		c.ensureActive(c.m.AreaOf(a), false) // hit: refreshes lastUnlinkGen
	}
	debugRetire(c.m, c.tid, a)
	c.cur = append(c.cur, a)
	if len(c.cur) >= c.m.cfg.GenSize {
		c.seal()
		c.tryReclaim()
	}
}

// seal closes the open generation with a snapshot of all thread epochs.
// Threads created after the seal cannot hold references to the generation's
// nodes (they were unlinked before those threads ran an operation), so the
// snapshot length is naturally a lower bound.
func (c *Ctx) seal() {
	eps := *c.m.epochs.Load()
	vec := make([]uint64, len(eps))
	for i := range eps {
		vec[i] = eps[i].v.Load()
	}
	c.gens = append(c.gens, generation{seq: c.genSeq, nodes: c.cur, vec: vec})
	// Hand the full slice to the generation and start a fresh one at full
	// capacity: one allocation per generation instead of a growth series.
	c.cur = make([]Addr, 0, c.m.cfg.GenSize)
	c.genSeq++
}

// reclaimable reports whether every thread that was mid-operation at seal
// time has since advanced.
func (c *Ctx) reclaimable(g *generation) bool {
	eps := *c.m.epochs.Load()
	for t, e := range g.vec {
		if e%2 == 1 && eps[t].v.Load() == e {
			return false
		}
	}
	return true
}

// tryReclaim frees the oldest reclaimable generations. Each generation's
// frees are covered by one fence (§5.3: "the memory reclamation scheme waits
// for all the deallocations it issues at once to be completed").
func (c *Ctx) tryReclaim() {
	if len(c.gens) > 0 && c.reclaimable(&c.gens[0]) && c.m.FreeHook != nil {
		c.m.FreeHook(c.tid)
	}
	for len(c.gens) > 0 && c.reclaimable(&c.gens[0]) {
		g := c.gens[0]
		c.gens = c.gens[1:]
		pageFrees := make(map[Addr]int, 8)
		for _, n := range g.nodes {
			debugFree(c.m, n)
			c.alloc.Free(n)
			pageFrees[n&^(pmem.PageSize-1)]++
		}
		c.f.Fence()
		// Prompt reuse (§5.1 locality): steer subsequent allocations into
		// the page this batch freed the most slots in.
		best, bestN := Addr(0), 0
		for p, n := range pageFrees {
			if n > bestN {
				best, bestN = p, n
			}
		}
		if best != 0 && bestN >= 2 {
			c.alloc.Adopt(best)
		}
		c.lastFree = g.seq
		c.stats.GensFreed++
		c.stats.NodesFreed += uint64(len(g.nodes))
	}
}

// aptHit refreshes one APT entry's recency and trim metadata on a hit.
func (c *Ctx) aptHit(e *aptEntry, isAlloc bool) {
	e.lastUse = c.useTick
	if isAlloc {
		e.lastAllocEp = c.ownEpoch()
		c.stats.AllocHits++
	} else {
		e.lastUnlinkGen = c.genSeq
		e.hasUnlinks = true
		c.stats.UnlinkHits++
	}
}

// ensureActive makes sure area is in this thread's APT, durably inserting it
// (one sync) on a miss. isAlloc selects which trim metadata to refresh.
func (c *Ctx) ensureActive(area Addr, isAlloc bool) {
	if c.m.cfg.Volatile {
		return
	}
	c.useTick++
	// Fast path: allocations and unlinks cluster in one hot area (locality
	// is the whole point of the APT, §5.4), so the most recently hit entry
	// answers most calls without scanning the table. Allocation, PreRetire
	// and Retire each consult the APT, so this runs several times per
	// operation.
	if i := c.lastAPT; i < len(c.apt) && c.apt[i].area == area {
		c.aptHit(&c.apt[i], isAlloc)
		return
	}
	free := -1
	occupied := 0
	for i := range c.apt {
		e := &c.apt[i]
		if e.area == area {
			c.lastAPT = i
			c.aptHit(e, isAlloc)
			return
		}
		if e.area == 0 {
			if free < 0 {
				free = i
			}
		} else {
			occupied++
		}
	}
	// Miss: the table grows; once it exceeds the trim threshold, evict the
	// least recently used quiescent entries back down to it (§5.4). Under
	// unlink-heavy churn most entries are pinned until their generation
	// reclaims, so failed attempts are rate-limited instead of rescanned on
	// every miss.
	if c.trimCooldown > 0 {
		c.trimCooldown--
	}
	if occupied > c.m.cfg.TrimAt && c.trimCooldown == 0 {
		before := occupied
		c.trim()
		if c.APTLen() >= before { // nothing was evictable; back off
			c.trimCooldown = 32
		} else {
			// Even successful trims are rate-limited: each one scans the
			// table for victims, and trimming lazily is always safe — the
			// table is merely allowed to sit a few entries above the
			// threshold between attempts.
			c.trimCooldown = 4
		}
		if free < 0 {
			for i := range c.apt {
				if c.apt[i].area == 0 {
					free = i
					break
				}
			}
		}
	}
	if free < 0 {
		// Table saturated with unremovable entries; force out the entry with
		// the oldest unlink generation. Bounded persistent-leak exposure on
		// crash, never corruption (recovery just won't sweep that area).
		oldest, oldSeq := 0, ^uint64(0)
		for i := range c.apt {
			if c.apt[i].lastUnlinkGen < oldSeq {
				oldest, oldSeq = i, c.apt[i].lastUnlinkGen
			}
		}
		c.removeEntry(oldest)
		c.f.Fence()
		free = oldest
	}
	e := &c.apt[free]
	c.lastAPT = free
	*e = aptEntry{area: area, lastUse: c.useTick}
	if isAlloc {
		e.lastAllocEp = c.ownEpoch()
		c.stats.AllocMisses++
	} else {
		e.lastUnlinkGen = c.genSeq
		e.hasUnlinks = true
		c.stats.UnlinkMisses++
	}
	dev := c.m.pool.Device()
	dev.Store(c.aptAddr+Addr(free)*8, area)
	c.f.Sync(c.aptAddr + Addr(free)*8) // §5.4: page addresses are stored durably
}

// removeEntry durably clears APT slot i (write-back scheduled, caller
// fences).
func (c *Ctx) removeEntry(i int) {
	c.apt[i] = aptEntry{}
	dev := c.m.pool.Device()
	dev.Store(c.aptAddr+Addr(i)*8, 0)
	c.f.CLWB(c.aptAddr + Addr(i)*8)
}

// trim evicts quiescent entries — entries whose last allocation's operation
// has completed and whose unlinked nodes have all been freed (§5.4) — in
// least-recently-used order, until occupancy is back at the threshold.
// Evicting only the cold tail preserves the recency that gives the APT its
// high hit rates (Figure 9a). Removals are batched under one fence.
func (c *Ctx) trim() {
	c.stats.Trims++
	if c.m.TrimHook != nil {
		c.m.TrimHook(c.tid) // flush the link cache first (§5.4)
	}
	c.tryReclaim()
	cur := c.ownEpoch()
	// The current allocation pages are active by definition: evicting them
	// would make the very next allocation miss (they are also what recovery
	// must sweep if a crash interrupts an in-flight insert).
	var curAreas [pmem.NumClasses]Addr
	for i, p := range c.alloc.CurrentPages() {
		if p != 0 {
			curAreas[i] = c.m.AreaOf(p)
		}
	}
	occupied := 0
	for i := range c.apt {
		if c.apt[i].area != 0 {
			occupied++
		}
	}
	removed := false
	for occupied > c.m.cfg.TrimAt {
		victim, victimUse := -1, ^uint64(0)
	scan:
		for i := range c.apt {
			e := &c.apt[i]
			if e.area == 0 || e.lastUse >= victimUse {
				continue
			}
			if e.lastAllocEp == cur && cur%2 == 1 {
				continue // allocation in the still-open operation
			}
			if e.hasUnlinks && e.lastUnlinkGen > c.lastFree {
				continue // unlinked nodes not yet reclaimed
			}
			for _, a := range curAreas {
				if a != 0 && a == e.area {
					continue scan // current allocation page's area
				}
			}
			victim, victimUse = i, e.lastUse
		}
		if victim < 0 {
			break // nothing more is removable
		}
		c.removeEntry(victim)
		occupied--
		removed = true
	}
	if removed {
		c.f.Fence()
	}
}

// FlushAll seals and reclaims everything reclaimable, then trims. Intended
// for orderly shutdown and tests.
func (c *Ctx) FlushAll() {
	if len(c.cur) > 0 {
		c.seal()
	}
	c.tryReclaim()
	c.trim()
}

// PendingRetired returns how many retired nodes await reclamation.
func (c *Ctx) PendingRetired() int {
	n := len(c.cur)
	for _, g := range c.gens {
		n += len(g.nodes)
	}
	return n
}

// APTLen returns the current APT occupancy (volatile view).
func (c *Ctx) APTLen() int {
	n := 0
	for i := range c.apt {
		if c.apt[i].area != 0 {
			n++
		}
	}
	return n
}

// logIntent is the AllocLogging baseline: one durable log write (a sync) per
// allocation or unlink, the cost NV-epochs removes.
func (c *Ctx) logIntent(a Addr) {
	if c.m.cfg.Volatile {
		return
	}
	dev := c.m.pool.Device()
	slot := c.logAddr + Addr(c.logHead)*8
	dev.Store(slot, a)
	c.f.Sync(slot)
	c.logHead = (c.logHead + 1) % logRing
	c.stats.LogWrites++
}
