package epoch

import (
	"fmt"
	"sync"
)

// Debug instrumentation (enabled via EnableRetireDebug in tests): tracks
// every queued retirement across all contexts of a manager and panics with
// context on a duplicate, which would otherwise surface later as an
// inscrutable double free.
// unlinkRec is a compact unlink record (no allocation on the hot path).
type unlinkRec struct {
	edge     Addr
	old, new uint64
	site     uint8 // 1 helper, 2 deleter
	used     bool
}

var (
	retireDebugMu  sync.Mutex
	retireDebugOn  bool
	retireDebugSet map[*Manager]map[Addr]int
	retireDebugTr  map[Addr][2]unlinkRec
)

// EnableRetireDebug turns on global double-retire tracking (tests only).
func EnableRetireDebug() {
	retireDebugMu.Lock()
	retireDebugOn = true
	retireDebugSet = make(map[*Manager]map[Addr]int)
	retireDebugTr = make(map[Addr][2]unlinkRec)
	retireDebugMu.Unlock()
}

func debugRetire(m *Manager, tid int, a Addr) {
	if !retireDebugOn {
		return
	}
	retireDebugMu.Lock()
	defer retireDebugMu.Unlock()
	s := retireDebugSet[m]
	if s == nil {
		s = make(map[Addr]int)
		retireDebugSet[m] = s
	}
	if prev, dup := s[a]; dup {
		panic(fmt.Sprintf("epoch: DOUBLE RETIRE of %#x by tid %d (first by tid %d)\nUNLINK RECORDS: %+v\n",
			a, tid, prev, retireDebugTr[a]))
	}
	s[a] = tid
}

// DebugNoteUnlink records the edge through which a node was unlinked, kept
// as a short per-address history for double-retire forensics.
func DebugNoteUnlink(a Addr, edge Addr, oldW, newW uint64, site uint8) {
	if !retireDebugOn {
		return
	}
	retireDebugMu.Lock()
	recs := retireDebugTr[a]
	r := unlinkRec{edge: edge, old: oldW, new: newW, site: site, used: true}
	if !recs[0].used {
		recs[0] = r
	} else {
		recs[1] = r
	}
	retireDebugTr[a] = recs
	retireDebugMu.Unlock()
}

// DebugCheckAlloc panics if a freshly allocated address is still queued for
// reclamation — the allocator must never hand out a retired-pending slot.
func DebugCheckAlloc(m *Manager, a Addr) {
	if !retireDebugOn {
		return
	}
	retireDebugMu.Lock()
	defer retireDebugMu.Unlock()
	if tid, bad := retireDebugSet[m][a]; bad {
		panic(fmt.Sprintf("epoch: ALLOCATED RETIRED-PENDING slot %#x (retired by tid %d, recs %+v)",
			a, tid, retireDebugTr[a]))
	}
}

func debugFree(m *Manager, a Addr) {
	if !retireDebugOn {
		return
	}
	retireDebugMu.Lock()
	delete(retireDebugSet[m], a)
	delete(retireDebugTr, a)
	retireDebugMu.Unlock()
}
