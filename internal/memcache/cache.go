// Package memcache implements NV-Memcached (§6.5): a durable object cache
// in the mold of Memcached, built on the log-free durable hash table.
//
// Architecture, following the paper:
//
//   - The hash table is the log-free durable lock-free table (replacing
//     memcached-clht's CLHT), keyed by a 64-bit hash of the item key; full
//     keys are compared inside items, and genuine 64-bit collisions chain
//     through the items' hnext field.
//   - Items live in slab-class pages of the persistent allocator; the
//     active-page table doubles as the paper's "active slab table": on
//     recovery, only active slabs are swept for items that are allocated
//     but no longer (or not yet) reachable from the table.
//   - The LRU list is volatile (recovery resets recency, not contents),
//     mirroring Memcached's behaviour that cache metadata is advisory.
//
// Durable linearizability: a Set/Delete that returned is reflected after a
// crash (link-and-persist end to end); Gets are unaffected.
package memcache

import (
	"bytes"
	"errors"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/nvram"
	"repro/internal/pmem"
)

// Addr is a byte offset into the device.
type Addr = nvram.Addr

// Item layout (allocated from class ≥ 1, so item pages are distinguishable
// from index-node pages):
//
//	[0]  keyLen(16) | valLen(32) | flags(16)
//	[8]  64-bit key hash
//	[16] expiry (unix seconds, 0 = never)
//	[24] hnext: next item with the same 64-bit hash (collision chain)
//	[32] key bytes, then value bytes
const (
	itHeader = 0
	itHash   = 8
	itExpiry = 16
	itHNext  = 24
	itData   = 32

	// MaxKeyLen matches memcached's 250-byte key limit.
	MaxKeyLen = 250
	// MaxValueLen is bounded by the largest slab class.
	MaxValueLen = 2048 - itData - MaxKeyLen
)

// Errors.
var (
	ErrTooLarge = errors.New("memcache: item exceeds the largest slab class")
	ErrNotFound = errors.New("memcache: key not found")
)

// Config parameterizes a Cache.
type Config struct {
	// MemoryBytes sizes the simulated NVRAM device.
	MemoryBytes uint64
	// Buckets is the hash-table bucket count (rounded to a power of two).
	Buckets int
	// MaxConns bounds concurrent handles (one per connection/worker).
	MaxConns int
	// WriteLatency is the simulated NVRAM write latency.
	WriteLatency time.Duration
	// LinkCache enables the §4 link cache (on by default in NV-Memcached).
	DisableLinkCache bool
}

func (c *Config) fill() {
	if c.MemoryBytes == 0 {
		c.MemoryBytes = 256 << 20
	}
	if c.Buckets == 0 {
		c.Buckets = 1 << 16
	}
	if c.MaxConns == 0 {
		c.MaxConns = 8
	}
}

// Cache is a durable NV-Memcached instance.
type Cache struct {
	dev   *nvram.Device
	store *core.Store
	idx   *core.HashTable

	lru   *lruList
	stats Stats

	statsMu sync.Mutex

	// itemLocks serialize the lifecycle (set/delete/evict) of items sharing
	// a hash stripe, exactly as memcached's striped item locks do. Gets are
	// lock-free; the underlying hash table stays lock-free too — the stripe
	// only prevents two mutators from retiring the same item twice.
	itemLocks [1024]sync.Mutex
}

func (m *Cache) lockHash(hash uint64) *sync.Mutex {
	return &m.itemLocks[hash%uint64(len(m.itemLocks))]
}

// Stats mirrors the interesting counters of `stats`.
type Stats struct {
	Gets, Sets, Deletes uint64
	Hits, Misses        uint64
	Evictions           uint64
	Items               int64
}

// Handle is a per-connection (per-goroutine) operation context.
type Handle struct {
	cache *Cache
	c     *core.Ctx
	tid   int
}

// Root slots used by the cache's durable descriptor.
const (
	rootBuckets = core.RootUser + 0
	rootNBkts   = core.RootUser + 1
	rootTail    = core.RootUser + 2
)

// New creates a durable cache on a fresh device.
func New(cfg Config) (*Cache, error) {
	cfg.fill()
	dev := nvram.New(nvram.Config{Size: cfg.MemoryBytes, WriteLatency: cfg.WriteLatency})
	store, err := core.NewStore(dev, core.Options{
		MaxThreads: cfg.MaxConns + 1,
		LinkCache:  !cfg.DisableLinkCache,
	})
	if err != nil {
		return nil, err
	}
	setup := store.MustCtx(cfg.MaxConns)
	idx, err := core.NewHashTable(setup, cfg.Buckets)
	if err != nil {
		return nil, err
	}
	store.SetRoot(setup, rootBuckets, idx.Buckets())
	store.SetRoot(setup, rootNBkts, uint64(idx.NumBuckets()))
	store.SetRoot(setup, rootTail, idx.Tail())
	return &Cache{dev: dev, store: store, idx: idx, lru: newLRU()}, nil
}

// Device exposes the simulated device (crash injection, stats).
func (m *Cache) Device() *nvram.Device { return m.dev }

// Stats returns a snapshot of the counters.
func (m *Cache) Stats() Stats {
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	return m.stats
}

// Handle returns the operation context for worker tid.
func (m *Cache) Handle(tid int) *Handle {
	return &Handle{cache: m, c: m.store.CtxFor(tid), tid: tid}
}

func (m *Cache) bump(f func(*Stats)) {
	m.statsMu.Lock()
	f(&m.stats)
	m.statsMu.Unlock()
}

// keyHash maps a key to the hash table's key space.
func keyHash(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	if h < core.MinKey {
		h = core.MinKey
	}
	if h > core.MaxKey {
		h = core.MaxKey
	}
	return h
}

// itemClass picks the slab class for an item (never class 0: index nodes
// own class-0 pages, preserving the paper's "areas hold one type of data").
func itemClass(total uint64) (pmem.Class, error) {
	cl, err := pmem.ClassFor(total)
	if err != nil {
		return 0, ErrTooLarge
	}
	if cl == 0 {
		cl = 1
	}
	return cl, nil
}

// writeItem allocates and fully persists an item (contents fenced before it
// can be linked anywhere).
func (h *Handle) writeItem(hash uint64, key, value []byte, flags uint16, expiry uint32, hnext Addr) (Addr, error) {
	total := uint64(itData + len(key) + len(value))
	cl, err := itemClass(total)
	if err != nil {
		return 0, err
	}
	it, err := h.c.Epoch().AllocNode(cl)
	if err != nil {
		return 0, err
	}
	dev := h.cache.dev
	hdr := uint64(len(key)) | uint64(len(value))<<16 | uint64(flags)<<48
	dev.Store(it+itHeader, hdr)
	dev.Store(it+itHash, hash)
	dev.Store(it+itExpiry, uint64(expiry))
	dev.Store(it+itHNext, uint64(hnext))
	data := make([]byte, 0, len(key)+len(value))
	data = append(append(data, key...), value...)
	storeBytes(dev, it+itData, data) // word-aligned start; one contiguous blob
	for off := Addr(0); off < Addr(total+7)/8*8; off += nvram.LineSize {
		h.c.Flusher().CLWB(it + off)
	}
	h.c.Flusher().Fence()
	return it, nil
}

// storeBytes writes a byte slice into the device word by word.
func storeBytes(dev *nvram.Device, a Addr, b []byte) {
	for i := 0; i < len(b); i += 8 {
		var w uint64
		for j := 0; j < 8 && i+j < len(b); j++ {
			w |= uint64(b[i+j]) << (8 * j)
		}
		dev.Store(a+Addr(i), w)
	}
}

// loadBytes reads n bytes from the device.
func loadBytes(dev *nvram.Device, a Addr, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; i += 8 {
		w := dev.Load(a + Addr(i))
		for j := 0; j < 8 && i+j < n; j++ {
			out[i+j] = byte(w >> (8 * j))
		}
	}
	return out
}

func (m *Cache) itemKey(it Addr) []byte {
	hdr := m.dev.Load(it + itHeader)
	return loadBytes(m.dev, it+itData, int(hdr&0xFFFF))
}

func (m *Cache) itemValue(it Addr) []byte {
	hdr := m.dev.Load(it + itHeader)
	klen := int(hdr & 0xFFFF)
	vlen := int(hdr >> 16 & 0xFFFFFFFF)
	return loadBytes(m.dev, it+itData, klen+vlen)[klen:]
}

func (m *Cache) itemFlags(it Addr) uint16 {
	return uint16(m.dev.Load(it+itHeader) >> 48)
}

func (m *Cache) itemExpired(it Addr, now int64) bool {
	e := m.dev.Load(it + itExpiry)
	return e != 0 && int64(e) <= now
}

// findInChain walks a collision chain for an exact key match, returning the
// item and its predecessor in the chain (0 if it is the head).
func (m *Cache) findInChain(head Addr, key []byte) (item, pred Addr) {
	pred = 0
	for it := head; it != 0; it = Addr(m.dev.Load(it + itHNext)) {
		if bytes.Equal(m.itemKey(it), key) {
			return it, pred
		}
		pred = it
	}
	return 0, 0
}

// Get returns the value and flags bound to key.
func (h *Handle) Get(key []byte) (value []byte, flags uint16, ok bool) {
	m := h.cache
	m.bump(func(s *Stats) { s.Gets++ })
	hash := keyHash(key)
	head, found := m.idx.Search(h.c, hash)
	if !found {
		m.bump(func(s *Stats) { s.Misses++ })
		return nil, 0, false
	}
	it, _ := m.findInChain(Addr(head), key)
	if it == 0 || m.itemExpired(it, time.Now().Unix()) {
		m.bump(func(s *Stats) { s.Misses++ })
		return nil, 0, false
	}
	m.lru.touch(it)
	m.bump(func(s *Stats) { s.Hits++ })
	return m.itemValue(it), m.itemFlags(it), true
}

// Set binds key to value, durably, evicting LRU items under memory pressure.
func (h *Handle) Set(key, value []byte, flags uint16, expiry uint32) error {
	if len(key) > MaxKeyLen || len(key) == 0 {
		return errors.New("memcache: bad key length")
	}
	if itData+len(key)+len(value) > 2048 {
		return ErrTooLarge
	}
	m := h.cache
	m.bump(func(s *Stats) { s.Sets++ })
	// Proactive LRU eviction: keep enough headroom that allocations deep in
	// the index never fail (memcached's behaviour under memory pressure).
	const lowWater = 256 << 10
	for i := 0; m.store.Pool().AvailableBytes() < lowWater && i < 256; i++ {
		if !h.evictOne() {
			break
		}
		if i%16 == 15 {
			// Convert retirements into reusable slots right away.
			h.c.Epoch().FlushAll()
		}
	}
	hash := keyHash(key)
	for attempt := 0; ; attempt++ {
		mu := m.lockHash(hash)
		mu.Lock()
		err := h.setOnce(hash, key, value, flags, expiry)
		mu.Unlock()
		if err == nil {
			return nil
		}
		if !errors.Is(err, pmem.ErrOutOfMemory) || attempt > 64 {
			return err
		}
		if !h.evictOne() {
			return err
		}
		h.c.Epoch().FlushAll()
	}
}

func (h *Handle) setOnce(hash uint64, key, value []byte, flags uint16, expiry uint32) error {
	m := h.cache
	oldHeadV, exists := m.idx.Search(h.c, hash)
	oldHead := Addr(oldHeadV)
	var replaced, chainTail Addr
	if exists {
		replaced, _ = m.findInChain(oldHead, key)
		chainTail = oldHead
		if replaced == oldHead {
			chainTail = Addr(m.dev.Load(replaced + itHNext))
		} else if replaced != 0 {
			// Key sits mid-chain (double collision — vanishingly rare):
			// rebuilding the chain head-first keeps surgery simple.
			chainTail = oldHead
		}
	}
	it, err := h.writeItem(hash, key, value, flags, expiry, chainTail)
	if err != nil {
		return err
	}
	if replaced != 0 {
		// The replacement will make the old item durably unreachable; its
		// area must be in the APT first (§5.4).
		h.c.Epoch().PreRetire(replaced)
	}
	if replaced != 0 && replaced != oldHead && chainTail == oldHead {
		// Unlink the replaced mid-chain item durably before publishing.
		_, pred := m.findInChain(oldHead, key)
		next := m.dev.Load(replaced + itHNext)
		m.dev.Store(pred+itHNext, next)
		h.c.Flusher().Sync(pred + itHNext)
	}
	if exists {
		m.idx.Upsert(h.c, hash, uint64(it))
	} else if !m.idx.Insert(h.c, hash, uint64(it)) {
		// Lost a race with a concurrent set of a colliding hash: retry via
		// Upsert (last write wins, as in memcached).
		m.idx.Upsert(h.c, hash, uint64(it))
	}
	m.lru.add(it)
	if replaced != 0 {
		m.lru.remove(replaced)
		h.retireItem(replaced)
		m.bump(func(s *Stats) { s.Items-- })
	}
	m.bump(func(s *Stats) { s.Items++ })
	return nil
}

// Delete removes key durably.
func (h *Handle) Delete(key []byte) bool {
	m := h.cache
	m.bump(func(s *Stats) { s.Deletes++ })
	hash := keyHash(key)
	mu := m.lockHash(hash)
	mu.Lock()
	defer mu.Unlock()
	headV, exists := m.idx.Search(h.c, hash)
	if !exists {
		return false
	}
	head := Addr(headV)
	it, pred := m.findInChain(head, key)
	if it == 0 {
		return false
	}
	// The unlink makes the item durably unreachable; cover its area first.
	h.c.Epoch().PreRetire(it)
	next := Addr(m.dev.Load(it + itHNext))
	switch {
	case pred == 0 && next == 0:
		if _, ok := m.idx.Delete(h.c, hash); !ok {
			return false
		}
	case pred == 0:
		m.idx.Upsert(h.c, hash, uint64(next))
	default:
		m.dev.Store(pred+itHNext, uint64(next))
		h.c.Flusher().Sync(pred + itHNext)
	}
	m.lru.remove(it)
	h.retireItem(it)
	m.bump(func(s *Stats) { s.Items-- })
	return true
}

// retireItem hands an unlinked item to epoch reclamation (PreRetire already
// happened before the unlink was published).
func (h *Handle) retireItem(it Addr) {
	h.c.Epoch().Retire(it)
}

// evictOne removes the least recently used item (memcached behaviour under
// memory pressure). Returns false if nothing is evictable.
func (h *Handle) evictOne() bool {
	it := h.cache.lru.oldest()
	if it == 0 {
		return false
	}
	key := h.cache.itemKey(it)
	if h.Delete(key) {
		h.cache.bump(func(s *Stats) { s.Evictions++ })
		return true
	}
	h.cache.lru.remove(it) // stale LRU entry
	return true
}

// Flush makes all deferred durability work durable (link cache, retirees).
// Requires quiescence.
func (m *Cache) Flush() {
	for tid := 0; tid < m.store.Options().MaxThreads; tid++ {
		if c := m.store.ExistingCtx(tid); c != nil {
			c.Shutdown()
		}
	}
}
