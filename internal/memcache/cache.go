// Package memcache implements NV-Memcached (§6.5): a durable object cache
// in the mold of Memcached, built on the public logfree byte-key API.
//
// Architecture, following the paper:
//
//   - The index is logfree's byte-keyed durable map (KindMap): a log-free
//     durable lock-free hash table keyed by the item key's 64-bit hash,
//     with full keys verified in the durable entries and same-hash keys
//     chained durably — distinct string keys can never alias.
//   - Items live in slab-class extents of the persistent allocator; on
//     recovery, only the active slabs are swept for items that are
//     allocated but no longer (or not yet) reachable from the map.
//   - The LRU list is volatile (recovery resets recency, not contents),
//     mirroring Memcached's behaviour that cache metadata is advisory.
//
// Threading (v3): every method of Cache is safe for concurrent use from any
// goroutine — the logfree runtime's implicit sessions replaced the old
// per-connection Handle plumbing, so connections need no worker-slot
// assignment to issue operations.
//
// Durable linearizability: a Set/Delete that returned is reflected after a
// crash (link-and-persist end to end); Gets are unaffected.
package memcache

import (
	"encoding/binary"
	"errors"
	"iter"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/capacity"
	"repro/internal/nvram"
	"repro/logfree"
	"repro/logfree/sharded"
)

const (
	// MaxKeyLen matches memcached's 250-byte key limit.
	MaxKeyLen = 250
	// MaxValueLen is bounded by the largest slab class (entry header and a
	// maximum-length key subtracted), derived from the byte-map geometry.
	MaxValueLen = logfree.MaxMapEntrySize - logfree.MapEntryOverhead - MaxKeyLen

	// cacheMapName is the durable directory name of the item index.
	cacheMapName = "memcache"
	// expMapName is the durable directory name of the ordered expiry index:
	// an ordered byte-key map whose keys are 8-byte big-endian deadlines
	// followed by the item key, so "everything due by now" is one range
	// scan instead of a full-table walk.
	expMapName = "memcache.exp"
)

// Errors.
var (
	ErrTooLarge = errors.New("memcache: item exceeds the largest slab class")
	ErrNotFound = errors.New("memcache: key not found")
	// ErrCASConflict reports a cas with a stale token: the item was modified
	// since the gets that produced it (wire response EXISTS).
	ErrCASConflict = errors.New("memcache: cas conflict (item modified)")
)

// Item metadata layout. The durable entry carries a uint16 meta word (the
// client flags) and a uint64 aux word, packed as
//
//	aux[63:32] per-item CAS sequence (bumped on every mutation, 0 = none)
//	aux[31:0]  unix expiry deadline (0 = never)
//
// Both halves are written in the same durable entry publish, so the CAS
// unique and the value are crash-atomic: no recovery can observe a value
// with the previous value's CAS. Images from before this layout stored the
// bare expiry in aux — a unix timestamp, always < 2^32 — so old items read
// as CAS 0 and lazily adopt a real sequence on their first mutation.
//
// The CAS sequence is 32-bit in storage (presented as the protocol's 64-bit
// unique on the wire); it is per-item monotonic, wraps past 2^32-1 mutations
// of one item, and skips 0.
func packAux(cas uint32, expiry uint32) uint64 { return uint64(cas)<<32 | uint64(expiry) }

func auxExpiry(aux uint64) uint32 { return uint32(aux) }
func auxCAS(aux uint64) uint32    { return uint32(aux >> 32) }

// nextCAS is the successor in the per-item CAS sequence (skipping 0, which
// means "no CAS assigned yet").
func nextCAS(old uint32) uint32 {
	old++
	if old == 0 {
		old = 1
	}
	return old
}

// Config parameterizes a Cache.
type Config struct {
	// MemoryBytes sizes the simulated NVRAM device.
	MemoryBytes uint64
	// Buckets is the hash-table bucket count (rounded to a power of two).
	Buckets int
	// MaxConns sizes the formatted session region (one per expected
	// concurrent connection/worker). Not a cap: the runtime's session pool
	// grows past it on demand.
	MaxConns int
	// WriteLatency is the simulated NVRAM write latency.
	WriteLatency time.Duration
	// DisableLinkCache turns the §4 link cache off (on by default in
	// NV-Memcached). Whether the cache is actually legal on the configured
	// device is derived from the Durability policy inside logfree; the
	// request here only expresses intent.
	DisableLinkCache bool
	// Device names the persistence substrate (logfree.MemDevice,
	// FileDevice, DAXDevice). With Shards > 1 the spec's path is the pool
	// DIRECTORY. A durable device that already holds a cache is recovered
	// in place (check Runtime().Recovered()).
	Device logfree.DeviceSpec
	// Durability is the acknowledged-operation policy on the configured
	// device (logfree.Strict, Synced, Buffered). Zero value: Synced.
	Durability logfree.Durability
	// File backs the NVRAM image with an mmap'd file at this path.
	//
	// Deprecated: set Device (logfree.FileDevice(path)). Folded into
	// Device by fill() when Device is unset.
	File string
	// FileSync adds machine-crash durability for acknowledged writes.
	//
	// Deprecated: set Durability (logfree.Strict()). Folded into
	// Durability by fill() when Durability is the zero policy.
	FileSync bool
	// Shards > 1 runs the cache on a sharded.Pool of that many independent
	// runtimes (rounded to a power of two) instead of one: keys hash-route
	// to shards, MemoryBytes and Buckets are split evenly across them, and
	// with File set, File names the pool DIRECTORY (per-shard backing files
	// plus a topology manifest) rather than a single image file. 0 or 1
	// keeps the classic single-runtime cache.
	Shards int
	// MaxBytes, when non-zero, caps the cache's LOGICAL footprint (entry
	// overhead + key + value, summed over live items): writes that would
	// push past it evict LRU items first, even when the device still has
	// room. The memory-pressure valve memcached's -m flag provides.
	MaxBytes uint64
	// MaxGrowBytes, when non-zero, reserves device address space so the
	// pool can grow online: under allocator pressure the cache doubles the
	// pool (crash-atomically, clamped to this reserve) before resorting to
	// eviction. With File set, reopening a grown image requires the same
	// MaxGrowBytes-style elastic configuration.
	MaxGrowBytes uint64
	// OnGrow, when set, is called after each successful online grow with
	// the pool's new total byte capacity (serving loop logging).
	OnGrow func(total uint64)
}

func (c *Config) fill() {
	if c.MemoryBytes == 0 {
		c.MemoryBytes = 256 << 20
	}
	if c.Buckets == 0 {
		c.Buckets = 1 << 16
	}
	if c.MaxConns == 0 {
		c.MaxConns = 8
	}
	// Fold the deprecated per-flag fields into the spec/policy pair.
	if c.Device.Kind == logfree.DeviceMem && c.File != "" {
		c.Device = logfree.FileDevice(c.File)
	}
	if c.FileSync && !c.Durability.IsStrict() && !c.Durability.IsBuffered() {
		c.Durability = logfree.Strict()
	}
}

// itemIndex is the byte-map surface the cache needs from its item index —
// satisfied by both *logfree.ByteMap (single runtime) and *sharded.Map
// (hash-routed pool).
type itemIndex interface {
	SetItem(key, value []byte, meta uint16, aux uint64) (created bool, err error)
	GetItem(key []byte) (value []byte, meta uint16, aux uint64, ok bool)
	GetAux(key []byte) (aux uint64, ok bool)
	SetAux(key []byte, aux uint64) bool
	Delete(key []byte) bool
	All() iter.Seq2[[]byte, []byte]
	Items() iter.Seq2[[]byte, logfree.Item]
}

// expIndex is the ordered-map surface backing the expiry index — satisfied
// by both *logfree.OrderedByteMap and *sharded.OrderedMap.
type expIndex interface {
	Set(key, value []byte) error
	Delete(key []byte) bool
	Len() int
	Scan(start, end []byte) iter.Seq2[[]byte, []byte]
}

// engine is the runtime surface the cache needs regardless of topology —
// satisfied by both *logfree.Runtime and *sharded.Pool.
type engine interface {
	Close() error
	Drain()
	Reclaim()
	AvailableBytes() uint64
	SizeBytes() uint64
	FreeBytes() uint64
	Grow(total uint64) error
	Recovered() bool
	RecoveryStats() logfree.RecoveryStats
}

// Cache is a durable NV-Memcached instance. All methods are safe for
// concurrent use from any goroutine.
type Cache struct {
	rt   *logfree.Runtime // nil when sharded
	pool *sharded.Pool    // nil when single-runtime
	eng  engine           // whichever of the two is live
	m    itemIndex
	exp  expIndex
	cfg  Config

	lru   *lruList
	stats counters

	// usedBytes tracks the cache's logical footprint (the MaxBytes valve's
	// currency), maintained from the LRU's per-node sizes so no accounting
	// step ever needs a device read.
	usedBytes atomic.Int64

	// growMu serializes online grows so concurrent full writers walk the
	// doubling schedule one step at a time.
	growMu sync.Mutex

	// repl holds the replication hooks (nil pointer or nil fields = not
	// replicating): one atomic so SetReplication is safe mid-traffic.
	repl atomic.Pointer[replHooks]

	// keyLocks serialize the lifecycle (set/delete/evict and the composite
	// commands) of items sharing a key-hash stripe, exactly as memcached's
	// striped item locks do. Gets are lock-free.
	keyLocks [1024]sync.Mutex
}

// stripeHash is a volatile FNV-1a over the key, for lock striping only (the
// durable index hash lives inside logfree). The generic form lets the LRU
// shard string keys with the SAME function, so both stripings agree on a
// key's home without two hand-rolled copies.
func fnv1aStripe[T ~string | ~[]byte](key T) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

func stripeHash(key []byte) uint64 { return fnv1aStripe(key) }

func (m *Cache) lockKey(key []byte) *sync.Mutex {
	return &m.keyLocks[stripeHash(key)%uint64(len(m.keyLocks))]
}

// Stats mirrors the interesting counters of `stats`.
type Stats struct {
	Gets, Sets, Deletes uint64
	Hits, Misses        uint64
	Evictions           uint64
	Expired             uint64 // items removed by the expiry sweep
	Items               int64

	// Wire-compatibility counters (PR 7).
	Touches   uint64 // touch/gat commands served
	CasHits   uint64 // cas mutations applied
	CasBadval uint64 // cas rejected: token stale (EXISTS)
	CasMisses uint64 // cas rejected: key absent (NOT_FOUND)
	Flushes   uint64 // flush_all invocations applied

	// Replication rows (PR 8). ReplState is "none" when not replicating.
	ReplState      string
	ReplSeq        uint64
	ReplLagOps     uint64
	ReplReconnects uint64

	// Elastic-capacity rows (PR 9).
	EvictionsBytes uint64 // logical bytes reclaimed by LRU evictions
	GrowCount      uint64 // successful online pool grows
	PoolBytesTotal uint64 // pool capacity (device bytes, all shards)
	PoolBytesUsed  uint64 // pool capacity currently allocated
}

// counters is the live, lock-free form of Stats: plain atomics bumped on
// the Get/Set hot paths, where the previous single stats mutex serialized
// every operation of every connection.
type counters struct {
	gets, sets, deletes atomic.Uint64
	hits, misses        atomic.Uint64
	evictions           atomic.Uint64
	expired             atomic.Uint64
	items               atomic.Int64

	touches   atomic.Uint64
	casHits   atomic.Uint64
	casBadval atomic.Uint64
	casMisses atomic.Uint64
	flushes   atomic.Uint64

	evictionsBytes atomic.Uint64
	growCount      atomic.Uint64
}

// New creates a durable cache. On the default in-process backend the device
// is always fresh; with Config.File set, a backing file that already holds
// a cache is recovered in place (the kill -9 restart path — check
// Runtime().Recovered()).
func New(cfg Config) (*Cache, error) {
	cfg.fill()
	if cfg.Shards > 1 {
		return newSharded(cfg)
	}
	// The link cache is requested as configured; logfree's durability rule
	// decides whether it is legal on the device (durable devices only run
	// it under a Buffered policy, whose flush timer bounds the exposure —
	// on Strict/Synced a volatile cache of publishing links would void the
	// acknowledged-write contract that file mode exists for).
	opts := []logfree.Option{
		logfree.WithSize(cfg.MemoryBytes),
		logfree.WithMaxThreads(cfg.MaxConns + 1),
		logfree.WithWriteLatency(cfg.WriteLatency),
		logfree.WithLinkCache(!cfg.DisableLinkCache),
		logfree.WithDevice(cfg.Device),
		logfree.WithDurability(cfg.Durability),
	}
	if cfg.MaxGrowBytes != 0 {
		opts = append(opts, logfree.WithMaxSize(cfg.MaxGrowBytes))
	}
	rt, err := logfree.New(opts...)
	if err != nil {
		return nil, err
	}
	m, err := rt.Map(cacheMapName, cfg.Buckets)
	if err != nil {
		return nil, err
	}
	exp, err := rt.OrderedMap(expMapName)
	if err != nil {
		return nil, err
	}
	c := &Cache{rt: rt, eng: rt, m: m, exp: exp, cfg: cfg, lru: newLRU()}
	if rt.Recovered() {
		c.rebuildVolatile()
	}
	return c, nil
}

// newSharded is the Shards > 1 construction path: the same cache on a
// hash-routed pool, with the memory and bucket budgets split evenly across
// the shards. With Config.File set the pool lives in that directory and a
// populated one is recovered in place — shards in parallel.
func newSharded(cfg Config) (*Cache, error) {
	opts := []sharded.Option{
		sharded.WithShards(cfg.Shards),
		sharded.WithShardSize(cfg.MemoryBytes / uint64(cfg.Shards)),
		sharded.WithWriteLatency(cfg.WriteLatency),
		sharded.WithMaxThreads(cfg.MaxConns + 1),
		sharded.WithLinkCache(!cfg.DisableLinkCache),
		sharded.WithDevice(cfg.Device),
		sharded.WithDurability(cfg.Durability),
	}
	if cfg.MaxGrowBytes != 0 {
		opts = append(opts, sharded.WithMaxShardSize(cfg.MaxGrowBytes/uint64(cfg.Shards)))
	}
	pool, err := sharded.Open(opts...)
	if err != nil {
		return nil, err
	}
	buckets := cfg.Buckets / pool.Shards()
	if buckets < 1024 {
		buckets = 1024
	}
	m, err := pool.Map(cacheMapName, buckets)
	if err != nil {
		pool.Close()
		return nil, err
	}
	exp, err := pool.OrderedMap(expMapName)
	if err != nil {
		pool.Close()
		return nil, err
	}
	c := &Cache{pool: pool, eng: pool, m: m, exp: exp, cfg: cfg, lru: newLRU()}
	if pool.Recovered() {
		c.rebuildVolatile()
	}
	return c, nil
}

// rebuildVolatile repopulates the LRU list, item count and logical
// used-bytes total from one index walk — the volatile metadata reset a
// recovery implies (recency order is lost, contents are not).
func (m *Cache) rebuildVolatile() {
	var items, used int64
	for key, value := range m.m.All() {
		if isReplMeta(key) {
			continue
		}
		size := entrySize(key, value)
		m.lru.add(string(key), size)
		used += size
		items++
	}
	m.stats.items.Store(items)
	m.usedBytes.Store(used)
}

// Close drains the cache and closes the underlying runtime or pool;
// file-backed images are synchronously flushed, so after Close the backing
// file(s) alone carry the cache. The cache must be quiescent.
func (m *Cache) Close() error { return m.eng.Close() }

// Device exposes the simulated device (crash injection, stats). Nil on a
// sharded cache — use Pool().Runtimes() for per-shard devices.
func (m *Cache) Device() *nvram.Device {
	if m.rt == nil {
		return nil
	}
	return m.rt.Device()
}

// Runtime exposes the underlying logfree runtime; nil on a sharded cache.
func (m *Cache) Runtime() *logfree.Runtime { return m.rt }

// Pool exposes the underlying sharded pool; nil on a single-runtime cache.
func (m *Cache) Pool() *sharded.Pool { return m.pool }

// Recovered reports whether the cache attached to existing durable state
// rather than formatting fresh.
func (m *Cache) Recovered() bool { return m.eng.Recovered() }

// RecoveryStats reports the recovery pass of the underlying runtime (or the
// aggregate across a pool's shards — counters summed, duration = slowest
// shard, since shards recover in parallel).
func (m *Cache) RecoveryStats() logfree.RecoveryStats { return m.eng.RecoveryStats() }

// Stats returns a snapshot of the counters.
func (m *Cache) Stats() Stats {
	rs := m.replStats()
	return Stats{
		ReplState:      rs.State,
		ReplSeq:        rs.Seq,
		ReplLagOps:     rs.LagOps,
		ReplReconnects: rs.Reconnects,
		Gets:           m.stats.gets.Load(),
		Sets:           m.stats.sets.Load(),
		Deletes:        m.stats.deletes.Load(),
		Hits:           m.stats.hits.Load(),
		Misses:         m.stats.misses.Load(),
		Evictions:      m.stats.evictions.Load(),
		Expired:        m.stats.expired.Load(),
		Items:          m.stats.items.Load(),
		Touches:        m.stats.touches.Load(),
		CasHits:        m.stats.casHits.Load(),
		CasBadval:      m.stats.casBadval.Load(),
		CasMisses:      m.stats.casMisses.Load(),
		Flushes:        m.stats.flushes.Load(),
		EvictionsBytes: m.stats.evictionsBytes.Load(),
		GrowCount:      m.stats.growCount.Load(),
		PoolBytesTotal: m.eng.SizeBytes(),
		PoolBytesUsed:  m.eng.SizeBytes() - m.eng.FreeBytes(),
	}
}

// SizeBytes reports the pool's total device capacity (all shards).
func (m *Cache) SizeBytes() uint64 { return m.eng.SizeBytes() }

// UsedBytes reports the cache's logical footprint: entry overhead + key +
// value summed over live items (the quantity Config.MaxBytes caps).
func (m *Cache) UsedBytes() int64 { return m.usedBytes.Load() }

// Grow extends the pool online to total bytes (crash-atomic, shards in
// parallel when sharded). Requires the elastic reserve Config.MaxGrowBytes.
func (m *Cache) Grow(total uint64) error {
	m.growMu.Lock()
	defer m.growMu.Unlock()
	before := m.eng.SizeBytes()
	if err := m.eng.Grow(total); err != nil {
		return err
	}
	if after := m.eng.SizeBytes(); after > before {
		m.stats.growCount.Add(1)
		if m.cfg.OnGrow != nil {
			m.cfg.OnGrow(after)
		}
	}
	return nil
}

// expired reports whether an item's aux word's expiry half (unix deadline,
// 0 = never) has passed.
func expired(aux uint64, now int64) bool {
	e := auxExpiry(aux)
	return e != 0 && int64(e) <= now
}

// Get returns the value and flags bound to key.
func (m *Cache) Get(key []byte) (value []byte, flags uint16, ok bool) {
	m.stats.gets.Add(1)
	v, meta, aux, found := m.m.GetItem(key)
	if !found || expired(aux, time.Now().Unix()) {
		m.stats.misses.Add(1)
		return nil, 0, false
	}
	m.lru.touch(string(key))
	m.stats.hits.Add(1)
	return v, meta, true
}

// reclaim converts recently retired nodes into reusable slots (best
// effort): it flushes the session the pool hands back, which in the
// single-flow eviction loop is the one the preceding deletes retired into.
func (m *Cache) reclaim() { m.eng.Reclaim() }

// entrySize is an item's logical footprint: the byte-map entry overhead plus
// key and value — the currency of Config.MaxBytes and the used-bytes stat.
func entrySize(key, value []byte) int64 {
	return int64(logfree.MapEntryOverhead + len(key) + len(value))
}

// lowWater is the allocator headroom kept ahead of writes so allocations
// deep in the index never fail (memcached's behaviour under memory
// pressure).
const lowWater = 256 << 10

// tryGrow extends the pool one step along the doubling schedule (clamped to
// Config.MaxGrowBytes), reporting whether capacity actually grew. Grows are
// serialized; concurrent writers under pressure take the schedule one step
// at a time instead of racing it to the reserve.
func (m *Cache) tryGrow() bool {
	if m.cfg.MaxGrowBytes == 0 {
		return false
	}
	m.growMu.Lock()
	defer m.growMu.Unlock()
	target := capacity.NextGrowTarget(m.eng.SizeBytes(), m.cfg.MaxGrowBytes)
	if target == 0 {
		return false
	}
	if err := m.eng.Grow(target); err != nil {
		return false
	}
	m.stats.growCount.Add(1)
	if m.cfg.OnGrow != nil {
		m.cfg.OnGrow(m.eng.SizeBytes())
	}
	return true
}

// ensureHeadroom makes room for an incoming write of `incoming` logical
// bytes: first the device-pressure valve (grow while the reserve allows,
// then LRU-evict down to the low-water headroom), then the logical MaxBytes
// valve (evict until the write fits the configured budget).
func (m *Cache) ensureHeadroom(incoming int64) {
	for i := 0; m.eng.AvailableBytes() < lowWater && i < 256; i++ {
		if m.tryGrow() {
			continue
		}
		if !m.evictOne() {
			break
		}
		if i%16 == 15 {
			// Convert retirements into reusable slots right away.
			m.reclaim()
		}
	}
	if max := int64(m.cfg.MaxBytes); max > 0 {
		for i := 0; m.usedBytes.Load()+incoming > max && i < 256; i++ {
			if !m.evictOne() {
				break
			}
			if i%16 == 15 {
				m.reclaim()
			}
		}
	}
}

// Set binds key to value, durably, evicting LRU items under memory pressure.
func (m *Cache) Set(key, value []byte, flags uint16, expiry uint32) error {
	_, err := m.SetCAS(key, value, flags, expiry)
	return err
}

// SetCAS is Set returning the item's new CAS unique (the wire protocols
// report it in gets/binary responses).
func (m *Cache) SetCAS(key, value []byte, flags uint16, expiry uint32) (uint64, error) {
	if len(key) > MaxKeyLen || len(key) == 0 {
		return 0, errors.New("memcache: bad key length")
	}
	if logfree.MapEntryOverhead+len(key)+len(value) > logfree.MaxMapEntrySize {
		return 0, ErrTooLarge
	}
	m.stats.sets.Add(1)
	var seq uint64
	defer func() { m.waitRepl(seq) }()
	m.ensureHeadroom(entrySize(key, value))
	for attempt := 0; ; attempt++ {
		cas, s, err := m.setLocked(key, value, flags, expiry)
		if err == nil {
			seq = s
			return cas, nil
		}
		if !errors.Is(err, logfree.ErrFull) || attempt > 64 {
			return 0, err
		}
		if !m.tryGrow() && !m.evictOne() {
			return 0, err
		}
		m.reclaim()
	}
}

// expKey builds an expiry-index key: the 8-byte big-endian deadline, then
// the item key. The index orders by deadline first, so "everything due by
// now" is the range [nil, expKey(now+1, nil)).
func expKey(deadline uint64, key []byte) []byte {
	out := make([]byte, 8+len(key))
	binary.BigEndian.PutUint64(out, deadline)
	copy(out[8:], key)
	return out
}

// setItemLocked stores an item under the held stripe lock, maintaining the
// item count, the LRU and the durable expiry index, and bumping the item's
// per-item CAS sequence (new items and items from pre-CAS images start the
// sequence at 1). Returns the item's new CAS unique plus the replication
// seq assigned to the mutation (0 when not replicating) — the caller waits
// on it AFTER releasing the stripe lock.
func (m *Cache) setItemLocked(key, value []byte, flags uint16, expiry uint32) (uint64, uint64, error) {
	oldAux, hadOld := m.m.GetAux(key)
	cas := nextCAS(auxCAS(oldAux))
	// Index the new deadline *before* the item write: a crash in between
	// leaves only a stale index entry, which the sweep double-checks and
	// discards; the reverse order could leave an expiring item the sweep
	// never visits. Indexed unconditionally (idempotent) so items from
	// pre-index images are adopted on their first rewrite even when the
	// deadline is unchanged.
	if expiry != 0 {
		if err := m.exp.Set(expKey(uint64(expiry), key), nil); err != nil {
			return 0, 0, err
		}
	}
	created, err := m.m.SetItem(key, value, flags, packAux(cas, expiry))
	if err != nil {
		return 0, 0, err
	}
	// Publish after the durable write, under the stripe lock: the stream's
	// per-key order is exactly the store's.
	seq := m.publishSet(key, value, flags, packAux(cas, expiry))
	if oldExp := auxExpiry(oldAux); hadOld && oldExp != 0 && oldExp != expiry {
		m.exp.Delete(expKey(uint64(oldExp), key))
	}
	m.usedBytes.Add(m.lru.add(string(key), entrySize(key, value)))
	if created {
		m.stats.items.Add(1)
	}
	return uint64(cas), seq, nil
}

// setLocked performs one store attempt under the key's stripe lock.
func (m *Cache) setLocked(key, value []byte, flags uint16, expiry uint32) (uint64, uint64, error) {
	mu := m.lockKey(key)
	mu.Lock()
	defer mu.Unlock()
	return m.setItemLocked(key, value, flags, expiry)
}

// Delete removes key durably.
func (m *Cache) Delete(key []byte) bool {
	ok, seq, _ := m.deleteNoWait(key)
	m.waitRepl(seq)
	return ok
}

// deleteNoWait is Delete without the replication-ack wait: internal callers
// (evictions, flush_all, the covering client op of an eviction) either do
// not need per-delete acks or wait once on a later covering seq. freed is
// the item's logical footprint (evictOne folds it into evictions_bytes).
func (m *Cache) deleteNoWait(key []byte) (ok bool, seq uint64, freed int64) {
	m.stats.deletes.Add(1)
	mu := m.lockKey(key)
	mu.Lock()
	defer mu.Unlock()
	aux, _ := m.m.GetAux(key)
	if !m.m.Delete(key) {
		return false, 0, 0
	}
	seq = m.publishDelete(key)
	if e := auxExpiry(aux); e != 0 {
		m.exp.Delete(expKey(uint64(e), key))
	}
	freed = m.lru.remove(string(key))
	m.usedBytes.Add(-freed)
	m.stats.items.Add(-1)
	return true, seq, freed
}

// DeleteCAS deletes key only when its stored CAS unique matches cas (the
// binary protocol's DELETE-with-cas). cas 0 deletes unconditionally.
func (m *Cache) DeleteCAS(key []byte, cas uint64) error {
	if cas == 0 {
		if m.Delete(key) {
			return nil
		}
		return ErrNotFound
	}
	var seq uint64
	defer func() { m.waitRepl(seq) }()
	mu := m.lockKey(key)
	mu.Lock()
	defer mu.Unlock()
	_, _, aux, ok := m.liveLocked(key)
	if !ok {
		m.stats.casMisses.Add(1)
		return ErrNotFound
	}
	if uint64(auxCAS(aux)) != cas {
		m.stats.casBadval.Add(1)
		return ErrCASConflict
	}
	m.stats.deletes.Add(1)
	m.m.Delete(key)
	seq = m.publishDelete(key)
	if e := auxExpiry(aux); e != 0 {
		m.exp.Delete(expKey(uint64(e), key))
	}
	m.usedBytes.Add(-m.lru.remove(string(key)))
	m.stats.items.Add(-1)
	m.stats.casHits.Add(1)
	return nil
}

// FlushAll durably removes every item (memcached flush_all). Unlike stock
// memcached's lazy oldest_live invalidation, this walks the index and
// deletes each item, so the flush is crash-consistent: items removed before
// a crash stay removed, items not yet reached survive it (flush_all makes
// no atomicity promise across the whole cache). Returns items removed.
func (m *Cache) FlushAll() int {
	m.stats.flushes.Add(1)
	var keys [][]byte
	for k := range m.m.All() {
		if isReplMeta(k) {
			continue
		}
		keys = append(keys, append([]byte(nil), k...))
	}
	n := 0
	var last uint64
	for _, k := range keys {
		ok, seq, _ := m.deleteNoWait(k)
		if ok {
			n++
		}
		if seq != 0 {
			last = seq
		}
	}
	m.reclaim()
	// One ack wait covers the whole flush: the stream is ordered, so the
	// last delete's ack implies all the earlier ones.
	m.waitRepl(last)
	return n
}

// SweepExpired removes every item whose deadline has passed, by scanning
// the durable expiry index up to now — O(items due), not a full-table
// walk. Stale index entries (rewrites with a different deadline, or a
// crash between the index and item writes) are double-checked against the
// item's live aux word and discarded. Safe to run concurrently with
// serving traffic; returns the number of items removed.
func (m *Cache) SweepExpired(now int64) int {
	var due [][]byte
	for k := range m.exp.Scan(nil, expKey(uint64(now)+1, nil)) {
		due = append(due, append([]byte(nil), k...))
	}
	n := 0
	for _, ek := range due {
		deadline := binary.BigEndian.Uint64(ek[:8])
		key := ek[8:]
		mu := m.lockKey(key)
		mu.Lock()
		if aux, ok := m.m.GetAux(key); ok && uint64(auxExpiry(aux)) == deadline {
			if m.m.Delete(key) {
				// Replicated without an ack wait: followers share the item's
				// deadline (aux travels verbatim), so an unreplicated sweep
				// delete is merely deferred tidiness there, never staleness.
				m.publishDelete(key)
				m.usedBytes.Add(-m.lru.remove(string(key)))
				m.stats.items.Add(-1)
				m.stats.expired.Add(1)
				n++
			}
		}
		m.exp.Delete(ek) // consumed or stale either way
		mu.Unlock()
	}
	return n
}

// StartSweeper launches a background goroutine that runs SweepExpired every
// interval. The returned stop function is idempotent and blocks until the
// sweeper exits.
func (m *Cache) StartSweeper(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				m.SweepExpired(time.Now().Unix())
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-exited
	}
}

// evictOne removes the least recently used item (memcached behaviour under
// memory pressure). Returns false if nothing is evictable.
func (m *Cache) evictOne() bool {
	key, ok := m.lru.oldest()
	if !ok {
		return false
	}
	// No ack wait: the client op driving the eviction waits on its own
	// (later) seq, which the ordered stream makes a covering ack.
	if ok, _, freed := m.deleteNoWait([]byte(key)); ok {
		m.stats.evictions.Add(1)
		m.stats.evictionsBytes.Add(uint64(freed))
		return true
	}
	m.usedBytes.Add(-m.lru.remove(key)) // stale LRU entry
	return true
}

// Flush makes all deferred durability work durable (link cache, retirees).
// Requires quiescence.
func (m *Cache) Flush() { m.eng.Drain() }
