package memcache

import (
	"sync"
	"time"

	"repro/logfree"
)

// This file provides the two volatile comparators of Figure 11:
//
//   - LockCache models stock Memcached: a mutex-protected hash table (the
//     paper: "Memcached uses a lock-protected sequential hash table").
//   - CLHTCache models memcached-clht: the same lock-free hash table
//     algorithm as NV-Memcached, run in volatile mode (no write-backs), so
//     the only difference from NV-Memcached is durability.
//
// Both lose everything on restart: their "recovery" is re-populating the
// cache, which Figure 11 shows takes orders of magnitude longer than
// NV-Memcached's actual recovery.

// KV is the operation set shared by NV-Memcached and the volatile
// comparators, so benchmarks drive all three identically. Implementations
// are safe for concurrent use from any goroutine.
type KV interface {
	Set(key, value []byte, flags uint16, expiry uint32) error
	Get(key []byte) (value []byte, flags uint16, ok bool)
	Delete(key []byte) bool
}

var _ KV = (*Cache)(nil)

// LockCache is the mutex-protected volatile baseline ("memcached").
type LockCache struct {
	mu sync.RWMutex
	m  map[string]lockItem
}

type lockItem struct {
	value  []byte
	flags  uint16
	expiry uint32
}

// NewLockCache creates the stock-memcached model.
func NewLockCache() *LockCache {
	return &LockCache{m: make(map[string]lockItem)}
}

// Set implements KV.
func (c *LockCache) Set(key, value []byte, flags uint16, expiry uint32) error {
	v := make([]byte, len(value))
	copy(v, value)
	c.mu.Lock()
	c.m[string(key)] = lockItem{v, flags, expiry}
	c.mu.Unlock()
	return nil
}

// Get implements KV.
func (c *LockCache) Get(key []byte) ([]byte, uint16, bool) {
	c.mu.RLock()
	it, ok := c.m[string(key)]
	c.mu.RUnlock()
	if !ok {
		return nil, 0, false
	}
	if it.expiry != 0 && int64(it.expiry) <= time.Now().Unix() {
		return nil, 0, false
	}
	return it.value, it.flags, true
}

// Delete implements KV.
func (c *LockCache) Delete(key []byte) bool {
	c.mu.Lock()
	_, ok := c.m[string(key)]
	delete(c.m, string(key))
	c.mu.Unlock()
	return ok
}

// CLHTCache is the lock-free volatile baseline ("memcached-clht"): the same
// concurrent hash table as NV-Memcached with durability stripped.
type CLHTCache struct {
	inner *Cache
}

// NewCLHTCache creates the memcached-clht model. Sized like an NV-Memcached
// instance but with zero write latency and volatile semantics.
func NewCLHTCache(cfg Config) (*CLHTCache, error) {
	cfg.fill()
	rt, err := logfree.New(
		logfree.WithSize(cfg.MemoryBytes), // no write latency
		logfree.WithMaxThreads(cfg.MaxConns+1),
		logfree.WithVolatile(true))
	if err != nil {
		return nil, err
	}
	m, err := rt.Map(cacheMapName, cfg.Buckets)
	if err != nil {
		return nil, err
	}
	exp, err := rt.OrderedMap(expMapName)
	if err != nil {
		return nil, err
	}
	return &CLHTCache{inner: &Cache{rt: rt, eng: rt, m: m, exp: exp, lru: newLRU()}}, nil
}

// Set implements KV.
func (c *CLHTCache) Set(key, value []byte, flags uint16, expiry uint32) error {
	return c.inner.Set(key, value, flags, expiry)
}

// Get implements KV.
func (c *CLHTCache) Get(key []byte) ([]byte, uint16, bool) { return c.inner.Get(key) }

// Delete implements KV.
func (c *CLHTCache) Delete(key []byte) bool { return c.inner.Delete(key) }

// Stats proxies the inner counters.
func (c *CLHTCache) Stats() Stats { return c.inner.Stats() }
