package memcache

import (
	"encoding/binary"
	"errors"
	"io"
	"strconv"
	"time"
)

// The memcached binary protocol: 24-byte big-endian framed requests (magic
// 0x80) and responses (magic 0x81), with the same CAS semantics as the text
// protocol and the quiet (pipelined) opcode variants. Responses echo the
// request opaque verbatim; quiet ops suppress their success (and, for
// GETQ/GETKQ/GATQ, their miss) responses, so a pipeline of quiet ops ends
// with a NOOP that both flushes and delimits it.
//
//	byte/     0       |       1       |       2       |       3       |
//	   0| magic       | opcode        | key length                    |
//	   4| extras len  | data type     | vbucket id / status           |
//	   8| total body length                                           |
//	  12| opaque                                                      |
//	  16| cas                                                         |

const (
	binMagicReq = 0x80
	binMagicRes = 0x81

	binHeaderLen = 24

	// binMaxBody bounds a request body we are willing to buffer; larger
	// frames (bogus lengths from broken clients, fuzzers) are swallowed
	// without buffering and answered with E2BIG, up to binInsaneBody where
	// the framing itself is untrustworthy and the connection closes.
	binMaxBody    = 1 << 20
	binInsaneBody = 64 << 20
)

// Request opcodes.
const (
	binOpGet      = 0x00
	binOpSet      = 0x01
	binOpAdd      = 0x02
	binOpReplace  = 0x03
	binOpDelete   = 0x04
	binOpIncr     = 0x05
	binOpDecr     = 0x06
	binOpQuit     = 0x07
	binOpFlush    = 0x08
	binOpGetQ     = 0x09
	binOpNoop     = 0x0a
	binOpVersion  = 0x0b
	binOpGetK     = 0x0c
	binOpGetKQ    = 0x0d
	binOpAppend   = 0x0e
	binOpPrepend  = 0x0f
	binOpStat     = 0x10
	binOpSetQ     = 0x11
	binOpAddQ     = 0x12
	binOpReplaceQ = 0x13
	binOpDeleteQ  = 0x14
	binOpIncrQ    = 0x15
	binOpDecrQ    = 0x16
	binOpQuitQ    = 0x17
	binOpFlushQ   = 0x18
	binOpAppendQ  = 0x19
	binOpPrependQ = 0x1a
	binOpTouch    = 0x1c
	binOpGAT      = 0x1d
	binOpGATQ     = 0x1e
)

// Response status codes.
const (
	binStatusOK          = 0x0000
	binStatusKeyNotFound = 0x0001
	binStatusKeyExists   = 0x0002
	binStatusTooLarge    = 0x0003
	binStatusInvalidArgs = 0x0004
	binStatusNotStored   = 0x0005
	binStatusDeltaBadval = 0x0006
	binStatusUnknownCmd  = 0x0081
	binStatusOOM         = 0x0082
)

func binStatusMsg(status uint16) string {
	switch status {
	case binStatusKeyNotFound:
		return "Not found"
	case binStatusKeyExists:
		return "Data exists for key."
	case binStatusTooLarge:
		return "Too large."
	case binStatusInvalidArgs:
		return "Invalid arguments"
	case binStatusNotStored:
		return "Not stored."
	case binStatusDeltaBadval:
		return "Non-numeric server-side value for incr or decr"
	case binStatusUnknownCmd:
		return "Unknown command"
	case binStatusOOM:
		return "Out of memory"
	}
	return ""
}

// binReq is one decoded request frame. Key/ext/value alias c.data.
type binReq struct {
	op     uint8
	opaque uint32
	cas    uint64
	ext    []byte
	key    []byte
	value  []byte
}

// quietOf maps a quiet opcode to (base opcode, true); non-quiet ops map to
// themselves.
func quietOf(op uint8) (uint8, bool) {
	switch op {
	case binOpGetQ:
		return binOpGet, true
	case binOpGetKQ:
		return binOpGetK, true
	case binOpSetQ:
		return binOpSet, true
	case binOpAddQ:
		return binOpAdd, true
	case binOpReplaceQ:
		return binOpReplace, true
	case binOpDeleteQ:
		return binOpDelete, true
	case binOpIncrQ:
		return binOpIncr, true
	case binOpDecrQ:
		return binOpDecr, true
	case binOpQuitQ:
		return binOpQuit, true
	case binOpFlushQ:
		return binOpFlush, true
	case binOpAppendQ:
		return binOpAppend, true
	case binOpPrependQ:
		return binOpPrepend, true
	case binOpGATQ:
		return binOpGAT, true
	}
	return op, false
}

// binRespond writes one response frame. ext/key/val may be nil.
func (c *connState) binRespond(op uint8, status uint16, opaque uint32, cas uint64, ext, key, val []byte) {
	var hdr [binHeaderLen]byte
	hdr[0] = binMagicRes
	hdr[1] = op
	binary.BigEndian.PutUint16(hdr[2:], uint16(len(key)))
	hdr[4] = uint8(len(ext))
	binary.BigEndian.PutUint16(hdr[6:], status)
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(ext)+len(key)+len(val)))
	binary.BigEndian.PutUint32(hdr[12:], opaque)
	binary.BigEndian.PutUint64(hdr[16:], cas)
	c.w.Write(hdr[:])
	c.w.Write(ext)
	c.w.Write(key)
	c.w.Write(val)
}

// binError responds with a status code and its textual message as the body.
func (c *connState) binError(op uint8, status uint16, opaque uint32) {
	c.binRespond(op, status, opaque, 0, nil, nil, []byte(binStatusMsg(status)))
}

func (s *Server) serveBinary(c *connState) {
	for {
		var hdr [binHeaderLen]byte
		if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
			return
		}
		if hdr[0] != binMagicReq {
			return // framing lost; nothing sane to answer
		}
		keyLen := int(binary.BigEndian.Uint16(hdr[2:]))
		extLen := int(hdr[4])
		bodyLen := int64(binary.BigEndian.Uint32(hdr[8:]))
		req := binReq{
			op:     hdr[1],
			opaque: binary.BigEndian.Uint32(hdr[12:]),
			cas:    binary.BigEndian.Uint64(hdr[16:]),
		}
		if bodyLen < int64(keyLen+extLen) || bodyLen > binInsaneBody {
			return
		}
		if bodyLen > binMaxBody {
			if !discardN(c.r, bodyLen) {
				return
			}
			c.binError(req.op, binStatusTooLarge, req.opaque)
			if c.maybeFlush() != nil {
				return
			}
			continue
		}
		if cap(c.data) < int(bodyLen) {
			c.data = make([]byte, bodyLen)
		}
		c.data = c.data[:bodyLen]
		if _, err := io.ReadFull(c.r, c.data); err != nil {
			return
		}
		req.ext = c.data[:extLen]
		req.key = c.data[extLen : extLen+keyLen]
		req.value = c.data[extLen+keyLen:]
		if !s.dispatchBinary(c, &req) {
			return
		}
		if c.maybeFlush() != nil {
			return
		}
	}
}

// binMutates reports whether a (base) opcode writes to the cache — the set
// gated while the server is a read-only replica. GAT counts: it mutates
// the expiry.
func binMutates(op uint8) bool {
	switch op {
	case binOpSet, binOpAdd, binOpReplace, binOpAppend, binOpPrepend,
		binOpDelete, binOpIncr, binOpDecr, binOpTouch, binOpGAT, binOpFlush:
		return true
	}
	return false
}

// dispatchBinary runs one request; false ends the connection.
func (s *Server) dispatchBinary(c *connState, req *binReq) bool {
	op, quiet := quietOf(req.op)
	cache, _ := s.kv.(*Cache)
	now := time.Now().Unix()
	if s.readonly.Load() && binMutates(op) {
		// The body is already consumed, so the connection stays in sync.
		// Errors are sent even for quiet variants, per the binary contract.
		c.binRespond(req.op, binStatusNotStored, req.opaque, 0, nil, nil, []byte("replica is read-only"))
		return true
	}
	switch op {
	case binOpGet, binOpGetK:
		if len(req.ext) != 0 || len(req.key) == 0 || len(req.value) != 0 {
			c.binError(req.op, binStatusInvalidArgs, req.opaque)
			return true
		}
		s.binGet(c, req, cache, op == binOpGetK, quiet, 0, false)

	case binOpGAT:
		if len(req.ext) != 4 || len(req.key) == 0 || len(req.value) != 0 {
			c.binError(req.op, binStatusInvalidArgs, req.opaque)
			return true
		}
		exp := normalizeExp(int64(int32(binary.BigEndian.Uint32(req.ext))), now)
		s.binGet(c, req, cache, false, quiet, exp, true)

	case binOpSet, binOpAdd, binOpReplace:
		if len(req.ext) != 8 || len(req.key) == 0 || len(req.key) > MaxKeyLen {
			c.binError(req.op, binStatusInvalidArgs, req.opaque)
			return true
		}
		flags := binary.BigEndian.Uint32(req.ext)
		if flags > 0xFFFF {
			// Item flags are stored 16-bit (see README §Protocol).
			c.binError(req.op, binStatusInvalidArgs, req.opaque)
			return true
		}
		exp := normalizeExp(int64(int32(binary.BigEndian.Uint32(req.ext[4:]))), now)
		s.binStore(c, req, cache, op, uint16(flags), exp, quiet)

	case binOpAppend, binOpPrepend:
		if len(req.ext) != 0 || len(req.key) == 0 || len(req.key) > MaxKeyLen {
			c.binError(req.op, binStatusInvalidArgs, req.opaque)
			return true
		}
		if cache == nil {
			c.binError(req.op, binStatusUnknownCmd, req.opaque)
			return true
		}
		var cas uint64
		var err error
		if op == binOpAppend {
			cas, err = cache.Append(req.key, req.value, req.cas)
		} else {
			cas, err = cache.Prepend(req.key, req.value, req.cas)
		}
		s.binMutationResult(c, req, cas, err, quiet)

	case binOpDelete:
		if len(req.ext) != 0 || len(req.key) == 0 || len(req.value) != 0 {
			c.binError(req.op, binStatusInvalidArgs, req.opaque)
			return true
		}
		var err error
		if cache != nil {
			err = cache.DeleteCAS(req.key, req.cas)
		} else if !s.kv.Delete(req.key) {
			err = ErrNotFound
		}
		s.binMutationResult(c, req, 0, err, quiet)

	case binOpIncr, binOpDecr:
		if len(req.ext) != 20 || len(req.key) == 0 || len(req.value) != 0 {
			c.binError(req.op, binStatusInvalidArgs, req.opaque)
			return true
		}
		if cache == nil {
			c.binError(req.op, binStatusUnknownCmd, req.opaque)
			return true
		}
		delta := binary.BigEndian.Uint64(req.ext)
		initial := binary.BigEndian.Uint64(req.ext[8:])
		expRaw := binary.BigEndian.Uint32(req.ext[16:])
		create := expRaw != 0xffffffff
		exp := uint32(0)
		if create {
			exp = normalizeExp(int64(int32(expRaw)), now)
		}
		v, cas, err := cache.IncrDecrCAS(req.key, delta, initial, exp, create, op == binOpDecr)
		switch {
		case err == nil:
			if !quiet {
				var body [8]byte
				binary.BigEndian.PutUint64(body[:], v)
				c.binRespond(req.op, binStatusOK, req.opaque, cas, nil, nil, body[:])
			}
		case errors.Is(err, ErrNotFound):
			c.binError(req.op, binStatusKeyNotFound, req.opaque)
		case errors.Is(err, ErrNotNumber):
			c.binError(req.op, binStatusDeltaBadval, req.opaque)
		default:
			c.binError(req.op, binStatusOOM, req.opaque)
		}

	case binOpTouch:
		if len(req.ext) != 4 || len(req.key) == 0 || len(req.value) != 0 {
			c.binError(req.op, binStatusInvalidArgs, req.opaque)
			return true
		}
		if cache == nil {
			c.binError(req.op, binStatusUnknownCmd, req.opaque)
			return true
		}
		exp := normalizeExp(int64(int32(binary.BigEndian.Uint32(req.ext))), now)
		if cas, ok := cache.Touch(req.key, exp); ok {
			c.binRespond(req.op, binStatusOK, req.opaque, cas, nil, nil, nil)
		} else {
			c.binError(req.op, binStatusKeyNotFound, req.opaque)
		}

	case binOpNoop:
		c.binRespond(req.op, binStatusOK, req.opaque, 0, nil, nil, nil)

	case binOpVersion:
		c.binRespond(req.op, binStatusOK, req.opaque, 0, nil, nil, []byte(serverVersion))

	case binOpStat:
		s.binStats(c, req)

	case binOpFlush:
		var delay int64
		if len(req.ext) == 4 {
			delay = int64(binary.BigEndian.Uint32(req.ext))
		} else if len(req.ext) != 0 {
			c.binError(req.op, binStatusInvalidArgs, req.opaque)
			return true
		}
		if cache != nil {
			if delay == 0 {
				cache.FlushAll()
			} else {
				s.afterFunc(time.Duration(delay)*time.Second, func() { cache.FlushAll() })
			}
		}
		if !quiet {
			c.binRespond(req.op, binStatusOK, req.opaque, 0, nil, nil, nil)
		}

	case binOpQuit:
		if !quiet {
			c.binRespond(req.op, binStatusOK, req.opaque, 0, nil, nil, nil)
		}
		return false

	default:
		c.binError(req.op, binStatusUnknownCmd, req.opaque)
	}
	return true
}

// binGet serves GET/GETK/GETQ/GETKQ/GAT/GATQ: response extras are the item
// flags (4 bytes), the response cas is the item's unique, and GETK echoes
// the key. Quiet misses are suppressed.
func (s *Server) binGet(c *connState, req *binReq, cache *Cache, withKey, quiet bool, exp uint32, touch bool) {
	var (
		v     []byte
		flags uint16
		cas   uint64
		ok    bool
	)
	switch {
	case cache == nil:
		v, flags, ok = s.kv.Get(req.key)
	case touch:
		v, flags, cas, ok = cache.GetAndTouch(req.key, exp)
	default:
		v, flags, cas, ok = cache.Gets(req.key)
	}
	if !ok {
		if !quiet {
			if withKey {
				c.binRespond(req.op, binStatusKeyNotFound, req.opaque, 0, nil, req.key, []byte(binStatusMsg(binStatusKeyNotFound)))
			} else {
				c.binError(req.op, binStatusKeyNotFound, req.opaque)
			}
		}
		return
	}
	var ext [4]byte
	binary.BigEndian.PutUint32(ext[:], uint32(flags))
	key := []byte(nil)
	if withKey {
		key = req.key
	}
	c.binRespond(req.op, binStatusOK, req.opaque, cas, ext[:], key, v)
}

// binStore serves SET/ADD/REPLACE (+quiet): a nonzero request cas turns SET
// and REPLACE into compare-and-swap; ADD requires cas 0.
func (s *Server) binStore(c *connState, req *binReq, cache *Cache, op uint8, flags uint16, exp uint32, quiet bool) {
	var cas uint64
	var err error
	switch {
	case cache == nil:
		if op == binOpSet && req.cas == 0 {
			err = s.kv.Set(req.key, req.value, flags, exp)
		} else {
			c.binError(req.op, binStatusUnknownCmd, req.opaque)
			return
		}
	case op == binOpAdd:
		if req.cas != 0 {
			c.binError(req.op, binStatusInvalidArgs, req.opaque)
			return
		}
		cas, err = cache.Add(req.key, req.value, flags, exp)
	case req.cas != 0: // SET/REPLACE with cas
		cas, err = cache.CompareAndSwap(req.key, req.value, flags, exp, req.cas)
	case op == binOpSet:
		cas, err = cache.SetCAS(req.key, req.value, flags, exp)
	default: // REPLACE
		cas, err = cache.Replace(req.key, req.value, flags, exp)
	}
	s.binMutationResult(c, req, cas, err, quiet)
}

// binMutationResult maps a cache mutation error to the wire status. The
// text protocol's NOT_STORED split: for binary, add-on-present and
// replace/append/prepend-on-absent both report their distinct statuses.
func (s *Server) binMutationResult(c *connState, req *binReq, cas uint64, err error, quiet bool) {
	switch {
	case err == nil:
		if !quiet {
			c.binRespond(req.op, binStatusOK, req.opaque, cas, nil, nil, nil)
		}
	case errors.Is(err, ErrCASConflict):
		c.binError(req.op, binStatusKeyExists, req.opaque)
	case errors.Is(err, ErrNotFound):
		c.binError(req.op, binStatusKeyNotFound, req.opaque)
	case errors.Is(err, ErrNotStored):
		// add on an existing key reports "exists"; replace/append/prepend
		// on a missing key report "not found", as stock memcached does.
		if req.op == binOpAdd || req.op == binOpAddQ {
			c.binError(req.op, binStatusKeyExists, req.opaque)
		} else {
			c.binError(req.op, binStatusKeyNotFound, req.opaque)
		}
	case errors.Is(err, ErrTooLarge):
		c.binError(req.op, binStatusTooLarge, req.opaque)
	default:
		c.binError(req.op, binStatusOOM, req.opaque)
	}
}

// binStats emits the stats rows as key/value packets, terminated by an
// empty packet, per the binary STAT contract.
func (s *Server) binStats(c *connState, req *binReq) {
	st := s.stats()
	row := func(name string, v uint64) {
		c.num = strconv.AppendUint(c.num[:0], v, 10)
		c.binRespond(req.op, binStatusOK, req.opaque, 0, nil, []byte(name), c.num)
	}
	row("cmd_get", st.Gets)
	row("cmd_set", st.Sets)
	row("cmd_touch", st.Touches)
	row("cmd_flush", st.Flushes)
	row("get_hits", st.Hits)
	row("get_misses", st.Misses)
	row("cas_hits", st.CasHits)
	row("cas_badval", st.CasBadval)
	row("cas_misses", st.CasMisses)
	row("evictions", st.Evictions)
	row("evictions_bytes", st.EvictionsBytes)
	row("expired_unfetched", st.Expired)
	row("curr_items", uint64(st.Items))
	row("grow_count", st.GrowCount)
	row("pool_bytes_total", st.PoolBytesTotal)
	row("pool_bytes_used", st.PoolBytesUsed)
	row("repl_seq", st.ReplSeq)
	row("repl_lag_ops", st.ReplLagOps)
	row("repl_reconnects", st.ReplReconnects)
	state := st.ReplState
	if state == "" {
		state = "none"
	}
	c.binRespond(req.op, binStatusOK, req.opaque, 0, nil, []byte("repl_state"), []byte(state))
	c.binRespond(req.op, binStatusOK, req.opaque, 0, nil, nil, nil)
}
