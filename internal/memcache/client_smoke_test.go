package memcache

// Standard-client smoke test. The container image carries no third-party
// modules, so this file embeds a minimal strict client that mirrors the
// wire usage of github.com/bradfitz/gomemcache (the de-facto standard Go
// client): Get is issued as "gets" and keeps the returned cas unique for a
// later CompareAndSwap, storage verbs are formatted identically, and every
// response is parsed byte-strictly — any deviation from the memcached
// protocol the real client depends on fails the test.

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"strconv"
	"testing"
	"time"
)

// smokeItem mirrors gomemcache's memcache.Item.
type smokeItem struct {
	Key        string
	Value      []byte
	Flags      uint32
	Expiration int32
	casid      uint64
}

// smokeClient is the embedded strict client.
type smokeClient struct {
	t  *testing.T
	rw *bufio.ReadWriter
}

func newSmokeClient(t *testing.T, addr string) *smokeClient {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	return &smokeClient{t: t, rw: bufio.NewReadWriter(bufio.NewReader(conn), bufio.NewWriter(conn))}
}

func (c *smokeClient) line() string {
	line, err := c.rw.ReadString('\n')
	if err != nil {
		c.t.Fatal(err)
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		c.t.Fatalf("line not CRLF-terminated: %q", line)
	}
	return line[:len(line)-2]
}

// store issues a storage command exactly as gomemcache's populateOne does.
func (c *smokeClient) store(verb string, it *smokeItem) string {
	if verb == "cas" {
		fmt.Fprintf(c.rw, "%s %s %d %d %d %d\r\n", verb, it.Key, it.Flags, it.Expiration, len(it.Value), it.casid)
	} else {
		fmt.Fprintf(c.rw, "%s %s %d %d %d\r\n", verb, it.Key, it.Flags, it.Expiration, len(it.Value))
	}
	c.rw.Write(it.Value)
	c.rw.WriteString("\r\n")
	if err := c.rw.Flush(); err != nil {
		c.t.Fatal(err)
	}
	return c.line()
}

// get issues "gets <key>" (gomemcache always requests the cas unique) and
// parses the 5-field VALUE header strictly.
func (c *smokeClient) get(key string) (*smokeItem, bool) {
	fmt.Fprintf(c.rw, "gets %s\r\n", key)
	if err := c.rw.Flush(); err != nil {
		c.t.Fatal(err)
	}
	header := c.line()
	if header == "END" {
		return nil, false
	}
	fields := bytes.Fields([]byte(header))
	// gomemcache's scanGetResponseLine demands exactly:
	// VALUE <key> <flags> <bytes> <casid>
	if len(fields) != 5 || string(fields[0]) != "VALUE" {
		c.t.Fatalf("gets: malformed VALUE line %q (want 5 fields)", header)
	}
	if string(fields[1]) != key {
		c.t.Fatalf("gets: key %q, want %q", fields[1], key)
	}
	flags, err := strconv.ParseUint(string(fields[2]), 10, 32)
	if err != nil {
		c.t.Fatalf("gets: bad flags in %q: %v", header, err)
	}
	size, err := strconv.Atoi(string(fields[3]))
	if err != nil {
		c.t.Fatalf("gets: bad size in %q: %v", header, err)
	}
	casid, err := strconv.ParseUint(string(fields[4]), 10, 64)
	if err != nil {
		c.t.Fatalf("gets: bad cas unique in %q: %v", header, err)
	}
	buf := make([]byte, size+2)
	if _, err := readFull(c.rw.Reader, buf); err != nil {
		c.t.Fatal(err)
	}
	if !bytes.HasSuffix(buf, []byte("\r\n")) {
		c.t.Fatalf("gets: data block not CRLF-terminated")
	}
	if end := c.line(); end != "END" {
		c.t.Fatalf("gets: got %q, want END", end)
	}
	return &smokeItem{Key: key, Value: buf[:size], Flags: uint32(flags), casid: casid}, true
}

func (c *smokeClient) incr(key string, delta uint64) (uint64, string) {
	fmt.Fprintf(c.rw, "incr %s %d\r\n", key, delta)
	if err := c.rw.Flush(); err != nil {
		c.t.Fatal(err)
	}
	resp := c.line()
	if v, err := strconv.ParseUint(resp, 10, 64); err == nil {
		return v, ""
	}
	return 0, resp
}

func (c *smokeClient) delete(key string) string {
	fmt.Fprintf(c.rw, "delete %s\r\n", key)
	if err := c.rw.Flush(); err != nil {
		c.t.Fatal(err)
	}
	return c.line()
}

// TestStandardClientSmoke drives the server through a standard client's
// Set/Get/Add/CAS/Append/Incr/Delete call pattern in text mode — the
// ISSUE's acceptance check that an unmodified off-the-shelf client works.
func TestStandardClientSmoke(t *testing.T) {
	for _, backend := range protoBackends {
		t.Run(backend, func(t *testing.T) {
			m := newProtoCache(t, backend)
			srv, err := NewServer("127.0.0.1:0", 4, m, m.Stats)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { srv.Close() })
			c := newSmokeClient(t, srv.Addr())

			// Set + Get round trip with flags.
			if r := c.store("set", &smokeItem{Key: "color", Value: []byte("crimson"), Flags: 32}); r != "STORED" {
				t.Fatalf("set: %q", r)
			}
			it, ok := c.get("color")
			if !ok || string(it.Value) != "crimson" || it.Flags != 32 {
				t.Fatalf("get: %+v ok=%v", it, ok)
			}
			if it.casid == 0 {
				t.Fatal("get: cas unique is 0 — gets is aliasing get")
			}

			// Add fails on present key, succeeds on absent.
			if r := c.store("add", &smokeItem{Key: "color", Value: []byte("x")}); r != "NOT_STORED" {
				t.Fatalf("add present: %q", r)
			}
			if r := c.store("add", &smokeItem{Key: "shade", Value: []byte("dark")}); r != "STORED" {
				t.Fatalf("add absent: %q", r)
			}

			// CompareAndSwap: stored with the fresh token, EXISTS with a stale
			// one, NOT_FOUND after deletion.
			it.Value = []byte("scarlet")
			if r := c.store("cas", it); r != "STORED" {
				t.Fatalf("cas fresh: %q", r)
			}
			if r := c.store("cas", it); r != "EXISTS" {
				t.Fatalf("cas stale: %q", r)
			}
			it2, _ := c.get("color")
			if string(it2.Value) != "scarlet" || it2.casid <= it.casid {
				t.Fatalf("after cas: %+v (prev cas %d)", it2, it.casid)
			}

			// Append preserves flags.
			if r := c.store("append", &smokeItem{Key: "color", Value: []byte("-red")}); r != "STORED" {
				t.Fatalf("append: %q", r)
			}
			it3, _ := c.get("color")
			if string(it3.Value) != "scarlet-red" || it3.Flags != 32 {
				t.Fatalf("after append: %+v", it3)
			}

			// Increment.
			if r := c.store("set", &smokeItem{Key: "hits", Value: []byte("41")}); r != "STORED" {
				t.Fatalf("set ctr: %q", r)
			}
			if v, e := c.incr("hits", 1); e != "" || v != 42 {
				t.Fatalf("incr: %d %q", v, e)
			}

			// Delete, then CAS on the gone key.
			if r := c.delete("color"); r != "DELETED" {
				t.Fatalf("delete: %q", r)
			}
			if r := c.store("cas", it2); r != "NOT_FOUND" {
				t.Fatalf("cas deleted: %q", r)
			}
			if _, ok := c.get("color"); ok {
				t.Fatal("deleted key still present")
			}
		})
	}
}

// TestGetsRegression pins the satellite fix: gets must return the 5-field
// "VALUE <key> <flags> <bytes> <cas>" header (it previously aliased get and
// returned 4 fields), and the unique must advance on every mutation.
func TestGetsRegression(t *testing.T) {
	conn := newProtoConn(t, "mem")
	rw := bufio.NewReadWriter(bufio.NewReader(conn), bufio.NewWriter(conn))

	send(t, rw, "set g 9 0 3", "abc")
	if got := mustLine(t, rw); got != "STORED" {
		t.Fatalf("set: %q", got)
	}
	send(t, rw, "gets g")
	header := mustLine(t, rw)
	fields := bytes.Fields([]byte(header))
	if len(fields) != 5 {
		t.Fatalf("gets header %q has %d fields, want 5 (VALUE key flags bytes cas)", header, len(fields))
	}
	if string(fields[0]) != "VALUE" || string(fields[1]) != "g" ||
		string(fields[2]) != "9" || string(fields[3]) != "3" {
		t.Fatalf("gets header %q", header)
	}
	cas1, err := strconv.ParseUint(string(fields[4]), 10, 64)
	if err != nil || cas1 == 0 {
		t.Fatalf("gets cas unique %q (err %v) — must be a nonzero integer", fields[4], err)
	}
	mustLine(t, rw) // data
	mustLine(t, rw) // END

	// get (no s) must stay 4-field.
	send(t, rw, "get g")
	if got := mustLine(t, rw); got != "VALUE g 9 3" {
		t.Fatalf("get header %q, want 4-field", got)
	}
	mustLine(t, rw)
	mustLine(t, rw)

	// Every mutation advances the unique.
	send(t, rw, "set g 9 0 3", "def")
	if got := mustLine(t, rw); got != "STORED" {
		t.Fatalf("re-set: %q", got)
	}
	send(t, rw, "gets g")
	header2 := mustLine(t, rw)
	fields2 := bytes.Fields([]byte(header2))
	cas2, _ := strconv.ParseUint(string(fields2[4]), 10, 64)
	if cas2 <= cas1 {
		t.Fatalf("cas unique did not advance: %d then %d", cas1, cas2)
	}
	mustLine(t, rw)
	mustLine(t, rw)
}

func mustLine(t *testing.T, rw *bufio.ReadWriter) string {
	t.Helper()
	line, err := rw.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return string(bytes.TrimRight([]byte(line), "\r\n"))
}
