package memcache

// File-backed NV-Memcached: Config.File turns the cache into a kill -9
// survivable server — these tests exercise the recovery path the crash_e2e
// script drives across real process boundaries.

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/nvram"
)

func TestFileCacheRecoversWithoutSave(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mc.pmem")
	cfg := Config{MemoryBytes: 32 << 20, Buckets: 1 << 10, MaxConns: 2, File: path}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Runtime().Recovered() {
		t.Fatal("fresh file reported recovered")
	}
	const n = 300
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("item-%03d", i))
		if err := c.Set(k, []byte(fmt.Sprintf("payload-%03d", i)), uint16(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Set([]byte("ctr"), []byte("0"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Incr([]byte("ctr"), 7); err != nil || v != 7 {
		t.Fatalf("incr = %d, %v", v, err)
	}
	// Abandon without Close or SaveImage: the kill -9 model (Abandon drops
	// the single-owner file lock the way a process death does).
	if err := c.Runtime().Device().Backend().(*nvram.FileBackend).Abandon(); err != nil {
		t.Fatal(err)
	}

	c2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !c2.Runtime().Recovered() {
		t.Fatal("populated file not recovered")
	}
	if got := c2.Stats().Items; got != n+1 {
		t.Fatalf("recovered item count = %d, want %d", got, n+1)
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("item-%03d", i))
		v, flags, ok := c2.Get(k)
		if !ok || string(v) != fmt.Sprintf("payload-%03d", i) || flags != uint16(i) {
			t.Fatalf("item %d after reopen: %q flags=%d ok=%v", i, v, flags, ok)
		}
	}
	if v, err := c2.Incr([]byte("ctr"), 0); err != nil || v != 7 {
		t.Fatalf("counter after reopen = %d, %v; want 7", v, err)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFileCacheSurvivesServesAfterReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mc.pmem")
	cfg := Config{MemoryBytes: 32 << 20, Buckets: 1 << 10, MaxConns: 2, File: path}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Set([]byte("k"), []byte("v1"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The recovered cache must keep serving writes (allocator, expiry index
	// and session pool all rebuilt over the mapped image).
	if err := c2.Set([]byte("k"), []byte("v2"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if !c2.Delete([]byte("k")) {
		t.Fatal("delete of live key reported miss")
	}
	if _, _, ok := c2.Get([]byte("k")); ok {
		t.Fatal("deleted key still present")
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
}
