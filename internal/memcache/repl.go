package memcache

import (
	"bytes"
	"encoding/binary"
	"errors"

	"repro/logfree"
)

// Replication wiring: the cache publishes every acknowledged mutation to an
// optional ReplSink (the primary side) and can itself be driven as a warm
// standby through the Applier surface (ApplySet/ApplyDelete/SnapshotItems/
// ResetForSnapshot/ReplMeta), which internal/repl's Follower consumes. The
// cache never imports internal/repl — the coupling is structural, so the
// replication transport stays independently testable and fuzzable.
//
// Publication protocol: publish AFTER the durable mutation, under the same
// key stripe lock (so the stream's per-key order is the store's order), and
// wait for follower acknowledgement AFTER the stripe lock is released (so a
// slow follower can never block other keys' writes — it only defers the
// publishing client's response, and only until the sink's ack timeout sheds
// the laggard).

// ReplSink receives acknowledged mutations for streaming to followers.
// Satisfied by *repl.Primary. PublishSet/PublishDelete return the assigned
// stream sequence (0 = nothing published); WaitAcked blocks until every
// in-sync follower has durably applied seq, the sink's ack timeout sheds
// the laggards, or the sink is closed — it must never block indefinitely.
type ReplSink interface {
	PublishSet(key, value []byte, flags uint16, aux uint64) uint64
	PublishDelete(key []byte) uint64
	WaitAcked(seq uint64)
}

// ReplStats is the replication surface reported through `stats`, filled by
// whichever role is live (primary sink or follower).
type ReplStats struct {
	State      string // none | streaming | degraded | connecting | snapshot | promoted | stopped
	Seq        uint64 // stream frontier (primary) or last applied seq (follower)
	LagOps     uint64 // ops the slowest follower trails by (primary) or ops behind the primary (follower)
	Reconnects uint64 // follower connections accepted (primary) or made (follower)
}

type replHooks struct {
	sink  ReplSink
	stats func() ReplStats
}

// SetReplication installs the replication hooks: sink receives every
// subsequent mutation (nil detaches), stats feeds the repl_* rows of
// `stats`. Safe to call while serving traffic.
func (m *Cache) SetReplication(sink ReplSink, stats func() ReplStats) {
	m.repl.Store(&replHooks{sink: sink, stats: stats})
}

func (m *Cache) publishSet(key, value []byte, flags uint16, aux uint64) uint64 {
	if h := m.repl.Load(); h != nil && h.sink != nil {
		return h.sink.PublishSet(key, value, flags, aux)
	}
	return 0
}

func (m *Cache) publishDelete(key []byte) uint64 {
	if h := m.repl.Load(); h != nil && h.sink != nil {
		return h.sink.PublishDelete(key)
	}
	return 0
}

// waitRepl defers the caller's acknowledgement until seq is replicated.
// Must be called WITHOUT the key's stripe lock held. seq 0 (no sink, or
// the mutation did not publish) returns immediately.
func (m *Cache) waitRepl(seq uint64) {
	if seq == 0 {
		return
	}
	if h := m.repl.Load(); h != nil && h.sink != nil {
		h.sink.WaitAcked(seq)
	}
}

func (m *Cache) replStats() ReplStats {
	if h := m.repl.Load(); h != nil && h.stats != nil {
		return h.stats()
	}
	return ReplStats{State: "none"}
}

// replMetaKey is the reserved index slot holding a follower's durable
// resume point. The leading NUL keeps it out of any key a text-protocol
// client can express; every whole-index walk (rebuild, flush, snapshot,
// reset) skips it explicitly.
var replMetaKey = []byte("\x00nvmc\x00repl")

func isReplMeta(key []byte) bool {
	return len(key) > 0 && key[0] == 0 && bytes.Equal(key, replMetaKey)
}

// ReplMeta loads the durable resume point: which primary incarnation
// (runID) this cache last followed and the last stream seq it applied.
// (0, 0) means "never followed" (or promoted) — the follower will
// re-snapshot.
func (m *Cache) ReplMeta() (runID, seq uint64) {
	v, _, _, ok := m.m.GetItem(replMetaKey)
	if !ok || len(v) != 16 {
		return 0, 0
	}
	return binary.BigEndian.Uint64(v), binary.BigEndian.Uint64(v[8:])
}

// SetReplMeta durably stores the resume point. The meta is an optimization,
// not a durability boundary: applied ops are themselves durable before
// being acked, and replaying past a stale resume point is idempotent
// (records carry items verbatim).
func (m *Cache) SetReplMeta(runID, seq uint64) error {
	var v [16]byte
	binary.BigEndian.PutUint64(v[:], runID)
	binary.BigEndian.PutUint64(v[8:], seq)
	_, err := m.m.SetItem(replMetaKey, v[:], 0, 0)
	return err
}

// ApplySet stores one replicated item byte-faithfully: the value, flags and
// aux word (CAS unique + expiry packed) land exactly as the primary wrote
// them, so a promoted follower's CAS generation chain continues the
// primary's. Runs the same grow-then-evict pressure valve as SetCAS.
func (m *Cache) ApplySet(key, value []byte, flags uint16, aux uint64) error {
	m.ensureHeadroom(entrySize(key, value))
	for attempt := 0; ; attempt++ {
		err := m.applySetLocked(key, value, flags, aux)
		if err == nil {
			return nil
		}
		if !errors.Is(err, logfree.ErrFull) || attempt > 64 {
			return err
		}
		if !m.tryGrow() && !m.evictOne() {
			return err
		}
		m.reclaim()
	}
}

// applySetLocked is setItemLocked with a verbatim aux word (no CAS bump —
// the primary already did it) and no publication.
func (m *Cache) applySetLocked(key, value []byte, flags uint16, aux uint64) error {
	mu := m.lockKey(key)
	mu.Lock()
	defer mu.Unlock()
	oldAux, hadOld := m.m.GetAux(key)
	expiry := auxExpiry(aux)
	if expiry != 0 {
		if err := m.exp.Set(expKey(uint64(expiry), key), nil); err != nil {
			return err
		}
	}
	created, err := m.m.SetItem(key, value, flags, aux)
	if err != nil {
		return err
	}
	if oldExp := auxExpiry(oldAux); hadOld && oldExp != 0 && oldExp != expiry {
		m.exp.Delete(expKey(uint64(oldExp), key))
	}
	m.usedBytes.Add(m.lru.add(string(key), entrySize(key, value)))
	if created {
		m.stats.items.Add(1)
	}
	return nil
}

// ApplyDelete removes one replicated key. A miss is not an error: the
// follower may be replaying ops it already applied (idempotent resume).
func (m *Cache) ApplyDelete(key []byte) error {
	mu := m.lockKey(key)
	mu.Lock()
	defer mu.Unlock()
	aux, _ := m.m.GetAux(key)
	if !m.m.Delete(key) {
		return nil
	}
	if e := auxExpiry(aux); e != 0 {
		m.exp.Delete(expKey(uint64(e), key))
	}
	m.usedBytes.Add(-m.lru.remove(string(key)))
	m.stats.items.Add(-1)
	return nil
}

// SnapshotItems walks the live index, emitting every item verbatim (value,
// flags, raw aux) — the primary side of initial sync. The walk is weakly
// consistent (lock-free, concurrent mutations may or may not be seen);
// the follower re-converges by replaying the stream from the snapshot's
// start seq, which is idempotent because records carry items verbatim.
func (m *Cache) SnapshotItems(emit func(key, value []byte, flags uint16, aux uint64) error) error {
	return m.forEachItem(emit)
}

// ResetForSnapshot clears every item (but not the repl meta slot) before a
// fresh snapshot lands: keys the primary deleted while this follower was
// away must not linger. Nothing is published (the follower cache has no
// sink) and the flush counter is not bumped (this is not a client
// flush_all).
func (m *Cache) ResetForSnapshot() error {
	var keys [][]byte
	for k := range m.m.All() {
		if isReplMeta(k) {
			continue
		}
		keys = append(keys, append([]byte(nil), k...))
	}
	for _, k := range keys {
		if err := m.ApplyDelete(k); err != nil {
			return err
		}
	}
	m.reclaim()
	return nil
}
