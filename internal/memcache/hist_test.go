package memcache

import (
	"math/rand"
	"testing"
	"time"
)

func TestLatencyHistPercentiles(t *testing.T) {
	var h LatencyHist
	// 1..1000µs uniformly: p50 ≈ 500µs, p99 ≈ 990µs within the 1/64
	// log-linear error bound.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	check := func(p float64, want time.Duration) {
		t.Helper()
		got := h.Percentile(p)
		err := float64(got-want) / float64(want)
		if err < 0 {
			err = -err
		}
		if err > 0.04 {
			t.Fatalf("p%.1f = %v, want ~%v (err %.1f%%)", p, got, want, err*100)
		}
	}
	check(50, 500*time.Microsecond)
	check(99, 990*time.Microsecond)
	check(99.9, 999*time.Microsecond)
}

func TestLatencyHistMergeMatchesCombined(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a, b, all LatencyHist
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.Intn(1<<20)) * time.Microsecond
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
		all.Record(d)
	}
	a.Merge(&b)
	for _, p := range []float64{0, 10, 50, 90, 99, 99.9, 100} {
		if a.Percentile(p) != all.Percentile(p) {
			t.Fatalf("p%v: merged %v != combined %v", p, a.Percentile(p), all.Percentile(p))
		}
	}
}

func TestLatencyHistBucketMonotonic(t *testing.T) {
	// Bucket index and representative value must both be monotonic in the
	// recorded duration.
	prevIdx := -1
	for us := uint64(0); us < 1<<22; us = us*5/4 + 1 {
		idx := latBucket(time.Duration(us) * time.Microsecond)
		if idx < prevIdx {
			t.Fatalf("bucket(%dµs) = %d < previous %d", us, idx, prevIdx)
		}
		prevIdx = idx
	}
	for i := 1; i < latHistBuckets; i++ {
		if latBucketValue(i) < latBucketValue(i-1) {
			t.Fatalf("bucket value not monotonic at %d", i)
		}
	}
}

func TestLatencyHistExtremes(t *testing.T) {
	var h LatencyHist
	h.Record(-time.Second) // clamped to 0
	h.Record(0)
	h.Record(time.Hour) // clamped to the top bucket
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Percentile(0); got != 0 {
		t.Fatalf("p0 = %v", got)
	}
	if got := h.Percentile(100); got < time.Second {
		t.Fatalf("p100 = %v, want clamped top bucket", got)
	}
}
