package memcache

import (
	"errors"
	"strconv"
	"time"
)

// Extended memcached operations beyond get/set/delete: add, replace,
// incr/decr and touch, built from the same durable primitives (every
// mutation runs under the key's stripe lock, so durable linearizability
// carries over unchanged).

// ErrNotStored reports a failed add/replace precondition.
var ErrNotStored = errors.New("memcache: precondition failed")

// ErrNotNumber reports incr/decr on a non-numeric value.
var ErrNotNumber = errors.New("memcache: value is not a number")

// liveLocked reports whether a live (non-expired) item for key exists, and
// returns its fields. Caller holds the key's stripe lock.
func (m *Cache) liveLocked(key []byte) (value []byte, flags uint16, expiry uint32, ok bool) {
	v, meta, aux, found := m.m.GetItem(key)
	if !found || expired(aux, time.Now().Unix()) {
		return nil, 0, 0, false
	}
	return v, meta, uint32(aux), true
}

// Add stores key only if it is absent (memcached "add").
func (m *Cache) Add(key, value []byte, flags uint16, expiry uint32) error {
	mu := m.lockKey(key)
	mu.Lock()
	defer mu.Unlock()
	if _, _, _, ok := m.liveLocked(key); ok {
		return ErrNotStored
	}
	m.stats.sets.Add(1)
	return m.setItemLocked(key, value, flags, expiry)
}

// Replace stores key only if it is present (memcached "replace").
func (m *Cache) Replace(key, value []byte, flags uint16, expiry uint32) error {
	mu := m.lockKey(key)
	mu.Lock()
	defer mu.Unlock()
	if _, _, _, ok := m.liveLocked(key); !ok {
		return ErrNotStored
	}
	m.stats.sets.Add(1)
	return m.setItemLocked(key, value, flags, expiry)
}

// Incr adds delta to a decimal value, returning the new value (memcached
// "incr"; the mutation is durable via the item replacement).
func (m *Cache) Incr(key []byte, delta uint64) (uint64, error) {
	return m.incrDecr(key, delta, false)
}

// Decr subtracts delta (floored at zero, as memcached specifies).
func (m *Cache) Decr(key []byte, delta uint64) (uint64, error) {
	return m.incrDecr(key, delta, true)
}

func (m *Cache) incrDecr(key []byte, delta uint64, down bool) (uint64, error) {
	mu := m.lockKey(key)
	mu.Lock()
	defer mu.Unlock()
	v, flags, exp, ok := m.liveLocked(key)
	if !ok {
		return 0, ErrNotFound
	}
	cur, err := strconv.ParseUint(string(v), 10, 64)
	if err != nil {
		return 0, ErrNotNumber
	}
	var next uint64
	if down {
		if delta > cur {
			next = 0
		} else {
			next = cur - delta
		}
	} else {
		next = cur + delta
	}
	if err := m.setItemLocked(key, []byte(strconv.FormatUint(next, 10)), flags, exp); err != nil {
		return 0, err
	}
	return next, nil
}

// Touch updates an item's expiry without rewriting its value, keeping the
// expiry index in step (new deadline indexed before the aux update, old
// deadline unindexed after — the sweep discards any stale leftovers).
func (m *Cache) Touch(key []byte, expiry uint32) bool {
	mu := m.lockKey(key)
	mu.Lock()
	defer mu.Unlock()
	_, _, old, ok := m.liveLocked(key)
	if !ok {
		return false
	}
	// Indexed unconditionally (idempotent), as in setItemLocked, so items
	// from pre-index images are adopted even when the deadline is unchanged.
	if expiry != 0 {
		if err := m.exp.Set(expKey(uint64(expiry), key), nil); err != nil {
			return false
		}
	}
	if !m.m.SetAux(key, uint64(expiry)) {
		return false
	}
	if old != 0 && old != expiry {
		m.exp.Delete(expKey(uint64(old), key))
	}
	m.lru.touch(string(key))
	return true
}
