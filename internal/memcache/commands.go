package memcache

import (
	"errors"
	"strconv"
	"time"
)

// Extended memcached operations beyond get/set/delete: add, replace,
// incr/decr and touch, built from the same durable primitives (every
// mutation is a Set/Delete under the item lock stripe, so durable
// linearizability carries over unchanged).

// ErrNotStored reports a failed add/replace precondition.
var ErrNotStored = errors.New("memcache: precondition failed")

// ErrNotNumber reports incr/decr on a non-numeric value.
var ErrNotNumber = errors.New("memcache: value is not a number")

// Add stores key only if it is absent (memcached "add").
func (h *Handle) Add(key, value []byte, flags uint16, expiry uint32) error {
	m := h.cache
	hash := keyHash(key)
	mu := m.lockHash(hash)
	mu.Lock()
	defer mu.Unlock()
	if it := h.lookupLocked(hash, key); it != 0 {
		return ErrNotStored
	}
	m.bump(func(s *Stats) { s.Sets++ })
	return h.setOnce(hash, key, value, flags, expiry)
}

// Replace stores key only if it is present (memcached "replace").
func (h *Handle) Replace(key, value []byte, flags uint16, expiry uint32) error {
	m := h.cache
	hash := keyHash(key)
	mu := m.lockHash(hash)
	mu.Lock()
	defer mu.Unlock()
	if it := h.lookupLocked(hash, key); it == 0 {
		return ErrNotStored
	}
	m.bump(func(s *Stats) { s.Sets++ })
	return h.setOnce(hash, key, value, flags, expiry)
}

// Incr adds delta to a decimal value, returning the new value (memcached
// "incr"; the mutation is durable via the item replacement).
func (h *Handle) Incr(key []byte, delta uint64) (uint64, error) {
	return h.incrDecr(key, delta, false)
}

// Decr subtracts delta (floored at zero, as memcached specifies).
func (h *Handle) Decr(key []byte, delta uint64) (uint64, error) {
	return h.incrDecr(key, delta, true)
}

func (h *Handle) incrDecr(key []byte, delta uint64, down bool) (uint64, error) {
	m := h.cache
	hash := keyHash(key)
	mu := m.lockHash(hash)
	mu.Lock()
	defer mu.Unlock()
	it := h.lookupLocked(hash, key)
	if it == 0 {
		return 0, ErrNotFound
	}
	cur, err := strconv.ParseUint(string(m.itemValue(it)), 10, 64)
	if err != nil {
		return 0, ErrNotNumber
	}
	var next uint64
	if down {
		if delta > cur {
			next = 0
		} else {
			next = cur - delta
		}
	} else {
		next = cur + delta
	}
	flags := m.itemFlags(it)
	exp := uint32(m.dev.Load(it + itExpiry))
	if err := h.setOnce(hash, key, []byte(strconv.FormatUint(next, 10)), flags, exp); err != nil {
		return 0, err
	}
	return next, nil
}

// Touch updates an item's expiry without rewriting its value.
func (h *Handle) Touch(key []byte, expiry uint32) bool {
	m := h.cache
	hash := keyHash(key)
	mu := m.lockHash(hash)
	mu.Lock()
	defer mu.Unlock()
	it := h.lookupLocked(hash, key)
	if it == 0 {
		return false
	}
	m.dev.Store(it+itExpiry, uint64(expiry))
	h.c.Flusher().Sync(it + itExpiry)
	m.lru.touch(it)
	return true
}

// lookupLocked finds the live (non-expired) item for key; 0 if absent.
// Caller holds the hash stripe.
func (h *Handle) lookupLocked(hash uint64, key []byte) Addr {
	m := h.cache
	headV, ok := m.idx.Search(h.c, hash)
	if !ok {
		return 0
	}
	it, _ := m.findInChain(Addr(headV), key)
	if it == 0 || m.itemExpired(it, time.Now().Unix()) {
		return 0
	}
	return it
}
