package memcache

import (
	"errors"
	"strconv"
	"time"

	"repro/logfree"
)

// Extended memcached operations beyond get/set/delete: add, replace, cas,
// append/prepend, incr/decr, touch and get-and-touch, built from the same
// durable primitives (every mutation runs under the key's stripe lock, so
// durable linearizability carries over unchanged). Every mutation bumps the
// item's CAS sequence; the CAS unique and the value travel in one durable
// entry publish, so they are mutually consistent across any crash.

// ErrNotStored reports a failed add/replace/append/prepend precondition.
var ErrNotStored = errors.New("memcache: precondition failed")

// ErrNotNumber reports incr/decr on a non-numeric value.
var ErrNotNumber = errors.New("memcache: value is not a number")

// liveLocked reports whether a live (non-expired) item for key exists, and
// returns its fields with the raw aux word (unpack with auxCAS/auxExpiry).
// Caller holds the key's stripe lock (or tolerates racing mutations).
func (m *Cache) liveLocked(key []byte) (value []byte, flags uint16, aux uint64, ok bool) {
	v, meta, aux, found := m.m.GetItem(key)
	if !found || expired(aux, time.Now().Unix()) {
		return nil, 0, 0, false
	}
	return v, meta, aux, true
}

// Gets is Get returning the item's CAS unique as well (text "gets", binary
// GET): the token a later cas must present. Items last written by a pre-CAS
// image report 0 until their first mutation.
func (m *Cache) Gets(key []byte) (value []byte, flags uint16, cas uint64, ok bool) {
	m.stats.gets.Add(1)
	v, meta, aux, found := m.m.GetItem(key)
	if !found || expired(aux, time.Now().Unix()) {
		m.stats.misses.Add(1)
		return nil, 0, 0, false
	}
	m.lru.touch(string(key))
	m.stats.hits.Add(1)
	return v, meta, uint64(auxCAS(aux)), true
}

// Add stores key only if it is absent (memcached "add"). Returns the new
// CAS unique.
func (m *Cache) Add(key, value []byte, flags uint16, expiry uint32) (uint64, error) {
	var seq uint64
	defer func() { m.waitRepl(seq) }() // runs after the stripe lock unlock
	mu := m.lockKey(key)
	mu.Lock()
	defer mu.Unlock()
	if _, _, _, ok := m.liveLocked(key); ok {
		return 0, ErrNotStored
	}
	m.stats.sets.Add(1)
	cas, s, err := m.setItemLocked(key, value, flags, expiry)
	seq = s
	return cas, err
}

// Replace stores key only if it is present (memcached "replace").
func (m *Cache) Replace(key, value []byte, flags uint16, expiry uint32) (uint64, error) {
	var seq uint64
	defer func() { m.waitRepl(seq) }()
	mu := m.lockKey(key)
	mu.Lock()
	defer mu.Unlock()
	if _, _, _, ok := m.liveLocked(key); !ok {
		return 0, ErrNotStored
	}
	m.stats.sets.Add(1)
	cas, s, err := m.setItemLocked(key, value, flags, expiry)
	seq = s
	return cas, err
}

// CompareAndSwap stores key only if its current CAS unique equals cas
// (memcached "cas"). ErrNotFound when the key is absent (NOT_FOUND),
// ErrCASConflict when the token is stale (EXISTS).
func (m *Cache) CompareAndSwap(key, value []byte, flags uint16, expiry uint32, cas uint64) (uint64, error) {
	var seq uint64
	defer func() { m.waitRepl(seq) }()
	mu := m.lockKey(key)
	mu.Lock()
	defer mu.Unlock()
	_, _, aux, ok := m.liveLocked(key)
	if !ok {
		m.stats.casMisses.Add(1)
		return 0, ErrNotFound
	}
	if uint64(auxCAS(aux)) != cas {
		m.stats.casBadval.Add(1)
		return 0, ErrCASConflict
	}
	m.stats.sets.Add(1)
	newCAS, s, err := m.setItemLocked(key, value, flags, expiry)
	if err == nil {
		m.stats.casHits.Add(1)
		seq = s
	}
	return newCAS, err
}

// Append concatenates data after an existing item's value (memcached
// "append"); the item's flags and expiry are preserved, per the spec. With
// cas != 0 the append additionally requires a matching CAS token (the
// binary protocol's APPEND-with-cas).
func (m *Cache) Append(key, data []byte, cas uint64) (uint64, error) {
	return m.concat(key, data, cas, false)
}

// Prepend concatenates data before an existing item's value.
func (m *Cache) Prepend(key, data []byte, cas uint64) (uint64, error) {
	return m.concat(key, data, cas, true)
}

func (m *Cache) concat(key, data []byte, cas uint64, front bool) (uint64, error) {
	var seq uint64
	defer func() { m.waitRepl(seq) }()
	mu := m.lockKey(key)
	mu.Lock()
	defer mu.Unlock()
	v, flags, aux, ok := m.liveLocked(key)
	if !ok {
		return 0, ErrNotStored
	}
	if cas != 0 && uint64(auxCAS(aux)) != cas {
		m.stats.casBadval.Add(1)
		return 0, ErrCASConflict
	}
	if logfree.MapEntryOverhead+len(key)+len(v)+len(data) > logfree.MaxMapEntrySize {
		return 0, ErrTooLarge
	}
	joined := make([]byte, 0, len(v)+len(data))
	if front {
		joined = append(append(joined, data...), v...)
	} else {
		joined = append(append(joined, v...), data...)
	}
	m.stats.sets.Add(1)
	newCAS, s, err := m.setItemLocked(key, joined, flags, auxExpiry(aux))
	seq = s
	return newCAS, err
}

// Incr adds delta to a decimal value, returning the new value (memcached
// "incr"; the mutation is durable via the item replacement).
func (m *Cache) Incr(key []byte, delta uint64) (uint64, error) {
	v, _, err := m.IncrDecrCAS(key, delta, 0, 0, false, false)
	return v, err
}

// Decr subtracts delta (floored at zero, as memcached specifies).
func (m *Cache) Decr(key []byte, delta uint64) (uint64, error) {
	v, _, err := m.IncrDecrCAS(key, delta, 0, 0, false, true)
	return v, err
}

// IncrDecrCAS is the full arithmetic primitive behind text incr/decr and
// the binary INCREMENT/DECREMENT ops: with create set, an absent key is
// seeded with initial (and expiry) instead of returning ErrNotFound — the
// binary protocol's initial-value semantics. Returns the new value and the
// item's new CAS unique.
func (m *Cache) IncrDecrCAS(key []byte, delta, initial uint64, expiry uint32, create, down bool) (uint64, uint64, error) {
	var seq uint64
	defer func() { m.waitRepl(seq) }()
	mu := m.lockKey(key)
	mu.Lock()
	defer mu.Unlock()
	v, flags, aux, ok := m.liveLocked(key)
	if !ok {
		if !create {
			return 0, 0, ErrNotFound
		}
		m.stats.sets.Add(1)
		cas, s, err := m.setItemLocked(key, []byte(strconv.FormatUint(initial, 10)), 0, expiry)
		seq = s
		return initial, cas, err
	}
	cur, err := strconv.ParseUint(string(v), 10, 64)
	if err != nil {
		return 0, 0, ErrNotNumber
	}
	var next uint64
	if down {
		if delta > cur {
			next = 0
		} else {
			next = cur - delta
		}
	} else {
		next = cur + delta
	}
	cas, s, err := m.setItemLocked(key, []byte(strconv.FormatUint(next, 10)), flags, auxExpiry(aux))
	if err != nil {
		return 0, 0, err
	}
	seq = s
	return next, cas, nil
}

// Touch updates an item's expiry without rewriting its value, keeping the
// expiry index in step (new deadline indexed before the aux update, old
// deadline unindexed after — the sweep discards any stale leftovers). The
// item's CAS sequence is bumped (the aux replace is one atomic durable
// word, so the new CAS and new deadline land together); the new unique is
// returned for the binary TOUCH/GAT responses.
func (m *Cache) Touch(key []byte, expiry uint32) (uint64, bool) {
	var seq uint64
	defer func() { m.waitRepl(seq) }()
	mu := m.lockKey(key)
	mu.Lock()
	defer mu.Unlock()
	cas, s, ok := m.touchLocked(key, expiry)
	seq = s
	return cas, ok
}

func (m *Cache) touchLocked(key []byte, expiry uint32) (uint64, uint64, bool) {
	v, flags, aux, ok := m.liveLocked(key)
	if !ok {
		return 0, 0, false
	}
	// Indexed unconditionally (idempotent), as in setItemLocked, so items
	// from pre-index images are adopted even when the deadline is unchanged.
	if expiry != 0 {
		if err := m.exp.Set(expKey(uint64(expiry), key), nil); err != nil {
			return 0, 0, false
		}
	}
	cas := nextCAS(auxCAS(aux))
	if !m.m.SetAux(key, packAux(cas, expiry)) {
		return 0, 0, false
	}
	// Touch mutates only the aux word locally, but the stream has no
	// aux-only record: replicate the whole item (value and flags ride
	// along unchanged) so the follower lands the same CAS and deadline.
	seq := m.publishSet(key, v, flags, packAux(cas, expiry))
	if old := auxExpiry(aux); old != 0 && old != expiry {
		m.exp.Delete(expKey(uint64(old), key))
	}
	m.lru.touch(string(key))
	m.stats.touches.Add(1)
	return uint64(cas), seq, true
}

// GetAndTouch returns the item and updates its expiry in one operation
// (text "gat"/"gats", binary GAT/GATQ). The returned CAS unique is the
// post-touch one.
func (m *Cache) GetAndTouch(key []byte, expiry uint32) (value []byte, flags uint16, cas uint64, ok bool) {
	var seq uint64
	defer func() { m.waitRepl(seq) }()
	mu := m.lockKey(key)
	mu.Lock()
	defer mu.Unlock()
	m.stats.gets.Add(1)
	v, f, _, ok := m.liveLocked(key)
	if !ok {
		m.stats.misses.Add(1)
		return nil, 0, 0, false
	}
	cas, s, ok := m.touchLocked(key, expiry)
	if !ok {
		m.stats.misses.Add(1)
		return nil, 0, 0, false
	}
	seq = s
	m.stats.hits.Add(1)
	return v, f, cas, true
}
