package memcache

import (
	"errors"
	"time"

	"repro/internal/nvram"
	"repro/logfree"
)

// Recover reopens a crashed NV-Memcached instance (§6.5) through the public
// logfree API: Attach recovers the durable directory and the item map in
// one combined sweep of the active slabs, freeing memory that is "marked as
// allocated but not yet or no longer reachable from the hash table". The
// LRU list is rebuilt (order reset) from one index walk.
//
// This is the operation Figure 11 times against the volatile alternative's
// warm-up: recovering even a large instance takes milliseconds, while
// re-populating a cold volatile cache takes orders of magnitude longer.
func Recover(dev *nvram.Device, cfg Config) (*Cache, logfree.RecoveryStats, error) {
	cfg.fill()
	rt, err := logfree.Attach(dev, logfree.WithMaxThreads(cfg.MaxConns+1))
	if err != nil {
		return nil, logfree.RecoveryStats{}, err
	}
	if _, ok := rt.Lookup(cacheMapName); !ok {
		return nil, logfree.RecoveryStats{}, errors.New("memcache: device holds no cache descriptor")
	}
	idx, err := rt.Map(cacheMapName, cfg.Buckets)
	if err != nil {
		return nil, logfree.RecoveryStats{}, err
	}
	// The expiry index is opened create-or-attach: images from before the
	// ordered index simply start one empty (their items still expire
	// lazily on Get and get indexed again on rewrite/touch).
	exp, err := rt.OrderedMap(expMapName)
	if err != nil {
		return nil, logfree.RecoveryStats{}, err
	}
	m := &Cache{rt: rt, eng: rt, m: idx, exp: exp, cfg: cfg, lru: newLRU()}
	m.rebuildVolatile()
	return m, rt.RecoveryStats(), nil
}

// WarmUp populates a cache with n sequential keys (the Figure 11 warm-up
// phase for the volatile comparators) and returns how long it took.
func WarmUp(h interface {
	Set(key, value []byte, flags uint16, expiry uint32) error
}, n int, valueLen int) (time.Duration, error) {
	val := make([]byte, valueLen)
	for i := range val {
		val[i] = byte(i)
	}
	start := time.Now()
	var kb [16]byte
	for i := 0; i < n; i++ {
		k := formatKey(kb[:0], uint64(i))
		if err := h.Set(k, val, 0, 0); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// formatKey renders a compact decimal key (no fmt allocation in hot loops).
func formatKey(dst []byte, n uint64) []byte {
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return append(dst, buf[i:]...)
}
