package memcache

import (
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/nvram"
	"repro/internal/pmem"
)

// Recover reopens a crashed NV-Memcached instance (§6.5): re-attach the
// store and durable hash table, then sweep the active slabs for memory that
// is "marked as allocated but not yet or no longer reachable from the hash
// table", freeing it. The LRU list is rebuilt (order reset) as the sweep
// encounters live items.
//
// This is the operation Figure 11 times against the volatile alternative's
// warm-up: recovering even a large instance takes milliseconds, while
// re-populating a cold volatile cache takes orders of magnitude longer.
func Recover(dev *nvram.Device, cfg Config) (*Cache, core.RecoveryStats, error) {
	cfg.fill()
	store, err := core.AttachStore(dev)
	if err != nil {
		return nil, core.RecoveryStats{}, err
	}
	nb := int(store.Root(rootNBkts))
	if nb == 0 {
		return nil, core.RecoveryStats{}, errors.New("memcache: device holds no cache descriptor")
	}
	idx := core.AttachHashTable(store, store.Root(rootBuckets), nb, store.Root(rootTail))
	m := &Cache{dev: dev, store: store, idx: idx, lru: newLRU()}

	keepIndex := core.KeepHashNode(idx)
	var items atomic.Int64
	keep := func(c *core.Ctx, n Addr) bool {
		cl, ok := store.Pool().PageClass(pmem.PageOf(n))
		if !ok {
			return true // not a heap page; leave alone
		}
		if cl == 0 {
			return keepIndex(c, n) // hash index node
		}
		// Item: reachable iff it is on the collision chain for its hash.
		hash := dev.Load(n + itHash)
		if hash < core.MinKey || hash > core.MaxKey {
			return false // never initialized
		}
		headV, found := idx.Search(c, hash)
		if !found {
			return false
		}
		for it := Addr(headV); it != 0; it = Addr(dev.Load(it + itHNext)) {
			if it == n {
				return true
			}
		}
		return false
	}
	stats := core.RecoverCustom(store, nil, keep, cfg.MaxConns)

	// Rebuild the volatile metadata (item count and LRU list; recency order
	// is reset, as with a freshly warmed cache) with one index walk.
	h := m.Handle(0)
	m.idx.Range(h.c, func(_, headV uint64) bool {
		for it := Addr(headV); it != 0; it = Addr(dev.Load(it + itHNext)) {
			m.lru.add(it)
			items.Add(1)
		}
		return true
	})
	m.stats.Items = items.Load()
	return m, stats, nil
}

// WarmUp populates a cache with n sequential keys (the Figure 11 warm-up
// phase for the volatile comparators) and returns how long it took.
func WarmUp(h interface {
	Set(key, value []byte, flags uint16, expiry uint32) error
}, n int, valueLen int) (time.Duration, error) {
	val := make([]byte, valueLen)
	for i := range val {
		val[i] = byte(i)
	}
	start := time.Now()
	var kb [16]byte
	for i := 0; i < n; i++ {
		k := formatKey(kb[:0], uint64(i))
		if err := h.Set(k, val, 0, 0); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// formatKey renders a compact decimal key (no fmt allocation in hot loops).
func formatKey(dst []byte, n uint64) []byte {
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return append(dst, buf[i:]...)
}
