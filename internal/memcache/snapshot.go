package memcache

// Live point-in-time snapshots (PR 9): an RDB-style dump of the cache taken
// WHILE serving traffic, in internal/capacity's versioned framed format.
// The walk is logfree's epoch-protected lock-free iteration — no
// stop-the-world, no key locks held — so the image is a weakly consistent
// cut: every item that existed before Snapshot began and was not mutated
// during it appears exactly once, verbatim (value, flags, and the raw aux
// word carrying CAS unique + expiry). Items travel byte-faithfully, so a
// restore reproduces the CAS chain, not just the values.

import (
	"fmt"
	"io"

	"repro/internal/capacity"
)

// forEachItem walks the live index lock-free, emitting every client item
// (the replication meta slot is skipped) verbatim. Shared by wire-protocol
// snapshots and replication initial sync.
func (m *Cache) forEachItem(emit func(key, value []byte, flags uint16, aux uint64) error) error {
	for k, it := range m.m.Items() {
		if isReplMeta(k) {
			continue
		}
		if err := emit(k, it.Value, it.Meta, it.Aux); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot streams a point-in-time image of the cache onto w and returns
// the number of items written. Safe to run concurrently with serving
// traffic; see the package comment above for the consistency contract.
// Snapshot does not close w.
func (m *Cache) Snapshot(w io.Writer) (items uint64, err error) {
	sw, err := capacity.NewSnapshotWriter(w)
	if err != nil {
		return 0, err
	}
	if err := m.forEachItem(sw.Item); err != nil {
		return sw.Count(), err
	}
	return sw.Count(), sw.Close()
}

// RestoreSnapshot loads a snapshot stream into this cache, which must be
// empty (restore is a bootstrap, not a merge). Items land through the same
// verbatim-aux path replication uses, so flags, expirations and the CAS
// chain come back exactly as dumped. Returns the number of items restored;
// a truncated or corrupt stream errors without silently passing for
// complete.
func (m *Cache) RestoreSnapshot(r io.Reader) (items uint64, err error) {
	if n := m.stats.items.Load(); n != 0 {
		return 0, fmt.Errorf("memcache: snapshot restore requires an empty cache (%d items present)", n)
	}
	sr, err := capacity.NewSnapshotReader(r)
	if err != nil {
		return 0, err
	}
	for {
		key, value, flags, aux, err := sr.Next()
		if err == io.EOF {
			return sr.Count(), nil
		}
		if err != nil {
			return sr.Count(), err
		}
		if err := m.ApplySet(key, value, flags, aux); err != nil {
			return sr.Count(), err
		}
	}
}
