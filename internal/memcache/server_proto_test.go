package memcache

// Protocol conformance suite: byte-exact coverage of the text command set
// (including the spec error strings) and a binary-protocol twin with exact
// frame checks, each run over both the in-process MemBackend and the
// file-backed FileBackend. CAS uniques are deterministic on a fresh cache
// (each item's sequence starts at 1), so expected responses can spell them
// out literally.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// protoBackends enumerates the storage backends the conformance tables run
// over.
var protoBackends = []string{"mem", "file"}

func newProtoCache(t *testing.T, backend string) *Cache {
	t.Helper()
	cfg := Config{MemoryBytes: 32 << 20, Buckets: 1 << 10, MaxConns: 4}
	if backend == "file" {
		cfg.File = filepath.Join(t.TempDir(), "proto.pmem")
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if backend == "file" {
		t.Cleanup(func() { m.Close() })
	}
	return m
}

func newProtoConn(t *testing.T, backend string) net.Conn {
	t.Helper()
	m := newProtoCache(t, backend)
	srv, err := NewServer("127.0.0.1:0", 4, m, m.Stats)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	return conn
}

// protoStep is one request/response exchange: raw bytes out, exact raw
// bytes expected back ("" = no response expected for this step).
type protoStep struct {
	send string
	want string
}

// runTextScript sends every step and then compares the full concatenated
// response byte-exactly, so missing AND extra bytes both fail.
func runTextScript(t *testing.T, backend string, steps []protoStep) {
	t.Helper()
	conn := newProtoConn(t, backend)
	var want strings.Builder
	for _, st := range steps {
		if _, err := conn.Write([]byte(st.send)); err != nil {
			t.Fatal(err)
		}
		want.WriteString(st.want)
	}
	expectExact(t, conn, []byte(want.String()))
}

// expectExact reads exactly len(want) bytes and requires them equal, then
// verifies no extra bytes follow.
func expectExact(t *testing.T, conn net.Conn, want []byte) {
	t.Helper()
	got := make([]byte, len(want))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatalf("short response: %v\ngot so far: %q\nwant:       %q", err, got, want)
	}
	if !bytes.Equal(got, want) {
		// Find the first divergence for a readable failure.
		i := 0
		for i < len(got) && got[i] == want[i] {
			i++
		}
		t.Fatalf("response diverges at byte %d:\ngot:  %q\nwant: %q", i, got, want)
	}
	conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	var extra [64]byte
	if n, _ := conn.Read(extra[:]); n > 0 {
		t.Fatalf("unexpected extra bytes: %q", extra[:n])
	}
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
}

func TestTextConformance(t *testing.T) {
	cases := []struct {
		name  string
		steps []protoStep
	}{
		{"set_get_delete", []protoStep{
			{"set foo 3 0 5\r\nhello\r\n", "STORED\r\n"},
			{"get foo\r\n", "VALUE foo 3 5\r\nhello\r\nEND\r\n"},
			{"delete foo\r\n", "DELETED\r\n"},
			{"get foo\r\n", "END\r\n"},
			{"delete foo\r\n", "NOT_FOUND\r\n"},
		}},
		{"add_replace", []protoStep{
			{"add k 0 0 2\r\nv1\r\n", "STORED\r\n"},
			{"add k 0 0 2\r\nv2\r\n", "NOT_STORED\r\n"},
			{"replace k 1 0 2\r\nv3\r\n", "STORED\r\n"},
			{"get k\r\n", "VALUE k 1 2\r\nv3\r\nEND\r\n"},
			{"replace missing 0 0 1\r\nx\r\n", "NOT_STORED\r\n"},
		}},
		{"append_prepend", []protoStep{
			{"append missing 0 0 1\r\nx\r\n", "NOT_STORED\r\n"},
			{"prepend missing 0 0 1\r\nx\r\n", "NOT_STORED\r\n"},
			{"set k 7 0 3\r\nmid\r\n", "STORED\r\n"},
			{"append k 0 0 4\r\n-end\r\n", "STORED\r\n"},
			{"prepend k 0 0 4\r\npre-\r\n", "STORED\r\n"},
			// flags survive concatenation, per the spec
			{"get k\r\n", "VALUE k 7 11\r\npre-mid-end\r\nEND\r\n"},
		}},
		{"cas_lifecycle", []protoStep{
			{"set k 0 0 2\r\nv1\r\n", "STORED\r\n"},
			// fresh item: cas unique 1
			{"gets k\r\n", "VALUE k 0 2 1\r\nv1\r\nEND\r\n"},
			{"cas k 0 0 2 1\r\nv2\r\n", "STORED\r\n"},
			// stale token now
			{"cas k 0 0 2 1\r\nv3\r\n", "EXISTS\r\n"},
			{"gets k\r\n", "VALUE k 0 2 2\r\nv2\r\nEND\r\n"},
			{"cas missing 0 0 1 1\r\nx\r\n", "NOT_FOUND\r\n"},
		}},
		{"gets_multi", []protoStep{
			{"set a 1 0 1\r\nA\r\n", "STORED\r\n"},
			{"set b 2 0 1\r\nB\r\n", "STORED\r\n"},
			{"gets a missing b\r\n", "VALUE a 1 1 1\r\nA\r\nVALUE b 2 1 1\r\nB\r\nEND\r\n"},
		}},
		{"incr_decr", []protoStep{
			{"set n 0 0 2\r\n10\r\n", "STORED\r\n"},
			{"incr n 5\r\n", "15\r\n"},
			{"decr n 20\r\n", "0\r\n"}, // floored at zero
			{"incr missing 1\r\n", "NOT_FOUND\r\n"},
			{"set s 0 0 3\r\nabc\r\n", "STORED\r\n"},
			{"incr s 1\r\n", "CLIENT_ERROR cannot increment or decrement non-numeric value\r\n"},
			{"incr n bogus\r\n", "CLIENT_ERROR invalid numeric delta argument\r\n"},
		}},
		{"touch_gat", []protoStep{
			{"set k 5 0 3\r\nval\r\n", "STORED\r\n"},
			{"touch k 100\r\n", "TOUCHED\r\n"},
			{"touch missing 0\r\n", "NOT_FOUND\r\n"},
			// gat returns the value; gats adds the (bumped) cas unique
			{"gat 100 k missing\r\n", "VALUE k 5 3\r\nval\r\nEND\r\n"},
			{"gats 100 k\r\n", "VALUE k 5 3 4\r\nval\r\nEND\r\n"},
		}},
		{"flush_verbosity_version", []protoStep{
			{"set k 0 0 1\r\nv\r\n", "STORED\r\n"},
			{"verbosity 1\r\n", "OK\r\n"},
			{"verbosity 1 noreply\r\n", ""},
			{"flush_all\r\n", "OK\r\n"},
			{"get k\r\n", "END\r\n"},
			{"flush_all 100\r\n", "OK\r\n"},
			{"flush_all noreply\r\n", ""},
			{"version\r\n", "VERSION " + serverVersion + "\r\n"},
		}},
		{"noreply_pipelining", []protoStep{
			{"set a 0 0 1 noreply\r\nA\r\nset b 0 0 1 noreply\r\nB\r\ndelete a noreply\r\nincr b 1 noreply\r\ntouch b 0 noreply\r\nget a b\r\n",
				"VALUE b 0 1\r\nB\r\nEND\r\n"},
		}},
		{"errors", []protoStep{
			{"bogus\r\n", "ERROR\r\n"},
			// whitespace-only line: no command token (fuzz-found panic)
			{" \r\n", "ERROR\r\n"},
			{"   \r\n", "ERROR\r\n"},
			{"set onlykey\r\n", "CLIENT_ERROR bad command line format\r\n"},
			{"set k x 0 1\r\nv\r\n", "CLIENT_ERROR bad command line format\r\n"},
			// Arity failure before the length parse: no swallow, so the
			// orphaned data line is parsed as a (bogus) command.
			{"set k 0 0 1 extra junk\r\nv\r\n", "CLIENT_ERROR bad command line format\r\nERROR\r\n"},
			{"cas k 0 0 1\r\n", "CLIENT_ERROR bad command line format\r\n"},
			{"set k 0 0 3\r\nlonger than declared\r\n", "CLIENT_ERROR bad data chunk\r\nERROR\r\n"},
			{"delete\r\n", "CLIENT_ERROR bad command line format\r\n"},
			{"delete a b c\r\n", "CLIENT_ERROR bad command line format\r\n"},
			{"touch k\r\n", "CLIENT_ERROR bad command line format\r\n"},
			{"incr k\r\n", "CLIENT_ERROR bad command line format\r\n"},
			{"flush_all -1\r\n", "CLIENT_ERROR invalid delay argument\r\n"},
		}},
		{"oversized_and_bad_keys", []protoStep{
			{fmt.Sprintf("set big 0 0 %d\r\n%s\r\n", MaxValueLen+1, strings.Repeat("x", MaxValueLen+1)),
				"SERVER_ERROR object too large for cache\r\n"},
			{fmt.Sprintf("set %s 0 0 1\r\nv\r\n", strings.Repeat("k", MaxKeyLen+1)),
				"CLIENT_ERROR bad command line format\r\n"},
			// oversized noreply set is swallowed silently, connection stays usable
			{fmt.Sprintf("set big 0 0 %d noreply\r\n%s\r\nversion\r\n", MaxValueLen+1, strings.Repeat("x", MaxValueLen+1)),
				"VERSION " + serverVersion + "\r\n"},
		}},
		{"flags_16bit_limit", []protoStep{
			{"set k 65535 0 1\r\nv\r\n", "STORED\r\n"},
			{"get k\r\n", "VALUE k 65535 1\r\nv\r\nEND\r\n"},
			{"set k 65536 0 1\r\nv\r\n", "CLIENT_ERROR bad command line format\r\n"},
		}},
		{"expiry_semantics", []protoStep{
			// negative exptime: stored already expired
			{"set k 0 -1 1\r\nv\r\n", "STORED\r\n"},
			{"get k\r\n", "END\r\n"},
			// relative exptime far in the future
			{"set k2 0 1000 1\r\nv\r\n", "STORED\r\n"},
			{"get k2\r\n", "VALUE k2 0 1\r\nv\r\nEND\r\n"},
		}},
	}
	for _, backend := range protoBackends {
		for _, tc := range cases {
			t.Run(backend+"/"+tc.name, func(t *testing.T) {
				runTextScript(t, backend, tc.steps)
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Binary protocol twin

// binFrame builds a request frame.
func binFrame(op uint8, opaque uint32, cas uint64, ext, key, val []byte) []byte {
	f := make([]byte, binHeaderLen, binHeaderLen+len(ext)+len(key)+len(val))
	f[0] = binMagicReq
	f[1] = op
	binary.BigEndian.PutUint16(f[2:], uint16(len(key)))
	f[4] = uint8(len(ext))
	binary.BigEndian.PutUint32(f[8:], uint32(len(ext)+len(key)+len(val)))
	binary.BigEndian.PutUint32(f[12:], opaque)
	binary.BigEndian.PutUint64(f[16:], cas)
	f = append(f, ext...)
	f = append(f, key...)
	return append(f, val...)
}

// binResFrame builds the exact response frame the server must emit.
func binResFrame(op uint8, status uint16, opaque uint32, cas uint64, ext, key, val []byte) []byte {
	f := make([]byte, binHeaderLen, binHeaderLen+len(ext)+len(key)+len(val))
	f[0] = binMagicRes
	f[1] = op
	binary.BigEndian.PutUint16(f[2:], uint16(len(key)))
	f[4] = uint8(len(ext))
	binary.BigEndian.PutUint16(f[6:], status)
	binary.BigEndian.PutUint32(f[8:], uint32(len(ext)+len(key)+len(val)))
	binary.BigEndian.PutUint32(f[12:], opaque)
	binary.BigEndian.PutUint64(f[16:], cas)
	f = append(f, ext...)
	f = append(f, key...)
	return append(f, val...)
}

func binErrFrame(op uint8, status uint16, opaque uint32) []byte {
	return binResFrame(op, status, opaque, 0, nil, nil, []byte(binStatusMsg(status)))
}

func setExt(flags, expiry uint32) []byte {
	var e [8]byte
	binary.BigEndian.PutUint32(e[:], flags)
	binary.BigEndian.PutUint32(e[4:], expiry)
	return e[:]
}

func flagsExt(flags uint32) []byte {
	var e [4]byte
	binary.BigEndian.PutUint32(e[:], flags)
	return e[:]
}

func incrExt(delta, initial uint64, expiry uint32) []byte {
	var e [20]byte
	binary.BigEndian.PutUint64(e[:], delta)
	binary.BigEndian.PutUint64(e[8:], initial)
	binary.BigEndian.PutUint32(e[16:], expiry)
	return e[:]
}

func u64body(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// binStep is one exchange of raw frames.
type binStep struct {
	send []byte
	want []byte
}

func runBinScript(t *testing.T, backend string, steps []binStep) {
	t.Helper()
	conn := newProtoConn(t, backend)
	var want []byte
	for _, st := range steps {
		if _, err := conn.Write(st.send); err != nil {
			t.Fatal(err)
		}
		want = append(want, st.want...)
	}
	expectExact(t, conn, want)
}

func cat(frames ...[]byte) []byte {
	var out []byte
	for _, f := range frames {
		out = append(out, f...)
	}
	return out
}

func TestBinaryConformance(t *testing.T) {
	key := []byte("bk")
	cases := []struct {
		name  string
		steps []binStep
	}{
		{"set_get_cas_chain", []binStep{
			// SET: fresh item, response cas 1, opaque echoed
			{binFrame(binOpSet, 0xdead0001, 0, setExt(7, 0), key, []byte("v1")),
				binResFrame(binOpSet, binStatusOK, 0xdead0001, 1, nil, nil, nil)},
			// GET: flags in 4B extras, cas 1
			{binFrame(binOpGet, 0xdead0002, 0, nil, key, nil),
				binResFrame(binOpGet, binStatusOK, 0xdead0002, 1, flagsExt(7), nil, []byte("v1"))},
			// GETK echoes the key
			{binFrame(binOpGetK, 0xdead0003, 0, nil, key, nil),
				binResFrame(binOpGetK, binStatusOK, 0xdead0003, 1, flagsExt(7), key, []byte("v1"))},
			// SET with matching cas = compare-and-swap, bumps to 2
			{binFrame(binOpSet, 0xdead0004, 1, setExt(7, 0), key, []byte("v2")),
				binResFrame(binOpSet, binStatusOK, 0xdead0004, 2, nil, nil, nil)},
			// SET with the stale cas: KeyExists
			{binFrame(binOpSet, 0xdead0005, 1, setExt(7, 0), key, []byte("v3")),
				binErrFrame(binOpSet, binStatusKeyExists, 0xdead0005)},
			// DELETE with the stale cas: KeyExists; with the live one: OK
			{binFrame(binOpDelete, 0xdead0006, 1, nil, key, nil),
				binErrFrame(binOpDelete, binStatusKeyExists, 0xdead0006)},
			{binFrame(binOpDelete, 0xdead0007, 2, nil, key, nil),
				binResFrame(binOpDelete, binStatusOK, 0xdead0007, 0, nil, nil, nil)},
			{binFrame(binOpGet, 0xdead0008, 0, nil, key, nil),
				binErrFrame(binOpGet, binStatusKeyNotFound, 0xdead0008)},
		}},
		{"add_replace", []binStep{
			{binFrame(binOpAdd, 1, 0, setExt(0, 0), key, []byte("a")),
				binResFrame(binOpAdd, binStatusOK, 1, 1, nil, nil, nil)},
			{binFrame(binOpAdd, 2, 0, setExt(0, 0), key, []byte("b")),
				binErrFrame(binOpAdd, binStatusKeyExists, 2)},
			{binFrame(binOpReplace, 3, 0, setExt(0, 0), key, []byte("c")),
				binResFrame(binOpReplace, binStatusOK, 3, 2, nil, nil, nil)},
			{binFrame(binOpReplace, 4, 0, setExt(0, 0), []byte("missing"), []byte("x")),
				binErrFrame(binOpReplace, binStatusKeyNotFound, 4)},
		}},
		{"append_prepend", []binStep{
			{binFrame(binOpAppend, 1, 0, nil, key, []byte("x")),
				binErrFrame(binOpAppend, binStatusKeyNotFound, 1)},
			{binFrame(binOpSet, 2, 0, setExt(3, 0), key, []byte("mid")),
				binResFrame(binOpSet, binStatusOK, 2, 1, nil, nil, nil)},
			{binFrame(binOpAppend, 3, 0, nil, key, []byte("-end")),
				binResFrame(binOpAppend, binStatusOK, 3, 2, nil, nil, nil)},
			{binFrame(binOpPrepend, 4, 0, nil, key, []byte("pre-")),
				binResFrame(binOpPrepend, binStatusOK, 4, 3, nil, nil, nil)},
			{binFrame(binOpGet, 5, 0, nil, key, nil),
				binResFrame(binOpGet, binStatusOK, 5, 3, flagsExt(3), nil, []byte("pre-mid-end"))},
		}},
		{"incr_decr", []binStep{
			// INCR with 0xffffffff expiry: no create → miss
			{binFrame(binOpIncr, 1, 0, incrExt(1, 0, 0xffffffff), key, nil),
				binErrFrame(binOpIncr, binStatusKeyNotFound, 1)},
			// INCR with create: seeds initial 10
			{binFrame(binOpIncr, 2, 0, incrExt(5, 10, 0), key, nil),
				binResFrame(binOpIncr, binStatusOK, 2, 1, nil, nil, u64body(10))},
			{binFrame(binOpIncr, 3, 0, incrExt(5, 0, 0xffffffff), key, nil),
				binResFrame(binOpIncr, binStatusOK, 3, 2, nil, nil, u64body(15))},
			// DECR floors at zero
			{binFrame(binOpDecr, 4, 0, incrExt(100, 0, 0xffffffff), key, nil),
				binResFrame(binOpDecr, binStatusOK, 4, 3, nil, nil, u64body(0))},
			// non-numeric value
			{binFrame(binOpSet, 5, 0, setExt(0, 0), []byte("s"), []byte("abc")),
				binResFrame(binOpSet, binStatusOK, 5, 1, nil, nil, nil)},
			{binFrame(binOpIncr, 6, 0, incrExt(1, 0, 0xffffffff), []byte("s"), nil),
				binErrFrame(binOpIncr, binStatusDeltaBadval, 6)},
		}},
		{"quiet_ops", []binStep{
			// SETQ: success suppressed; GETQ miss suppressed; GETKQ miss
			// suppressed; the closing NOOP is the only response
			{cat(
				binFrame(binOpSetQ, 1, 0, setExt(0, 0), key, []byte("q")),
				binFrame(binOpGetQ, 2, 0, nil, []byte("missing"), nil),
				binFrame(binOpGetKQ, 3, 0, nil, []byte("missing"), nil),
				binFrame(binOpGetQ, 4, 0, nil, key, nil),
				binFrame(binOpNoop, 5, 0, nil, nil, nil),
			), cat(
				// GETQ hit DOES respond
				binResFrame(binOpGetQ, binStatusOK, 4, 1, flagsExt(0), nil, []byte("q")),
				binResFrame(binOpNoop, binStatusOK, 5, 0, nil, nil, nil),
			)},
			// DELETEQ success suppressed
			{cat(
				binFrame(binOpDeleteQ, 6, 0, nil, key, nil),
				binFrame(binOpNoop, 7, 0, nil, nil, nil),
			), binResFrame(binOpNoop, binStatusOK, 7, 0, nil, nil, nil)},
			// quiet miss is NOT suppressed for DELETEQ (only GETQ/GETKQ/GATQ)
			{binFrame(binOpDeleteQ, 8, 0, nil, key, nil),
				binErrFrame(binOpDeleteQ, binStatusKeyNotFound, 8)},
		}},
		{"touch_gat", []binStep{
			{binFrame(binOpSet, 1, 0, setExt(9, 0), key, []byte("tv")),
				binResFrame(binOpSet, binStatusOK, 1, 1, nil, nil, nil)},
			{binFrame(binOpTouch, 2, 0, flagsExt(100), key, nil),
				binResFrame(binOpTouch, binStatusOK, 2, 2, nil, nil, nil)},
			{binFrame(binOpGAT, 3, 0, flagsExt(100), key, nil),
				binResFrame(binOpGAT, binStatusOK, 3, 3, flagsExt(9), nil, []byte("tv"))},
			{binFrame(binOpTouch, 4, 0, flagsExt(0), []byte("missing"), nil),
				binErrFrame(binOpTouch, binStatusKeyNotFound, 4)},
			{binFrame(binOpGATQ, 5, 0, flagsExt(0), []byte("missing"), nil), nil},
			{binFrame(binOpNoop, 6, 0, nil, nil, nil),
				binResFrame(binOpNoop, binStatusOK, 6, 0, nil, nil, nil)},
		}},
		{"flush_version_unknown", []binStep{
			{binFrame(binOpSet, 1, 0, setExt(0, 0), key, []byte("v")),
				binResFrame(binOpSet, binStatusOK, 1, 1, nil, nil, nil)},
			{binFrame(binOpFlush, 2, 0, nil, nil, nil),
				binResFrame(binOpFlush, binStatusOK, 2, 0, nil, nil, nil)},
			{binFrame(binOpGet, 3, 0, nil, key, nil),
				binErrFrame(binOpGet, binStatusKeyNotFound, 3)},
			{binFrame(binOpVersion, 4, 0, nil, nil, nil),
				binResFrame(binOpVersion, binStatusOK, 4, 0, nil, nil, []byte(serverVersion))},
			{binFrame(0x55, 5, 0, nil, nil, nil),
				binErrFrame(0x55, binStatusUnknownCmd, 5)},
		}},
		{"invalid_args", []binStep{
			// GET with extras
			{binFrame(binOpGet, 1, 0, flagsExt(0), key, nil),
				binErrFrame(binOpGet, binStatusInvalidArgs, 1)},
			// SET without extras
			{binFrame(binOpSet, 2, 0, nil, key, []byte("v")),
				binErrFrame(binOpSet, binStatusInvalidArgs, 2)},
			// SET with 32-bit flags beyond the 16-bit storage
			{binFrame(binOpSet, 3, 0, setExt(0x10000, 0), key, []byte("v")),
				binErrFrame(binOpSet, binStatusInvalidArgs, 3)},
			// ADD with a cas token
			{binFrame(binOpAdd, 4, 9, setExt(0, 0), key, []byte("v")),
				binErrFrame(binOpAdd, binStatusInvalidArgs, 4)},
			// TOUCH with no extras
			{binFrame(binOpTouch, 5, 0, nil, key, nil),
				binErrFrame(binOpTouch, binStatusInvalidArgs, 5)},
		}},
	}
	for _, backend := range protoBackends {
		for _, tc := range cases {
			t.Run(backend+"/"+tc.name, func(t *testing.T) {
				runBinScript(t, backend, tc.steps)
			})
		}
	}
}

// TestBinaryStatsTerminator checks the STAT contract: key/value packets
// terminated by an empty packet.
func TestBinaryStatsTerminator(t *testing.T) {
	conn := newProtoConn(t, "mem")
	if _, err := conn.Write(binFrame(binOpStat, 42, 0, nil, nil, nil)); err != nil {
		t.Fatal(err)
	}
	sawRows := 0
	for {
		var hdr [binHeaderLen]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			t.Fatal(err)
		}
		if hdr[0] != binMagicRes {
			t.Fatalf("bad magic 0x%02x", hdr[0])
		}
		if got := binary.BigEndian.Uint32(hdr[12:]); got != 42 {
			t.Fatalf("opaque = %d, want 42", got)
		}
		bodyLen := int(binary.BigEndian.Uint32(hdr[8:]))
		if bodyLen == 0 {
			break // terminator
		}
		body := make([]byte, bodyLen)
		if _, err := io.ReadFull(conn, body); err != nil {
			t.Fatal(err)
		}
		sawRows++
	}
	if sawRows < 10 {
		t.Fatalf("only %d stat rows before terminator", sawRows)
	}
}

// TestBinaryFraming rejects: wrong magic closes the connection; a body
// length smaller than key+extras closes the connection.
func TestBinaryFramingRejects(t *testing.T) {
	t.Run("bad_magic", func(t *testing.T) {
		conn := newProtoConn(t, "mem")
		// First frame valid (selects binary), second has a corrupt magic.
		conn.Write(binFrame(binOpNoop, 1, 0, nil, nil, nil))
		bad := binFrame(binOpNoop, 2, 0, nil, nil, nil)
		bad[0] = 0x99
		conn.Write(bad)
		expectClosedAfter(t, conn, binResFrame(binOpNoop, binStatusOK, 1, 0, nil, nil, nil))
	})
	t.Run("bodylen_lt_keylen", func(t *testing.T) {
		conn := newProtoConn(t, "mem")
		f := binFrame(binOpGet, 1, 0, nil, []byte("key"), nil)
		binary.BigEndian.PutUint32(f[8:], 1) // body shorter than the key
		conn.Write(f)
		expectClosedAfter(t, conn, nil)
	})
	t.Run("insane_bodylen", func(t *testing.T) {
		conn := newProtoConn(t, "mem")
		f := binFrame(binOpSet, 1, 0, nil, nil, nil)
		binary.BigEndian.PutUint32(f[8:], 1<<30) // past binInsaneBody
		conn.Write(f)
		expectClosedAfter(t, conn, nil)
	})
}

// expectClosedAfter reads exactly want (possibly empty) and then requires
// EOF — the server must have closed the connection.
func expectClosedAfter(t *testing.T, conn net.Conn, want []byte) {
	t.Helper()
	if len(want) > 0 {
		got := make([]byte, len(want))
		if _, err := io.ReadFull(conn, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("got %q, want %q", got, want)
		}
	}
	var one [1]byte
	if _, err := conn.Read(one[:]); err != io.EOF {
		t.Fatalf("connection still open (read err %v)", err)
	}
}
