package memcache

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Server speaks the memcached wire protocol over TCP, backed by any KV
// (NV-Memcached or a volatile comparator). Both protocols are served from
// the same listener: the first byte of a connection selects binary framing
// (magic 0x80) or the text protocol, exactly as stock memcached
// auto-negotiates.
//
// Text commands: set, add, replace, append, prepend, cas, get, gets, gat,
// gats, delete, incr, decr, touch, stats, flush_all, verbosity, version,
// quit — all with noreply support. Binary: the full common opcode set
// including the quiet (pipelined) variants; see binary.go.
//
// The per-connection reader is allocation-free on the hot path: request
// lines are parsed in place from the bufio buffer (no strings.Split), data
// blocks land in a per-connection reusable buffer, and the whole
// per-connection state is recycled through a sync.Pool. Responses coalesce:
// the write buffer is flushed only when the read side has no more pipelined
// input, so noreply/quiet streams turn into large batched writes.
//
// The backend is shared by all connections — implicit sessions make it safe
// from any goroutine. The maxConns bound caps concurrently served
// connections (connections beyond it wait, they are not refused).
type Server struct {
	ln    net.Listener
	sem   chan struct{}
	kv    KV
	stats func() Stats

	// readonly gates every mutating command (a warm-standby replica serves
	// reads only; its writes come from the replication stream). Flipped off
	// at promotion.
	readonly atomic.Bool

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	timers map[*time.Timer]struct{}
	wg     sync.WaitGroup
}

const serverVersion = "nv-memcached-1.0"

// relativeExpiryCutoff: per the memcached protocol, expiration times up to
// 30 days are relative to now; larger values are absolute unix timestamps.
const relativeExpiryCutoff = 60 * 60 * 24 * 30

// normalizeExp converts a wire exptime to the absolute unix deadline the
// cache stores: 0 = never, negative = already expired, <= 30 days =
// relative to now, else absolute.
func normalizeExp(exp int64, now int64) uint32 {
	switch {
	case exp == 0:
		return 0
	case exp < 0:
		return uint32(now - 1)
	case exp <= relativeExpiryCutoff:
		return uint32(now + exp)
	default:
		return uint32(exp)
	}
}

// NewServer serves kv on addr ("host:port"; ":0" picks a free port).
// maxConns bounds concurrently served connections.
func NewServer(addr string, maxConns int, kv KV, stats func() Stats) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln:     ln,
		sem:    make(chan struct{}, maxConns),
		kv:     kv,
		stats:  stats,
		conns:  make(map[net.Conn]struct{}),
		timers: make(map[*time.Timer]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetReadOnly gates (or ungates) every mutating command on both protocols:
// a read-only server answers stores with "SERVER_ERROR replica is
// read-only" (binary: NOT_STORED status) and serves retrievals normally.
// Used while the cache is a replication follower; promotion flips it off.
func (s *Server) SetReadOnly(v bool) { s.readonly.Store(v) }

const readOnlyMsg = "SERVER_ERROR replica is read-only\r\n"

// Close stops accepting, closes active connections, and cancels pending
// delayed flush_all timers.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	for t := range s.timers {
		t.Stop()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.sem <- struct{}{}
			s.serve(conn)
			<-s.sem
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			conn.Close()
		}()
	}
}

// connState is the reusable per-connection machinery: buffered IO, the
// in-place field splitter, and the request/response scratch buffers. It is
// recycled across connections through connPool.
type connState struct {
	r      *bufio.Reader
	w      *bufio.Writer
	fields [][]byte // views into the reader's buffer, valid until next read
	line   []byte   // overflow accumulator for lines longer than the buffer
	data   []byte   // payload buffer (text data blocks, binary bodies)
	keyBuf []byte   // key copy that survives reading the data block
	num    []byte   // integer rendering scratch
}

var connPool = sync.Pool{New: func() any {
	return &connState{
		r:      bufio.NewReaderSize(nil, 16<<10),
		w:      bufio.NewWriterSize(nil, 16<<10),
		fields: make([][]byte, 0, 16),
		keyBuf: make([]byte, 0, MaxKeyLen+8),
		num:    make([]byte, 0, 32),
	}
}}

// serve runs one connection to completion, auto-detecting the protocol
// from its first byte.
func (s *Server) serve(conn net.Conn) {
	c := connPool.Get().(*connState)
	c.r.Reset(conn)
	c.w.Reset(conn)
	s.serveStream(c)
	c.r.Reset(nil)
	c.w.Reset(nil)
	connPool.Put(c)
}

// serveStream dispatches on the protocol magic. Split out from serve so
// tests and fuzz targets can drive a connState over any reader/writer.
func (s *Server) serveStream(c *connState) {
	first, err := c.r.Peek(1)
	if err != nil {
		return
	}
	if first[0] == binMagicReq {
		s.serveBinary(c)
	} else {
		s.serveText(c)
	}
	c.w.Flush()
}

// readLine returns the next \n-terminated line with the line ending
// trimmed. The returned slice aliases the reader's buffer (or c.line for
// oversized lines) and is valid only until the next read.
func (c *connState) readLine() ([]byte, error) {
	line, err := c.r.ReadSlice('\n')
	if err == nil {
		return trimCRLF(line), nil
	}
	if err != bufio.ErrBufferFull {
		return nil, err
	}
	c.line = append(c.line[:0], line...)
	for {
		line, err = c.r.ReadSlice('\n')
		c.line = append(c.line, line...)
		if err == nil {
			return trimCRLF(c.line), nil
		}
		if err != bufio.ErrBufferFull {
			return nil, err
		}
	}
}

func trimCRLF(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
	}
	if n := len(b); n > 0 && b[n-1] == '\r' {
		b = b[:n-1]
	}
	return b
}

// splitFields splits line on spaces into dst without allocating (beyond
// growing dst's backing array once per connection).
func splitFields(line []byte, dst [][]byte) [][]byte {
	for len(line) > 0 {
		for len(line) > 0 && line[0] == ' ' {
			line = line[1:]
		}
		if len(line) == 0 {
			break
		}
		i := bytes.IndexByte(line, ' ')
		if i < 0 {
			dst = append(dst, line)
			break
		}
		dst = append(dst, line[:i])
		line = line[i+1:]
	}
	return dst
}

// parseUint is an allocation-free strconv.ParseUint(s, 10, 64).
func parseUint(b []byte) (uint64, bool) {
	if len(b) == 0 || len(b) > 20 {
		return 0, false
	}
	var v uint64
	for _, ch := range b {
		if ch < '0' || ch > '9' {
			return 0, false
		}
		d := uint64(ch - '0')
		if v > (^uint64(0)-d)/10 {
			return 0, false
		}
		v = v*10 + d
	}
	return v, true
}

// parseInt accepts an optional leading minus.
func parseInt(b []byte) (int64, bool) {
	neg := false
	if len(b) > 0 && b[0] == '-' {
		neg = true
		b = b[1:]
	}
	v, ok := parseUint(b)
	if !ok || v > 1<<62 {
		return 0, false
	}
	if neg {
		return -int64(v), true
	}
	return int64(v), true
}

// writeUint renders v in decimal without allocating.
func (c *connState) writeUint(v uint64) {
	c.num = strconv.AppendUint(c.num[:0], v, 10)
	c.w.Write(c.num)
}

func (c *connState) writeCRLF() { c.w.WriteString("\r\n") }

// maybeFlush flushes the response buffer only when no more pipelined input
// is waiting — the write-coalescing half of noreply pipelining.
func (c *connState) maybeFlush() error {
	if c.r.Buffered() > 0 {
		return nil
	}
	return c.w.Flush()
}

// ---------------------------------------------------------------------------
// Text protocol

func (s *Server) serveText(c *connState) {
	for {
		line, err := c.readLine()
		if err != nil {
			return
		}
		if len(line) == 0 {
			continue
		}
		c.fields = splitFields(line, c.fields[:0])
		if len(c.fields) == 0 {
			// A line of only spaces: no command token (fuzz-found panic).
			io.WriteString(c.w, "ERROR\r\n")
			if c.maybeFlush() != nil {
				return
			}
			continue
		}
		if !s.dispatchText(c, c.fields) {
			return
		}
		if c.maybeFlush() != nil {
			return
		}
	}
}

// dispatchText runs one parsed command line; false ends the connection.
func (s *Server) dispatchText(c *connState, f [][]byte) bool {
	switch string(f[0]) {
	case "get":
		s.cmdGet(c, f, false)
	case "gets":
		s.cmdGet(c, f, true)
	case "gat":
		s.cmdGat(c, f, false)
	case "gats":
		s.cmdGat(c, f, true)
	case "set", "add", "replace", "append", "prepend", "cas":
		return s.cmdStore(c, f)
	case "delete":
		s.cmdDelete(c, f)
	case "incr", "decr":
		s.cmdIncrDecr(c, f)
	case "touch":
		s.cmdTouch(c, f)
	case "stats":
		s.cmdStats(c)
	case "flush_all":
		s.cmdFlushAll(c, f)
	case "verbosity":
		if !hasNoreply(f, 2) {
			io.WriteString(c.w, "OK\r\n")
		}
	case "version":
		io.WriteString(c.w, "VERSION "+serverVersion+"\r\n")
	case "quit":
		return false
	default:
		io.WriteString(c.w, "ERROR\r\n")
	}
	return true
}

// hasNoreply reports whether field at (the command's noreply position)
// exists and is the noreply token.
func hasNoreply(f [][]byte, at int) bool {
	return len(f) > at && string(f[at]) == "noreply"
}

func clientError(c *connState, msg string) {
	io.WriteString(c.w, "CLIENT_ERROR "+msg+"\r\n")
}

// cmdStore parses set|add|replace|append|prepend|cas
//
//	<verb> <key> <flags> <exptime> <bytes> [<cas unique>] [noreply]\r\n<data>\r\n
//
// Returns false when the connection must close (short read mid-payload).
func (s *Server) cmdStore(c *connState, f [][]byte) bool {
	verb := string(f[0])
	isCas := verb == "cas"
	minFields := 5
	if isCas {
		minFields = 6
	}
	if len(f) < minFields {
		clientError(c, "bad command line format")
		return true
	}
	noreply := hasNoreply(f, minFields)
	if len(f) > minFields+1 || (len(f) == minFields+1 && !noreply) {
		clientError(c, "bad command line format")
		return true
	}
	key := f[1]
	flags, okF := parseUint(f[2])
	expRaw, okE := parseInt(f[3])
	n, okN := parseUint(f[4])
	var casToken uint64
	okC := true
	if isCas {
		casToken, okC = parseUint(f[5])
	}
	if !okN {
		// Unparseable length: the data block cannot be swallowed; the next
		// line is parsed as a command (the client is already desynced).
		if !noreply {
			clientError(c, "bad command line format")
		}
		return true
	}
	badHeader := !okF || !okE || !okC || flags > 0xFFFF ||
		len(key) == 0 || len(key) > MaxKeyLen
	tooLarge := n > uint64(MaxValueLen)
	if badHeader || tooLarge {
		// The length WAS parseable: swallow the data block so the
		// connection stays in sync, then report.
		if ok := discardN(c.r, int64(n)+2); !ok {
			return false
		}
		if noreply {
			return true
		}
		if tooLarge {
			io.WriteString(c.w, "SERVER_ERROR object too large for cache\r\n")
		} else {
			clientError(c, "bad command line format")
		}
		return true
	}
	// The parsed fields alias the read buffer; the key must survive the
	// data-block read below.
	c.keyBuf = append(c.keyBuf[:0], key...)
	key = c.keyBuf
	if cap(c.data) < int(n)+2 {
		c.data = make([]byte, n+2)
	}
	c.data = c.data[:n+2]
	if _, err := io.ReadFull(c.r, c.data); err != nil {
		return false
	}
	if c.data[n] != '\r' || c.data[n+1] != '\n' {
		if !noreply {
			clientError(c, "bad data chunk")
		}
		return true
	}
	value := c.data[:n]
	exp := normalizeExp(expRaw, time.Now().Unix())

	// Gated here, after the data block is swallowed, so the connection
	// stays in sync for the next command.
	if s.readonly.Load() {
		if !noreply {
			io.WriteString(c.w, readOnlyMsg)
		}
		return true
	}

	cache, _ := s.kv.(*Cache)
	var err error
	switch {
	case verb == "set":
		err = s.kv.Set(key, value, uint16(flags), exp)
	case cache == nil:
		err = errBackend
	case verb == "add":
		_, err = cache.Add(key, value, uint16(flags), exp)
	case verb == "replace":
		_, err = cache.Replace(key, value, uint16(flags), exp)
	case verb == "append":
		_, err = cache.Append(key, value, 0)
	case verb == "prepend":
		_, err = cache.Prepend(key, value, 0)
	default: // cas
		_, err = cache.CompareAndSwap(key, value, uint16(flags), exp, casToken)
	}
	if noreply {
		return true
	}
	switch {
	case err == nil:
		io.WriteString(c.w, "STORED\r\n")
	case errors.Is(err, ErrNotStored):
		io.WriteString(c.w, "NOT_STORED\r\n")
	case errors.Is(err, ErrCASConflict):
		io.WriteString(c.w, "EXISTS\r\n")
	case errors.Is(err, ErrNotFound):
		io.WriteString(c.w, "NOT_FOUND\r\n")
	case errors.Is(err, ErrTooLarge):
		io.WriteString(c.w, "SERVER_ERROR object too large for cache\r\n")
	default:
		fmt.Fprintf(c.w, "SERVER_ERROR %v\r\n", err)
	}
	return true
}

var errBackend = errors.New("command not supported by this backend")

// discardN swallows n bytes of payload (a rejected store's data block).
func discardN(r *bufio.Reader, n int64) bool {
	_, err := io.CopyN(io.Discard, r, n)
	return err == nil
}

// writeValue emits one retrieval response:
//
//	VALUE <key> <flags> <bytes> [<cas>]\r\n<data>\r\n
func (c *connState) writeValue(key, v []byte, flags uint16, cas uint64, withCAS bool) {
	c.w.WriteString("VALUE ")
	c.w.Write(key)
	c.w.WriteByte(' ')
	c.writeUint(uint64(flags))
	c.w.WriteByte(' ')
	c.writeUint(uint64(len(v)))
	if withCAS {
		c.w.WriteByte(' ')
		c.writeUint(cas)
	}
	c.writeCRLF()
	c.w.Write(v)
	c.writeCRLF()
}

// cmdGet serves get/gets: one optional VALUE block per requested key,
// then END. gets adds the per-item CAS unique as the fifth header field.
func (s *Server) cmdGet(c *connState, f [][]byte, withCAS bool) {
	cache, _ := s.kv.(*Cache)
	for _, key := range f[1:] {
		if len(key) == 0 || len(key) > MaxKeyLen {
			continue
		}
		if withCAS && cache != nil {
			if v, flags, cas, ok := cache.Gets(key); ok {
				c.writeValue(key, v, flags, cas, true)
			}
		} else if v, flags, ok := s.kv.Get(key); ok {
			c.writeValue(key, v, flags, 0, withCAS)
		}
	}
	io.WriteString(c.w, "END\r\n")
}

// cmdGat serves gat/gats: get-and-touch over a list of keys.
//
//	gat[s] <exptime> <key>+\r\n
func (s *Server) cmdGat(c *connState, f [][]byte, withCAS bool) {
	cache, _ := s.kv.(*Cache)
	if cache == nil || len(f) < 3 {
		io.WriteString(c.w, "ERROR\r\n")
		return
	}
	expRaw, ok := parseInt(f[1])
	if !ok {
		clientError(c, "invalid exptime argument")
		return
	}
	if s.readonly.Load() { // gat mutates the expiry
		io.WriteString(c.w, readOnlyMsg)
		return
	}
	exp := normalizeExp(expRaw, time.Now().Unix())
	for _, key := range f[2:] {
		if len(key) == 0 || len(key) > MaxKeyLen {
			continue
		}
		if v, flags, cas, ok := cache.GetAndTouch(key, exp); ok {
			c.writeValue(key, v, flags, cas, withCAS)
		}
	}
	io.WriteString(c.w, "END\r\n")
}

// cmdDelete parses: delete <key> [noreply].
func (s *Server) cmdDelete(c *connState, f [][]byte) {
	noreply := hasNoreply(f, 2)
	if len(f) < 2 || len(f) > 3 || (len(f) == 3 && !noreply) {
		if !noreply {
			clientError(c, "bad command line format")
		}
		return
	}
	if s.readonly.Load() {
		if !noreply {
			io.WriteString(c.w, readOnlyMsg)
		}
		return
	}
	ok := s.kv.Delete(f[1])
	if noreply {
		return
	}
	if ok {
		io.WriteString(c.w, "DELETED\r\n")
	} else {
		io.WriteString(c.w, "NOT_FOUND\r\n")
	}
}

// cmdIncrDecr parses: incr|decr <key> <delta> [noreply].
func (s *Server) cmdIncrDecr(c *connState, f [][]byte) {
	cache, _ := s.kv.(*Cache)
	noreply := hasNoreply(f, 3)
	reply := func(msg string) {
		if !noreply {
			io.WriteString(c.w, msg)
		}
	}
	if cache == nil || len(f) < 3 {
		reply("CLIENT_ERROR bad command line format\r\n")
		return
	}
	delta, ok := parseUint(f[2])
	if !ok {
		reply("CLIENT_ERROR invalid numeric delta argument\r\n")
		return
	}
	if s.readonly.Load() {
		reply(readOnlyMsg)
		return
	}
	var v uint64
	var err error
	if f[0][0] == 'i' {
		v, err = cache.Incr(f[1], delta)
	} else {
		v, err = cache.Decr(f[1], delta)
	}
	switch {
	case err == nil:
		if !noreply {
			c.writeUint(v)
			c.writeCRLF()
		}
	case errors.Is(err, ErrNotFound):
		reply("NOT_FOUND\r\n")
	default:
		reply("CLIENT_ERROR cannot increment or decrement non-numeric value\r\n")
	}
}

// cmdTouch parses: touch <key> <exptime> [noreply].
func (s *Server) cmdTouch(c *connState, f [][]byte) {
	cache, _ := s.kv.(*Cache)
	noreply := hasNoreply(f, 3)
	reply := func(msg string) {
		if !noreply {
			io.WriteString(c.w, msg)
		}
	}
	if cache == nil || len(f) < 3 {
		reply("CLIENT_ERROR bad command line format\r\n")
		return
	}
	expRaw, ok := parseInt(f[2])
	if !ok {
		reply("CLIENT_ERROR invalid exptime argument\r\n")
		return
	}
	if s.readonly.Load() {
		reply(readOnlyMsg)
		return
	}
	if _, ok := cache.Touch(f[1], normalizeExp(expRaw, time.Now().Unix())); ok {
		reply("TOUCHED\r\n")
	} else {
		reply("NOT_FOUND\r\n")
	}
}

// cmdFlushAll parses: flush_all [delay] [noreply]. The flush itself is a
// durable index walk (Cache.FlushAll); on volatile comparator backends the
// command acknowledges without acting, as before.
func (s *Server) cmdFlushAll(c *connState, f [][]byte) {
	delay := int64(0)
	rest := f[1:]
	if len(rest) > 0 && string(rest[0]) != "noreply" {
		d, ok := parseInt(rest[0])
		if !ok || d < 0 {
			clientError(c, "invalid delay argument")
			return
		}
		delay = d
		rest = rest[1:]
	}
	noreply := len(rest) > 0 && string(rest[0]) == "noreply"
	if s.readonly.Load() {
		if !noreply {
			io.WriteString(c.w, readOnlyMsg)
		}
		return
	}
	if cache, okC := s.kv.(*Cache); okC {
		if delay == 0 {
			cache.FlushAll()
		} else {
			s.afterFunc(time.Duration(delay)*time.Second, func() { cache.FlushAll() })
		}
	}
	if !noreply {
		io.WriteString(c.w, "OK\r\n")
	}
}

// afterFunc schedules fn, tracking the timer so Close cancels it (a flush
// must not fire into a cache that its server has released).
func (s *Server) afterFunc(d time.Duration, fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	var t *time.Timer
	t = time.AfterFunc(d, func() {
		s.mu.Lock()
		_, live := s.timers[t]
		delete(s.timers, t)
		s.mu.Unlock()
		if live {
			fn()
		}
	})
	s.timers[t] = struct{}{}
}

func (s *Server) cmdStats(c *connState) {
	st := s.stats()
	row := func(name string, v uint64) {
		c.w.WriteString("STAT ")
		c.w.WriteString(name)
		c.w.WriteByte(' ')
		c.writeUint(v)
		c.writeCRLF()
	}
	row("cmd_get", st.Gets)
	row("cmd_set", st.Sets)
	row("cmd_touch", st.Touches)
	row("cmd_flush", st.Flushes)
	row("get_hits", st.Hits)
	row("get_misses", st.Misses)
	row("cas_hits", st.CasHits)
	row("cas_badval", st.CasBadval)
	row("cas_misses", st.CasMisses)
	row("evictions", st.Evictions)
	row("evictions_bytes", st.EvictionsBytes)
	row("expired_unfetched", st.Expired)
	row("curr_items", uint64(st.Items))
	row("grow_count", st.GrowCount)
	row("pool_bytes_total", st.PoolBytesTotal)
	row("pool_bytes_used", st.PoolBytesUsed)
	row("repl_seq", st.ReplSeq)
	row("repl_lag_ops", st.ReplLagOps)
	row("repl_reconnects", st.ReplReconnects)
	state := st.ReplState
	if state == "" {
		state = "none" // stats funcs that predate replication
	}
	c.w.WriteString("STAT repl_state ")
	c.w.WriteString(state)
	c.writeCRLF()
	io.WriteString(c.w, "END\r\n")
}
