package memcache

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
)

// Server speaks the memcached text protocol (the subset memtier and most
// clients use: set, get, gets, delete, stats, flush_all, version, quit) over
// TCP, backed by any KV (NV-Memcached or a volatile comparator). The backend
// is shared by all connections — implicit sessions make it safe from any
// goroutine, so connections no longer bind to per-worker handles.
//
// Each accepted connection still takes a worker slot (memcached's
// worker-thread model): the slot count bounds concurrently served
// connections.
type Server struct {
	ln    net.Listener
	slots chan int
	kv    KV
	stats func() Stats

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewServer serves kv on addr ("host:port"; ":0" picks a free port).
func NewServer(addr string, workers int, kv KV, stats func() Stats) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln:    ln,
		slots: make(chan int, workers),
		kv:    kv,
		stats: stats,
		conns: make(map[net.Conn]struct{}),
	}
	for i := 0; i < workers; i++ {
		s.slots <- i
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and closes active connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		slot := <-s.slots
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn, s.kv)
			s.slots <- slot
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			conn.Close()
		}()
	}
}

func (s *Server) serve(conn net.Conn, kv KV) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			return
		}
		line = bytes.TrimRight(line, "\r\n")
		if len(line) == 0 {
			continue
		}
		fields := bytes.Fields(line)
		switch string(fields[0]) {
		case "set", "add", "replace":
			if !s.cmdSet(kv, r, w, fields) {
				return
			}
		case "incr", "decr":
			s.cmdIncrDecr(kv, w, fields)
		case "touch":
			s.cmdTouch(kv, w, fields)
		case "get", "gets":
			s.cmdGet(kv, w, fields)
		case "delete":
			s.cmdDelete(kv, w, fields)
		case "stats":
			s.cmdStats(w)
		case "version":
			io.WriteString(w, "VERSION nv-memcached-1.0\r\n")
		case "flush_all":
			io.WriteString(w, "OK\r\n") // recency reset only; not destructive
		case "quit":
			w.Flush()
			return
		default:
			io.WriteString(w, "ERROR\r\n")
		}
		if w.Flush() != nil {
			return
		}
	}
}

// cmdSet parses: set|add|replace <key> <flags> <exptime> <bytes> [noreply]
// followed by <data>\r\n.
func (s *Server) cmdSet(kv KV, r *bufio.Reader, w *bufio.Writer, fields [][]byte) bool {
	if len(fields) < 5 {
		io.WriteString(w, "CLIENT_ERROR bad command line format\r\n")
		return true
	}
	verb := string(fields[0])
	key := fields[1]
	flags, _ := strconv.ParseUint(string(fields[2]), 10, 16)
	exp, _ := strconv.ParseUint(string(fields[3]), 10, 32)
	n, err := strconv.Atoi(string(fields[4]))
	if err != nil || n < 0 || n > MaxValueLen {
		// Rejected at the header: the client must not send the data block
		// (the next line is parsed as a command, as the protocol tests pin).
		io.WriteString(w, "SERVER_ERROR object too large for cache\r\n")
		return true
	}
	noreply := len(fields) > 5 && string(fields[5]) == "noreply"
	data := make([]byte, n+2)
	if _, err := io.ReadFull(r, data); err != nil {
		return false
	}
	c, _ := kv.(*Cache)
	switch {
	case verb == "set":
		err = kv.Set(key, data[:n], uint16(flags), uint32(exp))
	case c == nil:
		err = errors.New("command not supported by this backend")
	case verb == "add":
		err = c.Add(key, data[:n], uint16(flags), uint32(exp))
	default: // replace
		err = c.Replace(key, data[:n], uint16(flags), uint32(exp))
	}
	if noreply {
		return true
	}
	switch {
	case err == nil:
		io.WriteString(w, "STORED\r\n")
	case errors.Is(err, ErrNotStored):
		io.WriteString(w, "NOT_STORED\r\n")
	default:
		fmt.Fprintf(w, "SERVER_ERROR %v\r\n", err)
	}
	return true
}

// cmdIncrDecr parses: incr|decr <key> <delta> [noreply].
func (s *Server) cmdIncrDecr(kv KV, w *bufio.Writer, fields [][]byte) {
	c, _ := kv.(*Cache)
	if c == nil || len(fields) < 3 {
		io.WriteString(w, "CLIENT_ERROR bad command line format\r\n")
		return
	}
	delta, err := strconv.ParseUint(string(fields[2]), 10, 64)
	if err != nil {
		io.WriteString(w, "CLIENT_ERROR invalid numeric delta argument\r\n")
		return
	}
	var v uint64
	if string(fields[0]) == "incr" {
		v, err = c.Incr(fields[1], delta)
	} else {
		v, err = c.Decr(fields[1], delta)
	}
	switch {
	case err == nil:
		fmt.Fprintf(w, "%d\r\n", v)
	case errors.Is(err, ErrNotFound):
		io.WriteString(w, "NOT_FOUND\r\n")
	default:
		io.WriteString(w, "CLIENT_ERROR cannot increment or decrement non-numeric value\r\n")
	}
}

// cmdTouch parses: touch <key> <exptime> [noreply].
func (s *Server) cmdTouch(kv KV, w *bufio.Writer, fields [][]byte) {
	c, _ := kv.(*Cache)
	if c == nil || len(fields) < 3 {
		io.WriteString(w, "CLIENT_ERROR bad command line format\r\n")
		return
	}
	exp, _ := strconv.ParseUint(string(fields[2]), 10, 32)
	if c.Touch(fields[1], uint32(exp)) {
		io.WriteString(w, "TOUCHED\r\n")
	} else {
		io.WriteString(w, "NOT_FOUND\r\n")
	}
}

func (s *Server) cmdGet(kv KV, w *bufio.Writer, fields [][]byte) {
	for _, key := range fields[1:] {
		if v, flags, ok := kv.Get(key); ok {
			fmt.Fprintf(w, "VALUE %s %d %d\r\n", key, flags, len(v))
			w.Write(v)
			io.WriteString(w, "\r\n")
		}
	}
	io.WriteString(w, "END\r\n")
}

func (s *Server) cmdDelete(kv KV, w *bufio.Writer, fields [][]byte) {
	if len(fields) < 2 {
		io.WriteString(w, "CLIENT_ERROR bad command line format\r\n")
		return
	}
	if kv.Delete(fields[1]) {
		io.WriteString(w, "DELETED\r\n")
	} else {
		io.WriteString(w, "NOT_FOUND\r\n")
	}
}

func (s *Server) cmdStats(w *bufio.Writer) {
	st := s.stats()
	fmt.Fprintf(w, "STAT cmd_get %d\r\n", st.Gets)
	fmt.Fprintf(w, "STAT cmd_set %d\r\n", st.Sets)
	fmt.Fprintf(w, "STAT get_hits %d\r\n", st.Hits)
	fmt.Fprintf(w, "STAT get_misses %d\r\n", st.Misses)
	fmt.Fprintf(w, "STAT evictions %d\r\n", st.Evictions)
	fmt.Fprintf(w, "STAT curr_items %d\r\n", st.Items)
	io.WriteString(w, "END\r\n")
}
