package memcache

// Elastic-capacity behaviour (PR 9): online auto-grow under allocator
// pressure, the logical MaxBytes eviction valve, used-bytes accounting, and
// the crash-consistency of eviction (kill mid-eviction must never resurrect
// an evicted value under another key or leak its extent).

import (
	"bytes"
	"fmt"
	"testing"
)

func TestAutoGrowUnderPressure(t *testing.T) {
	var grown []uint64
	m, err := New(Config{
		MemoryBytes:  4 << 20,
		MaxGrowBytes: 64 << 20,
		Buckets:      1024,
		MaxConns:     2,
		OnGrow:       func(total uint64) { grown = append(grown, total) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	val := make([]byte, 1024)
	for i := 0; i < 8000; i++ {
		key := []byte(fmt.Sprintf("grow-%06d", i))
		if err := m.Set(key, val, 0, 0); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
	}
	st := m.Stats()
	if st.GrowCount == 0 {
		t.Fatal("8000×1KB into a 4MB pool with a 64MB reserve: no grow happened")
	}
	if m.SizeBytes() <= 4<<20 {
		t.Fatalf("SizeBytes = %d, want > initial 4MB", m.SizeBytes())
	}
	if st.PoolBytesTotal != m.SizeBytes() {
		t.Fatalf("PoolBytesTotal = %d, SizeBytes = %d", st.PoolBytesTotal, m.SizeBytes())
	}
	if len(grown) != int(st.GrowCount) {
		t.Fatalf("OnGrow fired %d times, GrowCount = %d", len(grown), st.GrowCount)
	}
	for i := 1; i < len(grown); i++ {
		if grown[i] <= grown[i-1] {
			t.Fatalf("OnGrow totals not increasing: %v", grown)
		}
	}
	if _, _, ok := m.Get([]byte("grow-007999")); !ok {
		t.Fatal("most recent key lost")
	}
}

func TestAutoGrowSharded(t *testing.T) {
	m, err := New(Config{
		MemoryBytes:  8 << 20,
		MaxGrowBytes: 64 << 20,
		Buckets:      4096,
		MaxConns:     4,
		Shards:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	val := make([]byte, 1024)
	for i := 0; i < 12000; i++ {
		key := []byte(fmt.Sprintf("sg-%06d", i))
		if err := m.Set(key, val, 0, 0); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
	}
	if m.Stats().GrowCount == 0 {
		t.Fatal("sharded pool never grew under pressure")
	}
	if _, _, ok := m.Get([]byte("sg-011999")); !ok {
		t.Fatal("most recent key lost")
	}
}

func TestMaxBytesEviction(t *testing.T) {
	m, err := New(Config{MemoryBytes: 64 << 20, MaxBytes: 1 << 20, Buckets: 1024, MaxConns: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	val := make([]byte, 1024)
	for i := 0; i < 4000; i++ {
		key := []byte(fmt.Sprintf("mb-%06d", i))
		if err := m.Set(key, val, 0, 0); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
	}
	st := m.Stats()
	if st.Evictions == 0 || st.EvictionsBytes == 0 {
		t.Fatalf("MaxBytes valve idle: evictions=%d evictions_bytes=%d", st.Evictions, st.EvictionsBytes)
	}
	// The budget holds up to one in-flight entry of slack.
	slack := entrySize([]byte("mb-000000"), val)
	if used := m.UsedBytes(); used > int64(1<<20)+slack {
		t.Fatalf("UsedBytes = %d, exceeds the 1MB budget", used)
	}
	if _, _, ok := m.Get([]byte("mb-003999")); !ok {
		t.Fatal("most recent key evicted")
	}
}

func TestUsedBytesAccounting(t *testing.T) {
	m := newCache(t)
	defer m.Close()
	if got := m.UsedBytes(); got != 0 {
		t.Fatalf("fresh cache UsedBytes = %d", got)
	}
	key, v1, v2 := []byte("acct"), []byte("short"), bytes.Repeat([]byte("x"), 900)
	m.Set(key, v1, 0, 0)
	if got := m.UsedBytes(); got != entrySize(key, v1) {
		t.Fatalf("after set: UsedBytes = %d, want %d", got, entrySize(key, v1))
	}
	m.Set(key, v2, 0, 0) // rewrite larger
	if got := m.UsedBytes(); got != entrySize(key, v2) {
		t.Fatalf("after rewrite: UsedBytes = %d, want %d", got, entrySize(key, v2))
	}
	m.Delete(key)
	if got := m.UsedBytes(); got != 0 {
		t.Fatalf("after delete: UsedBytes = %d, want 0", got)
	}
}

func TestUsedBytesRebuiltOnRecovery(t *testing.T) {
	m := newCache(t)
	want := int64(0)
	for i := 0; i < 200; i++ {
		key := []byte(fmt.Sprintf("rb-%03d", i))
		val := bytes.Repeat([]byte("v"), 1+i%64)
		m.Set(key, val, 0, 0)
		want += entrySize(key, val)
	}
	m.Flush()
	m.Device().Crash()
	m2, _, err := Recover(m.Device(), Config{MemoryBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := m2.UsedBytes(); got != want {
		t.Fatalf("recovered UsedBytes = %d, want %d", got, want)
	}
}

// tortureVal is the unique value bound to torture key i: any recovered value
// that does not match its own key's pattern means an evicted item's extent
// was reused before its delete was durable (cross-key bleed).
func tortureVal(i int) []byte {
	v := make([]byte, 512)
	copy(v, fmt.Sprintf("torture-value-%06d|", i))
	for j := len(fmt.Sprintf("torture-value-%06d|", i)); j < len(v); j++ {
		v[j] = byte(i)
	}
	return v
}

// TestEvictionCrashTorture kills the cache (word-granular, via StoreHook) at
// a sweep of points while eviction is churning, recovers, and asserts the
// delete-before-reuse ordering: every surviving key reads back its own
// value exactly, and the cache stays fully operable (extents of evicted
// items are reusable — no leak).
func TestEvictionCrashTorture(t *testing.T) {
	if testing.Short() {
		t.Skip("crash torture sweep is slow")
	}
	cfg := Config{MemoryBytes: 2 << 20, Buckets: 256, MaxConns: 2, DisableLinkCache: true}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev := m.Device()

	next := 0
	fill := func(c *Cache, n int) error {
		for j := 0; j < n; j++ {
			if err := c.Set([]byte(fmt.Sprintf("t-%06d", next)), tortureVal(next), 0, 0); err != nil {
				return err
			}
			next++
		}
		return nil
	}
	// Reach steady-state memory pressure so every further set evicts.
	if err := fill(m, 4096); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Evictions == 0 {
		t.Fatal("pre-fill did not reach eviction pressure")
	}

	for k := 1; k <= 40; k++ {
		remaining := k * 257 // vary the kill point across eviction's write sequence
		dev.StoreHook = func() {
			remaining--
			if remaining == 0 {
				panic("torture kill")
			}
		}
		aborted := false
		func() {
			defer func() {
				if recover() != nil {
					aborted = true
				}
			}()
			_ = fill(m, 64)
		}()
		dev.StoreHook = nil
		if !aborted {
			continue
		}
		dev.Crash()
		m2, _, err := Recover(dev, cfg)
		if err != nil {
			t.Fatalf("k=%d: recovery after mid-eviction kill: %v", k, err)
		}
		for i := 0; i < next; i++ {
			v, _, ok := m2.Get([]byte(fmt.Sprintf("t-%06d", i)))
			if !ok {
				continue // evicted, or its in-flight set died with the crash
			}
			if !bytes.Equal(v, tortureVal(i)) {
				t.Fatalf("k=%d: key t-%06d corrupt after crash (cross-key bleed)", k, i)
			}
		}
		m = m2
	}

	// The survivor must still absorb a full working set: evicted extents came
	// back to the allocator.
	if err := fill(m, 4096); err != nil {
		t.Fatalf("post-torture fill: %v", err)
	}
}
