package memcache

import (
	"bufio"
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Memtier is a load generator modeled on memtier-benchmark (§6.5): it issues
// a configurable set:get mix with keys drawn uniformly at random from a key
// range, for a fixed duration, and reports throughput. It can drive a KV
// in-process (the Figure 11 harness) or a Server over TCP.
type Memtier struct {
	// KeyRange: keys are "memtier-<i>" for i in [0, KeyRange).
	KeyRange int
	// SetRatio / GetRatio, e.g. 1:4 (the paper's mix).
	SetRatio, GetRatio int
	// ValueLen is the value payload size.
	ValueLen int
	// Threads is the number of client workers (in-process RunKV), and the
	// default connection count for RunTCP when Conns is zero.
	Threads int
	// Conns is the number of concurrent TCP connections RunTCP drives —
	// the connection-scale knob; thousands are fine (one goroutine each).
	Conns int
	// Protocol selects the wire protocol for RunTCP: "text" (default) or
	// "binary".
	Protocol string
	// Duration of the run.
	Duration time.Duration
	// Seed for reproducibility.
	Seed int64
}

func (mt *Memtier) fill() {
	if mt.KeyRange == 0 {
		mt.KeyRange = 10000
	}
	if mt.SetRatio == 0 && mt.GetRatio == 0 {
		mt.SetRatio, mt.GetRatio = 1, 4
	}
	if mt.ValueLen == 0 {
		mt.ValueLen = 64
	}
	if mt.Threads == 0 {
		mt.Threads = 4
	}
	if mt.Duration == 0 {
		mt.Duration = time.Second
	}
	if mt.Seed == 0 {
		mt.Seed = 42
	}
	if mt.Conns == 0 {
		mt.Conns = mt.Threads
	}
	if mt.Protocol == "" {
		mt.Protocol = "text"
	}
}

// MemtierResult reports one run.
type MemtierResult struct {
	Ops        uint64
	Elapsed    time.Duration
	Throughput float64 // ops/sec
	Hits       uint64
	Misses     uint64

	// End-to-end per-request latency percentiles (RunTCP only): measured
	// from the first byte of the request written to the full response
	// parsed, per connection, merged across all connections.
	P50, P99, P999 time.Duration
	// Conns is the connection count the run actually used.
	Conns int
}

// Key renders the i-th key.
func (mt *Memtier) Key(dst []byte, i int) []byte {
	dst = append(dst, "memtier-"...)
	return formatKey(dst, uint64(i))
}

// Preload inserts values for half the key range (the paper warms the cache
// with "items covering half of the key range" before each experiment).
func (mt *Memtier) Preload(kv KV) error {
	mt.fill()
	val := bytes.Repeat([]byte{0xAB}, mt.ValueLen)
	var kb [32]byte
	for i := 0; i < mt.KeyRange/2; i++ {
		if err := kv.Set(mt.Key(kb[:0], i*2), val, 0, 0); err != nil {
			return err
		}
	}
	return nil
}

// PreloadTCP warms a server over TCP with half the key range.
func (mt *Memtier) PreloadTCP(addr string) error {
	mt.fill()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	val := bytes.Repeat([]byte{0xAB}, mt.ValueLen)
	var kb [32]byte
	for i := 0; i < mt.KeyRange/2; i++ {
		k := mt.Key(kb[:0], i*2)
		fmt.Fprintf(w, "set %s 0 0 %d\r\n", k, len(val))
		w.Write(val)
		w.WriteString("\r\n")
		if err := w.Flush(); err != nil {
			return err
		}
		line, err := r.ReadString('\n')
		if err != nil {
			return err
		}
		if line != "STORED\r\n" {
			return fmt.Errorf("memtier: preload got %q", line)
		}
	}
	return nil
}

// RunKV drives the mix against a shared KV in-process (implementations are
// safe for concurrent use; NV-Memcached draws implicit sessions).
func (mt *Memtier) RunKV(kv KV) MemtierResult {
	mt.fill()
	var ops, hits, misses atomic.Uint64
	var stop atomic.Bool
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < mt.Threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(mt.Seed + int64(t)))
			val := bytes.Repeat([]byte{0xCD}, mt.ValueLen)
			var kb [32]byte
			n := uint64(0)
			for !stop.Load() {
				for b := 0; b < 32; b++ {
					k := mt.Key(kb[:0], rng.Intn(mt.KeyRange))
					if rng.Intn(mt.SetRatio+mt.GetRatio) < mt.SetRatio {
						kv.Set(k, val, 0, 0)
					} else if _, _, ok := kv.Get(k); ok {
						hits.Add(1)
					} else {
						misses.Add(1)
					}
					n++
				}
			}
			ops.Add(n)
		}(t)
	}
	time.Sleep(mt.Duration)
	stop.Store(true)
	wg.Wait()
	el := time.Since(start)
	return MemtierResult{
		Ops: ops.Load(), Elapsed: el,
		Throughput: float64(ops.Load()) / el.Seconds(),
		Hits:       hits.Load(), Misses: misses.Load(),
	}
}

// RunTCP drives the mix against a memcached server over TCP with mt.Conns
// concurrent connections speaking mt.Protocol ("text" or "binary"), and
// measures per-request end-to-end latency into per-connection histograms
// merged into the result's p50/p99/p999.
func (mt *Memtier) RunTCP(addr string) (MemtierResult, error) {
	mt.fill()
	var ops, hits, misses atomic.Uint64
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, mt.Conns)
	hists := make([]*LatencyHist, mt.Conns)
	binary := mt.Protocol == "binary"
	start := time.Now()
	for t := 0; t < mt.Conns; t++ {
		wg.Add(1)
		h := &LatencyHist{}
		hists[t] = h
		go func(t int, h *LatencyHist) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			w := &memtierConn{
				r:   bufio.NewReader(conn),
				w:   bufio.NewWriter(conn),
				rng: rand.New(rand.NewSource(mt.Seed + int64(t))),
				val: bytes.Repeat([]byte{0xEF}, mt.ValueLen),
			}
			n := uint64(0)
			for !stop.Load() {
				k := mt.Key(w.kb[:0], w.rng.Intn(mt.KeyRange))
				isSet := w.rng.Intn(mt.SetRatio+mt.GetRatio) < mt.SetRatio
				t0 := time.Now()
				var hit bool
				if binary {
					hit, err = w.opBinary(k, isSet)
				} else {
					hit, err = w.opText(k, isSet)
				}
				if err != nil {
					errs <- err
					return
				}
				h.Record(time.Since(t0))
				if !isSet {
					if hit {
						hits.Add(1)
					} else {
						misses.Add(1)
					}
				}
				n++
			}
			ops.Add(n)
		}(t, h)
	}
	time.Sleep(mt.Duration)
	stop.Store(true)
	wg.Wait()
	el := time.Since(start)
	select {
	case err := <-errs:
		return MemtierResult{}, err
	default:
	}
	var merged LatencyHist
	for _, h := range hists {
		merged.Merge(h)
	}
	return MemtierResult{
		Ops: ops.Load(), Elapsed: el,
		Throughput: float64(ops.Load()) / el.Seconds(),
		Hits:       hits.Load(), Misses: misses.Load(),
		P50:   merged.Percentile(50),
		P99:   merged.Percentile(99),
		P999:  merged.Percentile(99.9),
		Conns: mt.Conns,
	}, nil
}

// memtierConn is one load connection's client-side state.
type memtierConn struct {
	r   *bufio.Reader
	w   *bufio.Writer
	rng *rand.Rand
	val []byte
	kb  [32]byte
	buf []byte
}

// opText issues one text-protocol set or get and parses the response.
func (c *memtierConn) opText(k []byte, isSet bool) (hit bool, err error) {
	if isSet {
		fmt.Fprintf(c.w, "set %s 0 0 %d\r\n", k, len(c.val))
		c.w.Write(c.val)
		c.w.WriteString("\r\n")
		if err := c.w.Flush(); err != nil {
			return false, err
		}
		line, err := c.r.ReadString('\n')
		if err != nil {
			return false, err
		}
		if line != "STORED\r\n" {
			return false, fmt.Errorf("memtier: set got %q", line)
		}
		return false, nil
	}
	fmt.Fprintf(c.w, "get %s\r\n", k)
	if err := c.w.Flush(); err != nil {
		return false, err
	}
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return false, err
		}
		if line == "END\r\n" {
			return hit, nil
		}
		if len(line) > 5 && line[:5] == "VALUE" {
			parts := bytes.Fields([]byte(line))
			sz, _ := strconv.Atoi(string(parts[3]))
			if cap(c.buf) < sz+2 {
				c.buf = make([]byte, sz+2)
			}
			if _, err := readFull(c.r, c.buf[:sz+2]); err != nil {
				return false, err
			}
			hit = true
		}
	}
}

// opBinary issues one binary-protocol SET or GET and parses the response
// frame (status 0x0000 = hit / stored, 0x0001 = miss).
func (c *memtierConn) opBinary(k []byte, isSet bool) (hit bool, err error) {
	var hdr [binHeaderLen]byte
	hdr[0] = binMagicReq
	if isSet {
		hdr[1] = binOpSet
		putU16(hdr[2:], uint16(len(k)))
		hdr[4] = 8
		putU32(hdr[8:], uint32(8+len(k)+len(c.val)))
		c.w.Write(hdr[:])
		var ext [8]byte // flags 0, expiry 0
		c.w.Write(ext[:])
		c.w.Write(k)
		c.w.Write(c.val)
	} else {
		hdr[1] = binOpGet
		putU16(hdr[2:], uint16(len(k)))
		putU32(hdr[8:], uint32(len(k)))
		c.w.Write(hdr[:])
		c.w.Write(k)
	}
	if err := c.w.Flush(); err != nil {
		return false, err
	}
	var res [binHeaderLen]byte
	if _, err := readFull(c.r, res[:]); err != nil {
		return false, err
	}
	if res[0] != binMagicRes {
		return false, fmt.Errorf("memtier: bad response magic 0x%02x", res[0])
	}
	status := uint16(res[6])<<8 | uint16(res[7])
	bodyLen := int(uint32(res[8])<<24 | uint32(res[9])<<16 | uint32(res[10])<<8 | uint32(res[11]))
	if bodyLen > 0 {
		if cap(c.buf) < bodyLen {
			c.buf = make([]byte, bodyLen)
		}
		if _, err := readFull(c.r, c.buf[:bodyLen]); err != nil {
			return false, err
		}
	}
	switch status {
	case 0x0000:
		return true, nil
	case 0x0001: // key not found
		return false, nil
	default:
		return false, fmt.Errorf("memtier: op status 0x%04x", status)
	}
}

func putU16(b []byte, v uint16) { b[0] = byte(v >> 8); b[1] = byte(v) }
func putU32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

func readFull(r *bufio.Reader, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := r.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
