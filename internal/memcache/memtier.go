package memcache

import (
	"bufio"
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Memtier is a load generator modeled on memtier-benchmark (§6.5): it issues
// a configurable set:get mix with keys drawn uniformly at random from a key
// range, for a fixed duration, and reports throughput. It can drive a KV
// in-process (the Figure 11 harness) or a Server over TCP.
type Memtier struct {
	// KeyRange: keys are "memtier-<i>" for i in [0, KeyRange).
	KeyRange int
	// SetRatio / GetRatio, e.g. 1:4 (the paper's mix).
	SetRatio, GetRatio int
	// ValueLen is the value payload size.
	ValueLen int
	// Threads is the number of client workers.
	Threads int
	// Duration of the run.
	Duration time.Duration
	// Seed for reproducibility.
	Seed int64
}

func (mt *Memtier) fill() {
	if mt.KeyRange == 0 {
		mt.KeyRange = 10000
	}
	if mt.SetRatio == 0 && mt.GetRatio == 0 {
		mt.SetRatio, mt.GetRatio = 1, 4
	}
	if mt.ValueLen == 0 {
		mt.ValueLen = 64
	}
	if mt.Threads == 0 {
		mt.Threads = 4
	}
	if mt.Duration == 0 {
		mt.Duration = time.Second
	}
	if mt.Seed == 0 {
		mt.Seed = 42
	}
}

// MemtierResult reports one run.
type MemtierResult struct {
	Ops        uint64
	Elapsed    time.Duration
	Throughput float64 // ops/sec
	Hits       uint64
	Misses     uint64
}

// Key renders the i-th key.
func (mt *Memtier) Key(dst []byte, i int) []byte {
	dst = append(dst, "memtier-"...)
	return formatKey(dst, uint64(i))
}

// Preload inserts values for half the key range (the paper warms the cache
// with "items covering half of the key range" before each experiment).
func (mt *Memtier) Preload(kv KV) error {
	mt.fill()
	val := bytes.Repeat([]byte{0xAB}, mt.ValueLen)
	var kb [32]byte
	for i := 0; i < mt.KeyRange/2; i++ {
		if err := kv.Set(mt.Key(kb[:0], i*2), val, 0, 0); err != nil {
			return err
		}
	}
	return nil
}

// PreloadTCP warms a server over TCP with half the key range.
func (mt *Memtier) PreloadTCP(addr string) error {
	mt.fill()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	val := bytes.Repeat([]byte{0xAB}, mt.ValueLen)
	var kb [32]byte
	for i := 0; i < mt.KeyRange/2; i++ {
		k := mt.Key(kb[:0], i*2)
		fmt.Fprintf(w, "set %s 0 0 %d\r\n", k, len(val))
		w.Write(val)
		w.WriteString("\r\n")
		if err := w.Flush(); err != nil {
			return err
		}
		line, err := r.ReadString('\n')
		if err != nil {
			return err
		}
		if line != "STORED\r\n" {
			return fmt.Errorf("memtier: preload got %q", line)
		}
	}
	return nil
}

// RunKV drives the mix against a shared KV in-process (implementations are
// safe for concurrent use; NV-Memcached draws implicit sessions).
func (mt *Memtier) RunKV(kv KV) MemtierResult {
	mt.fill()
	var ops, hits, misses atomic.Uint64
	var stop atomic.Bool
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < mt.Threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(mt.Seed + int64(t)))
			val := bytes.Repeat([]byte{0xCD}, mt.ValueLen)
			var kb [32]byte
			n := uint64(0)
			for !stop.Load() {
				for b := 0; b < 32; b++ {
					k := mt.Key(kb[:0], rng.Intn(mt.KeyRange))
					if rng.Intn(mt.SetRatio+mt.GetRatio) < mt.SetRatio {
						kv.Set(k, val, 0, 0)
					} else if _, _, ok := kv.Get(k); ok {
						hits.Add(1)
					} else {
						misses.Add(1)
					}
					n++
				}
			}
			ops.Add(n)
		}(t)
	}
	time.Sleep(mt.Duration)
	stop.Store(true)
	wg.Wait()
	el := time.Since(start)
	return MemtierResult{
		Ops: ops.Load(), Elapsed: el,
		Throughput: float64(ops.Load()) / el.Seconds(),
		Hits:       hits.Load(), Misses: misses.Load(),
	}
}

// RunTCP drives the mix against a memcached server over TCP.
func (mt *Memtier) RunTCP(addr string) (MemtierResult, error) {
	mt.fill()
	var ops, hits, misses atomic.Uint64
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, mt.Threads)
	start := time.Now()
	for t := 0; t < mt.Threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			w := bufio.NewWriter(conn)
			rng := rand.New(rand.NewSource(mt.Seed + int64(t)))
			val := bytes.Repeat([]byte{0xEF}, mt.ValueLen)
			var kb [32]byte
			n := uint64(0)
			for !stop.Load() {
				k := mt.Key(kb[:0], rng.Intn(mt.KeyRange))
				if rng.Intn(mt.SetRatio+mt.GetRatio) < mt.SetRatio {
					fmt.Fprintf(w, "set %s 0 0 %d\r\n", k, len(val))
					w.Write(val)
					w.WriteString("\r\n")
					w.Flush()
					line, err := r.ReadString('\n')
					if err != nil {
						errs <- err
						return
					}
					if line != "STORED\r\n" {
						errs <- fmt.Errorf("memtier: set got %q", line)
						return
					}
				} else {
					fmt.Fprintf(w, "get %s\r\n", k)
					w.Flush()
					hit := false
					for {
						line, err := r.ReadString('\n')
						if err != nil {
							errs <- err
							return
						}
						if line == "END\r\n" {
							break
						}
						if len(line) > 5 && line[:5] == "VALUE" {
							parts := bytes.Fields([]byte(line))
							sz, _ := strconv.Atoi(string(parts[3]))
							buf := make([]byte, sz+2)
							if _, err := readFull(r, buf); err != nil {
								errs <- err
								return
							}
							hit = true
						}
					}
					if hit {
						hits.Add(1)
					} else {
						misses.Add(1)
					}
				}
				n++
			}
			ops.Add(n)
		}(t)
	}
	time.Sleep(mt.Duration)
	stop.Store(true)
	wg.Wait()
	el := time.Since(start)
	select {
	case err := <-errs:
		return MemtierResult{}, err
	default:
	}
	return MemtierResult{
		Ops: ops.Load(), Elapsed: el,
		Throughput: float64(ops.Load()) / el.Seconds(),
		Hits:       hits.Load(), Misses: misses.Load(),
	}, nil
}

func readFull(r *bufio.Reader, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := r.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
