package memcache

// Native fuzz targets for the wire-protocol parsers. Both targets drive the
// real per-connection handler (serveStream) over an in-memory stream whose
// read boundaries are fuzz-controlled, so requests split at arbitrary
// points across Read calls are covered — the classic parser trap. The
// cache behind the server is shared across executions (creating a durable
// device per exec would drown the fuzzer in setup).
//
// Invariants: the handler must never panic or hang, and every binary
// response emitted must be a well-formed 0x81 frame whose body length
// matches the bytes that follow.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

var (
	fuzzSrvOnce sync.Once
	fuzzSrv     *Server
)

// fuzzServer returns a listener-less Server over a shared cache: serveStream
// needs only the kv, stats, and timer plumbing.
func fuzzServer(tb testing.TB) *Server {
	fuzzSrvOnce.Do(func() {
		m, err := New(Config{MemoryBytes: 64 << 20, Buckets: 1 << 10, MaxConns: 8})
		if err != nil {
			tb.Fatal(err)
		}
		fuzzSrv = &Server{
			kv:     m,
			stats:  m.Stats,
			conns:  make(map[net.Conn]struct{}),
			timers: make(map[*time.Timer]struct{}),
		}
	})
	return fuzzSrv
}

// chunkReader yields data in fuzz-chosen chunk sizes, forcing split reads.
type chunkReader struct {
	data  []byte
	chunk int
}

func (r *chunkReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := r.chunk
	if n <= 0 {
		n = 1
	}
	if n > len(r.data) {
		n = len(r.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

// fuzzServe runs one input through the connection handler and returns the
// raw response bytes.
func fuzzServe(tb testing.TB, input []byte, chunk int) []byte {
	s := fuzzServer(tb)
	c := &connState{
		r:      bufio.NewReaderSize(&chunkReader{data: input, chunk: chunk}, 16<<10),
		w:      bufio.NewWriterSize(nil, 16<<10),
		fields: make([][]byte, 0, 16),
		keyBuf: make([]byte, 0, MaxKeyLen+8),
		num:    make([]byte, 0, 32),
	}
	var out bytes.Buffer
	c.w.Reset(&out)
	s.serveStream(c)
	return out.Bytes()
}

func FuzzTextRequest(f *testing.F) {
	seeds := []string{
		"get foo\r\n",
		"gets a b c\r\n",
		"set k 3 0 5\r\nhello\r\nget k\r\n",
		"set k 0 0 5 noreply\r\nhello\r\ndelete k noreply\r\n",
		"add k 0 0 1\r\nx\r\nreplace k 0 0 1\r\ny\r\n",
		"append k 0 0 1\r\nz\r\nprepend k 0 0 1\r\nw\r\n",
		"cas k 1 0 2 42\r\nhi\r\n",
		"incr n 5\r\ndecr n 3\r\n",
		"touch k 100\r\ngat 50 k\r\ngats 50 k other\r\n",
		"stats\r\nversion\r\nverbosity 1\r\n",
		"flush_all\r\nflush_all 30\r\nflush_all noreply\r\n",
		"set big 0 0 99999\r\n",
		"set k 0 0 -1\r\n",
		"set k 99999999999999999999 0 1\r\nv\r\n",
		"quit\r\n",
		"\r\n\r\n\r\n",
		"set " + string(bytes.Repeat([]byte("k"), 300)) + " 0 0 1\r\nv\r\n",
	}
	for _, s := range seeds {
		for _, chunk := range []int{1, 3, 16 << 10} {
			f.Add([]byte(s), chunk)
		}
	}
	f.Fuzz(func(t *testing.T, input []byte, chunk int) {
		if len(input) > 1<<16 {
			return // bound per-exec work, not coverage
		}
		// Force the text handler even when the first byte is 0x80: text
		// parsing must survive arbitrary bytes mid-stream anyway.
		if len(input) > 0 && input[0] == binMagicReq {
			input[0] = 'g'
		}
		fuzzServe(t, input, chunk)
	})
}

func FuzzBinaryRequest(f *testing.F) {
	frame := func(op uint8, cas uint64, ext, key, val []byte) []byte {
		return binFrame(op, 0xfeedface, cas, ext, key, val)
	}
	seeds := [][]byte{
		frame(binOpSet, 0, setExt(1, 0), []byte("k"), []byte("v")),
		frame(binOpGet, 0, nil, []byte("k"), nil),
		frame(binOpGetK, 0, nil, []byte("k"), nil),
		cat(
			frame(binOpSetQ, 0, setExt(0, 0), []byte("q"), []byte("x")),
			frame(binOpGetQ, 0, nil, []byte("q"), nil),
			frame(binOpNoop, 0, nil, nil, nil),
		),
		frame(binOpDelete, 3, nil, []byte("k"), nil),
		frame(binOpIncr, 0, incrExt(1, 10, 0), []byte("n"), nil),
		frame(binOpDecr, 0, incrExt(1, 0, 0xffffffff), []byte("n"), nil),
		frame(binOpTouch, 0, flagsExt(60), []byte("k"), nil),
		frame(binOpGAT, 0, flagsExt(60), []byte("k"), nil),
		frame(binOpAppend, 0, nil, []byte("k"), []byte("+")),
		frame(binOpStat, 0, nil, nil, nil),
		frame(binOpVersion, 0, nil, nil, nil),
		frame(binOpFlush, 0, nil, nil, nil),
		frame(binOpQuit, 0, nil, nil, nil),
		frame(0x42, 0, nil, nil, nil), // unknown opcode
		// Truncated header.
		{binMagicReq, binOpGet, 0, 1},
		// Oversized body length (swallowed, answered E2BIG).
		func() []byte {
			f := frame(binOpSet, 0, nil, nil, nil)
			binary.BigEndian.PutUint32(f[8:], binMaxBody+1)
			return f
		}(),
		// Insane body length (connection must close, not allocate).
		func() []byte {
			f := frame(binOpSet, 0, nil, nil, nil)
			binary.BigEndian.PutUint32(f[8:], 1<<30)
			return f
		}(),
		// bodyLen < keyLen + extLen (inconsistent framing).
		func() []byte {
			f := frame(binOpGet, 0, nil, []byte("key"), nil)
			binary.BigEndian.PutUint32(f[8:], 1)
			return f
		}(),
	}
	for _, s := range seeds {
		for _, chunk := range []int{1, 7, 16 << 10} {
			f.Add(s, chunk)
		}
	}
	f.Fuzz(func(t *testing.T, input []byte, chunk int) {
		if len(input) > 1<<16 {
			return
		}
		// Force binary framing: serveStream dispatches on the first byte.
		if len(input) > 0 {
			input[0] = binMagicReq
		} else {
			return
		}
		out := fuzzServe(t, input, chunk)
		// Every emitted response must be a well-formed frame.
		for len(out) > 0 {
			if len(out) < binHeaderLen {
				t.Fatalf("trailing partial response header (%d bytes): %x", len(out), out)
			}
			if out[0] != binMagicRes {
				t.Fatalf("response magic 0x%02x", out[0])
			}
			keyLen := int(binary.BigEndian.Uint16(out[2:]))
			extLen := int(out[4])
			bodyLen := int(binary.BigEndian.Uint32(out[8:]))
			if bodyLen < keyLen+extLen {
				t.Fatalf("response bodyLen %d < key %d + ext %d", bodyLen, keyLen, extLen)
			}
			if len(out) < binHeaderLen+bodyLen {
				t.Fatalf("response body truncated: want %d, have %d", bodyLen, len(out)-binHeaderLen)
			}
			out = out[binHeaderLen+bodyLen:]
		}
	})
}
