package memcache

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// TestShardedCache exercises the Shards > 1 construction path: the same
// cache semantics over a hash-routed pool, including the durable expiry
// sweep whose index entries now live spread across shards.
func TestShardedCache(t *testing.T) {
	c, err := New(Config{MemoryBytes: 64 << 20, Buckets: 4096, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Pool() == nil || c.Runtime() != nil || c.Device() != nil {
		t.Fatal("sharded cache should expose a pool and no single runtime/device")
	}
	if got := c.Pool().Shards(); got != 4 {
		t.Fatalf("pool has %d shards, want 4", got)
	}

	const n = 2000
	key := func(i int) []byte { return fmt.Appendf(nil, "item-%05d", i) }
	val := func(i int) []byte { return fmt.Appendf(nil, "value-%05d", i) }
	for i := 0; i < n; i++ {
		if err := c.Set(key(i), val(i), uint16(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		v, flags, ok := c.Get(key(i))
		if !ok || !bytes.Equal(v, val(i)) || flags != uint16(i) {
			t.Fatalf("Get(%d) = %q, %d, %v", i, v, flags, ok)
		}
	}
	if st := c.Stats(); st.Items != n {
		t.Fatalf("Items = %d, want %d", st.Items, n)
	}
	if !c.Delete(key(0)) || c.Delete(key(0)) {
		t.Fatal("Delete semantics broken on sharded cache")
	}

	// Expiry: deadline-indexed items spread over all shards still sweep.
	now := time.Now().Unix()
	for i := 0; i < 100; i++ {
		if err := c.Set(fmt.Appendf(nil, "exp-%03d", i), []byte("v"), 0, uint32(now+1)); err != nil {
			t.Fatal(err)
		}
	}
	if removed := c.SweepExpired(now + 2); removed != 100 {
		t.Fatalf("SweepExpired removed %d, want 100", removed)
	}
}

// TestShardedCacheFileRecovery is the sharded kill -9 analogue in-process:
// populate a file-backed 2-shard cache, Close, reopen the directory through
// New with the same Shards, and find every item again.
func TestShardedCacheFileRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{MemoryBytes: 32 << 20, Buckets: 4096, Shards: 2, File: dir}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	key := func(i int) []byte { return fmt.Appendf(nil, "item-%05d", i) }
	val := func(i int) []byte { return fmt.Appendf(nil, "value-%05d", i) }
	for i := 0; i < n; i++ {
		if err := c.Set(key(i), val(i), 7, 0); err != nil {
			t.Fatal(err)
		}
	}
	if c.Recovered() {
		t.Fatal("fresh pool claims to be recovered")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if !c2.Recovered() {
		t.Fatal("reopened pool does not report Recovered")
	}
	if rs := c2.RecoveryStats(); rs.ObjectsChecked == 0 {
		t.Fatalf("aggregated recovery stats empty: %+v", rs)
	}
	if st := c2.Stats(); st.Items != n {
		t.Fatalf("rebuilt item count = %d, want %d", st.Items, n)
	}
	for i := 0; i < n; i++ {
		v, flags, ok := c2.Get(key(i))
		if !ok || !bytes.Equal(v, val(i)) || flags != 7 {
			t.Fatalf("Get(%d) after recovery = %q, %d, %v", i, v, flags, ok)
		}
	}
}
