package memcache

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
)

// dialServer spins up a server over a fresh cache and returns a connected
// text-protocol session.
func dialServer(t *testing.T) (*Cache, *Server, *bufio.ReadWriter, net.Conn) {
	t.Helper()
	m, err := New(Config{MemoryBytes: 32 << 20, Buckets: 256, MaxConns: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer("127.0.0.1:0", 2, m, m.Stats)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	rw := bufio.NewReadWriter(bufio.NewReader(conn), bufio.NewWriter(conn))
	return m, srv, rw, conn
}

func send(t *testing.T, rw *bufio.ReadWriter, lines ...string) {
	t.Helper()
	for _, l := range lines {
		rw.WriteString(l + "\r\n")
	}
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}
}

func expect(t *testing.T, rw *bufio.ReadWriter, want string) {
	t.Helper()
	line, err := rw.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimRight(line, "\r\n") != want {
		t.Fatalf("got %q, want %q", line, want)
	}
}

func TestProtocolSetGetDelete(t *testing.T) {
	_, _, rw, _ := dialServer(t)
	send(t, rw, "set foo 3 0 5", "hello")
	expect(t, rw, "STORED")
	send(t, rw, "get foo")
	expect(t, rw, "VALUE foo 3 5")
	expect(t, rw, "hello")
	expect(t, rw, "END")
	send(t, rw, "delete foo")
	expect(t, rw, "DELETED")
	send(t, rw, "get foo")
	expect(t, rw, "END")
	send(t, rw, "delete foo")
	expect(t, rw, "NOT_FOUND")
}

func TestProtocolMultiGet(t *testing.T) {
	_, _, rw, _ := dialServer(t)
	send(t, rw, "set a 0 0 1", "A")
	expect(t, rw, "STORED")
	send(t, rw, "set b 0 0 1", "B")
	expect(t, rw, "STORED")
	send(t, rw, "get a missing b")
	expect(t, rw, "VALUE a 0 1")
	expect(t, rw, "A")
	expect(t, rw, "VALUE b 0 1")
	expect(t, rw, "B")
	expect(t, rw, "END")
}

func TestProtocolNoreply(t *testing.T) {
	_, _, rw, _ := dialServer(t)
	send(t, rw, "set k 0 0 2 noreply", "xy", "get k")
	expect(t, rw, "VALUE k 0 2")
	expect(t, rw, "xy")
	expect(t, rw, "END")
}

func TestProtocolErrors(t *testing.T) {
	_, _, rw, _ := dialServer(t)
	send(t, rw, "bogus")
	expect(t, rw, "ERROR")
	send(t, rw, "set onlykey")
	expect(t, rw, "CLIENT_ERROR bad command line format")
	// An oversized set with a parseable length: the server swallows the
	// declared data block (keeping the connection in sync, as stock
	// memcached does) and reports SERVER_ERROR.
	big := strings.Repeat("x", MaxValueLen+1)
	send(t, rw, fmt.Sprintf("set big 0 0 %d", len(big)), big)
	expect(t, rw, "SERVER_ERROR object too large for cache")
	send(t, rw, "delete")
	expect(t, rw, "CLIENT_ERROR bad command line format")
}

func TestProtocolStatsAndVersion(t *testing.T) {
	_, _, rw, _ := dialServer(t)
	send(t, rw, "set s 0 0 1", "v")
	expect(t, rw, "STORED")
	send(t, rw, "version")
	expect(t, rw, "VERSION nv-memcached-1.0")
	send(t, rw, "stats")
	sawSet := false
	for {
		line, err := rw.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "END" {
			break
		}
		if line == "STAT cmd_set 1" {
			sawSet = true
		}
	}
	if !sawSet {
		t.Fatal("stats missing cmd_set")
	}
}

func TestProtocolQuitClosesConn(t *testing.T) {
	_, _, rw, conn := dialServer(t)
	send(t, rw, "quit")
	var buf [1]byte
	if _, err := conn.Read(buf[:]); err == nil {
		t.Fatal("connection still open after quit")
	}
}

func TestServerSurvivesValueWithBinaryData(t *testing.T) {
	_, _, rw, _ := dialServer(t)
	payload := string([]byte{0, 1, 2, '\r', '\n', 250, 255})
	send(t, rw, fmt.Sprintf("set bin 0 0 %d", len(payload)), payload)
	expect(t, rw, "STORED")
	send(t, rw, "get bin")
	expect(t, rw, fmt.Sprintf("VALUE bin 0 %d", len(payload)))
	line := make([]byte, len(payload)+2)
	if _, err := rw.Read(line); err != nil {
		t.Fatal(err)
	}
	if string(line[:len(payload)]) != payload {
		t.Fatal("binary payload corrupted")
	}
	expect(t, rw, "END")
}

func TestProtocolAddReplace(t *testing.T) {
	_, _, rw, _ := dialServer(t)
	send(t, rw, "add k 0 0 2", "v1")
	expect(t, rw, "STORED")
	send(t, rw, "add k 0 0 2", "v2")
	expect(t, rw, "NOT_STORED")
	send(t, rw, "replace k 0 0 2", "v3")
	expect(t, rw, "STORED")
	send(t, rw, "get k")
	expect(t, rw, "VALUE k 0 2")
	expect(t, rw, "v3")
	expect(t, rw, "END")
	send(t, rw, "replace missing 0 0 1", "x")
	expect(t, rw, "NOT_STORED")
}

func TestProtocolIncrDecr(t *testing.T) {
	_, _, rw, _ := dialServer(t)
	send(t, rw, "set n 0 0 2", "10")
	expect(t, rw, "STORED")
	send(t, rw, "incr n 5")
	expect(t, rw, "15")
	send(t, rw, "decr n 20")
	expect(t, rw, "0") // memcached floors at zero
	send(t, rw, "incr missing 1")
	expect(t, rw, "NOT_FOUND")
	send(t, rw, "set s 0 0 3", "abc")
	expect(t, rw, "STORED")
	send(t, rw, "incr s 1")
	expect(t, rw, "CLIENT_ERROR cannot increment or decrement non-numeric value")
	send(t, rw, "incr n bogus")
	expect(t, rw, "CLIENT_ERROR invalid numeric delta argument")
}

func TestProtocolTouch(t *testing.T) {
	_, _, rw, _ := dialServer(t)
	send(t, rw, "set k 0 0 1", "v")
	expect(t, rw, "STORED")
	send(t, rw, "touch k 0")
	expect(t, rw, "TOUCHED")
	send(t, rw, "touch missing 0")
	expect(t, rw, "NOT_FOUND")
	// Touch into the past expires the item (negative exptime = already
	// expired; small positive values are now spec-correctly relative).
	send(t, rw, "touch k -1")
	expect(t, rw, "TOUCHED")
	send(t, rw, "get k")
	expect(t, rw, "END")
}

func TestIncrDurableAcrossCrash(t *testing.T) {
	m, err := New(Config{MemoryBytes: 32 << 20, Buckets: 256, MaxConns: 2})
	if err != nil {
		t.Fatal(err)
	}
	m.Set([]byte("ctr"), []byte("41"), 0, 0)
	if v, err := m.Incr([]byte("ctr"), 1); err != nil || v != 42 {
		t.Fatalf("Incr = %d,%v", v, err)
	}
	m.Flush()
	m.Device().Crash()
	m2, _, err := Recover(m.Device(), Config{MemoryBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	v, _, ok := m2.Get([]byte("ctr"))
	if !ok || string(v) != "42" {
		t.Fatalf("counter after crash = %q,%v", v, ok)
	}
}
