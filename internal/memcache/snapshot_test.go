package memcache

// Live-snapshot fidelity (PR 9): a restored snapshot must reproduce the
// dumped cache byte-faithfully — values, flags, expirations, counter state
// and the per-item CAS chain — and a snapshot taken under heavy writes must
// be a consistent per-item cut (value and CAS from the SAME mutation).

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"
)

// dumpItems collects the cache's full item state (value, flags, raw aux) for
// byte-exact comparison.
func dumpItems(t *testing.T, m *Cache) map[string][3]string {
	t.Helper()
	out := make(map[string][3]string)
	err := m.forEachItem(func(key, value []byte, flags uint16, aux uint64) error {
		out[string(key)] = [3]string{string(value), fmt.Sprint(flags), fmt.Sprint(aux)}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSnapshotRestoreFidelity(t *testing.T) {
	m := newCache(t)
	defer m.Close()

	future := uint32(time.Now().Add(time.Hour).Unix())
	for i := 0; i < 500; i++ {
		key := []byte(fmt.Sprintf("fid-%04d", i))
		val := bytes.Repeat([]byte{byte(i)}, 1+i%700)
		var exp uint32
		if i%3 == 0 {
			exp = future
		}
		if err := m.Set(key, val, uint16(i), exp); err != nil {
			t.Fatal(err)
		}
	}
	// A mutation chain so restored CAS uniques must carry history, not 1.
	for i := 0; i < 7; i++ {
		if _, err := m.SetCAS([]byte("chain"), []byte(fmt.Sprintf("rev-%d", i)), 9, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Counter state (incr/decr operate on decimal strings + the CAS chain).
	if err := m.Set([]byte("counter"), []byte("40"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Incr([]byte("counter"), 2); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	n, err := m.Snapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 502 {
		t.Fatalf("Snapshot wrote %d items, want 502", n)
	}

	r := newCache(t)
	defer r.Close()
	got, err := r.RestoreSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("restored %d items, snapshot carried %d", got, n)
	}

	want, have := dumpItems(t, m), dumpItems(t, r)
	if len(have) != len(want) {
		t.Fatalf("restored cache has %d items, want %d", len(have), len(want))
	}
	for k, w := range want {
		if have[k] != w {
			t.Fatalf("item %q differs after restore: got %v, want %v", k, have[k], w)
		}
	}
	if r.Stats().Items != m.Stats().Items {
		t.Fatalf("Items = %d, want %d", r.Stats().Items, m.Stats().Items)
	}

	// The restored CAS chain must keep working: a cas with the restored
	// unique succeeds, continuing the primary's generation sequence.
	_, _, aux, ok := r.m.GetItem([]byte("chain"))
	if !ok {
		t.Fatal("chain key missing after restore")
	}
	if got := auxCAS(aux); got != 7 {
		t.Fatalf("restored CAS unique = %d, want 7", got)
	}
	if v, _, ok := r.Get([]byte("counter")); !ok || string(v) != "42" {
		t.Fatalf("restored counter = %q, want 42", v)
	}
	if got, err := r.Incr([]byte("counter"), 1); err != nil || got != 43 {
		t.Fatalf("incr on restored counter = %d, %v", got, err)
	}
}

func TestRestoreRequiresEmptyCache(t *testing.T) {
	m := newCache(t)
	defer m.Close()
	m.Set([]byte("k"), []byte("v"), 0, 0)
	var buf bytes.Buffer
	if _, err := m.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RestoreSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("restore into a non-empty cache accepted")
	}
}

func TestRestoreRejectsTruncated(t *testing.T) {
	m := newCache(t)
	defer m.Close()
	for i := 0; i < 64; i++ {
		m.Set([]byte(fmt.Sprintf("k%02d", i)), []byte("value"), 0, 0)
	}
	var buf bytes.Buffer
	if _, err := m.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r := newCache(t)
	defer r.Close()
	if _, err := r.RestoreSnapshot(bytes.NewReader(buf.Bytes()[:buf.Len()-7])); err == nil {
		t.Fatal("truncated snapshot restored without error")
	}
}

// TestSnapshotDuringWrites streams snapshots while writers hammer a hot key
// set. Each hot item binds its value to its CAS unique (value = BE64 of the
// iteration, CAS = iteration+1, written in one crash-atomic publish), so a
// snapshot that ever pairs a value with another mutation's CAS — a torn cut
// — is caught by arithmetic. Stable keys, untouched during the stream, must
// all appear exactly once.
func TestSnapshotDuringWrites(t *testing.T) {
	m := newCache(t)
	defer m.Close()

	const stable = 400
	for i := 0; i < stable; i++ {
		if err := m.Set([]byte(fmt.Sprintf("stable-%04d", i)), []byte("s"), 1, 0); err != nil {
			t.Fatal(err)
		}
	}

	const writers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := []byte(fmt.Sprintf("hot-%d", w))
			var val [8]byte
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				binary.BigEndian.PutUint64(val[:], i)
				if err := m.Set(key, val[:], 0, 0); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	for round := 0; round < 5; round++ {
		var buf bytes.Buffer
		if _, err := m.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		seenStable := 0
		r := newCache(t)
		n, err := r.RestoreSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round %d: restore of live snapshot: %v", round, err)
		}
		if n < stable {
			t.Fatalf("round %d: snapshot carried %d items, fewer than the %d stable keys", round, n, stable)
		}
		err = r.forEachItem(func(key, value []byte, flags uint16, aux uint64) error {
			switch {
			case bytes.HasPrefix(key, []byte("stable-")):
				seenStable++
			case bytes.HasPrefix(key, []byte("hot-")):
				i := binary.BigEndian.Uint64(value)
				if cas := uint64(auxCAS(aux)); cas != i+1 {
					return fmt.Errorf("torn cut on %q: value from iteration %d, CAS unique %d", key, i, cas)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if seenStable != stable {
			t.Fatalf("round %d: %d stable keys in snapshot, want %d", round, seenStable, stable)
		}
		r.Close()
	}
	close(stop)
	wg.Wait()
}
