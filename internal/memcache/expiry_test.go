package memcache

import (
	"fmt"
	"testing"
	"time"
)

func testCache(t *testing.T) *Cache {
	t.Helper()
	c, err := New(Config{MemoryBytes: 64 << 20, Buckets: 1 << 10, MaxConns: 4})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestExpirySweep: the sweep removes exactly the items whose deadline has
// passed, via the ordered expiry index rather than a full-table walk.
func TestExpirySweep(t *testing.T) {
	c := testCache(t)
	now := time.Now().Unix()

	for i := 0; i < 10; i++ {
		key := []byte(fmt.Sprintf("dead-%d", i))
		if err := c.Set(key, []byte("x"), 0, uint32(now-int64(i)-1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		key := []byte(fmt.Sprintf("live-%d", i))
		if err := c.Set(key, []byte("y"), 0, uint32(now+3600)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Set([]byte("forever"), []byte("z"), 0, 0); err != nil {
		t.Fatal(err)
	}

	if n := c.SweepExpired(now); n != 10 {
		t.Fatalf("SweepExpired = %d, want 10", n)
	}
	st := c.Stats()
	if st.Expired != 10 || st.Items != 6 {
		t.Fatalf("stats after sweep: expired=%d items=%d", st.Expired, st.Items)
	}
	for i := 0; i < 10; i++ {
		if _, _, ok := c.Get([]byte(fmt.Sprintf("dead-%d", i))); ok {
			t.Fatalf("expired item dead-%d still served", i)
		}
	}
	for i := 0; i < 5; i++ {
		if _, _, ok := c.Get([]byte(fmt.Sprintf("live-%d", i))); !ok {
			t.Fatalf("live item live-%d swept", i)
		}
	}
	if _, _, ok := c.Get([]byte("forever")); !ok {
		t.Fatal("no-expiry item swept")
	}
	// A second sweep finds nothing — the index was consumed.
	if n := c.SweepExpired(now); n != 0 {
		t.Fatalf("second SweepExpired = %d, want 0", n)
	}
	if c.exp.Len() != 5 {
		t.Fatalf("expiry index holds %d entries, want 5 (the live deadlines)", c.exp.Len())
	}
}

// TestExpirySweepStaleEntries: rewrites and touches leave no index entry
// that could sweep a live item away.
func TestExpirySweepStaleEntries(t *testing.T) {
	c := testCache(t)
	now := time.Now().Unix()

	// Item indexed at a near deadline, then rewritten with a far one.
	if err := c.Set([]byte("k"), []byte("v1"), 0, uint32(now+1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Set([]byte("k"), []byte("v2"), 0, uint32(now+3600)); err != nil {
		t.Fatal(err)
	}
	// Item touched from near to far.
	if err := c.Set([]byte("k2"), []byte("w1"), 0, uint32(now+1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Touch([]byte("k2"), uint32(now+3600)); !ok {
		t.Fatal("touch failed")
	}
	if n := c.SweepExpired(now + 10); n != 0 {
		t.Fatalf("sweep removed %d items via stale deadlines", n)
	}
	if v, _, ok := c.Get([]byte("k")); !ok || string(v) != "v2" {
		t.Fatalf("rewritten item: %q,%v", v, ok)
	}
	if v, _, ok := c.Get([]byte("k2")); !ok || string(v) != "w1" {
		t.Fatalf("touched item: %q,%v", v, ok)
	}
	// Touch into the past makes the item sweepable.
	if _, ok := c.Touch([]byte("k2"), uint32(now-5)); !ok {
		t.Fatal("touch into past failed")
	}
	if n := c.SweepExpired(now); n != 1 {
		t.Fatalf("sweep after past touch = %d, want 1", n)
	}
}

// TestExpirySweepSurvivesCrash: deadlines are durable — after a crash and
// recovery, the sweep still removes exactly the overdue items.
func TestExpirySweepSurvivesCrash(t *testing.T) {
	cfg := Config{MemoryBytes: 64 << 20, Buckets: 1 << 10, MaxConns: 4}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().Unix()
	for i := 0; i < 8; i++ {
		if err := c.Set([]byte(fmt.Sprintf("dead-%d", i)), []byte("x"), 0, uint32(now-1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Set([]byte("live"), []byte("y"), 0, uint32(now+3600)); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	c.Device().Crash()

	c2, _, err := Recover(c.Device(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := c2.SweepExpired(now); n != 8 {
		t.Fatalf("post-crash sweep = %d, want 8", n)
	}
	if _, _, ok := c2.Get([]byte("live")); !ok {
		t.Fatal("live item lost across crash+sweep")
	}
	if st := c2.Stats(); st.Items != 1 {
		t.Fatalf("items after post-crash sweep = %d", st.Items)
	}
}

// TestSweeperGoroutine: the background sweeper expires items without any
// client touching them.
func TestSweeperGoroutine(t *testing.T) {
	c := testCache(t)
	now := time.Now().Unix()
	if err := c.Set([]byte("soon"), []byte("x"), 0, uint32(now-1)); err != nil {
		t.Fatal(err)
	}
	stop := c.StartSweeper(5 * time.Millisecond)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if c.Stats().Expired == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("sweeper never expired the item")
}
