package memcache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/nvram"
	"repro/logfree"
)

func newCache(t *testing.T) *Cache {
	t.Helper()
	m, err := New(Config{MemoryBytes: 64 << 20, Buckets: 1024, MaxConns: 8})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSetGetDelete(t *testing.T) {
	m := newCache(t)
	if err := m.Set([]byte("hello"), []byte("world"), 7, 0); err != nil {
		t.Fatal(err)
	}
	v, fl, ok := m.Get([]byte("hello"))
	if !ok || string(v) != "world" || fl != 7 {
		t.Fatalf("Get = %q,%d,%v", v, fl, ok)
	}
	if _, _, ok := m.Get([]byte("nope")); ok {
		t.Fatal("missing key found")
	}
	if !m.Delete([]byte("hello")) {
		t.Fatal("delete failed")
	}
	if _, _, ok := m.Get([]byte("hello")); ok {
		t.Fatal("deleted key still present")
	}
	if m.Delete([]byte("hello")) {
		t.Fatal("double delete succeeded")
	}
}

func TestOverwrite(t *testing.T) {
	m := newCache(t)
	m.Set([]byte("k"), []byte("v1"), 0, 0)
	m.Set([]byte("k"), []byte("v2-longer"), 1, 0)
	v, fl, ok := m.Get([]byte("k"))
	if !ok || string(v) != "v2-longer" || fl != 1 {
		t.Fatalf("after overwrite: %q,%d,%v", v, fl, ok)
	}
	if st := m.Stats(); st.Items != 1 {
		t.Fatalf("Items = %d, want 1", st.Items)
	}
}

func TestManyKeysAndValues(t *testing.T) {
	m := newCache(t)
	for i := 0; i < 2000; i++ {
		key := []byte(fmt.Sprintf("key-%04d", i))
		val := bytes.Repeat([]byte{byte(i)}, 1+i%500)
		if err := m.Set(key, val, uint16(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2000; i++ {
		key := []byte(fmt.Sprintf("key-%04d", i))
		v, fl, ok := m.Get(key)
		if !ok || fl != uint16(i) || !bytes.Equal(v, bytes.Repeat([]byte{byte(i)}, 1+i%500)) {
			t.Fatalf("key %d corrupt: ok=%v fl=%d len=%d", i, ok, fl, len(v))
		}
	}
}

func TestValueTooLarge(t *testing.T) {
	m := newCache(t)
	if err := m.Set([]byte("k"), make([]byte, 4096), 0, 0); err == nil {
		t.Fatal("oversized value accepted")
	}
}

func TestExpiry(t *testing.T) {
	m := newCache(t)
	past := uint32(time.Now().Add(-time.Hour).Unix())
	m.Set([]byte("old"), []byte("v"), 0, past)
	if _, _, ok := m.Get([]byte("old")); ok {
		t.Fatal("expired item served")
	}
}

func TestEvictionUnderMemoryPressure(t *testing.T) {
	m, err := New(Config{MemoryBytes: 4 << 20, Buckets: 256, MaxConns: 2})
	if err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 1024)
	for i := 0; i < 20000; i++ {
		key := []byte(fmt.Sprintf("fill-%06d", i))
		if err := m.Set(key, val, 0, 0); err != nil {
			t.Fatalf("set %d failed despite LRU eviction: %v", i, err)
		}
	}
	if m.Stats().Evictions == 0 {
		t.Fatal("no evictions under memory pressure")
	}
	// Most recent key must be present.
	if _, _, ok := m.Get([]byte("fill-019999")); !ok {
		t.Fatal("most recent key evicted")
	}
}

func TestConcurrentClients(t *testing.T) {
	m := newCache(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := []byte(fmt.Sprintf("w%d-%d", w, i))
				if err := m.Set(key, key, 0, 0); err != nil {
					t.Error(err)
					return
				}
				if v, _, ok := m.Get(key); !ok || !bytes.Equal(v, key) {
					t.Errorf("w%d readback %d failed", w, i)
					return
				}
				if i%3 == 0 {
					m.Delete(key)
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestCrashRecovery(t *testing.T) {
	m := newCache(t)
	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("persist-%d", i))
		m.Set(key, []byte(fmt.Sprintf("value-%d", i)), 0, 0)
	}
	for i := 0; i < 1000; i += 4 {
		m.Delete([]byte(fmt.Sprintf("persist-%d", i)))
	}
	m.Flush() // completed operations become durable at the latest here
	m.Device().Crash()

	m2, stats, err := Recover(m.Device(), Config{MemoryBytes: 64 << 20, MaxConns: 4})
	if err != nil {
		t.Fatal(err)
	}
	_ = stats // after an orderly Flush the APT may legitimately be empty
	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("persist-%d", i))
		v, _, ok := m2.Get(key)
		want := i%4 != 0
		if ok != want {
			t.Fatalf("key %d after recovery: present=%v want %v", i, ok, want)
		}
		if ok && string(v) != fmt.Sprintf("value-%d", i) {
			t.Fatalf("key %d value corrupt after recovery: %q", i, v)
		}
	}
	if m2.Stats().Items != 750 {
		t.Fatalf("recovered Items = %d, want 750", m2.Stats().Items)
	}
}

func TestRecoveryAfterAbruptCrash(t *testing.T) {
	// Crash without an orderly Flush: with the link cache on, the most
	// recent sets may be legitimately lost (their durability was deferred),
	// but nothing may be corrupted — every surviving key reads back exactly,
	// the early flushed key must survive, and the rebuilt item count must
	// match the live contents.
	m := newCache(t)
	m.Set([]byte("live"), []byte("v"), 0, 0)
	m.Flush()
	for i := 0; i < 100; i++ {
		m.Set([]byte(fmt.Sprintf("burst-%d", i)), []byte(fmt.Sprintf("bv-%d", i)), 0, 0)
	}
	m.Device().Crash()
	m2, _, err := Recover(m.Device(), Config{MemoryBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if v, _, ok := m2.Get([]byte("live")); !ok || string(v) != "v" {
		t.Fatalf("flushed item lost or corrupt: %q,%v", v, ok)
	}
	live := int64(1)
	for i := 0; i < 100; i++ {
		v, _, ok := m2.Get([]byte(fmt.Sprintf("burst-%d", i)))
		if !ok {
			continue // legitimately lost: its durability was still deferred
		}
		live++
		if string(v) != fmt.Sprintf("bv-%d", i) {
			t.Fatalf("burst-%d corrupt after crash: %q", i, v)
		}
	}
	if got := m2.Stats().Items; got != live {
		t.Fatalf("recovered Items = %d, live contents = %d", got, live)
	}
}

func TestCollidingKeysSurviveCrash(t *testing.T) {
	// Two distinct string keys forced onto one index hash (the v1 clamping
	// hazard, made deterministic): set/get/delete round-trips must stay
	// per-key and survive a crash.
	logfree.SetHashForTesting(func([]byte) uint64 { return logfree.MinKey })
	defer logfree.SetHashForTesting(nil)
	m := newCache(t)
	if err := m.Set([]byte("twin-a"), []byte("value-a"), 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Set([]byte("twin-b"), []byte("value-b"), 2, 0); err != nil {
		t.Fatal(err)
	}
	if v, fl, ok := m.Get([]byte("twin-a")); !ok || string(v) != "value-a" || fl != 1 {
		t.Fatalf("twin-a aliased: %q,%d,%v", v, fl, ok)
	}
	if v, fl, ok := m.Get([]byte("twin-b")); !ok || string(v) != "value-b" || fl != 2 {
		t.Fatalf("twin-b aliased: %q,%d,%v", v, fl, ok)
	}
	m.Flush()
	m.Device().Crash()
	m2, _, err := Recover(m.Device(), Config{MemoryBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if v, _, ok := m2.Get([]byte("twin-a")); !ok || string(v) != "value-a" {
		t.Fatalf("twin-a after crash: %q,%v", v, ok)
	}
	if v, _, ok := m2.Get([]byte("twin-b")); !ok || string(v) != "value-b" {
		t.Fatalf("twin-b after crash: %q,%v", v, ok)
	}
	if !m2.Delete([]byte("twin-a")) {
		t.Fatal("delete of colliding key failed")
	}
	if _, _, ok := m2.Get([]byte("twin-b")); !ok {
		t.Fatal("deleting twin-a took twin-b with it")
	}
}

func TestServerProtocol(t *testing.T) {
	m := newCache(t)
	srv, err := NewServer("127.0.0.1:0", 4, m, m.Stats)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	mt := &Memtier{KeyRange: 50, Threads: 1, Duration: 50 * time.Millisecond, ValueLen: 16}
	if _, err := mt.RunTCP(srv.Addr()); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Sets == 0 || st.Gets == 0 {
		t.Fatalf("server processed nothing: %+v", st)
	}
}

func TestMemtierInProcessAllBackends(t *testing.T) {
	mt := &Memtier{KeyRange: 200, Threads: 2, Duration: 40 * time.Millisecond, ValueLen: 32}

	m := newCache(t)
	mt.Preload(m)
	r := mt.RunKV(m)
	if r.Ops == 0 || r.Hits == 0 {
		t.Fatalf("nv-memcached run empty: %+v", r)
	}

	lc := NewLockCache()
	mt.Preload(lc)
	r = mt.RunKV(lc)
	if r.Ops == 0 {
		t.Fatalf("lock cache run empty: %+v", r)
	}

	cl, err := NewCLHTCache(Config{MemoryBytes: 64 << 20, Buckets: 1024, MaxConns: 4})
	if err != nil {
		t.Fatal(err)
	}
	mt.Preload(cl)
	r = mt.RunKV(cl)
	if r.Ops == 0 {
		t.Fatalf("clht cache run empty: %+v", r)
	}
}

func TestHashCollisionChains(t *testing.T) {
	// Force two distinct keys onto the same 64-bit hash by construction:
	// not feasible for FNV without search, so instead verify long chains by
	// stuffing the itHNext path directly through the public API with a tiny
	// bucket count (bucket collisions exercise the list; hash collisions
	// exercise chains — simulate the latter by monkey keys below).
	m := newCache(t)
	// These keys all go through the same code paths; verify a couple of
	// hundred keys with identical prefixes and tiny diffs survive rounds of
	// overwrite + delete without cross-talk.
	for round := 0; round < 3; round++ {
		for i := 0; i < 200; i++ {
			key := []byte(fmt.Sprintf("chain-%d", i))
			if err := m.Set(key, []byte(fmt.Sprintf("r%d-%d", round, i)), 0, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 200; i++ {
		key := []byte(fmt.Sprintf("chain-%d", i))
		v, _, ok := m.Get(key)
		if !ok || string(v) != fmt.Sprintf("r2-%d", i) {
			t.Fatalf("key %d: %q,%v", i, v, ok)
		}
	}
}

func TestWarmUpHelper(t *testing.T) {
	m := newCache(t)
	d, err := WarmUp(m, 500, 32)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("zero warm-up duration")
	}
	if m.Stats().Items != 500 {
		t.Fatalf("Items = %d, want 500", m.Stats().Items)
	}
}

// TestImageRoundTrip is the cmd/nvmemcached lifecycle in miniature: run,
// save image, load image in a "new process", recover, serve.
func TestImageRoundTrip(t *testing.T) {
	dir := t.TempDir()
	img := dir + "/nvmc.img"
	m := newCache(t)
	for i := 0; i < 200; i++ {
		m.Set([]byte(fmt.Sprintf("key-%d", i)), []byte(fmt.Sprintf("val-%d", i)), 0, 0)
	}
	m.Flush()
	if err := m.Device().SaveImage(img); err != nil {
		t.Fatal(err)
	}

	dev, err := nvram.LoadImage(img, nvram.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := Recover(dev, Config{MemoryBytes: 64 << 20, MaxConns: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		v, _, ok := m2.Get([]byte(fmt.Sprintf("key-%d", i)))
		if !ok || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("key %d after image round trip: %q,%v", i, v, ok)
		}
	}
	if m2.Stats().Items != 200 {
		t.Fatalf("Items = %d, want 200", m2.Stats().Items)
	}
}
