package memcache

import (
	"math/bits"
	"time"
)

// LatencyHist is a log-linear latency histogram (HDR-lite): microsecond
// resolution with bounded relative error, fixed memory, and no locking —
// each load-generator connection records into its own histogram and the
// results Merge at the end, so the record path is a single increment.
//
// Layout: values below 64µs are exact; above that, 64 linear sub-buckets
// per power-of-two decade. Relative error is bounded by 1/64 ≈ 1.6%.
type LatencyHist struct {
	count   uint64
	buckets [latHistBuckets]uint64
}

const (
	latHistSubBits = 6 // 64 linear sub-buckets per decade
	latHistSub     = 1 << latHistSubBits
	latHistDecades = 22 // top bucket ≈ 133s
	latHistBuckets = latHistSub * latHistDecades
)

// latBucket maps a duration to its bucket index.
func latBucket(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	if us < latHistSub {
		return int(us) // exact below 64µs
	}
	// Shift right until the value fits in [64, 128): the shift count picks
	// the decade, the remaining low bits the linear sub-bucket.
	k := bits.Len64(us) - latHistSubBits - 1
	idx := latHistSub*(k+1) + int((us>>uint(k))-latHistSub)
	if idx >= latHistBuckets {
		return latHistBuckets - 1
	}
	return idx
}

// latBucketValue returns a representative (lower-edge) duration for bucket i.
func latBucketValue(i int) time.Duration {
	if i < latHistSub {
		return time.Duration(i) * time.Microsecond
	}
	k := i/latHistSub - 1
	sub := uint64(i % latHistSub)
	return time.Duration((latHistSub+sub)<<uint(k)) * time.Microsecond
}

// Record adds one observation.
func (h *LatencyHist) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[latBucket(d)]++
	h.count++
}

// Merge folds other into h.
func (h *LatencyHist) Merge(other *LatencyHist) {
	if other == nil {
		return
	}
	for i, v := range other.buckets {
		h.buckets[i] += v
	}
	h.count += other.count
}

// Count returns the number of recorded observations.
func (h *LatencyHist) Count() uint64 { return h.count }

// Percentile returns the value at quantile p in [0,100]; 0 with no data.
func (h *LatencyHist) Percentile(p float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := uint64(p / 100 * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen uint64
	for i, v := range h.buckets {
		seen += v
		if seen > rank {
			return latBucketValue(i)
		}
	}
	return latBucketValue(latHistBuckets - 1)
}
