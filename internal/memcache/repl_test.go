package memcache

// Cache-level replication tests: a live primary cache streaming to a live
// follower cache through internal/repl, run over both storage backends.
// The assertions are the failover contract: every acknowledged mutation is
// on the follower byte-faithfully (value, flags, expiry, CAS unique — the
// whole aux word), and a promoted follower continues the CAS generation
// chain exactly where the primary left it.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/repl"
)

func fastPrimary(t *testing.T, m *Cache) *repl.Primary {
	t.Helper()
	pr := repl.NewPrimary(m, repl.Options{AckTimeout: 2 * time.Second, Heartbeat: 20 * time.Millisecond})
	if err := pr.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pr.Close() })
	m.SetReplication(pr, func() ReplStats {
		st := pr.Stats()
		return ReplStats{State: st.State, Seq: st.Seq, LagOps: st.LagOps, Reconnects: st.Accepts}
	})
	return pr
}

func fastFollower(t *testing.T, addr string, m *Cache) *repl.Follower {
	t.Helper()
	fo := repl.NewFollower(addr, m, repl.FollowerOptions{
		BackoffMin: 5 * time.Millisecond,
		BackoffMax: 50 * time.Millisecond,
		MetaEvery:  8,
	})
	m.SetReplication(nil, func() ReplStats {
		st := fo.Stats()
		return ReplStats{State: st.State, Seq: st.Seq, LagOps: st.LagOps, Reconnects: st.Reconnects}
	})
	go fo.Run()
	t.Cleanup(fo.Close)
	return fo
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// itemAux fetches an item's raw index entry (value, flags, aux) for
// byte-faithfulness checks.
func itemAux(t *testing.T, m *Cache, key string) ([]byte, uint16, uint64) {
	t.Helper()
	v, meta, aux, ok := m.m.GetItem([]byte(key))
	if !ok {
		t.Fatalf("item %q missing", key)
	}
	return v, meta, aux
}

func TestReplicationEndToEnd(t *testing.T) {
	for _, backend := range protoBackends {
		t.Run(backend, func(t *testing.T) {
			primary := newProtoCache(t, backend)
			pr := fastPrimary(t, primary)
			follower := newProtoCache(t, backend)
			fo := fastFollower(t, pr.Addr(), follower)

			waitCond(t, "follower streaming", func() bool { return fo.Stats().State == "streaming" })

			// The far-future expiry rides in aux[31:0]; flags in meta.
			farFuture := uint32(time.Now().Unix() + 86400)
			if err := primary.Set([]byte("plain"), []byte("hello"), 42, farFuture); err != nil {
				t.Fatal(err)
			}
			if _, err := primary.Add([]byte("ctr"), []byte("10"), 0, 0); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				if _, err := primary.Incr([]byte("ctr"), 3); err != nil {
					t.Fatal(err)
				}
			}
			casV, err := primary.SetCAS([]byte("chain"), []byte("v1"), 7, 0)
			if err != nil {
				t.Fatal(err)
			}
			casV, err = primary.CompareAndSwap([]byte("chain"), []byte("v2"), 7, 0, casV)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := primary.Append([]byte("chain"), []byte("+tail"), 0); err != nil {
				t.Fatal(err)
			}
			if err := primary.Set([]byte("gone"), []byte("x"), 0, 0); err != nil {
				t.Fatal(err)
			}
			if !primary.Delete([]byte("gone")) {
				t.Fatal("delete missed")
			}
			if _, ok := primary.Touch([]byte("plain"), farFuture+100); !ok {
				t.Fatal("touch missed")
			}

			// Every mutation above returned after WaitAcked, and the follower
			// was in sync throughout — the acked frontier must already be
			// applied (allow a beat for the coalesced meta/ack bookkeeping).
			waitCond(t, "follower caught up", func() bool {
				return fo.Stats().Seq == pr.Stats().Seq
			})

			// Byte-faithful: value, flags, and the whole aux word (CAS unique
			// + expiry) identical on both sides, for every live key.
			for _, key := range []string{"plain", "ctr", "chain"} {
				pv, pf, pa := itemAux(t, primary, key)
				fv, ff, fa := itemAux(t, follower, key)
				if !bytes.Equal(pv, fv) || pf != ff || pa != fa {
					t.Fatalf("%q diverged: primary (%q,%d,%#x) vs follower (%q,%d,%#x)",
						key, pv, pf, pa, fv, ff, fa)
				}
			}
			if _, _, ok := follower.Get([]byte("gone")); ok {
				t.Fatal("deleted key lingers on the follower")
			}
			if v, _, ok := follower.Get([]byte("ctr")); !ok || string(v) != "25" {
				t.Fatalf("counter on follower = %q, want 25", v)
			}

			// Promote: the follower stops, clears its resume point, and its
			// CAS chain continues the primary's generation sequence.
			_, _, chainAux := itemAux(t, follower, "chain")
			if err := fo.Promote(); err != nil {
				t.Fatal(err)
			}
			if runID, seq := follower.ReplMeta(); runID != 0 || seq != 0 {
				t.Fatalf("promoted follower kept resume point (%d, %d)", runID, seq)
			}
			newCAS, err := follower.SetCAS([]byte("chain"), []byte("v3"), 7, 0)
			if err != nil {
				t.Fatal(err)
			}
			if want := uint64(auxCAS(chainAux)) + 1; newCAS != want {
				t.Fatalf("promoted CAS chain broke: got %d, want %d", newCAS, want)
			}
			_ = casV
		})
	}
}

// TestReplicationResnapshotConverges reconnects a follower that missed
// deletes while away: the re-snapshot must clear them (no lingering keys).
func TestReplicationResnapshotConverges(t *testing.T) {
	primary := newProtoCache(t, "mem")
	// Tiny replay ring: the 64 fill ops below push the offline follower's
	// position out of it, forcing the reconnect down the re-snapshot path.
	pr := repl.NewPrimary(primary, repl.Options{
		RingSize:   16,
		AckTimeout: 2 * time.Second,
		Heartbeat:  20 * time.Millisecond,
	})
	if err := pr.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pr.Close() })
	primary.SetReplication(pr, func() ReplStats {
		st := pr.Stats()
		return ReplStats{State: st.State, Seq: st.Seq, LagOps: st.LagOps, Reconnects: st.Accepts}
	})
	follower := newProtoCache(t, "mem")
	fo := fastFollower(t, pr.Addr(), follower)
	waitCond(t, "follower streaming", func() bool { return fo.Stats().State == "streaming" })

	primary.Set([]byte("stays"), []byte("a"), 0, 0)
	primary.Set([]byte("goes"), []byte("b"), 0, 0)
	waitCond(t, "initial sync", func() bool { return fo.Stats().Seq == pr.Stats().Seq })
	fo.Close()

	// While the follower is away: delete one key and push the stream far
	// past the replay ring so the reconnect becomes a fresh snapshot.
	primary.Delete([]byte("goes"))
	for i := 0; i < 64; i++ {
		primary.Set([]byte(fmt.Sprintf("fill%d", i)), []byte("x"), 0, 0)
	}

	fo2 := fastFollower(t, pr.Addr(), follower)
	waitCond(t, "follower resynced", func() bool {
		return fo2.Stats().State == "streaming" && fo2.Stats().Seq == pr.Stats().Seq
	})
	if _, _, ok := follower.Get([]byte("goes")); ok {
		t.Fatal("key deleted during downtime lingers after re-snapshot")
	}
	if v, _, ok := follower.Get([]byte("stays")); !ok || string(v) != "a" {
		t.Fatalf("surviving key lost in re-snapshot: %q", v)
	}
}

// TestReplStatsConformance pins the exact stats table, on both backends,
// for an idle cache that is not replicating: the contract the failover and
// capacity tooling greps. The pool_bytes_* rows carry live values, so they
// are interpolated from a Stats() snapshot taken before the request (the
// cache is idle in between — the table must match byte-exactly).
func TestReplStatsConformance(t *testing.T) {
	for _, backend := range protoBackends {
		t.Run(backend, func(t *testing.T) {
			m := newProtoCache(t, backend)
			srv, err := NewServer("127.0.0.1:0", 4, m, m.Stats)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			conn, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(30 * time.Second))
			st := m.Stats()
			if _, err := conn.Write([]byte("stats\r\n")); err != nil {
				t.Fatal(err)
			}
			want := "STAT cmd_get 0\r\nSTAT cmd_set 0\r\nSTAT cmd_touch 0\r\nSTAT cmd_flush 0\r\n" +
				"STAT get_hits 0\r\nSTAT get_misses 0\r\n" +
				"STAT cas_hits 0\r\nSTAT cas_badval 0\r\nSTAT cas_misses 0\r\n" +
				"STAT evictions 0\r\nSTAT evictions_bytes 0\r\n" +
				"STAT expired_unfetched 0\r\nSTAT curr_items 0\r\n" +
				"STAT grow_count 0\r\n" +
				fmt.Sprintf("STAT pool_bytes_total %d\r\nSTAT pool_bytes_used %d\r\n",
					st.PoolBytesTotal, st.PoolBytesUsed) +
				"STAT repl_seq 0\r\nSTAT repl_lag_ops 0\r\nSTAT repl_reconnects 0\r\n" +
				"STAT repl_state none\r\nEND\r\n"
			expectExact(t, conn, []byte(want))
		})
	}
}

// TestCapacityStatsBinary pins the capacity rows on the binary protocol,
// both backends, and requires them to agree with the text table.
func TestCapacityStatsBinary(t *testing.T) {
	for _, backend := range protoBackends {
		t.Run(backend, func(t *testing.T) {
			m := newProtoCache(t, backend)
			srv, err := NewServer("127.0.0.1:0", 4, m, m.Stats)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			conn, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(30 * time.Second))
			st := m.Stats()
			if _, err := conn.Write(binFrame(binOpStat, 7, 0, nil, nil, nil)); err != nil {
				t.Fatal(err)
			}
			rows := make(map[string]string)
			for {
				var hdr [binHeaderLen]byte
				if _, err := io.ReadFull(conn, hdr[:]); err != nil {
					t.Fatal(err)
				}
				keyLen := int(binary.BigEndian.Uint16(hdr[2:]))
				bodyLen := int(binary.BigEndian.Uint32(hdr[8:]))
				if bodyLen == 0 {
					break
				}
				body := make([]byte, bodyLen)
				if _, err := io.ReadFull(conn, body); err != nil {
					t.Fatal(err)
				}
				rows[string(body[:keyLen])] = string(body[keyLen:])
			}
			want := map[string]string{
				"evictions_bytes":  "0",
				"grow_count":       "0",
				"pool_bytes_total": fmt.Sprint(st.PoolBytesTotal),
				"pool_bytes_used":  fmt.Sprint(st.PoolBytesUsed),
			}
			for k, w := range want {
				if rows[k] != w {
					t.Fatalf("binary stat %s = %q, want %q", k, rows[k], w)
				}
			}
		})
	}
}

// TestReplStatsLive asserts the repl rows of an actively replicating pair:
// primary reports streaming with the published frontier, follower reports
// streaming with the applied seq.
func TestReplStatsLive(t *testing.T) {
	primary := newProtoCache(t, "mem")
	pr := fastPrimary(t, primary)
	follower := newProtoCache(t, "mem")
	fo := fastFollower(t, pr.Addr(), follower)
	waitCond(t, "follower streaming", func() bool { return fo.Stats().State == "streaming" })
	for i := 0; i < 10; i++ {
		primary.Set([]byte(fmt.Sprintf("k%d", i)), []byte("v"), 0, 0)
	}
	waitCond(t, "follower caught up", func() bool { return fo.Stats().Seq == pr.Stats().Seq })

	for _, tc := range []struct {
		name string
		m    *Cache
	}{{"primary", primary}, {"follower", follower}} {
		rows := statsRows(t, tc.m)
		if rows["repl_state"] != "streaming" {
			t.Fatalf("%s repl_state = %q, want streaming", tc.name, rows["repl_state"])
		}
		if rows["repl_seq"] != "10" {
			t.Fatalf("%s repl_seq = %q, want 10", tc.name, rows["repl_seq"])
		}
		if rows["repl_lag_ops"] != "0" {
			t.Fatalf("%s repl_lag_ops = %q, want 0", tc.name, rows["repl_lag_ops"])
		}
	}
}

// statsRows serves one `stats` command against m and parses the table.
func statsRows(t *testing.T, m *Cache) map[string]string {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", 2, m, m.Stats)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Write([]byte("stats\r\n")); err != nil {
		t.Fatal(err)
	}
	rows := make(map[string]string)
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), "\r")
		if line == "END" {
			return rows
		}
		f := strings.Fields(line)
		if len(f) == 3 && f[0] == "STAT" {
			rows[f[1]] = f[2]
		}
	}
	t.Fatalf("stats stream ended early: %v", sc.Err())
	return nil
}

// TestReadOnlyServer pins the replica's refusal surface on both protocols:
// reads pass, every mutation is refused in a protocol-shaped way, and
// SetReadOnly(false) (promotion) restores writes.
func TestReadOnlyServer(t *testing.T) {
	m := newProtoCache(t, "mem")
	if err := m.Set([]byte("seeded"), []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer("127.0.0.1:0", 4, m, m.Stats)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	srv.SetReadOnly(true)

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(30 * time.Second))

	ro := "SERVER_ERROR replica is read-only\r\n"
	steps := []protoStep{
		{"get seeded\r\n", "VALUE seeded 0 1\r\nv\r\nEND\r\n"},
		{"set k 0 0 1\r\nx\r\n", ro},
		{"add k 0 0 1\r\nx\r\n", ro},
		{"cas k 0 0 1 1\r\nx\r\n", ro},
		{"delete seeded\r\n", ro},
		{"incr seeded 1\r\n", ro},
		{"touch seeded 100\r\n", ro},
		{"gat 100 seeded\r\n", ro},
		{"flush_all\r\n", ro},
		{"set k 0 0 1 noreply\r\nx\r\n", ""}, // noreply: refused silently
		{"get k\r\n", "END\r\n"},             // ...and really not stored
		{"get seeded\r\n", "VALUE seeded 0 1\r\nv\r\nEND\r\n"},
	}
	var want strings.Builder
	for _, st := range steps {
		if _, err := conn.Write([]byte(st.send)); err != nil {
			t.Fatal(err)
		}
		want.WriteString(st.want)
	}
	expectExact(t, conn, []byte(want.String()))

	// Binary SET is refused with NOT_STORED and an explanatory body.
	bc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bc.Close() })
	bc.SetDeadline(time.Now().Add(30 * time.Second))
	req := make([]byte, binHeaderLen+8+1+1)
	req[0] = binMagicReq
	req[1] = binOpSet
	req[3] = 1 // key length
	req[4] = 8 // extras length
	req[11] = 10
	copy(req[binHeaderLen+8:], "kx")
	if _, err := bc.Write(req); err != nil {
		t.Fatal(err)
	}
	resp := make([]byte, binHeaderLen+len("replica is read-only"))
	if _, err := io.ReadFull(bc, resp); err != nil {
		t.Fatal(err)
	}
	if status := binary.BigEndian.Uint16(resp[6:]); status != binStatusNotStored {
		t.Fatalf("binary readonly status = %#x, want NOT_STORED", status)
	}
	if got := string(resp[binHeaderLen:]); got != "replica is read-only" {
		t.Fatalf("binary readonly body = %q", got)
	}

	// Promotion flips the gate off.
	srv.SetReadOnly(false)
	conn2, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn2.Close() })
	conn2.SetDeadline(time.Now().Add(30 * time.Second))
	if _, err := conn2.Write([]byte("set k 0 0 1\r\nx\r\n")); err != nil {
		t.Fatal(err)
	}
	expectExact(t, conn2, []byte("STORED\r\n"))
}
