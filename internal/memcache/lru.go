package memcache

import (
	"sync"
	"sync/atomic"
)

// lruList is the volatile recency structure, sharded the way memcached's
// segmented LRU splits its lists: keys are distributed over lruShards
// independent doubly-linked lists, each with its own mutex, keyed by the
// same stripe hash the item locks use. Recency updates on different shards
// never contend — the single global LRU mutex this replaces serialized
// every hit across all connections. Memcached's LRU metadata does not need
// to survive restarts (recovery resets recency, not contents), so it all
// lives in ordinary Go memory.
//
// Sharding makes eviction order approximate: oldest() inspects shards
// round-robin, so the evicted key is the least recent of ONE shard, not
// globally. Memcached's segmented LRU accepts the same trade for the same
// reason.
const lruShards = 64 // power of two

type lruList struct {
	shards [lruShards]lruShard

	// cursor rotates eviction across shards (approximate global LRU).
	cursor atomic.Uint64
}

type lruShard struct {
	mu    sync.Mutex
	nodes map[string]*lruNode
	head  *lruNode  // most recent
	tail  *lruNode  // least recent
	_     [4]uint64 // keep shard locks off each other's cache lines
}

type lruNode struct {
	key string
	// size is the item's logical footprint (entry overhead + key + value),
	// carried here so the cache's used-bytes accounting never needs a
	// device read to learn the size of the value it replaces or evicts.
	size       int64
	prev, next *lruNode
}

func newLRU() *lruList {
	l := &lruList{}
	for i := range l.shards {
		l.shards[i].nodes = make(map[string]*lruNode)
	}
	return l
}

// shard picks the shard for key, using the same FNV-1a stripe hash as the
// cache's key locks so both stripings agree on a key's home.
func (l *lruList) shard(key string) *lruShard {
	return &l.shards[fnv1aStripe(key)&(lruShards-1)]
}

// add records key at size logical bytes (most recent), returning the change
// in the structure's total footprint: size for a new key, the size delta for
// a rewrite. Callers fold the delta into the cache's used-bytes counter.
func (l *lruList) add(key string, size int64) (delta int64) {
	s := l.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := s.nodes[key]; ok {
		delta = size - n.size
		n.size = size
		s.moveToFront(n)
		return delta
	}
	n := &lruNode{key: key, size: size}
	s.nodes[key] = n
	s.pushFront(n)
	return size
}

func (l *lruList) touch(key string) {
	s := l.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := s.nodes[key]; ok {
		s.moveToFront(n)
	}
}

// remove drops key, returning its logical footprint (0 if absent).
func (l *lruList) remove(key string) (freed int64) {
	s := l.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := s.nodes[key]; ok {
		s.unlink(n)
		delete(s.nodes, key)
		return n.size
	}
	return 0
}

// oldest returns the least recently used key of the next non-empty shard in
// round-robin order (ok=false if the whole structure is empty). Approximate
// global LRU; see the type comment.
func (l *lruList) oldest() (string, bool) {
	start := l.cursor.Add(1)
	for i := uint64(0); i < lruShards; i++ {
		s := &l.shards[(start+i)%lruShards]
		s.mu.Lock()
		if s.tail != nil {
			key := s.tail.key
			s.mu.Unlock()
			return key, true
		}
		s.mu.Unlock()
	}
	return "", false
}

func (l *lruList) len() int {
	n := 0
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		n += len(s.nodes)
		s.mu.Unlock()
	}
	return n
}

func (s *lruShard) pushFront(n *lruNode) {
	n.prev = nil
	n.next = s.head
	if s.head != nil {
		s.head.prev = n
	}
	s.head = n
	if s.tail == nil {
		s.tail = n
	}
}

func (s *lruShard) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		s.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (s *lruShard) moveToFront(n *lruNode) {
	s.unlink(n)
	s.pushFront(n)
}
