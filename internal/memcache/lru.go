package memcache

import "sync"

// lruList is the volatile recency list, keyed by item key. Memcached's LRU
// metadata does not need to survive restarts (recovery resets recency, not
// contents), so it lives in ordinary Go memory, guarded by one mutex —
// recency updates are cheap relative to the simulated NVRAM costs
// elsewhere.
type lruList struct {
	mu    sync.Mutex
	nodes map[string]*lruNode
	head  *lruNode // most recent
	tail  *lruNode // least recent
}

type lruNode struct {
	key        string
	prev, next *lruNode
}

func newLRU() *lruList {
	return &lruList{nodes: make(map[string]*lruNode)}
}

func (l *lruList) add(key string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n, ok := l.nodes[key]; ok {
		l.moveToFront(n)
		return
	}
	n := &lruNode{key: key}
	l.nodes[key] = n
	l.pushFront(n)
}

func (l *lruList) touch(key string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n, ok := l.nodes[key]; ok {
		l.moveToFront(n)
	}
}

func (l *lruList) remove(key string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n, ok := l.nodes[key]; ok {
		l.unlink(n)
		delete(l.nodes, key)
	}
}

// oldest returns the least recently used key (ok=false if empty).
func (l *lruList) oldest() (string, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.tail == nil {
		return "", false
	}
	return l.tail.key, true
}

func (l *lruList) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.nodes)
}

func (l *lruList) pushFront(n *lruNode) {
	n.prev = nil
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}

func (l *lruList) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (l *lruList) moveToFront(n *lruNode) {
	l.unlink(n)
	l.pushFront(n)
}
