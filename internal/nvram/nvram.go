// Package nvram simulates byte-addressable non-volatile RAM with a
// write-back CPU cache in front of it.
//
// The simulator maintains two images of memory:
//
//   - the volatile image: what running code observes. Stores become visible
//     to all threads immediately (cache coherence), but are NOT durable.
//   - the persisted image: what survives a crash. A store reaches the
//     persisted image only when its cache line is written back — either
//     explicitly (CLWB followed by Fence) or by simulated uncontrolled
//     eviction.
//
// This reproduces the ordering contract of real hardware (clwb/sfence on
// x86) that the paper's algorithms depend on, and makes crashes testable:
// Crash discards everything that was not written back.
//
// Addresses are uint64 byte offsets into the device ("Addr"); address 0 is
// reserved as the nil pointer. All word accesses must be 8-byte aligned.
// Data-structure nodes are 64-byte aligned by the allocator, so the low six
// bits of a node address are available for mark bits (Harris delete marks,
// Natarajan-Mittal flags/tags, and the link-and-persist dirty bit).
//
// Latency model: following the paper's methodology (§6.1), the cost of
// persistence is injected as one calibrated pause per *batch* of write-backs,
// at the Fence that completes them. Multiple CLWBs issued before a single
// Fence therefore cost one NVRAM write latency, mirroring the parallelism of
// clwb on real hardware.
package nvram

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Addr is a byte offset into the device. 0 is the nil address.
type Addr = uint64

const (
	// LineSize is the cache line size in bytes. Write-back granularity.
	LineSize = 64
	// WordSize is the machine word size in bytes. Access granularity.
	WordSize = 8

	lineWords = LineSize / WordSize
)

// Config parameterizes a Device.
type Config struct {
	// Size is the device capacity in bytes. Rounded up to a full line.
	Size uint64

	// MaxSize, when larger than Size, reserves headroom the device can
	// Grow into online (elastic capacity). Rounded up to a full line.
	// Zero means no headroom: the device stays at Size forever.
	MaxSize uint64

	// WriteLatency is the simulated NVRAM write latency, injected once per
	// batch of write-backs (i.e., once per Fence that has pending lines).
	// Zero disables latency injection.
	WriteLatency time.Duration

	// AutoEvictEvery, when positive, makes roughly one in every
	// AutoEvictEvery stores write back a random dirty cache line, modeling
	// uncontrolled cache eviction. Intended for adversarial crash testing;
	// leave zero for benchmarks.
	AutoEvictEvery int
}

// Device is a simulated NVRAM device. All methods are safe for concurrent
// use except Crash, CrashPartial, SaveImage and LoadImage, which require
// external quiescence (no in-flight operations), exactly like a real
// power failure treated at a point in time.
//
// The persisted image is owned by a pluggable Backend: MemBackend (the
// default) keeps it in process memory, FileBackend in a shared file mapping
// that survives kill -9. The write-back hot path is backend-independent —
// plain stores into the backend's word slice — and fences reach the backend
// sync hook only when it declares one (needSync), so MemBackend devices run
// exactly as before the Backend split.
type Device struct {
	cfg     Config
	backend Backend
	words   []uint64 // volatile image (cache + memory merged view)
	pers    []uint64 // persisted image (backend.Words(); survives Crash)
	dirty   []uint32 // per-line advisory dirty flags (for eviction & stats)
	lines   uint64
	// limWords is the committed capacity in words: the device size as seen
	// by every access check. The slices above are sized to the RESERVE (the
	// growth headroom of a GrowableBackend); Grow raises limWords after the
	// backend has durably extended. Atomic so concurrent accessors see a
	// grow without locks — capacity only ever increases.
	limWords atomic.Uint64
	// needSync caches backend.NeedsSync so MemBackend fences skip the
	// interface call entirely.
	needSync bool

	// StoreHook, when non-nil, is called after every mutating word access
	// (Store, successful CAS, Add). Crash-injection tests use it to abort
	// an operation mid-flight (panic/recover) at a chosen write point. Set
	// and clear it only while the device is quiescent.
	StoreHook func()

	evictTick atomic.Uint64

	// wbLocks serialize same-line write-backs (two flushers both holding a
	// shared line pending, e.g. an allocator bitmap line), so the copy into
	// the persisted image can use plain stores instead of one serializing
	// atomic store per word — write-back is the hottest loop in the
	// simulator. Acquire/release of the lock word orders the copies.
	wbLocks []uint32

	// Device-level statistics. CLWB/fence counters live in the per-thread
	// Flushers (plain increments, no cross-core traffic); Stats aggregates
	// them on demand.
	statEvicts atomic.Uint64

	flmu     sync.Mutex
	flushers []*Flusher
	retired  Stats // counters folded in from Released flushers
}

// New creates a device of the configured size with both images zeroed,
// backed by an in-process MemBackend (with growth headroom when cfg.MaxSize
// exceeds cfg.Size).
func New(cfg Config) *Device {
	d, err := NewWithBackend(cfg, NewMemBackendReserve(cfg.Size, cfg.MaxSize))
	if err != nil {
		// NewMemBackend derives its size from cfg.Size, so a mismatch is a
		// bug in this package, not a caller error.
		panic(err)
	}
	return d
}

// NewWithBackend creates a device whose persisted image is owned by b. The
// capacity is the backend's; cfg.Size, when non-zero, must agree (after
// line rounding). The volatile image starts as a copy of the persisted one
// — the state after a reboot — so a backend holding a formatted pool is
// ready for the caller's attach/recovery path.
//
// A GrowableBackend's Words slice is its reserve; the device adopts the
// backend's Committed size as its capacity and can Grow within the reserve.
func NewWithBackend(cfg Config, b Backend) (*Device, error) {
	pers := b.Words()
	reserve := uint64(len(pers)) * WordSize
	size := reserve
	if gb, ok := b.(GrowableBackend); ok {
		size = gb.Committed()
	}
	if size == 0 || size%LineSize != 0 || size > reserve {
		return nil, fmt.Errorf("nvram: backend %q image (%d of %d bytes) is not line-aligned", b.Name(), size, reserve)
	}
	if cfg.Size != 0 {
		want := cfg.Size
		if want < LineSize {
			want = LineSize
		}
		want = (want + LineSize - 1) &^ uint64(LineSize-1)
		if want != size {
			return nil, fmt.Errorf("nvram: backend %q holds %d bytes, config wants %d", b.Name(), size, want)
		}
	}
	cfg.Size = size
	d := &Device{
		cfg:      cfg,
		backend:  b,
		words:    make([]uint64, reserve/WordSize),
		pers:     pers,
		dirty:    make([]uint32, reserve/LineSize),
		wbLocks:  make([]uint32, reserve/LineSize),
		lines:    reserve / LineSize,
		needSync: b.NeedsSync(),
	}
	d.limWords.Store(size / WordSize)
	copy(d.words[:size/WordSize], pers[:size/WordSize])
	return d, nil
}

// Size returns the committed device capacity in bytes (it can increase
// through Grow, never decrease).
func (d *Device) Size() uint64 { return d.limWords.Load() * WordSize }

// Reserve returns the maximum capacity this device can Grow to — the size
// of its backend's reserve. Equal to Size for non-growable backends.
func (d *Device) Reserve() uint64 { return uint64(len(d.words)) * WordSize }

// Grow durably extends the committed capacity to newSize bytes (rounded up
// to a full line). No-op when newSize is at or below the current size. The
// backend commits the extension first (for FileBackend: file extended and
// header rewritten, both fsynced), so a crash at any point recovers the old
// or the new size, never anything in between. New capacity reads as zero.
//
// Concurrent Loads/Stores within the old capacity are unaffected; callers
// serialize Grow against other Grows (the allocator's pool lock does).
func (d *Device) Grow(newSize uint64) error {
	newSize = (newSize + LineSize - 1) &^ uint64(LineSize-1)
	if newSize <= d.Size() {
		return nil
	}
	if newSize > d.Reserve() {
		return fmt.Errorf("nvram: grow to %d bytes exceeds the %d-byte reserve", newSize, d.Reserve())
	}
	gb, ok := d.backend.(GrowableBackend)
	if !ok {
		return fmt.Errorf("nvram: backend %q is not growable", d.backend.Name())
	}
	// Barrier: a capacity commit must never overtake older acknowledged
	// data still queued in an asynchronous durability pipeline.
	d.SyncBarrier()
	if err := gb.GrowTo(newSize); err != nil {
		return err
	}
	d.limWords.Store(newSize / WordSize)
	return nil
}

// SyncBarrier blocks until the backend's asynchronous durability pipeline
// (if it has one — see DrainableBackend) has flushed everything enqueued so
// far. A no-op for synchronous backends.
func (d *Device) SyncBarrier() {
	if db, ok := d.backend.(DrainableBackend); ok {
		db.Drain()
	}
}

// Backend returns the persistence backend owning the persisted image.
func (d *Device) Backend() Backend { return d.backend }

// Close releases the backend (flushing and unmapping file-backed images).
// Requires quiescence; the device must not be used afterwards.
func (d *Device) Close() error { return d.backend.Close() }

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// SetWriteLatency changes the injected NVRAM write latency. Not safe to call
// concurrently with Fence.
func (d *Device) SetWriteLatency(l time.Duration) { d.cfg.WriteLatency = l }

// check validates a word address and returns its index. The failure paths
// live in checkFail so check stays within the inlining budget — it guards
// every device access.
func (d *Device) check(a Addr) uint64 {
	i := a / WordSize
	if a&(WordSize-1) != 0 || a == 0 || i >= d.limWords.Load() {
		d.checkFail(a)
	}
	return i
}

//go:noinline
func (d *Device) checkFail(a Addr) {
	if a&(WordSize-1) != 0 {
		panic(fmt.Sprintf("nvram: misaligned access at %#x", a))
	}
	panic(fmt.Sprintf("nvram: access out of range at %#x (size %#x)", a, d.Size()))
}

// Load atomically reads the word at a.
func (d *Device) Load(a Addr) uint64 {
	return atomic.LoadUint64(&d.words[d.check(a)])
}

// Store atomically writes v to the word at a. The store is visible to all
// threads immediately but is not durable until its line is written back.
func (d *Device) Store(a Addr, v uint64) {
	i := d.check(a)
	atomic.StoreUint64(&d.words[i], v)
	d.touch(i / lineWords)
}

// StorePrivate writes v to the word at a without the atomic-store cost.
// ONLY for initializing memory that no other thread can reach yet (a freshly
// allocated, unpublished extent): visibility and ordering are provided by
// the atomic operation that later publishes the extent's address (the
// linearizing CAS is a release point, loads of the published pointer are
// acquire points). Under AutoEvictEvery a concurrent uncontrolled eviction
// may snapshot a line mid-initialization — semantically fine (eviction
// captures an arbitrary instant, exactly like hardware), so adversarial
// configs should pair with Store if race-detector cleanliness matters.
func (d *Device) StorePrivate(a Addr, v uint64) {
	i := d.check(a)
	d.words[i] = v
	d.touch(i / lineWords)
}

// CAS atomically compares-and-swaps the word at a. Like real hardware CAS,
// it carries an implied store fence only with respect to CPU ordering, not
// persistence: the new value still needs an explicit write-back to become
// durable.
func (d *Device) CAS(a Addr, old, new uint64) bool {
	i := d.check(a)
	ok := atomic.CompareAndSwapUint64(&d.words[i], old, new)
	if ok {
		d.touch(i / lineWords)
	}
	return ok
}

// Add atomically adds delta to the word at a and returns the new value.
func (d *Device) Add(a Addr, delta uint64) uint64 {
	i := d.check(a)
	v := atomic.AddUint64(&d.words[i], delta)
	d.touch(i / lineWords)
	return v
}

func (d *Device) touch(line uint64) {
	// Fast path: consecutive stores into one line (entry bodies, node
	// towers) find the flag already set. Re-storing it unconditionally
	// would ping-pong the dirty-flag array's cache lines between cores
	// under parallel load; a read of an already-set flag stays shared.
	if atomic.LoadUint32(&d.dirty[line]) == 0 {
		atomic.StoreUint32(&d.dirty[line], 1)
	}
	if n := d.cfg.AutoEvictEvery; n > 0 {
		if d.evictTick.Add(1)%uint64(n) == 0 {
			d.evictOne(line)
		}
	}
	if h := d.StoreHook; h != nil {
		h()
	}
}

// evictOne writes back an arbitrary dirty line (best effort), simulating an
// uncontrolled cache eviction.
func (d *Device) evictOne(seed uint64) {
	// Cheap deterministic-ish probe starting from a hash of seed.
	h := seed * 0x9E3779B97F4A7C15
	for probe := uint64(0); probe < 64; probe++ {
		line := (h + probe) % d.lines
		if atomic.LoadUint32(&d.dirty[line]) == 1 {
			d.writeBackLine(line)
			d.statEvicts.Add(1)
			return
		}
	}
}

// writeBackLine copies a line from the volatile image to the persisted image
// and clears its dirty flag. A concurrent store may or may not be included,
// exactly as on real hardware where eviction snapshots the line at an
// arbitrary instant. Same-line write-backs are serialized by a per-line
// spinlock so the persisted-image stores can be plain word copies; readers
// of the persisted image (Crash, SaveImage, the Persisted* diagnostics)
// require quiescence, as documented on Device.
func (d *Device) writeBackLine(line uint64) {
	for !atomic.CompareAndSwapUint32(&d.wbLocks[line], 0, 1) {
		runtime.Gosched() // extremely rare; don't monopolize the P
	}
	atomic.StoreUint32(&d.dirty[line], 0)
	base := line * lineWords
	for w := base; w < base+lineWords; w++ {
		d.pers[w] = atomic.LoadUint64(&d.words[w])
	}
	atomic.StoreUint32(&d.wbLocks[line], 0)
}

// EvictRandom writes back each dirty line with probability p, simulating a
// burst of uncontrolled evictions. Intended for crash tests.
func (d *Device) EvictRandom(rng *rand.Rand, p float64) {
	for line := uint64(0); line < d.lines; line++ {
		if atomic.LoadUint32(&d.dirty[line]) == 1 && rng.Float64() < p {
			d.writeBackLine(line)
			d.statEvicts.Add(1)
		}
	}
}

// Crash simulates a transient failure: every store that was not written back
// is lost. The volatile image is reset to the persisted image. The caller
// must guarantee quiescence.
func (d *Device) Crash() {
	// Bounded to the committed capacity: a file-backed reserve is mapped
	// beyond EOF and must not be touched past the committed size.
	lim := d.limWords.Load()
	copy(d.words[:lim], d.pers[:lim])
	for i := range d.dirty {
		d.dirty[i] = 0
	}
}

// CrashPartial first writes back each dirty line with probability p (the
// adversarial "some lines happened to be evicted" case), then crashes.
func (d *Device) CrashPartial(rng *rand.Rand, p float64) {
	d.EvictRandom(rng, p)
	d.Crash()
}

// LinePersisted reports whether the line containing a has identical volatile
// and persisted contents. Diagnostic.
func (d *Device) LinePersisted(a Addr) bool {
	line := d.check(a) / lineWords
	base := line * lineWords
	for w := base; w < base+lineWords; w++ {
		if atomic.LoadUint64(&d.words[w]) != atomic.LoadUint64(&d.pers[w]) {
			return false
		}
	}
	return true
}

// PersistedWord returns the word at a as stored in the persisted image —
// what a crash at this instant would preserve. Diagnostic.
func (d *Device) PersistedWord(a Addr) uint64 {
	return atomic.LoadUint64(&d.pers[d.check(a)])
}

// DirtyLines returns the number of lines currently flagged dirty. Advisory.
func (d *Device) DirtyLines() int {
	n := 0
	for i := range d.dirty {
		if atomic.LoadUint32(&d.dirty[i]) == 1 {
			n++
		}
	}
	return n
}

// Stats is a snapshot of device-wide counters.
type Stats struct {
	Clwbs     uint64 // write-back instructions issued
	Fences    uint64 // fences issued
	SyncWaits uint64 // fences that had pending lines (paid the NVRAM latency)
	Evictions uint64 // uncontrolled evictions simulated
}

// Stats aggregates the per-thread flusher counters into device totals. The
// flusher counters are owner-written without synchronization (keeping the
// hot path free of cross-core counter traffic), so Stats — like Crash and
// SaveImage — requires quiescence: no operations may be in flight.
func (d *Device) Stats() Stats {
	st := Stats{Evictions: d.statEvicts.Load()}
	d.flmu.Lock()
	st.Clwbs += d.retired.Clwbs
	st.Fences += d.retired.Fences
	st.SyncWaits += d.retired.SyncWaits
	for _, f := range d.flushers {
		st.Clwbs += f.Clwbs
		st.Fences += f.Fences
		st.SyncWaits += f.SyncWaits
	}
	d.flmu.Unlock()
	return st
}

// ResetStats zeroes the device totals (including every flusher's counters).
// Requires quiescence.
func (d *Device) ResetStats() {
	d.flmu.Lock()
	d.retired = Stats{}
	for _, f := range d.flushers {
		f.Clwbs, f.Fences, f.SyncWaits = 0, 0, 0
	}
	d.flmu.Unlock()
	d.statEvicts.Store(0)
}

// Flusher is the per-goroutine persistence context: it accumulates CLWBs and
// completes them at Fence. A Flusher must not be shared between goroutines.
type Flusher struct {
	d       *Device
	pending []uint64 // line indices, deduplicated

	// pendingSet mirrors pending once it grows past clwbDedupThreshold: an
	// open-addressed hash set (entries store line+1; 0 = empty) that turns
	// the duplicate check from a linear scan into a couple of array probes.
	// Below the threshold the scan over a handful of words is cheaper than
	// hashing; past it — amortized-fence batch commits hold hundreds of
	// lines pending — probe cost is what bounds CLWB, which is why this is
	// a flat table rather than a Go map. Kept allocated across fences
	// (cleared, not reallocated) so steady-state batches never reallocate.
	pendingSet []uint64
	setMask    uint64
	setActive  bool

	// Per-context statistics, readable by the owner at any time.
	Clwbs     uint64
	Fences    uint64
	SyncWaits uint64
}

// clwbDedupThreshold is the pending-batch size past which CLWB switches its
// duplicate detection from a linear scan to a set probe. See
// BenchmarkFlusherCLWB for the crossover measurement.
const clwbDedupThreshold = 16

// NewFlusher returns a persistence context for one goroutine. The device
// keeps a reference for statistics aggregation.
func (d *Device) NewFlusher() *Flusher {
	f := &Flusher{d: d, pending: make([]uint64, 0, 16)}
	d.flmu.Lock()
	d.flushers = append(d.flushers, f)
	d.flmu.Unlock()
	return f
}

// setInsert adds line to the open-addressed pending set, reporting whether
// it was already present. Occupancy stays at or under half: growSet runs
// whenever the live count (len(pending)) reaches half the table.
func (f *Flusher) setInsert(line uint64) (dup bool) {
	if uint64(len(f.pending))*2 >= uint64(len(f.pendingSet)) {
		f.growSet()
	}
	h := (line * 0x9E3779B97F4A7C15) & f.setMask
	for {
		switch f.pendingSet[h] {
		case 0:
			f.pendingSet[h] = line + 1
			return false
		case line + 1:
			return true
		}
		h = (h + 1) & f.setMask
	}
}

// growSet (re)builds the pending set from pending — which holds exactly the
// live members — sizing the table to at least 4× the live count. A table
// retained from an earlier batch (cleared at Fence) is reused when already
// big enough, so steady-state batches never reallocate it.
func (f *Flusher) growSet() {
	need := uint64(4 * clwbDedupThreshold)
	for need <= 2*uint64(len(f.pending)) {
		need *= 2
	}
	if uint64(len(f.pendingSet)) < need {
		f.pendingSet = make([]uint64, need)
		f.setMask = need - 1
	}
	for _, l := range f.pending {
		h := (l * 0x9E3779B97F4A7C15) & f.setMask
		for f.pendingSet[h] != 0 {
			h = (h + 1) & f.setMask
		}
		f.pendingSet[h] = l + 1
	}
}

// Device returns the device this flusher operates on.
func (f *Flusher) Device() *Device { return f.d }

// CLWB schedules a write-back of the cache line containing a. The line is
// not durable until the next Fence.
func (f *Flusher) CLWB(a Addr) {
	line := f.d.check(a) / lineWords
	if len(f.pending) < clwbDedupThreshold {
		for _, l := range f.pending {
			if l == line {
				return
			}
		}
	} else {
		if !f.setActive {
			// First CLWB past the threshold: adopt the batch into the set.
			f.setActive = true
			f.growSet()
		}
		if f.setInsert(line) {
			return
		}
	}
	f.pending = append(f.pending, line)
	f.Clwbs++
}

// CLWBRange schedules write-backs for every cache line overlapping
// [a, a+n): the batched-persistence helper for multi-line objects (entry
// extents, node towers). The lines are not durable until the next Fence —
// and by the latency model they all cost that single fence's one pause.
func (f *Flusher) CLWBRange(a Addr, n uint64) {
	if n == 0 {
		return
	}
	first := a &^ uint64(LineSize-1)
	last := (a + n - 1) &^ uint64(LineSize-1)
	if first == 0 {
		// Line 0 holds the reserved nil address; name it by its first
		// valid word instead.
		f.CLWB(WordSize)
		first += LineSize
	}
	for l := first; l <= last; l += LineSize {
		f.CLWB(l)
	}
}

// Fence completes all pending write-backs issued through this flusher and
// injects one NVRAM write latency if any line was pending (the paper's
// one-pause-per-batch model).
func (f *Flusher) Fence() {
	f.Fences++
	if len(f.pending) == 0 {
		return
	}
	for _, line := range f.pending {
		f.d.writeBackLine(line)
	}
	if f.d.needSync {
		// File-backed devices flush the written ranges (msync / fdatasync);
		// the hook may reorder f.pending, which is discarded right after.
		f.d.backend.SyncLines(f.pending)
	}
	f.pending = f.pending[:0]
	if f.setActive {
		clear(f.pendingSet)
		f.setActive = false
	}
	f.SyncWaits++
	Wait(f.d.cfg.WriteLatency)
}

// Sync is CLWB(a) followed by Fence: one complete sync operation.
func (f *Flusher) Sync(a Addr) {
	f.CLWB(a)
	f.Fence()
}

// Release deregisters the flusher from its device, folding its counters
// into the device totals. Call when the owning context retires (a device
// that lives through many attach/recover cycles would otherwise accumulate
// dead flushers forever). The flusher must not be used afterwards.
func (f *Flusher) Release() {
	d := f.d
	d.flmu.Lock()
	for i, g := range d.flushers {
		if g == f {
			d.flushers = append(d.flushers[:i], d.flushers[i+1:]...)
			d.retired.Clwbs += f.Clwbs
			d.retired.Fences += f.Fences
			d.retired.SyncWaits += f.SyncWaits
			break
		}
	}
	d.flmu.Unlock()
}

// SyncBatch schedules write-backs for every address and completes them with
// a single Fence: the paper-sanctioned fast path in which a batch of CLWBs
// costs one NVRAM pause (§6.1). Any lines already pending in the flusher
// join the batch and share the pause.
func (f *Flusher) SyncBatch(addrs ...Addr) {
	for _, a := range addrs {
		f.CLWB(a)
	}
	f.Fence()
}

// Pending returns the number of lines awaiting the next Fence.
func (f *Flusher) Pending() int { return len(f.pending) }

var imageMagic = [8]byte{'N', 'V', 'I', 'M', 'G', '0', '0', '1'}

// SaveImage writes the persisted image to path. Together with LoadImage this
// lets a process "power off" and a later process recover, mirroring the
// paper's assumption that an NVRAM region can be remapped across restarts.
// Requires quiescence.
func (d *Device) SaveImage(path string) error {
	lim := d.limWords.Load()
	buf := make([]byte, 16+lim*WordSize)
	copy(buf, imageMagic[:])
	binary.LittleEndian.PutUint64(buf[8:], d.Size())
	for i, w := range d.pers[:lim] {
		binary.LittleEndian.PutUint64(buf[16+uint64(i)*WordSize:], w)
	}
	return os.WriteFile(path, buf, 0o644)
}

// LoadImage creates a device from an image previously written by SaveImage.
// The volatile image starts equal to the persisted image, as after a reboot.
func LoadImage(path string, cfg Config) (*Device, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(buf) < 16 || string(buf[:8]) != string(imageMagic[:]) {
		return nil, errors.New("nvram: bad image header")
	}
	size := binary.LittleEndian.Uint64(buf[8:])
	if uint64(len(buf)-16) != size {
		return nil, fmt.Errorf("nvram: image truncated: header says %d bytes, have %d", size, len(buf)-16)
	}
	cfg.Size = size
	d := New(cfg)
	lim := d.limWords.Load()
	for i := range d.pers[:lim] {
		d.pers[i] = binary.LittleEndian.Uint64(buf[16+i*WordSize:])
	}
	copy(d.words[:lim], d.pers[:lim])
	return d, nil
}

// LatencyRow is one row of the paper's Table 1 (latencies in nanoseconds).
type LatencyRow struct {
	Level      string
	ReadNanos  int
	WriteNanos int
}

// LatencyTable reproduces Table 1 of the paper: projected latencies for the
// memory hierarchy the evaluation models. The simulator's default
// WriteLatency (125ns) is the paper's assumed NVRAM write latency, an
// average of the PCM and Memristor projections.
var LatencyTable = []LatencyRow{
	{"L1", 2, 2},
	{"L2", 6, 6},
	{"LLC", 15, 15},
	{"DRAM", 50, 50},
	{"PCM", 60, 150}, // read 50-70 in the paper; midpoint
	{"Memristor", 100, 100},
}

// DefaultWriteLatency is the NVRAM write latency assumed by the paper (§6.1).
const DefaultWriteLatency = 125 * time.Nanosecond
