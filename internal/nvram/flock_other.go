//go:build unix && !linux && !darwin && !freebsd && !netbsd && !openbsd && !dragonfly

package nvram

import "os"

// lockFile is a no-op where flock(2) is unavailable: double-start
// protection is advisory hardening, not a correctness dependency of the
// backend itself.
func lockFile(*os.File, string) error { return nil }
