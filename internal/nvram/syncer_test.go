package nvram

// The file backend's async msync pipeline: policy plumbing, the strict
// watermark contract under concurrent fences, buffered batch coalescing,
// and the Device.SyncBarrier ordering hook growth relies on.

import (
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestSyncPolicyStrings(t *testing.T) {
	for mode, want := range map[SyncMode]string{
		SyncEager: "eager", SyncStrict: "strict", SyncBuffered: "buffered",
	} {
		if got := mode.String(); got != want {
			t.Errorf("SyncMode(%d).String() = %q, want %q", mode, got, want)
		}
	}
	if d := (SyncPolicy{Mode: SyncBuffered}).staleness(); d != DefaultMaxStaleness {
		t.Errorf("zero staleness = %v, want default %v", d, DefaultMaxStaleness)
	}
	if d := (SyncPolicy{Mode: SyncBuffered, MaxStaleness: time.Second}).staleness(); d != time.Second {
		t.Errorf("explicit staleness = %v, want 1s", d)
	}
}

func TestFileBackendSetStrictShim(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pm.img")
	fb, _, err := OpenFileBackend(path, 1<<16, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	if got := fb.Policy().Mode; got != SyncEager {
		t.Fatalf("fresh backend mode = %v, want eager", got)
	}
	fb.SetStrict(true)
	if got := fb.Policy().Mode; got != SyncStrict {
		t.Fatalf("SetStrict(true) mode = %v, want strict", got)
	}
	fb.SetStrict(false)
	if got := fb.Policy().Mode; got != SyncEager {
		t.Fatalf("SetStrict(false) mode = %v, want eager", got)
	}
}

// Strict mode: a fence returning means the syncer's durable watermark
// covers it, under many goroutines fencing concurrently (the group-commit
// path). The assertion is indirect — every synced word must be in the
// persisted image across a reopen — plus Drain must be a no-op afterwards
// rather than a hang.
func TestFileSyncerStrictConcurrentFences(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pm.img")
	d, _, err := OpenFileDevice(path, Config{Size: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	fb := d.Backend().(*FileBackend)
	fb.SetSyncPolicy(SyncPolicy{Mode: SyncStrict})

	const workers, opsEach = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fl := d.NewFlusher()
			for i := 0; i < opsEach; i++ {
				a := Addr((w*opsEach + i + 1)) * LineSize
				d.Store(a, uint64(w*opsEach+i+1))
				fl.Sync(a)
			}
		}(w)
	}
	wg.Wait()
	fb.Drain() // must return immediately: everything strict-fenced is durable
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	nd, _, err := OpenFileDevice(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	for k := 1; k <= workers*opsEach; k++ {
		if got := nd.Load(Addr(k) * LineSize); got != uint64(k) {
			t.Fatalf("strict-fenced word %d lost: %d", k, got)
		}
	}
}

// Buffered mode: fences return without waiting, batches coalesce across
// fences, and Drain forces the pending batch out without waiting for the
// staleness timer.
func TestFileSyncerBufferedDrain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pm.img")
	d, _, err := OpenFileDevice(path, Config{Size: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	fb := d.Backend().(*FileBackend)
	// An hour of staleness: if Drain (or Close) waited for the timer the
	// test would hang, so passing at all proves the urgent path works.
	fb.SetSyncPolicy(SyncPolicy{Mode: SyncBuffered, MaxStaleness: time.Hour})

	fl := d.NewFlusher()
	for i := 1; i <= 64; i++ {
		d.Store(Addr(i)*LineSize, uint64(i))
		fl.Sync(Addr(i) * LineSize)
	}
	done := make(chan struct{})
	go func() { fb.Drain(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("buffered Drain did not complete (urgent path broken)")
	}
}

// Device.SyncBarrier reaches the backend's Drain through the optional
// DrainableBackend interface — Grow's pre-commit ordering hook.
func TestDeviceSyncBarrierDrains(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pm.img")
	d, _, err := OpenFileDevice(path, Config{Size: 1 << 18, MaxSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.Backend().(*FileBackend).SetSyncPolicy(SyncPolicy{Mode: SyncBuffered, MaxStaleness: time.Hour})
	fl := d.NewFlusher()
	d.Store(64, 1)
	fl.Sync(64)
	done := make(chan struct{})
	go func() { d.SyncBarrier(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("SyncBarrier did not drain the buffered syncer")
	}
	// Growth itself must also complete under an hour-staleness policy: Grow
	// drains before committing capacity.
	if err := d.Grow(1 << 19); err != nil {
		t.Fatalf("Grow under buffered policy: %v", err)
	}
}

// A mem-backed device has no drainable syncer; the barrier must be a no-op,
// not a panic.
func TestSyncBarrierMemNoop(t *testing.T) {
	d := New(Config{Size: 1 << 16})
	d.SyncBarrier()
}
