//go:build unix

package nvram

import (
	"fmt"
	"os"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// DAXBackend is the real-persistent-memory backend: the persisted image is
// a direct-access (DAX) mapping of a pmem device or fsdax file, and fences
// make write-backs durable with the hardware primitives the paper assumes —
// one cache-line write-back instruction per dirty line (CLWB, falling back
// to CLFLUSHOPT then CLFLUSH by CPUID; see clwb_amd64.s) and one SFENCE. No
// syscall ever sits on the fence path: on real pmem the store buffer → CLWB
// → SFENCE chain IS the durability contract, so SyncStrict and the default
// eager mode are the same thing and there is nothing to buffer.
//
// The backing-file format (header page + image) is shared with FileBackend:
// an image formatted by either backend opens under the other, and all the
// header validation, growth and single-owner machinery is common. The
// mapping is requested with MAP_SYNC (linux: the kernel guarantees the
// mapping is a direct one and metadata for every mapped page is durable, so
// CPU flushes alone persist data); kernels or filesystems without DAX fall
// back to a plain shared mapping — reported by MapSync — where the flushes
// still execute but machine-crash durability degrades to the page-cache
// story (kill -9 safety holds by construction either way). That fallback is
// what CI exercises: the full conformance and crash-torture suites run the
// DAX backend over regular files on any filesystem.
type DAXBackend struct {
	f       *os.File
	mapping []byte
	words   []uint64
	path    string
	mapSync bool

	committed atomic.Uint64
	reserve   uint64
}

// Raw mmap flags of the DAX attempt (linux values; other kernels reject
// them and the open falls back to MAP_SHARED). MAP_SHARED_VALIDATE is
// required by the kernel for MAP_SYNC so unsupported flag bits fail loudly
// instead of being ignored.
const (
	mmapSharedValidate = 0x03
	mmapSyncFlag       = 0x80000
)

// mmapDAX maps the file with MAP_SHARED_VALIDATE|MAP_SYNC, falling back to
// MAP_SHARED where the kernel or filesystem cannot grant a sync mapping.
func mmapDAX(fd int, length int) (b []byte, synced bool, err error) {
	prot := syscall.PROT_READ | syscall.PROT_WRITE
	b, err = syscall.Mmap(fd, 0, length, prot, mmapSharedValidate|mmapSyncFlag)
	if err == nil {
		return b, true, nil
	}
	b, err = syscall.Mmap(fd, 0, length, prot, syscall.MAP_SHARED)
	return b, false, err
}

// OpenDAXBackend opens path — a DAX device, an fsdax file, or (degraded, see
// MapSync) any regular file — as a pmem backend. Create/open/validate
// semantics and the size/maxSize contract are exactly OpenFileBackend's:
// the two backends share the backing-file format.
func OpenDAXBackend(path string, size, maxSize uint64) (db *DAXBackend, created bool, err error) {
	f, devSize, reserve, created, err := openBackingFile(path, size, maxSize)
	if err != nil {
		return nil, false, err
	}
	mapping, synced, err := mmapDAX(int(f.Fd()), int(fileHeaderSize+reserve))
	if err != nil {
		f.Close()
		return nil, false, fmt.Errorf("nvram: mmap dax file: %w", err)
	}
	db = &DAXBackend{
		f:       f,
		mapping: mapping,
		words:   unsafe.Slice((*uint64)(unsafe.Pointer(&mapping[fileHeaderSize])), reserve/WordSize),
		path:    path,
		mapSync: synced,
		reserve: reserve,
	}
	db.committed.Store(devSize)
	return db, created, nil
}

// Name identifies the backend kind.
func (db *DAXBackend) Name() string { return "dax" }

// Path returns the backing device/file path.
func (db *DAXBackend) Path() string { return db.path }

// MapSync reports whether the kernel granted a MAP_SYNC mapping — true on
// real DAX, false on the regular-file fallback.
func (db *DAXBackend) MapSync() bool { return db.mapSync }

// FlushInstr names the cache-line write-back instruction fences issue
// ("clwb", "clflushopt", "clflush", or "noop" on non-amd64 builds).
func (db *DAXBackend) FlushInstr() string { return flushInstr }

// Words returns the persisted image: the mapped region past the header. The
// slice covers the full reserve; only the Committed prefix is live.
func (db *DAXBackend) Words() []uint64 { return db.words }

// Committed returns the live image capacity in bytes.
func (db *DAXBackend) Committed() uint64 { return db.committed.Load() }

// GrowTo durably extends the live image within the mapped reserve; see
// FileBackend.GrowTo (shared implementation — the header commit goes
// through the file descriptor, whose fsyncs are durable on DAX filesystems
// too).
func (db *DAXBackend) GrowTo(newSize uint64) error {
	return growBackingFile(db.f, &db.committed, db.reserve, newSize)
}

// NeedsSync reports true: fences must issue the line flushes.
func (db *DAXBackend) NeedsSync() bool { return true }

// SyncLines write-backs each just-copied line with the best available flush
// instruction and orders them all with one SFENCE — the paper's persistence
// primitive, no syscalls. On MAP_SYNC mappings this is full machine-crash
// durability; on the regular-file fallback the flushes push data toward the
// page cache only (kill -9 safe, as any shared mapping is).
func (db *DAXBackend) SyncLines(lines []uint64) {
	base := unsafe.Pointer(&db.mapping[0])
	for _, l := range lines {
		flushLine(unsafe.Add(base, fileHeaderSize+l*LineSize))
	}
	storeFence()
}

// Abandon simulates abrupt process death for in-process crash tests: drop
// the descriptor and mapping with no flush (see FileBackend.Abandon — same
// single-owner-release semantics).
func (db *DAXBackend) Abandon() error {
	err := db.f.Close()
	if db.mapping != nil {
		if e := syscall.Munmap(db.mapping); err == nil {
			err = e
		}
		db.mapping, db.words = nil, nil
	}
	return err
}

// Close flushes the committed image (an msync + fsync — harmless on real
// DAX, required for the regular-file fallback), unmaps and closes. After
// Close the file alone carries the device state.
func (db *DAXBackend) Close() error {
	if db.mapping == nil {
		return nil
	}
	live := fileHeaderSize + db.committed.Load()
	errSync := msyncRange(db.mapping[:live:live], true)
	if err := db.f.Sync(); errSync == nil {
		errSync = err
	}
	if err := syscall.Munmap(db.mapping); errSync == nil {
		errSync = err
	}
	db.mapping, db.words = nil, nil
	if err := db.f.Close(); errSync == nil {
		errSync = err
	}
	return errSync
}

// OpenDAXDevice opens (or creates) a DAX-backed device: the persisted image
// is the direct mapping at path, the volatile image starts as its copy, and
// recovery is the caller's normal attach path. The second result reports
// whether the file was created.
func OpenDAXDevice(path string, cfg Config) (*Device, bool, error) {
	db, created, err := OpenDAXBackend(path, cfg.Size, cfg.MaxSize)
	if err != nil {
		return nil, false, err
	}
	cfg.Size = 0 // adopt the backend's formatted capacity
	d, err := NewWithBackend(cfg, db)
	if err != nil {
		db.Close()
		return nil, false, err
	}
	return d, created, nil
}
