//go:build unix

package nvram

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// FileBackend is the file-backed persistence backend: the persisted image
// lives in a shared mmap of a regular file, so every write-back lands in the
// OS page cache of that file and survives the death of the process — kill -9
// included — with no image save step. Recovery is opening the same file
// again and running the normal attach path over the mapped image.
//
// Durability model:
//
//   - Process crash (panic, kill -9, OOM kill): safe by construction. The
//     kernel owns the mapped pages; they reach the file regardless of how
//     the process died.
//   - Machine crash (power loss, kernel panic): governed by the SyncPolicy
//     of the background syncer (see SyncMode). The default eager mode starts
//     kernel writeback promptly; SyncStrict blocks each fence on a
//     group-committed fdatasync — the honest storage-hardware cost,
//     typically 10-100× the simulated NVRAM latency — and SyncBuffered
//     bounds the exposure window at MaxStaleness.
//
// Fences never msync inline: SyncLines enqueues the dirty pages with the
// backend's syncer goroutine, which coalesces ranges across fences into
// page-merged msync calls off the hot path (fileSyncer).
//
// The file starts with one 4KB header page (magic, version, size, line and
// word geometry) that OpenFileBackend validates before mapping; the image
// proper follows at fileHeaderSize.
type FileBackend struct {
	f       *os.File
	mapping []byte
	words   []uint64
	pageSz  uint64
	syncer  *fileSyncer
	path    string

	// committed is the live image capacity in bytes; reserve is the mapped
	// headroom GrowTo can extend into (the mapping covers the reserve even
	// beyond the file's EOF — pages past EOF are never touched until a
	// GrowTo has extended the file over them). committed is atomic because
	// fences read it concurrently with (rare, externally serialized) grows.
	committed atomic.Uint64
	reserve   uint64
}

const (
	// fileHeaderSize is the reserved header region before the image.
	fileHeaderSize = 4096
	// fileMagic identifies a pmem backing file ("NVFBCK01").
	fileMagic = uint64(0x31304B4342465648)
	// fileVersion is the current backing-file layout version.
	fileVersion = 1

	fhMagicOff   = 0
	fhVersionOff = 8
	fhSizeOff    = 16
	fhLineOff    = 24
	fhWordOff    = 32
)

// OpenFileBackend opens path as a file-backed persistence backend, creating
// and formatting it when it does not exist (or is empty — a fresh mktemp
// file counts as absent). size is the device capacity in bytes for the
// create case, rounded up to a full cache line; when opening an existing
// file, size 0 adopts the file's formatted capacity and any other value
// must match it exactly. The second result reports whether the file was
// created (true) or an existing image was opened (false).
//
// maxSize, when non-zero, reserves growth headroom: the mapping covers
// maxSize bytes so GrowTo can extend the live image online, and opening an
// existing file ADOPTS its formatted capacity (an elastic pool's committed
// size is whatever its last durable grow reached, not what a flag says)
// instead of enforcing a size match.
func OpenFileBackend(path string, size, maxSize uint64) (fb *FileBackend, created bool, err error) {
	f, devSize, reserve, created, err := openBackingFile(path, size, maxSize)
	if err != nil {
		return nil, false, err
	}
	mapping, err := syscall.Mmap(int(f.Fd()), 0, int(fileHeaderSize+reserve),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, false, fmt.Errorf("nvram: mmap pmem file: %w", err)
	}
	fb = &FileBackend{
		f:       f,
		mapping: mapping,
		words:   unsafe.Slice((*uint64)(unsafe.Pointer(&mapping[fileHeaderSize])), reserve/WordSize),
		pageSz:  uint64(os.Getpagesize()),
		path:    path,
		reserve: reserve,
	}
	fb.committed.Store(devSize)
	fb.syncer = newFileSyncer(fb, SyncPolicy{Mode: SyncEager})
	return fb, created, nil
}

// openBackingFile opens-or-creates the shared backing-file format (one 4KB
// header page + the image) that both the file and DAX backends use: lock,
// create-and-format or validate, and compute the mapped reserve. The two
// backends differ only in how they map the file and flush lines, so an
// image formatted by one opens under the other.
func openBackingFile(path string, size, maxSize uint64) (f *os.File, devSize, reserve uint64, created bool, err error) {
	f, err = os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, 0, false, fmt.Errorf("nvram: open pmem file: %w", err)
	}
	// Close the captured local, not the named return: error returns below
	// write nil into f before the defer runs, and a leaked fd keeps the
	// flock held until some later GC finalizes it.
	opened := f
	defer func() {
		if err != nil {
			opened.Close()
		}
	}()
	if err = lockFile(f, path); err != nil {
		return nil, 0, 0, false, err
	}
	st, err := f.Stat()
	if err != nil {
		return nil, 0, 0, false, fmt.Errorf("nvram: stat pmem file: %w", err)
	}
	devSize = size
	if st.Size() == 0 {
		if devSize == 0 {
			return nil, 0, 0, false, fmt.Errorf("nvram: creating %s requires a size", path)
		}
		if devSize < LineSize {
			devSize = LineSize
		}
		devSize = (devSize + LineSize - 1) &^ uint64(LineSize-1)
		if err = initFile(f, devSize); err != nil {
			return nil, 0, 0, false, err
		}
		created = true
	} else {
		wantSize := size
		if maxSize != 0 {
			wantSize = 0 // elastic pool: adopt the file's committed capacity
		}
		devSize, err = validateFileHeader(f, st.Size(), wantSize)
		if err != nil {
			return nil, 0, 0, false, err
		}
	}
	reserve = devSize
	if maxSize != 0 {
		if m := (maxSize + LineSize - 1) &^ uint64(LineSize-1); m > reserve {
			reserve = m
		}
	}
	return f, devSize, reserve, created, nil
}

// initFile sizes a fresh backing file and durably writes its header before
// any mapping exists, so a crash mid-creation leaves either an empty file
// (recreated on the next open) or a fully valid header — never a mapped
// half-formatted image.
func initFile(f *os.File, devSize uint64) error {
	if err := f.Truncate(int64(fileHeaderSize + devSize)); err != nil {
		return fmt.Errorf("nvram: size pmem file: %w", err)
	}
	var hdr [fileHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[fhMagicOff:], fileMagic)
	binary.LittleEndian.PutUint64(hdr[fhVersionOff:], fileVersion)
	binary.LittleEndian.PutUint64(hdr[fhSizeOff:], devSize)
	binary.LittleEndian.PutUint64(hdr[fhLineOff:], LineSize)
	binary.LittleEndian.PutUint64(hdr[fhWordOff:], WordSize)
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("nvram: write pmem header: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("nvram: sync pmem header: %w", err)
	}
	return nil
}

// validateFileHeader checks an existing backing file before it is mapped:
// magic, layout version, line/word geometry, and that the file really
// contains the full image its header promises. wantSize, when non-zero,
// must match the formatted capacity exactly.
func validateFileHeader(f *os.File, fileSize int64, wantSize uint64) (uint64, error) {
	var hdr [40]byte
	if n, err := f.ReadAt(hdr[:], 0); err != nil || n != len(hdr) {
		return 0, fmt.Errorf("nvram: pmem file too short for a header (%d bytes)", fileSize)
	}
	if got := binary.LittleEndian.Uint64(hdr[fhMagicOff:]); got != fileMagic {
		return 0, fmt.Errorf("nvram: not a pmem backing file (magic %#x)", got)
	}
	if v := binary.LittleEndian.Uint64(hdr[fhVersionOff:]); v != fileVersion {
		return 0, fmt.Errorf("nvram: pmem file layout version %d, want %d", v, fileVersion)
	}
	if l := binary.LittleEndian.Uint64(hdr[fhLineOff:]); l != LineSize {
		return 0, fmt.Errorf("nvram: pmem file line size %d, want %d", l, LineSize)
	}
	if w := binary.LittleEndian.Uint64(hdr[fhWordOff:]); w != WordSize {
		return 0, fmt.Errorf("nvram: pmem file word size %d, want %d", w, WordSize)
	}
	devSize := binary.LittleEndian.Uint64(hdr[fhSizeOff:])
	if devSize == 0 || devSize%LineSize != 0 {
		return 0, fmt.Errorf("nvram: pmem file capacity %d is not line-aligned", devSize)
	}
	// A file LONGER than its header promises is valid: a crash between a
	// grow's file extension and its header commit leaves exactly that, and
	// recovery adopts the old (header) size. Shorter means real truncation.
	if uint64(fileSize) < fileHeaderSize+devSize {
		return 0, fmt.Errorf("nvram: pmem file truncated: header says %d image bytes, file holds %d",
			devSize, fileSize-fileHeaderSize)
	}
	if wantSize != 0 {
		rounded := (wantSize + LineSize - 1) &^ uint64(LineSize-1)
		if rounded < LineSize {
			rounded = LineSize
		}
		if rounded != devSize {
			return 0, fmt.Errorf("nvram: pmem file formatted for %d bytes, requested %d", devSize, rounded)
		}
	}
	return devSize, nil
}

// Name identifies the backend kind.
func (fb *FileBackend) Name() string { return "file" }

// Path returns the backing file path.
func (fb *FileBackend) Path() string { return fb.path }

// Words returns the persisted image: the mapped file past the header. The
// slice covers the full reserve; only the Committed prefix is live.
func (fb *FileBackend) Words() []uint64 { return fb.words }

// Committed returns the live image capacity in bytes.
func (fb *FileBackend) Committed() uint64 { return fb.committed.Load() }

// GrowTo durably extends the live image to newSize bytes within the mapped
// reserve. Commit order is crash-safe for machine crashes too: the file is
// extended and fsynced BEFORE the header's size word is rewritten and
// fsynced, so any crash recovers a header whose promised image the file
// fully contains — the old size (extension not yet committed) or the new
// one. Grows are rare (capacity doublings), so two fsyncs are fine.
func (fb *FileBackend) GrowTo(newSize uint64) error {
	return growBackingFile(fb.f, &fb.committed, fb.reserve, newSize)
}

// growBackingFile is the shared durable grow of the backing-file format
// (file and DAX backends): extend + fsync, then header size rewrite +
// fsync, then the committed mirror.
func growBackingFile(f *os.File, committed *atomic.Uint64, reserve, newSize uint64) error {
	if newSize <= committed.Load() {
		return nil
	}
	if newSize%LineSize != 0 || newSize > reserve {
		return fmt.Errorf("nvram: pmem file grow to %d bytes exceeds the %d-byte reserve", newSize, reserve)
	}
	if err := f.Truncate(int64(fileHeaderSize + newSize)); err != nil {
		return fmt.Errorf("nvram: extend pmem file: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("nvram: sync pmem file extension: %w", err)
	}
	var sz [8]byte
	binary.LittleEndian.PutUint64(sz[:], newSize)
	if _, err := f.WriteAt(sz[:], fhSizeOff); err != nil {
		return fmt.Errorf("nvram: commit pmem grow header: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("nvram: sync pmem grow header: %w", err)
	}
	committed.Store(newSize)
	return nil
}

// NeedsSync reports true: fences must reach the mapping's sync hook.
func (fb *FileBackend) NeedsSync() bool { return true }

// SetSyncPolicy switches the backend's durability policy (see SyncMode).
// Set it before serving operations: fences may be concurrent with each
// other, not with a policy change.
func (fb *FileBackend) SetSyncPolicy(p SyncPolicy) { fb.syncer.setPolicy(p) }

// Policy returns the backend's current durability policy.
func (fb *FileBackend) Policy() SyncPolicy { return fb.syncer.getPolicy() }

// SetStrict toggles full power-fail durability.
//
// Deprecated: use SetSyncPolicy. SetStrict(true) is SyncStrict,
// SetStrict(false) the default eager mode.
func (fb *FileBackend) SetStrict(on bool) {
	if on {
		fb.SetSyncPolicy(SyncPolicy{Mode: SyncStrict})
	} else {
		fb.SetSyncPolicy(SyncPolicy{Mode: SyncEager})
	}
}

// SyncLines hands the just-written-back lines to the background syncer,
// which coalesces their pages across fences into merged msync ranges off
// the fence path. In SyncStrict mode the call blocks until the syncer's
// durable watermark covers this fence (one group-committed fdatasync may
// release many concurrent fences); eager and buffered fences return
// immediately — their kill -9 durability comes from the shared mapping, not
// the msync.
func (fb *FileBackend) SyncLines(lines []uint64) { fb.syncer.enqueue(lines) }

// Drain blocks until every line enqueued so far has been flushed by the
// syncer (buffered flushes are pulled forward). The device's capacity-grow
// barrier uses it so a grow commit never overtakes older acknowledged data
// in the storage stack.
func (fb *FileBackend) Drain() { fb.syncer.drain() }

// Abandon simulates abrupt process death for in-process crash tests: it
// closes the descriptor and drops the mapping WITHOUT any flush, so the
// backing file holds precisely the write-backs that completed — and the
// single-owner lock is released, exactly as a kill -9 would release it.
// (The munmap is required for that: a live MAP_SHARED mapping keeps the
// open file description — and its flock — alive past the fd close; dirty
// pages stay in the page cache regardless, which is the whole durability
// story.) The backend and its device must not be used afterwards.
func (fb *FileBackend) Abandon() error {
	// Stop the syncer WITHOUT flushing (an abrupt death grants none) and
	// join it before the munmap: a mid-flight msync on an unmapped region
	// would fault.
	fb.syncer.abandon()
	err := fb.f.Close()
	if fb.mapping != nil {
		if e := syscall.Munmap(fb.mapping); err == nil {
			err = e
		}
		fb.mapping, fb.words = nil, nil
	}
	return err
}

// Close synchronously flushes the whole mapping to the file, unmaps it and
// closes the descriptor. The clean-shutdown equivalent of SaveImage — after
// Close the file alone carries the device state.
func (fb *FileBackend) Close() error {
	if fb.mapping == nil {
		return nil
	}
	// Flush-and-join the syncer first; the whole-mapping msync below then
	// catches anything written back after the syncer's last batch.
	fb.syncer.close()
	// Only the committed prefix is backed by file pages; msyncing reserve
	// pages past EOF would fault.
	live := fileHeaderSize + fb.committed.Load()
	errSync := msyncRange(fb.mapping[:live:live], true)
	if err := fb.f.Sync(); errSync == nil {
		errSync = err
	}
	if err := syscall.Munmap(fb.mapping); errSync == nil {
		errSync = err
	}
	fb.mapping, fb.words = nil, nil
	if err := fb.f.Close(); errSync == nil {
		errSync = err
	}
	return errSync
}

// OpenFileDevice opens (or creates) a file-backed device: the persisted
// image is the mapped file at path, the volatile image starts as its copy —
// exactly the state after a reboot — and recovery is the caller's normal
// attach path. The second result reports whether the file was created.
func OpenFileDevice(path string, cfg Config) (*Device, bool, error) {
	fb, created, err := OpenFileBackend(path, cfg.Size, cfg.MaxSize)
	if err != nil {
		return nil, false, err
	}
	cfg.Size = 0 // adopt the backend's formatted capacity
	d, err := NewWithBackend(cfg, fb)
	if err != nil {
		fb.Close()
		return nil, false, err
	}
	return d, created, nil
}
