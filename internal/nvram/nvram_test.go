package nvram

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func newDev(t *testing.T, size uint64) *Device {
	t.Helper()
	return New(Config{Size: size})
}

func TestStoreLoadRoundTrip(t *testing.T) {
	d := newDev(t, 4096)
	d.Store(64, 42)
	if got := d.Load(64); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
}

func TestStoreIsNotDurableUntilFence(t *testing.T) {
	d := newDev(t, 4096)
	f := d.NewFlusher()
	d.Store(128, 7)
	if d.LinePersisted(128) {
		t.Fatal("line persisted before any write-back")
	}
	d.Crash()
	if got := d.Load(128); got != 0 {
		t.Fatalf("unflushed store survived crash: %d", got)
	}

	d.Store(128, 7)
	f.CLWB(128)
	if d.LinePersisted(128) {
		t.Fatal("CLWB alone must not persist (needs fence)")
	}
	f.Fence()
	if !d.LinePersisted(128) {
		t.Fatal("line not persisted after CLWB+Fence")
	}
	d.Crash()
	if got := d.Load(128); got != 7 {
		t.Fatalf("fenced store lost in crash: got %d, want 7", got)
	}
}

func TestFenceCoversWholeLine(t *testing.T) {
	d := newDev(t, 4096)
	f := d.NewFlusher()
	// Two words on the same 64B line: a write-back persists both.
	d.Store(256, 1)
	d.Store(256+8, 2)
	f.Sync(256)
	d.Crash()
	if d.Load(256) != 1 || d.Load(256+8) != 2 {
		t.Fatalf("whole-line persistence broken: %d %d", d.Load(256), d.Load(256+8))
	}
}

func TestCASBehaves(t *testing.T) {
	d := newDev(t, 4096)
	d.Store(64, 10)
	if d.CAS(64, 11, 12) {
		t.Fatal("CAS succeeded with wrong expected value")
	}
	if !d.CAS(64, 10, 12) {
		t.Fatal("CAS failed with right expected value")
	}
	if d.Load(64) != 12 {
		t.Fatalf("CAS result = %d, want 12", d.Load(64))
	}
}

func TestAdd(t *testing.T) {
	d := newDev(t, 4096)
	d.Store(64, 5)
	if got := d.Add(64, 3); got != 8 {
		t.Fatalf("Add returned %d, want 8", got)
	}
	if got := d.Load(64); got != 8 {
		t.Fatalf("Load after Add = %d, want 8", got)
	}
}

func TestMisalignedAccessPanics(t *testing.T) {
	d := newDev(t, 4096)
	defer func() {
		if recover() == nil {
			t.Fatal("misaligned access did not panic")
		}
	}()
	d.Load(65)
}

func TestNilAddressPanics(t *testing.T) {
	d := newDev(t, 4096)
	defer func() {
		if recover() == nil {
			t.Fatal("nil-address access did not panic")
		}
	}()
	d.Load(0)
}

func TestOutOfRangePanics(t *testing.T) {
	d := newDev(t, 4096)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range access did not panic")
		}
	}()
	d.Store(1<<20, 1)
}

func TestFenceWithoutPendingIsNotASyncWait(t *testing.T) {
	d := newDev(t, 4096)
	f := d.NewFlusher()
	f.Fence()
	if f.SyncWaits != 0 {
		t.Fatalf("empty fence counted as sync wait")
	}
	d.Store(64, 1)
	f.Sync(64)
	if f.SyncWaits != 1 {
		t.Fatalf("SyncWaits = %d, want 1", f.SyncWaits)
	}
}

func TestCLWBDeduplicatesLines(t *testing.T) {
	d := newDev(t, 4096)
	f := d.NewFlusher()
	f.CLWB(256)
	f.CLWB(256 + 8) // same line
	f.CLWB(256 + 56)
	if f.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1 (same line)", f.Pending())
	}
	f.CLWB(512)
	if f.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", f.Pending())
	}
}

func TestBatchedFenceInjectsOneLatency(t *testing.T) {
	d := New(Config{Size: 1 << 16, WriteLatency: 2 * time.Millisecond})
	f := d.NewFlusher()
	for i := 0; i < 16; i++ {
		a := Addr(64 * (i + 1))
		d.Store(a, uint64(i))
		f.CLWB(a)
	}
	start := time.Now()
	f.Fence()
	batched := time.Since(start)
	if batched > 10*time.Millisecond {
		t.Fatalf("batched fence took %v; latency should be injected once, not per line", batched)
	}
	if f.SyncWaits != 1 {
		t.Fatalf("SyncWaits = %d, want 1", f.SyncWaits)
	}
}

func TestCrashPartialEvictsSomeLines(t *testing.T) {
	d := newDev(t, 1<<16)
	rng := rand.New(rand.NewSource(1))
	for i := 1; i <= 100; i++ {
		d.Store(Addr(i*64), uint64(i))
	}
	d.CrashPartial(rng, 0.5)
	survived := 0
	for i := 1; i <= 100; i++ {
		if d.Load(Addr(i*64)) == uint64(i) {
			survived++
		}
	}
	if survived == 0 || survived == 100 {
		t.Fatalf("partial crash survived=%d, want a strict subset", survived)
	}
}

func TestAutoEvictionPersistsWithoutFence(t *testing.T) {
	d := New(Config{Size: 1 << 16, AutoEvictEvery: 1})
	for i := 1; i <= 64; i++ {
		d.Store(Addr(i*64), uint64(i))
	}
	if d.Stats().Evictions == 0 {
		t.Fatal("auto-eviction never fired")
	}
}

func TestConcurrentCASCounter(t *testing.T) {
	d := newDev(t, 4096)
	const goroutines, per = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				for {
					v := d.Load(64)
					if d.CAS(64, v, v+1) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := d.Load(64); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
}

func TestConcurrentFlushersIndependent(t *testing.T) {
	d := newDev(t, 1<<16)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			f := d.NewFlusher()
			base := Addr((g + 1) * 1024)
			for i := 0; i < 100; i++ {
				a := base + Addr(i%8)*64
				d.Store(a, uint64(i))
				f.Sync(a)
			}
		}(g)
	}
	wg.Wait()
	// All four regions must be persisted.
	d.Crash()
	for g := 0; g < 4; g++ {
		base := Addr((g + 1) * 1024)
		found := false
		for i := 0; i < 8; i++ {
			if d.Load(base+Addr(i)*64) != 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("region %d lost all synced data", g)
		}
	}
}

func TestSaveLoadImage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "img")
	d := newDev(t, 1<<14)
	f := d.NewFlusher()
	d.Store(64, 0xDEADBEEF)
	f.Sync(64)
	d.Store(128, 0xBAD) // not synced: must not survive
	if err := d.SaveImage(path); err != nil {
		t.Fatal(err)
	}
	d2, err := LoadImage(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Size() != d.Size() {
		t.Fatalf("size mismatch: %d vs %d", d2.Size(), d.Size())
	}
	if got := d2.Load(64); got != 0xDEADBEEF {
		t.Fatalf("persisted word = %#x, want 0xDEADBEEF", got)
	}
	if got := d2.Load(128); got != 0 {
		t.Fatalf("unpersisted word survived image: %#x", got)
	}
}

func TestLoadImageRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "img")
	if err := os.WriteFile(path, []byte("not an image"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadImage(path, Config{}); err == nil {
		t.Fatal("LoadImage accepted garbage")
	}
}

func TestQuickStoreSyncCrashPreserves(t *testing.T) {
	d := newDev(t, 1<<16)
	f := d.NewFlusher()
	check := func(off uint16, v uint64) bool {
		a := Addr(64 + (uint64(off)%1000)*8)
		a &^= 7
		if a == 0 {
			a = 64
		}
		d.Store(a, v)
		f.Sync(a)
		d.Crash()
		return d.Load(a) == v
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWaitApproximatesDuration(t *testing.T) {
	start := time.Now()
	Wait(500 * time.Microsecond)
	el := time.Since(start)
	if el < 400*time.Microsecond {
		t.Fatalf("Wait(500µs) returned after %v", el)
	}
}

func TestLatencyTableShape(t *testing.T) {
	if len(LatencyTable) != 6 {
		t.Fatalf("LatencyTable rows = %d, want 6", len(LatencyTable))
	}
	if LatencyTable[4].WriteNanos <= LatencyTable[3].WriteNanos {
		t.Fatal("PCM write latency should exceed DRAM")
	}
}
