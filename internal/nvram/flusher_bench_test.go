package nvram

import (
	"fmt"
	"testing"
)

// BenchmarkFlusherCLWB measures one CLWB-batch + Fence cycle at typical
// batch sizes. It is the crossover measurement behind clwbDedupThreshold:
// small batches (a byte-map Set touches 2-6 lines) must stay on the linear
// scan with zero map overhead, while large batches (recovery sweeps, region
// initialization) must not degrade quadratically in the duplicate check.
// Each iteration issues 2x CLWBs per line (every line scheduled twice, the
// dedup worst case) and one Fence.
func BenchmarkFlusherCLWB(b *testing.B) {
	for _, lines := range []int{2, 4, 8, 16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("%dlines", lines), func(b *testing.B) {
			dev := New(Config{Size: uint64(lines+1) * LineSize})
			f := dev.NewFlusher()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for l := 0; l < lines; l++ {
					a := Addr(l+1) * LineSize
					f.CLWB(a)
					f.CLWB(a) // duplicate: exercises the dedup check
				}
				f.Fence()
			}
			b.ReportMetric(float64(lines), "lines/batch")
		})
	}
}
