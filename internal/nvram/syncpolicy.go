package nvram

import "time"

// SyncMode selects how a FileBackend's background syncer treats the line
// ranges fences hand it (see SyncPolicy). The syncer replaced the old
// inline fence-time msync: fences enqueue dirty pages and the syncer
// goroutine coalesces them — across fences — into page-merged msync calls
// off the hot path. Kill -9 safety never depends on the msync at all (the
// shared mapping's page cache provides it); the modes differ only in when
// data reaches stable storage, i.e. what a MACHINE crash can lose.
type SyncMode uint8

const (
	// SyncEager flushes dirty ranges as soon as the syncer can get to them
	// (msync(MS_ASYNC), starting kernel writeback); fences never block on
	// the syncer. The default, and the kill -9 durability contract file
	// deployments have always had.
	SyncEager SyncMode = iota

	// SyncStrict makes every fence block until the syncer's durable
	// watermark covers it: the syncer msyncs the accumulated ranges and
	// issues one fdatasync, then releases every fence waiting at or below
	// that ticket (group commit — N concurrent fences share one storage
	// round-trip). Acknowledged operations survive machine crashes.
	SyncStrict

	// SyncBuffered lets dirty ranges accumulate for up to MaxStaleness
	// before the syncer flushes them with msync + fdatasync: bounded-
	// staleness machine-crash durability (a power failure can lose at most
	// the last MaxStaleness of acknowledged writes; kill -9 still loses
	// nothing). The file-deployment counterpart of the paper's §4 buffered
	// durable linearizability.
	SyncBuffered
)

func (m SyncMode) String() string {
	switch m {
	case SyncEager:
		return "eager"
	case SyncStrict:
		return "strict"
	case SyncBuffered:
		return "buffered"
	}
	return "unknown"
}

// SyncPolicy is a FileBackend's durability policy: the syncer mode plus the
// staleness bound of SyncBuffered.
type SyncPolicy struct {
	Mode SyncMode

	// MaxStaleness bounds how long a completed write-back may wait before
	// the syncer flushes it in SyncBuffered mode (ignored otherwise).
	// Zero means DefaultMaxStaleness.
	MaxStaleness time.Duration
}

// DefaultMaxStaleness is the SyncBuffered flush interval when the policy
// does not name one.
const DefaultMaxStaleness = 100 * time.Millisecond

func (p SyncPolicy) staleness() time.Duration {
	if p.MaxStaleness <= 0 {
		return DefaultMaxStaleness
	}
	return p.MaxStaleness
}
