package nvram

// DAX backend specifics beyond the shared conformance suite: abandonment
// (kill -9 analogue over the shared mapping), image portability against
// FileBackend (the two share the backing-file format), and the CPUID flush
// selection.

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Kill -9 analogue: abandon a DAX-backed device without Close — write-backs
// land in the shared mapping, so the image survives exactly as FileBackend's
// does (on real MAP_SYNC pmem they are durable the moment the fence's
// flushes retire).
func TestDAXBackendSurvivesAbandonment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pm.img")
	d, _, err := OpenDAXDevice(path, Config{Size: 1 << 16})
	if err != nil {
		t.Fatalf("OpenDAXDevice: %v", err)
	}
	fl := d.NewFlusher()
	d.Store(64, 44)
	fl.Sync(64)
	if err := d.Backend().(*DAXBackend).Abandon(); err != nil {
		t.Fatalf("Abandon: %v", err)
	}
	nd, created, err := OpenDAXDevice(path, Config{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if created {
		t.Fatal("existing file reported created")
	}
	if got := nd.Load(64); got != 44 {
		t.Fatalf("synced word lost without clean shutdown: %d", got)
	}
	nd.Close()
}

// The DAX and file backends share the backing-file format: an image
// formatted under either opens under the other with its contents intact, so
// operators can move a pool between a pmem mount and plain storage (or
// debug a DAX image with file-backend tooling) without conversion.
func TestDAXFileImageInterop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pm.img")

	d, _, err := OpenFileDevice(path, Config{Size: 1 << 16})
	if err != nil {
		t.Fatalf("OpenFileDevice: %v", err)
	}
	fl := d.NewFlusher()
	d.Store(64, 7)
	fl.Sync(64)
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	dd, created, err := OpenDAXDevice(path, Config{})
	if err != nil {
		t.Fatalf("file image under DAX backend: %v", err)
	}
	if created {
		t.Fatal("existing image reported created")
	}
	if got := dd.Load(64); got != 7 {
		t.Fatalf("word lost crossing file→dax: %d", got)
	}
	fl = dd.NewFlusher()
	dd.Store(128, 9)
	fl.Sync(128)
	if err := dd.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	fd, created, err := OpenFileDevice(path, Config{})
	if err != nil {
		t.Fatalf("dax image under file backend: %v", err)
	}
	if created {
		t.Fatal("existing image reported created")
	}
	if a, b := fd.Load(64), fd.Load(128); a != 7 || b != 9 {
		t.Fatalf("words lost crossing dax→file: %d, %d", a, b)
	}
	fd.Close()
}

// The single-owner flock is shared machinery: a DAX-mapped image cannot be
// opened twice, by either backend.
func TestDAXBackendSingleOwner(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pm.img")
	db, _, err := OpenDAXBackend(path, 1<<16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenDAXBackend(path, 0, 0); err == nil {
		t.Fatal("second dax open succeeded")
	}
	if _, _, err := OpenFileBackend(path, 0, 0); err == nil {
		t.Fatal("file open of a dax-owned image succeeded")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// A failed open (corrupt header) must release the fd and its flock
// immediately, not at some later GC finalization: repairing the image and
// reopening in the same process has to succeed. Regression test for the
// named-return shadowing bug where openBackingFile's deferred close ran
// against the already-nil'd return value.
func TestFailedOpenReleasesLock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pm.img")
	db, _, err := OpenDAXBackend(path, 1<<16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	corrupt := func(v uint64) {
		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		if _, err := f.WriteAt(buf[:], 0); err != nil {
			t.Fatal(err)
		}
	}
	corrupt(0)
	for i := 0; i < 3; i++ { // repeated failures must not accumulate fds
		if _, _, err := OpenFileBackend(path, 0, 0); err == nil {
			t.Fatal("open of corrupt image succeeded")
		} else if strings.Contains(err.Error(), "locked") {
			t.Fatalf("attempt %d: prior failed open leaked the flock: %v", i, err)
		}
		if _, _, err := OpenDAXBackend(path, 0, 0); err == nil {
			t.Fatal("dax open of corrupt image succeeded")
		} else if strings.Contains(err.Error(), "locked") {
			t.Fatalf("attempt %d: prior failed dax open leaked the flock: %v", i, err)
		}
	}
	corrupt(fileMagic)
	fb, created, err := OpenFileBackend(path, 0, 0)
	if err != nil {
		t.Fatalf("repaired open: %v", err)
	}
	if created {
		t.Fatal("repaired image reported created")
	}
	fb.Close()
}

// The CPUID-gated flush selection must land on a known instruction and the
// backend must report it.
func TestDAXFlushInstrSelected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pm.img")
	db, _, err := OpenDAXBackend(path, 1<<16, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	switch got := db.FlushInstr(); got {
	case "clwb", "clflushopt", "clflush", "noop":
	default:
		t.Fatalf("FlushInstr = %q, want clwb/clflushopt/clflush/noop", got)
	}
	if db.NeedsSync() != true {
		t.Fatal("DAX backend must require fence-time SyncLines")
	}
}
