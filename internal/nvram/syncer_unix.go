//go:build unix

package nvram

import (
	"fmt"
	"slices"
	"sync"
	"time"
)

// fileSyncer is FileBackend's background durability pipeline. Fences hand it
// the lines they just wrote back and return; the syncer goroutine coalesces
// the pages those lines dirtied — across fences — into merged runs and
// issues the ranged msync (plus the fdatasync of the strict and buffered
// modes) off the fence hot path. A strict fence blocks on the durable
// watermark instead of issuing its own fdatasync, so N fences racing through
// the syncer share one group commit; eager and buffered fences never block.
//
// Tickets: every enqueue bumps seq; the syncer swaps the whole accumulated
// page set out under the lock together with the seq it covers, flushes, and
// advances durable to that seq. durable >= t therefore means every line
// enqueued by ticket t has been msynced (and fdatasynced when the mode asks
// for stable storage).
type fileSyncer struct {
	fb *FileBackend

	mu      sync.Mutex
	cond    *sync.Cond          // broadcast when durable advances or on exit
	pages   map[uint64]struct{} // dirty page offsets awaiting flush
	spare   map[uint64]struct{} // cleared map recycled between swaps
	seq     uint64              // ticket of the newest enqueue
	durable uint64              // newest ticket fully flushed
	policy  SyncPolicy
	urgent  bool // a drain barrier wants the next flush now, not at the tick
	closing bool // flush what remains, then exit (Close)
	discard bool // drop what remains, then exit (Abandon = kill -9)

	buf      []uint64      // page-sort scratch, reused across flushes
	wake     chan struct{} // nudges an idle syncer (capacity 1)
	urgentCh chan struct{} // interrupts a staleness sleep for a drain (capacity 1)
	stop     chan struct{} // closed on Close/Abandon: interrupts staleness sleeps
	done     chan struct{} // closed when the goroutine has exited
}

func newFileSyncer(fb *FileBackend, p SyncPolicy) *fileSyncer {
	s := &fileSyncer{
		fb:       fb,
		pages:    make(map[uint64]struct{}),
		policy:   p,
		wake:     make(chan struct{}, 1),
		urgentCh: make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	go s.run()
	return s
}

// setPolicy swaps the durability policy. Like the old SetStrict, callers
// switch policies only before serving operations (fences may be concurrent
// with each other, not with a policy change).
func (s *fileSyncer) setPolicy(p SyncPolicy) {
	s.mu.Lock()
	s.policy = p
	s.mu.Unlock()
	s.kick()
}

func (s *fileSyncer) getPolicy() SyncPolicy {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.policy
}

// kick nudges an idle syncer; a kick while it is busy is retained (capacity
// 1) and absorbed by the spurious-wakeup recheck at the top of run's loop.
func (s *fileSyncer) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// enqueue registers the pages covering the just-written-back lines as dirty
// and, in strict mode, blocks until the syncer's durable watermark covers
// this fence's ticket.
func (s *fileSyncer) enqueue(lines []uint64) {
	ps := s.fb.pageSz
	mlen := uint64(len(s.fb.mapping))
	s.mu.Lock()
	for _, l := range lines {
		lo := (fileHeaderSize + l*LineSize) &^ (ps - 1)
		hi := fileHeaderSize + (l+1)*LineSize
		for p := lo; p < hi && p < mlen; p += ps {
			s.pages[p] = struct{}{}
		}
	}
	s.seq++
	ticket := s.seq
	strict := s.policy.Mode == SyncStrict
	s.mu.Unlock()
	s.kick()
	if !strict {
		return
	}
	s.mu.Lock()
	for s.durable < ticket && !s.discard {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// drain blocks until everything enqueued so far has been flushed per the
// current policy (buffered flushes are pulled forward rather than waiting
// out the staleness window). The capacity-grow barrier and tests use it; it
// is not on any fence path.
func (s *fileSyncer) drain() {
	s.mu.Lock()
	target := s.seq
	s.urgent = true
	s.mu.Unlock()
	s.kick() // wakes an idle syncer ...
	select { // ... and this interrupts one already in its staleness sleep
	case s.urgentCh <- struct{}{}:
	default:
	}
	s.mu.Lock()
	for s.durable < target && !s.discard {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// close makes the syncer flush whatever is still queued and exit, then
// joins it. The mapping must stay valid until close returns: a munmap under
// a mid-flight msync would fault.
func (s *fileSyncer) close() {
	s.mu.Lock()
	if !s.closing && !s.discard {
		s.closing = true
		close(s.stop)
	}
	s.mu.Unlock()
	s.kick()
	<-s.done
}

// abandon makes the syncer DROP whatever is still queued and exit, then
// joins it — the kill -9 simulation: an abrupt death grants no flush. The
// join still matters (see close): Abandon munmaps right after.
func (s *fileSyncer) abandon() {
	s.mu.Lock()
	if !s.closing && !s.discard {
		close(s.stop)
	}
	s.discard = true
	s.cond.Broadcast() // release strict waiters; their data is forfeit anyway
	s.mu.Unlock()
	s.kick()
	<-s.done
}

func (s *fileSyncer) run() {
	defer close(s.done)
	s.mu.Lock()
	for {
		for len(s.pages) == 0 && !s.closing && !s.discard {
			s.mu.Unlock()
			<-s.wake
			s.mu.Lock()
		}
		if s.discard || (s.closing && len(s.pages) == 0) {
			// Nothing will ever flush past this point; release any waiter.
			s.durable = s.seq
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		if s.policy.Mode == SyncBuffered && !s.closing && !s.urgent {
			// Let the window fill so one flush covers everything it
			// accumulates. The stop channel cuts the wait short at Close; a
			// drain barrier skips it via urgent (checked above) or, if it
			// arrives once the sleep has begun, via urgentCh. Clearing a
			// stale token while still holding the lock cannot race a live
			// drain: a drain that ran before our lock acquisition already
			// set s.urgent (we would not be here), and one that runs after
			// sends its token after this clear.
			select {
			case <-s.urgentCh:
			default:
			}
			wait := s.policy.staleness()
			s.mu.Unlock()
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-s.stop:
			case <-s.urgentCh:
			}
			t.Stop()
			s.mu.Lock()
			if s.discard {
				continue
			}
		}
		batch := s.pages
		if s.pages = s.spare; s.pages == nil {
			s.pages = make(map[uint64]struct{}, len(batch))
		}
		s.spare = nil
		target := s.seq
		s.urgent = false
		fsync := s.policy.Mode != SyncEager // strict and buffered reach stable storage
		s.mu.Unlock()

		s.flush(batch, fsync)
		clear(batch)

		s.mu.Lock()
		s.spare = batch
		if target > s.durable {
			s.durable = target
			s.cond.Broadcast()
		}
	}
}

// flush msyncs the batch's pages as merged runs, plus one fdatasync when the
// flush must reach stable storage. Sync failures are fatal, exactly as they
// were on the old inline path: a backend that silently drops acknowledged
// durability would corrupt every recovery guarantee built on top of it.
func (s *fileSyncer) flush(batch map[uint64]struct{}, fsync bool) {
	if len(batch) > 0 {
		pages := s.buf[:0]
		for p := range batch {
			pages = append(pages, p)
		}
		s.buf = pages
		slices.Sort(pages)
		ps := s.fb.pageSz
		mlen := uint64(len(s.fb.mapping))
		start, end := pages[0], pages[0]+ps
		emit := func() {
			if end > mlen {
				end = mlen
			}
			if err := msyncRange(s.fb.mapping[start:end:end], false); err != nil {
				panic(fmt.Sprintf("nvram: msync %s: %v", s.fb.path, err))
			}
		}
		for _, p := range pages[1:] {
			if p <= end {
				if p+ps > end {
					end = p + ps
				}
			} else {
				emit()
				start, end = p, p+ps
			}
		}
		emit()
	}
	if fsync {
		if err := fdatasyncFile(s.fb.f); err != nil {
			panic(fmt.Sprintf("nvram: fdatasync %s: %v", s.fb.path, err))
		}
	}
}
