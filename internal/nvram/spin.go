package nvram

import "time"

// Wait busy-waits for approximately d, modeling the latency of an NVRAM
// write-back batch. It deliberately spins rather than sleeping: the paper's
// methodology injects pauses of hundreds of nanoseconds, far below scheduler
// granularity, and a store to NVRAM occupies the issuing core.
func Wait(d time.Duration) {
	if d <= 0 {
		return
	}
	start := time.Now()
	for time.Since(start) < d {
		// spin
	}
}
