package nvram

// Backend conformance: every persistence backend must present identical
// store/flush/fence semantics to the layers above — torn-line granularity,
// CrashPartial frontiers, StoreHook abort points, reboot visibility — so the
// whole recovery stack proven against the simulator carries over unchanged.
// The suite runs the same table of scenarios against MemBackend, FileBackend
// under every syncer mode (eager/strict/buffered), and DAXBackend (over a
// regular file in CI — the MAP_SHARED fallback exercises the same code
// paths as a real MAP_SYNC mapping, minus the hardware durability);
// file-only subtests cover the backing-file header validation.

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// backendCase opens a fresh device and simulates a process restart over the
// persisted image alone (mem: SaveImage+LoadImage; file: Close+reopen).
type backendCase struct {
	name   string
	open   func(t *testing.T, size uint64) *Device
	reopen func(t *testing.T, d *Device) *Device
}

func backendCases() []backendCase {
	return []backendCase{
		{
			name: "mem",
			open: func(t *testing.T, size uint64) *Device {
				return New(Config{Size: size})
			},
			reopen: func(t *testing.T, d *Device) *Device {
				path := filepath.Join(t.TempDir(), "mem.img")
				if err := d.SaveImage(path); err != nil {
					t.Fatalf("SaveImage: %v", err)
				}
				nd, err := LoadImage(path, Config{})
				if err != nil {
					t.Fatalf("LoadImage: %v", err)
				}
				return nd
			},
		},
		fileCase("file", SyncPolicy{Mode: SyncEager}),
		// The async-syncer modes must be observationally identical to eager
		// from above the Backend interface: strict only adds a fence-time
		// wait on the durable watermark, buffered only defers the msync
		// batches — the persisted image (what PersistedWord and reopen see)
		// is written synchronously at the fence either way.
		fileCase("file-strict", SyncPolicy{Mode: SyncStrict}),
		fileCase("file-buffered", SyncPolicy{Mode: SyncBuffered, MaxStaleness: 2 * time.Millisecond}),
		{
			name: "dax",
			open: func(t *testing.T, size uint64) *Device {
				path := filepath.Join(t.TempDir(), "pm.img")
				d, created, err := OpenDAXDevice(path, Config{Size: size})
				if err != nil {
					t.Fatalf("OpenDAXDevice: %v", err)
				}
				if !created {
					t.Fatalf("fresh path reported as existing")
				}
				return d
			},
			reopen: func(t *testing.T, d *Device) *Device {
				path := d.Backend().(*DAXBackend).Path()
				if err := d.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
				nd, created, err := OpenDAXDevice(path, Config{})
				if err != nil {
					t.Fatalf("reopen: %v", err)
				}
				if created {
					t.Fatalf("existing file reported as created")
				}
				return nd
			},
		},
	}
}

// fileCase builds a FileBackend conformance case running under the given
// syncer policy (re-applied on reopen — the policy is process state, not
// image state).
func fileCase(name string, p SyncPolicy) backendCase {
	return backendCase{
		name: name,
		open: func(t *testing.T, size uint64) *Device {
			path := filepath.Join(t.TempDir(), "pm.img")
			d, created, err := OpenFileDevice(path, Config{Size: size})
			if err != nil {
				t.Fatalf("OpenFileDevice: %v", err)
			}
			if !created {
				t.Fatalf("fresh path reported as existing")
			}
			d.Backend().(*FileBackend).SetSyncPolicy(p)
			return d
		},
		reopen: func(t *testing.T, d *Device) *Device {
			path := d.Backend().(*FileBackend).Path()
			if err := d.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			nd, created, err := OpenFileDevice(path, Config{})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			if created {
				t.Fatalf("existing file reported as created")
			}
			nd.Backend().(*FileBackend).SetSyncPolicy(p)
			return nd
		},
	}
}

func forEachBackend(t *testing.T, f func(t *testing.T, bc backendCase)) {
	for _, bc := range backendCases() {
		t.Run(bc.name, func(t *testing.T) { f(t, bc) })
	}
}

func TestBackendStoreVisibleNotDurable(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bc backendCase) {
		d := bc.open(t, 1<<16)
		fl := d.NewFlusher()
		d.Store(64, 7)
		if got := d.Load(64); got != 7 {
			t.Fatalf("volatile load = %d, want 7", got)
		}
		if got := d.PersistedWord(64); got != 0 {
			t.Fatalf("persisted before fence = %d, want 0", got)
		}
		fl.Sync(64)
		if got := d.PersistedWord(64); got != 7 {
			t.Fatalf("persisted after fence = %d, want 7", got)
		}
	})
}

// Torn-line semantics: write-back granularity is the whole 64-byte line —
// words sharing a line persist together, words in different lines persist
// independently, on every backend.
func TestBackendTornLineGranularity(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bc backendCase) {
		d := bc.open(t, 1<<16)
		fl := d.NewFlusher()
		d.Store(128, 1)
		d.Store(136, 2) // same line as 128
		d.Store(256, 3) // different line
		fl.Sync(128)    // names the first line only
		if a, b := d.PersistedWord(128), d.PersistedWord(136); a != 1 || b != 2 {
			t.Fatalf("same-line words persisted %d,%d, want 1,2", a, b)
		}
		if c := d.PersistedWord(256); c != 0 {
			t.Fatalf("unfenced line persisted %d, want 0", c)
		}
	})
}

// CrashPartial frontiers: after an adversarial partial eviction + crash,
// fenced lines hold their new contents, unfenced lines are atomically old
// or new (never torn), and a reboot over the persisted image agrees.
func TestBackendCrashPartialFrontier(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bc backendCase) {
		d := bc.open(t, 1<<16)
		fl := d.NewFlusher()
		const lines = 32
		addr := func(i int) Addr { return Addr(i+1) * LineSize }
		for i := 0; i < lines; i++ {
			d.Store(addr(i), uint64(i+1))
			d.Store(addr(i)+8, uint64(i+1000))
			if i%2 == 0 {
				fl.CLWB(addr(i))
			}
		}
		fl.Fence()
		d.CrashPartial(rand.New(rand.NewSource(42)), 0.5)
		check := func(d *Device, stage string) {
			for i := 0; i < lines; i++ {
				a, b := d.Load(addr(i)), d.Load(addr(i)+8)
				switch {
				case i%2 == 0:
					if a != uint64(i+1) || b != uint64(i+1000) {
						t.Fatalf("%s: fenced line %d lost: %d,%d", stage, i, a, b)
					}
				case a == 0 && b == 0: // line lost whole
				case a == uint64(i+1) && b == uint64(i+1000): // line evicted whole
				default:
					t.Fatalf("%s: line %d torn: %d,%d", stage, i, a, b)
				}
			}
		}
		check(d, "post-crash")
		check(bc.reopen(t, d), "post-reboot")
	})
}

// StoreHook abort points: the hook fires after every mutating word access
// (Store, successful CAS, Add — not failed CAS), and an operation aborted at
// hook point k leaves exactly the synced prefix durable.
func TestBackendStoreHookAbortPoints(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bc backendCase) {
		d := bc.open(t, 1<<16)
		fl := d.NewFlusher()

		fires := 0
		d.StoreHook = func() { fires++ }
		d.Store(64, 1)
		if !d.CAS(64, 1, 2) {
			t.Fatal("CAS should succeed")
		}
		if d.CAS(64, 99, 3) {
			t.Fatal("CAS should fail")
		}
		d.Add(64, 1)
		if fires != 3 {
			t.Fatalf("hook fired %d times, want 3 (failed CAS must not fire)", fires)
		}

		// Abort the 5th mutating access mid-sequence of store+sync ops.
		const abortAt = 5
		countdown := abortAt
		type abort struct{}
		d.StoreHook = func() {
			countdown--
			if countdown == 0 {
				panic(abort{})
			}
		}
		addr := func(i int) Addr { return Addr(i+2) * LineSize }
		completed := 0
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(abort); !ok {
						panic(r)
					}
				}
			}()
			for i := 0; ; i++ {
				d.Store(addr(i), uint64(i+1))
				fl.Sync(addr(i))
				completed++
			}
		}()
		d.StoreHook = nil
		if completed != abortAt-1 {
			t.Fatalf("completed %d ops before abort, want %d", completed, abortAt-1)
		}
		d.Crash()
		nd := bc.reopen(t, d)
		for i := 0; i < completed; i++ {
			if got := nd.Load(addr(i)); got != uint64(i+1) {
				t.Fatalf("synced op %d lost after abort+reboot: %d", i, got)
			}
		}
		if got := nd.Load(addr(completed)); got != 0 {
			t.Fatalf("aborted op durable without fence: %d", got)
		}
	})
}

// Reboot visibility: only the persisted image crosses a restart, and the
// volatile image starts as its copy.
func TestBackendReopenRecoversPersistedOnly(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bc backendCase) {
		d := bc.open(t, 1<<16)
		fl := d.NewFlusher()
		d.Store(64, 11)
		fl.Sync(64)
		d.Store(128, 22) // never fenced: must not survive
		nd := bc.reopen(t, d)
		if got := nd.Load(64); got != 11 {
			t.Fatalf("synced word lost across reopen: %d", got)
		}
		if got := nd.Load(128); got != 0 {
			t.Fatalf("unfenced word survived reopen: %d", got)
		}
		if got := nd.PersistedWord(64); got != 11 {
			t.Fatalf("persisted image lost across reopen: %d", got)
		}
	})
}

// SaveImage / LoadImage keep working on both backends: the image file is a
// portable snapshot of the persisted image regardless of backend.
func TestBackendSaveImagePortable(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bc backendCase) {
		d := bc.open(t, 1<<16)
		fl := d.NewFlusher()
		d.Store(64, 33)
		fl.Sync(64)
		path := filepath.Join(t.TempDir(), "snap.img")
		if err := d.SaveImage(path); err != nil {
			t.Fatalf("SaveImage: %v", err)
		}
		nd, err := LoadImage(path, Config{})
		if err != nil {
			t.Fatalf("LoadImage: %v", err)
		}
		if got := nd.Load(64); got != 33 {
			t.Fatalf("image round trip lost word: %d", got)
		}
	})
}

// Kill -9 analogue: abandon a file-backed device without Close — the
// persisted image must still be complete when the file is opened again,
// because write-backs land in the shared page cache, not process memory.
func TestFileBackendSurvivesAbandonment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pm.img")
	d, _, err := OpenFileDevice(path, Config{Size: 1 << 16})
	if err != nil {
		t.Fatalf("OpenFileDevice: %v", err)
	}
	fl := d.NewFlusher()
	d.Store(64, 44)
	fl.Sync(64)
	// No Close, no SaveImage: the first device is abandoned, dropping the
	// single-owner lock the way a process death would.
	if err := d.Backend().(*FileBackend).Abandon(); err != nil {
		t.Fatalf("Abandon: %v", err)
	}
	nd, created, err := OpenFileDevice(path, Config{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if created {
		t.Fatal("existing file reported created")
	}
	if got := nd.Load(64); got != 44 {
		t.Fatalf("synced word lost without clean shutdown: %d", got)
	}
}

// Single ownership: a backing file mapped by one live process cannot be
// opened by another — two independent allocators over one shared mapping
// would corrupt the image undetectably. The flock dies with the process,
// so kill -9 never wedges the file.
func TestFileBackendSingleOwner(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pm.img")
	fb, _, err := OpenFileBackend(path, 1<<16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenFileBackend(path, 0, 0); err == nil ||
		!strings.Contains(err.Error(), "locked by another live process") {
		t.Fatalf("second open = %v, want lock error", err)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	fb2, _, err := OpenFileBackend(path, 0, 0)
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	fb2.Close()
}

// Header validation: a backing file is mapped only after its header proves
// it is ours, the right version and geometry, and physically complete.
func TestFileBackendHeaderValidation(t *testing.T) {
	newFile := func(t *testing.T) string {
		path := filepath.Join(t.TempDir(), "pm.img")
		d, _, err := OpenFileDevice(path, Config{Size: 1 << 16})
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		if err := d.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		return path
	}
	mustFail := func(t *testing.T, path string, size uint64, frag string) {
		t.Helper()
		_, _, err := OpenFileBackend(path, size, 0)
		if err == nil || !strings.Contains(err.Error(), frag) {
			t.Fatalf("open = %v, want error containing %q", err, frag)
		}
	}

	t.Run("truncated", func(t *testing.T) {
		path := newFile(t)
		if err := os.Truncate(path, int64(fileHeaderSize+1<<15)); err != nil {
			t.Fatal(err)
		}
		mustFail(t, path, 0, "truncated")
	})
	t.Run("wrong-magic", func(t *testing.T) {
		path := newFile(t)
		corruptWord(t, path, fhMagicOff, 0xDEAD)
		mustFail(t, path, 0, "not a pmem backing file")
	})
	t.Run("wrong-version", func(t *testing.T) {
		path := newFile(t)
		corruptWord(t, path, fhVersionOff, fileVersion+1)
		mustFail(t, path, 0, "layout version")
	})
	t.Run("wrong-line-geometry", func(t *testing.T) {
		path := newFile(t)
		corruptWord(t, path, fhLineOff, 128)
		mustFail(t, path, 0, "line size")
	})
	t.Run("wrong-word-geometry", func(t *testing.T) {
		path := newFile(t)
		corruptWord(t, path, fhWordOff, 4)
		mustFail(t, path, 0, "word size")
	})
	t.Run("size-mismatch", func(t *testing.T) {
		path := newFile(t)
		mustFail(t, path, 1<<17, "formatted for")
	})
	t.Run("shorter-than-header", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "tiny.img")
		if err := os.WriteFile(path, []byte("NV"), 0o644); err != nil {
			t.Fatal(err)
		}
		mustFail(t, path, 0, "too short")
	})
	t.Run("create-needs-size", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "new.img")
		mustFail(t, path, 0, "requires a size")
	})
	t.Run("matching-size-ok", func(t *testing.T) {
		path := newFile(t)
		fb, created, err := OpenFileBackend(path, 1<<16, 0)
		if err != nil || created {
			t.Fatalf("open with matching size: %v created=%v", err, created)
		}
		fb.Close()
	})
}

func corruptWord(t *testing.T, path string, off int64, v uint64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}
