//go:build !unix

package nvram

import "errors"

// ErrFileBackendUnsupported is returned on platforms without shared file
// mappings (no mmap in the standard syscall package).
var ErrFileBackendUnsupported = errors.New("nvram: file-backed devices require a unix platform")

// FileBackend is unavailable on this platform; OpenFileBackend always
// fails. The type exists so cross-platform callers compile.
type FileBackend struct{}

// OpenFileBackend fails: no shared file mappings on this platform.
func OpenFileBackend(string, uint64, uint64) (*FileBackend, bool, error) {
	return nil, false, ErrFileBackendUnsupported
}

// Name identifies the backend kind.
func (fb *FileBackend) Name() string { return "file" }

// Path returns the backing file path.
func (fb *FileBackend) Path() string { return "" }

// Words returns no image on this platform.
func (fb *FileBackend) Words() []uint64 { return nil }

// Committed returns 0 on this platform.
func (fb *FileBackend) Committed() uint64 { return 0 }

// GrowTo fails: no shared file mappings on this platform.
func (fb *FileBackend) GrowTo(uint64) error { return ErrFileBackendUnsupported }

// NeedsSync reports false on this platform.
func (fb *FileBackend) NeedsSync() bool { return false }

// SetStrict is a no-op on this platform.
func (fb *FileBackend) SetStrict(bool) {}

// SetSyncPolicy is a no-op on this platform.
func (fb *FileBackend) SetSyncPolicy(SyncPolicy) {}

// Policy returns the zero policy on this platform.
func (fb *FileBackend) Policy() SyncPolicy { return SyncPolicy{} }

// Drain is a no-op on this platform.
func (fb *FileBackend) Drain() {}

// SyncLines is a no-op on this platform.
func (fb *FileBackend) SyncLines([]uint64) {}

// Abandon is a no-op on this platform.
func (fb *FileBackend) Abandon() error { return nil }

// Close is a no-op on this platform.
func (fb *FileBackend) Close() error { return nil }

// OpenFileDevice fails: no shared file mappings on this platform.
func OpenFileDevice(string, Config) (*Device, bool, error) {
	return nil, false, ErrFileBackendUnsupported
}
