package nvram

import "fmt"

// Backend is the persistence substrate of a Device: the storage that holds
// the persisted image (what survives a crash) plus the hook that makes
// completed write-backs durable at fence points.
//
// The device keeps the backend's word slice cached and writes lines into it
// directly (plain stores, serialized per line by the device's write-back
// locks), so the write-back hot path is identical for every backend. The
// only backend-specific work happens at a Fence, after the pending lines
// have been copied in — and even that interface call is skipped entirely
// when NeedsSync reports false, keeping MemBackend's fence path exactly as
// cheap as the pre-Backend simulator.
//
// Durability contract by backend:
//
//   - MemBackend: the persisted image is process memory. Crash/CrashPartial
//     simulate power failure in-process; cross-process durability requires
//     an explicit SaveImage.
//   - FileBackend: the persisted image is a shared file mapping. Every
//     write-back lands in the OS page cache of the backing file, so the
//     image survives the death of the process — including kill -9 — with no
//     image save. Fences additionally msync the written ranges; see
//     FileBackend for the full-machine-crash (fdatasync) story.
type Backend interface {
	// Name identifies the backend kind ("mem", "file") for logs and stats.
	Name() string

	// Words exposes the persisted image as 8-byte words. The slice must
	// stay valid and fixed (same backing array) for the backend's lifetime;
	// its length times WordSize is the device capacity.
	Words() []uint64

	// SyncLines makes the given just-written-back lines durable per the
	// backend's contract. The device calls it at each Fence that had
	// pending lines, after copying them into Words — and only when
	// NeedsSync reports true. The slice may be reordered in place but must
	// not be retained.
	SyncLines(lines []uint64)

	// NeedsSync reports whether SyncLines must be called at fences. The
	// device caches the answer at construction; returning false keeps the
	// fence hot path free of interface dispatch.
	NeedsSync() bool

	// Close releases backend resources (file mappings, descriptors). The
	// owning device must not be used afterwards.
	Close() error
}

// GrowableBackend is the optional interface of backends that can extend
// their committed capacity online (elastic pools). For such backends, Words
// returns the full RESERVE — the maximum the backend can ever grow to — and
// Committed reports how much of it is live device capacity right now.
// Non-growable backends simply have reserve == capacity.
//
// GrowTo must make the extension durable per the backend's contract before
// returning (for FileBackend: the file is extended and its header committed
// with fsyncs, so a machine crash recovers to either the old or the new
// size, never in between). New capacity reads as zero bytes. Callers
// serialize GrowTo externally (the device's Grow is the only caller).
type GrowableBackend interface {
	Backend

	// Committed returns the live capacity in bytes (<= len(Words())*WordSize).
	Committed() uint64

	// GrowTo durably extends the live capacity to newSize bytes
	// (line-aligned, <= the reserve). Growing to the current size or less
	// is a no-op.
	GrowTo(newSize uint64) error
}

// DrainableBackend is the optional interface of backends whose SyncLines
// work completes asynchronously (FileBackend's background syncer). Drain
// blocks until everything enqueued so far has been flushed per the
// backend's current policy; Device.SyncBarrier reaches it.
type DrainableBackend interface {
	Drain()
}

// MemBackend is the in-process backend: the persisted image is a plain heap
// slice, exactly the pre-Backend simulator. It is the default backend of
// New and the fastest one — a fence costs nothing beyond the simulated
// NVRAM latency.
type MemBackend struct {
	words     []uint64
	committed uint64
}

// NewMemBackend creates an in-process backend of the given capacity in
// bytes (rounded up to a full cache line).
func NewMemBackend(size uint64) *MemBackend {
	return NewMemBackendReserve(size, 0)
}

// NewMemBackendReserve creates an in-process backend with size bytes of live
// capacity inside a reserve of maxSize bytes (both rounded up to a full
// cache line) that GrowTo can later commit. maxSize <= size means no
// headroom — identical to NewMemBackend(size).
func NewMemBackendReserve(size, maxSize uint64) *MemBackend {
	if size < LineSize {
		size = LineSize
	}
	size = (size + LineSize - 1) &^ uint64(LineSize-1)
	reserve := size
	if maxSize > reserve {
		reserve = (maxSize + LineSize - 1) &^ uint64(LineSize-1)
	}
	return &MemBackend{words: make([]uint64, reserve/WordSize), committed: size}
}

// Name identifies the backend kind.
func (m *MemBackend) Name() string { return "mem" }

// Words returns the persisted image (the full reserve; see Committed).
func (m *MemBackend) Words() []uint64 { return m.words }

// Committed returns the live capacity in bytes.
func (m *MemBackend) Committed() uint64 { return m.committed }

// GrowTo extends the live capacity to newSize bytes. In-process commitment
// is immediate — there is no medium to sync.
func (m *MemBackend) GrowTo(newSize uint64) error {
	if newSize <= m.committed {
		return nil
	}
	if newSize%LineSize != 0 || newSize > uint64(len(m.words))*WordSize {
		return fmt.Errorf("nvram: mem backend grow to %d bytes exceeds the %d-byte reserve", newSize, uint64(len(m.words))*WordSize)
	}
	m.committed = newSize
	return nil
}

// SyncLines is a no-op: process memory needs no flushing.
func (m *MemBackend) SyncLines([]uint64) {}

// NeedsSync reports false: the device skips SyncLines entirely.
func (m *MemBackend) NeedsSync() bool { return false }

// Close is a no-op.
func (m *MemBackend) Close() error { return nil }
