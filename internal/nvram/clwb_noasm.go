//go:build !amd64 || noasm

package nvram

import "unsafe"

// Portable stub of the cache-line write-back primitives: no-ops. The DAX
// backend still works over shared mappings (every write-back lands in the
// mapping, so kill -9 safety holds), but machine-crash durability on real
// pmem requires the amd64 flush path.
var (
	flushLine  func(unsafe.Pointer) = func(unsafe.Pointer) {}
	flushInstr                      = "noop"
)

func storeFence() {}
