//go:build amd64 && !noasm

#include "textflag.h"

// func cpuid7() (ebx uint32)
// CPUID.(EAX=7,ECX=0):EBX holds the CLWB (bit 24) and CLFLUSHOPT (bit 23)
// feature flags. Leaf 7 is only valid when the basic leaf range (CPUID
// leaf 0, EAX) reaches it; return 0 otherwise.
TEXT ·cpuid7(SB), NOSPLIT, $0-4
	MOVL $0, AX
	CPUID
	CMPL AX, $7
	JLT  none
	MOVL $7, AX
	MOVL $0, CX
	CPUID
	MOVL BX, ebx+0(FP)
	RET
none:
	MOVL $0, ebx+0(FP)
	RET

// func asmClwb(p unsafe.Pointer)
TEXT ·asmClwb(SB), NOSPLIT, $0-8
	MOVQ p+0(FP), AX
	CLWB (AX)
	RET

// func asmClflushopt(p unsafe.Pointer)
TEXT ·asmClflushopt(SB), NOSPLIT, $0-8
	MOVQ p+0(FP), AX
	CLFLUSHOPT (AX)
	RET

// func asmClflush(p unsafe.Pointer)
TEXT ·asmClflush(SB), NOSPLIT, $0-8
	MOVQ p+0(FP), AX
	CLFLUSH (AX)
	RET

// func asmSfence()
TEXT ·asmSfence(SB), NOSPLIT, $0-0
	SFENCE
	RET
