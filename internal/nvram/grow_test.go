package nvram

// Online-growth semantics of the device layer: committed capacity vs growth
// reserve, bounds enforcement at the old size until Grow commits, and — for
// the file backend — the crash ordering of GrowTo (file extension before
// header commit) plus elastic reopen adoption.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMemDeviceGrow(t *testing.T) {
	d := New(Config{Size: 4096, MaxSize: 16384})
	if got := d.Size(); got != 4096 {
		t.Fatalf("Size = %d, want 4096", got)
	}
	if got := d.Reserve(); got != 16384 {
		t.Fatalf("Reserve = %d, want 16384", got)
	}

	d.Store(4096-WordSize, 7)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("store past the committed size must panic before Grow")
			}
		}()
		d.Store(4096, 1)
	}()

	if err := d.Grow(8192); err != nil {
		t.Fatal(err)
	}
	if got := d.Size(); got != 8192 {
		t.Fatalf("Size after Grow = %d, want 8192", got)
	}
	d.Store(8192-WordSize, 9) // new capacity usable
	if v := d.Load(8192 - WordSize); v != 9 {
		t.Fatalf("load from grown region = %d, want 9", v)
	}
	if v := d.Load(4096 + WordSize); v != 0 {
		t.Fatalf("grown region must read as zero, got %d", v)
	}

	if err := d.Grow(4096); err != nil {
		t.Fatalf("shrinking Grow must be a no-op, got %v", err)
	}
	if got := d.Size(); got != 8192 {
		t.Fatalf("Size after no-op Grow = %d, want 8192", got)
	}
	if err := d.Grow(32768); err == nil {
		t.Fatal("Grow past the reserve must fail")
	}
}

func TestMemDeviceGrowWithoutReserve(t *testing.T) {
	d := New(Config{Size: 4096})
	if err := d.Grow(8192); err == nil {
		t.Fatal("Grow on a reserve-less device must fail")
	}
	if got := d.Size(); got != 4096 {
		t.Fatalf("failed Grow changed Size to %d", got)
	}
}

func TestMemDeviceGrowSurvivesCrash(t *testing.T) {
	d := New(Config{Size: 4096, MaxSize: 16384})
	f := d.NewFlusher()
	d.Store(WordSize, 42)
	f.Sync(WordSize)
	if err := d.Grow(8192); err != nil {
		t.Fatal(err)
	}
	d.Store(4096+WordSize, 43)
	f.Sync(4096 + WordSize)
	d.Crash()
	if got := d.Size(); got != 8192 {
		t.Fatalf("Size after crash = %d, want 8192 (grow is durable)", got)
	}
	if v := d.Load(4096 + WordSize); v != 43 {
		t.Fatalf("synced store in grown region lost: %d", v)
	}
}

func TestFileDeviceGrowAndElasticReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "grow.img")

	d, created, err := OpenFileDevice(path, Config{Size: 4096, MaxSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("expected creation")
	}
	fl := d.NewFlusher()
	d.Store(WordSize, 11)
	fl.Sync(WordSize)
	if err := d.Grow(64 << 10); err != nil {
		t.Fatal(err)
	}
	d.Store((64<<10)-WordSize, 12)
	fl.Sync((64 << 10) - WordSize)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Elastic reopen (MaxSize set, Size naming the ORIGINAL capacity) adopts
	// the grown size: a pool's committed size is state, not configuration.
	d2, created, err := OpenFileDevice(path, Config{Size: 4096, MaxSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if created {
		t.Fatal("reopen must attach, not recreate")
	}
	if got := d2.Size(); got != 64<<10 {
		t.Fatalf("reopened Size = %d, want %d", got, 64<<10)
	}
	if v := d2.Load((64 << 10) - WordSize); v != 12 {
		t.Fatalf("grown-region store lost across reopen: %d", v)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}

	// Non-elastic reopen with the stale explicit size is still rejected.
	if _, _, err := OpenFileDevice(path, Config{Size: 4096}); err == nil ||
		!strings.Contains(err.Error(), "formatted for") {
		t.Fatalf("stale-size reopen error = %v, want formatted-for mismatch", err)
	}
}

// TestFileGrowTornHeader simulates the crash window of GrowTo — file already
// extended, header still promising the old size — by rewriting the header
// size word back down after a completed grow. Reopen must adopt the OLD
// (header) size and then be able to re-grow.
func TestFileGrowTornHeader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.img")

	d, _, err := OpenFileDevice(path, Config{Size: 4096, MaxSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Grow(64 << 10); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sz [8]byte
	sz[0], sz[1] = 0x00, 0x10 // 4096 little-endian
	if _, err := f.WriteAt(sz[:], fhSizeOff); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	d2, _, err := OpenFileDevice(path, Config{MaxSize: 1 << 20})
	if err != nil {
		t.Fatalf("reopen after torn grow: %v", err)
	}
	if got := d2.Size(); got != 4096 {
		t.Fatalf("torn grow must recover the old size, got %d", got)
	}
	if err := d2.Grow(64 << 10); err != nil {
		t.Fatalf("re-grow after torn grow: %v", err)
	}
	if got := d2.Size(); got != 64<<10 {
		t.Fatalf("re-grown Size = %d, want %d", got, 64<<10)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
}
