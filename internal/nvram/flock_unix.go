//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package nvram

import (
	"errors"
	"fmt"
	"os"
	"syscall"
)

// lockFile takes an exclusive, non-blocking advisory lock on the backing
// file: two live processes mapping the same pmem image MAP_SHARED would
// serve independent allocators into one image and corrupt it undetectably,
// so the second open must fail loudly instead. The lock dies with the
// process (kill -9 included), which is exactly the ownership lifetime a
// crash-recoverable backing file needs.
func lockFile(f *os.File, path string) error {
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		if errors.Is(err, syscall.EWOULDBLOCK) {
			return fmt.Errorf("nvram: pmem file %s is locked by another live process", path)
		}
		return fmt.Errorf("nvram: lock pmem file %s: %w", path, err)
	}
	return nil
}
