//go:build unix && !linux

package nvram

import "os"

// msyncRange is a no-op outside linux: a MAP_SHARED mapping is already
// kill-9 durable through the page cache, and the strict path below provides
// the machine-crash barrier portably. (Raw msync syscalls are deliberately
// avoided here — darwin deprecated the raw-syscall path, and x/sys is not a
// dependency of this module.)
func msyncRange([]byte, bool) error { return nil }

// fdatasyncFile falls back to a full fsync where fdatasync is unavailable.
func fdatasyncFile(f *os.File) error { return f.Sync() }
