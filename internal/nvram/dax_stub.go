//go:build !unix

package nvram

// DAXBackend is unavailable on this platform; OpenDAXBackend always fails.
// The type exists so cross-platform callers compile.
type DAXBackend struct{}

// OpenDAXBackend fails: no shared mappings on this platform.
func OpenDAXBackend(string, uint64, uint64) (*DAXBackend, bool, error) {
	return nil, false, ErrFileBackendUnsupported
}

// Name identifies the backend kind.
func (db *DAXBackend) Name() string { return "dax" }

// Path returns the backing device/file path.
func (db *DAXBackend) Path() string { return "" }

// MapSync reports false on this platform.
func (db *DAXBackend) MapSync() bool { return false }

// FlushInstr reports the selected flush instruction name.
func (db *DAXBackend) FlushInstr() string { return flushInstr }

// Words returns no image on this platform.
func (db *DAXBackend) Words() []uint64 { return nil }

// Committed returns 0 on this platform.
func (db *DAXBackend) Committed() uint64 { return 0 }

// GrowTo fails: no shared mappings on this platform.
func (db *DAXBackend) GrowTo(uint64) error { return ErrFileBackendUnsupported }

// NeedsSync reports false on this platform.
func (db *DAXBackend) NeedsSync() bool { return false }

// SyncLines is a no-op on this platform.
func (db *DAXBackend) SyncLines([]uint64) {}

// Abandon is a no-op on this platform.
func (db *DAXBackend) Abandon() error { return nil }

// Close is a no-op on this platform.
func (db *DAXBackend) Close() error { return nil }

// OpenDAXDevice fails: no shared mappings on this platform.
func OpenDAXDevice(string, Config) (*Device, bool, error) {
	return nil, false, ErrFileBackendUnsupported
}
