//go:build amd64 && !noasm

package nvram

import "unsafe"

// The paper's persistence primitive on real hardware: write a cache line
// back to the memory hierarchy without a syscall. CLWB is the instruction
// built for pmem (writes back without evicting, so the line stays hot);
// CLFLUSHOPT is the weakly-ordered flush on slightly older parts; CLFLUSH
// is the universal but fully-serialized fallback. All three are ordered by
// the single SFENCE a fence issues after its line loop.
//
// Selection happens once at init via CPUID leaf 7 feature bits, so the
// per-line call is a direct function-pointer dispatch with no branch.

// Implemented in clwb_amd64.s.
func cpuid7() (ebx uint32)
func asmClwb(p unsafe.Pointer)
func asmClflushopt(p unsafe.Pointer)
func asmClflush(p unsafe.Pointer)
func asmSfence()

const (
	cpuidClflushopt = 1 << 23 // CPUID.(EAX=7,ECX=0):EBX bit 23
	cpuidClwb       = 1 << 24 // CPUID.(EAX=7,ECX=0):EBX bit 24
)

// flushLine writes the cache line containing p back toward the persistence
// domain; storeFence orders all preceding flushes. flushInstr names the
// selected instruction for logs/stats.
var (
	flushLine  func(unsafe.Pointer) = asmClflush
	flushInstr                      = "clflush"
)

func storeFence() { asmSfence() }

func init() {
	ebx := cpuid7()
	switch {
	case ebx&cpuidClwb != 0:
		flushLine, flushInstr = asmClwb, "clwb"
	case ebx&cpuidClflushopt != 0:
		flushLine, flushInstr = asmClflushopt, "clflushopt"
	}
}
