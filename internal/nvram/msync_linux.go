//go:build linux

package nvram

import (
	"os"
	"syscall"
	"unsafe"
)

// msyncRange flushes a page-aligned slice of a shared mapping to its file:
// MS_ASYNC (sync=false) starts kernel writeback without waiting, MS_SYNC
// (sync=true) waits for it.
func msyncRange(b []byte, sync bool) error {
	if len(b) == 0 {
		return nil
	}
	flags := uintptr(syscall.MS_ASYNC)
	if sync {
		flags = syscall.MS_SYNC
	}
	// The raw syscall stays: golang.org/x/sys is not a dependency of this
	// module, and msync has no wrapper in the standard syscall package.
	//lint:ignore SA1019 no msync wrapper exists outside x/sys
	_, _, errno := syscall.Syscall(syscall.SYS_MSYNC,
		uintptr(unsafe.Pointer(&b[0])), uintptr(len(b)), flags)
	if errno != 0 {
		return errno
	}
	return nil
}

// fdatasyncFile flushes file data (not metadata) to stable storage.
func fdatasyncFile(f *os.File) error {
	return syscall.Fdatasync(int(f.Fd()))
}
