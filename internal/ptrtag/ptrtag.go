// Package ptrtag defines the low-order mark bits stolen from node addresses.
// The allocator cache-aligns every node (64 bytes), so the low six bits of
// an address are zero and can carry algorithm state, exactly as the paper's
// C implementation marks pointers:
//
//   - Mark: Harris logical-deletion mark (linked list, hash table, skip
//     list) and the Natarajan-Mittal FLAG (BST).
//   - Tag: the Natarajan-Mittal TAG (BST only).
//   - Dirty: the link-and-persist "this link may not be durable yet" mark
//     (§3); set by the linearizing CAS, cleared after the write-back
//     completes, and honoured by helpers.
package ptrtag

// Mark bits. Kept below 1<<6 (node alignment).
const (
	Mark  uint64 = 1 << 0
	Tag   uint64 = 1 << 1
	Dirty uint64 = 1 << 2

	// AddrMask strips all mark bits from a link word.
	AddrMask = ^uint64(Mark | Tag | Dirty)
)

// Addr extracts the address from a link word.
func Addr(w uint64) uint64 { return w & AddrMask }

// IsMarked reports whether the Harris delete mark / NM flag is set.
func IsMarked(w uint64) bool { return w&Mark != 0 }

// IsTagged reports whether the NM tag is set.
func IsTagged(w uint64) bool { return w&Tag != 0 }

// IsDirty reports whether the link-and-persist dirty mark is set.
func IsDirty(w uint64) bool { return w&Dirty != 0 }
