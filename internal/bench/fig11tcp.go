package bench

import (
	"fmt"
	"time"

	"repro/internal/memcache"
)

// Fig11TCP is Figure 11 in the paper's actual configuration: client and
// server speak the memcached text protocol over TCP, so warm-up pays the
// full network + protocol cost that makes re-populating a volatile cache so
// much slower than recovering a durable one.
func Fig11TCP(o FigureOptions) (*Table, error) {
	o.fill()
	t := &Table{
		Title: "Figure 11 (TCP): NV-Memcached vs volatile, warm-up vs recovery",
		Header: []string{"keys", "nv-kops", "clht-kops",
			"warmup-clht-ms", "recover-nv-ms", "speedup"},
	}
	for _, keys := range capSizes([]int{1000, 10_000, 100_000}, o.MaxSize) {
		row, err := fig11TCPPoint(o, keys)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, *row)
	}
	return t, nil
}

func fig11TCPPoint(o FigureOptions, keys int) (*Row, error) {
	cfg := memcache.Config{
		MemoryBytes: uint64(keys)*768 + (64 << 20),
		Buckets:     nextPow2(keys),
		MaxConns:    o.Threads,
	}
	mt := &memcache.Memtier{
		KeyRange: keys,
		SetRatio: 1, GetRatio: 4,
		ValueLen: 64,
		Threads:  o.Threads,
		Duration: o.Duration,
	}

	// Volatile comparator (memcached-clht model) over TCP: time the warm-up.
	clht, err := memcache.NewCLHTCache(cfg)
	if err != nil {
		return nil, err
	}
	srvV, err := memcache.NewServer("127.0.0.1:0", o.Threads, clht, clht.Stats)
	if err != nil {
		return nil, err
	}
	wuStart := time.Now()
	if err := mt.PreloadTCP(srvV.Addr()); err != nil {
		srvV.Close()
		return nil, err
	}
	warmup := time.Since(wuStart)
	resV, err := mt.RunTCP(srvV.Addr())
	srvV.Close()
	if err != nil {
		return nil, err
	}

	// NV-Memcached over TCP: same preload + run, then crash and recover.
	nv, err := memcache.New(cfg)
	if err != nil {
		return nil, err
	}
	srvN, err := memcache.NewServer("127.0.0.1:0", o.Threads, nv, nv.Stats)
	if err != nil {
		return nil, err
	}
	if err := mt.PreloadTCP(srvN.Addr()); err != nil {
		srvN.Close()
		return nil, err
	}
	resN, err := mt.RunTCP(srvN.Addr())
	srvN.Close()
	if err != nil {
		return nil, err
	}
	nv.Flush()
	nv.Device().Crash()
	recStart := time.Now()
	if _, _, err := memcache.Recover(nv.Device(), cfg); err != nil {
		return nil, err
	}
	rec := time.Since(recStart)

	speedup := float64(warmup) / float64(rec)
	return &Row{
		Labels: []string{fmt.Sprintf("%d", keys)},
		Values: []float64{
			resN.Throughput / 1000,
			resV.Throughput / 1000,
			float64(warmup.Microseconds()) / 1000,
			float64(rec.Microseconds()) / 1000,
			speedup,
		},
	}, nil
}
