package bench

import (
	"strings"
	"testing"
	"time"
)

func quickCfg(st Structure, impl Impl) Config {
	return Config{
		Structure: st, Impl: impl, Size: 256, Threads: 2,
		UpdateRatio: 1.0, Duration: 30 * time.Millisecond,
	}
}

func TestRunAllImplsAllStructures(t *testing.T) {
	impls := []Impl{ImplLP, ImplLC, ImplLog, ImplLogEpochAlloc, ImplVolatile, ImplLPAllocLog}
	for _, st := range []Structure{List, Hash, SkipList, BST} {
		for _, im := range impls {
			r, err := Run(quickCfg(st, im))
			if err != nil {
				t.Fatalf("%s/%s: %v", st, im, err)
			}
			if r.Ops == 0 || r.Throughput <= 0 {
				t.Fatalf("%s/%s: no progress: %+v", st, im, r)
			}
		}
	}
}

func TestOpsModeRunsExactBudget(t *testing.T) {
	cfg := quickCfg(Hash, ImplLP)
	cfg.Ops = 1000
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Batch granularity is 64 ops/thread.
	if r.Ops < 1000 || r.Ops > 1000+64*uint64(cfg.Threads) {
		t.Fatalf("ops = %d, want ≈1000", r.Ops)
	}
}

func TestVolatileFasterThanDurable(t *testing.T) {
	base := quickCfg(List, ImplLP)
	base.Size = 64
	base.Threads = 1
	base.Duration = 100 * time.Millisecond
	durable, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Impl = ImplVolatile
	vol, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if vol.Throughput <= durable.Throughput {
		t.Fatalf("volatile (%.0f) not faster than durable (%.0f)",
			vol.Throughput, durable.Throughput)
	}
	if vol.SyncWaits != 0 {
		t.Fatalf("volatile run paid %d syncs", vol.SyncWaits)
	}
}

func TestLogFreeBeatsLogBasedOnUpdates(t *testing.T) {
	// The paper's headline (Figure 5 shape): log-free ≥ log-based on a
	// 100%-update workload.
	for _, st := range []Structure{Hash, SkipList} {
		cfg := quickCfg(st, ImplLC)
		cfg.Duration = 150 * time.Millisecond
		cfg.Threads = 1
		lf, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Impl = ImplLog
		lb, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if lf.Throughput <= lb.Throughput {
			t.Fatalf("%s: log-free (%.0f ops/s) not faster than log-based (%.0f ops/s)",
				st, lf.Throughput, lb.Throughput)
		}
	}
}

func TestAPTHitRatesHighForSmallStructures(t *testing.T) {
	r, err := Run(quickCfg(SkipList, ImplLP))
	if err != nil {
		t.Fatal(err)
	}
	if r.AllocHitRate() < 0.9 {
		t.Fatalf("alloc APT hit rate %.2f; the paper reports ≈100%% for small structures", r.AllocHitRate())
	}
	if r.UnlinkHitRate() < 0.5 {
		t.Fatalf("unlink APT hit rate %.2f; expected high for small structures", r.UnlinkHitRate())
	}
}

func TestTable1Renders(t *testing.T) {
	tab := Table1()
	var b strings.Builder
	tab.Fprint(&b)
	if !strings.Contains(b.String(), "PCM") {
		t.Fatal("Table 1 missing PCM row")
	}
}

func TestFigureDriversSmoke(t *testing.T) {
	o := FigureOptions{Duration: 15 * time.Millisecond, MaxSize: 512, Threads: 2}
	if _, err := Fig5(o); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig6(o); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig7(o); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig8(o); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig9a(o); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig9b(o); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig10(o); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryPointLeaksNothingUnexpected(t *testing.T) {
	dur, leaked, err := RecoveryPoint(Hash, 1024, 2)
	if err != nil {
		t.Fatal(err)
	}
	if dur <= 0 {
		t.Fatal("zero recovery duration")
	}
	_ = leaked // any leak count is valid; the sweep must just complete
}

func TestAblationsSmoke(t *testing.T) {
	o := FigureOptions{Duration: 15 * time.Millisecond, MaxSize: 512, Threads: 2}
	if _, err := AblationAreaShift(o); err != nil {
		t.Fatal(err)
	}
	if _, err := AblationLinkCacheBuckets(o); err != nil {
		t.Fatal(err)
	}
	if _, err := AblationGenSize(o); err != nil {
		t.Fatal(err)
	}
}

func TestAblationAreaShiftTradeoff(t *testing.T) {
	// Larger areas must not lower APT hit rates (§6.3's direction).
	o := FigureOptions{Duration: 60 * time.Millisecond, MaxSize: 4096, Threads: 1}
	tab, err := AblationAreaShift(o)
	if err != nil {
		t.Fatal(err)
	}
	first := tab.Rows[0].Values[0]              // 4KiB insert-hit%
	last := tab.Rows[len(tab.Rows)-1].Values[0] // 256KiB insert-hit%
	if last+1 < first {                         // allow 1pp noise
		t.Fatalf("insert hit rate fell with area size: %.1f%% -> %.1f%%", first, last)
	}
}

func TestFig11TCPSmoke(t *testing.T) {
	o := FigureOptions{Duration: 30 * time.Millisecond, MaxSize: 1000, Threads: 2}
	tab, err := Fig11TCP(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Recovery must beat TCP warm-up.
	speedup := tab.Rows[0].Values[4]
	if speedup < 1 {
		t.Fatalf("recovery slower than warm-up: speedup=%.2f", speedup)
	}
}
