package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/nvram"
)

// Ablations beyond the paper's figures, for the design choices DESIGN.md
// calls out. Each reuses the standard workload harness with one knob swept.

// AblationAreaShift sweeps the active-area granularity (§6.3: "the
// granularity at which we keep track of active memory areas is adjustable.
// Larger memory areas result in higher hit rates and throughput
// improvements, at the expense of increased recovery time"). Reported per
// granularity: APT hit rates, throughput, and recovery time of a crashed
// instance.
func AblationAreaShift(o FigureOptions) (*Table, error) {
	o.fill()
	t := &Table{
		Title: "Ablation: active-area granularity (skip list, 64K elements)",
		Header: []string{"area", "insert-hit%", "delete-hit%",
			"kops/s", "recovery-ms"},
	}
	size := 65536
	if size > o.MaxSize {
		size = o.MaxSize
	}
	for _, shift := range []uint{12, 14, 16, 18} {
		r, err := runWithStoreOptions(Config{
			Structure: SkipList, Impl: ImplLP, Size: size,
			Threads: 1, UpdateRatio: 1.0, Duration: o.Duration,
		}, func(opts *core.Options) { opts.AreaShift = shift })
		if err != nil {
			return nil, err
		}
		rec, err := recoveryWithAreaShift(size, shift)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{
			Labels: []string{fmt.Sprintf("%dKiB", 1<<(shift-10))},
			Values: []float64{
				100 * r.AllocHitRate(),
				100 * r.UnlinkHitRate(),
				r.Throughput / 1000,
				float64(rec.Microseconds()) / 1000,
			},
		})
	}
	return t, nil
}

// AblationLinkCacheBuckets sweeps the link cache size (§4.2 fixes 32
// buckets; more buckets mean fewer spurious flushes but a larger volatile
// footprint and worse cache behaviour).
func AblationLinkCacheBuckets(o FigureOptions) (*Table, error) {
	o.fill()
	t := &Table{
		Title:  "Ablation: link cache buckets (hash table, 1024 elements, 100% updates)",
		Header: []string{"buckets", "kops/s", "syncs/op"},
	}
	for _, buckets := range []int{8, 32, 128, 512} {
		r, err := runWithStoreOptions(Config{
			Structure: Hash, Impl: ImplLC, Size: 1024,
			Threads: 1, UpdateRatio: 1.0, Duration: o.Duration,
		}, func(opts *core.Options) { opts.LinkCacheBuckets = buckets })
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{
			Labels: []string{fmt.Sprintf("%d", buckets)},
			Values: []float64{r.Throughput / 1000, r.SyncsPerOp()},
		})
	}
	return t, nil
}

// AblationGenSize sweeps the reclamation generation size: small generations
// reclaim (and reuse) promptly but fence more often; large ones batch frees
// at the cost of retained garbage.
func AblationGenSize(o FigureOptions) (*Table, error) {
	o.fill()
	t := &Table{
		Title:  "Ablation: reclamation generation size (hash table, 4K elements)",
		Header: []string{"gen-size", "kops/s", "syncs/op"},
	}
	for _, gen := range []int{8, 32, 64, 256} {
		r, err := runWithStoreOptions(Config{
			Structure: Hash, Impl: ImplLP, Size: 4096,
			Threads: 1, UpdateRatio: 1.0, Duration: o.Duration,
		}, func(opts *core.Options) { opts.EpochGenSize = gen })
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{
			Labels: []string{fmt.Sprintf("%d", gen)},
			Values: []float64{r.Throughput / 1000, r.SyncsPerOp()},
		})
	}
	return t, nil
}

// runWithStoreOptions is Run with a core.Options mutator (log-free impls
// only).
func runWithStoreOptions(cfg Config, mutate func(*core.Options)) (Result, error) {
	cfg.fill()
	storeOptMutator = mutate
	defer func() { storeOptMutator = nil }()
	return Run(cfg)
}

// storeOptMutator is consulted by buildLogFree; nil outside ablations. The
// harness is single-run at a time, so a package variable keeps the plumbing
// out of the common path.
var storeOptMutator func(*core.Options)

// recoveryWithAreaShift builds a skip list at the given granularity,
// crashes it mid-burst, and times recovery (the cost side of the
// granularity trade-off).
func recoveryWithAreaShift(size int, shift uint) (time.Duration, error) {
	dev := nvram.New(nvram.Config{Size: deviceBytes(SkipList, size)})
	s, err := core.NewStore(dev, core.Options{MaxThreads: 2, AreaShift: shift})
	if err != nil {
		return 0, err
	}
	c := s.MustCtx(0)
	sl, err := core.NewSkipList(c)
	if err != nil {
		return 0, err
	}
	prefillInto(size, func(k uint64) { sl.Insert(c, k, k) }, false)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		k := uint64(rng.Int63n(int64(2*size))) + 1
		if rng.Intn(2) == 0 {
			sl.Insert(c, k, k)
		} else {
			sl.Delete(c, k)
		}
	}
	dev.Crash()
	s2, err := core.AttachStore(dev)
	if err != nil {
		return 0, err
	}
	stats := core.RecoverSkipList(s2, core.AttachSkipList(s2, sl.Head(), sl.Tail()), 2)
	return stats.Duration, nil
}
