// Package bench is the measurement harness behind every table and figure in
// the paper's evaluation (§6). It builds a data structure (log-free,
// log-based, or volatile) on a fresh simulated NVRAM device, prefills it to
// a target size, drives a configurable mixed workload from N worker
// goroutines, and reports throughput plus the persistence counters
// (sync waits, APT hit rates, link-cache activity) that explain it.
package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/logbased"
	"repro/internal/nvram"
)

// Impl selects the implementation under test.
type Impl string

// Implementations.
const (
	// ImplLP: log-free with link-and-persist only (§3) + NV-epochs.
	ImplLP Impl = "lp"
	// ImplLC: log-free with the link cache (§4) + NV-epochs.
	ImplLC Impl = "lc"
	// ImplLog: lock-based with redo logging + durable alloc logging (§6.2).
	ImplLog Impl = "log"
	// ImplLogEpochAlloc: redo logging but NV-epochs memory management
	// ("identical memory management schemes", Figure 8).
	ImplLogEpochAlloc Impl = "log-epochalloc"
	// ImplVolatile: NVRAM-oblivious lock-free structures (Figure 7).
	ImplVolatile Impl = "volatile"
	// ImplLPAllocLog: link-and-persist but traditional alloc logging —
	// the NV-epochs ablation baseline (Figure 9b).
	ImplLPAllocLog Impl = "lp-alloclog"
)

// Structure selects the data structure under test.
type Structure string

// Structures.
const (
	List     Structure = "ll"
	Hash     Structure = "ht"
	SkipList Structure = "sl"
	BST      Structure = "bst"
)

// Config describes one benchmark point.
type Config struct {
	Structure Structure
	Impl      Impl
	// Size is the steady-state element count; the key range is 2×Size so a
	// 50/50 insert/delete mix holds the size constant (§6.2 methodology).
	Size    int
	Threads int
	// UpdateRatio is the fraction of operations that are updates (split
	// evenly between inserts and deletes); the rest are searches. Figure 5
	// uses 1.0 (50% inserts / 50% removes), Figure 8 uses 1.0.
	UpdateRatio float64
	// Duration of the measured phase (time mode). Ignored if Ops > 0.
	Duration time.Duration
	// Ops, when positive, runs exactly Ops operations split across threads
	// (testing.B mode).
	Ops int
	// WriteLatency is the simulated NVRAM write latency (default 125ns;
	// ignored for ImplVolatile, which never writes back).
	WriteLatency time.Duration
	// Seed for workload generation (default 1).
	Seed int64
}

func (c *Config) fill() {
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.Size <= 0 {
		c.Size = 1024
	}
	if c.Duration == 0 {
		c.Duration = 300 * time.Millisecond
	}
	if c.WriteLatency == 0 {
		c.WriteLatency = nvram.DefaultWriteLatency
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Result reports one benchmark point.
type Result struct {
	Config     Config
	Ops        uint64
	Elapsed    time.Duration
	Throughput float64 // ops/sec

	SyncWaits uint64 // fences that waited for NVRAM write-backs
	Clwbs     uint64

	// APT behaviour (log-free implementations), for Figure 9a.
	APTAllocHits, APTAllocMisses   uint64
	APTUnlinkHits, APTUnlinkMisses uint64
}

// SyncsPerOp returns the average sync waits per operation.
func (r Result) SyncsPerOp() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.SyncWaits) / float64(r.Ops)
}

// AllocHitRate returns the APT hit rate for allocations (Figure 9a).
func (r Result) AllocHitRate() float64 {
	t := r.APTAllocHits + r.APTAllocMisses
	if t == 0 {
		return 0
	}
	return float64(r.APTAllocHits) / float64(t)
}

// UnlinkHitRate returns the APT hit rate for deallocations (Figure 9a).
func (r Result) UnlinkHitRate() float64 {
	t := r.APTUnlinkHits + r.APTUnlinkMisses
	if t == 0 {
		return 0
	}
	return float64(r.APTUnlinkHits) / float64(t)
}

// worker is one thread's bound operation set.
type worker struct {
	insert func(key, value uint64) bool
	delete func(key uint64) (uint64, bool)
	search func(key uint64) (uint64, bool)
	syncs  func() uint64 // cumulative sync waits for this thread
	done   func()
}

// fixture is a built structure plus its per-thread workers.
type fixture struct {
	workers []worker
	aptSum  func() (ah, am, uh, um uint64)
}

// deviceBytes sizes the simulated device for a structure of n elements.
func deviceBytes(st Structure, n int) uint64 {
	per := uint64(192) // node + slab slack
	if st == SkipList {
		per = 384 // towers
	}
	b := uint64(n)*per + (64 << 20)
	if st == Hash {
		b += uint64(nextPow2(n)) * 64 // bucket region
	}
	return b
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// build constructs the structure and returns its fixture.
func build(cfg Config) (*fixture, error) {
	dev := nvram.New(nvram.Config{
		Size:         deviceBytes(cfg.Structure, cfg.Size),
		WriteLatency: cfg.WriteLatency,
	})
	switch cfg.Impl {
	case ImplLP, ImplLC, ImplVolatile, ImplLPAllocLog:
		return buildLogFree(dev, cfg)
	case ImplLog, ImplLogEpochAlloc:
		return buildLogBased(dev, cfg)
	}
	return nil, fmt.Errorf("bench: unknown impl %q", cfg.Impl)
}

func buildLogFree(dev *nvram.Device, cfg Config) (*fixture, error) {
	opts := core.Options{
		MaxThreads:   cfg.Threads + 1, // +1: the prefill/recovery context
		LinkCache:    cfg.Impl == ImplLC,
		Volatile:     cfg.Impl == ImplVolatile,
		AllocLogging: cfg.Impl == ImplLPAllocLog,
	}
	if storeOptMutator != nil {
		storeOptMutator(&opts)
	}
	s, err := core.NewStore(dev, opts)
	if err != nil {
		return nil, err
	}
	if cfg.Impl == ImplVolatile {
		dev.SetWriteLatency(0)
	}
	setup := s.MustCtx(cfg.Threads)
	var mk func(c *core.Ctx) (func(k, v uint64) bool, func(k uint64) (uint64, bool), func(k uint64) (uint64, bool))
	switch cfg.Structure {
	case List:
		l, err := core.NewList(setup)
		if err != nil {
			return nil, err
		}
		mk = func(c *core.Ctx) (func(k, v uint64) bool, func(k uint64) (uint64, bool), func(k uint64) (uint64, bool)) {
			return func(k, v uint64) bool { return l.Insert(c, k, v) },
				func(k uint64) (uint64, bool) { return l.Delete(c, k) },
				func(k uint64) (uint64, bool) { return l.Search(c, k) }
		}
	case Hash:
		h, err := core.NewHashTable(setup, nextPow2(cfg.Size))
		if err != nil {
			return nil, err
		}
		mk = func(c *core.Ctx) (func(k, v uint64) bool, func(k uint64) (uint64, bool), func(k uint64) (uint64, bool)) {
			return func(k, v uint64) bool { return h.Insert(c, k, v) },
				func(k uint64) (uint64, bool) { return h.Delete(c, k) },
				func(k uint64) (uint64, bool) { return h.Search(c, k) }
		}
	case SkipList:
		sl, err := core.NewSkipList(setup)
		if err != nil {
			return nil, err
		}
		mk = func(c *core.Ctx) (func(k, v uint64) bool, func(k uint64) (uint64, bool), func(k uint64) (uint64, bool)) {
			return func(k, v uint64) bool { return sl.Insert(c, k, v) },
				func(k uint64) (uint64, bool) { return sl.Delete(c, k) },
				func(k uint64) (uint64, bool) { return sl.Search(c, k) }
		}
	case BST:
		bt, err := core.NewBST(setup)
		if err != nil {
			return nil, err
		}
		mk = func(c *core.Ctx) (func(k, v uint64) bool, func(k uint64) (uint64, bool), func(k uint64) (uint64, bool)) {
			return func(k, v uint64) bool { return bt.Insert(c, k, v) },
				func(k uint64) (uint64, bool) { return bt.Delete(c, k) },
				func(k uint64) (uint64, bool) { return bt.Search(c, k) }
		}
	default:
		return nil, fmt.Errorf("bench: unknown structure %q", cfg.Structure)
	}

	fx := &fixture{}
	ctxs := make([]*core.Ctx, cfg.Threads)
	for t := 0; t < cfg.Threads; t++ {
		c := s.MustCtx(t)
		ctxs[t] = c
		ins, del, sea := mk(c)
		fx.workers = append(fx.workers, worker{
			insert: ins,
			delete: del,
			search: sea,
			syncs:  func() uint64 { return c.Flusher().SyncWaits },
			done:   c.Shutdown,
		})
	}
	fx.aptSum = func() (ah, am, uh, um uint64) {
		for _, c := range append(ctxs, setup) {
			st := c.Epoch().Stats()
			ah += st.AllocHits
			am += st.AllocMisses
			uh += st.UnlinkHits
			um += st.UnlinkMisses
		}
		return
	}
	prefill(cfg, &fx.workers[0])
	return fx, nil
}

func buildLogBased(dev *nvram.Device, cfg Config) (*fixture, error) {
	s, err := logbased.NewStore(dev, logbased.Options{
		MaxThreads:     cfg.Threads + 1,
		EpochAllocator: cfg.Impl == ImplLogEpochAlloc,
	})
	if err != nil {
		return nil, err
	}
	setup := s.MustCtx(cfg.Threads)
	type ops struct {
		ins func(k, v uint64) bool
		del func(k uint64) (uint64, bool)
		sea func(k uint64) (uint64, bool)
	}
	var mk func(c *logbased.Ctx) ops
	switch cfg.Structure {
	case List:
		l, err := logbased.NewLazyList(setup)
		if err != nil {
			return nil, err
		}
		mk = func(c *logbased.Ctx) ops {
			return ops{
				func(k, v uint64) bool { return l.Insert(c, k, v) },
				func(k uint64) (uint64, bool) { return l.Delete(c, k) },
				func(k uint64) (uint64, bool) { return l.Search(c, k) },
			}
		}
	case Hash:
		h, err := logbased.NewHashTable(setup, nextPow2(cfg.Size))
		if err != nil {
			return nil, err
		}
		mk = func(c *logbased.Ctx) ops {
			return ops{
				func(k, v uint64) bool { return h.Insert(c, k, v) },
				func(k uint64) (uint64, bool) { return h.Delete(c, k) },
				func(k uint64) (uint64, bool) { return h.Search(c, k) },
			}
		}
	case SkipList:
		sl, err := logbased.NewSkipList(setup)
		if err != nil {
			return nil, err
		}
		mk = func(c *logbased.Ctx) ops {
			return ops{
				func(k, v uint64) bool { return sl.Insert(c, k, v) },
				func(k uint64) (uint64, bool) { return sl.Delete(c, k) },
				func(k uint64) (uint64, bool) { return sl.Search(c, k) },
			}
		}
	case BST:
		bt, err := logbased.NewBST(setup)
		if err != nil {
			return nil, err
		}
		mk = func(c *logbased.Ctx) ops {
			return ops{
				func(k, v uint64) bool { return bt.Insert(c, k, v) },
				func(k uint64) (uint64, bool) { return bt.Delete(c, k) },
				func(k uint64) (uint64, bool) { return bt.Search(c, k) },
			}
		}
	default:
		return nil, fmt.Errorf("bench: unknown structure %q", cfg.Structure)
	}
	fx := &fixture{aptSum: func() (a, b, c, d uint64) { return }}
	for t := 0; t < cfg.Threads; t++ {
		c := s.MustCtx(t)
		o := mk(c)
		fx.workers = append(fx.workers, worker{
			insert: o.ins,
			delete: o.del,
			search: o.sea,
			syncs:  func() uint64 { return c.Flusher().SyncWaits },
			done:   c.Shutdown,
		})
	}
	prefill(cfg, &fx.workers[0])
	return fx, nil
}

// prefill loads Size elements. The linked lists are filled in descending key
// order (O(n) instead of O(n²)); randomized structures are filled from a
// shuffled sequence. Every other key of the 2×Size range is inserted, so the
// 50/50 update mix operates at steady state.
func prefill(cfg Config, w *worker) {
	keys := make([]uint64, cfg.Size)
	for i := range keys {
		keys[i] = uint64(2*i) + 2 // even keys of [1, 2·Size]
	}
	switch cfg.Structure {
	case List:
		for i := len(keys) - 1; i >= 0; i-- {
			w.insert(keys[i], keys[i])
		}
	default:
		rng := rand.New(rand.NewSource(cfg.Seed))
		rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		for _, k := range keys {
			w.insert(k, k)
		}
	}
}

// Run executes one benchmark point.
func Run(cfg Config) (Result, error) {
	cfg.fill()
	fx, err := build(cfg)
	if err != nil {
		return Result{}, err
	}
	keyRange := uint64(2 * cfg.Size)

	var (
		totalOps   atomic.Uint64
		totalSyncs atomic.Uint64
		stop       atomic.Bool
	)
	opsPerThread := 0
	if cfg.Ops > 0 {
		opsPerThread = (cfg.Ops + cfg.Threads - 1) / cfg.Threads
	}

	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < cfg.Threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			w := &fx.workers[t]
			rng := rand.New(rand.NewSource(cfg.Seed*1000 + int64(t)))
			syncs0 := w.syncs()
			ops := uint64(0)
			for !stop.Load() {
				for batch := 0; batch < 64; batch++ {
					k := uint64(rng.Int63n(int64(keyRange))) + 1
					r := rng.Float64()
					switch {
					case r < cfg.UpdateRatio/2:
						w.insert(k, k)
					case r < cfg.UpdateRatio:
						w.delete(k)
					default:
						w.search(k)
					}
					ops++
				}
				if opsPerThread > 0 && ops >= uint64(opsPerThread) {
					break
				}
			}
			totalOps.Add(ops)
			totalSyncs.Add(w.syncs() - syncs0)
			w.done()
		}(t)
	}
	if opsPerThread == 0 {
		time.Sleep(cfg.Duration)
		stop.Store(true)
	}
	wg.Wait()
	elapsed := time.Since(start)

	ah, am, uh, um := fx.aptSum()
	res := Result{
		Config:          cfg,
		Ops:             totalOps.Load(),
		Elapsed:         elapsed,
		Throughput:      float64(totalOps.Load()) / elapsed.Seconds(),
		SyncWaits:       totalSyncs.Load(),
		APTAllocHits:    ah,
		APTAllocMisses:  am,
		APTUnlinkHits:   uh,
		APTUnlinkMisses: um,
	}
	return res, nil
}
