package bench

import (
	"fmt"
	"time"

	"repro/internal/memcache"
)

// Fig11 reproduces Figure 11 (§6.5): NV-Memcached against stock Memcached
// (lock-protected table) and memcached-clht (lock-free volatile table).
// For each key-range size it reports the memtier throughput (1:4 set:get,
// uniform keys, cache pre-warmed with half the key range) and the time to
// make the instance useful again after a restart: warm-up for the volatile
// systems, recovery for NV-Memcached.
func Fig11(o FigureOptions) (*Table, error) {
	o.fill()
	t := &Table{
		Title: "Figure 11: Memcached vs memcached-clht vs NV-Memcached",
		Header: []string{"keys", "mc-kops", "clht-kops", "nv-kops",
			"warmup-mc-ms", "warmup-clht-ms", "recover-nv-ms"},
	}
	for _, keys := range capSizes([]int{1000, 10_000, 100_000, 1_000_000}, o.MaxSize) {
		row, err := fig11Point(o, keys)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, *row)
	}
	return t, nil
}

func fig11Point(o FigureOptions, keys int) (*Row, error) {
	cfg := memcache.Config{
		MemoryBytes: uint64(keys)*768 + (64 << 20),
		Buckets:     nextPow2(keys),
		MaxConns:    o.Threads,
	}
	mt := &memcache.Memtier{
		KeyRange: keys,
		SetRatio: 1, GetRatio: 4,
		ValueLen: 64,
		Threads:  o.Threads,
		Duration: o.Duration,
	}

	// Stock memcached model: mutex-protected table.
	lock := memcache.NewLockCache()
	wuLockStart := time.Now()
	if err := mt.Preload(lock); err != nil {
		return nil, err
	}
	wuLock := time.Since(wuLockStart)
	rLock := mt.RunKV(lock)

	// memcached-clht model: same lock-free table, volatile.
	clht, err := memcache.NewCLHTCache(cfg)
	if err != nil {
		return nil, err
	}
	wuCLHTStart := time.Now()
	if err := mt.Preload(clht); err != nil {
		return nil, err
	}
	wuCLHT := time.Since(wuCLHTStart)
	rCLHT := mt.RunKV(clht)

	// NV-Memcached.
	nv, err := memcache.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := mt.Preload(nv); err != nil {
		return nil, err
	}
	rNV := mt.RunKV(nv)

	// Restart comparison: crash NV-Memcached and time its recovery.
	nv.Flush()
	nv.Device().Crash()
	recStart := time.Now()
	if _, _, err := memcache.Recover(nv.Device(), cfg); err != nil {
		return nil, fmt.Errorf("fig11: recovery: %w", err)
	}
	rec := time.Since(recStart)

	return &Row{
		Labels: []string{fmt.Sprintf("%d", keys)},
		Values: []float64{
			rLock.Throughput / 1000,
			rCLHT.Throughput / 1000,
			rNV.Throughput / 1000,
			float64(wuLock.Microseconds()) / 1000,
			float64(wuCLHT.Microseconds()) / 1000,
			float64(rec.Microseconds()) / 1000,
		},
	}, nil
}
