package bench

import (
	"os"
	"testing"

	"repro/internal/epoch"
)

func TestMain(m *testing.M) {
	epoch.EnableRetireDebug()
	os.Exit(m.Run())
}

// TestFig5StylePointStress reproduces the fig5 hash point that surfaced a
// page co-ownership bug: 8 threads, 50/50 updates, heavy reclamation churn.
func TestFig5StylePointStress(t *testing.T) {
	for i := 0; i < 3; i++ {
		if _, err := Run(Config{
			Structure: Hash, Impl: ImplLC, Size: 4096, Threads: 8,
			UpdateRatio: 1.0, Ops: 150_000,
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestHotKeyChurnStress maximizes helper/deleter unlink races: tiny key
// space, all threads colliding, both persistence modes.
func TestHotKeyChurnStress(t *testing.T) {
	for _, impl := range []Impl{ImplLP, ImplLC} {
		if _, err := Run(Config{
			Structure: Hash, Impl: impl, Size: 32, Threads: 8,
			UpdateRatio: 1.0, Ops: 150_000,
		}); err != nil {
			t.Fatal(err)
		}
	}
}
