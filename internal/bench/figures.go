package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/nvram"
)

// Row is one line of a reproduced table/figure.
type Row struct {
	Labels []string
	Values []float64
}

// Table is a reproduced figure: a header plus rows.
type Table struct {
	Title  string
	Header []string
	Rows   []Row
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	for _, h := range t.Header {
		fmt.Fprintf(w, "%-14s", h)
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		for _, l := range r.Labels {
			fmt.Fprintf(w, "%-14s", l)
		}
		for _, v := range r.Values {
			fmt.Fprintf(w, "%-14.2f", v)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// FprintCSV renders the table as comma-separated values (for plotting).
func (t *Table) FprintCSV(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", t.Title)
	for i, h := range t.Header {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		fmt.Fprint(w, h)
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		for i, l := range r.Labels {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			fmt.Fprint(w, l)
		}
		for _, v := range r.Values {
			fmt.Fprintf(w, ",%.4f", v)
		}
		fmt.Fprintln(w)
	}
}

// FigureOptions scales the experiments to the host.
type FigureOptions struct {
	// Duration per benchmark point.
	Duration time.Duration
	// MaxSize caps structure sizes (the paper's largest points are 4M
	// elements; 1M keeps the simulator's two memory images modest).
	MaxSize int
	// Threads is the concurrent-thread count (paper: 8).
	Threads int
}

func (o *FigureOptions) fill() {
	if o.Duration == 0 {
		o.Duration = 300 * time.Millisecond
	}
	if o.MaxSize == 0 {
		o.MaxSize = 1 << 20
	}
	if o.Threads == 0 {
		o.Threads = 8
	}
}

func capSizes(sizes []int, max int) []int {
	var out []int
	for _, s := range sizes {
		if s <= max {
			out = append(out, s)
		}
	}
	return out
}

func sizeLabel(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dK", n>>10)
	}
	return fmt.Sprintf("%d", n)
}

// structSizes returns each structure's size sweep from Figure 5.
func structSizes(st Structure, max int) []int {
	if st == List {
		return capSizes([]int{32, 128, 4096, 65536}, max)
	}
	return capSizes([]int{128, 4096, 65536, 1 << 20, 4 << 20}, max)
}

// Table1 reproduces Table 1 (the latency model).
func Table1() *Table {
	t := &Table{
		Title:  "Table 1: caches, DRAM, and NVRAM (projected) latencies (ns)",
		Header: []string{"level", "read", "write"},
	}
	for _, r := range nvram.LatencyTable {
		t.Rows = append(t.Rows, Row{
			Labels: []string{r.Level},
			Values: []float64{float64(r.ReadNanos), float64(r.WriteNanos)},
		})
	}
	return t
}

// ratio runs cfg under two implementations and returns throughput(a)/throughput(b).
func ratio(cfg Config, a, b Impl) (float64, error) {
	cfgA := cfg
	cfgA.Impl = a
	ra, err := Run(cfgA)
	if err != nil {
		return 0, err
	}
	cfgB := cfg
	cfgB.Impl = b
	rb, err := Run(cfgB)
	if err != nil {
		return 0, err
	}
	if rb.Throughput == 0 {
		return 0, fmt.Errorf("bench: zero baseline throughput")
	}
	return ra.Throughput / rb.Throughput, nil
}

// Fig5 reproduces Figure 5: update throughput of the log-free structures
// relative to the redo-log implementations, per structure/size, at 1 and N
// threads (50% inserts / 50% removes).
func Fig5(o FigureOptions) (*Table, error) {
	o.fill()
	t := &Table{
		Title:  "Figure 5: log-free update throughput relative to log-based",
		Header: []string{"structure", "size", "1-thread", fmt.Sprintf("%d-threads", o.Threads)},
	}
	for _, st := range []Structure{SkipList, List, Hash, BST} {
		for _, size := range structSizes(st, o.MaxSize) {
			row := Row{Labels: []string{string(st), sizeLabel(size)}}
			for _, th := range []int{1, o.Threads} {
				r, err := ratio(Config{
					Structure: st, Size: size, Threads: th,
					UpdateRatio: 1.0, Duration: o.Duration,
				}, ImplLC, ImplLog)
				if err != nil {
					return nil, err
				}
				row.Values = append(row.Values, r)
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// Fig6 reproduces Figure 6: the 1024-element linked list's log-free/log
// ratio as NVRAM write latency grows (125ns, 1.25µs, 12.5µs).
func Fig6(o FigureOptions) (*Table, error) {
	o.fill()
	t := &Table{
		Title:  "Figure 6: linked list (1024 elems) vs log-based, by NVRAM write latency",
		Header: []string{"latency", "1-thread", fmt.Sprintf("%d-threads", o.Threads)},
	}
	for _, lat := range []time.Duration{125 * time.Nanosecond, 1250 * time.Nanosecond, 12500 * time.Nanosecond} {
		row := Row{Labels: []string{lat.String()}}
		for _, th := range []int{1, o.Threads} {
			r, err := ratio(Config{
				Structure: List, Size: 1024, Threads: th,
				UpdateRatio: 1.0, Duration: o.Duration, WriteLatency: lat,
			}, ImplLC, ImplLog)
			if err != nil {
				return nil, err
			}
			row.Values = append(row.Values, r)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig7 reproduces Figure 7: the durable linked list's update throughput
// relative to the NVRAM-oblivious implementation, by size.
func Fig7(o FigureOptions) (*Table, error) {
	o.fill()
	t := &Table{
		Title:  "Figure 7: durable linked list vs volatile implementation",
		Header: []string{"size", "1-thread", fmt.Sprintf("%d-threads", o.Threads)},
	}
	for _, size := range capSizes([]int{32, 128, 4096, 65536}, o.MaxSize) {
		row := Row{Labels: []string{sizeLabel(size)}}
		for _, th := range []int{1, o.Threads} {
			r, err := ratio(Config{
				Structure: List, Size: size, Threads: th,
				UpdateRatio: 1.0, Duration: o.Duration,
			}, ImplLC, ImplVolatile)
			if err != nil {
				return nil, err
			}
			row.Values = append(row.Values, r)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig8 reproduces Figure 8: link-and-persist (LP) and link cache (LC)
// throughput normalized to the log-based implementation, 1024-element
// structures, 100% updates, identical memory management everywhere.
func Fig8(o FigureOptions) (*Table, error) {
	o.fill()
	t := &Table{
		Title:  "Figure 8: LP and LC throughput normalized to log-based (1024 elems, 100% updates)",
		Header: []string{"structure", "threads", "LP", "LC"},
	}
	for _, st := range []Structure{Hash, SkipList, List, BST} {
		for _, th := range []int{1, o.Threads} {
			row := Row{Labels: []string{string(st), fmt.Sprintf("%dt", th)}}
			base := Config{
				Structure: st, Size: 1024, Threads: th,
				UpdateRatio: 1.0, Duration: o.Duration,
			}
			for _, impl := range []Impl{ImplLP, ImplLC} {
				r, err := ratio(base, impl, ImplLogEpochAlloc)
				if err != nil {
					return nil, err
				}
				row.Values = append(row.Values, r)
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// Fig9a reproduces Figure 9a: the active page table hit rate for insert
// (allocation) and delete (deallocation) as structure size grows, measured
// on a skip list.
func Fig9a(o FigureOptions) (*Table, error) {
	o.fill()
	t := &Table{
		Title:  "Figure 9a: active page table hit rates (skip list)",
		Header: []string{"size", "insert-hit%", "delete-hit%"},
	}
	for _, size := range structSizes(SkipList, o.MaxSize) {
		r, err := Run(Config{
			Structure: SkipList, Impl: ImplLP, Size: size,
			Threads: 1, UpdateRatio: 1.0, Duration: o.Duration,
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{
			Labels: []string{sizeLabel(size)},
			Values: []float64{100 * r.AllocHitRate(), 100 * r.UnlinkHitRate()},
		})
	}
	return t, nil
}

// Fig9b reproduces Figure 9b: throughput improvement due to NV-epochs over
// traditional durable alloc/free logging, per structure and size.
func Fig9b(o FigureOptions) (*Table, error) {
	o.fill()
	t := &Table{
		Title:  "Figure 9b: throughput improvement due to NV-epochs",
		Header: []string{"structure", "size", "improvement"},
	}
	for _, st := range []Structure{Hash, BST, SkipList, List} {
		for _, size := range structSizes(st, o.MaxSize) {
			r, err := ratio(Config{
				Structure: st, Size: size, Threads: 1,
				UpdateRatio: 1.0, Duration: o.Duration,
			}, ImplLP, ImplLPAllocLog)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, Row{
				Labels: []string{string(st), sizeLabel(size)},
				Values: []float64{r},
			})
		}
	}
	return t, nil
}

// Fig10 reproduces Figure 10: recovery time by structure and size. The
// structure is built, a burst of updates is stopped at an arbitrary point,
// the caches are purged (crash), and the §5.5 recovery procedure is timed.
func Fig10(o FigureOptions) (*Table, error) {
	o.fill()
	t := &Table{
		Title:  "Figure 10: data structure recovery times (ns)",
		Header: []string{"structure", "size", "recovery-ns", "leaked"},
	}
	for _, st := range []Structure{Hash, BST, SkipList, List} {
		for _, size := range structSizes(st, o.MaxSize) {
			dur, leaked, err := RecoveryPoint(st, size, o.Threads)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, Row{
				Labels: []string{string(st), sizeLabel(size)},
				Values: []float64{float64(dur.Nanoseconds()), float64(leaked)},
			})
		}
	}
	return t, nil
}

// RecoveryPoint builds one structure, crashes it mid-update-burst, and
// times recovery.
func RecoveryPoint(st Structure, size, par int) (time.Duration, int, error) {
	dev := nvram.New(nvram.Config{Size: deviceBytes(st, size)})
	s, err := core.NewStore(dev, core.Options{MaxThreads: par + 1})
	if err != nil {
		return 0, 0, err
	}
	c := s.MustCtx(0)
	rng := rand.New(rand.NewSource(7))
	keyRange := int64(2 * size)

	burst := func(ins func(k, v uint64) bool, del func(k uint64) (uint64, bool)) {
		for i := 0; i < 2000; i++ {
			k := uint64(rng.Int63n(keyRange)) + 1
			if rng.Intn(2) == 0 {
				ins(k, k)
			} else {
				del(k)
			}
		}
	}

	var recover func(s2 *core.Store) core.RecoveryStats
	switch st {
	case List:
		l, err := core.NewList(c)
		if err != nil {
			return 0, 0, err
		}
		prefillInto(size, func(k uint64) { l.Insert(c, k, k) }, true)
		burst(func(k, v uint64) bool { return l.Insert(c, k, v) },
			func(k uint64) (uint64, bool) { return l.Delete(c, k) })
		recover = func(s2 *core.Store) core.RecoveryStats {
			return core.RecoverList(s2, core.AttachList(s2, l.Head(), l.Tail()), par)
		}
	case Hash:
		h, err := core.NewHashTable(c, nextPow2(size))
		if err != nil {
			return 0, 0, err
		}
		prefillInto(size, func(k uint64) { h.Insert(c, k, k) }, false)
		burst(func(k, v uint64) bool { return h.Insert(c, k, v) },
			func(k uint64) (uint64, bool) { return h.Delete(c, k) })
		recover = func(s2 *core.Store) core.RecoveryStats {
			return core.RecoverHashTable(s2, core.AttachHashTable(s2, h.Buckets(), h.NumBuckets(), h.Tail()), par)
		}
	case SkipList:
		sl, err := core.NewSkipList(c)
		if err != nil {
			return 0, 0, err
		}
		prefillInto(size, func(k uint64) { sl.Insert(c, k, k) }, false)
		burst(func(k, v uint64) bool { return sl.Insert(c, k, v) },
			func(k uint64) (uint64, bool) { return sl.Delete(c, k) })
		recover = func(s2 *core.Store) core.RecoveryStats {
			return core.RecoverSkipList(s2, core.AttachSkipList(s2, sl.Head(), sl.Tail()), par)
		}
	case BST:
		bt, err := core.NewBST(c)
		if err != nil {
			return 0, 0, err
		}
		prefillInto(size, func(k uint64) { bt.Insert(c, k, k) }, false)
		burst(func(k, v uint64) bool { return bt.Insert(c, k, v) },
			func(k uint64) (uint64, bool) { return bt.Delete(c, k) })
		recover = func(s2 *core.Store) core.RecoveryStats {
			return core.RecoverBST(s2, core.AttachBST(s2, bt.Root(), bt.Sentinel()), par)
		}
	}

	// Crash: purge the caches (everything not written back is lost).
	dev.Crash()
	s2, err := core.AttachStore(dev)
	if err != nil {
		return 0, 0, err
	}
	stats := recover(s2)
	return stats.Duration, stats.Leaked, nil
}

func prefillInto(size int, ins func(k uint64), descending bool) {
	keys := make([]uint64, size)
	for i := range keys {
		keys[i] = uint64(2*i) + 2
	}
	if descending {
		for i := size - 1; i >= 0; i-- {
			ins(keys[i])
		}
		return
	}
	rng := rand.New(rand.NewSource(3))
	rng.Shuffle(size, func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for _, k := range keys {
		ins(k)
	}
}
