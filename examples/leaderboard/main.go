// leaderboard: a durable game leaderboard on the ordered byte-key map
// (KindOrderedMap) — the "ordered sweep over durable keys" workload the v2
// ordered surface unlocks. Scores index an ordered map under a
// score-descending composite key (inverted big-endian score, then player
// name), so "top N" is one range scan with no sorting, updates are
// move-by-delete-and-insert, and the whole board survives a power failure.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"sync"

	"repro/logfree"
)

const (
	workers      = 4
	roundsPerBot = 300
	players      = 64
)

// rankKey composites a leaderboard key: ^score big-endian first, so an
// ascending byte scan visits high scores first, then the player name to
// break ties deterministically.
func rankKey(score uint64, player string) []byte {
	k := make([]byte, 8+len(player))
	binary.BigEndian.PutUint64(k, ^score)
	copy(k[8:], player)
	return k
}

func rankScore(k []byte) uint64 { return ^binary.BigEndian.Uint64(k) }

func playerName(i int) string { return fmt.Sprintf("player-%02d", i) }

func main() {
	rt, err := logfree.New(
		logfree.WithSize(128<<20),
		logfree.WithLinkCache(true),
	)
	if err != nil {
		log.Fatal(err)
	}
	// Two durable structures share the runtime: the rank index (ordered)
	// and a hash map holding each player's current score, so an update can
	// find and remove its stale rank entry.
	board, err := rt.OrderedMap("board")
	if err != nil {
		log.Fatal(err)
	}
	scores, err := rt.Map("scores", 1024)
	if err != nil {
		log.Fatal(err)
	}

	// Bots post monotonically growing scores concurrently.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var buf [8]byte
			for i := 0; i < roundsPerBot; i++ {
				// Players partition by worker, so each player's
				// read-delete-insert sequence is single-writer; the board
				// and score map themselves are shared and contended.
				p := playerName(w*(players/workers) + rng.Intn(players/workers))
				gain := uint64(1 + rng.Intn(100))
				var cur uint64
				if v, ok := scores.Get([]byte(p)); ok {
					cur = binary.BigEndian.Uint64(v)
					board.Delete(rankKey(cur, p))
				}
				next := cur + gain
				binary.BigEndian.PutUint64(buf[:], next)
				if err := scores.Set([]byte(p), buf[:]); err != nil {
					log.Fatal(err)
				}
				if err := board.Set(rankKey(next, p), nil); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()

	fmt.Println("top 5 before the crash:")
	printTop(board, 5)

	// Power failure + reboot + recovery: the board comes back ordered.
	rt2, err := rt.SimulateCrash()
	if err != nil {
		log.Fatal(err)
	}
	board2, err := rt2.OrderedMap("board")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top 5 after recovery:")
	printTop(board2, 5)
	if min, _, ok := board2.Max(); ok {
		// Max of the inverted-key space is the *lowest* score on the board.
		fmt.Printf("lowest ranked: %s (%d points)\n", min[8:], rankScore(min))
	}
}

func printTop(board *logfree.OrderedByteMap, n int) {
	rank := 0
	for k := range board.Ascend() {
		rank++
		fmt.Printf("  #%d %s — %d points\n", rank, k[8:], rankScore(k))
		if rank >= n {
			break
		}
	}
}
