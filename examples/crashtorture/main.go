// crashtorture: an adversarial durability demonstration. Rounds of
// concurrent updates are cut short by simulated power failures with random
// partial cache eviction (any subset of un-flushed lines may or may not
// have made it to NVRAM); after each recovery the store must still contain
// every operation that completed, reject none that were undone, and leak no
// memory. Run it with -rounds 50 for a soak test, or with -pmem-file to
// drive the same torture over the file-backed (mmap) NVRAM backend — the
// recovery paths must hold identically on both persistence substrates.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"

	"repro/logfree"
)

func main() {
	rounds := flag.Int("rounds", 10, "crash/recover rounds")
	workers := flag.Int("workers", 8, "concurrent updaters")
	pmemFile := flag.String("pmem-file", "", "torture the file-backed (mmap) backend at this path")
	flag.Parse()

	opts := []logfree.Option{
		logfree.WithSize(128 << 20),
		logfree.WithMaxThreads(*workers),
	}
	if *pmemFile != "" {
		opts = append(opts, logfree.WithFile(*pmemFile))
	} else {
		opts = append(opts, logfree.WithLinkCache(true))
	}
	rt, err := logfree.New(opts...)
	if err != nil {
		log.Fatal(err)
	}
	set, err := rt.BST("torture")
	if err != nil {
		log.Fatal(err)
	}

	// mustHave[k] is set when a worker's insert of k completed and no later
	// completed delete removed it. Workers own disjoint key ranges, so
	// per-key operation order is unambiguous.
	mustHave := make([]map[uint64]bool, *workers)
	for w := range mustHave {
		mustHave[w] = make(map[uint64]bool)
	}

	for round := 0; round < *rounds; round++ {
		var wg sync.WaitGroup
		for w := 0; w < *workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(round*1000 + w)))
				for i := 0; i < 400; i++ {
					k := uint64(w)<<20 | uint64(rng.Intn(256)) + 1
					if rng.Intn(2) == 0 {
						if set.Insert(k, uint64(round)) {
							mustHave[w][k] = true
						}
					} else {
						if _, ok := set.Delete(k); ok {
							delete(mustHave[w], k)
						}
					}
				}
			}(w)
		}
		wg.Wait()
		rt.Drain() // completed ops become durable at the latest here

		// Adversarial crash: evict a random subset of dirty lines first.
		rt.Device().EvictRandom(rand.New(rand.NewSource(int64(round))), 0.5)
		rt2, err := rt.SimulateCrash()
		if err != nil {
			log.Fatalf("round %d: recovery failed: %v", round, err)
		}
		rt = rt2
		set, err = rt.BST("torture")
		if err != nil {
			log.Fatal(err)
		}

		checked, total := 0, 0
		for w := 0; w < *workers; w++ {
			for k := range mustHave[w] {
				total++
				if !set.Contains(k) {
					log.Fatalf("round %d: completed insert of %d lost in crash", round, k)
				}
				checked++
			}
		}
		st := rt.RecoveryStats()
		fmt.Printf("round %2d: %4d completed inserts verified, recovery %8v, %3d leaks freed\n",
			round, checked, st.Duration, st.Leaked)
		_ = total
	}
	fmt.Println("torture passed: durable linearizability held through every crash")
}
