// Quickstart: create a durable byte-key map on simulated NVRAM, update it,
// power-fail the machine, recover, and observe that every completed
// operation survived — the paper's durable linearizability guarantee, with
// zero logging in the data-structure operations.
package main

import (
	"fmt"
	"log"

	"repro/logfree"
)

func main() {
	// 64 MiB of simulated NVRAM, link cache enabled (§4). No thread plumbing:
	// operations draw implicit sessions, which grow with demand.
	rt, err := logfree.New(
		logfree.WithSize(64<<20),
		logfree.WithLinkCache(true),
	)
	if err != nil {
		log.Fatal(err)
	}

	users, err := rt.OpenOrCreate("users", logfree.Spec{Buckets: 1024})
	if err != nil {
		log.Fatal(err)
	}

	// Arbitrary byte keys and values, durably linearizable: once Set
	// returns (and any link cache entries are flushed by dependent
	// operations), a crash cannot undo it. The bulk load goes through a
	// Batch: one shared content fence for the whole group (~N+1 NVRAM sync
	// waits instead of 2N), each user still individually crash-atomic.
	b := users.Batch()
	for id := 1; id <= 100; id++ {
		key := fmt.Sprintf("user:%03d", id)
		val := fmt.Sprintf(`{"id":%d,"credits":%d}`, id, id*1000)
		b.Set([]byte(key), []byte(val))
	}
	if err := b.Commit(); err != nil {
		log.Fatal(err)
	}
	users.Delete([]byte("user:042"))
	fmt.Printf("before crash: %d users\n", users.Len())

	// With the link cache, an update's durability may be deferred until a
	// dependent operation flushes it (§4.1: the client considers the
	// operation complete once the cache is flushed). Drain makes every
	// completed update durable before we pull the plug deliberately.
	rt.Drain()

	// Power failure: everything in the simulated CPU cache that was not
	// written back is lost; recovery sweeps the active pages for leaks.
	rt2, err := rt.SimulateCrash()
	if err != nil {
		log.Fatal(err)
	}
	for _, rep := range rt2.RecoveryReports() {
		fmt.Printf("recovered %v %q\n", rep.Kind, rep.Name)
	}
	st := rt2.RecoveryStats()
	fmt.Printf("recovery pass: %v, %d leaked objects freed\n", st.Duration, st.Leaked)

	users2, err := rt2.OpenOrCreate("users", logfree.Spec{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after recovery: %d users\n", users2.Len())
	if v, ok := users2.Get([]byte("user:007")); ok {
		fmt.Printf("user:007 -> %s\n", v)
	}
	if users2.Contains([]byte("user:042")) {
		log.Fatal("deleted user resurrected!")
	}
	fmt.Println("deleted user stayed deleted — durable linearizability holds")
}
