// Quickstart: create a durable byte-key map on simulated NVRAM, update it,
// power-fail the machine, recover, and observe that every completed
// operation survived — the paper's durable linearizability guarantee, with
// zero logging in the data-structure operations.
package main

import (
	"fmt"
	"log"

	"repro/logfree"
)

func main() {
	// 64 MiB of simulated NVRAM, 4 worker threads, link cache enabled (§4).
	rt, err := logfree.New(
		logfree.WithSize(64<<20),
		logfree.WithMaxThreads(4),
		logfree.WithLinkCache(true),
	)
	if err != nil {
		log.Fatal(err)
	}

	h := rt.Handle(0) // one handle per goroutine
	users, err := rt.OpenOrCreate(h, "users", logfree.Spec{Buckets: 1024})
	if err != nil {
		log.Fatal(err)
	}

	// Arbitrary byte keys and values, durably linearizable: once Set
	// returns (and any link cache entries are flushed by dependent
	// operations), a crash cannot undo it.
	for id := 1; id <= 100; id++ {
		key := fmt.Sprintf("user:%03d", id)
		val := fmt.Sprintf(`{"id":%d,"credits":%d}`, id, id*1000)
		if err := users.Set(h, []byte(key), []byte(val)); err != nil {
			log.Fatal(err)
		}
	}
	users.Delete(h, []byte("user:042"))
	fmt.Printf("before crash: %d users\n", users.Len(h))

	// With the link cache, an update's durability may be deferred until a
	// dependent operation flushes it (§4.1: the client considers the
	// operation complete once the cache is flushed). Drain makes every
	// completed update durable before we pull the plug deliberately.
	rt.Drain()

	// Power failure: everything in the simulated CPU cache that was not
	// written back is lost; recovery sweeps the active pages for leaks.
	rt2, err := rt.SimulateCrash()
	if err != nil {
		log.Fatal(err)
	}
	for _, rep := range rt2.RecoveryReports() {
		fmt.Printf("recovered %v %q\n", rep.Kind, rep.Name)
	}
	st := rt2.RecoveryStats()
	fmt.Printf("recovery pass: %v, %d leaked objects freed\n", st.Duration, st.Leaked)

	h2 := rt2.Handle(0)
	users2, err := rt2.OpenOrCreate(h2, "users", logfree.Spec{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after recovery: %d users\n", users2.Len(h2))
	if v, ok := users2.Get(h2, []byte("user:007")); ok {
		fmt.Printf("user:007 -> %s\n", v)
	}
	if users2.Contains(h2, []byte("user:042")) {
		log.Fatal("deleted user resurrected!")
	}
	fmt.Println("deleted user stayed deleted — durable linearizability holds")
}
