// Quickstart: create a durable hash table on simulated NVRAM, update it,
// power-fail the machine, recover, and observe that every completed
// operation survived — the paper's durable linearizability guarantee, with
// zero logging in the data-structure operations.
package main

import (
	"fmt"
	"log"

	"repro/logfree"
)

func main() {
	// 64 MiB of simulated NVRAM, 4 worker threads, link cache enabled (§4).
	rt, err := logfree.New(logfree.Config{
		Size:       64 << 20,
		MaxThreads: 4,
		LinkCache:  true,
	})
	if err != nil {
		log.Fatal(err)
	}

	h := rt.Handle(0) // one handle per goroutine
	users, err := rt.CreateHashTable(h, "users", 1024)
	if err != nil {
		log.Fatal(err)
	}

	// Updates are durably linearizable: once Insert returns (and any link
	// cache entries are flushed by dependent operations), a crash cannot
	// undo them.
	for id := uint64(1); id <= 100; id++ {
		users.Insert(h, id, id*1000)
	}
	users.Delete(h, 42)
	fmt.Printf("before crash: %d users\n", users.Len(h))

	// With the link cache, an update's durability may be deferred until a
	// dependent operation flushes it (§4.1: the client considers the
	// operation complete once the cache is flushed). Drain makes every
	// completed update durable before we pull the plug deliberately.
	rt.Drain()

	// Power failure: everything in the simulated CPU cache that was not
	// written back is lost; recovery sweeps the active pages for leaks.
	rt2, err := rt.SimulateCrash()
	if err != nil {
		log.Fatal(err)
	}
	for _, rep := range rt2.RecoveryReports() {
		fmt.Printf("recovered %v %s in %v (%d leaked objects freed)\n",
			rep.Kind, rep.Name, rep.Duration, rep.Leaked)
	}

	users2, err := rt2.OpenHashTable("users")
	if err != nil {
		log.Fatal(err)
	}
	h2 := rt2.Handle(0)
	fmt.Printf("after recovery: %d users\n", users2.Len(h2))
	if v, ok := users2.Search(h2, 7); ok {
		fmt.Printf("user 7 -> %d\n", v)
	}
	if users2.Contains(h2, 42) {
		log.Fatal("deleted user resurrected!")
	}
	fmt.Println("deleted user stayed deleted — durable linearizability holds")
}
