// kvstore: a durable key-value store whose contents persist across process
// runs through an NVRAM image file — the paper's "restart and resume"
// scenario end to end, over arbitrary string keys and values (the
// byte-key API).
//
//	go run ./examples/kvstore set name alice
//	go run ./examples/kvstore set city "buenos aires"
//	go run ./examples/kvstore get name
//	go run ./examples/kvstore del name
//	go run ./examples/kvstore list
//
// State lives in kvstore.img in the working directory (override with
// -image). Each run loads the image (running recovery), applies one
// command, and saves the image back. Pass -pmem-file instead to back the
// store with an mmap'd file: no explicit load/save step at all — the file
// IS the NVRAM, recovery happens on open, and the store would survive even
// an abrupt kill mid-run.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/logfree"
)

func main() {
	image := flag.String("image", "kvstore.img", "NVRAM image file")
	pmemFile := flag.String("pmem-file", "", "file-backed NVRAM (mmap; replaces the image load/save dance)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: kvstore [-image file] {set k v | get k | del k | list}")
		os.Exit(2)
	}

	opts := []logfree.Option{
		logfree.WithSize(32 << 20),
		logfree.WithMaxThreads(2),
		logfree.WithLinkCache(true),
	}

	var rt *logfree.Runtime
	var err error
	if *pmemFile != "" {
		// Open-or-recover: the mapping is the durable state, so there is no
		// image to load or save. The link cache stays off in this mode —
		// its deferred link persistence would need a clean flush, which an
		// abrupt kill never grants.
		rt, err = logfree.New(
			logfree.WithSize(32<<20),
			logfree.WithMaxThreads(2),
			logfree.WithFile(*pmemFile))
	} else if _, serr := os.Stat(*image); serr == nil {
		rt, err = logfree.Load(*image, opts...)
	} else {
		rt, err = logfree.New(opts...)
	}
	if err != nil {
		log.Fatal(err)
	}
	store, err := rt.OpenOrCreate("kv", logfree.Spec{Buckets: 256})
	if err != nil {
		log.Fatal(err)
	}

	switch args[0] {
	case "set":
		if len(args) != 3 {
			log.Fatal("set needs key and value")
		}
		k, v := []byte(args[1]), []byte(args[2])
		existed := store.Contains(k)
		if err := store.Set(k, v); err != nil {
			log.Fatal(err)
		}
		if existed {
			fmt.Printf("overwrote %s = %s\n", k, v)
		} else {
			fmt.Printf("set %s = %s\n", k, v)
		}
	case "get":
		if len(args) != 2 {
			log.Fatal("get needs a key")
		}
		if v, ok := store.Get([]byte(args[1])); ok {
			fmt.Printf("%s = %s\n", args[1], v)
		} else {
			fmt.Printf("%s not found\n", args[1])
		}
	case "del":
		if len(args) != 2 {
			log.Fatal("del needs a key")
		}
		if store.Delete([]byte(args[1])) {
			fmt.Printf("deleted %s\n", args[1])
		} else {
			fmt.Printf("%s not found\n", args[1])
		}
	case "list":
		n := 0
		for k, v := range store.All() {
			fmt.Printf("%s = %s\n", k, v)
			n++
		}
		fmt.Printf("(%d keys)\n", n)
	default:
		log.Fatalf("kvstore: unknown command %q", args[0])
	}

	if *pmemFile != "" {
		if err := rt.Close(); err != nil { // flushes the mapping; no save step
			log.Fatal(err)
		}
		return
	}
	if err := rt.Save(*image); err != nil {
		log.Fatal(err)
	}
}
